package main

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"llmbw/internal/runner"
)

// TestParallelFlagClamped: `-parallel 0` and negative values used to reach
// runner.Run raw, where parallel <= 0 selects GOMAXPROCS workers — the
// opposite of what an explicit zero asks for. The flag value must clamp to
// serial first.
func TestParallelFlagClamped(t *testing.T) {
	for flagValue, want := range map[int]int{-4: 1, -1: 1, 0: 1, 1: 1, 8: 8} {
		if got := runner.ClampParallel(flagValue); got != want {
			t.Errorf("ClampParallel(%d) = %d, want %d", flagValue, got, want)
		}
	}
}

// TestClampedSerialRunsJobs: a clamped flag value drives the pool exactly
// like an explicit -parallel 1 — every job runs and output appears in
// submission order.
func TestClampedSerialRunsJobs(t *testing.T) {
	var out bytes.Buffer
	jobs := make([]runner.Job, 3)
	for i := range jobs {
		i := i
		jobs[i] = runner.Job{
			ID:  fmt.Sprintf("job%d", i),
			Run: func(w io.Writer) error { _, err := fmt.Fprintf(w, "job%d\n", i); return err },
		}
	}
	if err := runner.Run(&out, runner.ClampParallel(0), jobs); err != nil {
		t.Fatal(err)
	}
	if got, want := out.String(), "job0\njob1\njob2\n"; got != want {
		t.Errorf("serial clamped run wrote %q, want %q", got, want)
	}
}
