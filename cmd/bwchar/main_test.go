package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"testing"

	"llmbw/internal/core"
	"llmbw/internal/runner"
)

// TestResolveExperiments pins the command-line contract: "all" is exactly the
// paper reproductions, "all-ext" appends the extension studies, explicit ids
// resolve individually in argument order, and an unknown id errors before any
// experiment would run.
func TestResolveExperiments(t *testing.T) {
	paper, ext := core.Experiments(), core.Extensions()

	all, err := resolveExperiments([]string{"all"})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(paper) {
		t.Errorf("resolveExperiments(all) returned %d experiments, want %d", len(all), len(paper))
	}

	allExt, err := resolveExperiments([]string{"all-ext"})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(paper) + len(ext); len(allExt) != want {
		t.Errorf("resolveExperiments(all-ext) returned %d experiments, want %d", len(allExt), want)
	}
	for i, e := range ext {
		if got := allExt[len(paper)+i].ID; got != e.ID {
			t.Errorf("all-ext experiment %d = %s, want extension %s", len(paper)+i, got, e.ID)
		}
	}

	ids := []string{paper[1].ID, paper[0].ID}
	picked, err := resolveExperiments(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 2 || picked[0].ID != ids[0] || picked[1].ID != ids[1] {
		t.Errorf("resolveExperiments(%v) = %v, want the ids in argument order", ids, picked)
	}

	if _, err := resolveExperiments([]string{"no-such-experiment"}); err == nil {
		t.Error("resolveExperiments(no-such-experiment) did not fail")
	}
}

// TestParallelFlagClamped: `-parallel 0` and negative values used to reach
// runner.Run raw, where parallel <= 0 selects GOMAXPROCS workers — the
// opposite of what an explicit zero asks for. The flag value must clamp to
// serial first.
func TestParallelFlagClamped(t *testing.T) {
	for flagValue, want := range map[int]int{-4: 1, -1: 1, 0: 1, 1: 1, 8: 8} {
		if got := runner.ClampParallel(flagValue); got != want {
			t.Errorf("ClampParallel(%d) = %d, want %d", flagValue, got, want)
		}
	}
}

// TestShardsFlagClamped pins the -shards contract: the flag parses like
// -parallel and clamps through the same runner.ClampParallel mapping, so an
// explicit or default <= 0 lands at 1 — which train.Config treats as the
// plain serial engine — and positive counts pass through.
func TestShardsFlagClamped(t *testing.T) {
	cases := []struct {
		args []string
		want int
	}{
		{nil, 1}, // default: serial simulation
		{[]string{"-shards", "-3"}, 1},
		{[]string{"-shards", "0"}, 1},
		{[]string{"-shards", "1"}, 1},
		{[]string{"-shards", "4"}, 4},
	}
	for _, tc := range cases {
		fs := flag.NewFlagSet("bwchar", flag.ContinueOnError)
		shards := fs.Int("shards", 0, "")
		if err := fs.Parse(tc.args); err != nil {
			t.Fatal(err)
		}
		if got := runner.ClampParallel(*shards); got != tc.want {
			t.Errorf("args %v clamp to %d shards, want %d", tc.args, got, tc.want)
		}
	}
}

// TestClampedSerialRunsJobs: a clamped flag value drives the pool exactly
// like an explicit -parallel 1 — every job runs and output appears in
// submission order.
func TestClampedSerialRunsJobs(t *testing.T) {
	var out bytes.Buffer
	jobs := make([]runner.Job, 3)
	for i := range jobs {
		i := i
		jobs[i] = runner.Job{
			ID:  fmt.Sprintf("job%d", i),
			Run: func(w io.Writer) error { _, err := fmt.Fprintf(w, "job%d\n", i); return err },
		}
	}
	if err := runner.Run(&out, runner.ClampParallel(0), jobs); err != nil {
		t.Fatal(err)
	}
	if got, want := out.String(), "job0\njob1\njob2\n"; got != want {
		t.Errorf("serial clamped run wrote %q, want %q", got, want)
	}
}
