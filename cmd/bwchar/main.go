// Command bwchar regenerates the paper's tables and figures on the simulated
// cluster. Run it with experiment ids (fig1..fig14, table1..table6), "all"
// for the complete paper evaluation, or "all-ext" to additionally run the
// extension and ablation studies.
//
// Usage:
//
//	bwchar -list
//	bwchar fig7 table4
//	bwchar -iterations 5 -pattern-seconds 60 all
//	bwchar -parallel 4 all-ext
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"llmbw/internal/core"
	"llmbw/internal/runner"
)

const usageLine = "usage: bwchar [-list] [flags] <experiment-id>... | all | all-ext"

// resolveExperiments maps command-line ids to experiments: "all" selects the
// paper reproductions, "all-ext" additionally the extensions and ablations,
// and otherwise each id resolves via core.Get, so an unknown id fails before
// any simulation starts.
func resolveExperiments(args []string) ([]core.Experiment, error) {
	if len(args) == 1 && (args[0] == "all" || args[0] == "all-ext") {
		exps := core.Experiments()
		if args[0] == "all-ext" {
			exps = append(exps, core.Extensions()...)
		}
		return exps, nil
	}
	exps := make([]core.Experiment, 0, len(args))
	for _, id := range args {
		e, err := core.Get(id)
		if err != nil {
			return nil, err
		}
		exps = append(exps, e)
	}
	return exps, nil
}

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	iterations := flag.Int("iterations", 3, "measured training iterations per run")
	warmup := flag.Int("warmup", 1, "warm-up iterations before measurement")
	patternSeconds := flag.Float64("pattern-seconds", 30, "simulated duration of utilization-pattern figures")
	stressSeconds := flag.Float64("stress-seconds", 10, "simulated duration of bandwidth stress kernels")
	artifacts := flag.String("artifacts", "", "directory for machine-readable artifacts (Chrome traces, CSV series)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "experiments to run concurrently; 1 runs serially")
	shards := flag.Int("shards", 0, "simulation shards per training run; <=1 runs each simulation serially")
	topo := flag.String("topo", "", `extra fabric spec for the datacenter studies, e.g. "fat-tree:nodes=32"`)
	algo := flag.String("algo", "", "collective algorithm for the datacenter studies: flat | 2level | multiring")
	flag.Parse()
	*parallel = runner.ClampParallel(*parallel)
	*shards = runner.ClampParallel(*shards)

	if *list {
		fmt.Println("paper reproductions:")
		for _, e := range core.Experiments() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Title)
		}
		fmt.Println("extensions and ablations:")
		for _, e := range core.Extensions() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Title)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, usageLine)
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *artifacts != "" {
		if err := os.MkdirAll(*artifacts, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "bwchar:", err)
			os.Exit(1)
		}
	}
	opt := core.Options{
		Iterations:     *iterations,
		Warmup:         *warmup,
		PatternSeconds: *patternSeconds,
		StressSeconds:  *stressSeconds,
		ArtifactsDir:   *artifacts,
		Shards:         *shards,
		Topo:           *topo,
		Algo:           *algo,
	}

	// Resolve the experiment list up front so an unknown id fails before any
	// simulation starts.
	exps, err := resolveExperiments(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bwchar:", err)
		os.Exit(2)
	}

	// Each experiment owns a private simulation engine, so they run on a
	// worker pool; the runner flushes outputs in submission order, so the
	// bytes match a serial run exactly regardless of -parallel.
	jobs := make([]runner.Job, len(exps))
	for i, e := range exps {
		e := e
		jobs[i] = runner.Job{ID: e.ID, Run: func(w io.Writer) error {
			fmt.Fprintf(w, "\n######## %s — %s ########\n", e.ID, e.Title)
			if err := e.Run(w, opt); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			return nil
		}}
	}
	if err := runner.Run(os.Stdout, *parallel, jobs); err != nil {
		fmt.Fprintln(os.Stderr, "bwchar:", err)
		os.Exit(1)
	}
}
