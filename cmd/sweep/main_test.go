package main

import (
	"flag"
	"reflect"
	"testing"

	"llmbw/internal/model"
	"llmbw/internal/runner"
	"llmbw/internal/train"
)

// TestParseSizesOrderStable: the sweep's serialized table renders rows in
// layerCounts order, so parsing must preserve the argument order exactly —
// part of the ordered-map-emit audit of this command (its lookup maps are
// only ever indexed, never ranged). The parser itself lives in
// internal/model (shared with cmd/servesim); this pins the contract at the
// sweep call site.
func TestParseSizesOrderStable(t *testing.T) {
	got, err := model.ParseSizes("1.4, 0.7,max,,2.9", 99)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{
		model.LayersForParams(int64(1.4e9)),
		model.LayersForParams(int64(0.7e9)),
		99,
		model.LayersForParams(int64(2.9e9)),
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseSizes = %v, want %v", got, want)
	}
	// Parsing twice yields identical slices (no hidden map state).
	again, err := model.ParseSizes("1.4, 0.7,max,,2.9", 99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, again) {
		t.Errorf("parseSizes not stable: %v vs %v", got, again)
	}
}

func TestParseSizesRejectsGarbage(t *testing.T) {
	if _, err := model.ParseSizes("1.4,banana", 10); err == nil {
		t.Fatal("expected error for non-numeric size")
	}
}

// TestParallelFlagClamped: `-parallel 0` and negative values mean "no
// concurrency", not "GOMAXPROCS workers" — they must clamp to serial before
// reaching the worker pool.
func TestParallelFlagClamped(t *testing.T) {
	for flagValue, want := range map[int]int{-4: 1, -1: 1, 0: 1, 1: 1, 8: 8} {
		if got := runner.ClampParallel(flagValue); got != want {
			t.Errorf("ClampParallel(%d) = %d, want %d", flagValue, got, want)
		}
	}
}

// TestShardsFlagClamped pins the -shards contract: the flag clamps through
// the same runner.ClampParallel mapping as -parallel, so the default and any
// explicit <= 0 land at 1 — which train.Config treats as the plain serial
// engine — and the clamped value reaches the sweep's base Config unchanged.
func TestShardsFlagClamped(t *testing.T) {
	cases := []struct {
		args []string
		want int
	}{
		{nil, 1}, // default: serial simulation
		{[]string{"-shards", "-3"}, 1},
		{[]string{"-shards", "0"}, 1},
		{[]string{"-shards", "1"}, 1},
		{[]string{"-shards", "4"}, 4},
	}
	for _, tc := range cases {
		fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
		shards := fs.Int("shards", 0, "")
		if err := fs.Parse(tc.args); err != nil {
			t.Fatal(err)
		}
		clamped := runner.ClampParallel(*shards)
		if clamped != tc.want {
			t.Errorf("args %v clamp to %d shards, want %d", tc.args, clamped, tc.want)
		}
		base := train.Config{Strategy: train.DDP, Model: model.NewGPT(4), Shards: clamped}
		if err := base.Validate(); err != nil {
			t.Errorf("clamped shards %d rejected by train.Config: %v", clamped, err)
		}
	}
}

// TestFlagLookupTablesCovered keeps the usage strings honest: every strategy
// and offload the flags document must resolve through the lookup maps.
func TestFlagLookupTablesCovered(t *testing.T) {
	for _, s := range []string{"ddp", "megatron", "zero1", "zero2", "zero3"} {
		if _, ok := strategies[s]; !ok {
			t.Errorf("strategy %q missing from lookup map", s)
		}
	}
	for _, o := range []string{"none", "cpu", "nvme-opt", "nvme-opt+param"} {
		if _, ok := offloads[o]; !ok {
			t.Errorf("offload %q missing from lookup map", o)
		}
	}
}

// TestApplyTopo pins the -topo/-algo flag contract: the spec's node count
// wins unless -nodes was explicit, and -algo alone is rejected up front.
func TestApplyTopo(t *testing.T) {
	base := train.Config{Strategy: train.ZeRO3, Nodes: 1}
	if err := applyTopo(&base, "fat-tree:nodes=16", "2level", false); err != nil {
		t.Fatal(err)
	}
	if base.Nodes != 0 || base.Topo != "fat-tree:nodes=16" || base.Algo != "2level" {
		t.Errorf("applyTopo left %+v", base)
	}
	base.Model = model.NewGPT(8)
	base.Iterations = 1
	if err := base.Validate(); err != nil {
		t.Errorf("topo sweep base config rejected: %v", err)
	}

	explicit := train.Config{Strategy: train.ZeRO3, Nodes: 16}
	if err := applyTopo(&explicit, "fat-tree:nodes=16", "", true); err != nil {
		t.Fatal(err)
	}
	if explicit.Nodes != 16 {
		t.Errorf("explicit -nodes overwritten to %d", explicit.Nodes)
	}

	plain := train.Config{Strategy: train.DDP, Nodes: 1}
	if err := applyTopo(&plain, "", "2level", false); err == nil {
		t.Error("-algo without -topo accepted")
	}
}
