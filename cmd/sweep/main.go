// Command sweep measures attained throughput across model sizes for one
// training configuration — the tool behind the paper's Table V sensitivity
// study.
//
// Usage:
//
//	sweep -strategy zero2 -offload cpu -nodes 1 -sizes 0.7,1.4,2.9,5.2
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"llmbw/internal/memory"
	"llmbw/internal/model"
	"llmbw/internal/report"
	"llmbw/internal/runner"
	"llmbw/internal/train"
)

var strategies = map[string]train.Strategy{
	"ddp": train.DDP, "megatron": train.Megatron,
	"zero1": train.ZeRO1, "zero2": train.ZeRO2, "zero3": train.ZeRO3,
}

var offloads = map[string]memory.Offload{
	"none": memory.NoOffload, "cpu": memory.CPUOffload,
	"nvme-opt": memory.NVMeOptimizer, "nvme-opt+param": memory.NVMeOptimizerAndParams,
}

func main() {
	strategy := flag.String("strategy", "zero2", "ddp | megatron | zero1 | zero2 | zero3")
	offload := flag.String("offload", "none", "none | cpu | nvme-opt | nvme-opt+param")
	nodes := flag.Int("nodes", 1, "compute nodes (1 or 2)")
	sizesArg := flag.String("sizes", "0.7,1.4,2.9,4.4,5.2", "comma-separated model sizes in billions; 'max' appends the largest fit")
	iterations := flag.Int("iterations", 3, "measured iterations per point")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON summaries instead of a table")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep points to simulate concurrently; 1 runs serially")
	shards := flag.Int("shards", 0, "simulation shards per sweep point; <=1 runs each simulation serially")
	topo := flag.String("topo", "", `generated fabric spec, e.g. "fat-tree:nodes=16" (default: the paper testbed)`)
	algo := flag.String("algo", "", "collective algorithm on generated fabrics: flat | 2level | multiring")
	flag.Parse()
	*parallel = runner.ClampParallel(*parallel)
	*shards = runner.ClampParallel(*shards)
	nodesSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "nodes" {
			nodesSet = true
		}
	})

	strat, ok := strategies[*strategy]
	if !ok {
		fmt.Fprintf(os.Stderr, "sweep: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}
	off, ok := offloads[*offload]
	if !ok {
		fmt.Fprintf(os.Stderr, "sweep: unknown offload %q\n", *offload)
		os.Exit(2)
	}
	base := train.Config{Strategy: strat, Offload: off, Nodes: *nodes, Iterations: *iterations, Warmup: 1, Shards: *shards}
	if err := applyTopo(&base, *topo, *algo, nodesSet); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}
	maxLayers := base.Profile().MaxLayers(model.DefaultBatchSize, 4)
	if maxLayers == 0 {
		fmt.Fprintln(os.Stderr, "sweep: configuration fits no model at all")
		os.Exit(1)
	}

	layerCounts, err := model.ParseSizes(*sizesArg, maxLayers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}

	// On a generated fabric the node count lives in base.Name()'s topo spec;
	// repeating the unused -nodes default would mislead.
	nodesLabel := fmt.Sprintf(", nodes=%d", *nodes)
	if base.Topo != "" && !nodesSet {
		nodesLabel = ""
	}
	t := report.NewTable(
		fmt.Sprintf("Throughput vs model size — %s, offload=%s%s", base.Name(), *offload, nodesLabel),
		"layers", "size (B)", "iteration", "TFLOP/s")
	// Every sweep point owns a private simulation, so points run on a worker
	// pool; rows are assembled in order afterwards, so the rendered table is
	// identical to a serial sweep.
	points := make([]*train.Result, len(layerCounts))
	err = runner.Map(*parallel, len(layerCounts), func(i int) error {
		l := layerCounts[i]
		if l > maxLayers {
			return nil
		}
		cfg := base
		cfg.Model = model.NewGPT(l)
		res, err := train.RunCached(cfg)
		if err != nil {
			return err
		}
		points[i] = res
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	var results []*train.Result
	for i, l := range layerCounts {
		if l > maxLayers {
			t.Row(l, model.NewGPT(l).ParamsB(), "does not fit", "-")
			continue
		}
		res := points[i]
		results = append(results, res)
		t.Row(l, res.Config.Model.ParamsB(), res.IterTime.String(), res.AttainedTFLOPs)
	}
	if *jsonOut {
		if err := train.WriteSummariesJSON(os.Stdout, results); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		return
	}
	t.Render(os.Stdout)
	fmt.Printf("maximum fit: %d layers (%.2fB params)\n", maxLayers, model.NewGPT(maxLayers).ParamsB())
}

// applyTopo points the sweep at a generated datacenter fabric. The spec's
// node count wins unless -nodes was given explicitly (train.Config then
// verifies the two agree); -algo without -topo is an error here rather than a
// confusing train.Validate failure per sweep point.
func applyTopo(base *train.Config, topo, algo string, nodesSet bool) error {
	if topo == "" {
		if algo != "" {
			return fmt.Errorf("-algo requires -topo (the paper testbed has fixed collectives)")
		}
		return nil
	}
	base.Topo = topo
	base.Algo = algo
	if !nodesSet {
		base.Nodes = 0 // adopt the spec's node count
	}
	return nil
}
