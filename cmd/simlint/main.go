// Command simlint runs the repository's determinism & invariant static
// analysis (internal/lint) over the module's own source.
//
// Usage:
//
//	simlint [-v] [-list] [packages...]
//
// Packages default to ./... (the whole module). Findings print as
// "file:line: [rule] message" and any finding makes the exit status 1;
// loader or usage errors exit 2. Deliberate violations are silenced in
// place with a "//lint:allow <rule> — reason" comment on the offending or
// preceding line.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"llmbw/internal/lint"
)

func main() {
	verbose := flag.Bool("v", false, "also report per-package type-check diagnostics and suppression counts")
	list := flag.Bool("list", false, "list registered rules and exit")
	flag.Parse()

	if *list {
		for _, r := range lint.AllRules() {
			fmt.Printf("%-24s %s\n", r.Name(), r.Doc())
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fail(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fail(err)
	}
	pkgs, err := loader.Load(flag.Args())
	if err != nil {
		fail(err)
	}
	if *verbose {
		for _, p := range pkgs {
			if len(p.TypeErrors) > 0 {
				fmt.Fprintf(os.Stderr, "simlint: %s: %d type-check diagnostics (analysis continues with partial types)\n",
					p.ImportPath, len(p.TypeErrors))
			}
		}
	}

	findings := lint.Run(lint.DefaultConfig(), lint.AllRules(), pkgs)
	for _, f := range findings {
		f.Pos.Filename = relativize(root, f.Pos.Filename)
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "simlint: %d package(s) clean\n", len(pkgs))
	}
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("simlint: no go.mod found above the working directory")
		}
		dir = parent
	}
}

func relativize(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "simlint:", err)
	os.Exit(2)
}
