// Command simlint runs the repository's determinism & invariant static
// analysis (internal/lint) over the module's own source.
//
// Usage:
//
//	simlint [-v] [-list] [-json] [-baseline file] [-write-baseline] [packages...]
//
// Packages default to ./... (the whole module). Findings print as
// "file:line: [rule] message" and any finding makes the exit status 1;
// loader or usage errors exit 2. Deliberate violations are silenced in
// place with a "//lint:allow <rule> — reason" comment on the offending or
// preceding line.
//
// -json emits the findings as a machine-readable report on stdout instead
// of the text lines; CI archives that report next to the benchmark JSON.
//
// -baseline compares the run against a committed report (the output of a
// previous -json run). With a baseline the exit status tracks *drift*, not
// raw findings: the run fails when a finding is not in the baseline or a
// baseline entry no longer fires, so a deliberately accepted debt list
// stays pinned. Matching ignores line numbers — moving code around is not
// drift; new or vanished findings are. -write-baseline rewrites the
// baseline file from the current run instead of comparing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"llmbw/internal/lint"
)

// report is the JSON shape emitted by -json and stored as the baseline.
type report struct {
	Version  int            `json:"version"`
	Findings []jsonFinding  `json:"findings"`
	Rules    map[string]int `json:"rules,omitempty"` // per-rule finding counts
}

type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// key identifies a finding for baseline matching: file, rule and message,
// but not line — shifting code around a pinned finding is not drift.
func (f jsonFinding) key() string {
	return f.File + "\x00" + f.Rule + "\x00" + f.Message
}

func main() {
	verbose := flag.Bool("v", false, "also report per-package type-check diagnostics and suppression counts")
	list := flag.Bool("list", false, "list registered rules and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON report on stdout")
	baseline := flag.String("baseline", "", "compare findings against this committed JSON report; exit status tracks drift")
	writeBaseline := flag.Bool("write-baseline", false, "rewrite the -baseline file from this run instead of comparing")
	flag.Parse()

	if *list {
		for _, r := range lint.AllRules() {
			fmt.Printf("%-24s %s\n", r.Name(), r.Doc())
		}
		return
	}
	if *writeBaseline && *baseline == "" {
		fail(fmt.Errorf("-write-baseline needs -baseline <file>"))
	}

	root, err := findModuleRoot()
	if err != nil {
		fail(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fail(err)
	}
	pkgs, err := loader.Load(flag.Args())
	if err != nil {
		fail(err)
	}
	if *verbose {
		for _, p := range pkgs {
			if len(p.TypeErrors) > 0 {
				fmt.Fprintf(os.Stderr, "simlint: %s: %d type-check diagnostics (analysis continues with partial types)\n",
					p.ImportPath, len(p.TypeErrors))
			}
		}
	}

	findings := lint.Run(lint.DefaultConfig(), lint.AllRules(), pkgs)
	rep := report{Version: 1, Findings: []jsonFinding{}}
	for _, f := range findings {
		rep.Findings = append(rep.Findings, jsonFinding{
			File:    filepath.ToSlash(relativize(root, f.Pos.Filename)),
			Line:    f.Pos.Line,
			Rule:    f.Rule,
			Message: f.Message,
		})
	}
	if len(rep.Findings) > 0 {
		rep.Rules = map[string]int{}
		for _, f := range rep.Findings {
			rep.Rules[f.Rule]++
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
	} else {
		for _, f := range rep.Findings {
			fmt.Printf("%s:%d: [%s] %s\n", f.File, f.Line, f.Rule, f.Message)
		}
	}

	switch {
	case *writeBaseline:
		if err := writeReport(*baseline, rep); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "simlint: baseline %s rewritten with %d finding(s)\n", *baseline, len(rep.Findings))
	case *baseline != "":
		drift, err := compareBaseline(*baseline, rep)
		if err != nil {
			fail(err)
		}
		if len(drift) > 0 {
			for _, d := range drift {
				fmt.Fprintln(os.Stderr, "simlint:", d)
			}
			fmt.Fprintf(os.Stderr, "simlint: %d drift(s) from baseline %s — fix the findings, or rerun with -write-baseline to accept\n",
				len(drift), *baseline)
			os.Exit(1)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "simlint: no drift from baseline %s\n", *baseline)
		}
	default:
		if len(rep.Findings) > 0 {
			fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(rep.Findings))
			os.Exit(1)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "simlint: %d package(s) clean\n", len(pkgs))
		}
	}
}

// compareBaseline diffs the run against the committed report and describes
// every drift: findings absent from the baseline and baseline entries that
// no longer fire.
func compareBaseline(path string, rep report) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	have := map[string]int{}
	for _, f := range rep.Findings {
		have[f.key()]++
	}
	known := map[string]int{}
	for _, f := range base.Findings {
		known[f.key()]++
	}
	var drift []string
	for _, f := range rep.Findings {
		if known[f.key()] > 0 {
			known[f.key()]--
			continue
		}
		drift = append(drift, fmt.Sprintf("new finding not in baseline: %s:%d: [%s] %s", f.File, f.Line, f.Rule, f.Message))
	}
	for _, f := range base.Findings {
		if have[f.key()] > 0 {
			have[f.key()]--
			continue
		}
		drift = append(drift, fmt.Sprintf("stale baseline entry no longer fires: %s: [%s] %s", f.File, f.Rule, f.Message))
	}
	sort.Strings(drift)
	return drift, nil
}

func writeReport(path string, rep report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("simlint: no go.mod found above the working directory")
		}
		dir = parent
	}
}

func relativize(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "simlint:", err)
	os.Exit(2)
}
