package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"llmbw/internal/model"
	"llmbw/internal/serve"
	"llmbw/internal/train"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current output")

func post(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update-golden): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestRunGolden pins the /run response bytes for a fixed scenario — the
// serving layer's ordered-map-emit audit (encoding/json sorts the bandwidth
// map keys, so the bytes are stable run to run).
func TestRunGolden(t *testing.T) {
	ts := httptest.NewServer(newServer(2))
	defer ts.Close()
	code, body := post(t, ts, "/run", `{"strategy":"ddp","layers":2,"iterations":1,"warmup":1}`)
	if code != http.StatusOK {
		t.Fatalf("/run = %d: %s", code, body)
	}
	checkGolden(t, "run_ddp.golden", body)
}

// TestSweepGolden pins the /sweep response bytes.
func TestSweepGolden(t *testing.T) {
	ts := httptest.NewServer(newServer(2))
	defer ts.Close()
	code, body := post(t, ts, "/sweep", `{"strategy":"ddp","sizes":"0.35,0.7","iterations":1,"warmup":1}`)
	if code != http.StatusOK {
		t.Fatalf("/sweep = %d: %s", code, body)
	}
	checkGolden(t, "sweep_ddp.golden", body)
}

// TestRunMatchesBatchCLI: the A/B contract — a servesim /run response is
// byte-identical to what the batch path (train.RunCached + Result.WriteJSON,
// the emitter behind bwchar/whatif output) produces for the same scenario.
func TestRunMatchesBatchCLI(t *testing.T) {
	ts := httptest.NewServer(newServer(2))
	defer ts.Close()
	code, body := post(t, ts, "/run", `{"strategy":"zero2","layers":4,"iterations":1,"warmup":1}`)
	if code != http.StatusOK {
		t.Fatalf("/run = %d: %s", code, body)
	}

	cfg := train.Config{Strategy: train.ZeRO2, Model: model.NewGPT(4), Iterations: 1, Warmup: 1}
	res, err := train.RunCached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := res.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Errorf("servesim /run diverges from the batch emitter.\nserve:\n%s\nbatch:\n%s", body, want.Bytes())
	}
}

// TestSweepMatchesBatchCLI: /sweep's default response carries exactly the
// bytes `sweep -json` emits (train.WriteSummariesJSON over the same points).
func TestSweepMatchesBatchCLI(t *testing.T) {
	ts := httptest.NewServer(newServer(2))
	defer ts.Close()
	code, body := post(t, ts, "/sweep", `{"strategy":"ddp","sizes":"0.35,0.7","iterations":1,"warmup":1}`)
	if code != http.StatusOK {
		t.Fatalf("/sweep = %d: %s", code, body)
	}

	var results []*train.Result
	for _, layers := range []int{model.LayersForParams(0.35e9), model.LayersForParams(0.7e9)} {
		res, err := train.RunCached(train.Config{
			Strategy: train.DDP, Model: model.NewGPT(layers), Iterations: 1, Warmup: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	var want bytes.Buffer
	if err := train.WriteSummariesJSON(&want, results); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Errorf("servesim /sweep diverges from sweep -json.\nserve:\n%s\nbatch:\n%s", body, want.Bytes())
	}
}

// TestSweepStream: ?stream=1 delivers the same summaries as the array
// response, one compact JSON object per line, in sweep order.
func TestSweepStream(t *testing.T) {
	ts := httptest.NewServer(newServer(2))
	defer ts.Close()
	code, body := post(t, ts, "/sweep?stream=1", `{"strategy":"ddp","sizes":"0.35,0.7","iterations":1,"warmup":1}`)
	if code != http.StatusOK {
		t.Fatalf("/sweep?stream=1 = %d: %s", code, body)
	}
	lines := strings.Split(strings.TrimSuffix(string(body), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("stream produced %d lines, want 2:\n%s", len(lines), body)
	}
	var stream []train.Summary
	for _, line := range lines {
		var s train.Summary
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("stream line is not a summary: %v\n%s", err, line)
		}
		stream = append(stream, s)
	}

	_, arr := post(t, ts, "/sweep", `{"strategy":"ddp","sizes":"0.35,0.7","iterations":1,"warmup":1}`)
	var batch []train.Summary
	if err := json.Unmarshal(arr, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(stream) {
		t.Fatalf("stream has %d summaries, array %d", len(stream), len(batch))
	}
	for i := range batch {
		if stream[i].Config != batch[i].Config || stream[i].TFLOPs != batch[i].TFLOPs ||
			stream[i].Layers != batch[i].Layers {
			t.Errorf("point %d diverges: stream %+v vs array %+v", i, stream[i], batch[i])
		}
	}
}

// TestRunCoalescing: N concurrent identical requests produce exactly one
// underlying simulation (the result tier's misses count computations
// started) and byte-identical responses.
func TestRunCoalescing(t *testing.T) {
	ts := httptest.NewServer(newServer(4))
	defer ts.Close()
	// A config no other test uses, so the miss delta isolates this test.
	body := `{"strategy":"zero1","layers":3,"iterations":2,"warmup":1}`
	before := train.RunCacheStats()

	const n = 8
	responses := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, b := post(t, ts, "/run", body)
			if code != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, code, b)
			}
			responses[i] = b
		}()
	}
	wg.Wait()

	after := train.RunCacheStats()
	if got := after.Misses - before.Misses; got != 1 {
		t.Errorf("%d simulations for %d identical requests; want exactly 1 (coalesced)", got, n)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(responses[i], responses[0]) {
			t.Errorf("response %d differs from response 0:\n%s\nvs\n%s", i, responses[i], responses[0])
		}
	}
}

// TestStatsProbe: /stats reports every cache tier with coherent counters.
func TestStatsProbe(t *testing.T) {
	ts := httptest.NewServer(newServer(3))
	defer ts.Close()
	if code, body := post(t, ts, "/run", `{"strategy":"ddp","layers":2,"iterations":1,"warmup":1}`); code != http.StatusOK {
		t.Fatalf("warm-up /run = %d: %s", code, body)
	}
	if code, body := post(t, ts, "/serve", serveBody); code != http.StatusOK {
		t.Fatalf("warm-up /serve = %d: %s", code, body)
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Parallel != 3 {
		t.Errorf("parallel = %d, want 3", stats.Parallel)
	}
	tiers := map[string]bool{}
	for i, c := range stats.Caches {
		tiers[c.Name] = true
		if i > 0 && stats.Caches[i-1].Name > c.Name {
			t.Errorf("stats tiers unsorted: %q before %q", stats.Caches[i-1].Name, c.Name)
		}
	}
	for _, want := range []string{"train.results", "serve.results", "train.schedules", "topology.blueprints", "collective.shapes"} {
		if !tiers[want] {
			t.Errorf("stats missing tier %q (have %v)", want, tiers)
		}
	}
}

// TestBadRequests pins the error surface.
func TestBadRequests(t *testing.T) {
	ts := httptest.NewServer(newServer(1))
	defer ts.Close()
	cases := []struct {
		path, body string
		want       int
	}{
		{"/run", `{"strategy":"warp-drive"}`, http.StatusBadRequest},
		{"/run", `{"strategy":"ddp","offload":"tape"}`, http.StatusBadRequest},
		{"/run", `not json`, http.StatusBadRequest},
		{"/run", `{"strategy":"ddp","algo":"2level"}`, http.StatusBadRequest},
		{"/sweep", `{"strategy":"ddp","sizes":"banana"}`, http.StatusBadRequest},
		{"/run", `{"strategy":"megatron","offload":"cpu","layers":2}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		if code, body := post(t, ts, tc.path, tc.body); code != tc.want {
			t.Errorf("POST %s %s = %d, want %d (%s)", tc.path, tc.body, code, tc.want, body)
		}
	}
	resp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /run = %d, want 405", resp.StatusCode)
	}
}

// serveBody is the fixed serving scenario the /serve tests query.
const serveBody = `{"requests":16,"rate_per_sec":16,"prompt_tokens":256,"decode_tokens":16,"max_batch":8}`

// TestServeGolden pins the /serve response bytes for a fixed scenario.
func TestServeGolden(t *testing.T) {
	ts := httptest.NewServer(newServer(2))
	defer ts.Close()
	code, body := post(t, ts, "/serve", serveBody)
	if code != http.StatusOK {
		t.Fatalf("/serve = %d: %s", code, body)
	}
	checkGolden(t, "serve_colocated.golden", body)
}

// TestServeMatchesLibrary: a /serve response is byte-identical to what
// serve.RunCached + Result.WriteJSON produce for the same scenario.
func TestServeMatchesLibrary(t *testing.T) {
	ts := httptest.NewServer(newServer(2))
	defer ts.Close()
	code, body := post(t, ts, "/serve", serveBody)
	if code != http.StatusOK {
		t.Fatalf("/serve = %d: %s", code, body)
	}
	res, err := serve.RunCached(serve.Config{
		Requests: 16, RatePerSec: 16, PromptTokens: 256, DecodeTokens: 16, MaxBatch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := res.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Errorf("servesim /serve diverges from the library emitter.\nserve:\n%s\nlib:\n%s", body, want.Bytes())
	}
}

// TestServeRequestLog: ?log=1 returns the per-request NDJSON log, one line
// per simulated request.
func TestServeRequestLog(t *testing.T) {
	ts := httptest.NewServer(newServer(2))
	defer ts.Close()
	code, body := post(t, ts, "/serve?log=1", serveBody)
	if code != http.StatusOK {
		t.Fatalf("/serve?log=1 = %d: %s", code, body)
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) != 16 {
		t.Fatalf("request log has %d lines, want 16", len(lines))
	}
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		if _, ok := rec["ttft_ns"]; !ok {
			t.Fatalf("log line missing ttft_ns: %q", line)
		}
	}
}

// TestServeBadRequests pins the /serve error surface.
func TestServeBadRequests(t *testing.T) {
	ts := httptest.NewServer(newServer(1))
	defer ts.Close()
	cases := []struct {
		body string
		want int
	}{
		{`not json`, http.StatusBadRequest},
		{`{"arrival":"carrier-pigeon"}`, http.StatusBadRequest},
		{`{"tp":9}`, http.StatusUnprocessableEntity},
		{`{"topo":"mesh:nodes=8"}`, http.StatusUnprocessableEntity},
		{`{"disaggregated":true,"nodes":1}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		if code, body := post(t, ts, "/serve", tc.body); code != tc.want {
			t.Errorf("POST /serve %s = %d, want %d (%s)", tc.body, code, tc.want, body)
		}
	}
}

// TestHealthz: 200 while serving, 503 once the drain flag is up.
func TestHealthz(t *testing.T) {
	srv := newServer(1)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	get := func() (int, string) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := get(); code != http.StatusOK || body != "ok\n" {
		t.Errorf("healthz = %d %q, want 200 ok", code, body)
	}
	srv.draining.Store(true)
	if code, _ := get(); code != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", code)
	}
}
