package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"llmbw/internal/memory"
	"llmbw/internal/model"
	"llmbw/internal/runner"
	"llmbw/internal/scenario"
	"llmbw/internal/serve"
	"llmbw/internal/sim"
	"llmbw/internal/train"
)

var strategies = map[string]train.Strategy{
	"ddp": train.DDP, "megatron": train.Megatron,
	"zero1": train.ZeRO1, "zero2": train.ZeRO2, "zero3": train.ZeRO3,
}

var offloads = map[string]memory.Offload{
	"": memory.NoOffload, "none": memory.NoOffload, "cpu": memory.CPUOffload,
	"nvme-opt": memory.NVMeOptimizer, "nvme-opt+param": memory.NVMeOptimizerAndParams,
}

// server answers what-if queries from the warm-artifact cache. The semaphore
// bounds concurrently *running* simulations across all requests; coalesced
// duplicates of an in-flight configuration wait on the result tier's
// singleflight instead of simulating again.
type server struct {
	mux      *http.ServeMux
	sem      chan struct{}
	parallel int
	draining atomic.Bool // set when shutdown has begun; flips /healthz
}

// newServer builds the handler. parallel must be >= 1 (callers clamp via
// runner.ClampParallel).
func newServer(parallel int) *server {
	s := &server{sem: make(chan struct{}, parallel), parallel: parallel}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/run", s.handleRun)
	s.mux.HandleFunc("/sweep", s.handleSweep)
	s.mux.HandleFunc("/serve", s.handleServe)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// acquire/release bracket one running simulation.
func (s *server) acquire() { s.sem <- struct{}{} }
func (s *server) release() { <-s.sem }

// scenarioRequest is the JSON query shape shared by /run and /sweep.
type scenarioRequest struct {
	Strategy    string  `json:"strategy"`
	Offload     string  `json:"offload"`
	Nodes       int     `json:"nodes"`
	Layers      int     `json:"layers"`
	SizeB       float64 `json:"size_b"`
	BatchPerGPU int     `json:"batch_per_gpu"`
	Iterations  int     `json:"iterations"`
	Warmup      int     `json:"warmup"`
	Topo        string  `json:"topo"`
	Algo        string  `json:"algo"`
	Shards      int     `json:"shards"`

	// Sizes is /sweep's model-size list (model.ParseSizes syntax). /run
	// ignores it.
	Sizes string `json:"sizes"`
}

// baseConfig translates the request into a train.Config without a model;
// resolveModel fills the model per point.
func (req *scenarioRequest) baseConfig() (train.Config, error) {
	strat, ok := strategies[req.Strategy]
	if !ok {
		return train.Config{}, fmt.Errorf("unknown strategy %q", req.Strategy)
	}
	off, ok := offloads[req.Offload]
	if !ok {
		return train.Config{}, fmt.Errorf("unknown offload %q", req.Offload)
	}
	if req.Algo != "" && req.Topo == "" {
		return train.Config{}, fmt.Errorf("algo requires topo")
	}
	return train.Config{
		Strategy:    strat,
		Offload:     off,
		Nodes:       req.Nodes,
		BatchPerGPU: req.BatchPerGPU,
		Iterations:  req.Iterations,
		Warmup:      req.Warmup,
		Topo:        req.Topo,
		Algo:        req.Algo,
		Shards:      req.Shards,
	}, nil
}

// resolveModel picks the run's model: explicit layers, a parameter-count
// target, or (neither given) the largest fit — the same resolution order the
// batch CLIs use.
func (req *scenarioRequest) resolveModel(cfg train.Config) (model.GPT, error) {
	if req.Layers > 0 {
		return model.NewGPT(req.Layers), nil
	}
	if req.SizeB > 0 {
		return model.NewGPT(model.LayersForParams(int64(req.SizeB * 1e9))), nil
	}
	maxLayers := cfg.Profile().MaxLayers(model.DefaultBatchSize, 4)
	if maxLayers == 0 {
		return model.GPT{}, fmt.Errorf("configuration fits no model at all")
	}
	return model.NewGPT(maxLayers), nil
}

// decode parses the request body, enforcing POST.
func decode(w http.ResponseWriter, r *http.Request, req *scenarioRequest) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// handleRun answers one configuration with its run summary. The body is
// written by the same emitter the batch CLIs use (Result.WriteJSON), so a
// servesim response is byte-identical to `bwchar`/`whatif` output for the
// same scenario.
func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req scenarioRequest
	if !decode(w, r, &req) {
		return
	}
	cfg, err := req.baseConfig()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if cfg.Model, err = req.resolveModel(cfg); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.acquire()
	res, err := train.RunCached(cfg)
	s.release()
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	res.WriteJSON(w)
}

// handleSweep answers a model-size sweep. The default response is the same
// JSON array `sweep -json` emits; ?stream=1 switches to newline-delimited
// summaries flushed progressively in sweep order as points complete (the
// worker pool's ordered-prefix flush), so a client watching a long sweep sees
// each point as soon as every earlier point is out.
func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req scenarioRequest
	if !decode(w, r, &req) {
		return
	}
	base, err := req.baseConfig()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	maxLayers := base.Profile().MaxLayers(model.DefaultBatchSize, 4)
	if maxLayers == 0 {
		http.Error(w, "configuration fits no model at all", http.StatusBadRequest)
		return
	}
	sizes := req.Sizes
	if sizes == "" {
		sizes = "max"
	}
	layerCounts, err := model.ParseSizes(sizes, maxLayers)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Oversized entries do not fit this configuration; like `sweep -json`,
	// they are omitted from the response.
	fit := layerCounts[:0]
	for _, l := range layerCounts {
		if l <= maxLayers {
			fit = append(fit, l)
		}
	}

	runPoint := func(i int) (*train.Result, error) {
		cfg := base
		cfg.Model = model.NewGPT(fit[i])
		s.acquire()
		defer s.release()
		return train.RunCached(cfg)
	}

	if r.URL.Query().Get("stream") == "1" {
		s.streamSweep(w, fit, runPoint)
		return
	}
	results := make([]*train.Result, len(fit))
	err = runner.Map(s.parallel, len(fit), func(i int) error {
		res, err := runPoint(i)
		results[i] = res
		return err
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	train.WriteSummariesJSON(w, results)
}

// streamSweep emits one compact summary per line, flushing after every
// completed contiguous prefix. Errors surface as a final {"error": ...} line
// (the status was already sent with the first flush).
func (s *server) streamSweep(w http.ResponseWriter, fit []int, runPoint func(i int) (*train.Result, error)) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	out := io.Writer(w)
	if f, ok := w.(http.Flusher); ok {
		out = flushWriter{w: w, f: f}
	}
	jobs := make([]runner.Job, len(fit))
	for i := range fit {
		i := i
		jobs[i] = runner.Job{
			ID: fmt.Sprintf("point-%d", i),
			Run: func(buf io.Writer) error {
				res, err := runPoint(i)
				if err != nil {
					return err
				}
				line, err := json.Marshal(res.Summary())
				if err != nil {
					return err
				}
				line = append(line, '\n')
				_, err = buf.Write(line)
				return err
			},
		}
	}
	if err := runner.Run(out, s.parallel, jobs); err != nil {
		fmt.Fprintf(out, "{\"error\":%q}\n", err.Error())
	}
}

// flushWriter pushes every completed write to the client immediately —
// runner.Run writes exactly one completed prefix chunk at a time, so each
// flush is a well-formed set of NDJSON lines.
type flushWriter struct {
	w io.Writer
	f http.Flusher
}

func (fw flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	fw.f.Flush()
	return n, err
}

// serveRequest is the JSON query shape of POST /serve. Unset fields take the
// canonical serving scenario's defaults (serve.Config.withDefaults).
type serveRequest struct {
	Layers         int              `json:"layers"`
	SizeB          float64          `json:"size_b"`
	TensorParallel int              `json:"tp"`
	Nodes          int              `json:"nodes"`
	Disaggregated  bool             `json:"disaggregated"`
	Topo           string           `json:"topo"`
	Arrival        string           `json:"arrival"`
	RatePerSec     float64          `json:"rate_per_sec"`
	Concurrency    int              `json:"concurrency"`
	Requests       int              `json:"requests"`
	Warmup         int              `json:"warmup"`
	PromptTokens   int              `json:"prompt_tokens"`
	DecodeTokens   int              `json:"decode_tokens"`
	MaxBatch       int              `json:"max_batch"`
	Seed           uint64           `json:"seed"`
	Trace          []serve.TraceReq `json:"trace"`
	SLOTTFTMs      float64          `json:"slo_ttft_ms"`
	SLOTBTMs       float64          `json:"slo_tbt_ms"`
	Shards         int              `json:"shards"`
	RoCEBW         float64          `json:"roce_bw"`
	NICBW          float64          `json:"nic_bw"`
}

// config translates the request into a serve.Config.
func (req *serveRequest) config() (serve.Config, error) {
	arr, err := serve.ParseArrival(req.Arrival)
	if err != nil {
		return serve.Config{}, err
	}
	var g model.GPT
	switch {
	case req.Layers > 0:
		g = model.NewGPT(req.Layers)
	case req.SizeB > 0:
		g = model.NewGPT(model.LayersForParams(int64(req.SizeB * 1e9)))
	}
	return serve.Config{
		Model:          g,
		TensorParallel: req.TensorParallel,
		Nodes:          req.Nodes,
		Disaggregated:  req.Disaggregated,
		Topo:           req.Topo,
		Arrival:        arr,
		RatePerSec:     req.RatePerSec,
		Concurrency:    req.Concurrency,
		Requests:       req.Requests,
		Warmup:         req.Warmup,
		PromptTokens:   req.PromptTokens,
		DecodeTokens:   req.DecodeTokens,
		MaxBatch:       req.MaxBatch,
		Seed:           req.Seed,
		Trace:          req.Trace,
		SLOTTFT:        sim.Time(req.SLOTTFTMs * float64(sim.Millisecond)),
		SLOTBT:         sim.Time(req.SLOTBTMs * float64(sim.Millisecond)),
		Shards:         req.Shards,
		RoCEBW:         req.RoCEBW,
		NICBW:          req.NICBW,
	}, nil
}

// handleServe answers one inference-serving scenario with its latency and
// goodput summary (serve.Result.WriteJSON). With ?log=1 the response is the
// per-request NDJSON log instead — the byte-stable artifact the determinism
// harness diffs.
func (s *server) handleServe(w http.ResponseWriter, r *http.Request) {
	var req serveRequest
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	cfg, err := req.config()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.acquire()
	res, err := serve.RunCached(cfg)
	s.release()
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	if r.URL.Query().Get("log") == "1" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		res.WriteRequestLog(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	res.WriteJSON(w)
}

// handleHealthz is the liveness/readiness probe: 200 while serving, 503 once
// shutdown has begun (so load balancers stop routing during the drain).
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ok\n")
}

// statsResponse is the /stats probe payload.
type statsResponse struct {
	Parallel int              `json:"parallel"`
	Caches   []scenario.Stats `json:"caches"`
}

// handleStats exposes the warm-artifact cache counters (every registered
// tier, sorted by name) and the simulation concurrency bound.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(statsResponse{Parallel: s.parallel, Caches: scenario.Snapshot()})
}
