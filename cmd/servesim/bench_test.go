package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"llmbw/internal/train"
)

// dcRunBody is a datacenter-scale scenario: 64 fat-tree nodes with the
// hierarchical collective, the shape whose cold cost (topology build, plan
// compile, schedule compile, simulation) the warm cache amortises.
const dcRunBody = `{"strategy":"ddp","layers":4,"iterations":1,"warmup":1,"topo":"fat-tree:nodes=64","algo":"2level"}`

func benchPost(b *testing.B, ts *httptest.Server, path, body string) {
	b.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// BenchmarkServeColdRun is the miss path: every request re-simulates the
// 64-node scenario (the result tier is reset each iteration; the blueprint,
// shape and schedule tiers stay warm, as they would across distinct queries
// in a live daemon).
func BenchmarkServeColdRun(b *testing.B) {
	ts := httptest.NewServer(newServer(2))
	defer ts.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		train.ResetRunCache()
		benchPost(b, ts, "/run", dcRunBody)
	}
}

// BenchmarkServeWarmRun is the hit path: the same request served from the
// memoized result. The headline ratio against BenchmarkServeColdRun is the
// serving layer's reason to exist.
func BenchmarkServeWarmRun(b *testing.B) {
	ts := httptest.NewServer(newServer(2))
	defer ts.Close()
	benchPost(b, ts, "/run", dcRunBody)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts, "/run", dcRunBody)
	}
}

// BenchmarkServeWarmSweep: a whole warm sweep (three sizes sharing the
// fabric blueprint and plan shapes) answered from the cache.
func BenchmarkServeWarmSweep(b *testing.B) {
	ts := httptest.NewServer(newServer(2))
	defer ts.Close()
	body := `{"strategy":"ddp","sizes":"0.35,0.7,1.4","iterations":1,"warmup":1,"topo":"fat-tree:nodes=64","algo":"2level"}`
	benchPost(b, ts, "/sweep", body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts, "/sweep", body)
	}
}
