// Command servesim is the long-lived what-if service: an HTTP/JSON daemon
// answering single-run and sweep queries from the warm-artifact scenario
// cache. The batch CLIs (bwchar, sweep, whatif) pay the cold cost of every
// configuration they touch and then exit, discarding the compiled topologies,
// collective plans, schedules and memoized results; servesim keeps them hot,
// so a repeated or near-identical query costs a cache probe instead of a
// simulation.
//
// Endpoints:
//
//	POST /run    {"strategy":"zero3","nodes":2,"layers":16,...}
//	             → the run's JSON summary, byte-identical to the batch CLIs.
//	POST /sweep  {"strategy":"zero2","sizes":"0.7,1.4,max",...}
//	             → a JSON summary array, byte-identical to `sweep -json`;
//	             with ?stream=1, newline-delimited summaries flushed
//	             progressively in sweep order as points complete.
//	GET  /stats  → cache-tier counters (hits, misses, evictions,
//	             invalidations) and the concurrency bound.
//
// Identical in-flight requests coalesce onto one underlying simulation
// (singleflight in the result tier), and concurrently running simulations are
// bounded by -parallel.
//
// Usage:
//
//	servesim -addr 127.0.0.1:8080 -parallel 8 -cache 512
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"

	"llmbw/internal/runner"
	"llmbw/internal/train"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "maximum simulations running concurrently; 1 serializes")
	cacheCap := flag.Int("cache", train.DefaultRunCacheCap, "result cache entry cap (LRU beyond it); <=0 unbounded")
	flag.Parse()

	train.SetRunCacheCap(*cacheCap)
	srv := newServer(runner.ClampParallel(*parallel))
	fmt.Printf("servesim listening on %s (parallel=%d, cache=%d)\n", *addr, srv.parallel, *cacheCap)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fmt.Fprintln(os.Stderr, "servesim:", err)
		os.Exit(1)
	}
}
