// Command servesim is the long-lived what-if service: an HTTP/JSON daemon
// answering single-run, sweep and serving queries from the warm-artifact
// scenario cache. The batch CLIs (bwchar, sweep, whatif) pay the cold cost of
// every configuration they touch and then exit, discarding the compiled
// topologies, collective plans, schedules and memoized results; servesim
// keeps them hot, so a repeated or near-identical query costs a cache probe
// instead of a simulation.
//
// Endpoints:
//
//	POST /run     {"strategy":"zero3","nodes":2,"layers":16,...}
//	              → the run's JSON summary, byte-identical to the batch CLIs.
//	POST /sweep   {"strategy":"zero2","sizes":"0.7,1.4,max",...}
//	              → a JSON summary array, byte-identical to `sweep -json`;
//	              with ?stream=1, newline-delimited summaries flushed
//	              progressively in sweep order as points complete.
//	POST /serve   {"arrival":"open","rate_per_sec":8,"disaggregated":true,...}
//	              → an inference-serving scenario's latency/goodput summary;
//	              with ?log=1, the per-request NDJSON log instead.
//	GET  /stats   → cache-tier counters (hits, misses, evictions,
//	              invalidations) for every tier — train.results,
//	              serve.results, plans, topologies — and the concurrency
//	              bound.
//	GET  /healthz → 200 "ok" while serving, 503 "draining" once shutdown
//	              has begun.
//
// Identical in-flight requests coalesce onto one underlying simulation
// (singleflight in the result tier), and concurrently running simulations are
// bounded by -parallel. On SIGTERM/SIGINT the daemon stops accepting
// connections, drains in-flight requests for at most -drain, then exits.
//
// Usage:
//
//	servesim -addr 127.0.0.1:8080 -parallel 8 -cache 512 -drain 10s
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"llmbw/internal/runner"
	"llmbw/internal/serve"
	"llmbw/internal/train"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "maximum simulations running concurrently; 1 serializes")
	cacheCap := flag.Int("cache", train.DefaultRunCacheCap, "training result cache entry cap (LRU beyond it); <=0 unbounded")
	serveCap := flag.Int("serve-cache", serve.DefaultRunCacheCap, "serving result cache entry cap (LRU beyond it); <=0 unbounded")
	drain := flag.Duration("drain", 10*time.Second, "shutdown drain deadline for in-flight requests")
	flag.Parse()

	train.SetRunCacheCap(*cacheCap)
	serve.SetRunCacheCap(*serveCap)
	srv := newServer(runner.ClampParallel(*parallel))
	hs := &http.Server{Addr: *addr, Handler: srv}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("servesim listening on %s (parallel=%d, cache=%d, serve-cache=%d)\n",
		*addr, srv.parallel, *cacheCap, *serveCap)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errc:
		// ListenAndServe only returns on failure to serve.
		fmt.Fprintln(os.Stderr, "servesim:", err)
		os.Exit(1)
	case s := <-sig:
		// Flip /healthz before closing the listener so probes see the drain,
		// then give in-flight requests up to the deadline to finish.
		srv.draining.Store(true)
		fmt.Printf("servesim: %v, draining for up to %v\n", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "servesim: drain deadline exceeded, aborting in-flight requests")
			hs.Close()
			os.Exit(1)
		}
		fmt.Println("servesim: drained, bye")
	}
}
