// Command topoview dumps a simulated fabric: every link with its class and
// capacity, theoretical per-class aggregates, and example routes.
//
// By default it renders the paper's testbed cluster; -topo switches to a
// generated datacenter fabric (fat-tree, rail-only, dragonfly) described by
// the same spec strings the trainer accepts.
//
// Usage:
//
//	topoview [-nodes 2]
//	topoview -topo fat-tree:nodes=16
//	topoview -topo rail-only:nodes=64,rails=4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"llmbw/internal/core"
	"llmbw/internal/fabric"
	"llmbw/internal/topology"
)

// renderPaper dumps the testbed cluster — the original topoview output.
func renderPaper(w io.Writer, nodes int) error {
	if nodes < 1 || nodes > 2 {
		return fmt.Errorf("-nodes must be 1 or 2")
	}
	c := topology.New(topology.DefaultConfig(nodes))
	fmt.Fprintf(w, "Simulated cluster: %d × Dell PowerEdge XE8545\n\n", nodes)
	fmt.Fprintln(w, "Links:")
	for _, l := range c.Links() {
		fmt.Fprintf(w, "  %-22s %-9s %7.1f GB/s\n", l.Name, l.Class, l.Capacity()/1e9)
	}
	fmt.Fprintln(w, "\nPer-node theoretical aggregates:")
	for _, class := range fabric.MeasuredClasses() {
		fmt.Fprintf(w, "  %-10s %7.1f GB/s\n", class, c.TheoreticalClassBW(class)/1e9)
	}
	fmt.Fprintln(w)
	return core.Fig2(w, core.Options{})
}

// renderDC dumps a generated datacenter fabric: shape, per-class link
// inventory, one node's endpoint links, the trunk links, and the route
// decomposition of a same-pod and a cross-pod hop.
func renderDC(w io.Writer, spec string) error {
	cfg, err := topology.ParseTopoSpec(spec)
	if err != nil {
		return err
	}
	sc, err := topology.NewDCSharded(cfg, 1)
	if err != nil {
		return err
	}
	defer sc.Eng.Close()
	fmt.Fprintf(w, "Generated fabric: %s\n", cfg.Spec())
	fmt.Fprintf(w, "  nodes %d  pods %v  rails %d  switch ports %d\n\n",
		cfg.Nodes, cfg.Seams(), cfg.Rails, cfg.SwitchPorts())

	links := sc.Groups[0].Links()
	count := map[fabric.Class]int{}
	capacity := map[fabric.Class]float64{}
	for _, l := range links {
		count[l.Class]++
		capacity[l.Class] += l.Capacity()
	}
	fmt.Fprintln(w, "Link inventory:")
	for _, class := range []fabric.Class{fabric.NVLink, fabric.RoCE, fabric.Uplink} {
		fmt.Fprintf(w, "  %-9s %4d links %9.1f GB/s aggregate\n",
			class, count[class], capacity[class]/1e9)
	}

	fmt.Fprintln(w, "\nNode 0 endpoints:")
	fmt.Fprintf(w, "  %-22s %-9s %7.1f GB/s\n",
		sc.NVFabric(0).Name, sc.NVFabric(0).Class, sc.NVFabric(0).Capacity()/1e9)
	g, _ := sc.GroupOf(0)
	for r := 0; r < cfg.Rails; r++ {
		l := g.NICLink(0, r)
		fmt.Fprintf(w, "  %-22s %-9s %7.1f GB/s\n", l.Name, l.Class, l.Capacity()/1e9)
	}

	fmt.Fprintln(w, "\nTrunks:")
	trunks := 0
	for _, l := range links {
		if l.Class == fabric.Uplink {
			fmt.Fprintf(w, "  %-22s %-9s %7.1f GB/s\n", l.Name, l.Class, l.Capacity()/1e9)
			trunks++
		}
	}
	if trunks == 0 {
		fmt.Fprintln(w, "  (none — rail-local fabric)")
	}

	fmt.Fprintln(w, "\nExample routes (rail 0):")
	printRoute := func(from, to int) {
		src, dst, extra := sc.RailPath(from, to, 0)
		fmt.Fprintf(w, "  dc%d -> dc%d:", from, to)
		for _, l := range src {
			fmt.Fprintf(w, " %s", l.Name)
		}
		fmt.Fprint(w, " | handoff |")
		for _, l := range dst {
			fmt.Fprintf(w, " %s", l.Name)
		}
		fmt.Fprintf(w, "  (+%v tier latency)\n", extra)
	}
	if cfg.Nodes > 1 {
		printRoute(0, 1)
	}
	if cfg.Nodes > cfg.PodSize {
		printRoute(0, cfg.Nodes-1)
	}
	return nil
}

func run(w io.Writer, nodes int, topoSpec string) error {
	if topoSpec == "" || topoSpec == topology.PaperTopo {
		return renderPaper(w, nodes)
	}
	return renderDC(w, topoSpec)
}

func main() {
	nodes := flag.Int("nodes", 2, "number of compute nodes for the paper testbed (1 or 2)")
	topo := flag.String("topo", "", `generated fabric spec, e.g. "fat-tree:nodes=16" (default: the paper testbed)`)
	flag.Parse()

	if err := run(os.Stdout, *nodes, *topo); err != nil {
		fmt.Fprintln(os.Stderr, "topoview:", err)
		os.Exit(2)
	}
}
