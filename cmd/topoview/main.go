// Command topoview dumps the simulated cluster topology: every link with its
// class and capacity, theoretical per-class aggregates, and example routes
// with their I/O-die crossbar crossings.
//
// Usage:
//
//	topoview [-nodes 2]
package main

import (
	"flag"
	"fmt"
	"os"

	"llmbw/internal/core"
	"llmbw/internal/fabric"
	"llmbw/internal/topology"
)

func main() {
	nodes := flag.Int("nodes", 2, "number of compute nodes (1 or 2)")
	flag.Parse()

	if *nodes < 1 || *nodes > 2 {
		fmt.Fprintln(os.Stderr, "topoview: -nodes must be 1 or 2")
		os.Exit(2)
	}
	c := topology.New(topology.DefaultConfig(*nodes))
	fmt.Printf("Simulated cluster: %d × Dell PowerEdge XE8545\n\n", *nodes)
	fmt.Println("Links:")
	for _, l := range c.Links() {
		fmt.Printf("  %-22s %-9s %7.1f GB/s\n", l.Name, l.Class, l.Capacity()/1e9)
	}
	fmt.Println("\nPer-node theoretical aggregates:")
	for _, class := range fabric.MeasuredClasses() {
		fmt.Printf("  %-10s %7.1f GB/s\n", class, c.TheoreticalClassBW(class)/1e9)
	}
	fmt.Println()
	if err := core.Fig2(os.Stdout, core.Options{}); err != nil {
		fmt.Fprintln(os.Stderr, "topoview:", err)
		os.Exit(1)
	}
}
