package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// TestTopoviewGolden pins the rendered output for the paper testbed and one
// spec per generated fabric family; regenerate intentionally with
// `go test ./cmd/topoview -update-golden`.
func TestTopoviewGolden(t *testing.T) {
	cases := []struct {
		name  string
		nodes int
		topo  string
	}{
		{"paper", 2, ""},
		{"fat-tree", 0, "fat-tree:nodes=8"},
		{"rail-only", 0, "rail-only:nodes=8,rails=2"},
		{"dragonfly", 0, "dragonfly:nodes=8"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(&buf, tc.nodes, tc.topo); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s",
					tc.name, buf.String(), want)
			}
		})
	}
}

// TestTopoviewErrors: bad inputs fail before rendering anything.
func TestTopoviewErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 3, ""); err == nil {
		t.Error("nodes=3 accepted for the paper testbed")
	}
	if err := run(&buf, 2, "mesh:nodes=4"); err == nil {
		t.Error("unknown fabric kind accepted")
	}
	if buf.Len() != 0 {
		t.Errorf("error paths wrote output: %q", buf.String())
	}
}
