// Quickstart: simulate training a GPT-2-like model with DeepSpeed ZeRO-2 on
// one XE8545 node (4× A100 40 GB) and print what the paper measures —
// achieved model size, iteration time, attained TFLOP/s, memory usage and
// per-interconnect bandwidth.
package main

import (
	"fmt"
	"log"

	"llmbw/internal/fabric"
	"llmbw/internal/model"
	"llmbw/internal/train"
)

func main() {
	// Pick a strategy and let the library find the largest model that fits,
	// exactly as the paper grows the layer count to the memory limit.
	cfg := train.Config{
		Strategy:   train.ZeRO2,
		Nodes:      1,
		Iterations: 5,
		Warmup:     2,
	}
	cfg.Model = model.NewGPT(cfg.Profile().MaxLayers(model.DefaultBatchSize, 4))

	res, err := train.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("configuration:   %s on %d node(s)\n", cfg.Name(), cfg.Nodes)
	fmt.Printf("model:           %v\n", cfg.Model)
	fmt.Printf("iteration time:  %v\n", res.IterTime)
	fmt.Printf("throughput:      %.1f TFLOP/s across %d GPUs\n", res.AttainedTFLOPs, cfg.WorldSize())
	fmt.Printf("memory:          %v\n", res.Memory)
	fmt.Println("bandwidth (node-0 aggregates):")
	for _, class := range fabric.MeasuredClasses() {
		st := res.Stats[class]
		if st.Avg == 0 && st.Peak == 0 {
			continue
		}
		fmt.Printf("  %-10s avg %6.1f  p90 %6.1f  peak %6.1f GB/s\n",
			class, st.Avg/1e9, st.P90/1e9, st.Peak/1e9)
	}
}
