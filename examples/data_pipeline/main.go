// Data pipeline walkthrough: the substrate behind the paper's "Wikipedia
// dump extracted using WikiExtractor" workload. This example generates a
// synthetic article, trains the subword tokenizer, shows packed training
// sequences, and quantifies the host-side staging traffic the dataloader
// contributes per iteration (the small DRAM/PCIe background of Table IV's
// single-node rows).
package main

import (
	"fmt"

	"llmbw/internal/data"
	"llmbw/internal/model"
)

func main() {
	corpus := data.NewCorpus(2024)
	article := corpus.Article(0)
	fmt.Printf("article: %q\n", article.Title)
	fmt.Printf("text (first 140 bytes): %.140s…\n\n", article.Text)

	loader := data.NewLoader(2024, model.DefaultSeqLen, model.DefaultVocab)
	tok := loader.Tokenizer()
	fmt.Printf("tokenizer vocabulary: %d pieces\n", tok.VocabSize())
	fmt.Printf("tokens per byte over 32 articles: %.3f (GPT-2 on English: ~0.25)\n\n",
		loader.TokensPerByte(32))

	ids := tok.Encode("the bandwidth of the cluster")
	fmt.Printf("encode %q -> %d tokens, decodes back: %v\n\n",
		"the bandwidth of the cluster", len(ids),
		tok.Decode(ids) == "the bandwidth of the cluster")

	seq := loader.NextSequence()
	fmt.Printf("packed sequence: %d tokens (seq len %d)\n", len(seq), model.DefaultSeqLen)

	batch := loader.NextBatch(model.DefaultBatchSize)
	staging := data.BatchStagingBytes(model.DefaultBatchSize, model.DefaultSeqLen)
	fmt.Printf("micro-batch: %d sequences; host->GPU staging per iteration per GPU: %.0f KiB\n",
		len(batch), staging/1024)
	fmt.Println("\nthe training runner (internal/train) prefetches exactly this traffic on")
	fmt.Println("every GPU's PCIe link at the start of each iteration.")
}
