// NVMe placement study: a lab wants to train the largest possible model on a
// single XE8545 node with ZeRO-Infinity, and must decide how to populate and
// group its NVMe slots. This example reproduces the paper's Section V-E: it
// sweeps the seven placement configurations of Fig 14 and shows why RAID0
// volumes spanning CPU sockets waste throughput on xGMI, while topology-aware
// per-rank drives win.
package main

import (
	"fmt"
	"log"
	"os"

	"llmbw/internal/fabric"
	"llmbw/internal/memory"
	"llmbw/internal/model"
	"llmbw/internal/nvme"
	"llmbw/internal/report"
	"llmbw/internal/train"
)

func main() {
	base := train.Config{
		Strategy:   train.ZeRO3,
		Offload:    memory.NVMeOptimizer,
		Iterations: 2,
		Warmup:     1,
	}
	// The largest ZeRO-Infinity model that fits the node (paper: 33.3 B).
	g := model.NewGPT(base.Profile().MaxLayers(model.DefaultBatchSize, 4))
	fmt.Printf("largest single-node ZeRO-Infinity model: %v\n\n", g)

	t := report.NewTable("NVMe placement sweep (Fig 14 configurations)",
		"config", "drives", "volumes", "TFLOP/s", "xGMI avg GB/s", "PCIe-NVMe avg GB/s")
	best, bestName := 0.0, ""
	for _, p := range nvme.AllConfigs() {
		placement := p
		cfg := base
		cfg.Placement = &placement
		cfg.Model = g
		res, err := train.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		t.Row(p.Name, len(p.Drives), len(p.Volumes), res.AttainedTFLOPs,
			res.Stats[fabric.XGMI].Avg/1e9, res.Stats[fabric.PCIeNVME].Avg/1e9)
		if res.AttainedTFLOPs > best {
			best, bestName = res.AttainedTFLOPs, p.Name
		}
	}
	t.Render(os.Stdout)
	fmt.Printf("\nbest placement: %s at %.1f TFLOP/s\n", bestName, best)
	fmt.Println("-> the paper's recommendation: populate all slots, keep each rank's")
	fmt.Println("   volume on its own socket, and avoid RAID0 sets that span sockets.")
}
