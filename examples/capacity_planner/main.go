// Capacity planner: "I need to train an N-billion-parameter GPT-2-like
// model on one or two XE8545 nodes — which framework should I use, and what
// throughput should I expect?" This example answers the question the paper's
// evaluation enables: it walks every viable configuration in increasing
// order of operational complexity and reports fit, throughput, and the
// dominant interconnect.
//
// Usage:
//
//	go run ./examples/capacity_planner            # plan for 11.4 B params
//	go run ./examples/capacity_planner -size 20   # plan for 20 B params
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"llmbw/internal/fabric"
	"llmbw/internal/memory"
	"llmbw/internal/model"
	"llmbw/internal/report"
	"llmbw/internal/train"
)

// candidate configurations in increasing operational complexity: plain data
// parallelism first, NVMe offload last.
func candidates() []train.Config {
	return []train.Config{
		{Strategy: train.DDP, Nodes: 1},
		{Strategy: train.ZeRO2, Nodes: 1},
		{Strategy: train.ZeRO3, Nodes: 1},
		{Strategy: train.Megatron, Nodes: 1},
		{Strategy: train.ZeRO3, Nodes: 2},
		{Strategy: train.Megatron, Nodes: 2},
		{Strategy: train.ZeRO2, Offload: memory.CPUOffload, Nodes: 1},
		{Strategy: train.ZeRO3, Offload: memory.CPUOffload, Nodes: 1},
		{Strategy: train.ZeRO3, Offload: memory.NVMeOptimizer, Nodes: 1},
	}
}

// busiest returns the interconnect with the highest average utilization.
func busiest(res *train.Result) string {
	best, bestAvg := "idle", 0.0
	for _, class := range fabric.MeasuredClasses() {
		if avg := res.Stats[class].Avg; avg > bestAvg {
			best, bestAvg = class.String(), avg
		}
	}
	return fmt.Sprintf("%s (%.0f GB/s)", best, bestAvg/1e9)
}

func main() {
	size := flag.Float64("size", 11.4, "target model size in billion parameters")
	flag.Parse()

	g := model.NewGPT(model.LayersForParams(int64(*size * 1e9)))
	fmt.Printf("planning for %v\n\n", g)

	t := report.NewTable("Capacity plan (candidates in increasing operational complexity)",
		"configuration", "nodes", "fits", "TFLOP/s", "iteration", "busiest link")
	var recommended string
	var bestTput float64
	for _, cfg := range candidates() {
		maxB := model.NewGPT(cfg.Profile().MaxLayers(model.DefaultBatchSize, 4)).Params()
		if g.Params() > maxB {
			t.Row(cfg.Name(), cfg.Nodes, "no", "-", "-", "-")
			continue
		}
		cfg.Model = g
		cfg.Iterations = 2
		cfg.Warmup = 1
		res, err := train.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		t.Row(cfg.Name(), cfg.Nodes, "yes", res.AttainedTFLOPs, res.IterTime.String(), busiest(res))
		if recommended == "" || res.AttainedTFLOPs > bestTput {
			recommended, bestTput = cfg.Name(), res.AttainedTFLOPs
		}
	}
	t.Render(os.Stdout)
	if recommended == "" {
		fmt.Printf("\nno configuration fits %.1fB parameters on this cluster\n", *size)
		return
	}
	fmt.Printf("\nrecommendation: %s at %.0f TFLOP/s\n", recommended, bestTput)
}
