// Fabric characterization: before trusting a distributed-training setup, a
// practitioner should stress the inter-node path the way the paper's Section
// III-C does. This example runs the RoCE latency sweep and the four
// CPU/GPU-Direct bandwidth stress scenarios and prints where the AMD I/O-die
// crossbar eats your bandwidth.
package main

import (
	"fmt"
	"os"

	"llmbw/internal/fabric"
	"llmbw/internal/report"
	"llmbw/internal/sim"
	"llmbw/internal/stress"
	"llmbw/internal/topology"
)

func main() {
	c := topology.New(topology.DefaultConfig(2))

	lat := report.NewTable("RoCE latency (64 kB messages)", "verb", "same socket", "cross socket", "ratio")
	for _, v := range []stress.Verb{stress.Send, stress.Read, stress.Write} {
		same := stress.Latency(c, v, false, 64<<10)
		cross := stress.Latency(c, v, true, 64<<10)
		lat.Row(v.String(), same.String(), cross.String(),
			fmt.Sprintf("%.1fx", float64(cross)/float64(same)))
	}
	lat.Render(os.Stdout)
	fmt.Println()

	bw := report.NewTable("Bandwidth stress (10 s kernels)",
		"scenario", "RoCE attained", "of theoretical", "xGMI load GB/s")
	for _, res := range []stress.BandwidthResult{
		stress.CPURoCEStress(false, 10*sim.Second),
		stress.CPURoCEStress(true, 10*sim.Second),
		stress.GPURoCEStress(false, 10*sim.Second),
		stress.GPURoCEStress(true, 10*sim.Second),
	} {
		roce := res.Stats[fabric.RoCE]
		bw.Row(res.Scenario,
			fmt.Sprintf("%.1f GB/s", roce.Avg/1e9),
			fmt.Sprintf("%.0f%%", res.AttainedFraction(fabric.RoCE)*100),
			res.Stats[fabric.XGMI].Avg/1e9)
	}
	bw.Render(os.Stdout)
	fmt.Println()
	fmt.Println("takeaway: any path that enters AND leaves a socket through I/O SerDes")
	fmt.Println("(PCIe<->PCIe, PCIe<->xGMI) loses roughly half its bandwidth to the")
	fmt.Println("I/O-die crossbar — including same-socket GPUDirect RDMA.")
}
