// Dual-node scale-out study: should a lab with two mainstream GPU nodes run
// Megatron-LM model parallelism or DeepSpeed ZeRO across them? This example
// reproduces the paper's Section IV decision: it trains every framework at
// its maximum model size on one and two nodes, prints the trade-off, and
// shows why Megatron-LM collapses across the 200 GbE RoCE boundary while
// ZeRO holds its throughput.
package main

import (
	"fmt"
	"log"
	"os"

	"llmbw/internal/fabric"
	"llmbw/internal/model"
	"llmbw/internal/report"
	"llmbw/internal/train"
)

func runMax(strategy train.Strategy, nodes int) *train.Result {
	cfg := train.Config{Strategy: strategy, Nodes: nodes, Iterations: 3, Warmup: 1}
	cfg.Model = model.NewGPT(cfg.Profile().MaxLayers(model.DefaultBatchSize, 4))
	res, err := train.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	strategies := []train.Strategy{train.DDP, train.Megatron, train.ZeRO1, train.ZeRO2, train.ZeRO3}

	t := report.NewTable("Scale-out trade-off: one node vs two (max model each)",
		"framework", "1-node size (B)", "1-node TFLOP/s",
		"2-node size (B)", "2-node TFLOP/s", "RoCE avg GB/s")
	dual := make(map[train.Strategy]*train.Result)
	for _, s := range strategies {
		one := runMax(s, 1)
		two := runMax(s, 2)
		dual[s] = two
		t.Row(s.String(),
			one.Config.Model.ParamsB(), one.AttainedTFLOPs,
			two.Config.Model.ParamsB(), two.AttainedTFLOPs,
			two.Stats[fabric.RoCE].Avg/1e9)
	}
	t.Render(os.Stdout)

	meg, z3 := dual[train.Megatron], dual[train.ZeRO3]
	fmt.Printf("\nMegatron-LM dual-node attains %.0f TFLOP/s; ZeRO-3 attains %.0f (%.1fx)\n",
		meg.AttainedTFLOPs, z3.AttainedTFLOPs, z3.AttainedTFLOPs/meg.AttainedTFLOPs)
	fmt.Println("-> the paper's conclusion: use ZeRO for multi-node training on mainstream")
	fmt.Println("   clusters; Megatron-LM's per-layer all-reduces drown in inter-node latency.")
}
