// Package whatif contains the sensitivity and ablation studies the paper's
// conclusions invite but its testbed could not run: what happens with faster
// or slower inter-node links, with all eight NVMe slots populated (the
// paper's closing recommendation), with different batch sizes, with the
// I/O-die crossbar contention removed, and with activation checkpointing
// toggled. Each study reuses the exact simulation substrate of the paper
// experiments, varying one knob.
package whatif

import (
	"fmt"
	"io"

	"llmbw/internal/fabric"
	"llmbw/internal/memory"
	"llmbw/internal/model"
	"llmbw/internal/nvme"
	"llmbw/internal/report"
	"llmbw/internal/sim"
	"llmbw/internal/stress"
	"llmbw/internal/topology"
	"llmbw/internal/train"
)

// Point is one sample of a sweep.
type Point struct {
	Label  string
	X      float64
	TFLOPs float64
	SizeB  float64
}

func runCfg(cfg train.Config) (*train.Result, error) {
	cfg.Iterations = 2
	cfg.Warmup = 1
	if cfg.Model.Layers == 0 {
		cfg.Model = model.NewGPT(cfg.Profile().MaxLayers(model.DefaultBatchSize, topology.GPUsPerNode))
	}
	// Sweep points repeat across studies (the same base run anchors several
	// figures) and cmd/servesim replays them; the result tier dedupes all of
	// it. Fault-injection configs fall through to a plain Run inside.
	return train.RunCached(cfg)
}

// RoCEBandwidthSweep measures dual-node throughput versus per-NIC Ethernet
// bandwidth for Megatron-LM and ZeRO-3: how fast would the network have to
// be before Megatron-LM stops collapsing? The x axis is the per-NIC
// bidirectional aggregate in GB/s (the paper's NICs are 50).
func RoCEBandwidthSweep(bwsGB []float64) ([]Point, error) {
	var out []Point
	for _, strat := range []train.Strategy{train.Megatron, train.ZeRO3} {
		for _, bw := range bwsGB {
			res, err := runCfg(train.Config{Strategy: strat, Nodes: 2, RoCEBW: bw * 1e9})
			if err != nil {
				return nil, err
			}
			out = append(out, Point{
				Label:  strat.String(),
				X:      bw,
				TFLOPs: res.AttainedTFLOPs,
				SizeB:  res.Config.Model.ParamsB(),
			})
		}
	}
	return out, nil
}

// NVMeScalingSweep measures ZeRO-Infinity throughput versus populated NVMe
// slots (1, 2, 4, 8 — topology-aware layouts A, B-local variant, G, H) at
// the largest model, testing the paper's claim that eight drives approach
// CPU-offload throughput.
func NVMeScalingSweep() ([]Point, error) {
	layouts := []nvme.Placement{
		nvme.ConfigA(), nvme.ConfigD(), nvme.ConfigG(), nvme.ConfigH(),
	}
	base := train.Config{Strategy: train.ZeRO3, Offload: memory.NVMeOptimizer}
	g := model.NewGPT(base.Profile().MaxLayers(model.DefaultBatchSize, topology.GPUsPerNode))
	var out []Point
	for _, p := range layouts {
		placement := p
		cfg := base
		cfg.Placement = &placement
		cfg.Model = g
		res, err := runCfg(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, Point{
			Label:  "config " + p.Name,
			X:      float64(len(p.Drives)),
			TFLOPs: res.AttainedTFLOPs,
			SizeB:  g.ParamsB(),
		})
	}
	// Reference: CPU offload at the same model is not possible (the 29.6B
	// model exceeds the CPU-offload fit), so report ZeRO-2 (CPU) at its own
	// maximum as the paper's comparison point.
	cpu, err := runCfg(train.Config{Strategy: train.ZeRO2, Offload: memory.CPUOffload})
	if err != nil {
		return nil, err
	}
	out = append(out, Point{Label: "ZeRO-2 (CPU) reference", X: 0,
		TFLOPs: cpu.AttainedTFLOPs, SizeB: cpu.Config.Model.ParamsB()})
	return out, nil
}

// BatchSizeSweep measures ZeRO-3 throughput and maximum model size versus
// per-GPU batch size — the trade the paper alludes to in Sec V-B2 ("the free
// space on GPU memory can also be used for larger batch sizes").
func BatchSizeSweep(batches []int) ([]Point, error) {
	var out []Point
	for _, b := range batches {
		cfg := train.Config{Strategy: train.ZeRO3, BatchPerGPU: b}
		maxL := cfg.Profile().MaxLayers(b, topology.GPUsPerNode)
		if maxL == 0 {
			out = append(out, Point{Label: "ZeRO-3", X: float64(b)})
			continue
		}
		cfg.Model = model.NewGPT(maxL)
		res, err := runCfg(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, Point{Label: "ZeRO-3", X: float64(b),
			TFLOPs: res.AttainedTFLOPs, SizeB: cfg.Model.ParamsB()})
	}
	return out, nil
}

// xbarScenarios is the display order of the crossbar-ablation results — the
// paper's Fig 4 row order. XbarAblation keys its maps with exactly these
// names and XbarReport iterates this slice (never the maps), which is what
// keeps the rendered table byte-stable; a determinism regression test pins
// the two together.
var xbarScenarios = []string{
	"CPU-RoCE same-socket", "CPU-RoCE cross-socket",
	"GPU-RoCE same-socket", "GPU-RoCE cross-socket",
}

// XbarAblation reruns the Fig 4 stress tests with the I/O-die crossbar
// contention effectively removed (budget raised to the full SerDes rate),
// isolating how much of the paper's degradation the hypothesis explains.
func XbarAblation(dur sim.Time) (withXbar, withoutXbar map[string]float64) {
	run := func(xbar float64) map[string]float64 {
		out := make(map[string]float64)
		mk := func(cross bool, gpu bool) stress.BandwidthResult {
			cfg := topology.DefaultConfig(2)
			if xbar > 0 {
				cfg.XbarBW = xbar
			}
			c := topology.New(cfg)
			if gpu {
				return stress.GPURoCEStressOn(c, cross, dur)
			}
			return stress.CPURoCEStressOn(c, cross, dur)
		}
		out["CPU-RoCE same-socket"] = mk(false, false).AttainedFraction(fabric.RoCE)
		out["CPU-RoCE cross-socket"] = mk(true, false).AttainedFraction(fabric.RoCE)
		out["GPU-RoCE same-socket"] = mk(false, true).AttainedFraction(fabric.RoCE)
		out["GPU-RoCE cross-socket"] = mk(true, true).AttainedFraction(fabric.RoCE)
		return out
	}
	return run(0), run(1e12)
}

// CheckpointingAblation reports the maximum ZeRO-3 model size with and
// without activation checkpointing — the design choice that lets DeepSpeed
// trade one recompute forward pass for the memory that determines Fig 6.
func CheckpointingAblation() (withCkpt, withoutCkpt model.GPT) {
	on := memory.ZeROProfile(3, 4, memory.NoOffload)
	off := on
	off.ActivationCkpt = false
	return on.MaxModel(model.DefaultBatchSize, topology.GPUsPerNode),
		off.MaxModel(model.DefaultBatchSize, topology.GPUsPerNode)
}

// ---- report renderers (registered as extension experiments in core) ----

// RoCEReport runs and prints the RoCE bandwidth sweep.
func RoCEReport(w io.Writer) error {
	pts, err := RoCEBandwidthSweep([]float64{12.5, 25, 50, 100, 200, 400})
	if err != nil {
		return err
	}
	t := report.NewTable("What-if: dual-node throughput vs per-NIC bandwidth",
		"framework", "NIC GB/s", "TFLOP/s", "model (B)")
	for _, p := range pts {
		t.Row(p.Label, p.X, p.TFLOPs, p.SizeB)
	}
	t.Render(w)
	fmt.Fprintln(w, "finding: below the paper's 50 GB/s NICs both frameworks lose throughput,")
	fmt.Fprintln(w, "Megatron-LM fastest; above them neither improves — the EPYC I/O-die")
	fmt.Fprintln(w, "crossbar (not the NIC) becomes the binding link, so upgrading the network")
	fmt.Fprintln(w, "alone cannot rescue Megatron-LM on this platform.")
	return nil
}

// NVMeScalingReport runs and prints the drive-count sweep.
func NVMeScalingReport(w io.Writer) error {
	pts, err := NVMeScalingSweep()
	if err != nil {
		return err
	}
	t := report.NewTable("What-if: ZeRO-Infinity throughput vs populated NVMe slots",
		"layout", "drives", "TFLOP/s", "model (B)")
	for _, p := range pts {
		t.Row(p.Label, p.X, p.TFLOPs, p.SizeB)
	}
	t.Render(w)
	fmt.Fprintln(w, "finding: eight topology-aware drives bring NVMe offload into the same")
	fmt.Fprintln(w, "throughput band as CPU offload — the paper's closing prediction.")
	return nil
}

// BatchReport runs and prints the batch-size sweep.
func BatchReport(w io.Writer) error {
	pts, err := BatchSizeSweep([]int{4, 8, 16, 32, 64})
	if err != nil {
		return err
	}
	t := report.NewTable("What-if: ZeRO-3 max size and throughput vs per-GPU batch",
		"batch/GPU", "max model (B)", "TFLOP/s")
	for _, p := range pts {
		t.Row(int(p.X), p.SizeB, p.TFLOPs)
	}
	t.Render(w)
	fmt.Fprintln(w, "finding: larger batches raise attained TFLOP/s but shrink the largest")
	fmt.Fprintln(w, "trainable model — the memory trade the paper notes in Sec V-B2.")
	return nil
}

// XbarReport runs and prints the crossbar ablation.
func XbarReport(w io.Writer, dur sim.Time) error {
	with, without := XbarAblation(dur)
	t := report.NewTable("Ablation: I/O-die crossbar contention (attained fraction of RoCE theoretical)",
		"scenario", "with crossbar", "without", "paper (with)")
	for _, k := range xbarScenarios {
		t.Row(k, fmt.Sprintf("%.0f%%", with[k]*100), fmt.Sprintf("%.0f%%", without[k]*100),
			fmt.Sprintf("%.0f%%", report.Fig4Stress[k]*100))
	}
	t.Render(w)
	fmt.Fprintln(w, "finding: removing the modelled SerDes-crossbar contention restores every")
	fmt.Fprintln(w, "scenario to near-theoretical — the degradations of Fig 4 are entirely the")
	fmt.Fprintln(w, "crossbar, supporting the paper's Section III-C4 hypothesis.")
	return nil
}

// CheckpointReport prints the activation-checkpointing ablation.
func CheckpointReport(w io.Writer) error {
	on, off := CheckpointingAblation()
	t := report.NewTable("Ablation: activation checkpointing (ZeRO-3, single node)",
		"checkpointing", "max model (B)", "layers")
	t.Row("on (paper's DeepSpeed configs)", on.ParamsB(), on.Layers)
	t.Row("off", off.ParamsB(), off.Layers)
	t.Render(w)
	fmt.Fprintf(w, "finding: checkpointing multiplies the largest trainable model by %.1fx\n",
		on.ParamsB()/off.ParamsB())
	return nil
}

// HybridReport compares pure tensor parallelism against TP×PP hybrids on two
// nodes — the deployment question behind the paper's Megatron configuration.
func HybridReport(w io.Writer) error {
	g := model.NewGPT(model.LayersForParams(10e9))
	t := report.NewTable("Extension: Megatron-LM hybrid parallelism across two nodes (10 B model)",
		"TP", "PP", "TFLOP/s", "RoCE avg GB/s")
	for _, d := range []struct{ tp, pp int }{{8, 1}, {4, 2}, {2, 4}, {1, 8}} {
		cfg := train.Config{Strategy: train.Megatron, Nodes: 2,
			TensorParallel: d.tp, PipelineParallel: d.pp, Model: g}
		res, err := runCfg(cfg)
		if err != nil {
			return err
		}
		t.Row(d.tp, d.pp, res.AttainedTFLOPs, res.Stats[fabric.RoCE].Avg/1e9)
	}
	t.Render(w)
	fmt.Fprintln(w, "finding: keeping tensor parallelism inside the node and pipelining across")
	fmt.Fprintln(w, "it recovers most of Megatron-LM's dual-node collapse.")
	return nil
}

// StragglerStudy quantifies synchronous data parallelism's sensitivity to a
// slow rank, using the per-rank DDP reference implementation: one GPU runs
// at the given slowdown factor (e.g. 1.3 = 30% slower, a thermally throttled
// part), and the whole job pays.
func StragglerStudy(slowdowns []float64) ([]Point, error) {
	cfg := train.Config{Strategy: train.DDP}
	g := model.NewGPT(cfg.Profile().MaxLayers(model.DefaultBatchSize, topology.GPUsPerNode))
	var out []Point
	for _, f := range slowdowns {
		mp := train.MultiProcConfig{Model: g, Iterations: 3}
		if f > 1 {
			mp.RankSlowdown = map[int]float64{0: f}
		}
		res, err := train.RunDDPMultiProcess(mp)
		if err != nil {
			return nil, err
		}
		out = append(out, Point{Label: "DDP", X: f, TFLOPs: res.AttainedTFLOPs, SizeB: g.ParamsB()})
	}
	return out, nil
}

// DegradedNICStudy trains ZeRO-3 across two nodes while one NIC's Ethernet
// link degrades to the given fraction of its bandwidth halfway through the
// run — a flapping transceiver or congested switch port. Returns nominal and
// degraded throughput.
func DegradedNICStudy(fraction float64, degradeAfter sim.Time) (nominal, degraded float64, err error) {
	base := train.Config{Strategy: train.ZeRO3, Nodes: 2, Iterations: 3, Warmup: 1}
	g := model.NewGPT(base.Profile().MaxLayers(model.DefaultBatchSize, topology.GPUsPerNode))
	base.Model = g
	res, err := train.RunCached(base)
	if err != nil {
		return 0, 0, err
	}
	nominal = res.AttainedTFLOPs

	faulty := base
	faulty.FaultInjection = func(c *topology.Cluster) {
		link := c.RoCELink(topology.NIC{Node: 0, Socket: 0})
		c.Eng.Schedule(degradeAfter, func() {
			c.Net.SetCapacity(link, link.Capacity()*fraction)
		})
	}
	res, err = train.Run(faulty)
	if err != nil {
		return 0, 0, err
	}
	return nominal, res.AttainedTFLOPs, nil
}

// ResilienceReport prints the straggler and degraded-NIC studies.
func ResilienceReport(w io.Writer) error {
	pts, err := StragglerStudy([]float64{1.0, 1.1, 1.3, 1.5, 2.0})
	if err != nil {
		return err
	}
	t := report.NewTable("What-if: one straggling GPU under synchronous DDP",
		"slowdown of one rank", "aggregate TFLOP/s", "fraction of nominal")
	nominal := pts[0].TFLOPs
	for _, p := range pts {
		t.Row(fmt.Sprintf("%.1fx", p.X), p.TFLOPs, fmt.Sprintf("%.0f%%", p.TFLOPs/nominal*100))
	}
	t.Render(w)

	nom, deg, err := DegradedNICStudy(0.25, 5*sim.Second)
	if err != nil {
		return err
	}
	t2 := report.NewTable("What-if: one NIC degrades to 25% mid-run (ZeRO-3, dual node)",
		"condition", "TFLOP/s")
	t2.Row("nominal", nom)
	t2.Row("degraded NIC", deg)
	t2.Render(w)
	fmt.Fprintln(w, "finding: synchronous training inherits the slowest rank's pace and the")
	fmt.Fprintln(w, "weakest link's bandwidth — monitoring per-device health matters as much")
	fmt.Fprintln(w, "as the average numbers the paper reports.")
	return nil
}

// PlatformReport compares the mainstream XE8545 cluster against a
// purpose-built AI platform of identical GPU count across two nodes — the
// contrast the paper's introduction draws ("purpose-built AI clusters …
// are simply out of reach for many researchers").
func PlatformReport(w io.Writer) error {
	t := report.NewTable("Extension: mainstream vs purpose-built platform (dual node, max models)",
		"framework", "mainstream TFLOP/s", "purpose-built TFLOP/s", "gain")
	for _, strat := range []train.Strategy{train.DDP, train.Megatron, train.ZeRO3} {
		main, err := runCfg(train.Config{Strategy: strat, Nodes: 2})
		if err != nil {
			return err
		}
		pb, err := runCfg(train.Config{Strategy: strat, Nodes: 2, PurposeBuilt: true})
		if err != nil {
			return err
		}
		t.Row(strat.String(), main.AttainedTFLOPs, pb.AttainedTFLOPs,
			fmt.Sprintf("%.1fx", pb.AttainedTFLOPs/main.AttainedTFLOPs))
	}
	t.Render(w)
	fmt.Fprintln(w, "finding: the purpose-built fabric helps Megatron-LM most (~1.8x) but even")
	fmt.Fprintln(w, "there its per-layer synchronization keeps it behind ZeRO — and ZeRO/DDP")
	fmt.Fprintln(w, "already reach most of the purpose-built numbers on mainstream hardware,")
	fmt.Fprintln(w, "which is exactly the democratization argument the paper makes.")
	return nil
}

// OverlapAblation quantifies the communication/computation overlap each
// strategy's schedule buys: the same compiled iteration program is re-run
// with the RewriteSerializeComm schedule rewrite, which turns every
// stream-overlapped collective into an exposed synchronous one at its issue
// point. The gap between a schedule and its serialized rewrite is the value
// of DDP's gradient bucketing and ZeRO's prefetch pipelines — measured as a
// program transformation on the schedule IR rather than a forked strategy
// implementation.
func OverlapAblation() (overlapped, serialized []Point, err error) {
	cases := []struct {
		label string
		cfg   train.Config
	}{
		{"DDP", train.Config{Strategy: train.DDP}},
		{"ZeRO-2", train.Config{Strategy: train.ZeRO2}},
		{"ZeRO-3", train.Config{Strategy: train.ZeRO3}},
		{"ZeRO-3 dual-node", train.Config{Strategy: train.ZeRO3, Nodes: 2}},
	}
	for _, c := range cases {
		base, err := runCfg(c.cfg)
		if err != nil {
			return nil, nil, err
		}
		serial := c.cfg
		serial.Model = base.Config.Model // same model for both runs
		serial.Rewrite = train.RewriteSerializeComm
		ser, err := runCfg(serial)
		if err != nil {
			return nil, nil, err
		}
		overlapped = append(overlapped, Point{Label: c.label,
			TFLOPs: base.AttainedTFLOPs, X: base.IterTime.ToSeconds() * 1e3})
		serialized = append(serialized, Point{Label: c.label,
			TFLOPs: ser.AttainedTFLOPs, X: ser.IterTime.ToSeconds() * 1e3})
	}
	return overlapped, serialized, nil
}

// OverlapReport prints the overlap ablation.
func OverlapReport(w io.Writer) error {
	over, serial, err := OverlapAblation()
	if err != nil {
		return err
	}
	t := report.NewTable("Ablation: communication/computation overlap (schedule-IR serialize-comm rewrite)",
		"configuration", "overlapped ms", "serialized ms", "overlap gain")
	for i := range over {
		gain := serial[i].X/over[i].X - 1
		t.Row(over[i].Label, fmt.Sprintf("%.1f", over[i].X), fmt.Sprintf("%.1f", serial[i].X),
			fmt.Sprintf("%.0f%%", gain*100))
	}
	t.Render(w)
	fmt.Fprintln(w, "finding: on one node NVLink keeps the exposed cost of serialization small")
	fmt.Fprintln(w, "(compute hides only a few percent); across nodes the slow RoCE collectives")
	fmt.Fprintln(w, "make ZeRO-3's prefetch pipeline worth over half an iteration — overlap is")
	fmt.Fprintln(w, "what keeps the dual-node numbers of Table VI trainable at all.")
	return nil
}

// ScalingStudy runs weak scaling beyond the paper's two nodes: each
// framework trains a fixed-size model on 1..maxNodes nodes of the same
// mainstream cluster design (per-GPU batch fixed, so global work grows with
// the cluster).
func ScalingStudy(maxNodes int, sizeB float64) ([]Point, error) {
	g := model.NewGPT(model.LayersForParams(int64(sizeB * 1e9)))
	var out []Point
	for _, strat := range []train.Strategy{train.DDP, train.ZeRO3, train.Megatron} {
		for nodes := 1; nodes <= maxNodes; nodes *= 2 {
			cfg := train.Config{Strategy: strat, Nodes: nodes, Model: g}
			if !cfg.Profile().Fits(g, model.DefaultBatchSize, topology.GPUsPerNode) {
				continue
			}
			res, err := runCfg(cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, Point{Label: strat.String(), X: float64(nodes),
				TFLOPs: res.AttainedTFLOPs, SizeB: sizeB})
		}
	}
	return out, nil
}

// ScalingReport prints the weak-scaling study.
func ScalingReport(w io.Writer) error {
	pts, err := ScalingStudy(8, 1.2)
	if err != nil {
		return err
	}
	t := report.NewTable("Extension: weak scaling beyond the paper's two nodes (1.2 B model)",
		"framework", "nodes", "GPUs", "TFLOP/s", "TFLOP/s per GPU")
	for _, p := range pts {
		gpus := p.X * 4
		t.Row(p.Label, int(p.X), int(gpus), p.TFLOPs, p.TFLOPs/gpus)
	}
	t.Render(w)
	fmt.Fprintln(w, "finding: DDP and ZeRO keep most of their per-GPU throughput to 8 nodes")
	fmt.Fprintln(w, "(inter-node volume per GPU shrinks as the ring grows), while Megatron-LM's")
	fmt.Fprintln(w, "per-layer all-reduces make it worse with every node added.")
	return nil
}
