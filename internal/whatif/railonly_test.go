package whatif

import (
	"bytes"
	"strings"
	"testing"

	"llmbw/internal/train"
)

// TestRailOnlyStudyShardInvariant: the fabric comparison must not depend on
// the simulation shard count — the report is golden-pinned in core, and the
// -shards knob must never move its bytes.
func TestRailOnlyStudyShardInvariant(t *testing.T) {
	render := func(shards int) string {
		var buf bytes.Buffer
		if err := RailOnlyReport(&buf, "multiring", shards, ""); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := render(1), render(4); a != b {
		t.Errorf("report differs between 1 and 4 shards:\n%s\nvs\n%s", a, b)
	}
}

func TestRailOnlyStudyErrors(t *testing.T) {
	if _, err := RailOnlyStudy([]string{"mesh:nodes=4"}, []train.Strategy{train.DDP}, "2level", 1); err == nil {
		t.Error("bad spec accepted")
	}
	if _, err := RailOnlyStudy([]string{"rail-only:nodes=4"}, []train.Strategy{train.DDP}, "bisect", 1); err == nil {
		t.Error("bad algo accepted")
	}
	var buf bytes.Buffer
	if err := RailOnlyReport(&buf, "", 1, "rail-only:nodes=8,rails=2"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rail-only:nodes=8,pod=4,rails=2") {
		t.Error("extra -topo spec missing from the report")
	}
}
