package whatif

import (
	"bytes"
	"strings"
	"testing"
)

// TestServingBandwidthSensitivity pins the study's headline claim: starving
// the inter-node fabric must cost disaggregated serving goodput (or at least
// first-token latency) on every swept fabric.
func TestServingBandwidthSensitivity(t *testing.T) {
	pts, err := ServingBandwidthSweep([]float64{0.05, 1})
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string][]ServePoint{}
	for _, p := range pts {
		byLabel[p.Label] = append(byLabel[p.Label], p)
	}
	if len(byLabel) != 3 {
		t.Fatalf("sweep covered %d fabrics, want 3", len(byLabel))
	}
	for label, ps := range byLabel {
		starved, nominal := ps[0], ps[1]
		if starved.TTFTp99Ms <= nominal.TTFTp99Ms {
			t.Errorf("%s: TTFT p99 did not grow at 5%% bandwidth: %.2fms vs %.2fms",
				label, starved.TTFTp99Ms, nominal.TTFTp99Ms)
		}
		if starved.Goodput >= nominal.Goodput {
			t.Errorf("%s: goodput did not drop at 5%% bandwidth: %.1f vs %.1f",
				label, starved.Goodput, nominal.Goodput)
		}
	}
}

// TestServingReportDeterministic: the ext-serve report must render
// byte-identically run to run (it feeds the golden harness in core).
func TestServingReportDeterministic(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		if err := ServingReport(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := render()
	if a == "" || !strings.Contains(a, "finding:") {
		t.Fatalf("malformed report:\n%s", a)
	}
	if b := render(); a != b {
		t.Errorf("report differs between runs:\n%s\nvs\n%s", a, b)
	}
}
