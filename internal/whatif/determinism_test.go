package whatif

import (
	"bytes"
	"sort"
	"testing"

	"llmbw/internal/collective"
	"llmbw/internal/fabric"
	"llmbw/internal/sim"
)

// TestXbarScenarioKeysComplete pins XbarReport's fixed display list to the
// key set XbarAblation actually produces: the report iterates xbarScenarios
// instead of the maps (map order is randomized), so a scenario added to the
// ablation but not the list would silently vanish from the table.
func TestXbarScenarioKeysComplete(t *testing.T) {
	with, without := XbarAblation(100 * sim.Millisecond)
	for _, m := range []map[string]float64{with, without} {
		if len(m) != len(xbarScenarios) {
			t.Fatalf("ablation has %d scenarios, display list has %d", len(m), len(xbarScenarios))
		}
		got := make([]string, 0, len(m))
		for k := range m {
			got = append(got, k)
		}
		sort.Strings(got)
		want := append([]string(nil), xbarScenarios...)
		sort.Strings(want)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("scenario key mismatch: map has %q, display list has %q", got[i], want[i])
			}
		}
	}
}

// TestXbarReportStableAcrossIssuePaths renders the crossbar ablation under
// every combination of the collective plan-reuse and batched-admission
// toggles and requires identical bytes: the what-if studies must be blind to
// which issue machinery produced them.
func TestXbarReportStableAcrossIssuePaths(t *testing.T) {
	render := func(plans, batch bool) []byte {
		defer func(p, b bool) {
			collective.CompiledPlans, fabric.BatchAdmission = p, b
		}(collective.CompiledPlans, fabric.BatchAdmission)
		collective.CompiledPlans, fabric.BatchAdmission = plans, batch
		var buf bytes.Buffer
		if err := XbarReport(&buf, 100*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	fast := render(true, true)
	for _, m := range []struct {
		name         string
		plans, batch bool
	}{
		{"legacy", false, false},
		{"plans-only", true, false},
		{"batch-only", false, true},
	} {
		if got := render(m.plans, m.batch); !bytes.Equal(fast, got) {
			t.Errorf("%s report differs from fast path:\n%s\n----\n%s", m.name, fast, got)
		}
	}
}

// TestXbarReportByteStable renders the crossbar ablation twice from scratch
// and requires identical bytes — the regression test for the
// ordered-map-emit audit of this package's map-backed report.
func TestXbarReportByteStable(t *testing.T) {
	var bufs [2]bytes.Buffer
	for i := range bufs {
		if err := XbarReport(&bufs[i], 100*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Errorf("XbarReport output differs across identical runs:\n%s\n----\n%s",
			bufs[0].String(), bufs[1].String())
	}
}
