package whatif

import (
	"fmt"
	"io"

	"llmbw/internal/model"
	"llmbw/internal/report"
	"llmbw/internal/topology"
	"llmbw/internal/train"
)

// FabricPoint is one (fabric, strategy) sample of the datacenter-fabric
// comparison: training performance next to the switch-hardware budget the
// fabric demands.
type FabricPoint struct {
	Spec        string
	Strategy    string
	IterMs      float64
	TFLOPs      float64
	SwitchPorts int
	TrunkLinks  int
}

// dcRun trains one strategy on a generated datacenter fabric.
func dcRun(strategy train.Strategy, spec, algo string, shards int) (*train.Result, error) {
	return train.Run(train.Config{
		Strategy:   strategy,
		Model:      model.NewGPT(8),
		Topo:       spec,
		Algo:       algo,
		Shards:     shards,
		Iterations: 2,
		Warmup:     1,
	})
}

// RailOnlyStudy trains the given strategies on each fabric spec with the
// same hierarchical algorithm and returns one point per (spec, strategy)
// pair, in the given order. The interesting comparison is rail-only against
// fat-tree: hierarchical collectives keep inter-node traffic rail-local
// (reduce-scatter and ring legs never cross rails), so the full-bisection
// core the fat-tree pays for goes unused.
func RailOnlyStudy(specs []string, strategies []train.Strategy, algo string, shards int) ([]FabricPoint, error) {
	var out []FabricPoint
	for _, spec := range specs {
		cfg, err := topology.ParseTopoSpec(spec)
		if err != nil {
			return nil, err
		}
		dc, err := topology.NewDC(cfg)
		if err != nil {
			return nil, err
		}
		trunks := len(dc.Links()) - cfg.Nodes*(1+cfg.Rails)
		for _, strat := range strategies {
			res, err := dcRun(strat, spec, algo, shards)
			if err != nil {
				return nil, err
			}
			out = append(out, FabricPoint{
				Spec:        cfg.Spec(),
				Strategy:    strat.String(),
				IterMs:      res.IterTime.ToSeconds() * 1e3,
				TFLOPs:      res.AttainedTFLOPs,
				SwitchPorts: cfg.SwitchPorts(),
				TrunkLinks:  trunks,
			})
		}
	}
	return out, nil
}

// RailOnlyReport prints the rail-only-vs-fat-tree comparison at 16 and 64
// nodes. algo selects the collective algorithm ("" means 2-level); shards the
// simulation sharding; extraSpec, when non-empty, appends a custom fabric to
// the comparison (the -topo flag of cmd/bwchar).
func RailOnlyReport(w io.Writer, algo string, shards int, extraSpec string) error {
	if algo == "" {
		algo = "2level"
	}
	strategies := []train.Strategy{train.DDP, train.ZeRO3}
	for _, nodes := range []int{16, 64} {
		specs := []string{
			fmt.Sprintf("fat-tree:nodes=%d", nodes),
			fmt.Sprintf("rail-only:nodes=%d", nodes),
			fmt.Sprintf("dragonfly:nodes=%d", nodes),
		}
		if extraSpec != "" {
			specs = append(specs, extraSpec)
		}
		pts, err := RailOnlyStudy(specs, strategies, algo, shards)
		if err != nil {
			return err
		}
		t := report.NewTable(
			fmt.Sprintf("What-if: rail-only vs fat-tree at %d nodes (%s collectives)", nodes, algo),
			"fabric", "strategy", "iter ms", "TFLOP/s", "switch ports", "trunk links")
		// Per-strategy fat-tree baselines, in strategy order (index i of each
		// spec's block): everything else is reported relative to them.
		base := pts[:len(strategies)]
		for i, p := range pts {
			rel := p.IterMs / base[i%len(strategies)].IterMs
			t.Row(p.Spec, p.Strategy, fmt.Sprintf("%.2f (%.2fx)", p.IterMs, rel),
				fmt.Sprintf("%.1f", p.TFLOPs), p.SwitchPorts, p.TrunkLinks)
		}
		t.Render(w)
	}
	fmt.Fprintln(w, "finding: with hierarchical collectives the ring legs stay inside each rail,")
	fmt.Fprintln(w, "so a rail-only fabric matches the fat-tree's iteration time within a few")
	fmt.Fprintln(w, "percent while deleting every trunk link and two thirds of the switch ports —")
	fmt.Fprintln(w, "the rail-optimized-network argument, reproduced on the simulated cluster.")
	return nil
}
