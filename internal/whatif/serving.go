package whatif

import (
	"fmt"
	"io"

	"llmbw/internal/report"
	"llmbw/internal/serve"
	"llmbw/internal/topology"
)

// ServePoint is one sample of a serving sweep: latency-SLO goodput and the
// tail latencies that gate it.
type ServePoint struct {
	Label      string
	X          float64
	Goodput    float64 // requests/s meeting both SLOs
	Throughput float64 // requests/s completed
	TTFTp99Ms  float64
	TBTp99Ms   float64
}

// baseServeCfg is the shared scenario of the serving studies: the paper's
// 1.3 B model at TP=4, a moderate open-loop load, and the serving layer's
// default SLOs.
func baseServeCfg() serve.Config {
	return serve.Config{
		Requests:     48,
		Warmup:       4,
		PromptTokens: 512,
		DecodeTokens: 32,
		MaxBatch:     16,
	}
}

func servePoint(label string, x float64, res *serve.Result) ServePoint {
	return ServePoint{
		Label:      label,
		X:          x,
		Goodput:    res.GoodputRPS,
		Throughput: res.ThroughputRPS,
		TTFTp99Ms:  res.TTFT.P99.ToSeconds() * 1e3,
		TBTp99Ms:   res.TBT.P99.ToSeconds() * 1e3,
	}
}

// ServingLoadSweep measures goodput versus offered load for the two testbed
// placements. Colocated serving loses goodput first through TBT: every
// admitted prompt's prefill stalls the decode batch. Disaggregation moves
// that stall off the decode node at the price of shipping each request's KV
// cache across the fabric.
func ServingLoadSweep(rates []float64) ([]ServePoint, error) {
	var out []ServePoint
	for _, disagg := range []bool{false, true} {
		label := "colocated"
		if disagg {
			label = "disaggregated"
		}
		for _, rate := range rates {
			cfg := baseServeCfg()
			cfg.Disaggregated = disagg
			cfg.RatePerSec = rate
			res, err := serve.RunCached(cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, servePoint(label, rate, res))
		}
	}
	return out, nil
}

// ServingBandwidthSweep measures disaggregated serving at a fixed offered
// load with the inter-node fabric scaled to each fraction of nominal — the
// serving-side analogue of the training RoCE sweep, since the KV-cache
// shipment is the only inter-node traffic a disaggregated deployment has.
// Three fabrics are swept: the paper testbed's RoCE NICs (nominal 50 GB/s)
// and the generated fat-tree and rail-only datacenters (nominal 50 GB/s rail
// NICs).
func ServingBandwidthSweep(fractions []float64) ([]ServePoint, error) {
	fabrics := []struct {
		label   string
		topo    string // "" = testbed
		nominal float64
	}{
		{"testbed RoCE", "", topology.RoCELinkBW},
		{"fat-tree:nodes=16", "fat-tree:nodes=16", topology.DCNICBW},
		{"rail-only:nodes=16", "rail-only:nodes=16", topology.DCNICBW},
	}
	var out []ServePoint
	for _, f := range fabrics {
		for _, frac := range fractions {
			cfg := baseServeCfg()
			cfg.Disaggregated = true
			cfg.RatePerSec = 24
			if f.topo == "" {
				cfg.RoCEBW = f.nominal * frac
			} else {
				cfg.Topo = f.topo
				cfg.NICBW = f.nominal * frac
			}
			res, err := serve.RunCached(cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, servePoint(f.label, frac, res))
		}
	}
	return out, nil
}

// ServingReport runs and prints both serving studies — the ext-serve
// experiment.
func ServingReport(w io.Writer) error {
	load, err := ServingLoadSweep([]float64{8, 32, 64, 128, 256})
	if err != nil {
		return err
	}
	t := report.NewTable("What-if: serving goodput vs offered load (1.3 B, TP=4, testbed)",
		"placement", "offered req/s", "goodput req/s", "throughput req/s", "TTFT p99 ms", "TBT p99 ms")
	for _, p := range load {
		t.Row(p.Label, p.X, fmt.Sprintf("%.1f", p.Goodput), fmt.Sprintf("%.1f", p.Throughput),
			fmt.Sprintf("%.2f", p.TTFTp99Ms), fmt.Sprintf("%.2f", p.TBTp99Ms))
	}
	t.Render(w)

	bw, err := ServingBandwidthSweep([]float64{0.05, 0.25, 0.5, 1, 2})
	if err != nil {
		return err
	}
	t2 := report.NewTable("What-if: disaggregated serving vs inter-node bandwidth (24 req/s offered)",
		"fabric", "x nominal BW", "goodput req/s", "TTFT p99 ms", "TBT p99 ms")
	for _, p := range bw {
		t2.Row(p.Label, p.X, fmt.Sprintf("%.1f", p.Goodput),
			fmt.Sprintf("%.2f", p.TTFTp99Ms), fmt.Sprintf("%.2f", p.TBTp99Ms))
	}
	t2.Render(w)
	fmt.Fprintln(w, "finding: as load rises, colocation's time-between-tokens degrades toward its")
	fmt.Fprintln(w, "SLO (each prompt's prefill stalls the decode batch) while disaggregation")
	fmt.Fprintln(w, "keeps TBT flat — but disaggregation moves every request's KV cache across")
	fmt.Fprintln(w, "the fabric, so its first-token tail, and with it goodput, now tracks")
	fmt.Fprintln(w, "inter-node bandwidth: the serving-side version of the paper's")
	fmt.Fprintln(w, "bandwidth-characterization argument.")
	return nil
}
