package whatif

import (
	"bytes"
	"strings"
	"testing"

	"llmbw/internal/sim"
	"llmbw/internal/train"
)

func TestRoCESweepMegatronScalesWithNetwork(t *testing.T) {
	pts, err := RoCEBandwidthSweep([]float64{25, 50, 200})
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string][]Point{}
	for _, p := range pts {
		byLabel[p.Label] = append(byLabel[p.Label], p)
	}
	meg := byLabel["Megatron-LM"]
	if len(meg) != 3 {
		t.Fatalf("megatron points = %d", len(meg))
	}
	// Megatron-LM is bandwidth-bound below the paper's 50 GB/s NICs…
	if meg[0].TFLOPs >= meg[1].TFLOPs {
		t.Errorf("halving the network should hurt Megatron: %+v", meg)
	}
	// …but beyond them the EPYC I/O-die crossbar binds: faster NICs alone
	// do not rescue it (the sweep's own finding).
	if meg[2].TFLOPs > 1.25*meg[1].TFLOPs {
		t.Errorf("4x NICs should plateau at the crossbar: %.0f -> %.0f", meg[1].TFLOPs, meg[2].TFLOPs)
	}
	// ZeRO-3 saturates too.
	z3 := byLabel["ZeRO-3"]
	if z3[2].TFLOPs > 1.5*z3[1].TFLOPs {
		t.Errorf("ZeRO-3 should saturate: %.0f -> %.0f", z3[1].TFLOPs, z3[2].TFLOPs)
	}
}

func TestNVMeScalingApproachesCPUOffload(t *testing.T) {
	pts, err := NVMeScalingSweep()
	if err != nil {
		t.Fatal(err)
	}
	var one, eight, cpuRef float64
	for _, p := range pts {
		switch {
		case p.Label == "config A":
			one = p.TFLOPs
		case p.Label == "config H":
			eight = p.TFLOPs
		case strings.Contains(p.Label, "CPU"):
			cpuRef = p.TFLOPs
		}
	}
	if eight < 4*one {
		t.Errorf("8 drives (%.0f) should be >4x one drive (%.0f)", eight, one)
	}
	// The paper's prediction: eight slots "potentially comparable to CPU
	// offload" — within ~2.5x in our model.
	if eight < cpuRef/2.5 {
		t.Errorf("8-drive NVMe (%.0f) should approach CPU offload (%.0f)", eight, cpuRef)
	}
}

func TestBatchSweepTradeoff(t *testing.T) {
	pts, err := BatchSizeSweep([]int{8, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Larger batch -> smaller max model.
	if !(pts[0].SizeB > pts[1].SizeB && pts[1].SizeB > pts[2].SizeB) {
		t.Errorf("max size should shrink with batch: %+v", pts)
	}
	// Larger batch -> per-kernel efficiency rises, so throughput should not
	// collapse (and typically rises).
	if pts[2].TFLOPs < pts[0].TFLOPs*0.8 {
		t.Errorf("batch 64 throughput (%.0f) collapsed vs batch 8 (%.0f)", pts[2].TFLOPs, pts[0].TFLOPs)
	}
}

func TestXbarAblationExplainsDegradation(t *testing.T) {
	with, without := XbarAblation(3 * sim.Second)
	for k, frac := range without {
		if frac < 0.95 {
			t.Errorf("without crossbar, %s attains %.0f%%, want ~100%%", k, frac*100)
		}
	}
	if with["GPU-RoCE same-socket"] > 0.7 {
		t.Errorf("with crossbar, GPU-RoCE same-socket attains %.0f%%, want ~52%%",
			with["GPU-RoCE same-socket"]*100)
	}
}

func TestCheckpointingAblation(t *testing.T) {
	on, off := CheckpointingAblation()
	if on.Params() <= off.Params() {
		t.Errorf("checkpointing should raise max size: %v vs %v", on.ParamsB(), off.ParamsB())
	}
	if ratio := on.ParamsB() / off.ParamsB(); ratio < 1.5 {
		t.Errorf("checkpointing gain = %.1fx, expected substantial", ratio)
	}
}

func TestReportsRender(t *testing.T) {
	reports := map[string]func(*bytes.Buffer) error{
		"batch": func(b *bytes.Buffer) error { return BatchReport(b) },
		"ckpt":  func(b *bytes.Buffer) error { return CheckpointReport(b) },
		"xbar":  func(b *bytes.Buffer) error { return XbarReport(b, 2*sim.Second) },
	}
	for name, fn := range reports {
		var buf bytes.Buffer
		if err := fn(&buf); err != nil {
			t.Errorf("%s report: %v", name, err)
		}
		if !strings.Contains(buf.String(), "finding:") {
			t.Errorf("%s report missing finding:\n%s", name, buf.String())
		}
	}
}

func TestHybridReportRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("hybrid sweep is slow")
	}
	var buf bytes.Buffer
	if err := HybridReport(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TP") {
		t.Error("hybrid report malformed")
	}
}

func TestStragglerStudyMonotone(t *testing.T) {
	pts, err := StragglerStudy([]float64{1.0, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].TFLOPs >= pts[0].TFLOPs {
		t.Errorf("straggler should cost throughput: %.0f -> %.0f", pts[0].TFLOPs, pts[1].TFLOPs)
	}
}

func TestDegradedNICStudy(t *testing.T) {
	nominal, degraded, err := DegradedNICStudy(0.25, 2*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if degraded >= nominal {
		t.Errorf("degraded NIC should cost throughput: %.0f vs nominal %.0f", degraded, nominal)
	}
	if degraded < nominal*0.2 {
		t.Errorf("degradation implausibly severe: %.0f vs %.0f", degraded, nominal)
	}
}

func TestPurposeBuiltPlatformHelps(t *testing.T) {
	main, err := runCfg(train.Config{Strategy: train.Megatron, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := runCfg(train.Config{Strategy: train.Megatron, Nodes: 2, PurposeBuilt: true})
	if err != nil {
		t.Fatal(err)
	}
	if pb.AttainedTFLOPs <= main.AttainedTFLOPs*1.3 {
		t.Errorf("purpose-built should lift Megatron dual substantially: %.0f vs %.0f",
			pb.AttainedTFLOPs, main.AttainedTFLOPs)
	}
}

func TestNVMeScalingReportRenders(t *testing.T) {
	var buf bytes.Buffer
	if err := NVMeScalingReport(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"config A", "config H", "finding:"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestScalingStudySmall(t *testing.T) {
	pts, err := ScalingStudy(2, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string][]Point{}
	for _, p := range pts {
		byLabel[p.Label] = append(byLabel[p.Label], p)
	}
	// DDP aggregate throughput grows with nodes; Megatron's falls.
	ddp := byLabel["DDP"]
	if len(ddp) != 2 || ddp[1].TFLOPs <= ddp[0].TFLOPs {
		t.Errorf("DDP scaling wrong: %+v", ddp)
	}
	meg := byLabel["Megatron-LM"]
	if len(meg) != 2 || meg[1].TFLOPs >= meg[0].TFLOPs {
		t.Errorf("Megatron should lose throughput across nodes: %+v", meg)
	}
}
