package runner_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"llmbw/internal/core"
	"llmbw/internal/runner"
	"llmbw/internal/train"
)

// TestRunFlushesInSubmissionOrder: jobs finishing out of order must still
// produce output in submission order.
func TestRunFlushesInSubmissionOrder(t *testing.T) {
	jobs := make([]runner.Job, 6)
	for i := range jobs {
		i := i
		jobs[i] = runner.Job{ID: fmt.Sprint(i), Run: func(w io.Writer) error {
			// Earlier jobs sleep longer, so completion order is reversed.
			time.Sleep(time.Duration(len(jobs)-i) * 10 * time.Millisecond)
			fmt.Fprintf(w, "job %d\n", i)
			return nil
		}}
	}
	var buf bytes.Buffer
	if err := runner.Run(&buf, 6, jobs); err != nil {
		t.Fatal(err)
	}
	want := "job 0\njob 1\njob 2\njob 3\njob 4\njob 5\n"
	if buf.String() != want {
		t.Fatalf("out of order output:\n%s", buf.String())
	}
}

// TestRunStopsAtFirstErrorInJobOrder: the returned error and flushed bytes
// must match a serial run that stops at the first failure — even when a later
// job has already completed successfully in parallel.
func TestRunStopsAtFirstErrorInJobOrder(t *testing.T) {
	boom := errors.New("boom")
	jobs := []runner.Job{
		{ID: "0", Run: func(w io.Writer) error {
			time.Sleep(30 * time.Millisecond)
			fmt.Fprintln(w, "zero")
			return nil
		}},
		{ID: "1", Run: func(w io.Writer) error {
			fmt.Fprintln(w, "one-partial")
			return boom
		}},
		{ID: "2", Run: func(w io.Writer) error {
			fmt.Fprintln(w, "two")
			return nil
		}},
	}
	var buf bytes.Buffer
	err := runner.Run(&buf, 3, jobs)
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	want := "zero\none-partial\n"
	if buf.String() != want {
		t.Fatalf("want %q, got %q", want, buf.String())
	}
}

// TestMapReturnsLowestIndexError and stops dispatching new indices after a
// failure.
func TestMapReturnsLowestIndexError(t *testing.T) {
	var started atomic.Int64
	err := runner.Map(4, 100, func(i int) error {
		started.Add(1)
		time.Sleep(time.Millisecond)
		return fmt.Errorf("fail %d", i)
	})
	if err == nil || err.Error() != "fail 0" {
		t.Fatalf("want fail 0, got %v", err)
	}
	if n := started.Load(); n > 8 {
		t.Fatalf("kept dispatching after failure: %d indices started", n)
	}
}

func TestMapSerialFastPath(t *testing.T) {
	var order []int
	err := runner.Map(1, 5, func(i int) error {
		order = append(order, i)
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || err.Error() != "stop" {
		t.Fatalf("want stop, got %v", err)
	}
	if fmt.Sprint(order) != "[0 1 2 3]" {
		t.Fatalf("serial path ran out of order or past the failure: %v", order)
	}
}

// TestParallelMatchesSerialByteForByte is the determinism guarantee the
// -parallel flag rests on: running fig3, table4 and table5 on a 4-worker pool
// must produce exactly the bytes of a serial run. The memoization cache is
// reset between the two passes so both simulate from scratch.
func TestParallelMatchesSerialByteForByte(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full experiment simulations")
	}
	opt := core.Options{Iterations: 2, Warmup: 1, PatternSeconds: 8, StressSeconds: 3}
	ids := []string{"fig3", "table4", "table5"}

	jobs := make([]runner.Job, len(ids))
	for i, id := range ids {
		e, err := core.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = runner.Job{ID: e.ID, Run: func(w io.Writer) error {
			fmt.Fprintf(w, "\n######## %s — %s ########\n", e.ID, e.Title)
			return e.Run(w, opt)
		}}
	}

	train.ResetRunCache()
	var serial bytes.Buffer
	for _, j := range jobs {
		if err := j.Run(&serial); err != nil {
			t.Fatalf("serial %s: %v", j.ID, err)
		}
	}

	train.ResetRunCache()
	var par bytes.Buffer
	if err := runner.Run(&par, 4, jobs); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(serial.Bytes(), par.Bytes()) {
		t.Fatalf("parallel output diverges from serial:\nserial %d bytes, parallel %d bytes",
			serial.Len(), par.Len())
	}
}
