// Package runner executes independent experiment jobs on a worker pool.
//
// Every experiment (and every sweep point) owns a private sim.Engine, so runs
// are embarrassingly parallel; the only shared state is the process-wide
// train.Run memoization cache, which is concurrency-safe. The runner's job is
// to reclaim that parallelism without giving up the serial contract: output
// appears in submission order, byte-identical to running the jobs one after
// another, and the error reported is the first one in job order.
package runner

import (
	"bytes"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
)

// ClampParallel sanitizes a -parallel flag value: zero and negative values
// request no concurrency, so they clamp to 1 (serial). Command-line tools
// pass flag input through this instead of handing it to Map/Run directly,
// whose parallel <= 0 means "use GOMAXPROCS" — the wrong reading of an
// explicit `-parallel 0`.
func ClampParallel(p int) int {
	if p < 1 {
		return 1
	}
	return p
}

// Job is one independently executable unit of work producing output.
type Job struct {
	ID  string
	Run func(w io.Writer) error
}

// Map runs fn(0..n-1) on a pool of at most parallel workers and returns the
// lowest-index error. Indices are dispatched in order; once any invocation
// fails, no new indices are started (in-flight ones finish), mirroring a
// serial loop that stops at the first failure. parallel <= 0 selects
// GOMAXPROCS.
func Map(parallel, n int, fn func(i int) error) error {
	errs := make([]error, n)
	mapInto(parallel, n, fn, errs, nil)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// mapInto is the pool core shared by Map and Run: it fills errs[i] for every
// dispatched index and invokes done(i) as each index finishes.
func mapInto(parallel, n int, fn func(i int) error, errs []error, done func(i int)) {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > n {
		parallel = n
	}
	if parallel <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
			if done != nil {
				done(i)
			}
			if errs[i] != nil {
				return
			}
		}
		return
	}
	var next, failed atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex // serializes done callbacks
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || failed.Load() != 0 {
					return
				}
				err := fn(i)
				if err != nil {
					failed.Store(1)
				}
				mu.Lock()
				errs[i] = err
				if done != nil {
					done(i)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

// Run executes jobs on a worker pool. Each job writes to a private buffer;
// completed buffers are flushed to out in submission order as soon as the
// contiguous prefix allows, so the combined output is byte-identical to a
// serial run regardless of completion order. On failure the outputs of all
// jobs preceding the first (in job order) failure are flushed, then that
// job's partial output, and its error is returned — exactly the bytes a
// serial run would have produced before stopping.
func Run(out io.Writer, parallel int, jobs []Job) error {
	bufs := make([]bytes.Buffer, len(jobs))
	errs := make([]error, len(jobs))
	done := make([]bool, len(jobs))
	flushed := 0
	var firstErr error
	stopped := false
	mapInto(parallel, len(jobs), func(i int) error {
		return jobs[i].Run(&bufs[i])
	}, errs, func(i int) {
		// Runs under the pool lock in completion order: flush the
		// contiguous finished prefix, stopping at the first failed job.
		done[i] = true
		for flushed < len(jobs) && done[flushed] && !stopped {
			out.Write(bufs[flushed].Bytes())
			bufs[flushed] = bytes.Buffer{} // release memory early
			if errs[flushed] != nil {
				firstErr = errs[flushed]
				stopped = true
			}
			flushed++
		}
	})
	return firstErr
}
