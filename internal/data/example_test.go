package data_test

import (
	"fmt"

	"llmbw/internal/data"
)

// Tokenize text with a tokenizer trained on the synthetic corpus.
func Example() {
	loader := data.NewLoader(42, 256, 2000)
	tok := loader.Tokenizer()
	text := "the bandwidth of the cluster"
	ids := tok.Encode(text)
	fmt.Printf("round trip ok: %v\n", tok.Decode(ids) == text)
	seq := loader.NextSequence()
	fmt.Printf("packed sequence length: %d\n", len(seq))
	fmt.Printf("staging bytes per 16x256 batch: %.0f\n", data.BatchStagingBytes(16, 256))
	// Output:
	// round trip ok: true
	// packed sequence length: 256
	// staging bytes per 16x256 batch: 32768
}
