package data

// Loader packs tokenized articles into fixed-length training sequences and
// accounts for the host-side bytes a real dataloader stages per iteration —
// the traffic the paper's Table IV shows as the small DRAM/PCIe background
// of non-offload runs.
type Loader struct {
	tok    *Tokenizer
	corpus *Corpus
	seqLen int

	buf     []int // leftover tokens from the last article
	nextDoc int
}

// NewLoader builds a loader over a synthetic corpus with the given sequence
// length. The tokenizer is trained on a fixed sample of the corpus so the
// whole pipeline is deterministic.
func NewLoader(seed uint64, seqLen, vocabSize int) *Loader {
	c := NewCorpus(seed)
	var sample []string
	for i := 0; i < 64; i++ {
		a := c.Article(i)
		sample = append(sample, a.Title, a.Text)
	}
	return &Loader{
		tok:    Train(join(sample), vocabSize),
		corpus: c,
		seqLen: seqLen,
	}
}

func join(parts []string) string {
	n := 0
	for _, p := range parts {
		n += len(p) + 1
	}
	b := make([]byte, 0, n)
	for _, p := range parts {
		b = append(b, p...)
		b = append(b, ' ')
	}
	return string(b)
}

// Tokenizer exposes the trained tokenizer.
func (l *Loader) Tokenizer() *Tokenizer { return l.tok }

// NextSequence returns the next packed sequence of exactly seqLen token ids,
// concatenating documents with end-of-text separators (GPT-2's packing).
func (l *Loader) NextSequence() []int {
	for len(l.buf) < l.seqLen {
		l.buf = append(l.buf, l.tok.EncodeDocument(l.corpus.Article(l.nextDoc))...)
		l.nextDoc++
	}
	seq := l.buf[:l.seqLen:l.seqLen]
	l.buf = append([]int(nil), l.buf[l.seqLen:]...)
	return seq
}

// NextBatch returns batch packed sequences.
func (l *Loader) NextBatch(batch int) [][]int {
	out := make([][]int, batch)
	for i := range out {
		out[i] = l.NextSequence()
	}
	return out
}

// BatchStagingBytes returns the host bytes staged per iteration for a
// micro-batch: token ids (int32) plus label shift copies, per GPU.
func BatchStagingBytes(batch, seqLen int) float64 {
	const int32Bytes = 4
	// Inputs + shifted labels.
	return 2 * float64(batch) * float64(seqLen) * int32Bytes
}

// TokensPerByte reports the pipeline's compression: tokens produced per byte
// of raw text over the first n documents — a sanity statistic comparable to
// GPT-2's ~0.25-0.3 tokens/byte on English text.
func (l *Loader) TokensPerByte(n int) float64 {
	tokens, bytes := 0, 0
	for i := 0; i < n; i++ {
		a := l.corpus.Article(i)
		tokens += len(l.tok.EncodeDocument(a))
		bytes += len(a.Title) + len(a.Text) + 1
	}
	if bytes == 0 {
		return 0
	}
	return float64(tokens) / float64(bytes)
}
