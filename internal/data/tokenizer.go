package data

import (
	"sort"
	"strings"
)

// Tokenizer is a greedy longest-match subword tokenizer in the spirit of
// GPT-2's byte-pair encoding: a learned vocabulary of frequent substrings
// plus single-byte fallbacks, so any input tokenizes losslessly. It exists
// to give the data pipeline realistic tokens-per-byte statistics, not to
// match GPT-2's exact merges.
type Tokenizer struct {
	vocab   []string       // id -> piece; ids 0..255 are single bytes
	pieces  map[string]int // piece -> id
	maxLen  int
	special map[string]int
}

// EOT is the end-of-text special token appended between documents.
const EOT = "<|endoftext|>"

// Train learns a vocabulary of the most frequent substrings (lengths 2..7)
// over the sample text, up to vocabSize entries including the 256 byte
// tokens and specials.
func Train(sample string, vocabSize int) *Tokenizer {
	if vocabSize < 300 {
		vocabSize = 300
	}
	t := &Tokenizer{pieces: make(map[string]int), special: make(map[string]int)}
	for b := 0; b < 256; b++ {
		piece := string(rune(b))
		t.pieces[piece] = len(t.vocab)
		t.vocab = append(t.vocab, piece)
	}
	t.special[EOT] = len(t.vocab)
	t.vocab = append(t.vocab, EOT)

	// Count substrings of the sample at word granularity to keep training
	// cheap and deterministic.
	counts := make(map[string]int)
	for _, word := range strings.Fields(sample) {
		for l := 2; l <= 7 && l <= len(word); l++ {
			for i := 0; i+l <= len(word); i++ {
				counts[word[i:i+l]]++
			}
		}
		counts[" "+word]++ // leading-space merge, GPT-2 style
	}
	type cand struct {
		piece string
		count int
	}
	cands := make([]cand, 0, len(counts))
	for p, c := range counts {
		if c >= 2 {
			cands = append(cands, cand{p, c})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		// Prefer frequency × length (longer merges save more tokens),
		// then lexical order for determinism.
		si := cands[i].count * len(cands[i].piece)
		sj := cands[j].count * len(cands[j].piece)
		if si != sj {
			return si > sj
		}
		return cands[i].piece < cands[j].piece
	})
	for _, c := range cands {
		if len(t.vocab) >= vocabSize {
			break
		}
		if _, dup := t.pieces[c.piece]; dup {
			continue
		}
		t.pieces[c.piece] = len(t.vocab)
		t.vocab = append(t.vocab, c.piece)
		if len(c.piece) > t.maxLen {
			t.maxLen = len(c.piece)
		}
	}
	if t.maxLen < 1 {
		t.maxLen = 1
	}
	return t
}

// VocabSize returns the number of token ids.
func (t *Tokenizer) VocabSize() int { return len(t.vocab) }

// Encode tokenizes text by greedy longest match.
func (t *Tokenizer) Encode(text string) []int {
	var out []int
	i := 0
	for i < len(text) {
		best := -1
		bestLen := 0
		max := t.maxLen
		if max > len(text)-i {
			max = len(text) - i
		}
		for l := max; l >= 1; l-- {
			if id, ok := t.pieces[text[i:i+l]]; ok {
				best, bestLen = id, l
				break
			}
		}
		if best < 0 {
			// Unknown byte: fall back to its single-byte token.
			best, bestLen = int(text[i]), 1
		}
		out = append(out, best)
		i += bestLen
	}
	return out
}

// EncodeDocument tokenizes an article and appends the end-of-text token.
func (t *Tokenizer) EncodeDocument(a Article) []int {
	ids := t.Encode(a.Title + "\n" + a.Text)
	return append(ids, t.special[EOT])
}

// Decode reverses Encode (lossless for any input).
func (t *Tokenizer) Decode(ids []int) string {
	var b strings.Builder
	for _, id := range ids {
		if id >= 0 && id < len(t.vocab) {
			b.WriteString(t.vocab[id])
		}
	}
	return b.String()
}
