// Package data implements the training-data substrate: the paper trains on
// a Wikipedia dump extracted with WikiExtractor and tokenized GPT-2-style.
// The dataset's *content* never affects bandwidth or throughput — only the
// token-batch shapes do — so this package provides a deterministic synthetic
// Wikipedia-like corpus, a greedy subword tokenizer, and the sequence-packing
// loader whose per-iteration host→GPU staging traffic the training runner
// emits onto the simulated fabric.
package data

import (
	"fmt"
	"strings"
)

// capitalize upper-cases the first letter (strings.Title is deprecated).
func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// rng is a small deterministic PRNG (xorshift64*) so corpus generation never
// depends on global state and is reproducible across runs.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Vocabulary used to synthesize article-like text. Zipf-weighted sampling
// over function words plus topical nouns gives token-frequency statistics
// close enough to natural text for the tokenizer and packer to be exercised
// realistically.
var (
	functionWords = []string{
		"the", "of", "and", "in", "to", "a", "is", "was", "for", "on",
		"as", "with", "by", "at", "from", "that", "it", "its", "an", "are",
	}
	topicWords = []string{
		"bandwidth", "cluster", "memory", "model", "training", "language",
		"network", "parallel", "gradient", "parameter", "optimizer", "node",
		"socket", "interconnect", "throughput", "latency", "processor",
		"history", "city", "river", "university", "science", "century",
		"population", "government", "music", "battle", "island", "theory",
	}
)

// Article is one synthetic document, analogous to a WikiExtractor record.
type Article struct {
	Title string
	Text  string
}

// Corpus deterministically generates synthetic articles.
type Corpus struct {
	seed uint64
}

// NewCorpus returns a corpus generator for the given seed.
func NewCorpus(seed uint64) *Corpus { return &Corpus{seed: seed} }

// Article generates the i-th article (deterministic in (seed, i)).
func (c *Corpus) Article(i int) Article {
	r := newRNG(c.seed ^ (uint64(i)+1)*0x9E3779B97F4A7C15)
	title := fmt.Sprintf("%s %s %d",
		capitalize(topicWords[r.intn(len(topicWords))]),
		topicWords[r.intn(len(topicWords))], i)
	sentences := 8 + r.intn(24)
	var b strings.Builder
	for s := 0; s < sentences; s++ {
		words := 6 + r.intn(18)
		for w := 0; w < words; w++ {
			if w > 0 {
				b.WriteByte(' ')
			}
			// Zipf-ish: function words dominate.
			if r.intn(100) < 55 {
				b.WriteString(functionWords[r.intn(len(functionWords))])
			} else {
				b.WriteString(topicWords[r.intn(len(topicWords))])
			}
		}
		b.WriteString(". ")
	}
	return Article{Title: title, Text: b.String()}
}
