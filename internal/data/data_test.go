package data

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCorpusDeterministic(t *testing.T) {
	a := NewCorpus(7).Article(42)
	b := NewCorpus(7).Article(42)
	if a != b {
		t.Error("same seed+index produced different articles")
	}
	c := NewCorpus(8).Article(42)
	if a.Text == c.Text {
		t.Error("different seeds produced identical articles")
	}
	d := NewCorpus(7).Article(43)
	if a.Text == d.Text {
		t.Error("adjacent articles identical")
	}
}

func TestCorpusLooksLikeText(t *testing.T) {
	a := NewCorpus(1).Article(0)
	if a.Title == "" || len(a.Text) < 100 {
		t.Fatalf("degenerate article: %+v", a)
	}
	if !strings.Contains(a.Text, ". ") {
		t.Error("article has no sentence boundaries")
	}
	words := strings.Fields(a.Text)
	if len(words) < 40 {
		t.Errorf("article too short: %d words", len(words))
	}
}

func TestTokenizerRoundTrip(t *testing.T) {
	sample := NewCorpus(1).Article(0).Text
	tok := Train(sample, 1000)
	for _, text := range []string{
		"the bandwidth of the cluster",
		"unseen-w0rds with! punctuation?",
		sample[:200],
	} {
		ids := tok.Encode(text)
		if got := tok.Decode(ids); got != text {
			t.Errorf("round trip failed:\n in: %q\nout: %q", text, got)
		}
	}
}

// Property: Encode/Decode round-trips arbitrary ASCII strings losslessly.
func TestTokenizerRoundTripProperty(t *testing.T) {
	tok := Train(NewCorpus(2).Article(0).Text, 800)
	f := func(raw []byte) bool {
		// Constrain to single-byte runes so string(rune(b)) fallback holds.
		buf := make([]byte, len(raw))
		for i, b := range raw {
			buf[i] = b % 128
		}
		text := string(buf)
		return tok.Decode(tok.Encode(text)) == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTokenizerCompresses(t *testing.T) {
	sample := ""
	c := NewCorpus(3)
	for i := 0; i < 32; i++ {
		sample += c.Article(i).Text
	}
	tok := Train(sample, 4000)
	ids := tok.Encode(sample)
	ratio := float64(len(ids)) / float64(len(sample))
	// Learned merges must beat byte-level (1.0) substantially on in-domain
	// text; GPT-2 achieves ~0.25 on English.
	if ratio > 0.6 {
		t.Errorf("tokens/byte = %.2f, want < 0.6 (compression failed)", ratio)
	}
	if tok.VocabSize() < 300 {
		t.Errorf("vocab = %d", tok.VocabSize())
	}
}

func TestEncodeDocumentAppendsEOT(t *testing.T) {
	tok := Train("hello world", 300)
	ids := tok.EncodeDocument(Article{Title: "t", Text: "hello"})
	if len(ids) == 0 {
		t.Fatal("empty encoding")
	}
	if got := tok.Decode(ids[len(ids)-1:]); got != EOT {
		t.Errorf("last token = %q, want EOT", got)
	}
}

func TestLoaderPacksExactSequences(t *testing.T) {
	l := NewLoader(1, 256, 2000)
	for i := 0; i < 10; i++ {
		seq := l.NextSequence()
		if len(seq) != 256 {
			t.Fatalf("sequence %d length = %d", i, len(seq))
		}
		for _, id := range seq {
			if id < 0 || id >= l.Tokenizer().VocabSize() {
				t.Fatalf("token id %d out of range", id)
			}
		}
	}
}

func TestLoaderBatch(t *testing.T) {
	l := NewLoader(1, 64, 1000)
	b := l.NextBatch(16)
	if len(b) != 16 {
		t.Fatalf("batch = %d", len(b))
	}
	// Sequences must differ (the stream advances).
	same := true
	for i := range b[0] {
		if b[0][i] != b[1][i] {
			same = false
			break
		}
	}
	if same {
		t.Error("consecutive sequences identical")
	}
}

func TestLoaderDeterministic(t *testing.T) {
	a := NewLoader(9, 128, 1500)
	b := NewLoader(9, 128, 1500)
	sa, sb := a.NextSequence(), b.NextSequence()
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("loader nondeterministic")
		}
	}
}

func TestBatchStagingBytes(t *testing.T) {
	// 16 sequences × 256 tokens × 4 bytes × 2 (inputs + labels) = 32 KiB×2.
	if got := BatchStagingBytes(16, 256); got != 2*16*256*4 {
		t.Errorf("staging bytes = %v", got)
	}
}

func TestTokensPerByteReasonable(t *testing.T) {
	l := NewLoader(4, 256, 4000)
	r := l.TokensPerByte(16)
	if r <= 0.05 || r >= 0.9 {
		t.Errorf("tokens/byte = %.3f, outside plausible subword range", r)
	}
}
