package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "config", "value")
	tb.Row("DDP", 438.0)
	tb.Row("Megatron-LM", 331.25)
	out := tb.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "DDP") || !strings.Contains(out, "438") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title, header, separator, 2 rows -> 5? title+header+sep+2
		if len(lines) != 5 {
			t.Errorf("unexpected line count %d:\n%s", len(lines), out)
		}
	}
}

func TestTableHandlesShortRows(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.Row("x")
	out := tb.String()
	if !strings.Contains(out, "x") {
		t.Error("short row dropped")
	}
}

func TestTripleAndDelta(t *testing.T) {
	if Triple(1.234, 5.6, 7.89) != "1.234/5.6/7.89" {
		t.Errorf("Triple = %q", Triple(1.234, 5.6, 7.89))
	}
	d := Delta(110, 100)
	if !strings.Contains(d, "+10%") {
		t.Errorf("Delta = %q", d)
	}
	if !strings.Contains(Delta(5, 0), "paper 0") {
		t.Error("Delta with zero paper value broken")
	}
}

func TestSameOrder(t *testing.T) {
	if !SameOrder([]float64{3, 2, 1}, []float64{30, 20, 10}) {
		t.Error("identical ordering rejected")
	}
	if SameOrder([]float64{1, 2}, []float64{2, 1}) {
		t.Error("inverted ordering accepted")
	}
	if SameOrder([]float64{1}, []float64{1, 2}) {
		t.Error("length mismatch accepted")
	}
	// Ties are compatible with any order.
	if !SameOrder([]float64{1, 1}, []float64{2, 1}) {
		t.Error("tie should not violate ordering")
	}
}

func TestPaperDataComplete(t *testing.T) {
	for _, cfg := range []PaperConfig{CfgDDP, CfgMegatron, CfgZeRO1, CfgZeRO2, CfgZeRO3} {
		if _, ok := Fig6ModelSizeB[cfg]; !ok {
			t.Errorf("Fig6 missing %s", cfg)
		}
		if _, ok := Fig7ThroughputTFLOPs[cfg]; !ok {
			t.Errorf("Fig7 missing %s", cfg)
		}
		if _, ok := Table4SingleNode[cfg]; !ok {
			t.Errorf("Table4 single missing %s", cfg)
		}
		if _, ok := Table4DualNode[cfg]; !ok {
			t.Errorf("Table4 dual missing %s", cfg)
		}
	}
	if len(Table6NvmePlacement) != 7 {
		t.Errorf("Table VI has %d configs, want 7", len(Table6NvmePlacement))
	}
	if len(Fig1Trend) < 10 {
		t.Error("Fig 1 trend data too sparse")
	}
}

func TestPaperDataInternalConsistency(t *testing.T) {
	// Fig 6: dual-node sizes never smaller than single-node.
	for cfg, v := range Fig6ModelSizeB {
		if v[1] < v[0] {
			t.Errorf("%s: dual-node size %v below single-node %v", cfg, v[1], v[0])
		}
	}
	// Table VI: the paper's own conclusion G >= F > E and D > C.
	tv := Table6NvmePlacement
	if !(tv["G"].TFLOPs >= tv["F"].TFLOPs && tv["F"].TFLOPs > tv["E"].TFLOPs) {
		t.Error("Table VI reference data violates G >= F > E")
	}
	if tv["D"].TFLOPs <= tv["C"].TFLOPs {
		t.Error("Table VI reference data violates D > C")
	}
}
