package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them as aligned text columns, the
// output format of every regenerated table and figure in this repository.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Row appends a row; values are formatted with %v, floats with %.4g.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(t.headers))
		for i := range t.headers {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Triple formats an avg/90th/peak statistic the way Table IV prints cells.
func Triple(avg, p90, peak float64) string {
	return fmt.Sprintf("%.4g/%.4g/%.4g", avg, p90, peak)
}

// Delta formats a measured-vs-paper comparison with the relative deviation.
func Delta(measured, paper float64) string {
	if paper == 0 {
		return fmt.Sprintf("%.4g (paper 0)", measured)
	}
	return fmt.Sprintf("%.4g (paper %.4g, %+.0f%%)", measured, paper, (measured/paper-1)*100)
}

// SameOrder reports whether two slices of values sort their keys in the same
// order — the "who wins" shape check applied to regenerated tables.
func SameOrder(measured, paper []float64) bool {
	if len(measured) != len(paper) {
		return false
	}
	for i := 0; i < len(measured); i++ {
		for j := i + 1; j < len(measured); j++ {
			m := measured[i] - measured[j]
			p := paper[i] - paper[j]
			if m*p < 0 {
				return false
			}
		}
	}
	return true
}
