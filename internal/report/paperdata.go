// Package report holds the paper's published numbers as structured reference
// data, plus the text-table rendering used by the experiment harness to
// print regenerated tables and figures side by side with the paper's values.
package report

// PaperConfig identifies a training configuration row as the paper labels it.
type PaperConfig string

// Configuration labels used across the paper's tables.
const (
	CfgDDP      PaperConfig = "PyTorch DDP"
	CfgMegatron PaperConfig = "Megatron-LM"
	CfgZeRO1    PaperConfig = "ZeRO-1"
	CfgZeRO2    PaperConfig = "ZeRO-2"
	CfgZeRO3    PaperConfig = "ZeRO-3"
	CfgZeRO1CPU PaperConfig = "ZeRO-1 (CPU)"
	CfgZeRO2CPU PaperConfig = "ZeRO-2 (CPU)"
	CfgZeRO3CPU PaperConfig = "ZeRO-3 (CPU)"
	CfgInfOpt1  PaperConfig = "ZeRO-3 (1xNVMe opt)"
	CfgInfAll1  PaperConfig = "ZeRO-3 (1xNVMe opt+param)"
	CfgInfOpt2  PaperConfig = "ZeRO-3 (2xNVMe opt)"
	CfgInfAll2  PaperConfig = "ZeRO-3 (2xNVMe opt+param)"
)

// Fig6ModelSizeB is the achieved model size in billions of parameters
// (Fig 6): [configuration][nodes-1].
var Fig6ModelSizeB = map[PaperConfig][2]float64{
	CfgDDP:      {1.4, 1.4},
	CfgMegatron: {5.5, 11.4},
	CfgZeRO1:    {4.4, 6.4},
	CfgZeRO2:    {5.2, 8.5},
	CfgZeRO3:    {6.6, 13.5},
}

// Fig7ThroughputTFLOPs is the attained compute throughput (Fig 7):
// [configuration][nodes-1].
var Fig7ThroughputTFLOPs = map[PaperConfig][2]float64{
	CfgDDP:      {438, 640},
	CfgMegatron: {331, 121},
	CfgZeRO1:    {391, 395},
	CfgZeRO2:    {524, 424},
	CfgZeRO3:    {381, 458},
}

// Fig5IterationMs is the single-iteration time for the 1.4 B model (Fig 5).
var Fig5IterationMs = map[PaperConfig]float64{
	CfgDDP:      471,
	CfgMegatron: 736,
	CfgZeRO1:    412,
	CfgZeRO2:    404,
	CfgZeRO3:    696,
	CfgZeRO1CPU: 1380,
	CfgZeRO2CPU: 1220,
	CfgInfOpt2:  5200,
	CfgInfAll2:  5900,
}

// BandwidthRow is one Table IV row: avg/90th/peak per interconnect, GB/s.
type BandwidthRow struct {
	DRAM, XGMI, PCIeGPU, PCIeNVME, PCIeNIC, NVLink, RoCE [3]float64
}

// Table4SingleNode holds the paper's single-node bandwidth rows.
var Table4SingleNode = map[PaperConfig]BandwidthRow{
	CfgDDP:      {DRAM: [3]float64{1.56, 2.33, 3.31}, XGMI: [3]float64{0.23, 0.77, 0.96}, PCIeGPU: [3]float64{0.61, 1.86, 3.16}, NVLink: [3]float64{83.0, 94.8, 94.8}},
	CfgMegatron: {DRAM: [3]float64{3.52, 4.32, 5.08}, XGMI: [3]float64{0.18, 0.20, 0.33}, PCIeGPU: [3]float64{2.01, 2.72, 2.82}, NVLink: [3]float64{241, 261, 267}},
	CfgZeRO1:    {DRAM: [3]float64{1.86, 3.73, 5.64}, XGMI: [3]float64{0.94, 2.75, 5.56}, PCIeGPU: [3]float64{6.36, 15.1, 16.6}, NVLink: [3]float64{111, 147, 147}},
	CfgZeRO2:    {DRAM: [3]float64{1.99, 3.11, 9.99}, XGMI: [3]float64{0.42, 0.79, 3.67}, PCIeGPU: [3]float64{1.03, 2.89, 7.53}, NVLink: [3]float64{97.3, 117, 117}},
	CfgZeRO3:    {DRAM: [3]float64{2.69, 3.33, 7.72}, XGMI: [3]float64{0.37, 0.54, 2.85}, PCIeGPU: [3]float64{1.56, 2.44, 6.22}, NVLink: [3]float64{99.7, 109, 121}},
}

// Table4DualNode holds the paper's dual-node bandwidth rows.
var Table4DualNode = map[PaperConfig]BandwidthRow{
	CfgDDP:      {DRAM: [3]float64{2.08, 4.51, 5.50}, XGMI: [3]float64{5.22, 9.63, 15.6}, PCIeGPU: [3]float64{11.2, 31.5, 50.1}, PCIeNIC: [3]float64{6.07, 12, 18.1}, NVLink: [3]float64{60.2, 63.2, 63.2}, RoCE: [3]float64{9.28, 10.7, 10.7}},
	CfgMegatron: {DRAM: [3]float64{2.88, 3.69, 6.21}, XGMI: [3]float64{7.29, 7.56, 7.70}, PCIeGPU: [3]float64{16.9, 17.5, 18.2}, PCIeNIC: [3]float64{9.06, 9.36, 9.60}, NVLink: [3]float64{88.3, 91.3, 95.8}, RoCE: [3]float64{13.8, 14.3, 14.4}},
	CfgZeRO1:    {DRAM: [3]float64{2.79, 5.70, 8.81}, XGMI: [3]float64{6.35, 11.9, 20.2}, PCIeGPU: [3]float64{18.2, 38.4, 62.9}, PCIeNIC: [3]float64{6.64, 12.4, 22.6}, NVLink: [3]float64{52.7, 96.9, 107}, RoCE: [3]float64{10.5, 16.7, 19.8}},
	CfgZeRO2:    {DRAM: [3]float64{1.73, 2.82, 5.61}, XGMI: [3]float64{6.11, 12.3, 16.9}, PCIeGPU: [3]float64{15.8, 27.9, 32.4}, PCIeNIC: [3]float64{7.08, 12.5, 17.8}, NVLink: [3]float64{34.3, 49.8, 58.2}, RoCE: [3]float64{10.5, 15.5, 16.9}},
	CfgZeRO3:    {DRAM: [3]float64{3.86, 7.04, 10.4}, XGMI: [3]float64{10.4, 14.2, 16.3}, PCIeGPU: [3]float64{20.5, 27.3, 30.9}, PCIeNIC: [3]float64{10.9, 14.0, 15.6}, NVLink: [3]float64{52.2, 58.8, 61.9}, RoCE: [3]float64{16.3, 18.5, 19.7}},
}

// Table4Offload holds the consolidation/offload bandwidth rows (single
// node, 11.4 B model unless noted).
var Table4Offload = map[PaperConfig]BandwidthRow{
	CfgZeRO2CPU: {DRAM: [3]float64{73.1, 157, 191}, XGMI: [3]float64{18.1, 29.8, 41.8}, PCIeGPU: [3]float64{16.4, 30.8, 47.8}, NVLink: [3]float64{40.8, 127, 127}},
	CfgZeRO3CPU: {DRAM: [3]float64{67.8, 162, 215}, XGMI: [3]float64{10.3, 25.2, 38.6}, PCIeGPU: [3]float64{12.9, 20.5, 42.3}, NVLink: [3]float64{31.0, 57.2, 123}},
	CfgInfOpt1:  {DRAM: [3]float64{15.1, 25.2, 130}, XGMI: [3]float64{2.28, 7.18, 40.8}, PCIeGPU: [3]float64{1.53, 1.1, 30.3}, PCIeNVME: [3]float64{0.29, 0.02, 13.9}, NVLink: [3]float64{6.72, 2.3, 109}},
	CfgInfAll1:  {DRAM: [3]float64{10.6, 19.1, 98.0}, XGMI: [3]float64{3.20, 6.60, 22.7}, PCIeGPU: [3]float64{1.86, 8.0, 28.9}, PCIeNVME: [3]float64{0.48, 2.02, 11.8}, NVLink: [3]float64{3.78, 0.0, 54.8}},
	CfgInfOpt2:  {DRAM: [3]float64{23.6, 83.7, 142}, XGMI: [3]float64{3.87, 16.6, 34.7}, PCIeGPU: [3]float64{3.21, 16.5, 50.9}, PCIeNVME: [3]float64{3.13, 6.14, 6.32}, NVLink: [3]float64{10.1, 64.1, 128}},
	CfgInfAll2:  {DRAM: [3]float64{15.9, 32.1, 94.1}, XGMI: [3]float64{3.93, 10.3, 33.2}, PCIeGPU: [3]float64{3.30, 16.9, 31.6}, PCIeNVME: [3]float64{4.87, 12.2, 12.6}, NVLink: [3]float64{7.19, 46.7, 63.5}},
}

// Fig11 consolidation of the 11.4 B model: throughput (TFLOP/s) and memory
// composition (GB).
type ConsolidationRef struct {
	TFLOPs               float64
	GPUGB, CPUGB, NVMeGB float64
}

// Fig11Consolidation holds the paper's consolidation results.
var Fig11Consolidation = map[PaperConfig]ConsolidationRef{
	CfgMegatron: {TFLOPs: 121, GPUGB: 308, CPUGB: 36},
	CfgZeRO2CPU: {TFLOPs: 191, GPUGB: 127, CPUGB: 353},
	CfgZeRO3CPU: {TFLOPs: 126, GPUGB: 157, CPUGB: 295},
	CfgInfOpt1:  {TFLOPs: 20.4, GPUGB: 108, CPUGB: 317, NVMeGB: 129},
	CfgInfAll1:  {TFLOPs: 15.8, GPUGB: 52, CPUGB: 488, NVMeGB: 150},
	CfgInfOpt2:  {TFLOPs: 38.1, GPUGB: 108, CPUGB: 317, NVMeGB: 129},
	CfgInfAll2:  {TFLOPs: 24.5, GPUGB: 52, CPUGB: 488, NVMeGB: 150},
}

// Fig13Largest holds the largest single-node models with offload (Fig 13).
var Fig13Largest = map[PaperConfig]struct {
	SizeB                float64
	TFLOPs               float64
	GPUGB, CPUGB, NVMeGB float64
}{
	CfgZeRO1CPU: {SizeB: 8.9, TFLOPs: 155.3, GPUGB: 161, CPUGB: 297},
	CfgZeRO2CPU: {SizeB: 14.2, TFLOPs: 180.2, GPUGB: 158, CPUGB: 419},
	CfgInfOpt2:  {SizeB: 33.3, TFLOPs: 37.16, GPUGB: 158, CPUGB: 611, NVMeGB: 375},
}

// Table5Sensitivity is throughput vs model size (billion params → TFLOP/s).
var Table5Sensitivity = map[PaperConfig]map[float64]float64{
	CfgDDP:      {0.7: 379, 1.4: 438},
	CfgMegatron: {0.7: 270, 1.4: 309, 2.9: 312, 4.4: 315, 5.2: 324, 5.5: 331},
	CfgZeRO1:    {0.7: 419, 1.4: 461, 2.9: 487, 4.4: 391},
	CfgZeRO2:    {0.7: 427, 1.4: 472, 2.9: 502, 4.4: 509, 5.2: 524},
	CfgZeRO3:    {0.7: 377, 1.4: 392, 2.9: 385, 4.4: 389, 5.2: 379, 5.5: 385, 6.0: 382, 6.6: 381},
	CfgZeRO1CPU: {0.7: 145, 1.4: 165, 2.9: 148, 4.4: 167, 5.2: 150, 5.5: 168, 6.0: 164, 6.6: 163, 7.8: 158, 8.9: 155},
	CfgZeRO2CPU: {0.7: 164, 1.4: 177, 2.9: 191, 4.4: 179, 5.2: 182, 5.5: 182, 6.0: 192, 6.6: 182, 7.8: 192, 8.9: 192, 11.6: 174, 14.2: 180},
	CfgInfOpt2:  {0.7: 39, 1.4: 37, 2.9: 39, 4.4: 38, 5.2: 38, 5.5: 38, 6.0: 38, 6.6: 38, 7.8: 37, 8.9: 38, 11.6: 36, 14.2: 36, 20.6: 36, 26.9: 34, 33.3: 37},
}

// Table6NvmePlacement: configuration letter → throughput and xGMI/PCIe-NVMe
// bandwidth (avg, 90th, peak) for the 33.3 B ZeRO-Infinity run.
var Table6NvmePlacement = map[string]struct {
	TFLOPs   float64
	XGMI     [3]float64
	PCIeNVMe [3]float64
}{
	"A": {19.6, [3]float64{2.94, 5.01, 74.4}, [3]float64{3.23, 6.16, 6.41}},
	"B": {37.16, [3]float64{7.63, 32.9, 71.0}, [3]float64{6.5, 11.9, 12.6}},
	"C": {35.43, [3]float64{8.14, 41.4, 75.3}, [3]float64{6.18, 12.1, 12.7}},
	"D": {40.22, [3]float64{4.89, 15.2, 52.2}, [3]float64{6.98, 12.7, 12.9}},
	"E": {51.22, [3]float64{9.58, 26.6, 84.5}, [3]float64{7.1, 10.8, 13.5}},
	"F": {64.61, [3]float64{7.35, 17.6, 65.7}, [3]float64{11.2, 19.5, 21.8}},
	"G": {65.16, [3]float64{7.81, 25.6, 69.2}, [3]float64{11.4, 21.1, 22.4}},
}

// Fig4Stress: scenario → attained fraction of RoCE theoretical.
var Fig4Stress = map[string]float64{
	"CPU-RoCE same-socket":  0.93,
	"CPU-RoCE cross-socket": 0.47,
	"GPU-RoCE same-socket":  0.52,
	"GPU-RoCE cross-socket": 0.42,
}

// Fig3Latency: bounds for small messages (<64 kB), microseconds.
var Fig3Latency = struct {
	SameSocketMaxUs  float64
	CrossSocketMaxUs float64
}{6, 40}

// Fig1Trend is the LLM-size-versus-GPU-memory survey the introduction plots.
type Fig1Point struct {
	Year  int
	Name  string
	Value float64 // billion params for models, GB for GPUs
	IsGPU bool
}

// Fig1Trend holds representative points of the paper's Fig 1.
var Fig1Trend = []Fig1Point{
	{2018, "ELMo", 0.094, false},
	{2018, "BERT-Large", 0.34, false},
	{2019, "GPT-2", 1.5, false},
	{2019, "Megatron-LM", 8.3, false},
	{2020, "T5", 11, false},
	{2020, "Turing-NLG", 17, false},
	{2020, "GPT-3", 175, false},
	{2021, "Megatron-Turing NLG", 530, false},
	{2023, "GPT-4 (est.)", 1760, false},
	{2017, "Tesla V100", 16, true},
	{2018, "Tesla V100 32GB", 32, true},
	{2020, "A100 40GB", 40, true},
	{2020, "A100 80GB", 80, true},
	{2023, "H100 80GB", 80, true},
}
