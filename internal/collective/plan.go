package collective

import (
	"fmt"

	"llmbw/internal/fabric"
	"llmbw/internal/sim"
	"llmbw/internal/topology"
)

// CompiledPlans selects the collective issue path: true (the default) compiles
// a Plan per (op, payload, rate-limit, rings/tree) shape once and replays it
// on every subsequent issue, so steady-state collectives allocate nothing;
// false rebuilds flows and closures per issue, the pre-plan behaviour. The
// two paths are byte-identical in simulation outcome (pinned by the
// determinism tests); the knob exists so those tests can compare them. It
// must not be toggled while a simulation is running.
var CompiledPlans = true

// planKey identifies one collective shape. Training iterations re-issue the
// same handful of shapes thousands of times (the paper's Table IV/V
// workloads), which is what makes compiling them worthwhile.
type planKey struct {
	op      Op
	payload float64
	limit   float64 // per-hop rate cap; 0 = unlimited
	rings   int8
	tree    bool
}

// crossLeg records a node-boundary leg and its route so the plan can
// recompute the leg's stream cap when link capacities change.
type crossLeg struct {
	flow  *fabric.Flow
	route topology.Route
}

// Plan is a compiled collective: the flow records, hop paths, stream caps and
// completion closures of one issue, built once and replayed by resetting byte
// counters. A plan is checked out of its group's per-key free list while in
// flight and returned on completion, so overlapping same-key issues (ZeRO-3's
// parameter prefetch) each hold a private plan.
type Plan struct {
	g     *Group
	key   planKey
	flows []*fabric.Flow
	cross []crossLeg

	frac     float64  // effective cross-node stream fraction
	latency  sim.Time // pipeline latency added after the last leg drains
	capEpoch int64    // fabric capacity epoch the cross caps were computed at

	total     int
	remaining int
	onDone    func()
	legDone   func() // bound once; shared by every leg of every replay
	finish    func() // bound once; releases the plan, then calls onDone
}

// acquirePlan returns a ready-to-start plan for the key: a pooled one when
// the free list has one (refreshing its stream caps if link capacities
// changed since it was compiled), a freshly compiled one otherwise.
func (g *Group) acquirePlan(key planKey) *Plan {
	free := g.plans[key]
	if k := len(free); k > 0 {
		p := free[k-1]
		free[k-1] = nil
		g.plans[key] = free[:k-1]
		if ce := g.cluster.Net.CapacityEpoch(); ce != p.capEpoch {
			// A link capacity changed since compile (e.g. whatif's degraded
			// NIC); recompute the cross-leg caps exactly as a fresh issue
			// would. In-flight plans keep their caps, matching the legacy
			// path where flows already started keep their limits.
			p.applyCrossCaps()
			p.capEpoch = ce
		}
		g.replays++
		return p
	}
	p := g.compilePlan(key)
	g.compiled++
	return p
}

// releasePlan returns a finished plan to the free list.
func (g *Group) releasePlan(p *Plan) {
	if g.plans == nil {
		g.plans = make(map[planKey][]*Plan)
	}
	g.plans[p.key] = append(g.plans[p.key], p)
}

// Precompile ensures a plan for the shape sits on the free list, so the
// first issue replays instead of compiling mid-simulation. Schedule
// executors call it at construction for every collective their program can
// issue. No-op when plans are disabled, when the shape degenerates to a
// zero-cost operation, or when the shape already has a parked plan.
// Precompilation generates no engine events and is therefore invisible to
// the simulation outcome.
func (g *Group) Precompile(op Op, payload, hopRateLimit float64, rings int) {
	if !CompiledPlans || len(g.ranks) == 1 || payload <= 0 {
		return
	}
	key := planKey{op: op, payload: payload, limit: hopRateLimit, rings: int8(rings)}
	if len(g.plans[key]) > 0 {
		return
	}
	p := g.compilePlan(key)
	g.compiled++
	g.releasePlan(p)
}

// compilePlan builds the flows and closures for one collective shape.
//
//lint:cold
func (g *Group) compilePlan(key planKey) *Plan {
	p := &Plan{g: g, key: key, capEpoch: g.cluster.Net.CapacityEpoch()}
	if key.tree {
		p.compileTree()
	} else {
		p.compileRings()
	}
	p.total = len(p.flows)
	eng := g.cluster.Eng
	p.legDone = func() {
		p.remaining--
		if p.remaining == 0 {
			eng.Schedule(p.latency, p.finish)
		}
	}
	p.finish = func() {
		// Release before the callback: the flows have drained, so a restart
		// from within onDone (the next pipeline stage issuing the same
		// shape) replays this very plan instead of compiling a second one.
		cb := p.onDone
		p.onDone = nil
		p.g.releasePlan(p)
		cb()
	}
	return p
}

// start replays the plan: every flow's byte counter resets inside the batch
// admission, and the shared leg-completion closure counts the legs back in.
func (p *Plan) start(onDone func()) {
	p.onDone = onDone
	p.remaining = p.total
	p.g.cluster.Net.StartFlows(p.flows, p.legDone)
}

// addLeg appends one leg flow; cross legs are indexed for stream-cap
// (re)computation.
func (p *Plan) addLeg(route topology.Route, name string, bytes float64, cross bool) {
	f := route.Flow(name, bytes)
	f.RateLimit = p.key.limit
	p.flows = append(p.flows, f)
	if cross {
		p.cross = append(p.cross, crossLeg{flow: f, route: route})
	}
}

// compileRings mirrors the direct ring construction: forward (and, for two
// rings, reverse) legs per hop in hop order, each carrying the per-hop wire
// volume split across the rings, named by leg index exactly as the direct
// path names them.
func (p *Plan) compileRings() {
	g := p.g
	n := len(g.ranks)
	wire := WireBytesPerHop(p.key.op, n, p.key.payload)
	p.latency = sim.Time(Steps(p.key.op, n)) * topology.LatNCCLStep
	p.frac = streamFraction(g.cluster, int(p.key.rings))
	leg := func(route topology.Route, bytes float64, cross bool) {
		p.addLeg(route, fmt.Sprintf("%s/hop%d", p.key.op, len(p.flows)), bytes, cross)
	}
	for i := range g.hops {
		if p.key.rings == 2 {
			leg(g.hops[i], wire/2, g.crosses[i])
			leg(g.rhops[i], wire/2, g.crosses[i])
		} else {
			leg(g.hops[i], wire, g.crosses[i])
		}
	}
	p.applyCrossCaps()
}

// applyCrossCaps sets every node-crossing leg's rate limit to the attainable
// stream rate over its route, folded with the plan's per-hop cap — the same
// arithmetic the direct path performs per issue.
func (p *Plan) applyCrossCaps() {
	for _, cl := range p.cross {
		crossCap := p.frac * minRoCECapacity(cl.route)
		limit := p.key.limit
		if limit == 0 || limit > crossCap {
			limit = crossCap
		}
		cl.flow.RateLimit = limit
	}
}

// streamFraction returns the effective cross-node stream fraction for a ring
// count, honouring the platform override.
func streamFraction(c *topology.Cluster, rings int) float64 {
	frac := FusedStreamFraction
	if rings == 1 {
		frac = PartitionedStreamFraction
	}
	if eff := c.Cfg.StreamEff; eff > 0 {
		// Platform override (e.g. purpose-built InfiniBand rails); the
		// partitioned penalty keeps its relative shape.
		frac = eff
		if rings == 1 {
			frac = eff * PartitionedStreamFraction / FusedStreamFraction
		}
	}
	return frac
}

// PlanStats reports how many plans the group has compiled and how many
// issues replayed a pooled plan — the probe the alloc-regression tests and
// the bench harness read.
func (g *Group) PlanStats() (compiled int, replays int64) {
	return g.compiled, g.replays
}
