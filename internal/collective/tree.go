package collective

import (
	"fmt"
	"math"

	"llmbw/internal/sim"
	"llmbw/internal/topology"
)

// Tree all-reduce. NCCL switches from rings to (double binary) trees for
// latency-bound payloads: a tree completes in O(log n) steps instead of the
// ring's O(n), at the cost of concentrating traffic on the tree edges. The
// training strategies in this repository default to rings (which dominate at
// the paper's payload sizes); the tree exists for latency studies and as
// the auto-selected algorithm for small operations.

// TreeThresholdBytes is the payload below which StartAuto picks the tree
// (NCCL's crossover is on the order of a megabyte on such platforms).
const TreeThresholdBytes = 1 << 20

// treeEdges returns the parent index of each rank in a binary tree rooted at
// rank 0 (heap ordering), which maps well onto node-major rank layouts: the
// first inter-node edge appears as high in the tree as possible.
func treeEdges(n int) [][2]int {
	edges := make([][2]int, 0, n-1)
	for child := 1; child < n; child++ {
		edges = append(edges, [2]int{(child - 1) / 2, child})
	}
	return edges
}

// TreeSteps returns the number of latency steps of a tree all-reduce
// (reduce up + broadcast down).
func TreeSteps(n int) int {
	if n <= 1 {
		return 0
	}
	return 2 * int(math.Ceil(math.Log2(float64(n))))
}

// StartTree launches a tree all-reduce of the payload: every tree edge
// carries the payload once up (reduce) and once down (broadcast).
func (g *Group) StartTree(payload float64, onDone func()) {
	n := len(g.ranks)
	eng := g.cluster.Eng
	if n == 1 || payload <= 0 {
		eng.Schedule(0, onDone)
		return
	}
	if !CompiledPlans {
		g.startTreeDirect(payload, onDone)
		return
	}
	p := g.acquirePlan(planKey{op: AllReduce, payload: payload, tree: true})
	p.start(onDone)
}

// compileTree mirrors startTreeDirect: one flow per tree edge in edge order,
// each carrying the payload up and down.
func (p *Plan) compileTree() {
	g := p.g
	n := len(g.ranks)
	p.latency = sim.Time(TreeSteps(n)) * topology.LatNCCLStep
	p.frac = FusedStreamFraction
	if eff := g.cluster.Cfg.StreamEff; eff > 0 {
		p.frac = eff
	}
	for i, e := range treeEdges(n) {
		a, b := g.ranks[e[0]], g.ranks[e[1]]
		var route topology.Route
		cross := a.Node != b.Node
		if cross {
			route = g.cluster.GPUToRemoteGPU(a, b)
		} else {
			route = g.cluster.GPUToGPU(a, b)
		}
		p.addLeg(route, fmt.Sprintf("tree-allreduce/edge%d", i), 2*p.key.payload, cross)
	}
	p.applyCrossCaps()
}

// startTreeDirect is the rebuild-per-issue tree path, kept as the reference
// for the compiled-plan determinism tests.
//
//lint:cold
func (g *Group) startTreeDirect(payload float64, onDone func()) {
	n := len(g.ranks)
	eng := g.cluster.Eng
	latency := sim.Time(TreeSteps(n)) * topology.LatNCCLStep
	edges := treeEdges(n)
	remaining := len(edges)
	for i, e := range edges {
		a, b := g.ranks[e[0]], g.ranks[e[1]]
		var route topology.Route
		cross := a.Node != b.Node
		if cross {
			route = g.cluster.GPUToRemoteGPU(a, b)
		} else {
			route = g.cluster.GPUToGPU(a, b)
		}
		f := route.Flow(fmt.Sprintf("tree-allreduce/edge%d", i), 2*payload)
		if cross {
			cap := FusedStreamFraction * minRoCECapacity(route)
			if eff := g.cluster.Cfg.StreamEff; eff > 0 {
				cap = eff * minRoCECapacity(route)
			}
			f.RateLimit = cap
		}
		g.cluster.Net.StartFlow(f, func() {
			remaining--
			if remaining == 0 {
				eng.Schedule(latency, onDone)
			}
		})
	}
}

// StartAuto picks the tree for small all-reduces and the dual-ring algorithm
// otherwise — NCCL's algorithm selection in miniature.
func (g *Group) StartAuto(op Op, payload float64, onDone func()) {
	if op == AllReduce && payload < TreeThresholdBytes {
		g.StartTree(payload, onDone)
		return
	}
	g.Start(op, payload, onDone)
}

// RunTree executes a tree all-reduce synchronously from a driver process.
func (g *Group) RunTree(p *sim.Proc, payload float64) {
	p.Await(func(resume func()) { g.StartTree(payload, resume) })
}
