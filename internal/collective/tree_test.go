package collective

import (
	"testing"

	"llmbw/internal/sim"
	"llmbw/internal/topology"
)

func TestTreeEdgesSpanAllRanks(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		edges := treeEdges(n)
		if len(edges) != n-1 {
			t.Fatalf("n=%d: %d edges, want %d", n, len(edges), n-1)
		}
		reached := map[int]bool{0: true}
		for _, e := range edges {
			if !reached[e[0]] {
				t.Errorf("n=%d: parent %d not yet reachable (edge order broken)", n, e[0])
			}
			reached[e[1]] = true
		}
		if len(reached) != n {
			t.Errorf("n=%d: tree reaches %d ranks", n, len(reached))
		}
	}
}

func TestTreeStepsLogarithmic(t *testing.T) {
	if TreeSteps(8) != 6 || TreeSteps(4) != 4 || TreeSteps(1) != 0 {
		t.Errorf("steps: n=8 %d, n=4 %d, n=1 %d", TreeSteps(8), TreeSteps(4), TreeSteps(1))
	}
	// Ring latency for n=8 is 14 steps; tree is 6.
	if TreeSteps(8) >= Steps(AllReduce, 8) {
		t.Error("tree should need fewer latency steps than the ring")
	}
}

func TestTreeBeatsRingOnTinyPayloads(t *testing.T) {
	run := func(tree bool) sim.Time {
		c := topology.New(topology.DefaultConfig(2))
		g := NewGroup(c, NodeMajorRanks(2, 4))
		var done sim.Time
		fn := func() { done = c.Eng.Now() }
		if tree {
			g.StartTree(4096, fn)
		} else {
			g.Start(AllReduce, 4096, fn)
		}
		c.Eng.Run()
		return done
	}
	treeT, ringT := run(true), run(false)
	if treeT >= ringT {
		t.Errorf("tree (%v) should beat ring (%v) at 4 kB", treeT, ringT)
	}
}

func TestRingBeatsTreeOnLargePayloads(t *testing.T) {
	run := func(tree bool) sim.Time {
		c := topology.New(topology.DefaultConfig(1))
		g := NewGroup(c, NodeMajorRanks(1, 4))
		var done sim.Time
		fn := func() { done = c.Eng.Now() }
		if tree {
			g.StartTree(2e9, fn)
		} else {
			g.Start(AllReduce, 2e9, fn)
		}
		c.Eng.Run()
		return done
	}
	treeT, ringT := run(true), run(false)
	if ringT >= treeT {
		t.Errorf("ring (%v) should beat tree (%v) at 2 GB", ringT, treeT)
	}
}

func TestStartAutoSelection(t *testing.T) {
	// Small payload via StartAuto should match StartTree's completion time;
	// large should match the ring.
	timeOf := func(start func(g *Group, done func())) sim.Time {
		c := topology.New(topology.DefaultConfig(2))
		g := NewGroup(c, NodeMajorRanks(2, 4))
		var at sim.Time
		start(g, func() { at = c.Eng.Now() })
		c.Eng.Run()
		return at
	}
	small := timeOf(func(g *Group, done func()) { g.StartAuto(AllReduce, 1024, done) })
	smallTree := timeOf(func(g *Group, done func()) { g.StartTree(1024, done) })
	if small != smallTree {
		t.Errorf("auto small = %v, tree = %v", small, smallTree)
	}
	big := timeOf(func(g *Group, done func()) { g.StartAuto(AllReduce, 1e9, done) })
	bigRing := timeOf(func(g *Group, done func()) { g.Start(AllReduce, 1e9, done) })
	if big != bigRing {
		t.Errorf("auto big = %v, ring = %v", big, bigRing)
	}
}

func TestRunTreeBlocksDriver(t *testing.T) {
	c := topology.New(topology.DefaultConfig(1))
	g := NewGroup(c, NodeMajorRanks(1, 4))
	var at sim.Time
	c.Eng.Go("d", func(p *sim.Proc) {
		g.RunTree(p, 1e8)
		at = p.Now()
	})
	c.Eng.Run()
	if at == 0 {
		t.Error("RunTree returned instantly")
	}
}

func TestTreeSingleRankNoOp(t *testing.T) {
	c := topology.New(topology.DefaultConfig(1))
	g := NewGroup(c, []topology.GPU{{Node: 0, Index: 0}})
	done := false
	g.StartTree(1e9, func() { done = true })
	c.Eng.Run()
	if !done || c.Eng.Now() != 0 {
		t.Error("single-rank tree should complete instantly")
	}
}
