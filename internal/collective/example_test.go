package collective_test

import (
	"fmt"

	"llmbw/internal/collective"
	"llmbw/internal/sim"
	"llmbw/internal/topology"
)

// Run a 2 GB ring all-reduce across the four GPUs of one node.
func Example() {
	cluster := topology.New(topology.DefaultConfig(1))
	group := collective.NewGroup(cluster, collective.NodeMajorRanks(1, 4))
	cluster.Eng.Go("driver", func(p *sim.Proc) {
		group.Run(p, collective.AllReduce, 2e9)
		fmt.Printf("all-reduce finished at %v\n", p.Now())
	})
	cluster.Eng.Run()
	// Each ring hop carries 2·2GB·(3/4) = 3 GB over a 200 GB/s NVLink pair,
	// plus 6 pipeline-step latencies.
	// Output:
	// all-reduce finished at 15.024ms
}
