package collective

import (
	"fmt"
	"strings"
	"testing"

	"llmbw/internal/fabric"
	"llmbw/internal/sim"
	"llmbw/internal/topology"
)

// buildDCGroup constructs the cluster variant the algorithm requires plus
// its collective group over every node.
func buildDCGroup(t *testing.T, spec string, algo Algo, shards int) (*topology.DCShardedCluster, *DCGroup) {
	t.Helper()
	cfg, err := topology.ParseTopoSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Window = sim.Time(1) << 60
	var sc *topology.DCShardedCluster
	if EffectiveAlgo(algo) == AlgoFlat {
		sc, err = topology.NewDCColocated(cfg, shards)
	} else {
		sc, err = topology.NewDCSharded(cfg, shards)
	}
	if err != nil {
		t.Fatal(err)
	}
	return sc, NewDCGroup(sc, algo)
}

// driveDC runs two iterations of a three-collective round on every node and
// renders per-node completion times plus per-node NIC/NVSwitch telemetry —
// the byte-identity surface for the shard-count and toggle A/B tests.
func driveDC(t *testing.T, spec string, algo Algo, shards int, parallel bool) string {
	t.Helper()
	old := sim.Sharded
	sim.Sharded = parallel
	defer func() { sim.Sharded = old }()

	sc, grp := buildDCGroup(t, spec, algo, shards)
	rounds := []struct {
		op      Op
		payload float64
	}{
		{AllReduce, 1e9},
		{Broadcast, 4e8},
		{ReduceScatter, 6e8},
	}
	for _, r := range rounds {
		grp.Precompile(r.op, r.payload)
	}
	nodes := sc.Nodes()
	logs := make([]string, nodes)
	for n := 0; n < nodes; n++ {
		n := n
		sc.EngineOf(n).Go(fmt.Sprintf("driver-%d", n), func(p *sim.Proc) {
			var sb strings.Builder
			for it := 0; it < 2; it++ {
				for _, r := range rounds {
					grp.RunNode(p, r.op, r.payload, n)
					fmt.Fprintf(&sb, "%v@%d;", r.op, p.Now())
				}
			}
			logs[n] = sb.String()
		})
	}
	end := sc.RunSim()
	var sb strings.Builder
	for n := 0; n < nodes; n++ {
		fmt.Fprintf(&sb, "n%d %s roce=%+v nv=%+v\n", n, logs[n],
			sc.ClassSeries(fabric.RoCE, n, 0, end).Stats(),
			sc.ClassSeries(fabric.NVLink, n, 0, end).Stats())
	}
	return sb.String()
}

// TestHierIdentityAcrossShards pins the tentpole determinism claim: a
// hierarchical collective workload on a rail-only cluster is byte-identical
// at 1/2/4/8 shards, in both serial-merge and parallel-window execution.
// pod=1 makes every node its own partition seam, so all four shard counts
// are realizable.
func TestHierIdentityAcrossShards(t *testing.T) {
	for _, algo := range []Algo{AlgoTwoLevel, AlgoMultiRing} {
		ref := ""
		refKey := ""
		for _, shards := range []int{1, 2, 4, 8} {
			for _, parallel := range []bool{false, true} {
				got := driveDC(t, "rail-only:nodes=8,pod=1", algo, shards, parallel)
				key := fmt.Sprintf("%v shards=%d parallel=%v", algo, shards, parallel)
				if ref == "" {
					ref, refKey = got, key
					continue
				}
				if got != ref {
					t.Errorf("%s differs from %s:\n%s\nvs\n%s", key, refKey, got, ref)
				}
			}
		}
	}
}

// TestHierIdentityOnPodFabrics runs the same identity matrix on multi-node
// pods over fat-tree and dragonfly trunks, where cross-pod legs carry extra
// tier latency and pod-owned trunk links.
func TestHierIdentityOnPodFabrics(t *testing.T) {
	for _, spec := range []string{"fat-tree:nodes=8", "dragonfly:nodes=8,rails=2"} {
		ref := ""
		for i, shards := range []int{1, 2} {
			for _, parallel := range []bool{false, true} {
				got := driveDC(t, spec, AlgoTwoLevel, shards, parallel)
				if i == 0 && !parallel {
					ref = got
					continue
				}
				if got != ref {
					t.Errorf("%s shards=%d parallel=%v differs:\n%s\nvs\n%s", spec, shards, parallel, got, ref)
				}
			}
		}
	}
}

// TestFlatShardInvariant: the colocated flat twin must not care what the
// -shards knob says — the whole fabric lives on shard 0.
func TestFlatShardInvariant(t *testing.T) {
	ref := driveDC(t, "fat-tree:nodes=8", AlgoFlat, 1, false)
	for _, shards := range []int{2, 8} {
		for _, parallel := range []bool{false, true} {
			if got := driveDC(t, "fat-tree:nodes=8", AlgoFlat, shards, parallel); got != ref {
				t.Errorf("flat shards=%d parallel=%v differs from shards=1", shards, parallel)
			}
		}
	}
}

// TestHierarchicalToggleOffMatchesFlat pins the A/B lever: with the toggle
// off, a group built for 2-level or multi-ring degrades to the flat twin,
// byte for byte.
func TestHierarchicalToggleOffMatchesFlat(t *testing.T) {
	flat := driveDC(t, "fat-tree:nodes=8", AlgoFlat, 1, false)
	old := Hierarchical
	Hierarchical = false
	defer func() { Hierarchical = old }()
	for _, algo := range []Algo{AlgoTwoLevel, AlgoMultiRing} {
		if got := driveDC(t, "fat-tree:nodes=8", algo, 1, false); got != flat {
			t.Errorf("toggle-off %v differs from flat twin:\n%s\nvs\n%s", algo, got, flat)
		}
	}
}

// TestDCPlanReplayAllocFree pins the compiled-plan contract on the
// datacenter path: once compiled and warmed, replaying a hierarchical
// all-reduce (handoff legs, rendezvous, NVSwitch phases) and the flat twin
// allocates nothing.
func TestDCPlanReplayAllocFree(t *testing.T) {
	for _, tc := range []struct {
		algo   Algo
		shards int
	}{
		{AlgoTwoLevel, 2},
		{AlgoMultiRing, 2},
		{AlgoFlat, 1},
	} {
		sc, grp := buildDCGroup(t, "rail-only:nodes=8,pod=1", tc.algo, tc.shards)
		grp.Precompile(AllReduce, 1e9)
		nodes := sc.Nodes()
		done := func() {}
		starts := make([]func(), nodes)
		for n := 0; n < nodes; n++ {
			n := n
			starts[n] = func() { grp.StartNode(AllReduce, 1e9, n, done) }
		}
		iterate := func() {
			for n := 0; n < nodes; n++ {
				sc.EngineOf(n).Schedule(0, starts[n])
			}
			sc.Eng.Run()
		}
		for i := 0; i < 3; i++ {
			iterate()
		}
		if avg := testing.AllocsPerRun(50, iterate); avg != 0 {
			t.Errorf("%v: steady-state replay allocates %v allocs/run, want 0", tc.algo, avg)
		}
		sc.Eng.Close()
	}
}

// TestDCGroupGuards: precompilation is mandatory, mid-round restarts are
// caught, and algorithm/cluster pairings are enforced.
func TestDCGroupGuards(t *testing.T) {
	sc, grp := buildDCGroup(t, "rail-only:nodes=4,pod=1", AlgoTwoLevel, 2)
	defer sc.Eng.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("StartNode without Precompile did not panic")
			}
		}()
		grp.StartNode(AllReduce, 5e8, 0, func() {})
	}()
	cfg, _ := topology.ParseTopoSpec("rail-only:nodes=4,pod=1")
	colo, err := topology.NewDCColocated(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer colo.Eng.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("hierarchical group on a colocated cluster did not panic")
			}
		}()
		NewDCGroup(colo, AlgoTwoLevel)
	}()
}

// TestHandleDoubleReleaseIdempotent pins the pool-safety fix: releasing a
// handle twice must not insert it into the pool twice (which would hand the
// same handle to two NewHandle callers).
func TestHandleDoubleReleaseIdempotent(t *testing.T) {
	_, g := singleNodeGroup(t)
	h := g.NewHandle()
	h.Fire()
	h.Release()
	h.Release() // must be a no-op
	h2 := g.NewHandle()
	if h2 != h {
		t.Fatal("first NewHandle should reuse the released handle")
	}
	h3 := g.NewHandle()
	if h3 == h2 {
		t.Error("double Release handed the same handle out twice")
	}
	// Release during Fire followed by a late duplicate Release: same contract.
	h2.Then(func() { h2.Release() })
	h2.Fire()
	h2.Release()
	a, b := g.NewHandle(), g.NewHandle()
	if a == b {
		t.Error("duplicate Release after fire-time release handed one handle out twice")
	}
}
