package collective

import (
	"math"
	"testing"
	"testing/quick"

	"llmbw/internal/fabric"
	"llmbw/internal/sim"
	"llmbw/internal/topology"
)

func singleNodeGroup(t *testing.T) (*topology.Cluster, *Group) {
	t.Helper()
	c := topology.New(topology.DefaultConfig(1))
	return c, NewGroup(c, NodeMajorRanks(1, 4))
}

func TestWireBytesFormulas(t *testing.T) {
	v := 1e9
	cases := []struct {
		op   Op
		n    int
		want float64
	}{
		{AllReduce, 4, 1.5e9},
		{AllGather, 4, 0.75e9},
		{ReduceScatter, 8, 0.875e9},
		{Broadcast, 4, 1e9},
		{Reduce, 4, 1e9},
		{AllReduce, 1, 0},
	}
	for _, c := range cases {
		if got := WireBytesPerHop(c.op, c.n, v); math.Abs(got-c.want) > 1 {
			t.Errorf("WireBytes(%v, n=%d) = %v, want %v", c.op, c.n, got, c.want)
		}
	}
}

// The ZeRO communication-volume law: ZeRO-1/2 (reduce-scatter + all-gather)
// move exactly as much as DDP's all-reduce; ZeRO-3 adds an extra parameter
// all-gather for +50%.
func TestZeROVolumeLaw(t *testing.T) {
	v := 2e9
	n := 8
	ddp := WireBytesPerHop(AllReduce, n, v)
	z12 := WireBytesPerHop(ReduceScatter, n, v) + WireBytesPerHop(AllGather, n, v)
	if math.Abs(ddp-z12) > 1 {
		t.Errorf("ZeRO-1/2 volume %v != DDP %v", z12, ddp)
	}
	z3 := z12 + WireBytesPerHop(AllGather, n, v)
	if ratio := z3 / ddp; math.Abs(ratio-1.5) > 1e-9 {
		t.Errorf("ZeRO-3/DDP volume ratio = %v, want 1.5", ratio)
	}
}

func TestStepsCount(t *testing.T) {
	if Steps(AllReduce, 4) != 6 || Steps(AllGather, 4) != 3 || Steps(Reduce, 1) != 0 {
		t.Error("step counts wrong")
	}
}

func TestUnknownOpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown op did not panic")
		}
	}()
	WireBytesPerHop(Op(42), 4, 1)
}

func TestSingleNodeAllReduceTiming(t *testing.T) {
	c, g := singleNodeGroup(t)
	var doneAt sim.Time
	// 2 GB payload, n=4: each hop carries 3 GB over a 200 GB/s NVLink pair.
	// All four hops run on distinct pair links -> 15 ms + step latency.
	g.Start(AllReduce, 2e9, func() { doneAt = c.Eng.Now() })
	c.Eng.Run()
	want := 0.015 + float64(Steps(AllReduce, 4))*topology.LatNCCLStep.ToSeconds()
	if math.Abs(doneAt.ToSeconds()-want) > 1e-4 {
		t.Errorf("all-reduce took %v, want ~%.4fs", doneAt, want)
	}
}

func TestRingUsesDistinctNVLinkPairs(t *testing.T) {
	c2, g2 := singleNodeGroup(t)
	g2.Start(AllReduce, 2e9, func() {})
	c2.Eng.Run()
	c2.Net.Quiesce()
	// Ring 0-1-2-3-0 uses pairs (0,1),(1,2),(2,3),(0,3); pairs (0,2),(1,3) idle.
	idle := []*fabric.Link{
		c2.NVLinkPair(topology.GPU{Node: 0, Index: 0}, topology.GPU{Node: 0, Index: 2}),
		c2.NVLinkPair(topology.GPU{Node: 0, Index: 1}, topology.GPU{Node: 0, Index: 3}),
	}
	for _, l := range idle {
		if l.Counter().Total() != 0 {
			t.Errorf("non-ring link %s saw traffic", l.Name)
		}
	}
	busy := c2.NVLinkPair(topology.GPU{Node: 0, Index: 0}, topology.GPU{Node: 0, Index: 1})
	if busy.Counter().Total() == 0 {
		t.Error("ring link saw no traffic")
	}
}

func TestDualNodeRingCrossesRoCEOncePerDirection(t *testing.T) {
	c := topology.New(topology.DefaultConfig(2))
	g := NewGroup(c, NodeMajorRanks(2, 4))
	g.Start(AllReduce, 2e9, func() {})
	c.Eng.Run()
	c.Net.Quiesce()
	// Wire per hop = 2·2GB·7/8 = 3.5 GB. Two hops cross nodes, each using
	// two RoCE links (src + dst side).
	var roceTotal float64
	for _, n := range []int{0, 1} {
		for _, l := range c.LinksOfClass(fabric.RoCE, n) {
			roceTotal += l.Counter().Total()
		}
	}
	want := 2 * 2 * 3.5e9
	if math.Abs(roceTotal-want) > 1e6 {
		t.Errorf("RoCE bytes = %v, want %v", roceTotal, want)
	}
}

func TestDualNodeSlowerThanSingle(t *testing.T) {
	single := topology.New(topology.DefaultConfig(1))
	gs := NewGroup(single, NodeMajorRanks(1, 4))
	var tSingle, tDual sim.Time
	gs.Start(AllReduce, 2e9, func() { tSingle = single.Eng.Now() })
	single.Eng.Run()

	dual := topology.New(topology.DefaultConfig(2))
	gd := NewGroup(dual, NodeMajorRanks(2, 4))
	gd.Start(AllReduce, 2e9, func() { tDual = dual.Eng.Now() })
	dual.Eng.Run()
	if tDual < 3*tSingle {
		t.Errorf("dual-node all-reduce (%v) should be much slower than single (%v)", tDual, tSingle)
	}
}

func TestSingleRankIsNoOp(t *testing.T) {
	c := topology.New(topology.DefaultConfig(1))
	g := NewGroup(c, []topology.GPU{{Node: 0, Index: 0}})
	done := false
	g.Start(AllReduce, 1e9, func() { done = true })
	c.Eng.Run()
	if !done {
		t.Error("single-rank collective never completed")
	}
	if c.Eng.Now() != 0 {
		t.Errorf("single-rank collective took %v", c.Eng.Now())
	}
}

func TestRunBlocksDriverProcess(t *testing.T) {
	c, g := singleNodeGroup(t)
	var at sim.Time
	c.Eng.Go("driver", func(p *sim.Proc) {
		g.Run(p, AllGather, 4e9)
		at = p.Now()
	})
	c.Eng.Run()
	if at == 0 {
		t.Error("Run returned instantly")
	}
}

func TestAsyncHandle(t *testing.T) {
	c, g := singleNodeGroup(t)
	var order []string
	c.Eng.Go("driver", func(p *sim.Proc) {
		h := g.StartAsync(AllReduce, 2e9)
		order = append(order, "launched")
		p.Sleep(sim.Millisecond)
		order = append(order, "slept")
		h.Wait(p)
		order = append(order, "waited")
		if !h.Done() {
			t.Error("handle not done after Wait")
		}
		// Waiting again on a done handle returns immediately.
		h.Wait(p)
	})
	c.Eng.Run()
	if len(order) != 3 || order[0] != "launched" || order[2] != "waited" {
		t.Errorf("order = %v", order)
	}
}

func TestEmptyGroupPanics(t *testing.T) {
	c := topology.New(topology.DefaultConfig(1))
	defer func() {
		if recover() == nil {
			t.Error("empty group did not panic")
		}
	}()
	NewGroup(c, nil)
}

func TestNodeMajorRanks(t *testing.T) {
	r := NodeMajorRanks(2, 4)
	if len(r) != 8 || r[0] != (topology.GPU{Node: 0, Index: 0}) || r[4] != (topology.GPU{Node: 1, Index: 0}) {
		t.Errorf("ranks = %v", r)
	}
}

func TestOpString(t *testing.T) {
	for _, op := range []Op{AllReduce, AllGather, ReduceScatter, Broadcast, Reduce, Op(9)} {
		if op.String() == "" {
			t.Errorf("op %d renders empty", int(op))
		}
	}
}

// Property: wire bytes per hop are always <= 2×payload and approach the
// asymptote as n grows.
func TestWireBytesBoundsProperty(t *testing.T) {
	f := func(nRaw uint8, vRaw uint32) bool {
		n := int(nRaw%64) + 2
		v := float64(vRaw) + 1
		for _, op := range []Op{AllReduce, AllGather, ReduceScatter, Broadcast, Reduce} {
			w := WireBytesPerHop(op, n, v)
			if w < 0 || w > 2*v+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
