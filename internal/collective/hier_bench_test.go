package collective

import (
	"fmt"
	"testing"

	"llmbw/internal/sim"
	"llmbw/internal/topology"
)

// BenchmarkHierarchicalAllReduce measures one compiled all-reduce round per
// op across the algorithm × cluster-size × shard-count grid. The flat twin
// keeps the whole fabric colocated on shard 0 (its dual-ring fluid flows form
// one fair-share component spanning every NIC), so its per-op cost grows
// quadratically with the ring; the handoff-legged hierarchical algorithms
// decompose the same traffic into per-node components that the sharded
// engine retires independently. The -benchmem figures double as the zero-
// steady-state-allocation pins recorded in BENCH_topo.json.
func BenchmarkHierarchicalAllReduce(b *testing.B) {
	const payload = 1e9
	for _, algo := range []Algo{AlgoFlat, AlgoTwoLevel, AlgoMultiRing} {
		for _, nodes := range []int{16, 64, 256} {
			for _, shards := range []int{1, 4, 8} {
				name := fmt.Sprintf("algo=%v/nodes=%d/shards=%d", algo, nodes, shards)
				b.Run(name, func(b *testing.B) {
					old := sim.Sharded
					sim.Sharded = shards > 1
					defer func() { sim.Sharded = old }()
					// pod=1 makes every node a partition seam, so all shard
					// counts are realizable at every cluster size.
					spec := fmt.Sprintf("rail-only:nodes=%d,pod=1", nodes)
					cfg, err := topology.ParseTopoSpec(spec)
					if err != nil {
						b.Fatal(err)
					}
					cfg.Window = sim.Time(1) << 60
					var sc *topology.DCShardedCluster
					if algo == AlgoFlat {
						sc, err = topology.NewDCColocated(cfg, shards)
					} else {
						sc, err = topology.NewDCSharded(cfg, shards)
					}
					if err != nil {
						b.Fatal(err)
					}
					defer sc.Eng.Close()
					grp := NewDCGroup(sc, algo)
					grp.Precompile(AllReduce, payload)
					done := func() {}
					starts := make([]func(), nodes)
					for n := 0; n < nodes; n++ {
						n := n
						starts[n] = func() { grp.StartNode(AllReduce, payload, n, done) }
					}
					round := func() {
						for n := 0; n < nodes; n++ {
							sc.EngineOf(n).Schedule(0, starts[n])
						}
						sc.Eng.Run()
					}
					round() // warm pools, heaps, and shard workers
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						round()
					}
				})
			}
		}
	}
}
