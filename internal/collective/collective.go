// Package collective models NCCL-style collective operations over the
// simulated cluster. Operations run as ring algorithms: the group's GPUs are
// ordered so that at most one ring segment crosses each node boundary in each
// direction (NCCL's topology-aware ring construction), each adjacent pair
// carries the algorithm's per-hop wire volume concurrently, and the
// operation completes when the slowest hop finishes — the fluid-flow
// equivalent of the pipelined ring.
//
// Per-hop wire volumes are the textbook ring costs for payload V over n
// ranks:
//
//	all-reduce       2·V·(n−1)/n
//	all-gather       V·(n−1)/n   (V = full gathered size)
//	reduce-scatter   V·(n−1)/n
//	broadcast/reduce V
//
// DDP and ZeRO-1/2 therefore move the same volume (all-reduce versus
// reduce-scatter + all-gather), while ZeRO-3's parameter all-gathers add the
// 50% the ZeRO paper reports.
package collective

import (
	"fmt"

	"llmbw/internal/fabric"
	"llmbw/internal/sim"
	"llmbw/internal/topology"
)

// Op is a collective operation kind.
type Op int

// Supported collectives.
const (
	AllReduce Op = iota
	AllGather
	ReduceScatter
	Broadcast
	Reduce
)

var opNames = map[Op]string{
	AllReduce: "all-reduce", AllGather: "all-gather",
	ReduceScatter: "reduce-scatter", Broadcast: "broadcast", Reduce: "reduce",
}

func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// WireBytesPerHop returns the bytes each ring hop carries for the operation
// with the given payload over n ranks.
func WireBytesPerHop(op Op, n int, payload float64) float64 {
	if n <= 1 {
		return 0
	}
	f := float64(n-1) / float64(n)
	switch op {
	case AllReduce:
		return 2 * payload * f
	case AllGather, ReduceScatter:
		return payload * f
	case Broadcast, Reduce:
		return payload
	default:
		panic(fmt.Sprintf("collective: unknown op %d", int(op)))
	}
}

// Steps returns the number of pipeline steps (for latency accounting).
func Steps(op Op, n int) int {
	if n <= 1 {
		return 0
	}
	if op == AllReduce {
		return 2 * (n - 1)
	}
	return n - 1
}

// FusedStreamFraction is the fraction of a NIC's bidirectional aggregate one
// NCCL ring direction attains across the node boundary: the paper's GPU-RoCE
// stress test (Fig 4-b) reaches 52% of theoretical through the IOD crossbar,
// i.e. ≈ 26% per direction — 13 GB/s on the 200 GbE NICs, consistent with
// Table IV's dual-node RoCE averages.
const FusedStreamFraction = 0.26

// PartitionedStreamFraction is the same for single-ring (DeepSpeed
// partitioned) collectives: their many smaller per-partition operations
// attain slightly less of the link than one fused NCCL stream.
const PartitionedStreamFraction = 0.20

// Group is a fixed set of GPUs that perform collectives together.
type Group struct {
	cluster *topology.Cluster
	ranks   []topology.GPU
	hops    []topology.Route // ring hop i: ranks[i] -> ranks[(i+1)%n]
	rhops   []topology.Route // reverse ring hop i: ranks[(i+1)%n] -> ranks[i]
	crosses []bool           // hop i crosses the node boundary

	// plans is the per-shape compiled-plan free list (see Plan); compiled
	// and replays are its probes. hPool recycles released Handles.
	plans    map[planKey][]*Plan
	compiled int
	replays  int64
	hPool    []*Handle
}

// NewGroup builds a collective group over the given GPUs. The ring order is
// the given rank order; callers should list GPUs node-major (all of node 0,
// then node 1, …) so the ring crosses each node boundary once per direction,
// as NCCL does.
func NewGroup(c *topology.Cluster, ranks []topology.GPU) *Group {
	if len(ranks) == 0 {
		panic("collective: empty group")
	}
	g := &Group{cluster: c, ranks: append([]topology.GPU(nil), ranks...)}
	n := len(ranks)
	if n == 1 {
		return g
	}
	for i := 0; i < n; i++ {
		a, b := ranks[i], ranks[(i+1)%n]
		if a.Node == b.Node {
			g.hops = append(g.hops, c.GPUToGPU(a, b))
			g.rhops = append(g.rhops, c.GPUToGPU(b, a))
			g.crosses = append(g.crosses, false)
		} else {
			// NCCL binds channels to NICs round-robin: the forward ring
			// crosses on NIC 0, the reverse ring on NIC 1, regardless of
			// which socket the endpoint GPUs live on. A GPU on the other
			// socket therefore reaches its NIC over xGMI — the dual-node
			// cross-socket traffic of the paper's Section IV-E2.
			g.hops = append(g.hops, c.GPUToRemoteGPUVia(a, b, 0, 0))
			g.rhops = append(g.rhops, c.GPUToRemoteGPUVia(b, a, 1, 1))
			g.crosses = append(g.crosses, true)
		}
	}
	return g
}

// Size returns the number of ranks.
func (g *Group) Size() int { return len(g.ranks) }

// Ranks returns the group's GPUs in ring order.
func (g *Group) Ranks() []topology.GPU { return g.ranks }

// Start launches the collective and calls onDone (from engine context) when
// it completes. Payload semantics: for AllReduce/Broadcast/Reduce it is the
// tensor size; for AllGather/ReduceScatter it is the full (unsharded) size.
func (g *Group) Start(op Op, payload float64, onDone func()) {
	g.StartLimited(op, payload, 0, onDone)
}

// StartLimited is Start with an optional per-hop rate cap in bytes/s
// (0 = unlimited). It uses NCCL's dual-ring construction; see StartRings.
func (g *Group) StartLimited(op Op, payload, hopRateLimit float64, onDone func()) {
	g.StartRings(op, payload, hopRateLimit, 2, onDone)
}

// StartRings launches the collective over the given number of rings (1 or
// 2). With two rings the payload splits in half over a forward and a reverse
// ring, driving both NICs of each node and attaining ≈ 2×InterNodeStreamBW
// across the node boundary — the behaviour of a single fused NCCL all-reduce
// (PyTorch DDP). DeepSpeed 0.7.1's partitioned reduce-scatter/all-gather
// phases issue many smaller per-partition operations that do not saturate a
// second channel, so the training strategies run those with rings=1.
// hopRateLimit (0 = unlimited) additionally caps each leg, modelling
// buffer-starved collectives (ZeRO-1 at the memory limit, paper Table V).
func (g *Group) StartRings(op Op, payload, hopRateLimit float64, rings int, onDone func()) {
	n := len(g.ranks)
	eng := g.cluster.Eng
	if n == 1 || payload <= 0 {
		eng.Schedule(0, onDone)
		return
	}
	if rings != 1 && rings != 2 {
		panic(fmt.Sprintf("collective: unsupported ring count %d", rings))
	}
	if !CompiledPlans {
		g.startRingsDirect(op, payload, hopRateLimit, rings, onDone)
		return
	}
	p := g.acquirePlan(planKey{op: op, payload: payload, limit: hopRateLimit, rings: int8(rings)})
	p.start(onDone)
}

// startRingsDirect is the rebuild-per-issue ring path: flows, stream caps and
// completion closures are constructed from scratch. It is the reference the
// compiled-plan path is measured (and determinism-tested) against.
//
//lint:cold
func (g *Group) startRingsDirect(op Op, payload, hopRateLimit float64, rings int, onDone func()) {
	n := len(g.ranks)
	eng := g.cluster.Eng
	wire := WireBytesPerHop(op, n, payload)
	latency := sim.Time(Steps(op, n)) * topology.LatNCCLStep
	type leg struct {
		route topology.Route
		bytes float64
		cross bool
	}
	var legs []leg
	for i := range g.hops {
		if rings == 2 {
			legs = append(legs,
				leg{g.hops[i], wire / 2, g.crosses[i]},
				leg{g.rhops[i], wire / 2, g.crosses[i]})
		} else {
			legs = append(legs, leg{g.hops[i], wire, g.crosses[i]})
		}
	}
	frac := streamFraction(g.cluster, rings)
	remaining := len(legs)
	for i, l := range legs {
		f := l.route.Flow(fmt.Sprintf("%s/hop%d", op, i), l.bytes)
		f.RateLimit = hopRateLimit
		if l.cross {
			crossCap := frac * minRoCECapacity(l.route)
			if f.RateLimit == 0 || f.RateLimit > crossCap {
				f.RateLimit = crossCap
			}
		}
		g.cluster.Net.StartFlow(f, func() {
			remaining--
			if remaining == 0 {
				eng.Schedule(latency, onDone)
			}
		})
	}
}

// Run executes the collective synchronously from a driver process.
func (g *Group) Run(p *sim.Proc, op Op, payload float64) {
	p.Await(func(resume func()) { g.Start(op, payload, resume) })
}

// Handle tracks an asynchronous collective (or any deferred completion).
// Handles from Group.NewHandle are pooled: the owner may return a finished
// handle with Release, after which it must not be touched.
type Handle struct {
	done    bool
	firing  bool // Fire is mid-iteration; defer any Release until it ends
	release bool // Release was requested during Fire
	pooled  bool // currently sitting in the owner's free list
	waiters []func()
	eng     *sim.Engine
	owner   *Group // pool to Release into; nil for unpooled handles
}

// NewPendingHandle returns an unfired handle; callers complete it with Fire.
// Used to chain operations that have not started yet (comm queues).
//
//lint:allow scratch-escape — unpooled constructor; the handle is owned by the caller
func NewPendingHandle(eng *sim.Engine) *Handle { return &Handle{eng: eng} }

// NewHandle returns an unfired handle drawn from the group's pool. The
// caller completes it with Fire and, once no reference remains, may return
// it with Release; a handle that is never released simply falls out of the
// pool.
//
//lint:allow scratch-escape — pooled by design; Release documents the ownership contract
func (g *Group) NewHandle() *Handle {
	if k := len(g.hPool); k > 0 {
		h := g.hPool[k-1]
		g.hPool[k-1] = nil
		g.hPool = g.hPool[:k-1]
		h.pooled = false
		return h
	}
	return &Handle{eng: g.cluster.Eng, owner: g} //lint:allow steady-alloc — pool miss: the handle joins the free list on Release
}

// Release returns a pooled handle to its owning group for reuse. Only the
// code that obtained the handle from NewHandle may call it, after every
// waiter has run and no other reference remains. Calling it from inside one
// of the handle's own Fire callbacks is allowed: the return to the pool is
// deferred until Fire finishes. Release is idempotent — a second call on an
// already-released handle is a no-op rather than a double insertion that
// would hand the same handle to two NewHandle callers. No-op for unpooled
// handles.
func (h *Handle) Release() {
	if h.owner == nil || h.pooled {
		return
	}
	if h.firing {
		h.release = true
		return
	}
	h.recycle()
}

func (h *Handle) recycle() {
	h.done = false
	h.pooled = true
	h.waiters = h.waiters[:0]
	h.owner.hPool = append(h.owner.hPool, h) //lint:allow steady-alloc — free-list push: capacity reaches steady state after the first iteration
}

// Fire marks the handle complete and runs registered callbacks. Must be
// called at most once, from engine context.
func (h *Handle) Fire() {
	if h.done {
		panic("collective: handle fired twice")
	}
	h.done = true
	h.firing = true
	ws := h.waiters
	// Truncate rather than nil so a pooled handle keeps its waiter backing
	// array across reuse. The firing flag keeps the array out of the pool
	// while ws is iterated, so no new waiters can alias it.
	h.waiters = h.waiters[:0]
	for i := range ws {
		ws[i]()
	}
	h.firing = false
	if h.release {
		h.release = false
		h.recycle()
	}
}

// Then registers fn to run (in engine context) once the handle completes;
// immediately if it already has.
func (h *Handle) Then(fn func()) {
	if h.done {
		h.eng.Schedule(0, fn)
		return
	}
	h.waiters = append(h.waiters, fn) //lint:allow steady-alloc — waiter array is truncated, not nilled; its backing survives pooling
}

// StartAsync launches the collective and returns a Handle to wait on. The
// handle is pooled; callers that are done with it may Release it.
//
//lint:allow scratch-escape — pooled handle hand-off; Release documents the contract
func (g *Group) StartAsync(op Op, payload float64) *Handle {
	h := g.NewHandle()
	g.Start(op, payload, h.Fire)
	return h
}

// Wait blocks p until the collective completes.
func (h *Handle) Wait(p *sim.Proc) {
	if h.done {
		return
	}
	p.Await(func(resume func()) {
		h.waiters = append(h.waiters, func() { h.eng.Schedule(0, resume) })
	})
}

// Done reports completion.
func (h *Handle) Done() bool { return h.done }

// minRoCECapacity returns the smallest RoCE link capacity on a route, which
// sets the attainable stream rate of a crossing hop.
func minRoCECapacity(r topology.Route) float64 {
	min := 0.0
	for _, l := range r.Links {
		if l.Class != fabric.RoCE {
			continue
		}
		if min == 0 || l.Capacity() < min {
			min = l.Capacity()
		}
	}
	if min == 0 {
		min = topology.RoCELinkBW
	}
	return min
}

// NodeMajorRanks returns the canonical ring order for a cluster: GPUs of
// node 0 in index order, then node 1, and so on.
func NodeMajorRanks(nodes, gpusPerNode int) []topology.GPU {
	var out []topology.GPU
	for n := 0; n < nodes; n++ {
		for g := 0; g < gpusPerNode; g++ {
			out = append(out, topology.GPU{Node: n, Index: g})
		}
	}
	return out
}
