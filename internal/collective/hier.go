// Topology-aware hierarchical collectives over generated datacenter fabrics.
//
// On the two-node testbed a collective is one fused NCCL ring whose crossing
// hops run as fluid flows; on a 64-node fat-tree that shape both wastes the
// fabric (two NICs of four carry everything) and defeats the sharded engine
// (a fluid flow spanning every pod couples all rate allocations with zero
// lookahead, so the whole run colocates on shard 0). The hierarchical
// algorithms here fix both: intra-node phases are flows on the node's
// NVSwitch link, and the cross-node phase is striped over every rail as
// fabric.Handoff store-and-forward legs, whose wire latency is exactly the
// shard lookahead — so each node's phases execute on its home shard and the
// sharded engine finally parallelizes a realistic collective.
//
// Completion is receiver-side: a node's cross phase is done when its own
// inbound legs have landed (plus the ring's pipeline-fill latency), a
// decision made entirely from events that run on the node's shard. That —
// not any global barrier — is what keeps the simulation byte-identical at
// every shard count. Ranks are homogeneous in this model, so charging the
// ring's pipeline fill as Steps×LatNCCLStep on top of the slowest inbound
// leg (rather than chaining 2(n−1) sequential step flows) is the same fluid
// approximation the flat ring already makes.
package collective

import (
	"fmt"

	"llmbw/internal/fabric"
	"llmbw/internal/scenario"
	"llmbw/internal/sim"
	"llmbw/internal/topology"
)

// Hierarchical gates the topology-aware algorithms. When false every
// DCGroup runs its flat-ring legacy twin regardless of the requested
// algorithm — the A/B lever that pins the hierarchical path's wiring against
// the colocated fluid reference.
var Hierarchical = true

// Algo selects the cross-node schedule of a datacenter collective.
type Algo int

// The datacenter collective algorithms.
const (
	// AlgoFlat is the legacy twin: one fused dual-ring over node leaders
	// with fluid end-to-end crossing flows on rails 0/1, colocated on one
	// shard — the testbed shape scaled up.
	AlgoFlat Algo = iota
	// AlgoTwoLevel is the hierarchical schedule: intra-node phase on the
	// NVSwitch link, cross-node ring striped over all rails as handoff
	// legs, intra-node completion phase.
	AlgoTwoLevel
	// AlgoMultiRing stripes the node-leader ring over all rails as handoff
	// legs with no intra-node redistribution phases — the idealized
	// multi-ring bound.
	AlgoMultiRing
)

var algoNames = map[Algo]string{
	AlgoFlat: "flat", AlgoTwoLevel: "2level", AlgoMultiRing: "multiring",
}

func (a Algo) String() string {
	if n, ok := algoNames[a]; ok {
		return n
	}
	return fmt.Sprintf("Algo(%d)", int(a))
}

// ParseAlgo parses a -algo flag value.
func ParseAlgo(s string) (Algo, error) {
	switch s {
	case "flat", "ring":
		return AlgoFlat, nil
	case "2level", "two-level", "hier":
		return AlgoTwoLevel, nil
	case "multiring", "multi-ring":
		return AlgoMultiRing, nil
	}
	return 0, fmt.Errorf("collective: unknown algorithm %q (want flat, 2level or multiring)", s)
}

// EffectiveAlgo applies the Hierarchical toggle: with the toggle off, every
// algorithm degrades to its flat legacy twin.
func EffectiveAlgo(a Algo) Algo {
	if !Hierarchical {
		return AlgoFlat
	}
	return a
}

// DCStreamFraction is the fraction of a datacenter link's bidirectional
// aggregate one collective stream direction attains. Purpose-built DC nodes
// put the NIC on the GPU's own PCIe switch — no I/O-die crossbar on the
// path — so the attainable fraction is the purpose-built scenario's 45%
// (topology.PurposeBuiltConfig), not the testbed's 26%.
const DCStreamFraction = 0.45

// preOp returns the intra-node phase run before the cross-node phase of a
// 2-level collective (an invalid Op sentinel of -1 means none).
func preOp(op Op) (Op, bool) {
	switch op {
	case AllReduce, ReduceScatter:
		return ReduceScatter, true
	case Reduce:
		return Reduce, true
	}
	return 0, false
}

// postOp returns the intra-node phase run after the cross-node phase.
func postOp(op Op) (Op, bool) {
	switch op {
	case AllReduce, AllGather:
		return AllGather, true
	case Broadcast:
		return Broadcast, true
	}
	return 0, false
}

// DCGroup runs collectives over every node of a datacenter cluster. Plans
// are compiled once per (op, payload) shape — preallocated flows, interned
// routes, capacity-epoch-fenced stream caps, bound-once closures — and
// replayed with zero allocations. Precompile every shape before the
// simulation starts: compilation populates a map that replay then reads
// concurrently from all shards.
type DCGroup struct {
	sc   *topology.DCShardedCluster
	algo Algo // effective algorithm (Hierarchical toggle already applied)

	plans    map[dcKey]dcPlan
	compiled int
}

type dcKey struct {
	op      Op
	payload float64
}

// dcPlan is the compiled per-shape schedule: one record per node. Flat plans
// additionally share a joiner (global completion, like the fused ring).
type dcPlan struct {
	nodes []*dcNode
	join  *flatJoin // non-nil for flat plans
}

// dcNode is one node's compiled schedule and per-round state. All mutable
// fields are touched only from the node's own shard: startNode and the
// pre/post flow completions run there by construction, and an inbound leg's
// onLand closure is bound to the *destination* record, so the handoff
// executes it on the destination shard.
type dcNode struct {
	g    *DCGroup
	eng  *sim.Engine
	net  *fabric.Network
	node int

	pre, post        fabric.Flow
	prePath, posPath []*fabric.Link
	hasPre, hasPost  bool
	legs             []dcLeg
	expect           int // inbound legs per round
	crossLat         sim.Time

	// round state
	preDone bool
	arrived int // inbound legs landed; may run ahead of this node's round
	onDone  func()

	// bound-once closures
	launch, land, after, postCB func()
}

// dcLeg is one compiled outbound handoff leg (rail stripe to the ring
// successor).
type dcLeg struct {
	h        *fabric.Handoff
	name     string
	bytes    float64
	extra    sim.Time
	srcCap   *fabric.PathCap
	dstCap   *fabric.PathCap
	srcPath  []*fabric.Link
	dstPath  []*fabric.Link
	destLand func() // successor-side arrival; runs on the successor's shard
}

// flatJoin is the flat twin's global completion: the fused ring finishes
// when the slowest hop drains, then every node resumes. Callbacks fire in
// node-index order regardless of flow completion order, so the replay is
// insensitive to same-time event permutations.
type flatJoin struct {
	eng       *sim.Engine
	remaining int
	total     int
	latency   sim.Time
	flows     []fabric.Flow
	paths     [][]*fabric.Link
	caps      []*fabric.PathCap
	nodeDone  []func()
	flowCB    func()
	fire      func()
}

// NewDCGroup builds the collective group over all nodes of sc. The
// Hierarchical toggle is applied here: construction and replay both see the
// effective algorithm. A flat group requires a colocated cluster (its fluid
// crossing flows cannot span shards); hierarchical groups require the
// sharded build.
func NewDCGroup(sc *topology.DCShardedCluster, algo Algo) *DCGroup {
	algo = EffectiveAlgo(algo)
	if (algo == AlgoFlat) != sc.Colocated() {
		panic(fmt.Sprintf("collective: algorithm %v on a cluster built for colocated=%v", algo, sc.Colocated()))
	}
	return &DCGroup{sc: sc, algo: algo, plans: make(map[dcKey]dcPlan)}
}

// Algo returns the effective algorithm.
func (g *DCGroup) Algo() Algo { return g.algo }

// Compiled returns the number of compiled plan shapes.
func (g *DCGroup) Compiled() int { return g.compiled }

// Precompile builds the plan for one (op, payload) shape. Must be called
// for every shape before the simulation runs; replay only reads the plan
// map, which keeps it safe from every shard without locking.
func (g *DCGroup) Precompile(op Op, payload float64) {
	key := dcKey{op: op, payload: payload}
	if _, ok := g.plans[key]; ok {
		return
	}
	if g.sc.Nodes() == 1 || payload <= 0 {
		g.plans[key] = dcPlan{}
		return
	}
	if g.algo == AlgoFlat {
		g.plans[key] = g.compileFlat(op, payload)
	} else {
		g.plans[key] = g.compileHier(op, payload)
	}
	g.compiled++
}

// StartNode launches node's share of the collective and calls onDone (from
// the node's engine context) when the node has completed it. Every node must
// start each round exactly once; rounds of one shape on one node may not
// overlap. Must be called from the node's shard execution context.
func (g *DCGroup) StartNode(op Op, payload float64, node int, onDone func()) {
	key := dcKey{op: op, payload: payload}
	p, ok := g.plans[key]
	if !ok {
		panic(fmt.Sprintf("collective: %v payload %g not precompiled", op, payload))
	}
	if p.nodes == nil {
		g.sc.EngineOf(node).Schedule(0, onDone)
		return
	}
	rec := p.nodes[node]
	if rec.onDone != nil {
		panic(fmt.Sprintf("collective: node %d restarted %v payload %g mid-round", node, op, payload))
	}
	rec.onDone = onDone
	if p.join != nil {
		p.join.startNode(rec)
		return
	}
	if rec.hasPre {
		rec.net.StartFlow(&rec.pre, rec.launch)
	} else {
		rec.launch()
	}
}

// RunNode executes node's share synchronously from its driver process.
func (g *DCGroup) RunNode(p *sim.Proc, op Op, payload float64, node int) {
	p.Await(func(resume func()) { g.StartNode(op, payload, node, resume) })
}

// hierShape is the cluster-independent part of a compiled hierarchical plan:
// phase volumes, the ring's pipeline-fill latency, and every rendered flow
// and leg name. It is a pure function of (algo, op, topology spec, payload) —
// nothing in it references links, engines or capacities — so one shape is
// shared read-only by every cluster's plan of that signature and cached
// across runs. Binding a shape to a live cluster (paths, handoffs, stream
// caps, closures) stays per-plan: those parts hold capacity-coupled state
// that the fabric revalidates in place via its capEpoch fence.
type hierShape struct {
	crossWire        float64
	crossLat         sim.Time
	preVol, postVol  float64
	preName, posName []string   // per node ("" when the phase is absent)
	legName          [][]string // per node, per rail
}

// flatShape is the flat twin's portable part: the per-leg wire volume, ring
// count, step latency and flow names (in addLeg order: per node, rail 0 then
// rail 1 when dual-ring).
type flatShape struct {
	wire    float64
	rings   int
	stepLat sim.Time
	name    []string
}

// shapeCache is the collective tier of the warm-artifact store, keyed by
// (algo|op|spec|payload). Shapes are capacity-independent: epoch 0.
var shapeCache = scenario.New("collective.shapes", 256)

func makeHierShape(algo Algo, op Op, cfg topology.DCConfig, payload float64) *hierShape {
	n := cfg.Nodes
	rails := cfg.Rails
	gpus := topology.GPUsPerNode

	sh := &hierShape{crossWire: WireBytesPerHop(op, n, payload) / float64(rails)}
	steps := Steps(op, n)
	if algo == AlgoTwoLevel {
		if o, ok := preOp(op); ok {
			sh.preVol = WireBytesPerHop(o, gpus, payload)
			steps += Steps(o, gpus)
		}
		if o, ok := postOp(op); ok {
			sh.postVol = WireBytesPerHop(o, gpus, payload)
			steps += Steps(o, gpus)
		}
	}
	sh.crossLat = sim.Time(steps) * topology.LatNCCLStep
	sh.preName = make([]string, n)
	sh.posName = make([]string, n)
	sh.legName = make([][]string, n)
	for i := 0; i < n; i++ {
		if sh.preVol > 0 {
			sh.preName[i] = fmt.Sprintf("%s/%v/n%d/pre", algo, op, i)
		}
		if sh.postVol > 0 {
			sh.posName[i] = fmt.Sprintf("%s/%v/n%d/post", algo, op, i)
		}
		legs := make([]string, rails)
		for r := 0; r < rails; r++ {
			legs[r] = fmt.Sprintf("%s/%v/n%d/r%d", algo, op, i, r)
		}
		sh.legName[i] = legs
	}
	return sh
}

func makeFlatShape(op Op, cfg topology.DCConfig, payload float64) *flatShape {
	n := cfg.Nodes
	rings := 2
	if cfg.Rails < 2 {
		rings = 1
	}
	sh := &flatShape{
		wire:    WireBytesPerHop(op, n, payload) / float64(rings),
		rings:   rings,
		stepLat: sim.Time(Steps(op, n)) * topology.LatNCCLStep,
	}
	for i := 0; i < n; i++ {
		sh.name = append(sh.name, fmt.Sprintf("flat/%v/n%d/r0", op, i))
		if rings == 2 {
			sh.name = append(sh.name, fmt.Sprintf("flat/%v/n%d/r1", op, i))
		}
	}
	return sh
}

// shapeFor fetches (computing on first use) the portable shape of one plan
// signature through the shape cache.
func (g *DCGroup) shapeFor(op Op, payload float64) any {
	cfg := g.sc.Cfg
	key := scenario.Intern(fmt.Sprintf("%v|%v|%s|%g", g.algo, op, cfg.Spec(), payload))
	v, _ := shapeCache.Do(key, 0, func() (any, error) {
		if g.algo == AlgoFlat {
			return makeFlatShape(op, cfg, payload), nil
		}
		return makeHierShape(g.algo, op, cfg, payload), nil
	})
	return v
}

// compileHier builds the 2-level / multi-ring plan: per node, an optional
// NVSwitch pre-flow, one outbound handoff leg per rail to the ring
// successor, and an optional NVSwitch post-flow. Volumes are the textbook
// ring costs: the cross-node phase carries WireBytesPerHop(op, N, V) per
// node pair, striped evenly over the rails; 2-level adds the intra-node
// reduce-scatter/all-gather phases on the payload. The volumes, latency and
// names come from the cached shape; this function only binds them to the
// live cluster.
func (g *DCGroup) compileHier(op Op, payload float64) dcPlan {
	sc := g.sc
	n := sc.Nodes()
	rails := sc.Cfg.Rails
	sh := g.shapeFor(op, payload).(*hierShape)

	plan := dcPlan{nodes: make([]*dcNode, n)}
	for i := 0; i < n; i++ {
		grp, _ := sc.GroupOf(i)
		plan.nodes[i] = &dcNode{
			g:        g,
			eng:      sc.EngineOf(i),
			net:      grp.Net,
			node:     i,
			hasPre:   sh.preVol > 0,
			hasPost:  sh.postVol > 0,
			expect:   rails,
			crossLat: sh.crossLat,
		}
	}
	for i, rec := range plan.nodes {
		nv := sc.NVFabric(i)
		if rec.hasPre {
			rec.prePath = []*fabric.Link{nv}
			rec.pre.Name = sh.preName[i]
			rec.pre.Path = rec.prePath
			rec.pre.Bytes = sh.preVol
		}
		if rec.hasPost {
			rec.posPath = []*fabric.Link{nv}
			rec.post.Name = sh.posName[i]
			rec.post.Path = rec.posPath
			rec.post.Bytes = sh.postVol
		}
		succ := (i + 1) % n
		succRec := plan.nodes[succ]
		succGrp, _ := sc.GroupOf(succ)
		grp, _ := sc.GroupOf(i)
		for r := 0; r < rails; r++ {
			src, dst, extra := sc.RailPath(i, succ, r)
			rec.legs = append(rec.legs, dcLeg{
				h:        sc.Handoff(i, succ),
				name:     sh.legName[i][r],
				bytes:    sh.crossWire,
				extra:    extra,
				srcCap:   fabric.NewPathCap(grp.Net, DCStreamFraction, src),
				dstCap:   fabric.NewPathCap(succGrp.Net, DCStreamFraction, dst),
				srcPath:  src,
				dstPath:  dst,
				destLand: succRec.land,
			})
		}
	}
	// Bind the replay closures once. destLand above captured rec.land before
	// it was assigned, so bind land first via a second pass over the same
	// records.
	for _, rec := range plan.nodes {
		rec := rec
		rec.land = func() {
			rec.arrived++
			rec.maybeCross()
		}
		rec.launch = func() {
			rec.preDone = true
			for j := range rec.legs {
				l := &rec.legs[j]
				l.h.SendPlanned(l.name, l.bytes, l.extra, l.srcCap, l.dstCap, l.srcPath, l.dstPath, l.destLand)
			}
			rec.maybeCross()
		}
		rec.after = func() {
			if rec.hasPost {
				rec.net.StartFlow(&rec.post, rec.postCB)
			} else {
				rec.postCB()
			}
		}
		rec.postCB = func() {
			cb := rec.onDone
			rec.onDone = nil
			cb()
		}
	}
	// destLand was captured before land existed; patch the leg closures now
	// that every record's land is bound.
	for _, rec := range plan.nodes {
		succ := plan.nodes[(rec.node+1)%n]
		for j := range rec.legs {
			rec.legs[j].destLand = succ.land
		}
	}
	return plan
}

// maybeCross advances the node past its cross phase once its own pre phase
// and all expected inbound legs are in. Early arrivals (a successor still in
// its previous round) simply accumulate: legs of one shape are
// interchangeable, so counting is the whole rendezvous.
func (rec *dcNode) maybeCross() {
	if !rec.preDone || rec.arrived < rec.expect {
		return
	}
	rec.preDone = false
	rec.arrived -= rec.expect
	rec.eng.Schedule(rec.crossLat, rec.after)
}

// compileFlat builds the legacy twin: a fused ring over node leaders with
// the dual-ring NIC assignment the testbed group uses (forward ring on rail
// 0, reverse on rail 1; a single-rail fabric gets one ring), each crossing
// hop a fluid end-to-end flow over source NIC, trunks and destination NIC.
// Completion is global — the fused collective finishes when the slowest hop
// drains — with per-node callbacks fired in node-index order.
func (g *DCGroup) compileFlat(op Op, payload float64) dcPlan {
	sc := g.sc
	n := sc.Nodes()
	sh := g.shapeFor(op, payload).(*flatShape)
	rings := sh.rings

	grp := sc.Groups[0]
	join := &flatJoin{
		eng:      grp.Eng,
		total:    n * rings,
		nodeDone: make([]func(), n),
	}
	plan := dcPlan{nodes: make([]*dcNode, n), join: join}
	for i := 0; i < n; i++ {
		plan.nodes[i] = &dcNode{g: g, eng: grp.Eng, net: grp.Net, node: i}
	}
	var maxExtra sim.Time
	addLeg := func(from, to, rail int) {
		src, dst, extra := sc.RailPath(from, to, rail)
		if extra > maxExtra {
			maxExtra = extra
		}
		path := append(append([]*fabric.Link(nil), src...), dst...)
		join.paths = append(join.paths, path)
		join.caps = append(join.caps, fabric.NewPathCap(grp.Net, DCStreamFraction, path))
		join.flows = append(join.flows, fabric.Flow{
			Name:  sh.name[len(join.flows)],
			Bytes: sh.wire,
		})
	}
	for i := 0; i < n; i++ {
		addLeg(i, (i+1)%n, 0)
		if rings == 2 {
			addLeg(i, (i-1+n)%n, 1)
		}
	}
	for j := range join.flows {
		join.flows[j].Path = join.paths[j]
	}
	join.latency = sh.stepLat + maxExtra
	join.flowCB = func() {
		join.remaining--
		if join.remaining == 0 {
			join.eng.Schedule(join.latency, join.fire)
		}
	}
	join.fire = func() {
		join.remaining = join.total
		for i, cb := range join.nodeDone {
			join.nodeDone[i] = nil
			cb()
		}
	}
	join.remaining = join.total
	return plan
}

// startNode registers one node's callbacks with the flat joiner and starts
// that node's outbound ring legs. The fused ring's flows all run
// concurrently, so per-node start order does not matter; node i owns flows
// [i*rings, (i+1)*rings).
func (j *flatJoin) startNode(rec *dcNode) {
	if j.nodeDone[rec.node] != nil {
		panic(fmt.Sprintf("collective: node %d restarted flat round", rec.node))
	}
	j.nodeDone[rec.node] = rec.onDone
	rec.onDone = nil
	rings := j.total / len(j.nodeDone)
	// remaining counts every flow of the round (armed at compile time and
	// re-armed in fire), so it cannot reach zero until every node has both
	// entered the round and drained its legs.
	for k := rec.node * rings; k < (rec.node+1)*rings; k++ {
		j.flows[k].RateLimit = j.caps[k].Value()
		rec.net.StartFlow(&j.flows[k], j.flowCB)
	}
}
