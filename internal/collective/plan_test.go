package collective

import (
	"testing"

	"llmbw/internal/fabric"
	"llmbw/internal/sim"
	"llmbw/internal/topology"
)

// issueSequenceTimes runs a fixed mix of collective issues — replays, a
// single-ring shape, a rate-limited shape — back to back on a fresh cluster
// and returns each completion time. The only degree of freedom between calls
// is the issue path under test.
func issueSequenceTimes(compiled bool, nodes int) []sim.Time {
	defer func(old bool) { CompiledPlans = old }(CompiledPlans)
	CompiledPlans = compiled
	c := topology.New(topology.DefaultConfig(nodes))
	g := NewGroup(c, NodeMajorRanks(nodes, 4))
	seq := []struct {
		op      Op
		payload float64
		limit   float64
		rings   int
	}{
		{AllReduce, 2e9, 0, 2},
		{ReduceScatter, 1e9, 0, 1},
		{AllGather, 1e9, 0, 1},
		{AllReduce, 2e9, 0, 2}, // replay of the first shape
		{AllReduce, 2e9, 5e9, 2},
		{ReduceScatter, 1e9, 0, 1}, // replay
	}
	var times []sim.Time
	c.Eng.Go("driver", func(p *sim.Proc) {
		for _, s := range seq {
			s := s
			p.Await(func(resume func()) { g.StartRings(s.op, s.payload, s.limit, s.rings, resume) })
			times = append(times, p.Now())
		}
	})
	c.Eng.Run()
	return times
}

// TestPlanMatchesDirectIssue is the collective-level determinism A/B: a
// replayed plan must complete at exactly the virtual time the rebuild-per-
// issue path produces, on single- and dual-node clusters.
func TestPlanMatchesDirectIssue(t *testing.T) {
	for _, nodes := range []int{1, 2} {
		direct := issueSequenceTimes(false, nodes)
		planned := issueSequenceTimes(true, nodes)
		if len(direct) != len(planned) {
			t.Fatalf("nodes=%d: issue counts differ: %d vs %d", nodes, len(direct), len(planned))
		}
		for i := range direct {
			if direct[i] != planned[i] {
				t.Errorf("nodes=%d issue %d: direct at %v, planned at %v",
					nodes, i, direct[i], planned[i])
			}
		}
	}
}

// TestPlanStatsReuse pins the pooling behaviour: sequential issues of one
// shape compile exactly one plan and replay it thereafter; a new shape
// compiles its own.
func TestPlanStatsReuse(t *testing.T) {
	c, g := singleNodeGroup(t)
	for i := 0; i < 5; i++ {
		g.Start(AllReduce, 1e9, func() {})
		c.Eng.Run()
	}
	if compiled, replays := g.PlanStats(); compiled != 1 || replays != 4 {
		t.Errorf("after 5 same-shape issues: compiled=%d replays=%d, want 1/4", compiled, replays)
	}
	g.Start(AllReduce, 2e9, func() {})
	c.Eng.Run()
	if compiled, replays := g.PlanStats(); compiled != 2 || replays != 4 {
		t.Errorf("after a new shape: compiled=%d replays=%d, want 2/4", compiled, replays)
	}
}

// TestConcurrentSameShapeIssues: two overlapping issues of the same shape
// (ZeRO-3's parameter prefetch pattern) must each hold a private plan — the
// second may not reset the first's in-flight byte counters.
func TestConcurrentSameShapeIssues(t *testing.T) {
	c, g := singleNodeGroup(t)
	var firstAt, secondAt sim.Time
	g.Start(AllReduce, 2e9, func() { firstAt = c.Eng.Now() })
	g.Start(AllReduce, 2e9, func() { secondAt = c.Eng.Now() })
	c.Eng.Run()
	if firstAt == 0 || secondAt == 0 {
		t.Fatalf("overlapping issues did not both complete: %v, %v", firstAt, secondAt)
	}
	if compiled, _ := g.PlanStats(); compiled != 2 {
		t.Errorf("overlapping same-shape issues compiled %d plans, want 2", compiled)
	}
	// Both plans are now pooled; a third issue replays instead of compiling.
	g.Start(AllReduce, 2e9, func() {})
	c.Eng.Run()
	if compiled, replays := g.PlanStats(); compiled != 2 || replays != 1 {
		t.Errorf("post-drain issue: compiled=%d replays=%d, want 2/1", compiled, replays)
	}
}

// TestPlanRefreshesCapsOnCapacityChange: a pooled plan caches cross-node
// stream caps derived from RoCE link capacities; after SetCapacity the next
// replay must recompute them exactly as a fresh issue would.
func TestPlanRefreshesCapsOnCapacityChange(t *testing.T) {
	run := func(compiled bool) sim.Time {
		defer func(old bool) { CompiledPlans = old }(CompiledPlans)
		CompiledPlans = compiled
		c := topology.New(topology.DefaultConfig(2))
		g := NewGroup(c, NodeMajorRanks(2, 4))
		g.Start(AllReduce, 2e9, func() {})
		c.Eng.Run()
		l := c.LinksOfClass(fabric.RoCE, 0)[0]
		c.Net.SetCapacity(l, l.Capacity()/2)
		var doneAt sim.Time
		g.Start(AllReduce, 2e9, func() { doneAt = c.Eng.Now() })
		c.Eng.Run()
		return doneAt
	}
	first := run(false)
	direct := run(false)
	planned := run(true)
	if first != direct {
		t.Fatalf("direct path not deterministic: %v vs %v", first, direct)
	}
	if planned != direct {
		t.Errorf("replay after SetCapacity finished at %v, direct path at %v", planned, direct)
	}
}

// TestPlanReplaySteadyStateZeroAlloc pins the tentpole allocation contract:
// once a shape's plan is compiled and the fabric warmed, issuing it again
// allocates nothing — single-node and dual-node (cross-leg caps in play).
func TestPlanReplaySteadyStateZeroAlloc(t *testing.T) {
	for _, nodes := range []int{1, 2} {
		cfg := topology.DefaultConfig(nodes)
		cfg.Window = sim.Time(1) << 60 // keep telemetry buckets from growing
		c := topology.New(cfg)
		g := NewGroup(c, NodeMajorRanks(nodes, 4))
		done := func() {}
		iterate := func() {
			g.Start(AllReduce, 1e9, done)
			c.Eng.Run()
		}
		for i := 0; i < 3; i++ {
			iterate() // compile the plan, warm pools and slice capacities
		}
		if avg := testing.AllocsPerRun(50, iterate); avg != 0 {
			t.Errorf("nodes=%d: steady-state plan replay allocates %v allocs/run, want 0", nodes, avg)
		}
		if compiled, replays := g.PlanStats(); compiled != 1 || replays < 50 {
			t.Errorf("nodes=%d: compiled=%d replays=%d, want one plan replayed throughout", nodes, compiled, replays)
		}
	}
}

// TestHandlePoolReuse: a released handle is handed back by the next NewHandle
// call with its state reset.
func TestHandlePoolReuse(t *testing.T) {
	c, g := singleNodeGroup(t)
	h := g.StartAsync(AllReduce, 1e9)
	c.Eng.Run()
	if !h.Done() {
		t.Fatal("collective did not complete")
	}
	h.Release()
	h2 := g.NewHandle()
	if h2 != h {
		t.Error("NewHandle did not reuse the released handle")
	}
	if h2.Done() {
		t.Error("recycled handle still marked done")
	}
	fired := false
	h2.Then(func() { fired = true })
	h2.Fire()
	if !fired {
		t.Error("recycled handle dropped its waiter")
	}
}

// TestHandleReleaseDuringFire: releasing a handle from one of its own Fire
// callbacks (the comm-queue auto-release pattern) must defer the recycle
// until the callback sweep finishes.
func TestHandleReleaseDuringFire(t *testing.T) {
	_, g := singleNodeGroup(t)
	h := g.NewHandle()
	order := []string{}
	h.Then(func() { h.Release(); order = append(order, "release") })
	h.Then(func() { order = append(order, "second") })
	h.Fire()
	if len(order) != 2 || order[1] != "second" {
		t.Fatalf("waiters ran as %v; release during Fire must not cut the sweep short", order)
	}
	if got := g.NewHandle(); got != h {
		t.Error("handle released during Fire was not recycled")
	}
}

// TestUnpooledHandleReleaseNoOp: handles from NewPendingHandle have no owner;
// Release must be a safe no-op.
func TestUnpooledHandleReleaseNoOp(t *testing.T) {
	h := NewPendingHandle(sim.New())
	h.Fire()
	h.Release() // must not panic or pool the handle anywhere
	if !h.Done() {
		t.Error("unpooled handle lost its done state on Release")
	}
}
