// Package schedule is the workload-agnostic schedule IR: a compiled program
// of typed operations with explicit virtual-stream dependencies, replayed by
// a single callback-state-machine executor with pooled per-op resources so
// steady-state replay allocates nothing.
//
// The IR was born inside internal/train (PR 4) as the compilation target of
// the training strategies; this package hoists it behind a neutral API so
// any workload can emit programs onto the same executor. A program is pure
// data — durations, payload bytes, queue indices — and everything bound to
// one live cluster (flow routes, NVMe volumes, the memory tracker, trace
// sinks) is resolved at executor construction through the Env interface, so
// one compiled Schedule serves every run and every concurrent executor of
// the same shape. internal/train's per-strategy compilers are one client;
// internal/serve's prefill/decode compilers are another.
package schedule

import (
	"fmt"

	"llmbw/internal/collective"
	"llmbw/internal/sim"
	"llmbw/internal/topology"
	"llmbw/internal/trace"
)

// Rewrite selects a schedule-level ablation applied after compilation. A
// rewrite transforms the op list before execution — the schedule IR's whole
// point: what-if studies become program transformations instead of forked
// workload implementations. Rewrites force the compiled-schedule path (the
// imperative coroutines cannot honour them).
type Rewrite int

// Supported rewrites.
const (
	RewriteNone Rewrite = iota
	// RewriteSerializeComm converts every stream-overlapped collective into
	// an exposed synchronous one at the same program point and drops the now
	// meaningless stream waits/barriers: the program with communication/
	// computation overlap ablated away. The overlap gain of DDP's gradient
	// bucketing and ZeRO's prefetch pipelines is the difference between a
	// schedule and its serialized rewrite.
	RewriteSerializeComm
)

// String returns the rewrite's display name.
func (rw Rewrite) String() string {
	switch rw {
	case RewriteNone:
		return "none"
	case RewriteSerializeComm:
		return "serialize-comm"
	}
	return fmt.Sprintf("Rewrite(%d)", int(rw))
}

// Kind discriminates schedule ops.
type Kind uint8

// Schedule op kinds. Each op mirrors one imperative building block of the
// original coroutine workloads exactly — same engine events, same order —
// which is what makes the replay byte-identical to the code it compiled
// from.
const (
	// OpFlows launches a pooled flow set, fire-and-forget (e.g. the
	// dataloader's host→GPU staging, a decode batch's logit copies).
	OpFlows Kind = iota
	// OpCompute blocks for a precomputed kernel duration and traces it.
	OpCompute
	// OpOverhead blocks for a fixed untraced duration (framework
	// coordination costs).
	OpOverhead
	// OpCollective runs an exposed synchronous collective on Op.Group (nil =
	// the Env's world group).
	OpCollective
	// OpEnqueue chains an asynchronous collective on a virtual NCCL stream
	// (Op.Queue); Slot >= 0 retains the handle for a later OpWaitSlot.
	OpEnqueue
	// OpWaitSlot blocks until the retained handle in Op.Slot fires, then
	// returns it to the pool (unless it is still the stream tail).
	OpWaitSlot
	// OpBarrier blocks until the stream's tail operation completes.
	OpBarrier
	// OpXfer runs a blocking pooled flow set sized by Op.Bytes (offload
	// staging copies, disaggregated-serving KV shipments).
	OpXfer
	// OpPacedFlows starts a fire-and-forget pooled flow set and blocks for
	// Op.Dur (a paced host-side step whose memory traffic spreads over its
	// duration, e.g. CPUAdam).
	OpPacedFlows
	// OpNVMeIO runs a staged NVMe transfer on every target, blocking until
	// the slowest completes.
	OpNVMeIO
	// OpMemAlloc / OpMemFree adjust the Env's runtime memory tracker.
	OpMemAlloc
	OpMemFree
	// OpMultiCollective runs one collective concurrently on several disjoint
	// groups (per-stage tensor-parallel collectives).
	OpMultiCollective
	// OpRouteXfer runs a blocking pooled flow set over explicit routes
	// (pipeline boundary activations).
	OpRouteXfer
)

// Op is one operation of a compiled schedule. Dependencies are program order
// plus the explicit stream edges: an OpEnqueue's collective is ordered after
// the previous operation on its queue, and OpWaitSlot/OpBarrier join a
// stream back into program order.
type Op struct {
	Kind   Kind
	Phase  trace.Phase
	TK     trace.Kind // trace kind for traced ops
	Traced bool

	Col     collective.Op
	Group   *collective.Group   // OpCollective target; nil = world
	Groups  []*collective.Group // OpMultiCollective targets
	Routes  []topology.Route    // OpRouteXfer routes
	Payload float64             // collective payload bytes
	Limit   float64             // per-hop rate cap (exposed collectives)
	Rings   int8                // NCCL ring count (exposed collectives)
	Queue   int8                // stream index for OpEnqueue/OpWaitSlot/OpBarrier
	Slot    int16               // retained-handle slot; -1 = fire-and-forget
	Write   bool                // OpNVMeIO direction
	Dur     sim.Time            // OpCompute/OpOverhead/OpPacedFlows duration
	Bytes   float64             // OpMemAlloc/OpMemFree/OpXfer/OpNVMeIO/OpRouteXfer bytes
	Params  int64               // OpPacedFlows per-rank parameter count
}

// QueueSpec describes one virtual NCCL stream of the schedule.
type QueueSpec struct {
	Limit float64
	Rings int8
}

// Schedule is a compiled program. It is pure data: executors never write
// through the op list, so one compiled Schedule may be shared across caches,
// runs and concurrent executors.
type Schedule struct {
	Ops    []Op
	Queues []QueueSpec
	Slots  int // retained-handle slot count
}

// Apply returns the schedule transformed by the rewrite (the receiver is
// never mutated; RewriteNone returns it unchanged).
func (s *Schedule) Apply(rw Rewrite) *Schedule {
	switch rw {
	case RewriteNone:
		return s
	case RewriteSerializeComm:
		return s.serializeComm()
	}
	panic(fmt.Sprintf("schedule: unknown rewrite %d", int(rw)))
}

// serializeComm rewrites every stream-overlapped collective into an exposed
// synchronous one issued at its enqueue point, dropping stream waits and
// barriers (their ordering is now implied by program order). The streams'
// rate limits and ring counts carry over unchanged.
func (s *Schedule) serializeComm() *Schedule {
	out := &Schedule{Queues: s.Queues}
	out.Ops = make([]Op, 0, len(s.Ops))
	for _, op := range s.Ops {
		switch op.Kind {
		case OpEnqueue:
			q := s.Queues[op.Queue]
			op.Kind = OpCollective
			op.Group = nil
			op.Limit = q.Limit
			op.Rings = q.Rings
			op.Slot = -1
			out.Ops = append(out.Ops, op)
		case OpWaitSlot, OpBarrier:
			// Dropped: program order already sequences the serialized
			// collectives.
		default:
			out.Ops = append(out.Ops, op)
		}
	}
	return out
}

// TraceKind maps a collective op to its timeline span kind.
func TraceKind(op collective.Op) trace.Kind {
	switch op {
	case collective.AllReduce:
		return trace.NCCLAllReduce
	case collective.AllGather:
		return trace.NCCLAllGather
	case collective.ReduceScatter:
		return trace.NCCLReduceScatter
	case collective.Reduce:
		return trace.NCCLReduce
	case collective.Broadcast:
		return trace.NCCLBroadcast
	}
	return trace.NCCLAllReduce
}

// Builder accumulates a schedule's ops; emits inherit the builder's current
// Phase. Workload compilers embed it and layer their domain helpers (FLOP →
// duration conversion, chunking policies) on top of these primitive emits.
type Builder struct {
	S     *Schedule
	Phase trace.Phase
}

// NewBuilder returns a builder over a fresh empty schedule.
func NewBuilder() *Builder { return &Builder{S: &Schedule{}} }

// Emit appends op, stamping the builder's current phase.
func (b *Builder) Emit(op Op) {
	op.Phase = b.Phase
	b.S.Ops = append(b.S.Ops, op)
}

// Flows emits a fire-and-forget pooled flow-set launch.
func (b *Builder) Flows() { b.Emit(Op{Kind: OpFlows}) }

// Compute emits a traced blocking compute span of duration d.
func (b *Builder) Compute(tk trace.Kind, d sim.Time) {
	b.Emit(Op{Kind: OpCompute, TK: tk, Traced: true, Dur: d})
}

// Overhead emits an untraced blocking span of duration d.
func (b *Builder) Overhead(d sim.Time) { b.Emit(Op{Kind: OpOverhead, Dur: d}) }

// Alloc emits a memory-tracker allocation.
func (b *Builder) Alloc(bytes float64) { b.Emit(Op{Kind: OpMemAlloc, Bytes: bytes}) }

// Free emits a memory-tracker release.
func (b *Builder) Free(bytes float64) { b.Emit(Op{Kind: OpMemFree, Bytes: bytes}) }

// Sync emits an exposed synchronous collective on the world group.
func (b *Builder) Sync(col collective.Op, payload, limit float64, rings int) {
	b.Emit(Op{Kind: OpCollective, Col: col, TK: TraceKind(col), Traced: true,
		Payload: payload, Limit: limit, Rings: int8(rings)})
}

// SyncOn emits an exposed synchronous collective on an explicit group.
func (b *Builder) SyncOn(g *collective.Group, col collective.Op, payload, limit float64, rings int) {
	b.Emit(Op{Kind: OpCollective, Col: col, Group: g, TK: TraceKind(col), Traced: true,
		Payload: payload, Limit: limit, Rings: int8(rings)})
}

// NewQueue declares a virtual NCCL stream and returns its index.
func (b *Builder) NewQueue(limit float64, rings int) int8 {
	b.S.Queues = append(b.S.Queues, QueueSpec{Limit: limit, Rings: int8(rings)})
	return int8(len(b.S.Queues) - 1)
}

// Enqueue chains a fire-and-forget collective on stream q.
func (b *Builder) Enqueue(q int8, col collective.Op, payload float64) {
	b.Emit(Op{Kind: OpEnqueue, Queue: q, Col: col, TK: TraceKind(col), Traced: true,
		Payload: payload, Slot: -1})
}

// EnqueueSlot chains a collective on stream q retaining its handle in a new
// slot, returned for a later WaitSlot.
func (b *Builder) EnqueueSlot(q int8, col collective.Op, payload float64) int16 {
	slot := int16(b.S.Slots)
	b.S.Slots++
	b.Emit(Op{Kind: OpEnqueue, Queue: q, Col: col, TK: TraceKind(col), Traced: true,
		Payload: payload, Slot: slot})
	return slot
}

// WaitSlot blocks the program until the retained handle in slot fires.
func (b *Builder) WaitSlot(q int8, slot int16) {
	b.Emit(Op{Kind: OpWaitSlot, Queue: q, Slot: slot})
}

// Barrier blocks the program until stream q's tail completes.
func (b *Builder) Barrier(q int8) { b.Emit(Op{Kind: OpBarrier, Queue: q}) }

// Xfer emits a traced blocking flow-set transfer of bytes (the Env's flow
// builder decides the actual routes).
func (b *Builder) Xfer(tk trace.Kind, bytes float64) {
	b.Emit(Op{Kind: OpXfer, TK: tk, Traced: true, Bytes: bytes})
}

// Paced emits a traced paced step: a fire-and-forget flow set plus a
// blocking duration d.
func (b *Builder) Paced(tk trace.Kind, d sim.Time, params int64) {
	b.Emit(Op{Kind: OpPacedFlows, TK: tk, Traced: true, Dur: d, Params: params})
}

// NVMe emits a traced blocking staged NVMe transfer.
func (b *Builder) NVMe(tk trace.Kind, bytes float64, write bool) {
	b.Emit(Op{Kind: OpNVMeIO, TK: tk, Traced: true, Bytes: bytes, Write: write})
}

// Multi emits one collective run concurrently on several disjoint groups.
func (b *Builder) Multi(col collective.Op, groups []*collective.Group, payload, limit float64, rings int) {
	b.Emit(Op{Kind: OpMultiCollective, Col: col, TK: TraceKind(col), Traced: true,
		Groups: groups, Payload: payload, Limit: limit, Rings: int8(rings)})
}

// RouteXfer emits a traced blocking transfer of bytes over explicit routes.
func (b *Builder) RouteXfer(tk trace.Kind, routes []topology.Route, bytes float64) {
	b.Emit(Op{Kind: OpRouteXfer, TK: tk, Traced: true, Routes: routes, Bytes: bytes})
}
