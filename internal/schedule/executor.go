package schedule

import (
	"fmt"

	"llmbw/internal/collective"
	"llmbw/internal/fabric"
	"llmbw/internal/nvme"
	"llmbw/internal/sim"
)

// The executor replays a compiled schedule on the sim engine as a callback
// state machine: it executes ops inline until one blocks, parks the program
// counter, and resumes from the blocking op's completion event. Every
// callback is bound once at construction and every per-iteration resource
// (flow sets, stream issue records, collective handles and plans) is pooled,
// so steady-state replay allocates nothing — and every engine interaction
// reproduces the imperative coroutine path's events in the same order, which
// keeps the two paths byte-identical.

// Env binds a schedule to one live run. A Schedule is pure data; everything
// tied to a cluster instance — the engine, the fabric, the communicator, the
// memory tracker, trace sinks, concrete flow routes and NVMe volumes — is
// resolved through the Env once at executor construction. Env methods other
// than FlowBuilder/NVMeTargets are called on the steady replay path and must
// not allocate.
type Env interface {
	// Engine returns the simulation engine the program runs on.
	Engine() *sim.Engine
	// Network returns the fabric all pooled flow sets are admitted to.
	Network() *fabric.Network
	// World returns the default communicator for OpCollective (Group == nil)
	// and every OpEnqueue stream collective.
	World() *collective.Group
	// MemAlloc / MemFree apply OpMemAlloc / OpMemFree to the workload's
	// runtime memory tracker.
	MemAlloc(bytes float64)
	MemFree(bytes float64)
	// TraceOp records the timeline span of a completed traced op (no-op when
	// tracing is disabled).
	TraceOp(op *Op, start, end sim.Time)
	// FlowBuilder returns the flow constructor for a flow-set op (OpFlows,
	// OpXfer, OpPacedFlows, OpRouteXfer). The builder runs only on a pool
	// miss; the flows it returns are recycled for every later replay.
	FlowBuilder(op *Op) func() []*fabric.Flow
	// NVMeTargets resolves the volumes an OpNVMeIO strides across, in
	// deterministic (rank) order.
	NVMeTargets() []NVMeTarget
}

// NVMeTarget is one NVMe volume and its issuing socket, resolved once.
type NVMeTarget struct {
	Vol    *nvme.Volume
	Socket int
}

// execQueue is the runtime state of one virtual NCCL stream: the schedule's
// QueueSpec plus the live tail handle, reused across iterations.
type execQueue struct {
	limit    float64
	rings    int
	tail     *collective.Handle
	tailAuto bool
}

// opState holds the pooled runtime resources of one schedule op.
type opState struct {
	pool  *flowPool
	issue *asyncIssue
	nvme  []NVMeTarget
}

// Executor replays one compiled Schedule against one Env. Construct once per
// run, call Run once per iteration.
type Executor struct {
	env   Env
	eng   *sim.Engine
	net   *fabric.Network
	world *collective.Group
	s     *Schedule
	state []opState

	queues []execQueue
	slots  []*collective.Handle // retained stream handles by schedule slot

	pc        int
	cur       *Op      // the op currently blocking the program
	t0        sim.Time // start time of the blocking op (for its trace span)
	nvmeLeft  int
	multiLeft int
	finish    func()

	// Callbacks bound once so replay schedules no closures.
	blockDoneFn  func()
	waitHopFn    func()
	waitResumeFn func()
	nvmeDoneFn   func()
	multiDoneFn  func()
}

// NewExecutor binds s to env: resolves flow builders and NVMe targets,
// allocates the pooled per-op state, and precompiles every collective plan
// the program will replay so the first Run already allocates nothing on the
// collective path.
func NewExecutor(env Env, s *Schedule) *Executor {
	ex := &Executor{env: env, eng: env.Engine(), net: env.Network(), world: env.World(), s: s}
	ex.queues = make([]execQueue, len(s.Queues))
	for i, q := range s.Queues {
		ex.queues[i] = execQueue{limit: q.Limit, rings: int(q.Rings)}
	}
	ex.slots = make([]*collective.Handle, s.Slots)
	ex.blockDoneFn = ex.blockDone
	ex.waitHopFn = ex.waitHop
	ex.waitResumeFn = ex.waitResume
	ex.nvmeDoneFn = ex.nvmeDone
	ex.multiDoneFn = ex.multiDone

	ex.state = make([]opState, len(s.Ops))
	for i := range s.Ops {
		op := &s.Ops[i]
		st := &ex.state[i]
		switch op.Kind {
		case OpFlows, OpPacedFlows:
			st.pool = ex.newFlowPool(false, env.FlowBuilder(op))
		case OpXfer, OpRouteXfer:
			st.pool = ex.newFlowPool(true, env.FlowBuilder(op))
		case OpNVMeIO:
			st.nvme = env.NVMeTargets()
		case OpEnqueue:
			st.issue = newAsyncIssue(ex, op)
			q := s.Queues[op.Queue]
			ex.world.Precompile(op.Col, op.Payload, q.Limit, int(q.Rings))
		case OpCollective:
			g := op.Group
			if g == nil {
				g = ex.world
			}
			g.Precompile(op.Col, op.Payload, op.Limit, int(op.Rings))
		case OpMultiCollective:
			for _, g := range op.Groups {
				g.Precompile(op.Col, op.Payload, op.Limit, int(op.Rings))
			}
		}
	}
	return ex
}

// Run replays the program once; done fires (possibly synchronously) when it
// completes.
//
//lint:steady
func (ex *Executor) Run(done func()) {
	ex.finish = done
	ex.pc = 0
	for i := range ex.queues {
		q := &ex.queues[i]
		if q.tail != nil {
			// The previous iteration's stream tail has fired and all its
			// waiters have run (every stream ends waited or drained); return
			// it to the pool before the stream restarts. The legacy path
			// simply leaked these handles into a fresh queue per iteration —
			// pool bookkeeping only, invisible to the event stream.
			q.tail.Release()
			q.tail, q.tailAuto = nil, false
		}
	}
	ex.step()
}

// step executes ops from pc until one blocks (its completion callback
// continues the program) or the program ends.
func (ex *Executor) step() {
	eng := ex.eng
	ops := ex.s.Ops
	for ex.pc < len(ops) {
		i := ex.pc
		op := &ops[i]
		switch op.Kind {
		case OpMemAlloc:
			ex.env.MemAlloc(op.Bytes)
		case OpMemFree:
			ex.env.MemFree(op.Bytes)
		case OpFlows:
			ex.state[i].pool.start()
		case OpCompute, OpOverhead:
			if op.Dur > 0 {
				ex.cur, ex.t0 = op, eng.Now()
				eng.Schedule(op.Dur, ex.blockDoneFn)
				return
			}
			// A zero-duration span returns inline and is never traced,
			// exactly as Sleep(0) + the empty-span drop behave.
		case OpCollective:
			g := op.Group
			if g == nil {
				g = ex.world
			}
			ex.cur, ex.t0 = op, eng.Now()
			g.StartRings(op.Col, op.Payload, op.Limit, int(op.Rings), ex.blockDoneFn)
			return
		case OpEnqueue:
			ex.push(i)
		case OpWaitSlot:
			h := ex.slots[op.Slot]
			if !h.Done() {
				ex.cur = op
				h.Then(ex.waitHopFn)
				return
			}
			ex.releaseSlot(op)
		case OpBarrier:
			q := &ex.queues[op.Queue]
			if q.tail != nil && !q.tail.Done() {
				ex.cur = op
				q.tail.Then(ex.waitHopFn)
				return
			}
		case OpXfer, OpRouteXfer:
			ex.cur, ex.t0 = op, eng.Now()
			ex.state[i].pool.start()
			return
		case OpPacedFlows:
			ex.state[i].pool.start() // paced flows, fire-and-forget
			ex.cur, ex.t0 = op, eng.Now()
			eng.Schedule(op.Dur, ex.blockDoneFn)
			return
		case OpNVMeIO:
			ex.cur, ex.t0 = op, eng.Now()
			st := &ex.state[i]
			ex.nvmeLeft = len(st.nvme)
			for j := range st.nvme {
				t := &st.nvme[j]
				t.Vol.IO(t.Socket, op.Bytes, op.Write, ex.nvmeDoneFn)
			}
			return
		case OpMultiCollective:
			ex.cur, ex.t0 = op, eng.Now()
			ex.multiLeft = len(op.Groups)
			for _, g := range op.Groups {
				g.StartRings(op.Col, op.Payload, op.Limit, int(op.Rings), ex.multiDoneFn)
			}
			return
		default:
			panic(fmt.Sprintf("schedule: unknown schedule op %d", int(op.Kind)))
		}
		ex.pc++
	}
	ex.finish()
}

// blockDone completes a simple blocking op: trace it if tagged, advance.
//
//lint:steady
func (ex *Executor) blockDone() {
	op := ex.cur
	if op.Traced {
		ex.env.TraceOp(op, ex.t0, ex.eng.Now())
	}
	ex.pc++
	ex.step()
}

// waitHop runs as a handle waiter and re-schedules the actual resume at +0 —
// the exact hop Handle.Wait takes, which keeps event ordering identical.
//
//lint:steady
func (ex *Executor) waitHop() {
	ex.eng.Schedule(0, ex.waitResumeFn)
}

//lint:steady
func (ex *Executor) waitResume() {
	if ex.cur.Kind == OpWaitSlot {
		ex.releaseSlot(ex.cur)
	}
	ex.pc++
	ex.step()
}

// releaseSlot returns a retained handle to the pool unless it is still the
// stream tail (comm-queue release semantics: a live tail recycles when
// superseded or at the next iteration's stream reset).
func (ex *Executor) releaseSlot(op *Op) {
	h := ex.slots[op.Slot]
	ex.slots[op.Slot] = nil
	if h != ex.queues[op.Queue].tail {
		h.Release()
	}
}

//lint:steady
func (ex *Executor) nvmeDone() {
	ex.nvmeLeft--
	if ex.nvmeLeft > 0 {
		return
	}
	ex.env.TraceOp(ex.cur, ex.t0, ex.eng.Now())
	ex.pc++
	ex.step()
}

//lint:steady
func (ex *Executor) multiDone() {
	ex.multiLeft--
	if ex.multiLeft > 0 {
		return
	}
	ex.env.TraceOp(ex.cur, ex.t0, ex.eng.Now())
	ex.pc++
	ex.step()
}

// push replays comm-queue push for the op at index i: chain the collective
// after the stream's current tail, releasing a superseded fire-and-forget
// predecessor once it has ordered this start.
func (ex *Executor) push(i int) {
	op := &ex.s.Ops[i]
	is := ex.state[i].issue
	q := &ex.queues[op.Queue]
	is.h = ex.world.NewHandle()
	is.prev, is.prevAuto = q.tail, q.tailAuto
	if is.prev == nil {
		is.start()
	} else {
		is.prev.Then(is.startFn)
	}
	q.tail, q.tailAuto = is.h, op.Slot < 0
	if op.Slot >= 0 {
		ex.slots[op.Slot] = is.h
	}
}

// asyncIssue is the per-op reusable state of one stream collective: the
// pooled handle, the predecessor edge, and the start/fire closures bound
// once. One record per OpEnqueue suffices — an op issues at most once per
// iteration and every stream drains before the iteration ends.
type asyncIssue struct {
	ex       *Executor
	op       *Op
	h        *collective.Handle
	prev     *collective.Handle
	prevAuto bool
	t0       sim.Time
	startFn  func()
	fireFn   func()
}

func newAsyncIssue(ex *Executor, op *Op) *asyncIssue {
	is := &asyncIssue{ex: ex, op: op}
	is.startFn = is.start
	is.fireFn = is.fire
	return is
}

//lint:steady
func (is *asyncIssue) start() {
	ex := is.ex
	q := &ex.queues[is.op.Queue]
	is.t0 = ex.eng.Now()
	ex.world.StartRings(is.op.Col, is.op.Payload, q.limit, q.rings, is.fireFn)
	// prev has now served its last purpose (ordering this start); a
	// fire-and-forget predecessor goes back to the pool.
	if is.prevAuto {
		is.prev.Release()
	}
	is.prev = nil
}

//lint:steady
func (is *asyncIssue) fire() {
	ex := is.ex
	ex.env.TraceOp(is.op, is.t0, ex.eng.Now())
	h := is.h
	is.h = nil
	h.Fire()
}

// ---- pooled flow sets ----

// flowPool recycles the flow records of one schedule op. StartFlows resets a
// drained flow's byte counter and bookkeeping on admission, so a set whose
// flows have all completed is reusable as-is; sets are returned to the free
// list by their own completion callback. A blocking pool additionally resumes
// the program when the set drains.
type flowPool struct {
	ex       *Executor
	blocking bool
	build    func() []*fabric.Flow
	free     []*flowSet
}

type flowSet struct {
	pool  *flowPool
	flows []*fabric.Flow
	left  int
	cb    func()
}

func (ex *Executor) newFlowPool(blocking bool, build func() []*fabric.Flow) *flowPool {
	return &flowPool{ex: ex, blocking: blocking, build: build}
}

func (fp *flowPool) start() {
	var s *flowSet
	if k := len(fp.free); k > 0 {
		s = fp.free[k-1]
		fp.free[k-1] = nil
		fp.free = fp.free[:k-1]
	} else {
		s = &flowSet{pool: fp, flows: fp.build()} //lint:allow steady-alloc — pool miss: first iteration builds the set, replays reuse it
		s.cb = s.flowDone
	}
	s.left = len(s.flows)
	fp.ex.net.StartFlows(s.flows, s.cb)
}

//lint:steady
func (s *flowSet) flowDone() {
	s.left--
	if s.left > 0 {
		return
	}
	fp := s.pool
	fp.free = append(fp.free, s) //lint:allow steady-alloc — free-list push: capacity reaches steady state after the first iteration
	if fp.blocking {
		fp.ex.blockDone()
	}
}
