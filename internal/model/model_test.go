package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParamsMatchPaperSizes(t *testing.T) {
	// The paper's 1.4 B model should correspond to a plausible layer count
	// (~26 layers at h=2048), and Params must be monotone in layers.
	g := NewGPT(26)
	if b := g.ParamsB(); b < 1.3 || b > 1.5 {
		t.Errorf("26 layers = %.2fB params, want ~1.4B", b)
	}
}

func TestLayerParamsFormula(t *testing.T) {
	g := NewGPT(1)
	want := int64(12*2048*2048 + 13*2048)
	if got := g.LayerParams(); got != want {
		t.Errorf("LayerParams = %d, want %d", got, want)
	}
}

func TestEmbeddingParams(t *testing.T) {
	g := NewGPT(1)
	want := int64(50257*2048 + 1024*2048 + 2*2048)
	if got := g.EmbeddingParams(); got != want {
		t.Errorf("EmbeddingParams = %d, want %d", got, want)
	}
}

func TestLayersForParamsInverse(t *testing.T) {
	for _, layers := range []int{1, 5, 26, 100, 300, 650} {
		g := NewGPT(layers)
		got := LayersForParams(g.Params())
		if got != layers {
			t.Errorf("LayersForParams(Params(%d)) = %d", layers, got)
		}
	}
}

func TestLayersForParamsTiny(t *testing.T) {
	if got := LayersForParams(1000); got != 1 {
		t.Errorf("tiny target layers = %d, want 1", got)
	}
}

// Property: Params is strictly increasing in layer count and
// LayersForParams(p) always yields a model with at least p params.
func TestParamsMonotoneProperty(t *testing.T) {
	f := func(raw uint16) bool {
		layers := int(raw%512) + 1
		a, b := NewGPT(layers), NewGPT(layers+1)
		if b.Params() <= a.Params() {
			return false
		}
		target := a.Params() + 12345
		return NewGPT(LayersForParams(target)).Params() >= target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	if err := NewGPT(10).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []GPT{
		{Layers: 0, Hidden: 8, Heads: 2, SeqLen: 4, Vocab: 10},
		{Layers: 1, Hidden: 0, Heads: 2, SeqLen: 4, Vocab: 10},
		{Layers: 1, Hidden: 10, Heads: 3, SeqLen: 4, Vocab: 10},
	}
	for i, g := range bad {
		if g.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestTokensPerIteration(t *testing.T) {
	g := NewGPT(4)
	if got := g.TokensPerIteration(16, 4); got != 16*256*4 {
		t.Errorf("tokens = %d, want %d", got, 16*256*4)
	}
}

func TestIterationFLOPsScale(t *testing.T) {
	g := NewGPT(26) // ~1.4B params
	fl := g.IterationFLOPs(16, 4, false)
	// Rule of thumb: ~6 * P * tokens. With P=1.4e9, tokens=16384:
	// ~1.4e14. Allow the attention and head corrections some slack.
	want := 6 * float64(g.Params()) * 16384
	if ratio := fl / want; ratio < 0.85 || ratio > 1.3 {
		t.Errorf("IterationFLOPs = %.3g, %0.2fx of 6·P·T rule", fl, ratio)
	}
}

func TestRecomputeAddsOneForward(t *testing.T) {
	g := NewGPT(10)
	base := g.IterationFLOPs(16, 1, false)
	rec := g.IterationFLOPs(16, 1, true)
	// base = fwd + 2*fwd = 3 fwd; rec = 4 fwd.
	if ratio := rec / base; math.Abs(ratio-4.0/3.0) > 1e-9 {
		t.Errorf("recompute ratio = %v, want 4/3", ratio)
	}
}

func TestBackwardIsTwiceForward(t *testing.T) {
	g := NewGPT(3)
	if g.LayerBackwardFLOPs(8) != 2*g.LayerForwardFLOPs(8) {
		t.Error("backward != 2x forward")
	}
}

func TestActivationBytes(t *testing.T) {
	g := NewGPT(1)
	full := g.ActivationBytesPerLayer(16)
	ckpt := g.CheckpointBytesPerLayer(16)
	if ckpt >= full {
		t.Errorf("checkpointed (%.3g) should be far below full (%.3g)", ckpt, full)
	}
	// Full activations for s=256,b=16,h=2048,a=16: s·b·h·(34+5·16·256/2048)
	// = 8.39e6 · 44 ≈ 3.7e8.
	want := 256.0 * 16 * 2048 * (34 + 5*16*256/2048.0)
	if math.Abs(full-want) > 1 {
		t.Errorf("full act = %v, want %v", full, want)
	}
}

func TestEmbeddingActivationDominatedByVocab(t *testing.T) {
	g := NewGPT(1)
	e := g.EmbeddingActivationBytes(16)
	logits := 256.0 * 16 * 50257 * 6
	if e < logits {
		t.Errorf("embedding activations %.3g below logits term %.3g", e, logits)
	}
}

func TestStringRendering(t *testing.T) {
	s := NewGPT(26).String()
	if s == "" {
		t.Error("empty String()")
	}
}

func TestPresets(t *testing.T) {
	ps := Presets()
	if len(ps) < 10 {
		t.Fatalf("presets = %d, want >=10", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate preset %s", p.Name)
		}
		seen[p.Name] = true
		if err := p.GPT.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", p.Name, err)
		}
	}
	// Published sizes sanity: GPT-2 small ~124M, GPT-3 6.7B ~6.7B.
	small, ok := PresetByName("gpt2-small")
	if !ok {
		t.Fatal("gpt2-small missing")
	}
	if b := small.ParamsB(); b < 0.1 || b > 0.15 {
		t.Errorf("gpt2-small = %.3fB, want ~0.124", b)
	}
	g67, _ := PresetByName("gpt3-6.7b")
	if b := g67.ParamsB(); b < 6 || b > 7.5 {
		t.Errorf("gpt3-6.7b = %.2fB", b)
	}
	if _, ok := PresetByName("nope"); ok {
		t.Error("unknown preset found")
	}
}
