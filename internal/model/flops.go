package model

// FLOPs accounting. The paper measures attained TFLOP/s with the DeepSpeed
// FLOPS profiler, which counts the model's algorithmic FLOPs per iteration
// and divides by wall time. We use the standard transformer census:
// 2·P FLOPs per token for a forward pass through P matmul parameters, twice
// that for backward, plus the quadratic attention term.

// LayerForwardFLOPs returns forward FLOPs for one transformer layer over a
// micro-batch of b sequences: the four GEMMs (2·12h² per token) plus
// attention score/context matmuls (2·2·s²·h per sequence... per head folded
// into h).
func (g GPT) LayerForwardFLOPs(batch int) float64 {
	h := float64(g.Hidden)
	s := float64(g.SeqLen)
	b := float64(batch)
	gemm := 2 * 12 * h * h * s * b // weight GEMMs
	attn := 2 * 2 * s * s * h * b  // QK^T and attn·V
	return gemm + attn
}

// LayerBackwardFLOPs is the standard 2× forward (grad wrt inputs and
// weights).
func (g GPT) LayerBackwardFLOPs(batch int) float64 {
	return 2 * g.LayerForwardFLOPs(batch)
}

// HeadForwardFLOPs returns forward FLOPs of the output projection to the
// vocabulary (tied embedding GEMM), which is significant for small layer
// counts.
func (g GPT) HeadForwardFLOPs(batch int) float64 {
	return 2 * float64(g.Hidden) * float64(g.Vocab) * float64(g.SeqLen) * float64(batch)
}

// IterationFLOPs returns total algorithmic FLOPs for one iteration across
// dataParallel replicas: per-replica forward+backward over all layers plus
// the LM head. Activation recomputation adds one extra forward when enabled,
// matching how the DeepSpeed profiler attributes recompute FLOPs to the
// model.
func (g GPT) IterationFLOPs(batchPerGPU, dataParallel int, recompute bool) float64 {
	layers := float64(g.Layers)
	fwd := layers*g.LayerForwardFLOPs(batchPerGPU) + g.HeadForwardFLOPs(batchPerGPU)
	bwd := 2 * fwd
	total := fwd + bwd
	if recompute {
		total += fwd
	}
	return total * float64(dataParallel)
}

// ActivationBytesPerLayer returns the FP16 activation footprint of one layer
// for a micro-batch, without checkpointing: the standard
// s·b·h·(34 + 5·a·s/h) bytes estimate (Korthikanti et al.), which the paper's
// platform uses since it predates FlashAttention.
func (g GPT) ActivationBytesPerLayer(batch int) float64 {
	h := float64(g.Hidden)
	s := float64(g.SeqLen)
	b := float64(batch)
	a := float64(g.Heads)
	return s * b * h * (34 + 5*a*s/h)
}

// CheckpointBytesPerLayer returns the per-layer activation footprint with
// activation checkpointing: only the layer input (s·b·h FP16) is retained.
func (g GPT) CheckpointBytesPerLayer(batch int) float64 {
	return float64(g.SeqLen) * float64(batch) * float64(g.Hidden) * FP16Bytes
}

// EmbeddingActivationBytes returns the activation cost of the embedding and
// LM-head region: input/output hidden states plus the vocabulary logits,
// which at GPT-2's 50k vocabulary dominate small models.
func (g GPT) EmbeddingActivationBytes(batch int) float64 {
	s := float64(g.SeqLen)
	b := float64(batch)
	return s*b*float64(g.Hidden)*2*FP16Bytes + s*b*float64(g.Vocab)*(FP16Bytes+FP32Bytes)
}
