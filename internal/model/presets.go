package model

// Preset is a named transformer configuration. The paper's evaluation varies
// only the layer count at fixed width (h=2048, a=16, s=256); the presets
// below add the published GPT-2/GPT-3 family shapes so the library can be
// used for capacity planning beyond the paper's sweep. Note that bandwidth
// results for non-paper widths extrapolate the calibrated efficiency curve.
type Preset struct {
	Name string
	GPT  GPT
}

// Presets returns well-known model shapes plus the paper's sweep points.
func Presets() []Preset {
	mk := func(name string, layers, hidden, heads, seq, maxPos int) Preset {
		return Preset{Name: name, GPT: GPT{
			Layers: layers, Hidden: hidden, Heads: heads,
			SeqLen: seq, MaxPos: maxPos, Vocab: DefaultVocab,
		}}
	}
	paper := func(name string, billions float64) Preset {
		return Preset{Name: name, GPT: NewGPT(LayersForParams(int64(billions * 1e9)))}
	}
	return []Preset{
		mk("gpt2-small", 12, 768, 12, 1024, 1024),
		mk("gpt2-medium", 24, 1024, 16, 1024, 1024),
		mk("gpt2-large", 36, 1280, 20, 1024, 1024),
		mk("gpt2-xl", 48, 1600, 25, 1024, 1024),
		mk("gpt3-2.7b", 32, 2560, 32, 2048, 2048),
		mk("gpt3-6.7b", 32, 4096, 32, 2048, 2048),
		mk("gpt3-13b", 40, 5120, 40, 2048, 2048),
		paper("paper-0.7b", 0.7),
		paper("paper-1.4b", 1.4),
		paper("paper-5.5b", 5.5),
		paper("paper-11.4b", 11.4),
		paper("paper-33.3b", 33.3),
	}
}

// PresetByName returns a named preset configuration.
func PresetByName(name string) (GPT, bool) {
	for _, p := range Presets() {
		if p.Name == name {
			return p.GPT, true
		}
	}
	return GPT{}, false
}
