package model

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSizes converts a comma-separated model-size list (billions of
// parameters, or "max" for the largest fit, empty tokens skipped) into layer
// counts, preserving argument order — sweep tables and streamed sweep
// responses render rows in exactly this order, so the output for a given
// size list is reproducible. Shared by cmd/sweep and cmd/servesim.
func ParseSizes(arg string, maxLayers int) ([]int, error) {
	var layerCounts []int
	for _, tok := range strings.Split(arg, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if tok == "max" {
			layerCounts = append(layerCounts, maxLayers)
			continue
		}
		b, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %v", tok, err)
		}
		layerCounts = append(layerCounts, LayersForParams(int64(b*1e9)))
	}
	return layerCounts, nil
}
