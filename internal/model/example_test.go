package model_test

import (
	"fmt"

	"llmbw/internal/model"
)

// Build the paper's ~1.4 B-parameter GPT-2-like model and inspect it.
func Example() {
	g := model.NewGPT(model.LayersForParams(1.4e9))
	fmt.Printf("layers: %d\n", g.Layers)
	fmt.Printf("params: %.2fB\n", g.ParamsB())
	fmt.Printf("tokens/iter on 4 GPUs: %d\n", g.TokensPerIteration(model.DefaultBatchSize, 4))
	// Output:
	// layers: 26
	// params: 1.41B
	// tokens/iter on 4 GPUs: 16384
}
