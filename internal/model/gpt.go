// Package model describes the GPT-2-like transformer the paper trains and
// the analytical laws that govern it: parameter counts, per-iteration FLOPs,
// activation footprints and per-layer tensor shapes. The paper's model is
// fixed at 16 attention heads, hidden size 2048, sequence length 256 and 1024
// maximum position embeddings; the layer count is varied to change the model
// size (Section III-B2).
package model

import "fmt"

// Paper-fixed architecture hyperparameters (Section III-B2).
const (
	DefaultHidden    = 2048
	DefaultHeads     = 16
	DefaultSeqLen    = 256
	DefaultMaxPos    = 1024
	DefaultVocab     = 50257 // GPT-2 BPE vocabulary
	DefaultBatchSize = 16    // per-GPU micro-batch used everywhere in the paper
)

// Bytes per element in mixed-precision (FP16) training.
const (
	FP16Bytes = 2
	FP32Bytes = 4
)

// GPT is a GPT-2-like decoder-only transformer configuration.
type GPT struct {
	Layers int
	Hidden int
	Heads  int
	SeqLen int
	MaxPos int
	Vocab  int
}

// NewGPT returns the paper's architecture with the given layer count.
func NewGPT(layers int) GPT {
	return GPT{
		Layers: layers,
		Hidden: DefaultHidden,
		Heads:  DefaultHeads,
		SeqLen: DefaultSeqLen,
		MaxPos: DefaultMaxPos,
		Vocab:  DefaultVocab,
	}
}

// Validate reports configuration errors.
func (g GPT) Validate() error {
	switch {
	case g.Layers <= 0:
		return fmt.Errorf("model: layers must be positive, got %d", g.Layers)
	case g.Hidden <= 0 || g.Heads <= 0 || g.SeqLen <= 0 || g.Vocab <= 0:
		return fmt.Errorf("model: non-positive dimension in %+v", g)
	case g.Hidden%g.Heads != 0:
		return fmt.Errorf("model: hidden %d not divisible by heads %d", g.Hidden, g.Heads)
	}
	return nil
}

// LayerParams returns parameters in one transformer layer: QKV projection
// (3h²+3h), attention output (h²+h), two MLP matrices (8h²+5h) and two
// LayerNorms (4h) — the standard 12h²+13h GPT-2 census.
func (g GPT) LayerParams() int64 {
	h := int64(g.Hidden)
	return 12*h*h + 13*h
}

// EmbeddingParams returns token + position embedding parameters plus the
// final LayerNorm. The output projection is tied to the token embedding.
func (g GPT) EmbeddingParams() int64 {
	h := int64(g.Hidden)
	return int64(g.Vocab)*h + int64(g.MaxPos)*h + 2*h
}

// Params returns the total parameter count — the number DeepSpeed reports
// and the paper quotes as "model size".
func (g GPT) Params() int64 {
	return int64(g.Layers)*g.LayerParams() + g.EmbeddingParams()
}

// ParamsB returns the total in billions, the paper's display unit.
func (g GPT) ParamsB() float64 { return float64(g.Params()) / 1e9 }

// LayersForParams returns the smallest layer count whose total parameter
// count reaches target, inverting Params. It is how the paper "varies the
// number of layers until it reaches the maximum size".
func LayersForParams(target int64) int {
	g := NewGPT(1)
	rem := target - g.EmbeddingParams()
	if rem <= 0 {
		return 1
	}
	per := g.LayerParams()
	layers := int((rem + per - 1) / per)
	if layers < 1 {
		layers = 1
	}
	return layers
}

// TokensPerIteration returns the tokens processed per training iteration for
// the given data-parallel width (per-GPU batch × sequence × replicas).
func (g GPT) TokensPerIteration(batchPerGPU, dataParallel int) int64 {
	return int64(batchPerGPU) * int64(g.SeqLen) * int64(dataParallel)
}

func (g GPT) String() string {
	return fmt.Sprintf("GPT-2-like{L=%d h=%d a=%d s=%d, %.2fB params}",
		g.Layers, g.Hidden, g.Heads, g.SeqLen, g.ParamsB())
}
