package scenario_test

import (
	"testing"

	"llmbw/internal/scenario"
)

// benchCache is package-level so the tier registers once no matter how many
// times the benchmark body reruns.
var benchCache = scenario.New("bench.warmget", 8)

// BenchmarkScenarioCacheWarmGet pins the warm replay probe — the path every
// servesim cache hit takes — at zero allocations per operation.
func BenchmarkScenarioCacheWarmGet(b *testing.B) {
	key := scenario.Intern("bench-key")
	if _, err := benchCache.Do(key, 0, func() (any, error) { return 42, nil }); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := benchCache.Get(key, 0); !ok {
			b.Fatal("warm key missed")
		}
	}
}
