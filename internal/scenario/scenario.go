// Package scenario is the warm-artifact layer behind the long-lived
// simulation service: canonical interned scenario keys plus a family of
// size-bounded, epoch-aware, singleflight LRU caches holding the expensive
// intermediate artifacts a simulation run compiles — memoized run results,
// compiled schedule-IR programs, datacenter topology blueprints, and
// hierarchical-collective plan shapes. The experiment suite and cmd/servesim
// are sweep workloads: hundreds of near-identical configurations differing
// in one knob. Artifacts that depend only on a shared prefix of the
// configuration (the topology spec, the strategy/model pair) are computed
// once and replayed from here, so a warm request skips straight to the parts
// of the work its configuration actually changes.
//
// The package is deliberately leaf-level (it imports nothing from the
// simulator), so every layer — train, collective, topology, the CLIs and the
// daemon — can share one cache substrate without import cycles. Values are
// immutable by contract: a cached artifact is shared across concurrent
// consumers and must never be mutated after Do's compute function returns.
package scenario

import "sync"

// interned is the process-wide canonical-key table. Scenario keys are
// rendered repeatedly from configurations (every cache probe re-derives the
// same string); interning collapses the copies so cache maps, stats and logs
// all share one backing string per distinct scenario. The table only grows —
// it is bounded by the number of distinct scenarios a process touches, which
// the LRU caches already assume is sweep-sized, not adversarial.
var interned sync.Map // string -> string

// Intern returns the canonical shared copy of s, storing s itself on first
// sight.
func Intern(s string) string {
	if v, ok := interned.Load(s); ok {
		return v.(string)
	}
	v, _ := interned.LoadOrStore(s, s)
	return v.(string)
}
