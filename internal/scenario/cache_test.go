package scenario_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"llmbw/internal/scenario"
	"llmbw/internal/topology"
)

func put(t *testing.T, c *scenario.Cache, key string, val any) {
	t.Helper()
	if _, err := c.Do(key, 0, func() (any, error) { return val, nil }); err != nil {
		t.Fatal(err)
	}
}

func TestCacheHitMissCounters(t *testing.T) {
	c := scenario.New("test.counters", 8)
	put(t, c, "a", 1)
	v, err := c.Do("a", 0, func() (any, error) {
		t.Fatal("hit must not recompute")
		return nil, nil
	})
	if err != nil || v.(int) != 1 {
		t.Fatalf("Do(a) = %v, %v; want 1", v, err)
	}
	if _, ok := c.Get("a", 0); !ok {
		t.Fatal("Get(a) missed after Do")
	}
	if _, ok := c.Get("b", 0); ok {
		t.Fatal("Get(b) hit without insert")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 || s.Entries != 1 {
		t.Fatalf("stats = %+v; want 2 hits (Do+Get), 2 misses (Do+Get), 1 entry", s)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := scenario.New("test.lru", 2)
	put(t, c, "a", "A")
	put(t, c, "b", "B")
	// Touch a so b is the least recently used.
	if _, ok := c.Get("a", 0); !ok {
		t.Fatal("Get(a) missed")
	}
	put(t, c, "c", "C")
	if _, ok := c.Get("b", 0); ok {
		t.Fatal("b survived eviction; want it dropped as LRU")
	}
	if _, ok := c.Get("a", 0); !ok {
		t.Fatal("a evicted; want it retained as recently used")
	}
	if _, ok := c.Get("c", 0); !ok {
		t.Fatal("c evicted; want the fresh insert retained")
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats = %+v; want 1 eviction, 2 entries", s)
	}
}

func TestCacheSetCapEvictsDown(t *testing.T) {
	c := scenario.New("test.setcap", 0) // unbounded
	for i := 0; i < 8; i++ {
		put(t, c, fmt.Sprintf("k%d", i), i)
	}
	if c.Len() != 8 {
		t.Fatalf("Len = %d; want 8 (unbounded)", c.Len())
	}
	c.SetCap(3)
	if c.Len() != 3 {
		t.Fatalf("Len = %d after SetCap(3); want 3", c.Len())
	}
	// The three most recently used survive.
	for i := 5; i < 8; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i), 0); !ok {
			t.Fatalf("k%d evicted; want the MRU tail retained", i)
		}
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := scenario.New("test.singleflight", 8)
	var computes atomic.Int64
	var wg sync.WaitGroup
	const n = 16
	vals := make([]any, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Do("shared", 0, func() (any, error) {
				computes.Add(1)
				return "result", nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i] = v
		}()
	}
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("%d computations for one key; want exactly 1 (coalesced)", got)
	}
	for i, v := range vals {
		if v.(string) != "result" {
			t.Fatalf("goroutine %d got %v; want shared result", i, v)
		}
	}
	if s := c.Stats(); s.Misses != 1 {
		t.Fatalf("misses = %d; want 1 (misses count computations started)", s.Misses)
	}
}

func TestCacheCachesDeterministicErrors(t *testing.T) {
	c := scenario.New("test.errors", 8)
	want := errors.New("config does not fit")
	if _, err := c.Do("bad", 0, func() (any, error) { return nil, want }); err != want {
		t.Fatalf("Do = %v; want the compute error", err)
	}
	if _, err := c.Do("bad", 0, func() (any, error) {
		t.Fatal("error entries must be served, not recomputed")
		return nil, nil
	}); err != want {
		t.Fatalf("second Do = %v; want the cached error", err)
	}
}

// TestCacheEpochInvalidation exercises the capacity-epoch fence with a real
// SetCapacity bump: an artifact derived from a link capacity is cached at the
// network's capacity epoch; degrading the link bumps the epoch, so the next
// fetch invalidates the stale artifact and recomputes against the new
// capacity — the cross-run mirror of the in-fabric capEpoch revalidation.
func TestCacheEpochInvalidation(t *testing.T) {
	c := scenario.New("test.epoch", 8)
	cl := topology.New(topology.DefaultConfig(2))
	link := cl.RoCELink(topology.NIC{Node: 0, Socket: 0})

	capAt := func() (any, error) { return link.Capacity(), nil }
	v, err := c.Do("roce-cap", cl.Net.CapacityEpoch(), capAt)
	if err != nil {
		t.Fatal(err)
	}
	nominal := v.(float64)

	// Degrade the link: the network's capacity epoch bumps.
	before := cl.Net.CapacityEpoch()
	cl.Net.SetCapacity(link, nominal/2)
	after := cl.Net.CapacityEpoch()
	if after == before {
		t.Fatal("SetCapacity did not bump the capacity epoch")
	}

	// The stale-epoch probe must not serve the old artifact.
	if _, ok := c.Get("roce-cap", after); ok {
		t.Fatal("Get served a stale-epoch artifact")
	}
	v, err = c.Do("roce-cap", after, capAt)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.(float64); got != nominal/2 {
		t.Fatalf("recomputed artifact = %g; want the degraded capacity %g", got, nominal/2)
	}
	s := c.Stats()
	if s.Invalidations != 1 {
		t.Fatalf("invalidations = %d; want exactly 1 (Get invalidated, Do recomputed)", s.Invalidations)
	}
	if s.Misses != 2 {
		// Misses count computations: the first Do and the recomputing Do.
		// The invalidating Get counts as an invalidation, not a miss.
		t.Fatalf("misses = %d; want 2", s.Misses)
	}
}

// TestCacheWarmGetAllocFree pins the warm replay path at zero allocations:
// with the key prebuilt and the artifact resident, Get is a pure lookup.
func TestCacheWarmGetAllocFree(t *testing.T) {
	c := scenario.New("test.allocs", 8)
	val := &struct{ x int }{x: 42}
	put(t, c, "warm", val)
	key := "warm"
	allocs := testing.AllocsPerRun(1000, func() {
		v, ok := c.Get(key, 0)
		if !ok || v != val {
			t.Fatal("warm Get missed")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Get allocates %.1f/op; want 0", allocs)
	}
}

func TestCacheReset(t *testing.T) {
	c := scenario.New("test.reset", 8)
	put(t, c, "a", 1)
	put(t, c, "b", 2)
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Reset; want 0", c.Len())
	}
	var recomputed bool
	if _, err := c.Do("a", 0, func() (any, error) { recomputed = true; return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Fatal("Reset did not drop the entry")
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	a := scenario.New("test.snap.b", 4)
	b := scenario.New("test.snap.a", 4)
	put(t, a, "x", 1)
	put(t, b, "y", 2)
	snap := scenario.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name > snap[i].Name {
			t.Fatalf("snapshot unsorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}
	seen := map[string]scenario.Stats{}
	for _, s := range snap {
		seen[s.Name] = s
	}
	if s, ok := seen["test.snap.a"]; !ok || s.Entries != 1 {
		t.Fatalf("snapshot missing test.snap.a or wrong entries: %+v", s)
	}
	if s, ok := seen["test.snap.b"]; !ok || s.Entries != 1 {
		t.Fatalf("snapshot missing test.snap.b or wrong entries: %+v", s)
	}
}

func TestIntern(t *testing.T) {
	a := scenario.Intern("scenario-key-" + fmt.Sprint(1))
	b := scenario.Intern("scenario-key-" + fmt.Sprint(1))
	if a != b {
		t.Fatal("interned copies differ in value")
	}
}
