package scenario

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Cache is one tier of the warm-artifact store: a concurrency-safe,
// size-bounded LRU with singleflight computation and capacity-epoch-aware
// invalidation.
//
//   - Singleflight: concurrent Do calls for one key share a single compute;
//     every caller gets the same value (and the same error — deterministic
//     failures are as cacheable as results).
//   - LRU: insertion beyond the entry cap evicts the least-recently-used
//     entries. Values are immutable shared pointers, so eviction only drops
//     the cache's reference — consumers holding an evicted artifact keep a
//     perfectly valid one; a later request simply recomputes.
//   - Epochs: an entry is stamped with the epoch presented when it was
//     computed (fabric.Network.CapacityEpoch for capacity-derived artifacts,
//     0 for artifacts that are pure functions of the scenario). Presenting a
//     different epoch invalidates the stale entry in place of serving it —
//     the cross-run mirror of the in-fabric capEpoch revalidation fence.
//
// Counters (hits, misses, evictions, invalidations) feed the /stats probe of
// cmd/servesim; misses count exactly the computations started, which is what
// the request-coalescing tests pin.
type Cache struct {
	name string

	mu      sync.Mutex
	cap     int
	entries map[string]*entry
	// Intrusive LRU list: mru is the most-, lru the least-recently-used.
	mru, lru *entry

	hits, misses, evictions, invalidations int64
}

// entry is one cached artifact (or one in-flight computation of it).
type entry struct {
	key        string
	epoch      int64
	prev, next *entry

	once sync.Once
	val  any
	err  error
	done atomic.Bool
}

// registry lists every cache built by New, for the aggregated stats probe.
var registry struct {
	mu     sync.Mutex
	caches []*Cache
}

// New builds a cache tier and registers it for Snapshot. capacity bounds the
// entry count (evicting least-recently-used beyond it); capacity <= 0 means
// unbounded — reserve that for artifact tiers whose key space is small and
// closed (e.g. plan shapes of one process's sweep).
func New(name string, capacity int) *Cache {
	c := &Cache{name: name, cap: capacity, entries: make(map[string]*entry)}
	registry.mu.Lock()
	registry.caches = append(registry.caches, c)
	registry.mu.Unlock()
	return c
}

// Name returns the tier name used in stats.
func (c *Cache) Name() string { return c.name }

// Do returns the artifact for key at the given epoch, computing it with fn
// on a miss. Concurrent calls for the same key coalesce onto one fn
// invocation; an entry stamped with a different epoch is invalidated and
// recomputed. The returned value is shared: callers must treat it as
// immutable.
//
//lint:cold
func (c *Cache) Do(key string, epoch int64, fn func() (any, error)) (any, error) {
	e := c.acquire(key, epoch)
	e.once.Do(func() {
		e.val, e.err = fn()
		e.done.Store(true)
	})
	return e.val, e.err
}

// Get is the warm replay path: it returns the completed artifact for key at
// the given epoch, or ok=false on a miss, an epoch mismatch (which
// invalidates the stale entry), or an entry still being computed. It
// allocates nothing.
//
//lint:steady
func (c *Cache) Get(key string, epoch int64) (any, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		c.mu.Unlock()
		return nil, false
	}
	if e.epoch != epoch {
		c.invalidations++
		c.remove(e)
		c.mu.Unlock()
		return nil, false
	}
	if !e.done.Load() {
		// In flight: the cold path owns it; Do will coalesce onto it.
		c.mu.Unlock()
		return nil, false
	}
	c.hits++
	c.touch(e)
	v := e.val
	c.mu.Unlock()
	return v, true
}

// acquire resolves key to its live entry, creating (and inserting) a fresh
// one on miss or epoch mismatch and evicting beyond the cap.
//
//lint:cold
func (c *Cache) acquire(key string, epoch int64) *entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		if e.epoch == epoch {
			c.hits++
			c.touch(e)
			return e
		}
		// Stale epoch: the artifact derives from state that has changed
		// (e.g. a SetCapacity bump); drop it and compute fresh.
		c.invalidations++
		c.remove(e)
	}
	c.misses++
	e := &entry{key: key, epoch: epoch}
	c.entries[key] = e
	c.pushFront(e)
	c.evict()
	return e
}

// evict drops least-recently-used entries until the cap is respected. An
// evicted in-flight entry keeps computing for the callers already coalesced
// onto it; only the cache's reference is dropped.
func (c *Cache) evict() {
	for c.cap > 0 && len(c.entries) > c.cap {
		c.evictions++
		c.remove(c.lru)
	}
}

// touch moves e to the most-recently-used position.
func (c *Cache) touch(e *entry) {
	if c.mru == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.mru
	if c.mru != nil {
		c.mru.prev = e
	}
	c.mru = e
	if c.lru == nil {
		c.lru = e
	}
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.mru = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.lru = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) remove(e *entry) {
	delete(c.entries, e.key)
	c.unlink(e)
}

// SetCap rebounds the cache, evicting down to the new cap immediately.
// capacity <= 0 removes the bound.
func (c *Cache) SetCap(capacity int) {
	c.mu.Lock()
	c.cap = capacity
	c.evict()
	c.mu.Unlock()
}

// Reset drops every entry (counters keep accumulating). Tests use it to
// force fresh computations when comparing independent executions.
func (c *Cache) Reset() {
	c.mu.Lock()
	for c.lru != nil {
		c.remove(c.lru)
	}
	c.mu.Unlock()
}

// Len returns the live entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats is one tier's counter snapshot.
type Stats struct {
	Name          string `json:"name"`
	Cap           int    `json:"cap"`
	Entries       int    `json:"entries"`
	Hits          int64  `json:"hits"`
	Misses        int64  `json:"misses"`
	Evictions     int64  `json:"evictions"`
	Invalidations int64  `json:"invalidations"`
}

// Stats snapshots the cache's counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Name:          c.name,
		Cap:           c.cap,
		Entries:       len(c.entries),
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
	}
}

// Snapshot returns every registered tier's stats sorted by name — a stable
// order for serialized probes (the ordered-map-emit discipline; the registry
// is a slice, but sorting makes the output independent of package
// initialization order too).
func Snapshot() []Stats {
	registry.mu.Lock()
	caches := make([]*Cache, len(registry.caches))
	copy(caches, registry.caches)
	registry.mu.Unlock()
	out := make([]Stats, 0, len(caches))
	for _, c := range caches {
		out = append(out, c.Stats())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
