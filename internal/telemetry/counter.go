// Package telemetry implements the measurement side of the reproduction: the
// byte counters attached to every interconnect link, the fixed-window sampler
// that turns them into bandwidth time series, and the average / 90th
// percentile / peak statistics reported in the paper's Table IV and Table VI.
//
// The paper samples its counters with AMD µProf, nvidia-smi and NIC hardware
// counters; all report aggregate bidirectional traffic per interconnect. We
// mirror that convention: a Counter accumulates bytes into fixed virtual-time
// windows, and Stats are computed over per-window rates.
package telemetry

import (
	"fmt"

	"llmbw/internal/sim"
)

// DefaultWindow is the sampling window used for bandwidth statistics,
// matching the ~1 Hz sampling of AMD µProf and nvidia-smi that produces the
// paper's utilization-pattern figures (Fig 9, 10, 12) over a 200 s run.
const DefaultWindow = sim.Second

// Counter accumulates transferred bytes into fixed-duration windows of
// virtual time. It is not safe for concurrent use; the simulation is
// single-threaded by construction.
type Counter struct {
	Name    string
	window  sim.Time
	buckets []float64 // bytes per window
	total   float64
	lastEnd sim.Time // latest time any bytes were recorded up to
}

// NewCounter returns a counter with the given sampling window. A zero or
// negative window falls back to DefaultWindow.
func NewCounter(name string, window sim.Time) *Counter {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Counter{Name: name, window: window}
}

// Window returns the sampling window duration.
func (c *Counter) Window() sim.Time { return c.window }

// Total returns the cumulative bytes recorded.
func (c *Counter) Total() float64 { return c.total }

// Add records bytes transferred uniformly over the interval [from, to). Zero
// and point intervals attribute all bytes to the window containing from.
func (c *Counter) Add(from, to sim.Time, bytes float64) {
	if bytes < 0 {
		panic(fmt.Sprintf("telemetry: negative bytes %f on %s", bytes, c.Name))
	}
	if to < from {
		panic(fmt.Sprintf("telemetry: inverted interval [%v,%v) on %s", from, to, c.Name))
	}
	if bytes == 0 {
		if to > c.lastEnd {
			c.lastEnd = to
		}
		return
	}
	c.total += bytes
	if to > c.lastEnd {
		c.lastEnd = to
	}
	first := int(from / c.window)
	c.grow(int(to/c.window) + 1)
	if to == from {
		c.buckets[first] += bytes
		return
	}
	span := float64(to - from)
	for w := first; sim.Time(w)*c.window < to; w++ {
		ws := sim.Time(w) * c.window
		we := ws + c.window
		s, e := maxTime(ws, from), minTime(we, to)
		if e > s {
			c.buckets[w] += bytes * float64(e-s) / span
		}
	}
}

func (c *Counter) grow(n int) {
	for len(c.buckets) < n {
		c.buckets = append(c.buckets, 0)
	}
}

// Series returns the per-window bandwidth in bytes/second covering [0, end).
// Windows past the last recorded activity are zero-filled so that idle time
// correctly drags down the average, matching how the paper's monitors report.
func (c *Counter) Series(end sim.Time) Series { return c.SeriesRange(0, end) }

// SeriesRange returns the per-window bandwidth covering [start, end), used to
// exclude warm-up iterations from statistics the way the paper starts its
// collection at the fifth iteration. Only windows lying entirely inside the
// range contribute, so bytes from outside the measurement interval cannot
// bleed into the statistics; if the range is shorter than one full window it
// falls back to the windows the range touches.
func (c *Counter) SeriesRange(start, end sim.Time) Series {
	if end <= 0 {
		end = c.lastEnd
	}
	if start < 0 {
		start = 0
	}
	// Align to whole windows inside [start, end).
	first := int((start + c.window - 1) / c.window)
	last := int(end / c.window) // exclusive
	if last <= first {
		// Degenerate short range: use the touched windows instead.
		first = int(start / c.window)
		last = int(end / c.window)
		if sim.Time(last)*c.window < end {
			last++
		}
	}
	n := last - first
	if n < 0 {
		n = 0
	}
	out := make([]float64, n)
	wsec := c.window.ToSeconds()
	for i := 0; i < n; i++ {
		if w := first + i; w < len(c.buckets) {
			out[i] = c.buckets[w] / wsec
		}
	}
	return Series{Window: c.window, Rates: out}
}

// Stats computes bandwidth statistics over [0, end).
func (c *Counter) Stats(end sim.Time) Stats { return c.Series(end).Stats() }

// Reset clears all recorded data.
func (c *Counter) Reset() {
	c.buckets = c.buckets[:0]
	c.total = 0
	c.lastEnd = 0
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

func minTime(a, b sim.Time) sim.Time {
	if a < b {
		return a
	}
	return b
}
