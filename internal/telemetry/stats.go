package telemetry

import (
	"fmt"
	"math"
	"sort"

	"llmbw/internal/sim"
)

// GB is the unit the paper reports bandwidth in (decimal gigabytes).
const GB = 1e9

// Stats summarizes a bandwidth series the way the paper's Table IV does:
// average, 90th percentile and peak of the sampled rates, in bytes/second.
type Stats struct {
	Avg  float64
	P90  float64
	Peak float64
}

// GBps returns the statistic converted to decimal GB/s for display.
func (s Stats) GBps() (avg, p90, peak float64) {
	return s.Avg / GB, s.P90 / GB, s.Peak / GB
}

// String renders the stats in GB/s.
func (s Stats) String() string {
	return fmt.Sprintf("avg %.2f / p90 %.2f / peak %.2f GBps",
		s.Avg/GB, s.P90/GB, s.Peak/GB)
}

// Add returns element-wise sums; used to aggregate links of one interconnect
// class. Note that percentile and peak of a sum are approximated by the sum
// of percentiles/peaks, which is how per-device counters are combined by the
// paper's per-node aggregation as well.
func (s Stats) Add(o Stats) Stats {
	return Stats{Avg: s.Avg + o.Avg, P90: s.P90 + o.P90, Peak: s.Peak + o.Peak}
}

// Series is a fixed-window bandwidth time series in bytes/second.
type Series struct {
	Window sim.Time
	Rates  []float64
}

// Stats computes average, 90th percentile, and peak over the series. The
// average is over all windows, including idle ones; this matches a monitor
// that samples continuously for the whole measurement interval.
func (s Series) Stats() Stats {
	if len(s.Rates) == 0 {
		return Stats{}
	}
	sum, peak := 0.0, 0.0
	for _, r := range s.Rates {
		sum += r
		if r > peak {
			peak = r
		}
	}
	return Stats{
		Avg:  sum / float64(len(s.Rates)),
		P90:  s.Percentile(90),
		Peak: peak,
	}
}

// Percentile returns the pth percentile (0..100) of the window rates using
// nearest-rank on the sorted samples.
func (s Series) Percentile(p float64) float64 {
	if len(s.Rates) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.Rates...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Sum returns the element-wise sum of two series, extending to the longer
// one. Panics if windows differ: summing across sampling rates is a bug.
func (s Series) Sum(o Series) Series {
	if len(s.Rates) == 0 {
		return o
	}
	if len(o.Rates) == 0 {
		return s
	}
	if s.Window != o.Window {
		panic("telemetry: summing series with different windows")
	}
	n := len(s.Rates)
	if len(o.Rates) > n {
		n = len(o.Rates)
	}
	out := make([]float64, n)
	for i := range out {
		if i < len(s.Rates) {
			out[i] += s.Rates[i]
		}
		if i < len(o.Rates) {
			out[i] += o.Rates[i]
		}
	}
	return Series{Window: s.Window, Rates: out}
}

// Duration returns the total time the series covers.
func (s Series) Duration() sim.Time { return sim.Time(len(s.Rates)) * s.Window }

// Downsample returns a series with windows merged in groups of k (averaging
// rates), for compact pattern rendering.
func (s Series) Downsample(k int) Series {
	if k <= 1 || len(s.Rates) == 0 {
		return s
	}
	out := make([]float64, 0, (len(s.Rates)+k-1)/k)
	for i := 0; i < len(s.Rates); i += k {
		end := i + k
		if end > len(s.Rates) {
			end = len(s.Rates)
		}
		sum := 0.0
		for _, r := range s.Rates[i:end] {
			sum += r
		}
		out = append(out, sum/float64(end-i))
	}
	return Series{Window: s.Window * sim.Time(k), Rates: out}
}

// Sparkline renders the series as a one-line unicode bar chart scaled to the
// series peak, used to reproduce the utilization-pattern figures in text.
func (s Series) Sparkline(width int) string {
	if len(s.Rates) == 0 || width <= 0 {
		return ""
	}
	ds := s
	if len(s.Rates) > width {
		ds = s.Downsample((len(s.Rates) + width - 1) / width)
	}
	peak := 0.0
	for _, r := range ds.Rates {
		if r > peak {
			peak = r
		}
	}
	bars := []rune(" ▁▂▃▄▅▆▇█")
	out := make([]rune, len(ds.Rates))
	for i, r := range ds.Rates {
		if peak == 0 {
			out[i] = bars[0]
			continue
		}
		idx := int(r / peak * float64(len(bars)-1))
		if idx >= len(bars) {
			idx = len(bars) - 1
		}
		out[i] = bars[idx]
	}
	return string(out)
}
