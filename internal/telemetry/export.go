package telemetry

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV emits aligned bandwidth series as CSV: a time column (seconds)
// followed by one column per labelled series (GB/s). This is the raw data
// behind the paper's utilization-pattern figures (Fig 9, 10, 12), ready for
// external plotting.
func WriteCSV(w io.Writer, labels []string, series []Series) error {
	if len(labels) != len(series) {
		return fmt.Errorf("telemetry: %d labels for %d series", len(labels), len(series))
	}
	if len(series) == 0 {
		return fmt.Errorf("telemetry: no series")
	}
	window := series[0].Window
	n := 0
	for _, s := range series {
		if len(s.Rates) > 0 && s.Window != window {
			return fmt.Errorf("telemetry: mixed windows %v and %v", window, s.Window)
		}
		if len(s.Rates) > n {
			n = len(s.Rates)
		}
	}
	cw := csv.NewWriter(w)
	header := append([]string{"time_s"}, labels...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(series)+1)
		row = append(row, fmt.Sprintf("%.3f", float64(i)*window.ToSeconds()))
		for _, s := range series {
			v := 0.0
			if i < len(s.Rates) {
				v = s.Rates[i] / GB
			}
			row = append(row, fmt.Sprintf("%.4f", v))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
