package telemetry

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"llmbw/internal/sim"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCounterSingleWindow(t *testing.T) {
	c := NewCounter("x", 100*sim.Millisecond)
	c.Add(0, 50*sim.Millisecond, 1e9)
	s := c.Series(100 * sim.Millisecond)
	if len(s.Rates) != 1 {
		t.Fatalf("windows = %d, want 1", len(s.Rates))
	}
	// 1 GB in a 0.1 s window -> 10 GB/s window rate.
	if !almost(s.Rates[0], 10e9, 1) {
		t.Errorf("rate = %v, want 10e9", s.Rates[0])
	}
}

func TestCounterSplitsAcrossWindows(t *testing.T) {
	c := NewCounter("x", 100*sim.Millisecond)
	// 3 GB spread uniformly over [50ms, 350ms): windows get 50/100/100/50 ms shares.
	c.Add(50*sim.Millisecond, 350*sim.Millisecond, 3e9)
	s := c.Series(400 * sim.Millisecond)
	wantBytes := []float64{0.5e9, 1e9, 1e9, 0.5e9}
	for i, wb := range wantBytes {
		got := s.Rates[i] * 0.1
		if !almost(got, wb, 1e3) {
			t.Errorf("window %d bytes = %v, want %v", i, got, wb)
		}
	}
	if !almost(c.Total(), 3e9, 1) {
		t.Errorf("total = %v, want 3e9", c.Total())
	}
}

func TestCounterPointInterval(t *testing.T) {
	c := NewCounter("x", sim.Millisecond)
	c.Add(5*sim.Millisecond, 5*sim.Millisecond, 42)
	s := c.Series(10 * sim.Millisecond)
	if got := s.Rates[5] * 0.001; !almost(got, 42, 1e-9) {
		t.Errorf("point bytes = %v, want 42", got)
	}
}

func TestCounterZeroFillsIdleTail(t *testing.T) {
	c := NewCounter("x", 100*sim.Millisecond)
	c.Add(0, 100*sim.Millisecond, 1e9)
	st := c.Stats(sim.Second)
	// 1 GB over 1 s total -> avg 1 GB/s, peak 10 GB/s.
	if !almost(st.Avg, 1e9, 1e3) {
		t.Errorf("avg = %v, want 1e9", st.Avg)
	}
	if !almost(st.Peak, 10e9, 1e3) {
		t.Errorf("peak = %v, want 10e9", st.Peak)
	}
}

func TestCounterReset(t *testing.T) {
	c := NewCounter("x", 0)
	c.Add(0, DefaultWindow, 100)
	c.Reset()
	if c.Total() != 0 || len(c.Series(DefaultWindow).Rates) != 1 {
		t.Error("reset did not clear counter")
	}
	if c.Series(DefaultWindow).Rates[0] != 0 {
		t.Error("reset left residual rate")
	}
}

func TestCounterPanicsOnBadInput(t *testing.T) {
	c := NewCounter("x", 0)
	for name, fn := range map[string]func(){
		"negative bytes":    func() { c.Add(0, 1, -1) },
		"inverted interval": func() { c.Add(10, 5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: total bytes recorded equals the sum over window buckets,
// regardless of how intervals land on window boundaries.
func TestCounterConservationProperty(t *testing.T) {
	f := func(spans []struct {
		From  uint16
		Len   uint16
		Bytes uint32
	}) bool {
		c := NewCounter("x", 7*sim.Millisecond)
		var want float64
		var end sim.Time
		for _, sp := range spans {
			from := sim.Time(sp.From) * sim.Microsecond * 50
			to := from + sim.Time(sp.Len)*sim.Microsecond*50
			c.Add(from, to, float64(sp.Bytes))
			want += float64(sp.Bytes)
			if to > end {
				end = to
			}
		}
		s := c.Series(end + c.Window())
		got := 0.0
		for _, r := range s.Rates {
			got += r * c.Window().ToSeconds()
		}
		return almost(got, want, 1e-3*(want+1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStatsOfKnownSeries(t *testing.T) {
	s := Series{Window: sim.Second, Rates: []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}
	st := s.Stats()
	if !almost(st.Avg, 5.5, 1e-9) {
		t.Errorf("avg = %v, want 5.5", st.Avg)
	}
	if !almost(st.P90, 9, 1e-9) {
		t.Errorf("p90 = %v, want 9", st.P90)
	}
	if !almost(st.Peak, 10, 1e-9) {
		t.Errorf("peak = %v, want 10", st.Peak)
	}
}

func TestPercentileEdges(t *testing.T) {
	s := Series{Window: sim.Second, Rates: []float64{3, 1, 2}}
	if s.Percentile(0) != 1 {
		t.Errorf("p0 = %v, want 1", s.Percentile(0))
	}
	if s.Percentile(100) != 3 {
		t.Errorf("p100 = %v, want 3", s.Percentile(100))
	}
	if (Series{}).Percentile(50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

// Property: for any series, Avg <= P90 is not guaranteed, but
// min <= Avg <= Peak and P90 <= Peak always hold.
func TestStatsOrderingProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		rates := make([]float64, len(raw))
		minR := math.MaxFloat64
		for i, v := range raw {
			rates[i] = float64(v)
			if rates[i] < minR {
				minR = rates[i]
			}
		}
		st := Series{Window: sim.Second, Rates: rates}.Stats()
		return st.Avg >= minR-1e-9 && st.Avg <= st.Peak+1e-9 && st.P90 <= st.Peak+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSeriesSum(t *testing.T) {
	a := Series{Window: sim.Second, Rates: []float64{1, 2}}
	b := Series{Window: sim.Second, Rates: []float64{10, 20, 30}}
	got := a.Sum(b)
	want := []float64{11, 22, 30}
	for i := range want {
		if got.Rates[i] != want[i] {
			t.Errorf("sum[%d] = %v, want %v", i, got.Rates[i], want[i])
		}
	}
}

func TestSeriesSumEmptyOperands(t *testing.T) {
	a := Series{Window: sim.Second, Rates: []float64{1}}
	if got := (Series{}).Sum(a); len(got.Rates) != 1 || got.Rates[0] != 1 {
		t.Errorf("empty.Sum(a) = %v", got.Rates)
	}
	if got := a.Sum(Series{}); len(got.Rates) != 1 || got.Rates[0] != 1 {
		t.Errorf("a.Sum(empty) = %v", got.Rates)
	}
}

func TestSeriesSumWindowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("window mismatch did not panic")
		}
	}()
	a := Series{Window: sim.Second, Rates: []float64{1}}
	b := Series{Window: sim.Millisecond, Rates: []float64{1}}
	a.Sum(b)
}

func TestDownsample(t *testing.T) {
	s := Series{Window: sim.Second, Rates: []float64{1, 3, 5, 7, 9}}
	d := s.Downsample(2)
	want := []float64{2, 6, 9}
	if len(d.Rates) != len(want) {
		t.Fatalf("len = %d, want %d", len(d.Rates), len(want))
	}
	for i := range want {
		if !almost(d.Rates[i], want[i], 1e-9) {
			t.Errorf("ds[%d] = %v, want %v", i, d.Rates[i], want[i])
		}
	}
	if d.Window != 2*sim.Second {
		t.Errorf("window = %v, want 2s", d.Window)
	}
}

func TestSparkline(t *testing.T) {
	s := Series{Window: sim.Second, Rates: []float64{0, 5, 10}}
	line := s.Sparkline(10)
	if line == "" {
		t.Fatal("empty sparkline")
	}
	if !strings.ContainsRune(line, '█') {
		t.Errorf("sparkline %q missing full bar for peak", line)
	}
}

func TestStatsString(t *testing.T) {
	st := Stats{Avg: 1.5e9, P90: 2e9, Peak: 3e9}
	s := st.String()
	if !strings.Contains(s, "1.50") || !strings.Contains(s, "3.00") {
		t.Errorf("unexpected format: %q", s)
	}
	a, p, k := st.GBps()
	if a != 1.5 || p != 2 || k != 3 {
		t.Errorf("GBps = %v %v %v", a, p, k)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Avg: 1, P90: 2, Peak: 3}
	b := Stats{Avg: 10, P90: 20, Peak: 30}
	got := a.Add(b)
	if got.Avg != 11 || got.P90 != 22 || got.Peak != 33 {
		t.Errorf("Add = %+v", got)
	}
}
