package telemetry

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"llmbw/internal/sim"
)

func TestWriteCSV(t *testing.T) {
	a := Series{Window: sim.Second, Rates: []float64{1e9, 2e9}}
	b := Series{Window: sim.Second, Rates: []float64{3e9}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []string{"NVLink", "RoCE"}, []Series{a, b}); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // header + 2 data rows
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0][0] != "time_s" || rows[0][1] != "NVLink" || rows[0][2] != "RoCE" {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][1] != "1.0000" || rows[1][2] != "3.0000" {
		t.Errorf("first data row = %v", rows[1])
	}
	// Shorter series zero-padded.
	if rows[2][2] != "0.0000" {
		t.Errorf("padding = %v", rows[2])
	}
}

func TestWriteCSVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []string{"x"}, nil); err == nil {
		t.Error("label/series mismatch accepted")
	}
	if err := WriteCSV(&buf, nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	a := Series{Window: sim.Second, Rates: []float64{1}}
	b := Series{Window: sim.Millisecond, Rates: []float64{1}}
	if err := WriteCSV(&buf, []string{"a", "b"}, []Series{a, b}); err == nil {
		t.Error("mixed windows accepted")
	}
}
