package sim

import "fmt"

// Proc is a cooperative simulation process. A Proc runs on its own goroutine
// but is strictly interleaved with the event loop: whenever the Proc is
// executing, the engine is paused, and vice versa. All blocking operations
// (Sleep, Await, rendezvous) hand control back to the engine.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.Now() }

// Go starts a new process running body. It may be called before Run or from
// within an event or another process; the new process begins executing at the
// current virtual time, after the caller yields.
func (e *Engine) Go(name string, body func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.procs++
	e.Schedule(0, func() {
		go func() {
			defer func() {
				// Safe despite running on the process goroutine: the ctl
				// send below hands control back before the engine reads it.
				e.procs-- //lint:allow goroutine-shared-write — serialized by the ctl handshake
				e.ctl <- struct{}{}
			}()
			<-p.resume
			body(p)
		}()
		p.transfer()
	})
	return p
}

// transfer hands control to p and waits until it blocks or terminates. Must
// be called from engine context (inside an event callback).
func (p *Proc) transfer() {
	p.resume <- struct{}{}
	<-p.eng.ctl
}

// block suspends the process until something calls transfer on it. Must be
// called from process context.
func (p *Proc) block() {
	p.eng.ctl <- struct{}{}
	<-p.resume
}

// Wakeup resumes a blocked process from engine context (e.g. inside a
// scheduled event). Calling it while the process is running panics upstream
// via channel misuse, which indicates a model bug.
func (p *Proc) wakeup() { p.transfer() }

// Await calls start with a resume function, then blocks until that function
// is invoked. The resume function must be called exactly once, either
// synchronously from start itself or later from engine context (an event
// callback). This is the bridge between the process world and callback-style
// completions such as network flows.
func (p *Proc) Await(start func(resume func())) {
	fired := false
	blocked := false
	start(func() {
		if !blocked {
			// Completed synchronously before the process blocked;
			// no context switch is needed.
			fired = true
			return
		}
		p.wakeup()
	})
	if fired {
		return
	}
	blocked = true
	p.block()
}

// Waiter is a reusable single-completion latch for one process: the
// allocation-free counterpart of Await for hot loops. The owning process
// hands Done (or the stable DoneFunc value) to an asynchronous completion and
// then blocks in Wait; a Done that arrives before Wait (a synchronous
// completion) is remembered, exactly like Await's fired fast path. A Waiter
// serves any number of sequential waits, but only one at a time and only for
// the process it was created for.
type Waiter struct {
	p       *Proc
	fired   bool
	blocked bool
	done    func()
}

// NewWaiter returns a Waiter owned by p.
func NewWaiter(p *Proc) *Waiter {
	w := &Waiter{p: p}
	w.done = w.Done
	return w
}

// DoneFunc returns the stable func value bound to Done, so callers can pass
// the completion callback repeatedly without allocating a closure per wait.
func (w *Waiter) DoneFunc() func() { return w.done }

// Done signals the completion. Must be called exactly once per Wait, either
// synchronously before the owner blocks or later from engine context.
func (w *Waiter) Done() {
	if !w.blocked {
		w.fired = true
		return
	}
	w.blocked = false
	w.p.wakeup()
}

// Wait blocks the owning process until Done has been called, then resets the
// latch for the next round. Must be called from the owning process.
func (w *Waiter) Wait() {
	if w.fired {
		w.fired = false
		return
	}
	w.blocked = true
	w.p.block()
}

// Sleep suspends the process for d nanoseconds of virtual time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v", d))
	}
	if d == 0 {
		return
	}
	p.Await(func(resume func()) { p.eng.Schedule(d, resume) })
}

// Yield reschedules the process at the current time, letting other events and
// processes with the same timestamp run first.
func (p *Proc) Yield() {
	p.Await(func(resume func()) { p.eng.Schedule(0, resume) })
}

// WaitGroup is a completion counter for processes, analogous to
// sync.WaitGroup but driven by virtual time.
type WaitGroup struct {
	n       int
	waiters []func()
}

// Add increments the counter.
func (w *WaitGroup) Add(n int) { w.n += n }

// Done decrements the counter; at zero all waiters resume. Must run in
// process or engine context.
func (w *WaitGroup) Done() {
	w.n--
	if w.n < 0 {
		panic("sim: WaitGroup counter below zero")
	}
	if w.n == 0 {
		ws := w.waiters
		w.waiters = nil
		for _, f := range ws {
			f()
		}
	}
}

// Wait blocks p until the counter reaches zero. Returns immediately if it is
// already zero.
func (w *WaitGroup) Wait(p *Proc) {
	if w.n == 0 {
		return
	}
	p.Await(func(resume func()) {
		w.waiters = append(w.waiters, func() { p.eng.Schedule(0, resume) })
	})
}

// Barrier synchronizes a fixed party of processes: each call to Wait blocks
// until all N parties have arrived, then all resume and the barrier resets
// for the next round.
type Barrier struct {
	N       int
	arrived int
	waiting []func()
}

// Wait blocks until all parties arrive.
func (b *Barrier) Wait(p *Proc) {
	if b.N <= 0 {
		panic("sim: barrier with no parties")
	}
	b.arrived++
	if b.arrived == b.N {
		b.arrived = 0
		ws := b.waiting
		b.waiting = nil
		for _, f := range ws {
			p.eng.Schedule(0, f)
		}
		return
	}
	p.Await(func(resume func()) {
		b.waiting = append(b.waiting, resume)
	})
}

// Rendezvous coordinates a leader-executed collective action among N
// processes: every party calls Do; the last arrival runs leader with a done
// callback, and when done fires all parties resume. This models operations
// (e.g. NCCL collectives) where all ranks participate but the simulation only
// needs to drive the flows once.
type Rendezvous struct {
	N       int
	arrived int
	waiting []func()
}

// Do blocks p until all N parties arrive; the final arrival invokes
// leader(done). All parties resume when done is called (from engine context).
func (r *Rendezvous) Do(p *Proc, leader func(done func())) {
	if r.N <= 0 {
		panic("sim: rendezvous with no parties")
	}
	if r.N == 1 {
		p.Await(leader)
		return
	}
	r.arrived++
	if r.arrived < r.N {
		p.Await(func(resume func()) {
			r.waiting = append(r.waiting, resume)
		})
		return
	}
	r.arrived = 0
	p.Await(func(resume func()) {
		waiters := r.waiting
		r.waiting = nil
		leader(func() {
			for _, f := range waiters {
				p.eng.Schedule(0, f)
			}
			resume()
		})
	})
}
