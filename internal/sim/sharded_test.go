package sim

import (
	"fmt"
	"testing"
)

// setSharded flips the execution-mode toggle for one test and restores it.
func setSharded(t *testing.T, v bool) {
	t.Helper()
	old := Sharded
	Sharded = v
	t.Cleanup(func() { Sharded = old })
}

// shardedNode is one partition of the determinism workload: it owns a
// deterministic rng, a log, and only ever mutates its own state, mirroring
// how real model code owns its partition's links and flows.
type shardedNode struct {
	se    *ShardedEngine
	peers []*shardedNode
	id    int
	rng   uint64
	log   []string
}

const nodeLookahead = Time(100)

func (nd *shardedNode) event(k int) {
	sh := nd.se.Shard(nd.id)
	nd.log = append(nd.log, fmt.Sprintf("%d/%d/%d", sh.Now(), nd.id, k))
	if k <= 0 {
		return
	}
	nd.rng = nd.rng*6364136223846793005 + 1442695040888963407
	r := nd.rng >> 33
	sh.Schedule(Time(r%53), func() { nd.event(k - 1) })
	if n := len(nd.peers); n > 1 && k%2 == 0 {
		to := nd.peers[(nd.id+1+int(r%uint64(n-1)))%n]
		kk := k - 1
		nd.se.Inject(nd.id, to.id, nodeLookahead+Time(r%91), func() { to.event(kk) })
	}
}

// buildWorkload wires n fully connected shards, each seeded with a chain of
// local events that fan out cross-shard injections.
func buildWorkload(n int) []*shardedNode {
	se := NewSharded(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				se.Connect(i, j, nodeLookahead)
			}
		}
	}
	nodes := make([]*shardedNode, n)
	for i := range nodes {
		nodes[i] = &shardedNode{se: se, id: i, rng: uint64(i)*2654435761 + 12345}
	}
	for _, nd := range nodes {
		nd.peers = nodes
		k := 20 + nd.id
		nd.se.Shard(nd.id).Schedule(Time(nd.id), func() { nd.event(k) })
	}
	return nodes
}

// TestShardedMatchesSerial is the core byte-identity A/B: the parallel
// windows must hand every shard the exact event sequence the serial merge
// loop produces, at every shard count.
func TestShardedMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		run := func(parallel bool) ([][]string, Time) {
			setSharded(t, parallel)
			nodes := buildWorkload(n)
			se := nodes[0].se
			defer se.Close()
			end := se.Run()
			if p := se.Pending(); p != 0 {
				t.Fatalf("n=%d parallel=%v: %d events left after Run", n, parallel, p)
			}
			logs := make([][]string, n)
			for i, nd := range nodes {
				logs[i] = nd.log
			}
			return logs, end
		}
		serial, serialEnd := run(false)
		parallel, parallelEnd := run(true)
		if serialEnd != parallelEnd {
			t.Errorf("n=%d: final time %v (parallel) != %v (serial)", n, parallelEnd, serialEnd)
		}
		for i := range serial {
			if len(serial[i]) != len(parallel[i]) {
				t.Fatalf("n=%d shard %d: %d events parallel vs %d serial",
					n, i, len(parallel[i]), len(serial[i]))
			}
			for j := range serial[i] {
				if serial[i][j] != parallel[i][j] {
					t.Fatalf("n=%d shard %d event %d: parallel %q != serial %q",
						n, i, j, parallel[i][j], serial[i][j])
				}
			}
		}
	}
}

// TestShardedRunUntilMatchesSerial drives the same workload through sliced
// RunUntil calls and checks the Engine.RunUntil clock-jump contract holds
// identically in both modes.
func TestShardedRunUntilMatchesSerial(t *testing.T) {
	run := func(parallel bool) []Time {
		setSharded(t, parallel)
		nodes := buildWorkload(3)
		se := nodes[0].se
		defer se.Close()
		var marks []Time
		for dl := Time(200); se.Pending() > 0; dl += 200 {
			marks = append(marks, se.RunUntil(dl))
		}
		return marks
	}
	serial := run(false)
	parallel := run(true)
	if len(serial) != len(parallel) {
		t.Fatalf("slice counts differ: %d parallel vs %d serial", len(parallel), len(serial))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("slice %d: RunUntil returned %v parallel vs %v serial", i, parallel[i], serial[i])
		}
	}
	// While work remains beyond the deadline the clock must land on it...
	if len(serial) < 2 || serial[0] != 200 {
		t.Errorf("first slice returned %v, want the 200ns deadline", serial[0])
	}
	// ...and the drained final slice must stay at the last event.
	if last := serial[len(serial)-1]; last%200 == 0 {
		t.Errorf("final slice returned the deadline %v, want the last event time", last)
	}
}

// TestInjectionOrdering pins the merge order of same-timestamp arrivals on
// one shard: local events first (their seq is below the injection band),
// then injections in source-shard-major order — in both execution modes.
func TestInjectionOrdering(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		setSharded(t, parallel)
		se := NewSharded(3)
		defer se.Close()
		const L = Time(50)
		se.Connect(1, 0, L-10)
		se.Connect(2, 0, L)
		var order []string
		// Shard 2's seed runs before shard 1's (lower timestamp), so its
		// injection is buffered first; the seq band must still deliver
		// shard 1's injection ahead of shard 2's.
		se.Shard(2).Schedule(0, func() {
			se.Inject(2, 0, L, func() { order = append(order, "from2") })
		})
		se.Shard(1).ScheduleAt(1, func() {
			se.Inject(1, 0, L-1, func() { order = append(order, "from1") })
		})
		se.Shard(0).ScheduleAt(L, func() { order = append(order, "local") })
		se.Run()
		want := []string{"local", "from1", "from2"}
		if fmt.Sprint(order) != fmt.Sprint(want) {
			t.Errorf("parallel=%v: arrival order %v, want %v", parallel, order, want)
		}
	}
}

// TestInjectContractPanics locks in the guard rails: undeclared edges,
// delays below the declared lookahead, and bad shard indices all panic
// rather than silently break determinism.
func TestInjectContractPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	se := NewSharded(2)
	se.Connect(0, 1, 10)
	mustPanic("inject without edge", func() { se.Inject(1, 0, 10, func() {}) })
	mustPanic("inject below lookahead", func() { se.Inject(0, 1, 9, func() {}) })
	mustPanic("inject nil fn", func() { se.Inject(0, 1, 10, nil) })
	mustPanic("inject bad shard", func() { se.Inject(0, 7, 10, func() {}) })
	mustPanic("connect self edge", func() { se.Connect(0, 0, 10) })
	mustPanic("connect zero lookahead", func() { se.Connect(1, 0, 0) })
	mustPanic("zero shards", func() { NewSharded(0) })
}

// TestLookaheadAccessors covers Connect's tighter-edge-wins rule.
func TestLookaheadAccessors(t *testing.T) {
	se := NewSharded(2)
	if _, ok := se.Lookahead(0, 1); ok {
		t.Error("edge reported before Connect")
	}
	se.Connect(0, 1, 30)
	se.Connect(0, 1, 50) // looser: ignored
	if la, ok := se.Lookahead(0, 1); !ok || la != 30 {
		t.Errorf("lookahead = %v,%v after 30 then 50, want 30,true", la, ok)
	}
	se.Connect(0, 1, 20)
	if la, _ := se.Lookahead(0, 1); la != 20 {
		t.Errorf("lookahead = %v after tightening to 20", la)
	}
}

// TestShardedProcs runs cooperative processes on two shards with a
// cross-shard hand-off, in both modes: a polling proc on shard 1 is released
// by an injection from a proc on shard 0. The release lands at t=1500
// together with the gate's own wakeup; the local wakeup's seq is below the
// injection band, so the gate deterministically sees the flag one poll later.
func TestShardedProcs(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		setSharded(t, parallel)
		se := NewSharded(2)
		defer se.Close()
		const L = Time(1000)
		se.Connect(0, 1, L)
		released := false // shard-1-owned
		var doneAt Time
		se.Shard(1).Go("gate", func(p *Proc) {
			for !released {
				p.Sleep(10)
			}
			doneAt = p.Now()
		})
		se.Shard(0).Go("producer", func(p *Proc) {
			p.Sleep(500)
			se.Inject(0, 1, L, func() { released = true })
		})
		if se.LiveProcs() != 2 {
			t.Fatalf("parallel=%v: LiveProcs = %d before Run, want 2", parallel, se.LiveProcs())
		}
		se.Run()
		if se.LiveProcs() != 0 {
			t.Fatalf("parallel=%v: LiveProcs = %d after Run, want 0", parallel, se.LiveProcs())
		}
		if doneAt != 1510 {
			t.Errorf("parallel=%v: gate released at %v, want 1510ns", parallel, doneAt)
		}
	}
}

// TestShardedStop checks Stop ends a run early in both modes and that a
// subsequent Run resumes the remaining events. The lookahead edges bound the
// first window below shard 1's event so neither mode runs it eagerly.
func TestShardedStop(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		setSharded(t, parallel)
		se := NewSharded(2)
		defer se.Close()
		se.Connect(0, 1, 100)
		se.Connect(1, 0, 100)
		ran0, ran1 := false, false
		se.Shard(0).Schedule(10, func() { ran0 = true; se.Stop() })
		se.Shard(1).Schedule(10_000, func() { ran1 = true })
		se.Run()
		if !ran0 || ran1 || se.Pending() != 1 {
			t.Fatalf("parallel=%v: Stop did not end the run early (ran0=%v ran1=%v pending=%d)",
				parallel, ran0, ran1, se.Pending())
		}
		se.Run()
		if !ran1 || se.Pending() != 0 {
			t.Fatalf("parallel=%v: resume after Stop left ran1=%v, %d pending",
				parallel, ran1, se.Pending())
		}
	}
}

// TestShardedCloseIdempotent: Close twice, then run again (workers must
// relaunch lazily), then close again.
func TestShardedCloseIdempotent(t *testing.T) {
	setSharded(t, true)
	se := NewSharded(2)
	se.Connect(0, 1, 10)
	se.Shard(0).Schedule(0, func() { se.Inject(0, 1, 10, func() {}) })
	se.Run()
	se.Close()
	se.Close()
	se.Shard(0).Schedule(5, func() { se.Inject(0, 1, 10, func() {}) })
	if end := se.Run(); end != se.Shard(1).Now() {
		t.Errorf("run after Close ended at %v, want shard 1 clock %v", end, se.Shard(1).Now())
	}
	se.Close()
}

// TestShardedSteadyStateAllocs pins the parallel path's steady state to zero
// allocations per synchronization round: pre-bound ping-pong closures
// crossing shards every window, driven through sliced RunUntil calls.
func TestShardedSteadyStateAllocs(t *testing.T) {
	setSharded(t, true)
	se := NewSharded(2)
	defer se.Close()
	const L = Time(1000)
	se.Connect(0, 1, L)
	se.Connect(1, 0, L)
	var ping, pong func()
	ping = func() { se.Inject(0, 1, L, pong) }
	pong = func() { se.Inject(1, 0, L, ping) }
	se.Shard(0).Schedule(0, ping)
	se.RunUntil(64 * L) // warm the heaps, outboxes and workers
	deadline := se.Now()
	allocs := testing.AllocsPerRun(50, func() {
		deadline += 16 * L
		se.RunUntil(deadline)
	})
	if allocs != 0 {
		t.Errorf("steady-state sharded round allocates %.1f times per RunUntil slice, want 0", allocs)
	}
}
