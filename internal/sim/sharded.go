package sim

import (
	"fmt"
	"sync/atomic"
)

// Sharded gates the parallel execution path of ShardedEngine. When true, Run
// advances shards concurrently in conservative lookahead windows on worker
// goroutines; when false, the same sharded program is replayed on one
// goroutine by a serial merge loop in global (time, shard, seq) order. The
// two paths are byte-identical in every observable (traces, telemetry,
// summaries), which is the A/B contract this toggle exists to test — the
// same idiom as fabric.BatchAdmission, collective.CompiledPlans and
// train.CompiledSchedules.
var Sharded = true

const (
	// maxTime is one past the largest deadline Run uses; it doubles as the
	// "no event / unreachable" sentinel in horizon arithmetic.
	maxTime Time = 1 << 62

	// Cross-shard injections get sequence numbers in a band above every
	// locally assigned one (Engine.seq counts up from 1 and can never reach
	// 1<<62), encoded as injBand | from<<injShardShift | perSourceCounter.
	// The seq is therefore a pure function of the injection's content —
	// source shard and that source's injection count, both of which evolve
	// identically in serial and parallel execution — so same-time deliveries
	// order deterministically: after all local events, then shard-major.
	injBand       = int64(1) << 62
	injShardShift = 44
	maxInjSeq     = int64(1) << injShardShift

	// MaxShards bounds the shard count so the source index fits between the
	// injection band bit and the per-source counter.
	MaxShards = 1 << 18
)

// injection is a cross-shard event delivery buffered in a source-owned
// outbox during a parallel window and drained into the target shard's heap
// at the barrier.
type injection struct {
	to  int
	at  Time
	seq int64
	fn  func()
}

// ShardedEngine partitions one simulation across per-partition sub-engines
// that advance under conservative lookahead. Each shard owns its links,
// flows and processes outright; the only cross-shard influence is an
// explicit Inject over a Connect-declared edge, whose lookahead lower-bounds
// the delivery delay. That bound is what makes windows safe: shard i may
// execute every event strictly before
//
//	h(i) = min( min_{j≠i} next(j) + dist(j,i),  next(i) + cyc(i) )
//
// where next(j) is shard j's earliest pending event, dist is the all-pairs
// shortest path over declared lookaheads, and cyc(i) is the shortest cycle
// through i — the earliest time shard i's own future sends could loop back
// via other shards. No injection can arrive below h(i), so the window's
// event order equals the serial merge order and the two modes produce
// byte-identical output.
type ShardedEngine struct {
	shards []*Engine

	la        [][]Time // declared lookahead edges; maxTime = not connected
	dist      [][]Time // all-pairs shortest path over la
	cyc       []Time   // shortest cycle through each shard
	distDirty bool

	injSeq []int64 // per-source injection counters (source-owned)

	// inWindow is set by the coordinator strictly outside any window, so
	// shard code reads it race-free: true routes Inject into the source's
	// outbox, false (serial mode, setup, barrier) delivers directly.
	inWindow bool
	outbox   [][]injection // per-source; slices reused round to round

	// Parallel machinery: one persistent worker per shard, dispatched a
	// window bound over its own channel and reporting back on done. The
	// channels are the only cross-goroutine hand-off; everything a worker
	// touches (its engine, injSeq[i], outbox[i]) is owned by shard i.
	work      []chan Time
	done      chan int
	workersUp bool

	// stopReq is the engine-wide Stop request. It is atomic because model
	// code may call Stop from any shard's window while other workers run;
	// the coordinator honors it at the next barrier (windows are the finest
	// granularity at which the parallel engine can observe anything).
	stopReq atomic.Bool

	next []Time // scratch: earliest pending event per shard
}

// NewSharded returns a sharded engine with n sub-engines and no connectivity:
// shards are fully independent until Connect declares lookahead edges.
func NewSharded(n int) *ShardedEngine {
	if n < 1 || n > MaxShards {
		panic(fmt.Sprintf("sim: shard count %d outside 1-%d", n, MaxShards))
	}
	se := &ShardedEngine{
		shards: make([]*Engine, n),
		la:     make([][]Time, n),
		dist:   make([][]Time, n),
		cyc:    make([]Time, n),
		injSeq: make([]int64, n),
		outbox: make([][]injection, n),
		work:   make([]chan Time, n),
		done:   make(chan int, n),
		next:   make([]Time, n),
	}
	for i := range se.shards {
		se.shards[i] = New()
		se.la[i] = make([]Time, n)
		se.dist[i] = make([]Time, n)
		for j := range se.la[i] {
			se.la[i][j] = maxTime
		}
	}
	se.distDirty = true
	return se
}

// Shard returns sub-engine i. Model code builds its partition's state on the
// shard exactly as it would on a standalone Engine.
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// Shards returns the shard count.
func (se *ShardedEngine) Shards() int { return len(se.shards) }

// Connect declares that shard from may inject events into shard to with at
// least lookahead delay. Tighter declarations win. The lookahead must be
// positive: a zero-delay edge would collapse the window to nothing (and a
// zero-latency coupling — e.g. two shards sharing a fluid fair-share
// component — cannot be sharded conservatively at all; colocate it).
func (se *ShardedEngine) Connect(from, to int, lookahead Time) {
	se.checkShard(from)
	se.checkShard(to)
	if from == to {
		panic("sim: self lookahead edge is implicit")
	}
	if lookahead < Nanosecond {
		panic(fmt.Sprintf("sim: lookahead %v must be positive", lookahead))
	}
	if se.inWindow {
		panic("sim: Connect during a parallel window")
	}
	if lookahead < se.la[from][to] {
		se.la[from][to] = lookahead
		se.distDirty = true
	}
}

// Lookahead returns the declared edge lookahead, or false when the edge was
// never Connected.
func (se *ShardedEngine) Lookahead(from, to int) (Time, bool) {
	se.checkShard(from)
	se.checkShard(to)
	if se.la[from][to] >= maxTime {
		return 0, false
	}
	return se.la[from][to], true
}

// Inject schedules fn on shard to, delay nanoseconds after shard from's
// clock. It must be called from shard from's execution context (an event or
// process running on that shard). The delay must respect the Connected
// edge's lookahead — that promise is the entire basis of the parallel mode's
// correctness, so violations panic rather than corrupt determinism. A
// same-shard injection degenerates to a plain Schedule.
func (se *ShardedEngine) Inject(from, to int, delay Time, fn func()) {
	se.checkShard(from)
	se.checkShard(to)
	if fn == nil {
		panic("sim: nil injection")
	}
	if from == to {
		se.shards[from].Schedule(delay, fn)
		return
	}
	la := se.la[from][to]
	if la >= maxTime {
		panic(fmt.Sprintf("sim: inject %d->%d without a Connect edge", from, to))
	}
	if delay < la {
		panic(fmt.Sprintf("sim: inject %d->%d delay %v below lookahead %v", from, to, delay, la))
	}
	n := se.injSeq[from]
	if n >= maxInjSeq {
		panic(fmt.Sprintf("sim: shard %d exceeded %d injections", from, maxInjSeq))
	}
	se.injSeq[from] = n + 1
	at := se.shards[from].now + delay
	seq := injBand | int64(from)<<injShardShift | n
	if se.inWindow {
		// Source-owned buffer: the target shard may be mid-window on
		// another goroutine, so the delivery waits for the barrier.
		se.outbox[from] = append(se.outbox[from], injection{to: to, at: at, seq: seq, fn: fn})
		return
	}
	se.shards[to].inject(at, seq, fn)
}

// Now returns the maximum shard clock — the virtual time the merged
// simulation has reached.
func (se *ShardedEngine) Now() Time {
	var t Time
	for _, sh := range se.shards {
		if sh.now > t {
			t = sh.now
		}
	}
	return t
}

// Pending sums pending events across shards (outboxes are always empty
// between runs).
func (se *ShardedEngine) Pending() int {
	n := 0
	for _, sh := range se.shards {
		n += sh.Pending()
	}
	return n
}

// LiveProcs sums live processes across shards.
func (se *ShardedEngine) LiveProcs() int {
	n := 0
	for _, sh := range se.shards {
		n += sh.LiveProcs()
	}
	return n
}

// Stop makes Run return early: after the current event in serial mode, at
// the current window barrier in parallel mode. Pending events are kept and a
// subsequent Run resumes them, like Engine.Stop. (A shard's own Engine.Stop
// also ends the run, additionally cutting that shard's window short.)
func (se *ShardedEngine) Stop() { se.stopReq.Store(true) }

// Run executes events until every shard drains or Stop is called, returning
// the final virtual time.
func (se *ShardedEngine) Run() Time { return se.RunUntil(1<<62 - 1) }

// RunUntil executes events with timestamps <= deadline, with the same
// clock-jump contract as Engine.RunUntil: every shard clock lands on the
// deadline when work remains beyond it, and stays at the last executed event
// when the simulation drained first.
func (se *ShardedEngine) RunUntil(deadline Time) Time {
	if deadline >= maxTime {
		panic(fmt.Sprintf("sim: deadline %d overflows the horizon arithmetic", int64(deadline)))
	}
	for _, sh := range se.shards {
		sh.stopped = false
	}
	se.stopReq.Store(false)
	if !Sharded {
		return se.runSerial(deadline)
	}
	return se.runParallel(deadline)
}

// runSerial replays the sharded program on the calling goroutine in global
// (time, shard, seq) order — the reference order parallel windows must
// reproduce. Within a shard the heap already yields (time, seq) order;
// across shards the loop breaks timestamp ties by shard index.
func (se *ShardedEngine) runSerial(deadline Time) Time {
	for {
		best := -1
		var bt Time
		for i, sh := range se.shards {
			if t, ok := sh.peek(); ok && (best < 0 || t < bt) {
				best, bt = i, t
			}
		}
		if best < 0 {
			return se.Now() // drained
		}
		if bt > deadline {
			return se.jumpTo(deadline)
		}
		sh := se.shards[best]
		ev := sh.pop()
		sh.now = ev.at
		ev.fn()
		if sh.stopped || se.stopReq.Load() {
			return se.Now()
		}
	}
}

// runParallel advances shards in conservative bounded-lag windows: compute
// each shard's horizon from every shard's earliest pending event and the
// lookahead distances, dispatch shards with work below their horizon to
// their workers, barrier, drain outboxes, repeat. Progress is guaranteed —
// the globally earliest event is always below its shard's horizon because
// every lookahead is at least 1ns.
func (se *ShardedEngine) runParallel(deadline Time) Time {
	se.ensureWorkers()
	se.refreshDist()
	limit := deadline + 1 // windows are strict-<, so at <= deadline executes
	for {
		work := false
		for i, sh := range se.shards {
			if t, ok := sh.peek(); ok {
				se.next[i] = t
				if t <= deadline {
					work = true
				}
			} else {
				se.next[i] = maxTime
			}
		}
		if !work {
			if se.anyPending() {
				return se.jumpTo(deadline)
			}
			return se.Now()
		}
		dispatched := 0
		se.inWindow = true
		for i := range se.shards {
			h := se.horizon(i)
			if h > limit {
				h = limit
			}
			if se.next[i] < h {
				se.work[i] <- h
				dispatched++
			}
		}
		for k := 0; k < dispatched; k++ {
			<-se.done
		}
		se.inWindow = false
		se.drainOutboxes()
		if se.stopReq.Load() {
			return se.Now()
		}
		for _, sh := range se.shards {
			if sh.stopped {
				return se.Now()
			}
		}
	}
}

// horizon returns the earliest virtual time at which a not-yet-executed
// event anywhere could influence shard i. Forwarding chains are covered by
// the shortest-path distances: an event k will relay via j arrives at i no
// earlier than next(k) + dist(k,j) + dist(j,i) >= next(k) + dist(k,i).
func (se *ShardedEngine) horizon(i int) Time {
	h := maxTime
	for j := range se.shards {
		if j == i {
			continue
		}
		if d := se.dist[j][i]; d < maxTime && se.next[j] < maxTime {
			if c := se.next[j] + d; c < h {
				h = c
			}
		}
	}
	// Shard i's own future sends can loop back through other shards: even
	// with every neighbor idle, events of i beyond next(i) + cyc(i) are not
	// safe. With no cycle through i (e.g. no edges at all), cyc is maxTime
	// and an idle neighborhood lets i run to completion in one window.
	if cy := se.cyc[i]; cy < maxTime && se.next[i] < maxTime {
		if c := se.next[i] + cy; c < h {
			h = c
		}
	}
	return h
}

// refreshDist recomputes all-pairs shortest paths over the lookahead edges
// (Floyd-Warshall). The diagonal is seeded unreachable, not zero, so the
// recurrence computes the shortest closed walk through each shard — with
// positive weights that is exactly the shortest cycle, which the horizon's
// self-feedback term needs.
func (se *ShardedEngine) refreshDist() {
	if !se.distDirty {
		return
	}
	se.distDirty = false
	n := len(se.shards)
	for i := 0; i < n; i++ {
		copy(se.dist[i], se.la[i])
		se.dist[i][i] = maxTime
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := se.dist[i][k]
			if dik >= maxTime {
				continue
			}
			for j := 0; j < n; j++ {
				if dkj := se.dist[k][j]; dkj < maxTime && dik+dkj < se.dist[i][j] {
					se.dist[i][j] = dik + dkj
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		se.cyc[i] = se.dist[i][i]
	}
}

// drainOutboxes delivers the windows' buffered injections in source-shard
// order. The horizon guarantee makes every delivery land at or after its
// target's clock; the content-derived seq makes the resulting heap order
// independent of which shard's outbox drained first.
func (se *ShardedEngine) drainOutboxes() {
	for from := range se.outbox {
		ob := se.outbox[from]
		for idx := range ob {
			inj := &ob[idx]
			se.shards[inj.to].inject(inj.at, inj.seq, inj.fn)
			*inj = injection{} // release the fn reference
		}
		se.outbox[from] = ob[:0]
	}
}

// ensureWorkers launches one persistent goroutine per shard. Close undoes
// this; a later parallel run relaunches lazily.
func (se *ShardedEngine) ensureWorkers() {
	if se.workersUp {
		return
	}
	se.workersUp = true
	for i := range se.shards {
		se.work[i] = make(chan Time, 1)
		go se.worker(i)
	}
}

// worker executes shard i's windows. The work channel hands it a bound, the
// done channel hands completion back to the coordinator; shard i's engine,
// counters and outbox are owned by this goroutine for the window's duration.
func (se *ShardedEngine) worker(i int) {
	sh := se.shards[i]
	for bound := range se.work[i] {
		sh.runWindow(bound)
		se.done <- i
	}
}

// Close stops the worker goroutines. It is idempotent, safe on a never-run
// engine, and does not invalidate the engine: serial runs still work and a
// parallel run relaunches workers.
func (se *ShardedEngine) Close() {
	if !se.workersUp {
		return
	}
	se.workersUp = false
	for i := range se.work {
		close(se.work[i])
	}
}

// jumpTo lands every shard clock on the deadline (work remains beyond it)
// and returns it — the multi-shard version of Engine.RunUntil's clock jump.
func (se *ShardedEngine) jumpTo(deadline Time) Time {
	for _, sh := range se.shards {
		if sh.now < deadline {
			sh.now = deadline
		}
	}
	return deadline
}

func (se *ShardedEngine) anyPending() bool {
	for _, sh := range se.shards {
		if len(sh.events) > 0 {
			return true
		}
	}
	return false
}

func (se *ShardedEngine) checkShard(i int) {
	if i < 0 || i >= len(se.shards) {
		panic(fmt.Sprintf("sim: shard %d outside 0-%d", i, len(se.shards)-1))
	}
}
