package sim_test

import (
	"fmt"

	"llmbw/internal/sim"
)

// Two processes coordinate through a barrier in virtual time.
func Example() {
	eng := sim.New()
	b := &sim.Barrier{N: 2}
	for i, d := range []sim.Time{10 * sim.Millisecond, 30 * sim.Millisecond} {
		i, d := i, d
		eng.Go(fmt.Sprintf("worker%d", i), func(p *sim.Proc) {
			p.Sleep(d)
			b.Wait(p)
			fmt.Printf("worker%d resumed at %v\n", i, p.Now())
		})
	}
	eng.Run()
	// The last arrival (worker1) releases the barrier and continues first;
	// earlier arrivals resume on the next scheduler tick.
	// Output:
	// worker1 resumed at 30.000ms
	// worker0 resumed at 30.000ms
}
