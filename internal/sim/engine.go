// Package sim provides a deterministic discrete-event simulation engine with
// cooperative processes. It is the substrate on which the cluster fabric,
// training strategies and stress tests run.
//
// The engine owns a virtual clock measured in nanoseconds. Events are
// callbacks scheduled at absolute virtual times and executed in (time, seq)
// order, so runs are fully deterministic. Processes (Proc) are goroutines
// that interleave cooperatively with the event loop: at any moment either the
// engine or exactly one process is running, which keeps the simulation
// race-free without locks in model code.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a virtual timestamp or duration in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a floating-point number of seconds to a Time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// ToSeconds converts t to floating-point seconds.
func (t Time) ToSeconds() float64 { return float64(t) / float64(Second) }

// String renders the time with a human-friendly unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.ToSeconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with New.
type Engine struct {
	now    Time
	events eventHeap
	seq    int64

	// ctl is signalled by a process whenever it blocks or terminates,
	// returning control to the event loop.
	ctl chan struct{}

	procs   int // live processes (for leak detection)
	stopped bool
}

// New returns an engine with the clock at zero.
func New() *Engine {
	return &Engine{ctl: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// ScheduleAt registers fn to run at absolute virtual time t. Scheduling in
// the past panics: it would make the clock non-monotonic.
func (e *Engine) ScheduleAt(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// Schedule registers fn to run delay nanoseconds from now.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.ScheduleAt(e.now+delay, fn)
}

// Stop makes Run return after the current event completes. Pending events are
// kept; a subsequent Run resumes them.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called. It returns
// the final virtual time.
func (e *Engine) Run() Time { return e.RunUntil(1<<62 - 1) }

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to deadline if it advanced that far. It returns the final virtual time.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.at > deadline {
			e.now = deadline
			return e.now
		}
		heap.Pop(&e.events)
		e.now = next.at
		next.fn()
	}
	if e.now < deadline && len(e.events) == 0 {
		// Clock does not jump to deadline when the simulation simply
		// ran out of work; callers can distinguish the two outcomes.
		return e.now
	}
	return e.now
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// LiveProcs reports the number of processes that have started and not yet
// returned. A nonzero value after Run means processes are deadlocked waiting
// for wakeups that never came.
func (e *Engine) LiveProcs() int { return e.procs }
