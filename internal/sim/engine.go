// Package sim provides a deterministic discrete-event simulation engine with
// cooperative processes. It is the substrate on which the cluster fabric,
// training strategies and stress tests run.
//
// The engine owns a virtual clock measured in nanoseconds. Events are
// callbacks scheduled at absolute virtual times and executed in (time, seq)
// order, so runs are fully deterministic. Processes (Proc) are goroutines
// that interleave cooperatively with the event loop: at any moment either the
// engine or exactly one process is running, which keeps the simulation
// race-free without locks in model code.
package sim

import (
	"fmt"
)

// Time is a virtual timestamp or duration in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a floating-point number of seconds to a Time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// ToSeconds converts t to floating-point seconds.
func (t Time) ToSeconds() float64 { return float64(t) / float64(Second) }

// String renders the time with a human-friendly unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.ToSeconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

type event struct {
	at  Time
	seq int64
	fn  func()
}

// less orders events by (time, seq): same-time events run in schedule order.
func (a event) less(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapArity is the branching factor of the event queue. A 4-ary heap is
// shallower than a binary one and keeps sibling comparisons within one or two
// cache lines, which matters because scheduling is the simulator's innermost
// loop. Events are stored by value in a single slice, so the queue performs
// no per-event allocation: popped slots are reused by later pushes and the
// slice itself is the free list.
const heapArity = 4

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with New.
type Engine struct {
	now    Time
	events []event // heapArity-ary min-heap ordered by event.less
	seq    int64

	// ctl is signalled by a process whenever it blocks or terminates,
	// returning control to the event loop.
	ctl chan struct{}

	procs   int // live processes (for leak detection)
	stopped bool
}

// push inserts ev into the heap.
func (e *Engine) push(ev event) {
	e.events = append(e.events, ev) //lint:allow steady-alloc — pop truncates, not nils: the heap's backing reaches steady capacity
	i := len(e.events) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !ev.less(e.events[parent]) {
			break
		}
		e.events[i] = e.events[parent]
		i = parent
	}
	e.events[i] = ev
}

// pop removes and returns the minimum event. The heap must be non-empty.
func (e *Engine) pop() event {
	root := e.events[0]
	n := len(e.events) - 1
	last := e.events[n]
	e.events[n] = event{} // release the fn reference for the GC
	e.events = e.events[:n]
	if n > 0 {
		i := 0
		for {
			first := heapArity*i + 1
			if first >= n {
				break
			}
			min := first
			end := first + heapArity
			if end > n {
				end = n
			}
			for j := first + 1; j < end; j++ {
				if e.events[j].less(e.events[min]) {
					min = j
				}
			}
			if !e.events[min].less(last) {
				break
			}
			e.events[i] = e.events[min]
			i = min
		}
		e.events[i] = last
	}
	return root
}

// New returns an engine with the clock at zero.
func New() *Engine {
	return &Engine{ctl: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// ScheduleAt registers fn to run at absolute virtual time t. Scheduling in
// the past panics: it would make the clock non-monotonic.
func (e *Engine) ScheduleAt(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// Schedule registers fn to run delay nanoseconds from now.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.ScheduleAt(e.now+delay, fn)
}

// Stop makes Run return after the current event completes. Pending events are
// kept; a subsequent Run resumes them.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called. It returns
// the final virtual time.
func (e *Engine) Run() Time { return e.RunUntil(1<<62 - 1) }

// RunUntil executes events with timestamps <= deadline. It returns the final
// virtual time, which is the deadline when work remains beyond it, or the
// time of the last executed event when the queue drained (or Stop was called)
// first — the clock does not jump to the deadline when the simulation simply
// ran out of work, so callers can distinguish the two outcomes.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].at > deadline {
			// Reached the horizon with work still queued: jump the clock
			// to the deadline and leave the remaining events pending.
			e.now = deadline
			return e.now
		}
		ev := e.pop()
		e.now = ev.at
		ev.fn()
	}
	// Drained early or stopped: the clock stays at the last executed event.
	return e.now
}

// peek returns the timestamp of the next pending event; ok is false when the
// queue is empty.
func (e *Engine) peek() (Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// runWindow executes events with timestamps strictly below bound, leaving
// later events pending. Unlike RunUntil it never jumps the clock to the
// bound: the clock ends at the last executed event (unchanged when none ran).
// It is the building block of the sharded engine's conservative windows,
// where the bound is a horizon no cross-shard influence can penetrate.
func (e *Engine) runWindow(bound Time) {
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].at >= bound {
			return
		}
		ev := e.pop()
		e.now = ev.at
		ev.fn()
	}
}

// inject enqueues a cross-shard delivery. The sequence number comes from the
// sharded engine's deterministic injection numbering (a band above every
// locally assigned sequence) rather than this engine's own counter, so the
// delivery order is a function of the injection's content, not of which
// execution mode or interleaving produced it.
func (e *Engine) inject(at Time, seq int64, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: cross-shard injection at %v before shard clock %v (lookahead violation)", at, e.now))
	}
	e.push(event{at: at, seq: seq, fn: fn})
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// LiveProcs reports the number of processes that have started and not yet
// returned. A nonzero value after Run means processes are deadlocked waiting
// for wakeups that never came.
func (e *Engine) LiveProcs() int { return e.procs }
