package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000µs"},
		{3 * Millisecond, "3.000ms"},
		{Seconds(1.5), "1.500s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	if got := Seconds(2.5).ToSeconds(); got != 2.5 {
		t.Fatalf("round trip = %v, want 2.5", got)
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	e := New()
	var got []Time
	for _, d := range []Time{30, 10, 20, 10} {
		d := d
		e.Schedule(d, func() { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Time{10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSameTimeEventsRunInScheduleOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.ScheduleAt(5, func() {})
	})
	e.Run()
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := New()
	fired := 0
	e.Schedule(10, func() { fired++ })
	e.Schedule(100, func() { fired++ })
	end := e.RunUntil(50)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if end != 50 {
		t.Errorf("end = %v, want 50", end)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if fired != 2 {
		t.Errorf("after full run fired = %d, want 2", fired)
	}
}

// Regression for the RunUntil restructure: when the queue drains before the
// deadline the clock must stay at the last executed event, not jump to the
// deadline.
func TestRunUntilDrainedEarlyKeepsEventTime(t *testing.T) {
	e := New()
	e.Schedule(10, func() {})
	e.Schedule(20, func() {})
	if end := e.RunUntil(1000); end != 20 {
		t.Errorf("drained-early RunUntil = %v, want 20 (last event time)", end)
	}
	if e.Now() != 20 {
		t.Errorf("clock = %v after drain, want 20", e.Now())
	}
}

// Regression companion: when events remain beyond the deadline the clock must
// land exactly on the deadline and the later events stay pending.
func TestRunUntilReachedDeadlineJumpsClock(t *testing.T) {
	e := New()
	e.Schedule(10, func() {})
	e.Schedule(2000, func() {})
	if end := e.RunUntil(1000); end != 1000 {
		t.Errorf("reached-deadline RunUntil = %v, want 1000", end)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	// An empty queue below the deadline leaves the clock untouched.
	if end := e.RunUntil(3000); end != 2000 {
		t.Errorf("second RunUntil = %v, want 2000", end)
	}
}

// The event queue must execute equal-time events in schedule order and
// distinct times in ascending order — i.e. global (time, seq) order — for any
// interleaving of pushes and pops. This pins the 4-ary value-heap replacement
// of container/heap to the exact semantics golden files depend on.
func TestHeapOrderMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		e := New()
		type stamp struct {
			at  Time
			seq int
		}
		var want []stamp
		var got []stamp
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			at := Time(rng.Intn(20))
			s := stamp{at: at, seq: i}
			want = append(want, s)
			e.Schedule(at, func() { got = append(got, stamp{at: e.Now(), seq: s.seq}) })
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		e.Run()
		if len(got) != len(want) {
			t.Fatalf("trial %d: ran %d events, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: event %d = %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestRunReturnsLastEventTime(t *testing.T) {
	e := New()
	e.Schedule(42, func() {})
	if end := e.Run(); end != 42 {
		t.Errorf("end = %v, want 42", end)
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := New()
	fired := 0
	e.Schedule(1, func() { fired++; e.Stop() })
	e.Schedule(2, func() { fired++ })
	e.Run()
	if fired != 1 {
		t.Errorf("fired = %d, want 1 after Stop", fired)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	var times []Time
	e.Schedule(10, func() {
		times = append(times, e.Now())
		e.Schedule(5, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("times = %v, want [10 15]", times)
	}
}

// Property: for any set of random delays, events execute in sorted order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New()
		var got []Time
		for _, d := range delays {
			e.Schedule(Time(d), func() { got = append(got, e.Now()) })
		}
		e.Run()
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestProcSleepAdvancesClock(t *testing.T) {
	e := New()
	var woke Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(100)
		woke = p.Now()
	})
	e.Run()
	if woke != 100 {
		t.Errorf("woke at %v, want 100", woke)
	}
	if e.LiveProcs() != 0 {
		t.Errorf("live procs = %d, want 0", e.LiveProcs())
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := New()
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			e.Go(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(10)
					log = append(log, name)
				}
			})
		}
		e.Run()
		return log
	}
	first := run()
	if len(first) != 9 {
		t.Fatalf("log has %d entries, want 9", len(first))
	}
	for trial := 0; trial < 5; trial++ {
		again := run()
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("nondeterministic interleaving: %v vs %v", first, again)
			}
		}
	}
}

func TestAwaitSynchronousResume(t *testing.T) {
	e := New()
	done := false
	e.Go("p", func(p *Proc) {
		p.Await(func(resume func()) { resume() })
		done = true
	})
	e.Run()
	if !done {
		t.Error("process did not survive synchronous resume")
	}
}

func TestAwaitAsynchronousResume(t *testing.T) {
	e := New()
	var at Time
	e.Go("p", func(p *Proc) {
		p.Await(func(resume func()) { e.Schedule(77, resume) })
		at = p.Now()
	})
	e.Run()
	if at != 77 {
		t.Errorf("resumed at %v, want 77", at)
	}
}

func TestWaitGroup(t *testing.T) {
	e := New()
	var wg WaitGroup
	wg.Add(3)
	var doneAt Time
	for i := 1; i <= 3; i++ {
		d := Time(i * 10)
		e.Go("worker", func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	e.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	e.Run()
	if doneAt != 30 {
		t.Errorf("waiter resumed at %v, want 30", doneAt)
	}
}

func TestWaitGroupAlreadyZero(t *testing.T) {
	e := New()
	ok := false
	var wg WaitGroup
	e.Go("p", func(p *Proc) {
		wg.Wait(p)
		ok = true
	})
	e.Run()
	if !ok {
		t.Error("Wait on zero WaitGroup blocked")
	}
}

func TestBarrierSynchronizesAll(t *testing.T) {
	e := New()
	b := &Barrier{N: 4}
	var resumed []Time
	for i := 0; i < 4; i++ {
		d := Time((i + 1) * 10)
		e.Go("p", func(p *Proc) {
			p.Sleep(d)
			b.Wait(p)
			resumed = append(resumed, p.Now())
		})
	}
	e.Run()
	if len(resumed) != 4 {
		t.Fatalf("resumed %d procs, want 4", len(resumed))
	}
	for _, at := range resumed {
		if at != 40 {
			t.Errorf("proc resumed at %v, want 40 (last arrival)", at)
		}
	}
}

func TestBarrierReusableAcrossRounds(t *testing.T) {
	e := New()
	b := &Barrier{N: 2}
	rounds := make([]int, 2)
	for i := 0; i < 2; i++ {
		i := i
		e.Go("p", func(p *Proc) {
			for r := 0; r < 3; r++ {
				p.Sleep(Time(i + 1))
				b.Wait(p)
				rounds[i]++
			}
		})
	}
	e.Run()
	if rounds[0] != 3 || rounds[1] != 3 {
		t.Errorf("rounds = %v, want [3 3]", rounds)
	}
}

func TestRendezvousLeaderRunsOnce(t *testing.T) {
	e := New()
	r := &Rendezvous{N: 3}
	leaders := 0
	var resumedAt []Time
	for i := 0; i < 3; i++ {
		e.Go("p", func(p *Proc) {
			r.Do(p, func(done func()) {
				leaders++
				e.Schedule(50, done)
			})
			resumedAt = append(resumedAt, p.Now())
		})
	}
	e.Run()
	if leaders != 1 {
		t.Errorf("leader ran %d times, want 1", leaders)
	}
	for _, at := range resumedAt {
		if at != 50 {
			t.Errorf("party resumed at %v, want 50", at)
		}
	}
}

func TestRendezvousSingleParty(t *testing.T) {
	e := New()
	r := &Rendezvous{N: 1}
	var at Time
	e.Go("p", func(p *Proc) {
		r.Do(p, func(done func()) { e.Schedule(9, done) })
		at = p.Now()
	})
	e.Run()
	if at != 9 {
		t.Errorf("resumed at %v, want 9", at)
	}
}

func TestRendezvousReusable(t *testing.T) {
	e := New()
	r := &Rendezvous{N: 2}
	count := 0
	for i := 0; i < 2; i++ {
		e.Go("p", func(p *Proc) {
			for round := 0; round < 4; round++ {
				r.Do(p, func(done func()) {
					count++
					e.Schedule(1, done)
				})
			}
		})
	}
	e.Run()
	if count != 4 {
		t.Errorf("leader ran %d times, want 4", count)
	}
}

func TestManyProcsStress(t *testing.T) {
	e := New()
	rng := rand.New(rand.NewSource(1))
	total := 0
	for i := 0; i < 100; i++ {
		n := 1 + rng.Intn(20)
		e.Go("p", func(p *Proc) {
			for j := 0; j < n; j++ {
				p.Sleep(Time(1 + rng.Intn(1000)))
			}
			total++
		})
	}
	e.Run()
	if total != 100 {
		t.Errorf("completed %d procs, want 100", total)
	}
	if e.LiveProcs() != 0 {
		t.Errorf("leaked %d procs", e.LiveProcs())
	}
}
