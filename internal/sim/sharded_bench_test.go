package sim_test

import (
	"fmt"
	"testing"

	"llmbw/internal/fabric"
	"llmbw/internal/sim"
	"llmbw/internal/topology"
)

// shardedSteadyWorkload drives ZeRO-3-patterned steady traffic over a
// partitioned cluster: every node continuously churns intra-node NVLink
// flows (the parameter all-gather / gradient reduce-scatter among its four
// GPUs) while streaming partition exchanges to its ring successor through
// the store-and-forward NIC handoff. Everything restarts on completion, so
// the simulation runs forever and RunUntil slices measure steady state.
func shardedSteadyWorkload(sc *topology.ShardedCluster) {
	n := sc.Part.Nodes
	for node := 0; node < n; node++ {
		node := node
		g, ln := sc.GroupOf(node)
		// Intra-node churn: one long-lived flow per GPU pair, sized to
		// complete (and re-enter the fair-share solver) every microsecond or
		// so — this is the per-shard work the parallel windows overlap.
		for a := 0; a < topology.GPUsPerNode; a++ {
			for bg := a + 1; bg < topology.GPUsPerNode; bg++ {
				link := g.NVLinkPair(topology.GPU{Node: ln, Index: a}, topology.GPU{Node: ln, Index: bg})
				f := &fabric.Flow{
					Path:  []*fabric.Link{link},
					Bytes: 180e3 + float64(node*16+a*4+bg)*1e3,
				}
				var restart func()
				restart = func() { g.Net.StartFlow(f, restart) }
				g.Net.StartFlow(f, restart)
			}
		}
		// Inter-node ring: GPU→NIC on the sender, a LatRoCE wire hop, then
		// NIC→DRAM on the receiver; the ack crosses back over the shard
		// boundary before the next send, exactly like a dependent collective.
		next := (node + 1) % n
		dst, ld := sc.GroupOf(next)
		h := sc.Handoff(node, next)
		srcPath := g.GPUToNIC(topology.GPU{Node: ln, Index: 0}, topology.NIC{Node: ln, Socket: 0}).Links
		dstPath := []*fabric.Link{dst.PCIeNICLink(topology.NIC{Node: ld, Socket: 0}), dst.DRAMLink(ld, 0)}
		name := fmt.Sprintf("ring n%d", node)
		bytes := 1e6 + float64(node)*32e3
		var send func()
		done := func() {
			sc.Eng.Inject(sc.ShardOf(next), sc.ShardOf(node), sc.Part.Lookahead, send)
		}
		send = func() { h.Send(name, bytes, srcPath, dstPath, done) }
		g.Eng.Schedule(0, send)
	}
}

// BenchmarkShardedEngineSteady measures steady-state wall-clock throughput
// of the sharded engine across cluster and shard sizes. The 1-shard rows are
// the serial baseline (one shard has no lookahead edges, so the whole run is
// a single full-speed window); the speedup of the 4-shard row over it at 16
// nodes is the headline number of the parallel engine.
func BenchmarkShardedEngineSteady(b *testing.B) {
	for _, nodes := range []int{2, 8, 16} {
		for _, shards := range []int{1, 2, 4} {
			if shards > nodes {
				continue
			}
			b.Run(fmt.Sprintf("nodes=%d/shards=%d", nodes, shards), func(b *testing.B) {
				cfg := topology.DefaultConfig(nodes)
				// One giant telemetry window: bucket growth over long virtual
				// time would otherwise dominate the allocation profile.
				cfg.Window = sim.Time(1) << 40
				sc := topology.NewShardedCluster(cfg, shards)
				defer sc.Eng.Close()
				shardedSteadyWorkload(sc)
				const slice = sim.Millisecond
				sc.Eng.RunUntil(sc.Eng.Now() + 2*slice) // warm pools and windows
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sc.Eng.RunUntil(sc.Eng.Now() + slice)
				}
			})
		}
	}
}
