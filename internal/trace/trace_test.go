package trace

import (
	"strings"
	"testing"

	"llmbw/internal/sim"
)

func TestNilAndDisabledTraceSafe(t *testing.T) {
	var nilT *Trace
	if nilT.Enabled() {
		t.Error("nil trace enabled")
	}
	nilT.Add(0, Gemm, 0, 1) // must not panic
	var zero Trace
	zero.Add(0, Gemm, 0, 1)
	if len(zero.Spans()) != 0 {
		t.Error("disabled trace recorded")
	}
}

func TestAddAndWindow(t *testing.T) {
	tr := New()
	tr.Add(0, Gemm, 10, 20)
	tr.Add(1, NCCLAllReduce, 5, 30)
	lo, hi := tr.Window()
	if lo != 5 || hi != 30 {
		t.Errorf("window = [%v,%v], want [5,30]", lo, hi)
	}
}

func TestAddIgnoresEmptySpans(t *testing.T) {
	tr := New()
	tr.Add(0, Gemm, 10, 10)
	tr.Add(0, Gemm, 10, 5)
	if len(tr.Spans()) != 0 {
		t.Error("degenerate spans recorded")
	}
}

func TestSpansSorted(t *testing.T) {
	tr := New()
	tr.Add(1, Gemm, 0, 1)
	tr.Add(0, Gemm, 5, 6)
	tr.Add(0, Gemm, 1, 2)
	s := tr.Spans()
	if s[0].Rank != 0 || s[0].Start != 1 || s[2].Rank != 1 {
		t.Errorf("spans not sorted: %+v", s)
	}
}

func TestSummarizeIdleTime(t *testing.T) {
	tr := New()
	tr.Add(0, Gemm, 0, 40)
	tr.Add(0, CPUAdam, 40, 100) // GPU idle during host optimizer
	s := tr.Summarize(0)
	if s.Total != 100 {
		t.Errorf("total = %v", s.Total)
	}
	if s.GPUIdle != 60 {
		t.Errorf("idle = %v, want 60 (CPUAdam does not occupy GPU)", s.GPUIdle)
	}
	if s.PerKind[CPUAdam] != 60 || s.PerKind[Gemm] != 40 {
		t.Errorf("per-kind = %v", s.PerKind)
	}
}

func TestRenderLane(t *testing.T) {
	tr := New()
	tr.Add(0, Gemm, 0, sim.Second)
	tr.Add(0, NCCLAllReduce, sim.Second, 2*sim.Second)
	tr.Add(0, CPUAdam, 2*sim.Second, 4*sim.Second)
	lane := tr.Render(0, 40)
	if len(lane) != 40 {
		t.Fatalf("lane length = %d", len(lane))
	}
	if !strings.Contains(lane, "G") || !strings.Contains(lane, "A") || !strings.Contains(lane, "c") {
		t.Errorf("lane %q missing expected glyphs", lane)
	}
	// First quarter should be GEMM, second quarter all-reduce.
	if lane[0] != 'G' || lane[12] != 'A' || lane[30] != 'c' {
		t.Errorf("lane layout wrong: %q", lane)
	}
}

func TestRenderOtherRankEmptyLane(t *testing.T) {
	tr := New()
	tr.Add(0, Gemm, 0, 10)
	lane := tr.Render(3, 10)
	if lane != strings.Repeat(".", 10) {
		t.Errorf("lane for silent rank = %q", lane)
	}
}

func TestRenderEmptyTrace(t *testing.T) {
	if New().Render(0, 10) != "" {
		t.Error("empty trace should render empty string")
	}
}

func TestKindMetadata(t *testing.T) {
	if Gemm.String() != "GEMM" || Gemm.Char() != 'G' || !Gemm.OccupiesGPU() {
		t.Error("Gemm metadata wrong")
	}
	if CPUAdam.OccupiesGPU() || NVMeIO.OccupiesGPU() {
		t.Error("host-side kinds must not occupy GPU")
	}
	if Kind(99).String() == "" || Kind(99).Char() != '?' {
		t.Error("unknown kind rendering wrong")
	}
}

func TestLegendMentionsAllKinds(t *testing.T) {
	l := Legend()
	for _, name := range []string{"GEMM", "AllReduce", "CPUAdam", "NVMeIO", "idle"} {
		if !strings.Contains(l, name) {
			t.Errorf("legend missing %s: %q", name, l)
		}
	}
}
