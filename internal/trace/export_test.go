package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"llmbw/internal/sim"
)

func TestWriteChromeTrace(t *testing.T) {
	tr := New()
	tr.Add(0, Gemm, 10*sim.Microsecond, 30*sim.Microsecond)
	tr.Add(1, NCCLAllReduce, 20*sim.Microsecond, 50*sim.Microsecond)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	ev := events[0]
	if ev["ph"] != "X" {
		t.Errorf("phase = %v, want X (complete event)", ev["ph"])
	}
	if ev["name"] != "GEMM" {
		t.Errorf("name = %v", ev["name"])
	}
	// Timestamps are relative to the trace start, in microseconds.
	if ts := ev["ts"].(float64); ts != 0 {
		t.Errorf("first span ts = %v, want 0", ts)
	}
	if dur := ev["dur"].(float64); dur != 20 {
		t.Errorf("dur = %v µs, want 20", dur)
	}
	if tid := events[1]["tid"].(float64); tid != 1 {
		t.Errorf("second span tid = %v, want rank 1", tid)
	}
}

func TestWriteChromeTraceEmptyFails(t *testing.T) {
	var buf bytes.Buffer
	var nilTrace *Trace
	if err := nilTrace.WriteChromeTrace(&buf); err == nil {
		t.Error("nil trace should error")
	}
}
