// Package trace records per-GPU execution timelines, the simulator's
// equivalent of the paper's NVIDIA Nsight Systems characterization (Fig 5):
// which kernel class each GPU is running at each instant of an iteration —
// GEMM, element-wise, weight update, NCCL collectives, offload data movement,
// CPU optimizer compute and NVMe I/O 'while the GPUs sit idle'.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"llmbw/internal/sim"
)

// Kind classifies a timeline span, mirroring the kernel classes in Fig 5.
type Kind int

// Span kinds.
const (
	Gemm Kind = iota
	Elementwise
	WeightUpdate
	NCCLAllReduce
	NCCLAllGather
	NCCLReduceScatter
	NCCLReduce
	NCCLBroadcast
	OffloadCopy // PCIe transfers between GPU and CPU memory
	CPUAdam     // host-side optimizer (GPU idle)
	NVMeIO      // NVMe staging (GPU idle)
)

var kindInfo = []struct {
	name string
	char byte
	gpu  bool // occupies the GPU
}{
	{"GEMM", 'G', true},
	{"Elementwise", 'e', true},
	{"WeightUpdate", 'U', true},
	{"AllReduce", 'A', true},
	{"AllGather", 'g', true},
	{"ReduceScatter", 'r', true},
	{"Reduce", 'R', true},
	{"Broadcast", 'B', true},
	{"OffloadCopy", 'o', false},
	{"CPUAdam", 'c', false},
	{"NVMeIO", 'n', false},
}

// String returns the kind name.
func (k Kind) String() string {
	if int(k) < len(kindInfo) {
		return kindInfo[k].name
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Char returns the single-character timeline glyph.
func (k Kind) Char() byte {
	if int(k) < len(kindInfo) {
		return kindInfo[k].char
	}
	return '?'
}

// OccupiesGPU reports whether this span counts as GPU-busy time.
func (k Kind) OccupiesGPU() bool {
	return int(k) < len(kindInfo) && kindInfo[k].gpu
}

// Class groups kinds into the breakdown buckets of the Fig 5 discussion:
// GPU compute, NCCL collectives, offload staging copies, host optimizer
// compute and NVMe I/O. It is the single classification both the breakdown
// attribution and schedule-IR op tagging share.
type Class int

// Breakdown classes in display order.
const (
	ClassCompute Class = iota
	ClassCollective
	ClassOffload
	ClassHostAdam
	ClassNVMe
	// ClassCount sizes per-class accumulators.
	ClassCount
)

// Class returns the breakdown class of the kind.
func (k Kind) Class() Class {
	switch k {
	case Gemm, Elementwise, WeightUpdate:
		return ClassCompute
	case NCCLAllReduce, NCCLAllGather, NCCLReduceScatter, NCCLReduce, NCCLBroadcast:
		return ClassCollective
	case OffloadCopy:
		return ClassOffload
	case CPUAdam:
		return ClassHostAdam
	case NVMeIO:
		return ClassNVMe
	}
	return ClassCompute
}

// Phase tags a span with the iteration phase of the schedule op that emitted
// it. The legacy imperative strategies emit PhaseNone; the compiled schedule
// IR tags every op, so exported traces can be filtered by phase. Phase never
// affects rendering, summaries or breakdowns — adding it is golden-safe.
type Phase uint8

// Iteration phases.
const (
	PhaseNone Phase = iota
	PhaseData
	PhaseForward
	PhaseBackward
	PhaseOptimizer
	PhasePrefetch
	// Serving phases (internal/serve): the prompt pass and the token
	// generation loop of an inference request.
	PhasePrefill
	PhaseDecode
)

// String returns the phase label used in exported traces.
func (p Phase) String() string {
	switch p {
	case PhaseData:
		return "data"
	case PhaseForward:
		return "forward"
	case PhaseBackward:
		return "backward"
	case PhaseOptimizer:
		return "optimizer"
	case PhasePrefetch:
		return "prefetch"
	case PhasePrefill:
		return "prefill"
	case PhaseDecode:
		return "decode"
	}
	return ""
}

// Span is one interval of activity on a rank's timeline.
type Span struct {
	Rank  int
	Kind  Kind
	Phase Phase
	Start sim.Time
	End   sim.Time
}

// Duration returns End-Start.
func (s Span) Duration() sim.Time { return s.End - s.Start }

// Trace accumulates spans. The zero value discards everything; create an
// active trace with New.
type Trace struct {
	enabled bool
	spans   []Span
}

// New returns an enabled trace.
func New() *Trace { return &Trace{enabled: true} }

// Enabled reports whether the trace records.
func (t *Trace) Enabled() bool { return t != nil && t.enabled }

// Add records a span (no-op on a nil/disabled trace).
func (t *Trace) Add(rank int, kind Kind, start, end sim.Time) {
	t.AddPhased(rank, kind, PhaseNone, start, end)
}

// AddPhased records a span carrying an iteration phase tag.
func (t *Trace) AddPhased(rank int, kind Kind, phase Phase, start, end sim.Time) {
	if !t.Enabled() || end <= start {
		return
	}
	t.spans = append(t.spans, Span{Rank: rank, Kind: kind, Phase: phase, Start: start, End: end})
}

// Spans returns all recorded spans sorted by (rank, start).
func (t *Trace) Spans() []Span {
	out := append([]Span(nil), t.spans...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// Window returns the [min start, max end] covered by the trace.
func (t *Trace) Window() (sim.Time, sim.Time) {
	if len(t.spans) == 0 {
		return 0, 0
	}
	lo, hi := t.spans[0].Start, t.spans[0].End
	for _, s := range t.spans {
		if s.Start < lo {
			lo = s.Start
		}
		if s.End > hi {
			hi = s.End
		}
	}
	return lo, hi
}

// Summary aggregates busy time per kind for one rank, plus GPU idle time,
// over the trace window — the quantities the Fig 5 discussion compares.
type Summary struct {
	Rank    int
	Total   sim.Time
	PerKind map[Kind]sim.Time
	GPUIdle sim.Time
}

// Summarize computes the per-kind occupancy for a rank.
func (t *Trace) Summarize(rank int) Summary {
	lo, hi := t.Window()
	s := Summary{Rank: rank, Total: hi - lo, PerKind: make(map[Kind]sim.Time)}
	var busy sim.Time
	for _, sp := range t.spans {
		if sp.Rank != rank {
			continue
		}
		s.PerKind[sp.Kind] += sp.Duration()
		if sp.Kind.OccupiesGPU() {
			busy += sp.Duration()
		}
	}
	s.GPUIdle = s.Total - busy
	if s.GPUIdle < 0 {
		s.GPUIdle = 0 // overlapping spans can over-count busy time
	}
	return s
}

// Render draws a rank's lane as a fixed-width character strip; '.' is GPU
// idle. Later spans overwrite earlier ones in each cell, which matches how a
// dense profiler view paints overlapping streams.
func (t *Trace) Render(rank, width int) string {
	lo, hi := t.Window()
	if hi <= lo || width <= 0 {
		return ""
	}
	lane := make([]byte, width)
	for i := range lane {
		lane[i] = '.'
	}
	scale := float64(width) / float64(hi-lo)
	for _, sp := range t.spans {
		if sp.Rank != rank {
			continue
		}
		a := int(float64(sp.Start-lo) * scale)
		b := int(float64(sp.End-lo) * scale)
		if b <= a {
			b = a + 1
		}
		if b > width {
			b = width
		}
		for i := a; i < b; i++ {
			lane[i] = sp.Kind.Char()
		}
	}
	return string(lane)
}

// Legend returns the glyph legend for rendered lanes.
func Legend() string {
	var b strings.Builder
	for k := range kindInfo {
		if k > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%c=%s", kindInfo[k].char, kindInfo[k].name)
	}
	b.WriteString("  .=idle")
	return b.String()
}
