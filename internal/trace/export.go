package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one complete event in the Chrome trace-event format
// (chrome://tracing, Perfetto), the de-facto interchange format for GPU
// timeline viewers.
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Args struct {
		Kind  string `json:"kind"`
		Phase string `json:"phase,omitempty"`
	} `json:"args"`
}

// WriteChromeTrace serializes the timeline as a Chrome trace-event JSON
// array: one complete ("X") event per span, one thread lane per GPU rank.
// Load the output in chrome://tracing or ui.perfetto.dev to get the
// simulator's equivalent of the paper's Nsight Systems view (Fig 5).
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	if !t.Enabled() {
		return fmt.Errorf("trace: nothing recorded")
	}
	lo, _ := t.Window()
	events := make([]chromeEvent, 0, len(t.spans))
	for _, s := range t.Spans() {
		ev := chromeEvent{
			Name: s.Kind.String(),
			Ph:   "X",
			Ts:   float64(s.Start-lo) / 1e3,
			Dur:  float64(s.Duration()) / 1e3,
			Pid:  0,
			Tid:  s.Rank,
		}
		ev.Args.Kind = s.Kind.String()
		ev.Args.Phase = s.Phase.String()
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
