package topology

import (
	"math"
	"testing"

	"llmbw/internal/fabric"
	"llmbw/internal/sim"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDefaultConfigShape(t *testing.T) {
	c := New(DefaultConfig(2))
	if got := len(c.LinksOfClass(fabric.NVLink, 0)); got != 6 {
		t.Errorf("NVLink pairs on node 0 = %d, want 6", got)
	}
	if got := len(c.LinksOfClass(fabric.PCIeGPU, 0)); got != 4 {
		t.Errorf("PCIe-GPU links = %d, want 4", got)
	}
	if got := len(c.LinksOfClass(fabric.RoCE, -1)); got != 4 {
		t.Errorf("RoCE links total = %d, want 4", got)
	}
	if got := len(c.LinksOfClass(fabric.PCIeNVME, 0)); got != 2 {
		t.Errorf("NVMe links on node 0 = %d, want 2 (two scratch drives)", got)
	}
	if got := len(c.LinksOfClass(fabric.DRAM, 0)); got != 2 {
		t.Errorf("DRAM socket links = %d, want 2", got)
	}
}

func TestTableIIICapacities(t *testing.T) {
	c := New(DefaultConfig(1))
	cases := []struct {
		link *fabric.Link
		want float64
	}{
		{c.DRAMLink(0, 0), 25.6e9 * 8},
		{c.XGMILink(0), 72e9 * 3},
		{c.PCIeGPULink(GPU{0, 0}), 64e9},
		{c.PCIeNICLink(NIC{0, 1}), 64e9},
		{c.RoCELink(NIC{0, 0}), 50e9},
		{c.NVLinkPair(GPU{0, 0}, GPU{0, 3}), 200e9},
		{c.NVMeLink(DriveSpec{0, 1, 0}), 16e9},
	}
	for _, cse := range cases {
		if !almost(cse.link.Capacity(), cse.want, 1) {
			t.Errorf("%s capacity = %v, want %v", cse.link.Name, cse.link.Capacity(), cse.want)
		}
	}
}

func TestTheoreticalClassBW(t *testing.T) {
	c := New(DefaultConfig(1))
	cases := map[fabric.Class]float64{
		fabric.DRAM:     409.6e9,
		fabric.XGMI:     216e9,
		fabric.PCIeGPU:  256e9,
		fabric.PCIeNIC:  128e9,
		fabric.PCIeNVME: 128e9,
		fabric.NVLink:   2400e9,
		fabric.RoCE:     100e9,
	}
	for class, want := range cases {
		if got := c.TheoreticalClassBW(class); !almost(got, want, 1) {
			t.Errorf("theoretical %v = %v, want %v", class, got, want)
		}
	}
}

func TestGPUSocketAssignment(t *testing.T) {
	// Fig 2-b: GPUs 0,1 on socket 0; GPUs 2,3 on socket 1.
	for idx, want := range []int{0, 0, 1, 1} {
		if got := (GPU{0, idx}).Socket(); got != want {
			t.Errorf("GPU %d socket = %d, want %d", idx, got, want)
		}
	}
}

func hasClass(r Route, class fabric.Class) int {
	n := 0
	for _, l := range r.Links {
		if l.Class == class {
			n++
		}
	}
	return n
}

func TestGPUToNICSameSocketCrossesOneXbar(t *testing.T) {
	c := New(DefaultConfig(1))
	r := c.GPUToNIC(GPU{0, 0}, NIC{0, 0})
	if hasClass(r, fabric.IODXbar) != 1 {
		t.Errorf("same-socket GPU→NIC crossbars = %d, want 1 (PCIe↔PCIe is SerDes-to-SerDes)", hasClass(r, fabric.IODXbar))
	}
	if hasClass(r, fabric.XGMI) != 0 {
		t.Error("same-socket GPU→NIC should not cross xGMI")
	}
}

func TestGPUToNICCrossSocketCrossesTwoXbars(t *testing.T) {
	c := New(DefaultConfig(1))
	r := c.GPUToNIC(GPU{0, 0}, NIC{0, 1})
	if hasClass(r, fabric.IODXbar) != 2 {
		t.Errorf("cross-socket GPU→NIC crossbars = %d, want 2", hasClass(r, fabric.IODXbar))
	}
	if hasClass(r, fabric.XGMI) != 1 {
		t.Error("cross-socket GPU→NIC must cross xGMI")
	}
}

func TestCPUToNICSameSocketAvoidsXbar(t *testing.T) {
	c := New(DefaultConfig(1))
	r := c.CPUToNIC(0, 0, NIC{0, 0})
	if hasClass(r, fabric.IODXbar) != 0 {
		t.Error("DRAM→PCIe same socket must not pay the crossbar (paper Sec III-C4)")
	}
}

func TestCPUToNICCrossSocketPaysOneXbar(t *testing.T) {
	c := New(DefaultConfig(1))
	r := c.CPUToNIC(0, 0, NIC{0, 1})
	if hasClass(r, fabric.IODXbar) != 1 {
		t.Errorf("cross-socket CPU→NIC crossbars = %d, want 1 (xGMI→PCIe at NIC socket)", hasClass(r, fabric.IODXbar))
	}
}

func TestGPUToCPURoutes(t *testing.T) {
	c := New(DefaultConfig(1))
	same := c.GPUToCPU(GPU{0, 0}, 0)
	if hasClass(same, fabric.IODXbar) != 0 || hasClass(same, fabric.DRAM) != 1 {
		t.Error("same-socket GPU→CPU should be PCIe+DRAM only")
	}
	cross := c.GPUToCPU(GPU{0, 0}, 1)
	if hasClass(cross, fabric.IODXbar) != 1 || hasClass(cross, fabric.XGMI) != 1 {
		t.Error("cross-socket GPU→CPU should pay one crossbar and xGMI")
	}
}

func TestInterNodeConsumesBothNICs(t *testing.T) {
	c := New(DefaultConfig(2))
	r := c.InterNode(NIC{0, 0}, NIC{1, 0})
	if hasClass(r, fabric.RoCE) != 2 {
		t.Errorf("inter-node RoCE legs = %d, want 2", hasClass(r, fabric.RoCE))
	}
}

func TestGPUToRemoteGPUFullPath(t *testing.T) {
	c := New(DefaultConfig(2))
	r := c.GPUToRemoteGPU(GPU{0, 0}, GPU{1, 2})
	if hasClass(r, fabric.PCIeGPU) != 2 || hasClass(r, fabric.PCIeNIC) != 2 ||
		hasClass(r, fabric.RoCE) != 2 {
		t.Errorf("remote GPU path composition wrong: %v", r.Links)
	}
	// Each side is same-socket GPU→NIC? GPU{0,0} socket 0 → NIC socket 0 (1 xbar);
	// GPU{1,2} socket 1 → NIC socket 1 (1 xbar).
	if hasClass(r, fabric.IODXbar) != 2 {
		t.Errorf("remote GPU path crossbars = %d, want 2", hasClass(r, fabric.IODXbar))
	}
}

func TestCrossSocketLatencyMuchHigher(t *testing.T) {
	c := New(DefaultConfig(1))
	same := c.CPUToNIC(0, 0, NIC{0, 0}).Latency
	cross := c.CPUToNIC(0, 0, NIC{0, 1}).Latency
	if ratio := float64(cross) / float64(same); ratio < 3 {
		t.Errorf("cross/same latency ratio = %.1f, want >3 (paper sees ~7x)", ratio)
	}
}

func TestConcatDeduplicatesLinks(t *testing.T) {
	c := New(DefaultConfig(1))
	a := c.GPUToCPU(GPU{0, 2}, 1)
	b := c.CPUToNVMe(0, 1, DriveSpec{0, 1, 0})
	j := Concat(a, b)
	seen := make(map[string]bool)
	for _, l := range j.Links {
		if seen[l.Name] {
			t.Errorf("duplicate link %s in concatenated route", l.Name)
		}
		seen[l.Name] = true
	}
	if j.Latency != a.Latency+b.Latency {
		t.Error("Concat should sum latencies")
	}
}

func TestClassSeriesAggregatesAcrossLinks(t *testing.T) {
	c := New(DefaultConfig(1))
	// Two flows on two different NVLink pairs, 1 GB each over 1 s.
	done := 0
	for _, pair := range [][2]int{{0, 1}, {2, 3}} {
		l := c.NVLinkPair(GPU{0, pair[0]}, GPU{0, pair[1]})
		c.Net.StartFlow(&fabric.Flow{Path: []*fabric.Link{l}, Bytes: 200e9}, func() { done++ })
	}
	c.Eng.Run()
	c.Net.Quiesce()
	if done != 2 {
		t.Fatalf("flows done = %d", done)
	}
	end := c.Eng.Now()
	st := c.ClassStats(fabric.NVLink, 0, 0, end)
	// Each pair moved 200 GB in 1 s at weight 2 -> 400 GB/s counted each,
	// 800 GB/s aggregate.
	if !almost(st.Avg, 800e9, 1e9) {
		t.Errorf("aggregate NVLink avg = %v, want ~800e9", st.Avg)
	}
}

func TestMeasurementRangeExcludesWarmup(t *testing.T) {
	c := New(DefaultConfig(1))
	l := c.NVLinkPair(GPU{0, 0}, GPU{0, 1})
	// Warm-up burst in the first second, silence afterwards.
	c.Net.StartFlow(&fabric.Flow{Path: []*fabric.Link{l}, Bytes: 200e9}, nil)
	c.Eng.Run()
	c.Eng.ScheduleAt(2*sim.Second, func() {})
	c.Eng.Run()
	st := c.ClassStats(fabric.NVLink, 0, sim.Second, 2*sim.Second)
	if st.Avg != 0 {
		t.Errorf("post-warmup avg = %v, want 0", st.Avg)
	}
	st = c.ClassStats(fabric.NVLink, 0, 0, sim.Second)
	if st.Avg == 0 {
		t.Error("warmup window should show traffic")
	}
}

func TestInvalidRoutesPanic(t *testing.T) {
	c := New(DefaultConfig(2))
	for name, fn := range map[string]func(){
		"gpu to nic across nodes": func() { c.GPUToNIC(GPU{0, 0}, NIC{1, 0}) },
		"nvlink across nodes":     func() { c.NVLinkPair(GPU{0, 0}, GPU{1, 0}) },
		"nvlink to self":          func() { c.NVLinkPair(GPU{0, 1}, GPU{0, 1}) },
		"internode same node":     func() { c.InterNode(NIC{0, 0}, NIC{0, 1}) },
		"unknown drive":           func() { c.NVMeLink(DriveSpec{0, 0, 9}) },
		"bad gpu":                 func() { c.PCIeGPULink(GPU{0, 7}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestResetTelemetryClearsCounters(t *testing.T) {
	c := New(DefaultConfig(1))
	l := c.NVLinkPair(GPU{0, 0}, GPU{0, 1})
	c.Net.StartFlow(&fabric.Flow{Path: []*fabric.Link{l}, Bytes: 1e9}, nil)
	c.Eng.Run()
	c.ResetTelemetry()
	if l.Counter().Total() != 0 {
		t.Error("ResetTelemetry left bytes behind")
	}
}

func TestPurposeBuiltConfigShape(t *testing.T) {
	cfg := PurposeBuiltConfig(2)
	if cfg.XbarBW <= DefaultXbarBW {
		t.Error("purpose-built should lift the crossbar budget")
	}
	if cfg.RoCEBW <= RoCELinkBW {
		t.Error("purpose-built should have faster NICs")
	}
	c := New(cfg)
	if got := c.RoCELink(NIC{0, 0}).Capacity(); got != cfg.RoCEBW {
		t.Errorf("RoCE capacity = %v, want %v", got, cfg.RoCEBW)
	}
	if got := c.NVLinkPair(GPU{0, 0}, GPU{0, 1}).Capacity(); got != cfg.NVLinkPairBW {
		t.Errorf("NVLink pair capacity = %v, want %v", got, cfg.NVLinkPairBW)
	}
}

func TestTheoreticalBWPanicsOnInternalClass(t *testing.T) {
	c := New(DefaultConfig(1))
	defer func() {
		if recover() == nil {
			t.Error("internal class did not panic")
		}
	}()
	c.TheoreticalClassBW(fabric.IODXbar)
}
