package topology

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"llmbw/internal/fabric"
	"llmbw/internal/sim"
)

func TestDCGeneratorShapes(t *testing.T) {
	cases := []struct {
		spec      string
		links     int // total modelled links
		uplinks   int // trunk links (fat-tree up+down, dragonfly globals)
		pods      int
		seamsWant string
	}{
		// 8 nodes: 8 NV + 8×4 NIC = 40 endpoint links.
		{"fat-tree:nodes=8", 40 + 2*2*4, 16, 2, "[4 4]"},            // 2 pods × 4 rails × up+down
		{"rail-only:nodes=8", 40, 0, 2, "[4 4]"},                    // no trunks at all
		{"dragonfly:nodes=8", 40 + 2*1, 2, 2, "[4 4]"},              // 2 ordered group pairs
		{"fat-tree:nodes=6,pod=4", 30 + 2*2*4, 16, 2, "[4 2]"},      // short last pod
		{"dragonfly:nodes=12,pod=4", 60 + 3*2, 6, 3, "[4 4 4]"},     // 3 groups, 6 ordered pairs
		{"rail-only:nodes=5,rails=2", 5 + 10, 0, 2, "[4 1]"}, // default pod=4, short last pod
	}
	for _, tc := range cases {
		cfg, err := ParseTopoSpec(tc.spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		dc, err := NewDC(cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		if got := len(dc.Links()); got != tc.links {
			t.Errorf("%s: %d links, want %d", tc.spec, got, tc.links)
		}
		up := 0
		for _, l := range dc.Links() {
			if l.Class == fabric.Uplink {
				up++
			}
		}
		if up != tc.uplinks {
			t.Errorf("%s: %d trunk links, want %d", tc.spec, up, tc.uplinks)
		}
		if got := cfg.Pods(); got != tc.pods {
			t.Errorf("%s: %d pods, want %d", tc.spec, got, tc.pods)
		}
		if got := fmt.Sprint(cfg.Seams()); got != tc.seamsWant {
			t.Errorf("%s: seams %s, want %s", tc.spec, got, tc.seamsWant)
		}
	}
}

func TestDCLinkNamesGloballyStable(t *testing.T) {
	// The same global node must expose identically named links whether it is
	// built monolithically or as part of a sharded sub-cluster.
	cfg, err := ParseTopoSpec("fat-tree:nodes=8")
	if err != nil {
		t.Fatal(err)
	}
	mono, err := NewDC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Build order differs between monolithic and per-shard construction;
	// the contract is the set of (name, capacity) pairs.
	names := func(links []*fabric.Link) string {
		var out []string
		for _, l := range links {
			out = append(out, fmt.Sprintf("%s/%g", l.Name, l.Capacity()))
		}
		sort.Strings(out)
		return strings.Join(out, ";")
	}
	want := names(mono.Links())
	for _, shards := range []int{2} {
		sc, err := NewDCSharded(cfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		var all []*fabric.Link
		for _, g := range sc.Groups {
			all = append(all, g.Links()...)
		}
		if got := names(all); got != want {
			t.Errorf("shards=%d link names differ:\n%s\nvs monolithic\n%s", shards, got, want)
		}
		sc.Eng.Close()
	}
	if mono.NVFabric(0).Name != "dc0/nv" || mono.NICLink(1, 3).Name != "dc1/nic3" {
		t.Errorf("unexpected endpoint link names %q %q", mono.NVFabric(0).Name, mono.NICLink(1, 3).Name)
	}
}

func TestDCSwitchPorts(t *testing.T) {
	ft, _ := ParseTopoSpec("fat-tree:nodes=64")
	ro, _ := ParseTopoSpec("rail-only:nodes=64")
	df, _ := ParseTopoSpec("dragonfly:nodes=64")
	// 64 nodes × 4 rails = 256 endpoints: fat-tree needs a 2-tier Clos over
	// 256 endpoints (radix 64), rail-only four 1-tier networks of 64 ports.
	if got, want := ft.SwitchPorts(), 256*3; got != want {
		t.Errorf("fat-tree ports = %d, want %d", got, want)
	}
	if got, want := ro.SwitchPorts(), 4*64; got != want {
		t.Errorf("rail-only ports = %d, want %d", got, want)
	}
	if ro.SwitchPorts() >= ft.SwitchPorts() {
		t.Errorf("rail-only (%d ports) should undercut fat-tree (%d)", ro.SwitchPorts(), ft.SwitchPorts())
	}
	if df.SwitchPorts() <= 0 {
		t.Errorf("dragonfly ports = %d", df.SwitchPorts())
	}
}

func TestParseTopoSpecRoundTripAndErrors(t *testing.T) {
	for _, spec := range []string{
		"fat-tree:nodes=64,pod=4,rails=4",
		"rail-only:nodes=16,pod=4,rails=2",
		"dragonfly:nodes=32,pod=8,rails=4",
	} {
		cfg, err := ParseTopoSpec(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if got := cfg.Spec(); got != spec {
			t.Errorf("round trip %q -> %q", spec, got)
		}
		again, err := ParseTopoSpec(cfg.Spec())
		if err != nil || again.Spec() != spec {
			t.Errorf("re-parse %q failed: %v", cfg.Spec(), err)
		}
	}
	// Aliases normalize to the canonical spelling.
	cfg, err := ParseTopoSpec("ft:nodes=8")
	if err != nil || cfg.Kind != FatTree {
		t.Fatalf("alias parse: %v %v", cfg.Kind, err)
	}
	for _, bad := range []string{
		"", "paper", "mesh:nodes=4", "fat-tree", "fat-tree:nodes=0",
		"fat-tree:nodes=4,bogus=2", "fat-tree:nodes", "fat-tree:nodes=x",
		fmt.Sprintf("fat-tree:nodes=%d", MaxDCNodes+1),
	} {
		if _, err := ParseTopoSpec(bad); err == nil {
			t.Errorf("spec %q should fail to parse", bad)
		}
	}
}

func TestMakeRailPartitionEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		seams  []int
		shards int
		counts string
		first  string
	}{
		{"even", []int{4, 4, 4, 4}, 2, "[8 8]", "[0 8]"},
		{"uneven blocks", []int{4, 4, 1}, 2, "[8 1]", "[0 8]"},
		{"single-node rails", []int{1, 1, 1}, 3, "[1 1 1]", "[0 1 2]"},
		{"shards above block count clamp", []int{4, 2}, 8, "[4 2]", "[0 4]"},
		{"one block never splits", []int{6}, 4, "[6]", "[0]"},
		{"shards below one", []int{3, 3}, 0, "[6]", "[0]"},
	}
	for _, tc := range cases {
		p := MakeRailPartition(tc.seams, tc.shards, LatDCWire)
		if got := fmt.Sprint(p.Counts); got != tc.counts {
			t.Errorf("%s: counts %s, want %s", tc.name, got, tc.counts)
		}
		if got := fmt.Sprint(p.First); got != tc.first {
			t.Errorf("%s: first %s, want %s", tc.name, got, tc.first)
		}
		// Of must be consistent with First/Counts and never split a block.
		node := 0
		for b, sz := range tc.seams {
			owner := p.Of[node]
			for i := 0; i < sz; i++ {
				if p.Of[node] != owner {
					t.Errorf("%s: block %d split across shards", tc.name, b)
				}
				node++
			}
		}
		if p.Lookahead != LatDCWire {
			t.Errorf("%s: lookahead %v", tc.name, p.Lookahead)
		}
	}
	for _, bad := range [][]int{nil, {}, {4, 0}, {-1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("seams %v should panic", bad)
				}
			}()
			MakeRailPartition(bad, 2, LatDCWire)
		}()
	}
	// A non-positive (or sub-resolution) lookahead would deadlock the
	// sharded engine's conservative horizon; the constructor must reject it
	// rather than let it reach ShardedEngine.Connect.
	for _, bad := range []sim.Time{0, -sim.Microsecond, sim.Nanosecond / 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("lookahead %v should panic", bad)
				}
			}()
			MakeRailPartition([]int{4, 4}, 2, bad)
		}()
	}
}

func TestDCRailPathShardLayoutIndependent(t *testing.T) {
	// The route decomposition (link names, byte-carrying capacity, extra
	// latency) must depend only on the global topology, never on where the
	// shard boundaries fall.
	for _, spec := range []string{"fat-tree:nodes=8", "rail-only:nodes=8", "dragonfly:nodes=8"} {
		cfg, err := ParseTopoSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		render := func(sc *DCShardedCluster) string {
			var sb strings.Builder
			for from := 0; from < cfg.Nodes; from++ {
				for to := 0; to < cfg.Nodes; to++ {
					if from == to {
						continue
					}
					for r := 0; r < cfg.Rails; r++ {
						src, dst, extra := sc.RailPath(from, to, r)
						fmt.Fprintf(&sb, "%d>%d/r%d:", from, to, r)
						for _, l := range src {
							fmt.Fprintf(&sb, " %s", l.Name)
						}
						sb.WriteString(" |")
						for _, l := range dst {
							fmt.Fprintf(&sb, " %s", l.Name)
						}
						fmt.Fprintf(&sb, " +%v\n", extra)
					}
				}
			}
			return sb.String()
		}
		var ref string
		for i, shards := range []int{1, 2} {
			sc, err := NewDCSharded(cfg, shards)
			if err != nil {
				t.Fatal(err)
			}
			got := render(sc)
			if i == 0 {
				ref = got
			} else if got != ref {
				t.Errorf("%s: routes differ between 1 and %d shards", spec, shards)
			}
			sc.Eng.Close()
		}
		sc, err := NewDCColocated(cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got := render(sc); got != ref {
			t.Errorf("%s: colocated routes differ from sharded", spec)
		}
		sc.Eng.Close()
	}
}

func TestDCShardedHandoffRoundTrip(t *testing.T) {
	// A byte pushed over a cross-pod route on a sharded fat-tree arrives, and
	// the same-shard pairs use the local handoff mode.
	cfg, err := ParseTopoSpec("fat-tree:nodes=8")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewDCSharded(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sc.ShardOf(0) == sc.ShardOf(7) {
		t.Fatal("nodes 0 and 7 should land on different shards")
	}
	done := 0
	var at sim.Time
	sc.EngineOf(0).Schedule(0, func() {
		src, dst, extra := sc.RailPath(0, 7, 1)
		sc.Handoff(0, 7).SendPlanned("t", 1e9, extra, nil, nil, src, dst, func() {
			done++
			at = sc.EngineOf(7).Now()
		})
	})
	sc.RunSim()
	if done != 1 || at == 0 {
		t.Fatalf("transfer done=%d at=%v", done, at)
	}
}
