package topology

import (
	"fmt"
	"testing"

	"llmbw/internal/fabric"
	"llmbw/internal/sim"
)

func TestMakePartitionShapes(t *testing.T) {
	cases := []struct {
		nodes, shards int
		wantCounts    []int
	}{
		{1, 1, []int{1}},
		{2, 1, []int{2}},
		{4, 2, []int{2, 2}},
		{5, 2, []int{3, 2}},
		{16, 4, []int{4, 4, 4, 4}},
		{3, 8, []int{1, 1, 1}}, // shard count clamps to node count
	}
	for _, tc := range cases {
		p := MakePartition(tc.nodes, tc.shards)
		if len(p.Counts) != len(tc.wantCounts) {
			t.Errorf("MakePartition(%d,%d): %d shards, want %d", tc.nodes, tc.shards, len(p.Counts), len(tc.wantCounts))
			continue
		}
		node := 0
		for s, want := range tc.wantCounts {
			if p.Counts[s] != want {
				t.Errorf("MakePartition(%d,%d): shard %d holds %d nodes, want %d", tc.nodes, tc.shards, s, p.Counts[s], want)
			}
			if p.First[s] != node {
				t.Errorf("MakePartition(%d,%d): shard %d starts at %d, want %d", tc.nodes, tc.shards, s, p.First[s], node)
			}
			for i := 0; i < p.Counts[s]; i++ {
				if p.Of[node] != s {
					t.Errorf("MakePartition(%d,%d): node %d on shard %d, want %d", tc.nodes, tc.shards, node, p.Of[node], s)
				}
				node++
			}
		}
		if p.Lookahead != LatRoCE {
			t.Errorf("lookahead = %v, want LatRoCE", p.Lookahead)
		}
	}
}

// TestShardedClusterGlobalNaming requires a partitioned cluster to expose
// exactly the monolithic cluster's link identities — same names, same
// Link.Node — regardless of where the partition boundaries fall. That is
// the property that makes telemetry byte-identical across shard counts.
func TestShardedClusterGlobalNaming(t *testing.T) {
	const nodes = 5
	mono := New(DefaultConfig(nodes))
	want := make(map[string]int)
	for _, class := range fabric.MeasuredClasses() {
		for _, l := range mono.LinksOfClass(class, -1) {
			want[l.Name] = l.Node
		}
	}
	sc := NewShardedCluster(DefaultConfig(nodes), 2)
	defer sc.Eng.Close()
	got := make(map[string]int)
	for _, g := range sc.Groups {
		for _, class := range fabric.MeasuredClasses() {
			for _, l := range g.LinksOfClass(class, -1) {
				if _, dup := got[l.Name]; dup {
					t.Errorf("link %s appears in two sub-clusters", l.Name)
				}
				got[l.Name] = l.Node
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("partitioned cluster has %d links, monolithic has %d", len(got), len(want))
	}
	for name, node := range want {
		if gn, ok := got[name]; !ok || gn != node {
			t.Errorf("link %s: node %d in partitioned cluster, want %d", name, gn, node)
		}
	}
}

func TestShardedClusterLookup(t *testing.T) {
	sc := NewShardedCluster(DefaultConfig(5), 2) // blocks [0,1,2] and [3,4]
	defer sc.Eng.Close()
	if s := sc.ShardOf(2); s != 0 {
		t.Errorf("ShardOf(2) = %d, want 0", s)
	}
	if s := sc.ShardOf(3); s != 1 {
		t.Errorf("ShardOf(3) = %d, want 1", s)
	}
	g, ln := sc.GroupOf(4)
	if g != sc.Groups[1] || ln != 1 {
		t.Errorf("GroupOf(4) = group %p local %d, want group 1 local 1", g, ln)
	}
	// Global naming means the local accessor on the sub-cluster returns the
	// globally named link.
	if name := g.RoCELink(NIC{Node: ln, Socket: 0}).Name; name != "n4/roce0" {
		t.Errorf("node 4's NIC link is %q, want n4/roce0", name)
	}
	if h := sc.Handoff(0, 4); h.Latency() != LatRoCE {
		t.Errorf("handoff latency %v, want LatRoCE", h.Latency())
	}
	if sc.Handoff(0, 1) != sc.Handoff(1, 2) {
		t.Errorf("same-shard-pair handoffs should be shared")
	}
}

// ringWorkload drives a store-and-forward NIC ring over a partitioned
// cluster: every node streams to its successor, GPU→NIC on the sender, a
// LatRoCE wire hop, NIC→DRAM on the receiver, resending on completion.
// Per-node byte counts are deliberately asymmetric: a same-shard hop lands
// with a local sequence number while a cross-shard hop lands in the
// injection band, so only tie-free workloads are comparable across shard
// counts (the serial/parallel A/B at one shard count is exact regardless).
func ringWorkload(sc *ShardedCluster, rounds int) *[][]string {
	n := sc.Part.Nodes
	logs := make([][]string, n)
	for node := 0; node < n; node++ {
		node := node
		next := (node + 1) % n
		src, ls := sc.GroupOf(node)
		dst, ld := sc.GroupOf(next)
		h := sc.Handoff(node, next)
		srcPath := src.GPUToNIC(GPU{Node: ls, Index: 0}, NIC{Node: ls, Socket: 0}).Links
		dstPath := []*fabric.Link{dst.PCIeNICLink(NIC{Node: ld, Socket: 0}), dst.DRAMLink(ld, 0)}
		bytes := 1e9 + float64(node)*64e6
		left := rounds
		var send func()
		var done func()
		done = func() {
			logs[node] = append(logs[node], fmt.Sprintf("%v n%d", dst.Eng.Now(), node))
			if left--; left > 0 {
				// done runs on the receiver's shard, but Send must run on
				// the sender's — so the "ack" travels back across the shard
				// boundary like any other cross-partition event, paying the
				// wire latency.
				sc.Eng.Inject(sc.ShardOf(next), sc.ShardOf(node), sc.Part.Lookahead, send)
			}
		}
		send = func() {
			h.Send(fmt.Sprintf("ring n%d", node), bytes, srcPath, dstPath, done)
		}
		src.Eng.Schedule(0, send)
	}
	return &logs
}

// TestShardedClusterRingIdentical runs the ring on 1, 2 and 4 shards, in
// serial-merge and parallel-window mode each, and requires every run to
// produce identical completion logs and identical per-node RoCE telemetry.
func TestShardedClusterRingIdentical(t *testing.T) {
	old := sim.Sharded
	defer func() { sim.Sharded = old }()
	const nodes = 4
	type result struct {
		key   string
		logs  [][]string
		stats string
	}
	var results []result
	for _, shards := range []int{1, 2, 4} {
		for _, parallel := range []bool{false, true} {
			sim.Sharded = parallel
			cfg := DefaultConfig(nodes)
			cfg.Window = sim.Time(1) << 40
			sc := NewShardedCluster(cfg, shards)
			logs := ringWorkload(sc, 5)
			end := sc.RunSim()
			stats := fmt.Sprintf("end=%v", end)
			for node := 0; node < nodes; node++ {
				g, _ := sc.GroupOf(node)
				st := g.ClassStats(fabric.RoCE, node, 0, end)
				stats += fmt.Sprintf(" n%d=%+v", node, st)
			}
			results = append(results, result{
				key:   fmt.Sprintf("shards=%d parallel=%v", shards, parallel),
				logs:  *logs,
				stats: stats,
			})
		}
	}
	ref := results[0]
	for _, r := range results[1:] {
		if fmt.Sprint(r.logs) != fmt.Sprint(ref.logs) {
			t.Errorf("%s completion logs differ from %s:\n%v\nvs\n%v", r.key, ref.key, r.logs, ref.logs)
		}
		if r.stats != ref.stats {
			t.Errorf("%s telemetry differs from %s:\n%s\nvs\n%s", r.key, ref.key, r.stats, ref.stats)
		}
	}
}
