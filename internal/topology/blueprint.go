package topology

import (
	"fmt"

	"llmbw/internal/scenario"
	"llmbw/internal/sim"
)

// DCBlueprint is the engine-free prebuild of a (possibly sharded) datacenter
// cluster: the defaulted configuration, the pod-seam partition, the global
// node→pod table, the per-shard sub-configurations and their rendered link
// name tables. Everything in a blueprint is derived purely from the topology
// spec and the shard count — no engines, links or capacity state — so one
// blueprint is shared (read-only) by every cluster instantiated from it, and
// blueprints are cached across runs. What a blueprint removes from each build
// is the partition arithmetic and all the per-link fmt.Sprintf naming, the
// dominant constant of wiring a 1k-node fabric; the links and engines
// themselves are always fresh (live clusters advance their virtual clocks and
// cannot be reused without shifting telemetry windows).
type DCBlueprint struct {
	Cfg       DCConfig // defaulted, validated
	Colocated bool

	engineShards int // sharded-engine worker count (≥ part.Shards)
	part         Partition
	podOf        []int
	subs         []DCConfig
	names        []*dcNames
}

// dcBlueprints is the topology tier of the warm-artifact store. Blueprints
// are pure functions of (spec, shards, colocated) and independent of any
// capacity state, so entries carry epoch 0.
var dcBlueprints = scenario.New("topology.blueprints", 64)

// DCBlueprintFor fetches (building on first use) the blueprint for a fabric
// configuration, shard count and placement mode through the blueprint cache.
func DCBlueprintFor(cfg DCConfig, shards int, colocated bool) (*DCBlueprint, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.WithDefaults()
	if shards < 1 {
		shards = 1
	}
	key := scenario.Intern(fmt.Sprintf("bp|%+v|sh%d|co%t", cfg, shards, colocated))
	v, err := dcBlueprints.Do(key, 0, func() (any, error) {
		return newDCBlueprint(cfg, shards, colocated), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*DCBlueprint), nil
}

// newDCBlueprint computes a blueprint from scratch. cfg must be validated and
// defaulted; shards ≥ 1.
func newDCBlueprint(cfg DCConfig, shards int, colocated bool) *DCBlueprint {
	bp := &DCBlueprint{Cfg: cfg, Colocated: colocated, podOf: dcPodOf(cfg)}
	if colocated {
		// Whole fabric on shard 0 of a shards-wide engine (see NewDCColocated).
		bp.engineShards = shards
		bp.part = Partition{
			Nodes:     cfg.Nodes,
			Shards:    1,
			Of:        make([]int, cfg.Nodes),
			First:     []int{0},
			Counts:    []int{cfg.Nodes},
			Lookahead: LatDCWire,
		}
		sub := cfg
		sub.TotalPods = cfg.Pods()
		bp.subs = []DCConfig{sub}
	} else {
		bp.part = MakeRailPartition(cfg.Seams(), shards, LatDCWire)
		bp.engineShards = bp.part.Shards
		totalPods := cfg.Pods()
		for s := 0; s < bp.part.Shards; s++ {
			sub := cfg
			sub.Nodes = bp.part.Counts[s]
			sub.FirstNode = bp.part.First[s]
			sub.FirstPod = bp.part.First[s] / cfg.PodSize
			sub.TotalPods = totalPods
			bp.subs = append(bp.subs, sub)
		}
	}
	for _, sub := range bp.subs {
		bp.names = append(bp.names, dcNamesFor(sub))
	}
	return bp
}

// Build instantiates a fresh cluster from the blueprint: new engines, links,
// networks and handoffs wired with the blueprint's precomputed partition and
// name tables. Every Build is independent — the blueprint is never written.
func (bp *DCBlueprint) Build() *DCShardedCluster {
	se := sim.NewSharded(bp.engineShards)
	if !bp.Colocated {
		for i := 0; i < bp.part.Shards; i++ {
			for j := 0; j < bp.part.Shards; j++ {
				if i != j {
					se.Connect(i, j, bp.part.Lookahead)
				}
			}
		}
	}
	sc := &DCShardedCluster{
		Cfg:       bp.Cfg,
		Part:      bp.part,
		Eng:       se,
		podOf:     bp.podOf,
		colocated: bp.Colocated,
	}
	for s, sub := range bp.subs {
		sc.Groups = append(sc.Groups, buildDCNamed(se.Shard(s), sub, bp.names[s]))
	}
	sc.connectHandoffs()
	return sc
}
