package topology

import (
	"fmt"
	"sort"

	"llmbw/internal/fabric"
	"llmbw/internal/sim"
	"llmbw/internal/telemetry"
)

// Route is an ordered set of links a transfer crosses, plus its one-way
// latency. Order does not matter to the fluid model but helps debugging.
type Route struct {
	Links   []*fabric.Link
	Latency sim.Time
}

// Flow builds a fabric.Flow of the given size over the route.
func (r Route) Flow(name string, bytes float64) *fabric.Flow {
	return &fabric.Flow{Name: name, Path: r.Links, Bytes: bytes}
}

func route(lat sim.Time, links ...*fabric.Link) Route {
	return Route{Links: links, Latency: lat}
}

// GPUToGPU routes traffic between two GPUs on the same node over their
// NVLink pair. NCCL never bounces same-node GPU traffic through PCIe on this
// platform because all GPUs are fully connected.
func (c *Cluster) GPUToGPU(a, b GPU) Route {
	return route(LatNCCLStep, c.NVLinkPair(a, b))
}

// GPUToNIC routes GPUDirect-RDMA traffic from a GPU to a NIC on the same
// node. The path always crosses the host PCIe of both devices; it charges
// the IOD crossbar of every socket where it enters and leaves through
// SerDes (PCIe→PCIe on the same socket, PCIe→xGMI and xGMI→PCIe when
// crossing sockets) — the paper's Section III-C4 model.
func (c *Cluster) GPUToNIC(g GPU, n NIC) Route {
	if g.Node != n.Node {
		panic("topology: GPUToNIC across nodes")
	}
	gs := g.Socket()
	if gs == n.Socket {
		return route(LatPCIe+LatXbar+LatPCIe,
			c.PCIeGPULink(g), c.XbarLink(g.Node, gs), c.PCIeNICLink(n))
	}
	return route(LatPCIe+2*LatXbar+LatXGMI+LatPCIe,
		c.PCIeGPULink(g), c.XbarLink(g.Node, gs), c.XGMILink(g.Node),
		c.XbarLink(n.Node, n.Socket), c.PCIeNICLink(n))
}

// CPUToNIC routes host-memory RDMA traffic from a socket's DRAM to a NIC.
// Same-socket traffic is DRAM→SerDes and dodges the crossbar penalty; the
// cross-socket path pays the crossbar at the NIC's socket (xGMI→PCIe).
func (c *Cluster) CPUToNIC(node, socket int, n NIC) Route {
	if node != n.Node {
		panic("topology: CPUToNIC across nodes")
	}
	if socket == n.Socket {
		return route(LatDRAM+LatPCIe, c.DRAMLink(node, socket), c.PCIeNICLink(n))
	}
	return route(LatDRAM+LatXGMI+LatXbar+LatPCIe,
		c.DRAMLink(node, socket), c.XGMILink(node),
		c.XbarLink(node, n.Socket), c.PCIeNICLink(n))
}

// GPUToCPU routes PCIe traffic between a GPU and a socket's DRAM (offload
// transfers). Cross-socket paths pay the GPU-side crossbar (PCIe→xGMI).
func (c *Cluster) GPUToCPU(g GPU, socket int) Route {
	gs := g.Socket()
	if gs == socket {
		return route(LatPCIe+LatDRAM, c.PCIeGPULink(g), c.DRAMLink(g.Node, socket))
	}
	return route(LatPCIe+LatXbar+LatXGMI+LatDRAM,
		c.PCIeGPULink(g), c.XbarLink(g.Node, gs), c.XGMILink(g.Node),
		c.DRAMLink(g.Node, socket))
}

// CPUToNVMe routes traffic between a socket's DRAM and a drive.
func (c *Cluster) CPUToNVMe(node, socket int, d DriveSpec) Route {
	if node != d.Node {
		panic("topology: CPUToNVMe across nodes")
	}
	if socket == d.Socket {
		return route(LatDRAM+LatPCIe+LatNVMe, c.DRAMLink(node, socket), c.NVMeLink(d))
	}
	return route(LatDRAM+LatXGMI+LatXbar+LatPCIe+LatNVMe,
		c.DRAMLink(node, socket), c.XGMILink(node),
		c.XbarLink(node, d.Socket), c.NVMeLink(d))
}

// InterNode routes RoCE traffic between two NICs on different nodes through
// the (non-blocking) SN3700 switch: the flow consumes both NICs' Ethernet
// bandwidth.
func (c *Cluster) InterNode(a, b NIC) Route {
	if a.Node == b.Node {
		panic("topology: InterNode on same node")
	}
	return route(LatRoCE, c.RoCELink(a), c.RoCELink(b))
}

// GPUToRemoteGPU composes the full GPUDirect path between GPUs on different
// nodes: local PCIe/crossbar to the NIC serving the GPU's socket, RoCE to the
// peer, and the mirror path on the far side.
func (c *Cluster) GPUToRemoteGPU(a, b GPU) Route {
	return c.GPUToRemoteGPUVia(a, b, a.Socket(), b.Socket())
}

// GPUToRemoteGPUVia is GPUToRemoteGPU with explicit NIC selection on each
// side. NCCL assigns communication channels to NICs round-robin without
// regard to GPU affinity, so a channel can bind a GPU to the neighbour
// socket's NIC — the source of the dual-node xGMI traffic the paper reports
// in Section IV-E2.
func (c *Cluster) GPUToRemoteGPUVia(a, b GPU, nicA, nicB int) Route {
	if a.Node == b.Node {
		panic("topology: GPUs on same node; use GPUToGPU")
	}
	na := NIC{Node: a.Node, Socket: nicA}
	nb := NIC{Node: b.Node, Socket: nicB}
	la := c.GPUToNIC(a, na)
	lb := c.GPUToNIC(b, nb)
	inter := c.InterNode(na, nb)
	links := append(append(append([]*fabric.Link{}, la.Links...), inter.Links...), lb.Links...)
	return Route{Links: links, Latency: la.Latency + inter.Latency + lb.Latency}
}

// Concat joins routes into one (for composite transfers such as NVMe→DRAM→GPU).
func Concat(rs ...Route) Route {
	var out Route
	seen := make(map[*fabric.Link]bool)
	for _, r := range rs {
		for _, l := range r.Links {
			if !seen[l] {
				seen[l] = true
				out.Links = append(out.Links, l)
			}
		}
		out.Latency += r.Latency
	}
	return out
}

// LinksOfClass returns all links of a class on a node, name-sorted for
// deterministic reporting. Node -1 matches every node.
func (c *Cluster) LinksOfClass(class fabric.Class, node int) []*fabric.Link {
	var out []*fabric.Link
	for _, l := range c.all {
		if l.Class == class && (node < 0 || l.Node == node) {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ClassSeries sums the bandwidth series of every link of a class on a node
// over [start, end), i.e. the aggregate per-node utilization the paper's
// monitors report after the warm-up interval.
func (c *Cluster) ClassSeries(class fabric.Class, node int, start, end sim.Time) telemetry.Series {
	var sum telemetry.Series
	for _, l := range c.LinksOfClass(class, node) {
		sum = sum.Sum(l.Counter().SeriesRange(start, end))
	}
	return sum
}

// ClassStats computes avg/p90/peak of the aggregate class series.
func (c *Cluster) ClassStats(class fabric.Class, node int, start, end sim.Time) telemetry.Stats {
	return c.ClassSeries(class, node, start, end).Stats()
}

// TheoreticalClassBW returns the paper's theoretical aggregate bidirectional
// bandwidth for a class on one node (Table III "links per node" × per-link).
func (c *Cluster) TheoreticalClassBW(class fabric.Class) float64 {
	switch class {
	case fabric.DRAM:
		return DRAMChannelBW * DRAMChannels * SocketsPerNode
	case fabric.XGMI:
		return XGMILinkBW * XGMILinks
	case fabric.PCIeGPU:
		return PCIeGPULinkBW * GPUsPerNode
	case fabric.PCIeNIC:
		return PCIeNICLinkBW * NICsPerNode
	case fabric.PCIeNVME:
		return PCIeNVMELinkBW * NVMeSlotsPerCPU * SocketsPerNode
	case fabric.NVLink:
		// 12 links × 50 GB/s × 4 GPUs, per-GPU counting convention.
		return NVLinkBW * 12 * GPUsPerNode
	case fabric.RoCE:
		return RoCELinkBW * NICsPerNode
	default:
		panic(fmt.Sprintf("topology: no theoretical bandwidth for %v", class))
	}
}

// ResetTelemetry clears every link counter (e.g. after warm-up iterations).
func (c *Cluster) ResetTelemetry() {
	c.Net.Quiesce()
	for _, l := range c.all {
		l.Counter().Reset()
	}
}

// Links returns every link in the cluster (for diagnostics).
func (c *Cluster) Links() []*fabric.Link { return c.all }
