package topology

import (
	"testing"
	"testing/quick"

	"llmbw/internal/fabric"
)

// Property: the crossbar rule of Sec III-C4 — a route pays one crossbar per
// socket where it both enters and leaves through I/O SerDes; DRAM-terminated
// ends never pay at their own socket.
func TestCrossbarRuleProperty(t *testing.T) {
	c := New(DefaultConfig(2))
	gpuToNIC := func(gi, ns uint8) bool {
		g := GPU{Node: 0, Index: int(gi) % GPUsPerNode}
		n := NIC{Node: 0, Socket: int(ns) % SocketsPerNode}
		r := c.GPUToNIC(g, n)
		want := 1 // PCIe→PCIe same socket
		if g.Socket() != n.Socket {
			want = 2 // PCIe→xGMI + xGMI→PCIe
		}
		return countClass(r, fabric.IODXbar) == want
	}
	if err := quick.Check(gpuToNIC, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
	cpuToNIC := func(cs, ns uint8) bool {
		s := int(cs) % SocketsPerNode
		n := NIC{Node: 0, Socket: int(ns) % SocketsPerNode}
		r := c.CPUToNIC(0, s, n)
		want := 0 // DRAM→PCIe
		if s != n.Socket {
			want = 1 // xGMI→PCIe at the NIC socket
		}
		return countClass(r, fabric.IODXbar) == want
	}
	if err := quick.Check(cpuToNIC, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

// Property: cross-socket routes always include xGMI, same-socket never do.
func TestXGMIRuleProperty(t *testing.T) {
	c := New(DefaultConfig(1))
	f := func(gi, socket uint8) bool {
		g := GPU{Node: 0, Index: int(gi) % GPUsPerNode}
		s := int(socket) % SocketsPerNode
		r := c.GPUToCPU(g, s)
		hasXGMI := countClass(r, fabric.XGMI) > 0
		return hasXGMI == (g.Socket() != s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

// Property: routes never contain duplicate links, and every link belongs to
// a node the route touches.
func TestRouteWellFormedProperty(t *testing.T) {
	c := New(DefaultConfig(2))
	check := func(r Route) bool {
		seen := make(map[*fabric.Link]bool)
		for _, l := range r.Links {
			if seen[l] {
				return false
			}
			seen[l] = true
		}
		return r.Latency > 0
	}
	f := func(a, b uint8) bool {
		ga := GPU{Node: 0, Index: int(a) % GPUsPerNode}
		gb := GPU{Node: 1, Index: int(b) % GPUsPerNode}
		if !check(c.GPUToRemoteGPU(ga, gb)) {
			return false
		}
		if ga.Index != gb.Index {
			if !check(c.GPUToGPU(ga, GPU{Node: 0, Index: gb.Index})) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

func countClass(r Route, class fabric.Class) int {
	n := 0
	for _, l := range r.Links {
		if l.Class == class {
			n++
		}
	}
	return n
}
