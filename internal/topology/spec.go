package topology

import (
	"fmt"
	"strconv"
	"strings"
)

// PaperTopo is the -topo spec naming the paper's two-node XE8545 testbed —
// the default everywhere, selecting the original Cluster rather than a
// generated datacenter fabric.
const PaperTopo = "paper"

// ParseTopoSpec parses a -topo specification shared by bwchar, sweep and
// topoview:
//
//	fat-tree:nodes=64,pod=4,rails=4,oversub=2
//	rail-only:nodes=64
//	dragonfly:nodes=64,pod=8
//
// The form is kind:key=value,... with keys nodes (required), pod, rails,
// oversub and radix; omitted keys take the DC defaults. The testbed spec
// "paper" is not a datacenter fabric and must be special-cased by the caller
// before parsing. The returned config is validated with defaults applied, so
// cfg.Spec() round-trips.
func ParseTopoSpec(spec string) (DCConfig, error) {
	kindStr, rest, _ := strings.Cut(spec, ":")
	var cfg DCConfig
	switch kindStr {
	case "fat-tree", "fattree", "ft":
		cfg.Kind = FatTree
	case "rail-only", "railonly", "rail":
		cfg.Kind = RailOnly
	case "dragonfly", "dfly":
		cfg.Kind = Dragonfly
	case PaperTopo:
		return DCConfig{}, fmt.Errorf("topology: spec %q is the testbed, not a generated fabric", spec)
	default:
		return DCConfig{}, fmt.Errorf("topology: unknown fabric kind %q (want fat-tree, rail-only or dragonfly)", kindStr)
	}
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return DCConfig{}, fmt.Errorf("topology: malformed spec field %q (want key=value)", kv)
			}
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return DCConfig{}, fmt.Errorf("topology: spec field %q needs a positive integer", kv)
			}
			switch key {
			case "nodes":
				cfg.Nodes = n
			case "pod":
				cfg.PodSize = n
			case "rails":
				cfg.Rails = n
			case "oversub":
				cfg.Oversub = float64(n)
			case "radix":
				cfg.Radix = n
			default:
				return DCConfig{}, fmt.Errorf("topology: unknown spec key %q", key)
			}
		}
	}
	if cfg.Nodes == 0 {
		return DCConfig{}, fmt.Errorf("topology: spec %q needs nodes=N", spec)
	}
	if err := cfg.Validate(); err != nil {
		return DCConfig{}, err
	}
	return cfg.WithDefaults(), nil
}
