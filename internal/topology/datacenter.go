// Datacenter-scale fabrics. The paper's testbed stops at two nodes; the
// production-scale question (ROADMAP item 1) is what DeepSpeed-style
// collectives cost on 1k+ GPU fabrics. This file generates the three
// topology families the related work studies — full-bisection fat-tree,
// rail-only (Wang & Ghobadi: one independent network per NIC rail), and
// dragonfly (per-group all-to-all optical globals) — as simulated link
// graphs with globally stable names, plus the pod/rail-aligned sharding that
// lets the conservative-lookahead PDES engine run them in parallel.
//
// The node model is deliberately coarser than the XE8545 testbed: a
// datacenter training node is a purpose-built machine (DGX class) whose
// GPUsPerNode GPUs sit behind one non-blocking NVSwitch domain (a single
// aggregated NVLink-class link per node) with one GPU-adjacent rail NIC per
// rail (no I/O-die crossbar on the path). What differs between the families
// is only the switching fabric between the NICs:
//
//	fat-tree:  per-pod per-rail uplink/downlink trunks into a full-bisection
//	           (oversubscribable) leaf-spine core; any NIC reaches any NIC.
//	rail-only: NICs of rail r connect only to other NICs of rail r through a
//	           per-rail non-blocking network; there is no cross-rail path —
//	           cross-rail traffic must hop through a node's NVSwitch.
//	dragonfly: nodes form groups with a non-blocking group switch; each
//	           ordered group pair is joined by one optical global bundle.
//
// Every cross-node route decomposes into a sender-owned half and a
// receiver-owned half (trunks belong to the source or destination pod), so
// pod-aligned partitions never split a fair-share domain — the property that
// makes hierarchical collectives handoff-leggable (see internal/collective).
package topology

import (
	"fmt"
	"sort"

	"llmbw/internal/fabric"
	"llmbw/internal/sim"
	"llmbw/internal/telemetry"
)

// TopoKind selects a datacenter fabric family.
type TopoKind int

// The generated families.
const (
	FatTree TopoKind = iota + 1
	RailOnly
	Dragonfly
)

var kindNames = map[TopoKind]string{
	FatTree: "fat-tree", RailOnly: "rail-only", Dragonfly: "dragonfly",
}

func (k TopoKind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("TopoKind(%d)", int(k))
}

// Datacenter fabric defaults. NIC rate matches the testbed's RoCE class so
// per-class telemetry stays comparable; the NVSwitch domain is the
// purpose-built 600 GB/s any-pair fabric.
const (
	DCNICBW   = 50.0 * GB  // per rail NIC, bidirectional aggregate
	DCNVBW    = 600.0 * GB // per-node NVSwitch domain, any GPU pair
	DCRails   = 4          // one rail NIC per GPU
	DCPodSize = 4          // nodes per pod / rail-leaf group / dragonfly group
	DCRadix   = 64         // switch radix for the port-count model

	// LatDCWire is the one-way NIC→leaf→NIC wire latency of a minimal
	// (same-pod / same-rail-leaf) path. It is also the conservative
	// lookahead between pod shards: no cross-node interaction is faster.
	LatDCWire = 1 * sim.Microsecond
	// LatDCTier is the added latency per extra switching tier a route
	// traverses (fat-tree spine, dragonfly global).
	LatDCTier = 1 * sim.Microsecond
)

// MaxDCNodes bounds generated fabrics; 1024 nodes × 4 GPUs covers the
// "1k+ GPU" regime while keeping link counts (≈6k) in the flat-cost range
// the route interning is designed for.
const MaxDCNodes = 1024

// DCConfig parameterizes a datacenter fabric. The zero value is not valid;
// fill Kind and Nodes and let withDefaults supply the rest (ParseTopoSpec
// does this for CLI specs).
type DCConfig struct {
	Kind    TopoKind
	Nodes   int
	Rails   int // rail NICs per node (default DCRails, one per GPU)
	PodSize int // nodes per pod / group / rail-leaf (default DCPodSize)

	NICBW    float64 // per rail NIC (default DCNICBW)
	NVBW     float64 // per-node NVSwitch domain (default DCNVBW)
	GlobalBW float64 // dragonfly: per ordered group pair (default PodSize×NICBW/2)
	Oversub  float64 // fat-tree uplink oversubscription ≥ 1 (default 1 = full bisection)
	Radix    int     // switch radix for SwitchPorts (default DCRadix)

	Window sim.Time // telemetry sampling window; 0 = default

	// FirstNode/FirstPod offset the global numbering used in link names, so
	// sub-clusters of a partitioned simulation expose the same telemetry
	// identity they would have in one monolithic cluster. TotalPods is the
	// global pod count (dragonfly sub-clusters need it to emit their global
	// bundles to every other group); 0 means Pods().
	FirstNode, FirstPod int
	TotalPods           int
}

// WithDefaults fills unset fields.
func (c DCConfig) WithDefaults() DCConfig {
	if c.Rails == 0 {
		c.Rails = DCRails
	}
	if c.PodSize == 0 {
		c.PodSize = DCPodSize
	}
	if c.NICBW == 0 {
		c.NICBW = DCNICBW
	}
	if c.NVBW == 0 {
		c.NVBW = DCNVBW
	}
	if c.GlobalBW == 0 {
		c.GlobalBW = float64(c.PodSize) * c.NICBW / 2
	}
	if c.Oversub == 0 {
		c.Oversub = 1
	}
	if c.Radix == 0 {
		c.Radix = DCRadix
	}
	return c
}

// Validate reports configuration errors.
func (c DCConfig) Validate() error {
	c = c.WithDefaults()
	switch c.Kind {
	case FatTree, RailOnly, Dragonfly:
	default:
		return fmt.Errorf("topology: unknown fabric kind %v", c.Kind)
	}
	if c.Nodes < 1 || c.Nodes > MaxDCNodes {
		return fmt.Errorf("topology: %d nodes outside the supported 1-%d range", c.Nodes, MaxDCNodes)
	}
	if c.Rails < 1 || c.Rails > GPUsPerNode*2 {
		return fmt.Errorf("topology: %d rails outside the supported 1-%d range", c.Rails, GPUsPerNode*2)
	}
	if c.PodSize < 1 {
		return fmt.Errorf("topology: pod size %d below 1", c.PodSize)
	}
	if c.Oversub < 1 {
		return fmt.Errorf("topology: oversubscription %g below 1", c.Oversub)
	}
	return nil
}

// Pods returns the number of pods/groups (the last may be short).
func (c DCConfig) Pods() int {
	c = c.WithDefaults()
	return (c.Nodes + c.PodSize - 1) / c.PodSize
}

// Seams returns the node count of each pod — the natural partition blocks a
// sharded build must not split, because pod trunks (fat-tree up/down links,
// dragonfly globals) are fair-shared within one pod.
func (c DCConfig) Seams() []int {
	c = c.WithDefaults()
	seams := make([]int, c.Pods())
	left := c.Nodes
	for i := range seams {
		if left < c.PodSize {
			seams[i] = left
		} else {
			seams[i] = c.PodSize
		}
		left -= seams[i]
	}
	return seams
}

// Spec renders the configuration in ParseTopoSpec syntax.
func (c DCConfig) Spec() string {
	c = c.WithDefaults()
	return fmt.Sprintf("%s:nodes=%d,pod=%d,rails=%d", c.Kind, c.Nodes, c.PodSize, c.Rails)
}

// clos returns the switching-tier count and total switch-port count of a
// folded-Clos (fat-tree) network over endpoints hosts at the given radix:
// one tier serves up to radix endpoints, and each further tier multiplies
// reach by radix/2 (half the ports face down, half up). A full-bisection
// network with t tiers exposes endpoints ports at the leaf tier and
// 2·endpoints at each tier boundary above it: endpoints×(2t−1) ports total.
func clos(endpoints, radix int) (tiers, ports int) {
	tiers = 1
	for reach := radix; reach < endpoints; reach = reach * radix / 2 {
		tiers++
	}
	return tiers, endpoints * (2*tiers - 1)
}

// SwitchPorts returns the total switch-port count of the fabric — the cost
// metric of the rail-only comparison (Wang & Ghobadi count transceivers;
// ports are proportional). Fat-tree builds one Clos over Nodes×Rails
// endpoints; rail-only builds Rails independent Clos networks over Nodes
// endpoints each — fewer tiers per network is where the savings come from;
// dragonfly uses one group switch per pod (PodSize×Rails endpoint ports)
// plus a global port per ordered group pair.
func (c DCConfig) SwitchPorts() int {
	c = c.WithDefaults()
	switch c.Kind {
	case FatTree:
		_, ports := clos(c.Nodes*c.Rails, c.Radix)
		return ports
	case RailOnly:
		_, ports := clos(c.Nodes, c.Radix)
		return c.Rails * ports
	case Dragonfly:
		pods := c.Pods()
		return c.Nodes*c.Rails + pods*(pods-1)
	}
	return 0
}

// DCCluster is one (sub-)fabric's wired-up link graph: the per-node NVSwitch
// and rail-NIC links of its nodes plus the trunks its pods own. A monolithic
// simulation has one; a sharded one has one per shard (see NewDCSharded).
type DCCluster struct {
	Cfg DCConfig
	Eng *sim.Engine
	Net *fabric.Network

	nv     []*fabric.Link   // [local node]
	nic    [][]*fabric.Link // [local node][rail]
	up     [][]*fabric.Link // [local pod][rail], fat-tree
	down   [][]*fabric.Link // [local pod][rail], fat-tree
	global [][]*fabric.Link // [local pod][global dest pod], dragonfly (nil at self)
	all    []*fabric.Link
}

// dcNames is the precomputed link-name table of one sub-fabric build: all the
// fmt.Sprintf work of naming a fabric's links (≈6k strings at 1024 nodes),
// rendered once per blueprint and shared by every cluster instantiated from
// it. Indices mirror the DCCluster link tables.
type dcNames struct {
	nv     []string   // [local node]
	nic    [][]string // [local node][rail]
	up     [][]string // [local pod][rail], fat-tree
	down   [][]string // [local pod][rail], fat-tree
	global [][]string // [local pod][global dest pod], dragonfly ("" at self)
}

// dcNamesFor renders the link-name table of a sub-fabric. cfg must be
// validated and have defaults applied.
func dcNamesFor(cfg DCConfig) *dcNames {
	nm := &dcNames{}
	for n := 0; n < cfg.Nodes; n++ {
		gn := cfg.FirstNode + n
		nm.nv = append(nm.nv, fmt.Sprintf("dc%d/nv", gn))
		var nics []string
		for r := 0; r < cfg.Rails; r++ {
			nics = append(nics, fmt.Sprintf("dc%d/nic%d", gn, r))
		}
		nm.nic = append(nm.nic, nics)
	}
	pods := (cfg.Nodes + cfg.PodSize - 1) / cfg.PodSize
	totalPods := cfg.TotalPods
	if totalPods == 0 {
		totalPods = pods
	}
	switch cfg.Kind {
	case FatTree:
		if totalPods == 1 {
			break
		}
		for p := 0; p < pods; p++ {
			gp := cfg.FirstPod + p
			var ups, downs []string
			for r := 0; r < cfg.Rails; r++ {
				ups = append(ups, fmt.Sprintf("pod%d/up%d", gp, r))
				downs = append(downs, fmt.Sprintf("pod%d/down%d", gp, r))
			}
			nm.up = append(nm.up, ups)
			nm.down = append(nm.down, downs)
		}
	case Dragonfly:
		for p := 0; p < pods; p++ {
			gp := cfg.FirstPod + p
			row := make([]string, totalPods)
			for q := 0; q < totalPods; q++ {
				if q != gp {
					row[q] = fmt.Sprintf("g%d>g%d/opt", gp, q)
				}
			}
			nm.global = append(nm.global, row)
		}
	}
	return nm
}

// buildDC wires a DC link graph onto eng. cfg must be validated and have
// defaults applied.
func buildDC(eng *sim.Engine, cfg DCConfig) *DCCluster {
	return buildDCNamed(eng, cfg, dcNamesFor(cfg))
}

// buildDCNamed wires a DC link graph onto eng using a precomputed name table
// (the blueprint fast path: link construction without any string rendering).
func buildDCNamed(eng *sim.Engine, cfg DCConfig, nm *dcNames) *DCCluster {
	dc := &DCCluster{Cfg: cfg, Eng: eng, Net: fabric.NewNetwork(eng)}
	mk := func(name string, class fabric.Class, node int, bw float64) *fabric.Link {
		l := fabric.NewLink(name, class, node, bw, cfg.Window)
		dc.all = append(dc.all, l)
		return l
	}
	for n := 0; n < cfg.Nodes; n++ {
		gn := cfg.FirstNode + n
		dc.nv = append(dc.nv, mk(nm.nv[n], fabric.NVLink, gn, cfg.NVBW))
		var nics []*fabric.Link
		for r := 0; r < cfg.Rails; r++ {
			nics = append(nics, mk(nm.nic[n][r], fabric.RoCE, gn, cfg.NICBW))
		}
		dc.nic = append(dc.nic, nics)
	}
	switch cfg.Kind {
	case FatTree:
		trunkBW := float64(cfg.PodSize) * cfg.NICBW / cfg.Oversub
		for p := range nm.up {
			var ups, downs []*fabric.Link
			for r := 0; r < cfg.Rails; r++ {
				ups = append(ups, mk(nm.up[p][r], fabric.Uplink, -1, trunkBW))
				downs = append(downs, mk(nm.down[p][r], fabric.Uplink, -1, trunkBW))
			}
			dc.up = append(dc.up, ups)
			dc.down = append(dc.down, downs)
		}
	case Dragonfly:
		for p := range nm.global {
			row := make([]*fabric.Link, len(nm.global[p]))
			for q, name := range nm.global[p] {
				if name != "" {
					row[q] = mk(name, fabric.Uplink, -1, cfg.GlobalBW)
				}
			}
			dc.global = append(dc.global, row)
		}
	}
	return dc
}

// NewDC builds a monolithic datacenter cluster on a plain serial engine —
// the single-shard reference (tests, topoview).
func NewDC(cfg DCConfig) (*DCCluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return buildDC(sim.New(), cfg.WithDefaults()), nil
}

// NVFabric returns a node's aggregated NVSwitch-domain link.
func (dc *DCCluster) NVFabric(local int) *fabric.Link { return dc.nv[local] }

// NICLink returns a node's rail NIC link.
func (dc *DCCluster) NICLink(local, rail int) *fabric.Link { return dc.nic[local][rail] }

// Links returns every link in build order (deterministic).
func (dc *DCCluster) Links() []*fabric.Link { return dc.all }

// LinksOfClass returns this cluster's links of a class on a global node
// (-1 selects the pod trunks), sorted by name.
func (dc *DCCluster) LinksOfClass(class fabric.Class, node int) []*fabric.Link {
	var out []*fabric.Link
	for _, l := range dc.all {
		if l.Class == class && l.Node == node {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ClassSeries sums the utilization series of a class on a global node over
// [start, end) — the same per-node aggregation the testbed Cluster reports.
func (dc *DCCluster) ClassSeries(class fabric.Class, node int, start, end sim.Time) telemetry.Series {
	var sum telemetry.Series
	for _, l := range dc.LinksOfClass(class, node) {
		sum = sum.Sum(l.Counter().SeriesRange(start, end))
	}
	return sum
}

// ClassStats computes avg/p90/peak of the aggregate class series.
func (dc *DCCluster) ClassStats(class fabric.Class, node int, start, end sim.Time) telemetry.Stats {
	return dc.ClassSeries(class, node, start, end).Stats()
}

// DCShardedCluster is a datacenter fabric spread over the shards of one
// sharded engine along its pod seams: one DCCluster per shard, fully
// connected by lookahead edges at the minimal wire latency, a Handoff per
// directed shard pair for cross-node traffic. The colocated variant (see
// NewDCColocated) places the whole fabric on shard 0 for workloads whose
// cross-node flows are fluid end to end.
type DCShardedCluster struct {
	Cfg  DCConfig
	Part Partition
	Eng  *sim.ShardedEngine

	Groups []*DCCluster // one per shard

	handoffs  [][]*fabric.Handoff
	podOf     []int // global node -> global pod
	colocated bool
}

func dcPodOf(cfg DCConfig) []int {
	podOf := make([]int, cfg.Nodes)
	for n := range podOf {
		podOf[n] = n / cfg.PodSize
	}
	return podOf
}

// NewDCSharded partitions the fabric over shards sub-engines along pod
// seams (MakeRailPartition over Seams), so every pod trunk and node link
// lands in exactly one shard's fair-share domain. The shard count is clamped
// to the pod count. The partition and link naming come from the cached
// blueprint (DCBlueprintFor); engines and links are always fresh.
func NewDCSharded(cfg DCConfig, shards int) (*DCShardedCluster, error) {
	bp, err := DCBlueprintFor(cfg, shards, false)
	if err != nil {
		return nil, err
	}
	return bp.Build(), nil
}

// NewDCColocated builds the whole fabric on shard 0 of a sharded engine with
// the requested shard count (minimum 1) — the home of flat (fluid
// end-to-end) collectives, whose single cross-node flows couple every node's
// rate allocation with zero lookahead and therefore cannot be split. Output
// is invariant in shards, which keeps the -shards knob byte-identical for
// flat runs just as train.Config.Shards is for the testbed cluster.
func NewDCColocated(cfg DCConfig, shards int) (*DCShardedCluster, error) {
	bp, err := DCBlueprintFor(cfg, shards, true)
	if err != nil {
		return nil, err
	}
	return bp.Build(), nil
}

func (sc *DCShardedCluster) connectHandoffs() {
	n := len(sc.Groups)
	sc.handoffs = make([][]*fabric.Handoff, n)
	for i := range sc.handoffs {
		sc.handoffs[i] = make([]*fabric.Handoff, n)
		for j := range sc.handoffs[i] {
			sc.handoffs[i][j] = fabric.NewHandoff(sc.Eng, i, j, sc.Part.Lookahead,
				sc.Groups[i].Net, sc.Groups[j].Net)
		}
	}
}

// Colocated reports whether the whole fabric lives on shard 0.
func (sc *DCShardedCluster) Colocated() bool { return sc.colocated }

// Nodes returns the global node count.
func (sc *DCShardedCluster) Nodes() int { return sc.Cfg.Nodes }

// PodOf returns the global pod of a global node.
func (sc *DCShardedCluster) PodOf(node int) int { return sc.podOf[node] }

// ShardOf returns the shard owning a global node.
func (sc *DCShardedCluster) ShardOf(node int) int { return sc.Part.Of[node] }

// GroupOf returns the sub-cluster owning a global node and the node's local
// index within it.
func (sc *DCShardedCluster) GroupOf(node int) (*DCCluster, int) {
	s := sc.Part.Of[node]
	return sc.Groups[s], node - sc.Part.First[s]
}

// EngineOf returns the shard engine a global node's events run on.
func (sc *DCShardedCluster) EngineOf(node int) *sim.Engine {
	return sc.Eng.Shard(sc.Part.Of[node])
}

// Handoff returns the store-and-forward channel for traffic between two
// global nodes' partitions; same-shard pairs get the local (plain-delay)
// handoff so routing is uniform wherever the boundaries fall — which is what
// keeps the simulated numerics identical at every shard count.
func (sc *DCShardedCluster) Handoff(fromNode, toNode int) *fabric.Handoff {
	return sc.handoffs[sc.Part.Of[fromNode]][sc.Part.Of[toNode]]
}

// RailPath decomposes the cross-node route from one global node to another
// on a rail into a sender-owned half, a receiver-owned half, and the extra
// switching-tier latency beyond the minimal wire hop. The decomposition
// depends only on the global topology — never on the shard layout — so
// compiled plans built from it are identical at every shard count.
func (sc *DCShardedCluster) RailPath(from, to, rail int) (src, dst []*fabric.Link, extra sim.Time) {
	ga, la := sc.GroupOf(from)
	gb, lb := sc.GroupOf(to)
	nicA := ga.nic[la][rail]
	nicB := gb.nic[lb][rail]
	pa, pb := sc.podOf[from], sc.podOf[to]
	if pa == pb {
		return []*fabric.Link{nicA}, []*fabric.Link{nicB}, 0
	}
	switch sc.Cfg.Kind {
	case FatTree:
		return []*fabric.Link{nicA, ga.up[pa-ga.Cfg.FirstPod][rail]},
			[]*fabric.Link{gb.down[pb-gb.Cfg.FirstPod][rail], nicB},
			2 * LatDCTier
	case RailOnly:
		// Per-rail Clos: non-blocking, one extra tier once the rail network
		// outgrows a single leaf.
		if sc.Cfg.Nodes > sc.Cfg.PodSize {
			extra = LatDCTier
		}
		return []*fabric.Link{nicA}, []*fabric.Link{nicB}, extra
	case Dragonfly:
		return []*fabric.Link{nicA, ga.global[pa-ga.Cfg.FirstPod][pb]},
			[]*fabric.Link{nicB},
			LatDCTier
	}
	panic(fmt.Sprintf("topology: unknown fabric kind %v", sc.Cfg.Kind))
}

// NVFabric returns a global node's NVSwitch-domain link.
func (sc *DCShardedCluster) NVFabric(node int) *fabric.Link {
	g, l := sc.GroupOf(node)
	return g.nv[l]
}

// LinkCount returns the number of modelled links across all shards.
func (sc *DCShardedCluster) LinkCount() int {
	n := 0
	for _, g := range sc.Groups {
		n += len(g.all)
	}
	return n
}

// ClassSeries merges a class's utilization series on one global node.
func (sc *DCShardedCluster) ClassSeries(class fabric.Class, node int, start, end sim.Time) telemetry.Series {
	g, _ := sc.GroupOf(node)
	return g.ClassSeries(class, node, start, end)
}

// RunSim drives the simulation to completion and shuts the workers down.
func (sc *DCShardedCluster) RunSim() sim.Time {
	defer sc.Eng.Close()
	return sc.Eng.Run()
}
