// Package topology builds the simulated hardware of the paper's testbed: two
// Dell PowerEdge XE8545 compute nodes (Fig 2), each with two AMD EPYC 7763
// sockets, eight DDR4-3200 channels per socket, three xGMI inter-socket
// links, four NVIDIA A100-SXM4-40GB GPUs fully connected by NVLink 3.0,
// two ConnectX-6 NICs (one per socket) joined through an SN3700 switch via
// 200 GbE RoCE, and PCIe 4.0 NVMe slots.
//
// All capacities come from the paper's Table III (aggregate bidirectional
// bandwidth per link). The package also encodes the paper's Section III-C4
// hypothesis as a first-class model: each socket's I/O die (IOD) has a
// crossbar budget that throttles traffic entering AND leaving the socket
// through I/O SerDes (PCIe↔PCIe, PCIe↔xGMI, xGMI↔xGMI), while traffic
// between the DRAM controllers and a single SerDes is unthrottled.
package topology

import (
	"fmt"

	"llmbw/internal/fabric"
	"llmbw/internal/sim"
)

// Table III capacities in bytes/second (decimal GB), aggregate bidirectional.
const (
	GB = 1e9

	DRAMChannelBW   = 25.6 * GB // per channel, 8 per socket
	DRAMChannels    = 8
	XGMILinkBW      = 72.0 * GB // per link, 3 between the sockets
	XGMILinks       = 3
	PCIeGPULinkBW   = 64.0 * GB // PCIe 4.0 x16, one per GPU
	PCIeNICLinkBW   = 64.0 * GB // PCIe 4.0 x16, one per NIC
	PCIeNVMELinkBW  = 16.0 * GB // PCIe 4.0 x4, one per drive slot
	NVLinkBW        = 50.0 * GB // per NVLink, 4 links between each GPU pair
	NVLinksPerPair  = 4
	RoCELinkBW      = 50.0 * GB // 200 Gb/s each direction per NIC
	GPUsPerNode     = 4
	SocketsPerNode  = 2
	NICsPerNode     = 2
	NVMeSlotsPerCPU = 4 // x16 link #0 bifurcated x4/x4/x4/x4
)

// DefaultXbarBW is the calibrated I/O-die crossbar budget per socket for
// SerDes-to-SerDes traffic. The paper measures ~47-52% of the 50 GB/s RoCE
// theoretical for paths crossing the crossbar (Sec III-C2/C3), i.e. roughly
// 24-26 GB/s sustained per socket; we charge each crossbar traversal against
// this budget.
const DefaultXbarBW = 26.0 * GB

// Latencies per hop used by the latency tests (Fig 3).
const (
	LatDRAM     = 100 * sim.Nanosecond
	LatXGMI     = 400 * sim.Nanosecond
	LatPCIe     = 300 * sim.Nanosecond
	LatRoCE     = 3 * sim.Microsecond // NIC + switch + NIC, one way
	LatXbar     = 15 * sim.Microsecond
	LatNVMe     = 10 * sim.Microsecond
	LatKern     = 2 * sim.Microsecond // kernel-launch style fixed overhead
	LatNCCLStep = 4 * sim.Microsecond
)

// DriveSpec places an NVMe drive on a socket of a node. Slot only
// disambiguates names.
type DriveSpec struct {
	Node, Socket, Slot int
}

// Config selects the cluster shape. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	Nodes  int
	XbarBW float64
	Window sim.Time // telemetry sampling window; 0 = default
	Drives []DriveSpec
	// Shards > 1 builds the cluster on a sharded simulation engine
	// (sim.NewSharded) instead of a plain one. The cluster itself is
	// colocated on shard 0: its link graph forms one fluid fair-share
	// domain — a single cross-node flow couples both nodes' rate
	// allocations instantaneously (see InterNode), which is a zero-lookahead
	// dependency no conservative partition may split. Partitionable
	// workloads that exchange traffic through store-and-forward handoffs
	// use NewShardedCluster instead, which spreads sub-clusters across
	// shards for real parallelism.
	Shards int
	// FirstNode offsets the global node numbering used in link names and
	// fabric.Link.Node, so sub-clusters of a partitioned simulation expose
	// the same telemetry identity they would have in one monolithic
	// cluster. Accessor methods keep taking node indices local to this
	// cluster.
	FirstNode int
	// What-if overrides for sensitivity studies; zero selects the paper's
	// Table III value.
	RoCEBW       float64 // per-NIC bidirectional aggregate
	NVLinkPairBW float64 // per-GPU-pair aggregate (4 links)
	// StreamEff overrides the fraction of a NIC's bidirectional aggregate
	// one collective ring direction attains across nodes (0 = the
	// calibrated mainstream-platform value in internal/collective).
	StreamEff float64
}

// PurposeBuiltConfig approximates a purpose-built AI node of the same GPU
// count (DGX-A100 / Selene class, the clusters the paper's introduction
// contrasts with mainstream ones): NVSwitch-class full-bisection GPU fabric,
// GPU-adjacent InfiniBand rails that bypass the CPU I/O die (no crossbar
// penalty, near-wire collective efficiency), and 200 GB/s of inter-node
// bandwidth per NIC.
func PurposeBuiltConfig(nodes int) Config {
	cfg := DefaultConfig(nodes)
	cfg.XbarBW = 1e12        // PCIe-switch fabric: IOD crossbar never binds
	cfg.RoCEBW = 200e9       // HDR InfiniBand rails
	cfg.NVLinkPairBW = 600e9 // NVSwitch: any pair at full per-GPU bandwidth
	cfg.StreamEff = 0.45     // ~90% wire efficiency per direction
	return cfg
}

// DefaultConfig is the paper's cluster: two scratch NVMe drives on socket 1
// (CPU #1), the OS drive excluded from measurement.
func DefaultConfig(nodes int) Config {
	cfg := Config{Nodes: nodes, XbarBW: DefaultXbarBW}
	for n := 0; n < nodes; n++ {
		cfg.Drives = append(cfg.Drives,
			DriveSpec{Node: n, Socket: 1, Slot: 0},
			DriveSpec{Node: n, Socket: 1, Slot: 1},
		)
	}
	return cfg
}

// GPU identifies a GPU by node and index (0-3). GPUs 0,1 hang off socket 0,
// GPUs 2,3 off socket 1, matching Fig 2-b.
type GPU struct{ Node, Index int }

// Socket returns the socket the GPU's PCIe link lands on.
func (g GPU) Socket() int { return g.Index / 2 }

func (g GPU) String() string { return fmt.Sprintf("n%dg%d", g.Node, g.Index) }

// NIC identifies a NIC by node and socket (one NIC per socket).
type NIC struct{ Node, Socket int }

func (n NIC) String() string { return fmt.Sprintf("n%dnic%d", n.Node, n.Socket) }

// Cluster is the wired-up link graph plus the simulation engine and flow
// network everything runs on.
type Cluster struct {
	Cfg Config
	Eng *sim.Engine
	Net *fabric.Network

	// Sharded is the coordinating engine when the cluster was built with
	// Cfg.Shards > 1 (Eng is then its shard 0); nil otherwise. Run the
	// simulation through RunSim so the right engine drives it.
	Sharded *sim.ShardedEngine

	dram    [][]*fabric.Link           // [node][socket], 8 channels aggregated
	xgmi    []*fabric.Link             // [node], 3 links aggregated
	xbar    [][]*fabric.Link           // [node][socket]
	pcieGPU [][]*fabric.Link           // [node][gpu]
	pcieNIC [][]*fabric.Link           // [node][socket]
	nvPair  map[[2]int][]*fabric.Link  // [node] indexed inside; see nvKey
	nvlinks [][]*fabric.Link           // [node] -> 6 pair links
	roce    [][]*fabric.Link           // [node][socket]
	nvmePCI map[DriveSpec]*fabric.Link // per drive slot
	all     []*fabric.Link
}

// New builds the cluster and its simulation engine. With Cfg.Shards > 1 the
// engine is a sharded one and the whole cluster lands on shard 0 (see the
// Shards field for why); otherwise a plain serial engine.
func New(cfg Config) *Cluster {
	if cfg.Shards > 1 {
		se := sim.NewSharded(cfg.Shards)
		c := build(se.Shard(0), cfg)
		c.Sharded = se
		return c
	}
	return build(sim.New(), cfg)
}

// RunSim drives the simulation to completion on whichever engine the cluster
// was built with, shutting down a sharded engine's workers afterwards. Only
// the cluster that owns the engine may call it (sub-clusters of a
// ShardedCluster share theirs; run via the ShardedCluster instead).
func (c *Cluster) RunSim() sim.Time {
	if c.Sharded != nil {
		defer c.Sharded.Close()
		return c.Sharded.Run()
	}
	return c.Eng.Run()
}

// SimLiveProcs reports live processes on the cluster's engine (all shards of
// a sharded one) — the post-run leak check.
func (c *Cluster) SimLiveProcs() int {
	if c.Sharded != nil {
		return c.Sharded.LiveProcs()
	}
	return c.Eng.LiveProcs()
}

// build wires the link graph onto eng.
func build(eng *sim.Engine, cfg Config) *Cluster {
	if cfg.Nodes < 1 {
		panic("topology: need at least one node")
	}
	if cfg.FirstNode < 0 {
		panic("topology: negative FirstNode")
	}
	if cfg.XbarBW <= 0 {
		cfg.XbarBW = DefaultXbarBW
	}
	c := &Cluster{
		Cfg:     cfg,
		Eng:     eng,
		Net:     fabric.NewNetwork(eng),
		nvPair:  make(map[[2]int][]*fabric.Link),
		nvmePCI: make(map[DriveSpec]*fabric.Link),
	}
	w := cfg.Window
	mk := func(name string, class fabric.Class, node int, bw float64) *fabric.Link {
		l := fabric.NewLink(name, class, node, bw, w)
		c.all = append(c.all, l)
		return l
	}
	for n := 0; n < cfg.Nodes; n++ {
		gn := cfg.FirstNode + n // global node id for names and Link.Node
		var dramRow, xbarRow, gpuRow, nicRow, roceRow []*fabric.Link
		for s := 0; s < SocketsPerNode; s++ {
			dramRow = append(dramRow, mk(fmt.Sprintf("n%d/dram%d", gn, s), fabric.DRAM, gn, DRAMChannelBW*DRAMChannels))
			xbarRow = append(xbarRow, mk(fmt.Sprintf("n%d/xbar%d", gn, s), fabric.IODXbar, gn, cfg.XbarBW))
			nicRow = append(nicRow, mk(fmt.Sprintf("n%d/pcie-nic%d", gn, s), fabric.PCIeNIC, gn, PCIeNICLinkBW))
			roceBW := RoCELinkBW
			if cfg.RoCEBW > 0 {
				roceBW = cfg.RoCEBW
			}
			roceRow = append(roceRow, mk(fmt.Sprintf("n%d/roce%d", gn, s), fabric.RoCE, gn, roceBW))
		}
		for g := 0; g < GPUsPerNode; g++ {
			gpuRow = append(gpuRow, mk(fmt.Sprintf("n%d/pcie-gpu%d", gn, g), fabric.PCIeGPU, gn, PCIeGPULinkBW))
		}
		c.dram = append(c.dram, dramRow)
		c.xbar = append(c.xbar, xbarRow)
		c.pcieGPU = append(c.pcieGPU, gpuRow)
		c.pcieNIC = append(c.pcieNIC, nicRow)
		c.roce = append(c.roce, roceRow)
		c.xgmi = append(c.xgmi, mk(fmt.Sprintf("n%d/xgmi", gn), fabric.XGMI, gn, XGMILinkBW*XGMILinks))

		var pairs []*fabric.Link
		for a := 0; a < GPUsPerNode; a++ {
			for b := a + 1; b < GPUsPerNode; b++ {
				pairBW := NVLinkBW * NVLinksPerPair
				if cfg.NVLinkPairBW > 0 {
					pairBW = cfg.NVLinkPairBW
				}
				l := mk(fmt.Sprintf("n%d/nvlink%d-%d", gn, a, b), fabric.NVLink, gn, pairBW)
				// nvidia-smi counts every byte at both endpoint GPUs,
				// and the paper sums per-GPU counters per node.
				l.CountWeight = 2
				c.nvPair[[2]int{n*16 + a, n*16 + b}] = []*fabric.Link{l}
				pairs = append(pairs, l)
			}
		}
		c.nvlinks = append(c.nvlinks, pairs)
	}
	for _, d := range cfg.Drives {
		if d.Node >= cfg.Nodes || d.Socket >= SocketsPerNode {
			panic(fmt.Sprintf("topology: drive %v outside cluster", d))
		}
		c.nvmePCI[d] = mk(fmt.Sprintf("n%d/pcie-nvme%d.%d", cfg.FirstNode+d.Node, d.Socket, d.Slot),
			fabric.PCIeNVME, cfg.FirstNode+d.Node, PCIeNVMELinkBW)
	}
	return c
}

func (c *Cluster) checkGPU(g GPU) {
	if g.Node < 0 || g.Node >= c.Cfg.Nodes || g.Index < 0 || g.Index >= GPUsPerNode {
		panic(fmt.Sprintf("topology: no such GPU %v", g))
	}
}

// DRAMLink returns the aggregated DRAM-channel link of a socket.
func (c *Cluster) DRAMLink(node, socket int) *fabric.Link { return c.dram[node][socket] }

// XGMILink returns the aggregated inter-socket link of a node.
func (c *Cluster) XGMILink(node int) *fabric.Link { return c.xgmi[node] }

// XbarLink returns the IOD crossbar budget of a socket.
func (c *Cluster) XbarLink(node, socket int) *fabric.Link { return c.xbar[node][socket] }

// PCIeGPULink returns a GPU's host PCIe link.
func (c *Cluster) PCIeGPULink(g GPU) *fabric.Link { c.checkGPU(g); return c.pcieGPU[g.Node][g.Index] }

// PCIeNICLink returns a NIC's host PCIe link.
func (c *Cluster) PCIeNICLink(n NIC) *fabric.Link { return c.pcieNIC[n.Node][n.Socket] }

// RoCELink returns a NIC's Ethernet link.
func (c *Cluster) RoCELink(n NIC) *fabric.Link { return c.roce[n.Node][n.Socket] }

// NVMeLink returns the PCIe link of a drive slot.
func (c *Cluster) NVMeLink(d DriveSpec) *fabric.Link {
	l, ok := c.nvmePCI[d]
	if !ok {
		panic(fmt.Sprintf("topology: no drive at %v", d))
	}
	return l
}

// NVLinkPair returns the aggregated NVLink between two GPUs on one node.
func (c *Cluster) NVLinkPair(a, b GPU) *fabric.Link {
	c.checkGPU(a)
	c.checkGPU(b)
	if a.Node != b.Node {
		panic("topology: NVLink does not cross nodes")
	}
	if a.Index == b.Index {
		panic("topology: NVLink to self")
	}
	ka, kb := a.Node*16+a.Index, b.Node*16+b.Index
	if ka > kb {
		ka, kb = kb, ka
	}
	return c.nvPair[[2]int{ka, kb}][0]
}
