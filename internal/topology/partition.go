package topology

import (
	"fmt"

	"llmbw/internal/fabric"
	"llmbw/internal/sched"
	"llmbw/internal/sim"
)

// Partition assigns cluster nodes to simulation shards in contiguous
// balanced blocks. Node boundaries are the natural cut: every intra-node
// link stays inside one shard's fair-share domain and the only cross-shard
// traffic is NIC-to-NIC, whose one-way wire latency (LatRoCE) becomes the
// conservative lookahead window.
type Partition struct {
	Nodes     int
	Shards    int
	Of        []int    // node -> shard
	First     []int    // shard -> first global node of its block
	Counts    []int    // shard -> nodes in its block
	Lookahead sim.Time // inter-shard lookahead (the NIC wire latency)
}

// MakePartition splits nodes into shards contiguous blocks whose sizes
// differ by at most one (sched.RoundRobin's distribution). A shard count
// above the node count is clamped: an empty shard would contribute nothing
// but horizon bookkeeping.
func MakePartition(nodes, shards int) Partition {
	if nodes < 1 {
		panic("topology: partition needs at least one node")
	}
	if shards < 1 {
		shards = 1
	}
	if shards > nodes {
		shards = nodes
	}
	p := Partition{
		Nodes:     nodes,
		Shards:    shards,
		Of:        make([]int, nodes),
		First:     make([]int, shards),
		Counts:    sched.RoundRobin(nodes, shards),
		Lookahead: LatRoCE,
	}
	node := 0
	for s, cnt := range p.Counts {
		p.First[s] = node
		for i := 0; i < cnt; i++ {
			p.Of[node] = s
			node++
		}
	}
	return p
}

// MakeRailPartition splits nodes into shards contiguous blocks aligned to
// seams — the block sizes (pods of a datacenter fabric, rails of a rail
// group) that a shard boundary must not cut through, because the links
// inside one block form a single fair-share domain. Shard counts above the
// block count clamp to it (a shard that would start mid-block, or own no
// block at all, cannot exist). Blocks are distributed round-robin over the
// shards, so shard sizes differ by at most one block. A single-block seam
// list therefore always yields one shard, however many were requested —
// the single-node-rail degenerate case.
func MakeRailPartition(seams []int, shards int, lookahead sim.Time) Partition {
	if lookahead < sim.Nanosecond {
		panic(fmt.Sprintf("topology: rail partition lookahead %v must be at least 1ns", lookahead))
	}
	if len(seams) == 0 {
		panic("topology: rail partition needs at least one block")
	}
	nodes := 0
	for i, b := range seams {
		if b < 1 {
			panic(fmt.Sprintf("topology: rail partition block %d has %d nodes", i, b))
		}
		nodes += b
	}
	if shards < 1 {
		shards = 1
	}
	if shards > len(seams) {
		shards = len(seams)
	}
	p := Partition{
		Nodes:     nodes,
		Shards:    shards,
		Of:        make([]int, nodes),
		First:     make([]int, shards),
		Counts:    make([]int, shards),
		Lookahead: lookahead,
	}
	node, block := 0, 0
	for s, cnt := range sched.RoundRobin(len(seams), shards) {
		p.First[s] = node
		for i := 0; i < cnt; i++ {
			for j := 0; j < seams[block]; j++ {
				p.Of[node] = s
				node++
			}
			p.Counts[s] += seams[block]
			block++
		}
	}
	return p
}

// ShardedCluster is a multi-node cluster partitioned across the shards of
// one sharded engine: one sub-cluster (own fabric.Network, own link graph,
// global node naming) per shard, fully connected by lookahead edges at the
// NIC wire latency, with a store-and-forward Handoff per directed shard
// pair for the cross-partition traffic. It is the substrate for workloads
// whose inter-node exchanges are NIC hand-offs rather than single
// end-to-end fluid flows — the shape that actually parallelizes.
type ShardedCluster struct {
	Part   Partition
	Eng    *sim.ShardedEngine
	Groups []*Cluster // one per shard

	handoffs [][]*fabric.Handoff // [from shard][to shard]
}

// NewShardedCluster partitions cfg.Nodes over shards sub-engines. The
// cfg.Shards field is ignored (it selects the colocated mode of New);
// drives are split into the sub-cluster owning their node.
func NewShardedCluster(cfg Config, shards int) *ShardedCluster {
	part := MakePartition(cfg.Nodes, shards)
	se := sim.NewSharded(part.Shards)
	for i := 0; i < part.Shards; i++ {
		for j := 0; j < part.Shards; j++ {
			if i != j {
				se.Connect(i, j, part.Lookahead)
			}
		}
	}
	sc := &ShardedCluster{Part: part, Eng: se}
	for s := 0; s < part.Shards; s++ {
		sub := cfg
		sub.Shards = 0
		sub.Nodes = part.Counts[s]
		sub.FirstNode = part.First[s]
		sub.Drives = nil
		for _, d := range cfg.Drives {
			if part.Of[d.Node] == s {
				d.Node -= part.First[s]
				sub.Drives = append(sub.Drives, d)
			}
		}
		g := build(se.Shard(s), sub)
		g.Sharded = se
		sc.Groups = append(sc.Groups, g)
	}
	sc.handoffs = make([][]*fabric.Handoff, part.Shards)
	for i := range sc.handoffs {
		sc.handoffs[i] = make([]*fabric.Handoff, part.Shards)
		for j := range sc.handoffs[i] {
			sc.handoffs[i][j] = fabric.NewHandoff(se, i, j, part.Lookahead,
				sc.Groups[i].Net, sc.Groups[j].Net)
		}
	}
	return sc
}

// ShardOf returns the shard owning a global node.
func (sc *ShardedCluster) ShardOf(node int) int {
	sc.checkNode(node)
	return sc.Part.Of[node]
}

// GroupOf returns the sub-cluster owning a global node and the node's local
// index within it (the index the Cluster accessors take).
func (sc *ShardedCluster) GroupOf(node int) (*Cluster, int) {
	s := sc.ShardOf(node)
	return sc.Groups[s], node - sc.Part.First[s]
}

// Handoff returns the store-and-forward channel used for traffic from one
// global node's partition to another's. Same-shard pairs get the local
// (plain-delay) handoff, so callers can route all inter-node traffic
// uniformly regardless of where the partition boundaries fall — which is
// what keeps the simulated numerics identical at every shard count.
func (sc *ShardedCluster) Handoff(fromNode, toNode int) *fabric.Handoff {
	return sc.handoffs[sc.ShardOf(fromNode)][sc.ShardOf(toNode)]
}

// RunSim drives the simulation to completion and shuts the workers down.
func (sc *ShardedCluster) RunSim() sim.Time {
	defer sc.Eng.Close()
	return sc.Eng.Run()
}

func (sc *ShardedCluster) checkNode(node int) {
	if node < 0 || node >= sc.Part.Nodes {
		panic(fmt.Sprintf("topology: no such node %d", node))
	}
}
