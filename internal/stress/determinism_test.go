package stress

import (
	"bytes"
	"fmt"
	"testing"

	"llmbw/internal/fabric"
	"llmbw/internal/sim"
)

// renderResult serializes a BandwidthResult the way the reports do: by
// iterating fabric.MeasuredClasses (the paper's fixed column order), never
// the Stats/Theoretical maps themselves.
func renderResult(w *bytes.Buffer, r BandwidthResult) {
	fmt.Fprintf(w, "%s over %v\n", r.Scenario, r.Duration)
	for _, class := range fabric.MeasuredClasses() {
		st := r.Stats[class]
		fmt.Fprintf(w, "%s avg=%.3f p90=%.3f peak=%.3f theo=%.1f\n",
			class, st.Avg/1e9, st.P90/1e9, st.Peak/1e9, r.Theoretical[class]/1e9)
	}
}

// TestStressRenderByteStable runs the same stress scenario on two fresh
// clusters and requires the serialized statistics to match byte for byte —
// the ordered-map-emit audit regression for this package's map-typed
// results.
func TestStressRenderByteStable(t *testing.T) {
	var bufs [2]bytes.Buffer
	for i := range bufs {
		renderResult(&bufs[i], CPURoCEStress(false, 500*sim.Millisecond))
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Errorf("stress renderings differ across identical runs:\n%s\n----\n%s",
			bufs[0].String(), bufs[1].String())
	}
	// The map key set must stay inside the rendered (MeasuredClasses) set,
	// or data would be collected that no report can show.
	res := CPURoCEStress(false, 100*sim.Millisecond)
	shown := map[fabric.Class]bool{}
	for _, c := range fabric.MeasuredClasses() {
		shown[c] = true
	}
	for c := range res.Stats {
		if !shown[c] {
			t.Errorf("stats class %s is not in MeasuredClasses and would never render", c)
		}
	}
}
