package stress

import (
	"testing"

	"llmbw/internal/fabric"
	"llmbw/internal/sim"
	"llmbw/internal/topology"
)

func TestFig3LatencySmallMessages(t *testing.T) {
	c := topology.New(topology.DefaultConfig(2))
	// Paper: same-socket under 6 µs, cross-socket under 40 µs (~7x) for
	// messages below 64 kB.
	for _, v := range []Verb{Send, Read, Write} {
		same := Latency(c, v, false, 64<<10)
		cross := Latency(c, v, true, 64<<10)
		if same > 10*sim.Microsecond {
			t.Errorf("%v same-socket 64kB latency = %v, want <10µs", v, same)
		}
		if cross > 45*sim.Microsecond {
			t.Errorf("%v cross-socket 64kB latency = %v, want <45µs", v, cross)
		}
		if ratio := float64(cross) / float64(same); ratio < 3 {
			t.Errorf("%v cross/same = %.1fx, paper reports ~7x", v, ratio)
		}
	}
}

func TestFig3LatencyGrowsWithMessageSize(t *testing.T) {
	c := topology.New(topology.DefaultConfig(2))
	small := Latency(c, Send, false, 2)
	big := Latency(c, Send, false, 8<<20)
	if big <= small {
		t.Error("latency should grow with message size")
	}
	// 8 MB at ~23 GB/s ≈ 365 µs dominates the base latency.
	if big < 300*sim.Microsecond {
		t.Errorf("8MB send = %v, want serialization-dominated", big)
	}
}

func TestFig3ReadSlowerThanWrite(t *testing.T) {
	c := topology.New(topology.DefaultConfig(2))
	for _, cross := range []bool{false, true} {
		r := Latency(c, Read, cross, 256)
		w := Latency(c, Write, cross, 256)
		s := Latency(c, Send, cross, 256)
		if r <= s || r <= w {
			t.Errorf("cross=%v: READ (%v) should exceed SEND (%v) and WRITE (%v)", cross, r, s, w)
		}
		if w > s {
			t.Errorf("cross=%v: WRITE (%v) should not exceed SEND (%v)", cross, w, s)
		}
	}
}

func TestLatencySweepGrid(t *testing.T) {
	sizes := DefaultMessageSizes()
	pts := LatencySweep(sizes)
	if len(pts) != 3*2*len(sizes) {
		t.Fatalf("sweep produced %d points, want %d", len(pts), 3*2*len(sizes))
	}
	for _, p := range pts {
		if p.Latency <= 0 {
			t.Errorf("non-positive latency at %+v", p)
		}
	}
}

func TestFig4CPURoCESameSocketNearTheoretical(t *testing.T) {
	res := CPURoCEStress(false, 10*sim.Second)
	frac := res.AttainedFraction(fabric.RoCE)
	// Paper: 93% of theoretical (46 of 50 GB/s per NIC).
	if frac < 0.80 {
		t.Errorf("same-socket CPU-RoCE attained %.0f%%, paper reports 93%%", frac*100)
	}
}

func TestFig4CPURoCECrossSocketDegrades(t *testing.T) {
	res := CPURoCEStress(true, 10*sim.Second)
	frac := res.AttainedFraction(fabric.RoCE)
	// Paper: 47% of theoretical.
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("cross-socket CPU-RoCE attained %.0f%%, paper reports 47%%", frac*100)
	}
	if res.Stats[fabric.XGMI].Avg == 0 {
		t.Error("cross-socket stress should load xGMI")
	}
}

func TestFig4GPURoCESameSocketDegrades(t *testing.T) {
	// The paper's surprise: even same-socket GPUDirect only reaches 52%
	// because PCIe→PCIe crosses the I/O-die crossbar.
	res := GPURoCEStress(false, 10*sim.Second)
	frac := res.AttainedFraction(fabric.RoCE)
	if frac < 0.40 || frac > 0.65 {
		t.Errorf("same-socket GPU-RoCE attained %.0f%%, paper reports 52%%", frac*100)
	}
	if res.Stats[fabric.DRAM].Avg > 5e9 {
		t.Errorf("GPUDirect should bypass DRAM; avg = %v", res.Stats[fabric.DRAM].Avg)
	}
}

func TestFig4GPURoCECrossSocketWorst(t *testing.T) {
	same := GPURoCEStress(false, 10*sim.Second)
	cross := GPURoCEStress(true, 10*sim.Second)
	fs, fc := same.AttainedFraction(fabric.RoCE), cross.AttainedFraction(fabric.RoCE)
	if fc >= fs {
		t.Errorf("cross-socket GPU-RoCE (%.0f%%) should be below same-socket (%.0f%%)", fc*100, fs*100)
	}
	// Paper: 42%.
	if fc < 0.25 || fc > 0.55 {
		t.Errorf("cross-socket GPU-RoCE attained %.0f%%, paper reports 42%%", fc*100)
	}
	if cross.Stats[fabric.XGMI].Avg == 0 {
		t.Error("cross-socket GPUDirect should load xGMI")
	}
}

func TestFig4OrderingAcrossScenarios(t *testing.T) {
	// Attained RoCE fraction ordering: CPU same >> GPU same >= GPU cross,
	// CPU same >> CPU cross.
	cpuSame := CPURoCEStress(false, 5*sim.Second).AttainedFraction(fabric.RoCE)
	cpuCross := CPURoCEStress(true, 5*sim.Second).AttainedFraction(fabric.RoCE)
	gpuSame := GPURoCEStress(false, 5*sim.Second).AttainedFraction(fabric.RoCE)
	gpuCross := GPURoCEStress(true, 5*sim.Second).AttainedFraction(fabric.RoCE)
	if !(cpuSame > gpuSame && gpuSame >= gpuCross && cpuSame > cpuCross) {
		t.Errorf("ordering violated: cpuSame=%.2f cpuCross=%.2f gpuSame=%.2f gpuCross=%.2f",
			cpuSame, cpuCross, gpuSame, gpuCross)
	}
}

func TestBandwidthResultAccessors(t *testing.T) {
	res := CPURoCEStress(false, 2*sim.Second)
	if res.Scenario == "" || res.Duration != 2*sim.Second {
		t.Error("result metadata wrong")
	}
	if res.AttainedFraction(fabric.NVLink) != 0 {
		t.Error("idle class should report zero fraction")
	}
	if res.AttainedFraction(fabric.Class(99)) != 0 {
		t.Error("unknown class should report zero fraction")
	}
}

func TestVerbStrings(t *testing.T) {
	for _, v := range []Verb{Send, Read, Write, Verb(9)} {
		if v.String() == "" {
			t.Errorf("verb %d renders empty", int(v))
		}
	}
}

func TestUnknownVerbPanics(t *testing.T) {
	c := topology.New(topology.DefaultConfig(2))
	defer func() {
		if recover() == nil {
			t.Error("unknown verb did not panic")
		}
	}()
	Latency(c, Verb(42), false, 1)
}
