package stress_test

import (
	"fmt"

	"llmbw/internal/fabric"
	"llmbw/internal/sim"
	"llmbw/internal/stress"
)

// Reproduce the paper's headline stress result: same-socket GPUDirect RDMA
// attains only about half of theoretical because PCIe↔PCIe traffic crosses
// the EPYC I/O-die crossbar.
func Example() {
	res := stress.GPURoCEStress(false, 5*sim.Second)
	fmt.Printf("GPU-RoCE same-socket: %.0f%% of theoretical\n",
		res.AttainedFraction(fabric.RoCE)*100)
	// Output:
	// GPU-RoCE same-socket: 52% of theoretical
}
