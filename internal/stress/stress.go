// Package stress reproduces the paper's Section III-C inter-node latency and
// bandwidth stress tests (OFED perftest equivalents): RoCE latency versus
// message size for channel-semantic SEND and memory-semantic RDMA READ/WRITE
// (Fig 3), and the four-instance CPU-RoCE / GPU-RoCE bandwidth stress
// kernels whose same-socket versus cross-socket results motivated the
// paper's I/O-die SerDes contention hypothesis (Fig 4).
package stress

import (
	"fmt"

	"llmbw/internal/fabric"
	"llmbw/internal/sim"
	"llmbw/internal/telemetry"
	"llmbw/internal/topology"
)

// Verb is an RDMA operation of the latency test.
type Verb int

// RoCE verbs measured in Fig 3.
const (
	Send Verb = iota
	Read
	Write
)

func (v Verb) String() string {
	switch v {
	case Send:
		return "SEND"
	case Read:
		return "RDMA READ"
	case Write:
		return "RDMA WRITE"
	}
	return fmt.Sprintf("Verb(%d)", int(v))
}

// Per-direction serialization bandwidth of the latency test's single stream
// (half of the bidirectional aggregates, degraded by the crossbar on
// cross-socket paths).
const (
	sameSocketStreamBW  = 23e9 // ≈ 46 GB/s bidirectional attained / 2
	crossSocketStreamBW = 12e9 // ≈ crossbar-limited attained / 2
)

// LatencyPoint is one sample of the Fig 3 sweep.
type LatencyPoint struct {
	Verb        Verb
	CrossSocket bool
	MsgBytes    float64
	Latency     sim.Time
}

// Latency computes the one-sided RoCE latency for a message of the given
// size. The path model composes the per-hop latencies of the topology
// package: DRAM→PCIe→RoCE→PCIe→DRAM, plus the I/O-die crossbar penalty on
// each cross-socket end, plus serialization time. READ is a round trip;
// WRITE skips the receiver-side completion.
func Latency(c *topology.Cluster, v Verb, cross bool, msgBytes float64) sim.Time {
	socket := 0
	nic := 0
	if cross {
		nic = 1
	}
	local := c.CPUToNIC(0, socket, topology.NIC{Node: 0, Socket: nic})
	remote := c.CPUToNIC(1, socket, topology.NIC{Node: 1, Socket: nic})
	path := local.Latency + topology.LatRoCE + remote.Latency

	bw := sameSocketStreamBW
	if cross {
		bw = crossSocketStreamBW
	}
	ser := sim.Seconds(msgBytes / bw)

	switch v {
	case Send:
		return path + ser
	case Write:
		// Memory semantic: no receive-side CPU involvement.
		return path - topology.LatDRAM + ser
	case Read:
		// The read request makes an extra network trip before the data
		// flows back; the crossbar penalty is paid once by the data path.
		return path + topology.LatRoCE + ser
	default:
		panic(fmt.Sprintf("stress: unknown verb %d", int(v)))
	}
}

// DefaultMessageSizes is the Fig 3 sweep (2 B to 8 MB, powers of two).
func DefaultMessageSizes() []float64 {
	var out []float64
	for b := 2.0; b <= 8<<20; b *= 4 {
		out = append(out, b)
	}
	return out
}

// LatencySweep runs the full Fig 3 grid.
func LatencySweep(sizes []float64) []LatencyPoint {
	c := topology.New(topology.DefaultConfig(2))
	var out []LatencyPoint
	for _, v := range []Verb{Send, Read, Write} {
		for _, cross := range []bool{false, true} {
			for _, s := range sizes {
				out = append(out, LatencyPoint{
					Verb:        v,
					CrossSocket: cross,
					MsgBytes:    s,
					Latency:     Latency(c, v, cross, s),
				})
			}
		}
	}
	return out
}

// BandwidthResult is one Fig 4 scenario: attained statistics per
// interconnect class (node-0 aggregates) against the theoretical aggregate.
type BandwidthResult struct {
	Scenario    string
	Stats       map[fabric.Class]telemetry.Stats
	Theoretical map[fabric.Class]float64
	Duration    sim.Time
}

// kernel keeps a bidirectional transfer saturated between a local route and
// the remote side for the duration of the test, in chunked flows like the
// perftest kernels' message loop.
func kernel(c *topology.Cluster, name string, tx, rx topology.Route, deadline sim.Time) {
	const chunk = 1e9
	launch := func(dir string, r topology.Route) {
		c.Eng.Go(name+"/"+dir, func(p *sim.Proc) {
			for p.Now() < deadline {
				c.Net.Transfer(p, r.Flow(name+"/"+dir, chunk))
			}
		})
	}
	launch("tx", tx)
	launch("rx", rx)
}

// roceRoute builds the full host-memory RDMA path from node 0's socket to
// node 1 via the chosen NICs.
func roceRoute(c *topology.Cluster, socket, nic int) topology.Route {
	local := c.CPUToNIC(0, socket, topology.NIC{Node: 0, Socket: nic})
	inter := c.InterNode(topology.NIC{Node: 0, Socket: nic}, topology.NIC{Node: 1, Socket: nic})
	remote := c.CPUToNIC(1, socket, topology.NIC{Node: 1, Socket: nic})
	return topology.Concat(local, inter, remote)
}

// gpuRoceRoute builds the GPUDirect path from a node-0 GPU to its peer on
// node 1 via the chosen NIC sockets.
func gpuRoceRoute(c *topology.Cluster, gpu, nic int) topology.Route {
	a := topology.GPU{Node: 0, Index: gpu}
	b := topology.GPU{Node: 1, Index: gpu}
	return c.GPUToRemoteGPUVia(a, b, nic, nic)
}

func collect(c *topology.Cluster, scenario string, dur sim.Time) BandwidthResult {
	c.Eng.RunUntil(dur)
	c.Net.Quiesce()
	res := BandwidthResult{
		Scenario:    scenario,
		Stats:       make(map[fabric.Class]telemetry.Stats),
		Theoretical: make(map[fabric.Class]float64),
		Duration:    dur,
	}
	for _, class := range fabric.MeasuredClasses() {
		res.Stats[class] = c.ClassStats(class, 0, 0, dur)
		res.Theoretical[class] = c.TheoreticalClassBW(class)
	}
	return res
}

func stressCluster() *topology.Cluster {
	cfg := topology.DefaultConfig(2)
	cfg.Window = 100 * sim.Millisecond
	return topology.New(cfg)
}

// CPURoCEStress runs the Sec III-C2 test: four kernels, two per CPU socket,
// each saturating bidirectional RDMA to the peer node. In the same-socket
// scenario each kernel uses its socket's own NIC (DRAM↔SerDes, no crossbar);
// cross-socket kernels use the neighbour's NIC and pay xGMI plus the
// crossbar at the NIC socket.
func CPURoCEStress(cross bool, dur sim.Time) BandwidthResult {
	return CPURoCEStressOn(stressCluster(), cross, dur)
}

// CPURoCEStressOn runs the CPU-RoCE stress on a caller-provided cluster
// (for ablations with modified topologies).
func CPURoCEStressOn(c *topology.Cluster, cross bool, dur sim.Time) BandwidthResult {
	for socket := 0; socket < topology.SocketsPerNode; socket++ {
		nic := socket
		if cross {
			nic = 1 - socket
		}
		r := roceRoute(c, socket, nic)
		for k := 0; k < 2; k++ {
			kernel(c, fmt.Sprintf("cpu-roce/s%d.%d", socket, k), r, r, dur)
		}
	}
	name := "CPU-RoCE same-socket"
	if cross {
		name = "CPU-RoCE cross-socket"
	}
	return collect(c, name, dur)
}

// GPURoCEStress runs the Sec III-C3 test: four kernels, one per GPU, using
// GPUDirect RDMA. Same-socket kernels use the NIC on the GPU's socket —
// which still crosses the I/O-die crossbar (PCIe↔PCIe), the result that
// surprised the paper; cross-socket kernels pay two crossbars and xGMI.
func GPURoCEStress(cross bool, dur sim.Time) BandwidthResult {
	return GPURoCEStressOn(stressCluster(), cross, dur)
}

// GPURoCEStressOn runs the GPU-RoCE stress on a caller-provided cluster
// (for ablations with modified topologies).
func GPURoCEStressOn(c *topology.Cluster, cross bool, dur sim.Time) BandwidthResult {
	for gpu := 0; gpu < topology.GPUsPerNode; gpu++ {
		socket := gpu / 2
		nic := socket
		if cross {
			nic = 1 - socket
		}
		r := gpuRoceRoute(c, gpu, nic)
		kernel(c, fmt.Sprintf("gpu-roce/g%d", gpu), r, r, dur)
	}
	name := "GPU-RoCE same-socket"
	if cross {
		name = "GPU-RoCE cross-socket"
	}
	return collect(c, name, dur)
}

// AttainedFraction returns attained average bandwidth of a class as a
// fraction of its theoretical aggregate.
func (b BandwidthResult) AttainedFraction(class fabric.Class) float64 {
	th := b.Theoretical[class]
	if th == 0 {
		return 0
	}
	return b.Stats[class].Avg / th
}
