package lint

import (
	"go/ast"
	"go/types"
)

// orderedMapEmit flags `range` over a map whose body reaches an emit sink —
// fmt.Fprint*/Print*, io.Writer / strings.Builder writes, encoder calls or
// report-table rows — because Go randomizes map iteration order and any bytes
// emitted from inside such a loop change between runs. The deterministic
// idiom is: collect keys, sort, range the sorted slice (then the loop no
// longer ranges a map and the rule is satisfied).
type orderedMapEmit struct{}

func (orderedMapEmit) Name() string { return "ordered-map-emit" }
func (orderedMapEmit) Doc() string {
	return "flag map iteration that feeds serialized output without a sorted key order"
}

// emitMethods are method names treated as serialization sinks: the io.Writer
// and strings.Builder write family, encoders, and report.Table.Row.
var emitMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Row": true,
}

// emitFmtFuncs are the fmt emitters (Sprint* builds a value, it does not emit).
var emitFmtFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func (orderedMapEmit) Check(c *Checker, pkg *Package) {
	eachFile(pkg, func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pkg.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if sink := findEmitSink(pkg.Info, rs.Body); sink != "" {
				c.Reportf(rs.Pos(), "map iteration reaches emit sink %s: iterate sorted keys instead (map order is randomized)", sink)
			}
			return true
		})
	})
}

// findEmitSink returns the name of the first serialization sink called inside
// the block, or "".
func findEmitSink(info *types.Info, body *ast.BlockStmt) string {
	sink := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if path, name, ok := pkgFuncRef(info, sel); ok {
			if path == "fmt" && emitFmtFuncs[name] {
				sink = "fmt." + name
			}
			return true
		}
		// A method call: treat the write/encode family as sinks regardless
		// of receiver type — in the emitting packages these are io.Writer,
		// strings.Builder, csv/json encoders and report tables.
		if emitMethods[sel.Sel.Name] {
			sink = sel.Sel.Name
		}
		return true
	})
	return sink
}
