package lint

import (
	"go/types"
	"strings"
)

// scratchEscape guards the fabric's object pools: types listed in the rule's
// "types" option (comma-separated local type names, e.g. completionEvent) are
// recycled between uses, so a pointer to one must never cross the package's
// exported API — a caller holding a pooled object would observe it being
// reused. The rule flags exported functions or methods whose results mention
// a pooled type, exported fields of exported structs typed with one, and
// exported package-level variables holding one.
type scratchEscape struct{}

func (scratchEscape) Name() string { return "scratch-escape" }
func (scratchEscape) Doc() string {
	return "forbid pooled scratch types from escaping the package's exported API"
}

func (r scratchEscape) Check(c *Checker, pkg *Package) {
	pooled := map[*types.TypeName]bool{}
	for _, name := range strings.Split(c.Config().Option(r.Name(), "types"), ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if tn, ok := pkg.Types.Scope().Lookup(name).(*types.TypeName); ok {
			pooled[tn] = true
		}
	}
	if len(pooled) == 0 {
		return
	}

	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		switch o := obj.(type) {
		case *types.Var:
			if mentionsPooled(o.Type(), pooled) {
				c.Reportf(o.Pos(), "exported variable %s holds pooled type: pooled objects must stay inside the package", name)
			}
		case *types.TypeName:
			switch u := o.Type().Underlying().(type) {
			case *types.Struct:
				for i := 0; i < u.NumFields(); i++ {
					f := u.Field(i)
					if f.Exported() && mentionsPooled(f.Type(), pooled) {
						c.Reportf(f.Pos(), "exported field %s.%s exposes pooled type", name, f.Name())
					}
				}
			case *types.Interface:
				// An exported interface whose method signatures mention a
				// pooled type forces every implementation to leak pooled
				// objects across the API.
				for i := 0; i < u.NumExplicitMethods(); i++ {
					m := u.ExplicitMethod(i)
					sig := m.Type().(*types.Signature)
					leaks := false
					for _, tup := range []*types.Tuple{sig.Params(), sig.Results()} {
						for j := 0; j < tup.Len(); j++ {
							if mentionsPooled(tup.At(j).Type(), pooled) {
								leaks = true
							}
						}
					}
					if leaks {
						c.Reportf(m.Pos(), "exported interface method %s.%s mentions pooled type: implementations would leak pooled objects", name, m.Name())
					}
				}
			}
		case *types.Func:
			r.checkSignature(c, o, pooled)
		}
	}
	// Exported methods of exported types.
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !tn.Exported() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Exported() {
				r.checkSignature(c, m, pooled)
			}
		}
	}
}

func (scratchEscape) checkSignature(c *Checker, fn *types.Func, pooled map[*types.TypeName]bool) {
	sig := fn.Type().(*types.Signature)
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if mentionsPooled(res.At(i).Type(), pooled) {
			c.Reportf(fn.Pos(), "exported %s returns pooled type: callers would observe object reuse", fn.Name())
			return
		}
	}
}

// mentionsPooled reports whether the type expression structurally contains a
// pooled named type. Named types other than the pooled ones stop the walk:
// returning *Network whose unexported fields hold pooled objects is fine —
// the pool stays encapsulated.
func mentionsPooled(t types.Type, pooled map[*types.TypeName]bool) bool {
	switch u := t.(type) {
	case *types.Named:
		return pooled[u.Obj()]
	case *types.Pointer:
		return mentionsPooled(u.Elem(), pooled)
	case *types.Slice:
		return mentionsPooled(u.Elem(), pooled)
	case *types.Array:
		return mentionsPooled(u.Elem(), pooled)
	case *types.Map:
		return mentionsPooled(u.Key(), pooled) || mentionsPooled(u.Elem(), pooled)
	case *types.Chan:
		return mentionsPooled(u.Elem(), pooled)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if mentionsPooled(u.Field(i).Type(), pooled) {
				return true
			}
		}
	case *types.Signature:
		for _, tup := range []*types.Tuple{u.Params(), u.Results()} {
			for i := 0; i < tup.Len(); i++ {
				if mentionsPooled(tup.At(i).Type(), pooled) {
					return true
				}
			}
		}
	}
	return false
}
