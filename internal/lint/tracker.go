package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// tracker is the path-insensitive use/release analysis of one function
// body. In summary mode (report == nil) it seeds the parameters and fills
// the function's summary: which parameters are released, which escape, and
// whether an acquired resource is returned. In report mode it additionally
// tracks locals bound to acquire-call results and reports leaks,
// double-releases, and releases of escaped values.
type tracker struct {
	a      *analysis
	n      *funcNode
	report func(pos token.Pos, format string, args ...any)

	info      *types.Info
	vars      map[*types.Var]*vstate
	params    []*types.Var // receiver first, then parameters
	loopDepth int
	acquires  bool // an acquired value is returned
}

// vstate is the abstract lifecycle state of one tracked variable.
type vstate struct {
	origin      int // parameter index (receiver = 0), or -1 for acquired local
	name        string
	acqPos      token.Pos
	acqLoop     int // loop depth at acquisition
	releasedAny bool
	releasedAll bool
	escapedHard bool // stored into memory that outlives the function
	escapedSoft bool // flowed into a local aggregate or an unknown callee
	returned    bool
	finalized   bool
}

func newTracker(a *analysis, n *funcNode, report func(pos token.Pos, format string, args ...any)) *tracker {
	return &tracker{a: a, n: n, report: report, info: n.pkg.Info, vars: map[*types.Var]*vstate{}}
}

// run walks the body and, in summary mode, writes the results into the
// function's summary.
func (t *tracker) run() {
	body := t.n.body()
	if body == nil {
		return
	}
	t.seedParams()
	t.walkStmts(body.List)
	for _, v := range t.vars {
		t.finalize(v)
	}
	if t.report == nil {
		s := t.a.sums[t.n]
		s.grow(len(t.params))
		for i, p := range t.params {
			if v := t.vars[p]; v != nil {
				s.releases[i] = s.releases[i] || v.releasedAny
				s.escapes[i] = s.escapes[i] || v.escapedHard
			}
		}
		s.acquires = s.acquires || t.acquires
	}
}

// seedParams registers the receiver and parameters as tracked variables.
func (t *tracker) seedParams() {
	if t.n.fn == nil {
		return // literals: free variables belong to the creator's analysis
	}
	sig, ok := t.n.fn.Type().(*types.Signature)
	if !ok {
		return
	}
	add := func(v *types.Var) {
		idx := len(t.params)
		t.params = append(t.params, v)
		if v != nil && v.Name() != "" && v.Name() != "_" {
			t.vars[v] = &vstate{origin: idx, name: v.Name(), acqPos: v.Pos()}
		}
	}
	if recv := sig.Recv(); recv != nil {
		add(recv)
	} else {
		t.params = append(t.params, nil) // keep arg indexes aligned: 0 = receiver slot
	}
	for i := 0; i < sig.Params().Len(); i++ {
		add(sig.Params().At(i))
	}
}

// lookup resolves an expression to its tracked state via the root
// identifier (h, h.Fire, &h.field, h[i] all root at h).
func (t *tracker) lookup(e ast.Expr) *vstate {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	obj := t.info.Uses[id]
	if obj == nil {
		obj = t.info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	return t.vars[v]
}

func (t *tracker) varOf(id *ast.Ident) *types.Var {
	obj := t.info.Defs[id]
	if obj == nil {
		obj = t.info.Uses[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

// ---- statement walk ----

func (t *tracker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		t.walkStmt(s)
	}
}

func (t *tracker) walkStmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		t.walkAssign(x)
	case *ast.ExprStmt:
		t.walkExprTop(x.X)
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			if v := t.lookup(e); v != nil && unparenIsIdent(e) {
				v.returned = true
				if v.origin == -1 {
					t.acquires = true
				}
				continue
			}
			if call, ok := unparen(e).(*ast.CallExpr); ok {
				if t.a.callAcquires(staticCallee(t.info, call)) {
					t.acquires = true
				}
			}
			t.walkExpr(e)
		}
	case *ast.IfStmt:
		if x.Init != nil {
			t.walkStmt(x.Init)
		}
		t.walkExpr(x.Cond)
		branches := [][]ast.Stmt{x.Body.List}
		if x.Else != nil {
			branches = append(branches, []ast.Stmt{x.Else})
		}
		t.walkBranches(branches, x.Else != nil)
	case *ast.SwitchStmt:
		if x.Init != nil {
			t.walkStmt(x.Init)
		}
		if x.Tag != nil {
			t.walkExpr(x.Tag)
		}
		t.walkClauses(x.Body)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			t.walkStmt(x.Init)
		}
		t.walkClauses(x.Body)
	case *ast.SelectStmt:
		t.walkClauses(x.Body)
	case *ast.ForStmt:
		if x.Init != nil {
			t.walkStmt(x.Init)
		}
		if x.Cond != nil {
			t.walkExpr(x.Cond)
		}
		t.walkLoopBody(func() {
			t.walkStmts(x.Body.List)
			if x.Post != nil {
				t.walkStmt(x.Post)
			}
		})
	case *ast.RangeStmt:
		t.walkExpr(x.X)
		t.walkLoopBody(func() { t.walkStmts(x.Body.List) })
	case *ast.BlockStmt:
		t.walkStmts(x.List)
	case *ast.LabeledStmt:
		t.walkStmt(x.Stmt)
	case *ast.DeferStmt:
		t.walkCall(x.Call, true)
	case *ast.GoStmt:
		// Everything handed to a goroutine outlives this activation.
		for _, arg := range x.Call.Args {
			t.escape(arg, true)
		}
		t.walkExpr(x.Call.Fun)
	case *ast.SendStmt:
		t.walkExpr(x.Chan)
		t.escape(x.Value, true)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						t.bindValue(name, vs.Values[i])
					}
				}
			}
		}
	case *ast.IncDecStmt:
		t.walkExpr(x.X)
	}
}

func unparenIsIdent(e ast.Expr) bool {
	_, ok := unparen(e).(*ast.Ident)
	return ok
}

// walkClauses processes a switch/select body: each clause is a branch.
func (t *tracker) walkClauses(body *ast.BlockStmt) {
	var branches [][]ast.Stmt
	exhaustive := false
	for _, c := range body.List {
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				t.walkExpr(e)
			}
			if cc.List == nil {
				exhaustive = true // default clause
			}
			branches = append(branches, cc.Body)
		case *ast.CommClause:
			if cc.Comm != nil {
				t.walkStmt(cc.Comm)
			} else {
				exhaustive = true
			}
			branches = append(branches, cc.Body)
		}
	}
	t.walkBranches(branches, exhaustive)
}

// walkBranches runs each branch on a cloned state and joins the results:
// released-on-any is the union, released-on-all requires every branch (and
// an exhaustive branch set), escapes are unioned. Variables scoped to one
// branch are finalized when the branch closes.
func (t *tracker) walkBranches(branches [][]ast.Stmt, exhaustive bool) {
	parent := t.vars
	clones := make([]map[*types.Var]*vstate, len(branches))
	for i, b := range branches {
		t.vars = cloneState(parent)
		t.walkStmts(b)
		clones[i] = t.vars
	}
	t.vars = parent
	for key, pv := range parent {
		allReleased := exhaustive && len(branches) > 0
		for _, cl := range clones {
			cv := cl[key]
			if cv == nil {
				continue
			}
			pv.releasedAny = pv.releasedAny || cv.releasedAny
			pv.escapedHard = pv.escapedHard || cv.escapedHard
			pv.escapedSoft = pv.escapedSoft || cv.escapedSoft
			pv.returned = pv.returned || cv.returned
			if !cv.releasedAll {
				allReleased = false
			}
		}
		if allReleased {
			pv.releasedAll = true
		}
	}
	// Finalize variables declared inside a branch.
	for _, cl := range clones {
		for key, cv := range cl {
			if parent[key] == nil {
				t.finalize(cv)
			}
		}
	}
}

// walkLoopBody processes a loop body once on a cloned state (a loop may run
// zero times, so nothing the body does is released-on-all-paths).
func (t *tracker) walkLoopBody(body func()) {
	parent := t.vars
	t.vars = cloneState(parent)
	t.loopDepth++
	body()
	t.loopDepth--
	clone := t.vars
	t.vars = parent
	for key, pv := range parent {
		if cv := clone[key]; cv != nil {
			pv.releasedAny = pv.releasedAny || cv.releasedAny
			pv.escapedHard = pv.escapedHard || cv.escapedHard
			pv.escapedSoft = pv.escapedSoft || cv.escapedSoft
			pv.returned = pv.returned || cv.returned
		}
	}
	for key, cv := range clone {
		if parent[key] == nil {
			t.finalize(cv)
		}
	}
}

func cloneState(m map[*types.Var]*vstate) map[*types.Var]*vstate {
	out := make(map[*types.Var]*vstate, len(m))
	for k, v := range m {
		c := *v
		out[k] = &c
	}
	return out
}

// ---- events ----

// walkAssign handles acquisitions (x := acquire()) and stores of tracked
// values into longer-lived memory.
func (t *tracker) walkAssign(as *ast.AssignStmt) {
	if (as.Tok == token.DEFINE || as.Tok == token.ASSIGN) && len(as.Lhs) == len(as.Rhs) {
		for i := range as.Lhs {
			t.bindOrStore(as.Lhs[i], as.Rhs[i])
		}
		return
	}
	// Multi-value assignment: walk everything generically.
	for _, e := range as.Rhs {
		t.walkExpr(e)
	}
	for _, e := range as.Lhs {
		if _, ok := unparen(e).(*ast.Ident); !ok {
			t.walkExpr(e)
		}
	}
}

// bindOrStore routes one lhs = rhs pair.
func (t *tracker) bindOrStore(lhs, rhs ast.Expr) {
	if id, ok := unparen(lhs).(*ast.Ident); ok {
		t.bindValue(id, rhs)
		return
	}
	// Storing into a field, index, or dereference: a tracked rhs escapes.
	// The store target's root decides how far: locals are soft (the value
	// may still be reachable for release), anything else is hard.
	t.walkExpr(rhs)
	if v := t.lookup(rhs); v != nil && unparenIsIdent(rhs) {
		t.escapeInto(lhs, v)
	}
	t.walkExpr(lhs)
}

// bindValue handles "id := rhs" / "id = rhs".
func (t *tracker) bindValue(id *ast.Ident, rhs ast.Expr) {
	t.walkExpr(rhs)
	vr := t.varOf(id)
	if call, ok := unparen(rhs).(*ast.CallExpr); ok && t.a.callAcquires(staticCallee(t.info, call)) {
		if id.Name == "_" {
			t.reportf(rhs.Pos(), "acquired %s is discarded: the pooled resource leaks", callName(call))
			return
		}
		if vr == nil {
			return
		}
		if old := t.vars[vr]; old != nil && old.origin == -1 && !old.releasedAny && !old.escapedHard && !old.escapedSoft && !old.returned {
			t.reportf(old.acqPos, "%s is reassigned before release: the pooled resource leaks", old.name)
		}
		t.vars[vr] = &vstate{origin: -1, name: id.Name, acqPos: rhs.Pos(), acqLoop: t.loopDepth}
		return
	}
	// Rebinding a tracked variable to something else forgets the old value
	// (it flowed elsewhere; treat the overwrite as a soft sink).
	if vr != nil {
		if old := t.vars[vr]; old != nil && old.origin == -1 {
			if !old.releasedAny && !old.escapedHard && !old.escapedSoft && !old.returned {
				t.reportf(old.acqPos, "%s is reassigned before release: the pooled resource leaks", old.name)
			}
			delete(t.vars, vr)
		}
	}
	// A tracked value assigned to another local is an alias: soft.
	if v := t.lookup(rhs); v != nil && unparenIsIdent(rhs) {
		v.escapedSoft = true
	}
}

// escapeInto marks v escaped according to the store target.
func (t *tracker) escapeInto(target ast.Expr, v *vstate) {
	id := rootIdent(target)
	if id != nil {
		if tv := t.varOf(id); tv != nil {
			if st := t.vars[tv]; st == nil && isLocalVar(tv, t.n) {
				// Plain local aggregate: the value is still reachable here.
				v.escapedSoft = true
				return
			}
		}
	}
	v.escapedHard = true
}

// isLocalVar reports whether v is declared inside n's body (not a
// parameter, receiver, field, or package-level variable).
func isLocalVar(v *types.Var, n *funcNode) bool {
	if v.IsField() {
		return false
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return false
	}
	body := n.body()
	return body != nil && v.Pos() >= body.Pos() && v.Pos() <= body.End()
}

// escape marks the root of e escaped (hard or soft).
func (t *tracker) escape(e ast.Expr, hard bool) {
	t.walkExpr(e)
	if v := t.lookup(e); v != nil {
		if hard {
			v.escapedHard = true
		} else {
			v.escapedSoft = true
		}
	}
}

// walkExprTop handles a top-level expression statement.
func (t *tracker) walkExprTop(e ast.Expr) {
	if call, ok := unparen(e).(*ast.CallExpr); ok {
		if t.a.callAcquires(staticCallee(t.info, call)) {
			t.reportf(call.Pos(), "result of %s is dropped: the pooled resource leaks", callName(call))
		}
	}
	t.walkExpr(e)
}

// walkExpr visits an expression tree, firing call, closure-capture, and
// address-taken events.
func (t *tracker) walkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			t.captureFreeVars(x)
			return false
		case *ast.CallExpr:
			t.walkCall(x, false)
			return false // walkCall recurses into arguments itself
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if v := t.lookup(x.X); v != nil {
					v.escapedSoft = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				val := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if v := t.lookup(val); v != nil && unparenIsIdent(val) {
					v.escapedHard = true
				}
			}
		}
		return true
	})
}

// walkCall classifies one call's receiver and arguments against the callee
// summary: release positions release, escaping positions escape hard,
// unknown callees sink arguments softly.
func (t *tracker) walkCall(call *ast.CallExpr, deferred bool) {
	// Builtin panic aborts the simulation; its arguments are irrelevant to
	// lifecycle tracking but still walked for nested calls.
	callee := staticCallee(t.info, call)
	relIdx := t.a.callReleases(callee)
	known := t.a.summaryFor(callee) != nil || relIdx >= 0

	// Position 0 is the receiver (when the call is a method call).
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isSel := t.info.Selections[sel]; isSel {
			t.classifyArg(sel.X, 0, callee, relIdx, known, call, deferred)
		}
		t.walkExpr(sel.X)
	} else {
		t.walkExpr(call.Fun)
	}
	for i, arg := range call.Args {
		t.classifyArg(arg, i+1, callee, relIdx, known, call, deferred)
		t.walkExpr(arg)
	}
}

func (t *tracker) classifyArg(arg ast.Expr, pos int, callee *types.Func, relIdx int, known bool, call *ast.CallExpr, deferred bool) {
	v := t.lookup(arg)
	if v == nil {
		return
	}
	direct := unparenIsIdent(arg)
	switch {
	case pos == relIdx && direct:
		t.releaseEvent(v, call.Pos(), deferred)
	case t.a.callEscapes(callee, pos):
		v.escapedHard = true
	case !known && pos > 0:
		// Unknown callee (stdlib, dynamic, builtin): the value may be
		// retained; stop leak tracking without forbidding a later release.
		v.escapedSoft = true
	}
}

// releaseEvent applies one release and reports lifecycle violations.
func (t *tracker) releaseEvent(v *vstate, pos token.Pos, deferred bool) {
	switch {
	case v.releasedAll:
		t.reportf(pos, "%s is released again after an unconditional release: double-release returns it to the pool twice", v.name)
	case v.escapedHard:
		t.reportf(pos, "%s is released after escaping: the stored reference would observe pool reuse", v.name)
	case t.loopDepth > v.acqLoop && !deferred:
		t.reportf(pos, "%s is released inside a loop but acquired outside it: iterations after the first double-release", v.name)
	}
	v.releasedAny = true
	v.releasedAll = true
}

// finalize reports a leak for an acquired local that reached the end of
// its scope unreleased.
func (t *tracker) finalize(v *vstate) {
	if v.finalized {
		return
	}
	v.finalized = true
	if v.origin != -1 || v.escapedHard || v.escapedSoft || v.returned {
		return
	}
	if !v.releasedAny {
		t.reportf(v.acqPos, "%s is acquired but never released: the pooled resource leaks", v.name)
	} else if !v.releasedAll {
		t.reportf(v.acqPos, "%s is released on some paths but not all: the remaining paths leak", v.name)
	}
}

func (t *tracker) reportf(pos token.Pos, format string, args ...any) {
	if t.report != nil {
		t.report(pos, format, args...)
	}
}

// captureFreeVars marks tracked variables referenced inside a function
// literal as hard-escaped: the closure may outlive this activation, so the
// value must not return to the pool while the closure can still see it.
func (t *tracker) captureFreeVars(lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := t.info.Uses[id].(*types.Var); ok {
			if st := t.vars[v]; st != nil {
				st.escapedHard = true
			}
		}
		return true
	})
}

// callName renders a call target for messages.
func callName(call *ast.CallExpr) string {
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if id, ok := unparen(f.X).(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "call"
}
