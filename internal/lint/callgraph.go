package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the inter-procedural substrate of simlint v2: a stdlib-only
// static call graph over every loaded package, plus the //lint:steady and
// //lint:cold annotation vocabulary. Nodes are function declarations and
// function literals; edges are *static* calls — direct function calls and
// method calls on concrete receivers. Calls through function values,
// interface methods, or stored callbacks are deliberately not edges: the
// codebase's hot paths bind closures once and invoke them dynamically, so
// those closures carry their own annotations instead of being reached
// through the binder.

// funcNode is one function in the call graph.
type funcNode struct {
	fn   *types.Func  // nil for function literals
	lit  *ast.FuncLit // nil for declared functions
	decl *ast.FuncDecl
	pkg  *Package

	callees []*funcNode
	callers []*funcNode

	steady bool // //lint:steady — replay entry point of the steady-alloc rule
	cold   bool // //lint:cold — reachability barrier (pool-miss compile path)

	// steadyFrom is the annotated entry whose reachability first claimed
	// this node (nil when the node is unreachable from any steady root).
	steadyFrom *funcNode

	// Tarjan bookkeeping.
	index, lowlink int
	onStack        bool
}

// body returns the node's function body (nil for bodyless declarations).
func (n *funcNode) body() *ast.BlockStmt {
	if n.lit != nil {
		return n.lit.Body
	}
	if n.decl != nil {
		return n.decl.Body
	}
	return nil
}

// pos returns the node's declaration position.
func (n *funcNode) pos() token.Pos {
	if n.lit != nil {
		return n.lit.Pos()
	}
	return n.decl.Pos()
}

// name returns a human-readable name for diagnostics.
func (n *funcNode) name() string {
	if n.fn != nil {
		return funcKey(n.fn)
	}
	return "func literal"
}

// funcKey renders a *types.Func as the canonical configuration key:
// "pkgpath.Name" for package functions, "pkgpath.Recv.Name" for methods
// (pointer receivers are spelled without the star).
func funcKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// callGraph holds every node of the loaded module plus lookup indexes.
type callGraph struct {
	nodes  []*funcNode
	byFunc map[*types.Func]*funcNode
	byLit  map[*ast.FuncLit]*funcNode
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// staticCallee resolves a call expression to the invoked *types.Func when
// the call is static: a direct function call, a package-qualified call, or
// a method call whose receiver has a concrete type. Interface-method and
// function-value calls return nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				// A method expressed through an interface receiver is a
				// dynamic dispatch site, not a static edge.
				if types.IsInterface(sel.Recv()) {
					return nil
				}
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// funcDirectives extracts the //lint:steady and //lint:cold markers that
// apply to a position: a directive on the same line, the preceding line, or
// anywhere in the declaration's doc comment.
type directiveIndex struct {
	fset *token.FileSet
	// byLine maps file -> line -> markers ("steady"/"cold") on that line.
	byLine map[string]map[int][]string
}

func buildDirectiveIndex(fset *token.FileSet, pkgs []*Package) *directiveIndex {
	ix := &directiveIndex{fset: fset, byLine: map[string]map[int][]string{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, cm := range cg.List {
					for _, marker := range []string{"steady", "cold"} {
						if !strings.Contains(cm.Text, "lint:"+marker) {
							continue
						}
						p := fset.Position(cm.Pos())
						m := ix.byLine[p.Filename]
						if m == nil {
							m = map[int][]string{}
							ix.byLine[p.Filename] = m
						}
						m[p.Line] = append(m[p.Line], marker)
					}
				}
			}
		}
	}
	return ix
}

// at reports whether marker applies at pos (same line or the line above).
func (ix *directiveIndex) at(pos token.Pos, marker string) bool {
	p := ix.fset.Position(pos)
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, m := range ix.byLine[p.Filename][line] {
			if m == marker {
				return true
			}
		}
	}
	return false
}

// docHas reports whether a declaration's doc comment carries the marker.
func docHas(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, cm := range doc.List {
		if strings.Contains(cm.Text, "lint:"+marker) {
			return true
		}
	}
	return false
}

// buildCallGraph indexes every function declaration and literal of the
// loaded packages and wires static call edges between them.
func buildCallGraph(pkgs []*Package) *callGraph {
	g := &callGraph{
		byFunc: map[*types.Func]*funcNode{},
		byLit:  map[*ast.FuncLit]*funcNode{},
	}
	if len(pkgs) == 0 {
		return g
	}
	dirs := buildDirectiveIndex(pkgs[0].Fset, pkgs)

	// Pass 1: create nodes.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				n := &funcNode{fn: obj, decl: fd, pkg: pkg}
				n.steady = docHas(fd.Doc, "steady") || dirs.at(fd.Pos(), "steady")
				n.cold = docHas(fd.Doc, "cold") || dirs.at(fd.Pos(), "cold")
				g.nodes = append(g.nodes, n)
				if obj != nil {
					g.byFunc[obj] = n
				}
				// Nested literals become their own nodes.
				ast.Inspect(fd.Body, func(node ast.Node) bool {
					lit, ok := node.(*ast.FuncLit)
					if !ok {
						return true
					}
					ln := &funcNode{lit: lit, pkg: pkg}
					ln.steady = dirs.at(lit.Pos(), "steady")
					ln.cold = dirs.at(lit.Pos(), "cold")
					g.nodes = append(g.nodes, ln)
					g.byLit[lit] = ln
					return true
				})
			}
		}
	}

	// Pass 2: wire static call edges. Calls inside a nested literal belong
	// to the literal's node, not the enclosing function: creating a closure
	// is not calling it. An immediately-invoked, deferred, or go'd literal
	// does get an edge from its creator.
	for _, n := range g.nodes {
		body := n.body()
		if body == nil {
			continue
		}
		g.wireEdges(n, body)
	}
	return g
}

// wireEdges walks owner's own statements (stopping at nested literals) and
// records call edges.
func (g *callGraph) wireEdges(owner *funcNode, body *ast.BlockStmt) {
	info := owner.pkg.Info
	var walk func(node ast.Node) bool
	walk = func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			if x != owner.lit {
				return false // the literal's node walks its own body
			}
		case *ast.CallExpr:
			if lit, ok := unparen(x.Fun).(*ast.FuncLit); ok {
				// Immediately-invoked literal: runs when the owner runs.
				if ln := g.byLit[lit]; ln != nil {
					g.addEdge(owner, ln)
				}
				return true
			}
			if callee := staticCallee(info, x); callee != nil {
				if cn := g.byFunc[callee]; cn != nil {
					g.addEdge(owner, cn)
				}
			}
		case *ast.DeferStmt, *ast.GoStmt:
			var call *ast.CallExpr
			if d, ok := x.(*ast.DeferStmt); ok {
				call = d.Call
			} else {
				call = x.(*ast.GoStmt).Call
			}
			if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
				if ln := g.byLit[lit]; ln != nil {
					g.addEdge(owner, ln)
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

func (g *callGraph) addEdge(from, to *funcNode) {
	for _, c := range from.callees {
		if c == to {
			return
		}
	}
	from.callees = append(from.callees, to)
	to.callers = append(to.callers, from)
}

// postorder returns the nodes callee-first: a DFS postorder, which for an
// acyclic graph yields every callee before its callers. Cycles (recursion)
// are handled by the summary layer iterating to a fixpoint.
func (g *callGraph) postorder() []*funcNode {
	seen := map[*funcNode]bool{}
	var out []*funcNode
	var visit func(n *funcNode)
	visit = func(n *funcNode) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, c := range n.callees {
			visit(c)
		}
		out = append(out, n)
	}
	for _, n := range g.nodes {
		visit(n)
	}
	return out
}

// sccs returns the strongly connected components of the graph in reverse
// topological (callee-first) order, via Tarjan's algorithm. Components with
// more than one node (or a self-loop) are the recursion groups the summary
// propagation iterates over.
func (g *callGraph) sccs() [][]*funcNode {
	index := 1
	var stack []*funcNode
	var out [][]*funcNode
	var strongconnect func(n *funcNode)
	strongconnect = func(n *funcNode) {
		n.index, n.lowlink = index, index
		index++
		stack = append(stack, n)
		n.onStack = true
		for _, c := range n.callees {
			if c.index == 0 {
				strongconnect(c)
				if c.lowlink < n.lowlink {
					n.lowlink = c.lowlink
				}
			} else if c.onStack && c.index < n.lowlink {
				n.lowlink = c.index
			}
		}
		if n.lowlink == n.index {
			var comp []*funcNode
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				m.onStack = false
				comp = append(comp, m)
				if m == n {
					break
				}
			}
			out = append(out, comp)
		}
	}
	for _, n := range g.nodes {
		if n.index == 0 {
			strongconnect(n)
		}
	}
	return out
}

// markSteadyReachable flood-fills steady reachability from every annotated
// entry point, stopping at //lint:cold barriers. Cold nodes themselves are
// not steady (a pool-miss compile path may allocate), and nothing is
// reached through them.
func (g *callGraph) markSteadyReachable() {
	var queue []*funcNode
	for _, n := range g.nodes {
		if n.steady && !n.cold {
			n.steadyFrom = n
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.callees {
			if c.cold || c.steadyFrom != nil {
				continue
			}
			c.steadyFrom = n.steadyFrom
			queue = append(queue, c)
		}
	}
}
