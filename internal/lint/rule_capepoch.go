package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// capepochGuard flags capacity-derived state reused after the capacity
// epoch may have been bumped. Locals assigned from a derived call
// (Link.Capacity, minRoCECapacity, a cached PathCap value — configured via
// the "derived" option plus summary propagation) become stale the moment a
// statement can reach a bump root (Network.SetCapacity, again propagated
// through callees); any later read of a stale local is a finding until the
// local is recomputed. Reads inside the bumping statement itself are fine —
// that is the read-then-reconfigure idiom.
//
// Options:
//
//	bump    — comma-separated funcKeys that invalidate capacity state
//	derived — comma-separated funcKeys whose results are capacity-derived
type capepochGuard struct{}

func (capepochGuard) Name() string { return "capepoch-guard" }
func (capepochGuard) Doc() string {
	return "capacity-derived state must be recomputed after a capacity-epoch bump"
}

func (capepochGuard) Check(c *Checker, pkg *Package) {
	a := c.analysis
	if a == nil {
		return
	}
	for _, n := range a.graph.nodes {
		if n.pkg != pkg {
			continue
		}
		e := &epochTracker{
			c: c, a: a, n: n, info: pkg.Info,
			state:    map[types.Object]epochState{},
			origin:   map[types.Object]token.Pos{},
			reported: map[token.Pos]bool{},
		}
		if body := n.body(); body != nil {
			e.walkStmts(body.List)
		}
	}
}

type epochState int

const (
	epochFresh epochState = iota + 1
	epochStale
)

// epochTracker is the path-insensitive staleness walk of one function body.
type epochTracker struct {
	c        *Checker
	a        *analysis
	n        *funcNode
	info     *types.Info
	state    map[types.Object]epochState
	origin   map[types.Object]token.Pos
	reported map[token.Pos]bool
}

func (e *epochTracker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		e.walkStmt(s)
	}
}

func (e *epochTracker) walkStmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.IfStmt:
		if x.Init != nil {
			e.walkStmt(x.Init)
		}
		e.visitStmtExprs(x.Cond)
		branches := [][]ast.Stmt{x.Body.List}
		if x.Else != nil {
			branches = append(branches, []ast.Stmt{x.Else})
		}
		e.walkBranches(branches)
	case *ast.SwitchStmt:
		if x.Init != nil {
			e.walkStmt(x.Init)
		}
		if x.Tag != nil {
			e.visitStmtExprs(x.Tag)
		}
		e.walkClauses(x.Body)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			e.walkStmt(x.Init)
		}
		e.walkClauses(x.Body)
	case *ast.SelectStmt:
		e.walkClauses(x.Body)
	case *ast.ForStmt:
		if x.Init != nil {
			e.walkStmt(x.Init)
		}
		if x.Cond != nil {
			e.visitStmtExprs(x.Cond)
		}
		// Twice: a bump late in iteration k taints uses early in k+1. The
		// reported set dedups the double visit.
		for i := 0; i < 2; i++ {
			e.walkStmts(x.Body.List)
			if x.Post != nil {
				e.walkStmt(x.Post)
			}
		}
	case *ast.RangeStmt:
		e.visitStmtExprs(x.X)
		for i := 0; i < 2; i++ {
			e.walkStmts(x.Body.List)
		}
	case *ast.BlockStmt:
		e.walkStmts(x.List)
	case *ast.LabeledStmt:
		e.walkStmt(x.Stmt)
	case *ast.AssignStmt:
		e.walkAssign(x)
	default:
		e.visitLeafStmt(s)
	}
}

func (e *epochTracker) walkClauses(body *ast.BlockStmt) {
	var branches [][]ast.Stmt
	for _, cl := range body.List {
		switch cc := cl.(type) {
		case *ast.CaseClause:
			for _, ex := range cc.List {
				e.visitStmtExprs(ex)
			}
			branches = append(branches, cc.Body)
		case *ast.CommClause:
			if cc.Comm != nil {
				e.walkStmt(cc.Comm)
			}
			branches = append(branches, cc.Body)
		}
	}
	e.walkBranches(branches)
}

// walkBranches joins clones pessimistically: stale in any branch is stale
// after the join, fresh only if no branch left it stale.
func (e *epochTracker) walkBranches(branches [][]ast.Stmt) {
	parent := e.state
	parentOrigin := e.origin
	merged := cloneEpoch(parent)
	mergedOrigin := clonePos(parentOrigin)
	for _, b := range branches {
		e.state = cloneEpoch(parent)
		e.origin = clonePos(parentOrigin)
		e.walkStmts(b)
		for obj, st := range e.state {
			if st == epochStale || merged[obj] == 0 {
				if merged[obj] != epochStale {
					merged[obj] = st
				}
			}
			if _, ok := mergedOrigin[obj]; !ok {
				mergedOrigin[obj] = e.origin[obj]
			}
		}
	}
	e.state = merged
	e.origin = mergedOrigin
}

func cloneEpoch(m map[types.Object]epochState) map[types.Object]epochState {
	out := make(map[types.Object]epochState, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func clonePos(m map[types.Object]token.Pos) map[types.Object]token.Pos {
	out := make(map[types.Object]token.Pos, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// walkAssign refreshes or forgets assigned locals and checks RHS uses.
func (e *epochTracker) walkAssign(as *ast.AssignStmt) {
	bumps := e.stmtBumps(as)
	for _, rhs := range as.Rhs {
		if !bumps {
			e.checkUses(rhs)
		}
	}
	if bumps {
		e.markAllStale()
	}
	if (as.Tok != token.DEFINE && as.Tok != token.ASSIGN) || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := objectOf(e.info, id)
		if obj == nil {
			continue
		}
		if call, isCall := unparen(as.Rhs[i]).(*ast.CallExpr); isCall && e.a.callDerived(staticCallee(e.info, call)) {
			e.state[obj] = epochFresh
			e.origin[obj] = as.Rhs[i].Pos()
			continue
		}
		delete(e.state, obj)
		delete(e.origin, obj)
	}
}

// visitLeafStmt handles statements with no nested statement structure.
func (e *epochTracker) visitLeafStmt(s ast.Stmt) {
	bumps := e.stmtBumps(s)
	if !bumps {
		ast.Inspect(s, func(node ast.Node) bool {
			if lit, ok := node.(*ast.FuncLit); ok && lit != e.n.lit {
				return false
			}
			if ex, ok := node.(ast.Expr); ok {
				e.checkIdent(ex)
			}
			return true
		})
	}
	if bumps {
		e.markAllStale()
	}
}

func (e *epochTracker) visitStmtExprs(ex ast.Expr) {
	if ex == nil {
		return
	}
	e.checkUses(ex)
	if e.exprBumps(ex) {
		e.markAllStale()
	}
}

// stmtBumps reports whether any call the statement executes can bump the
// capacity epoch (through any static call chain).
func (e *epochTracker) stmtBumps(s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok && lit != e.n.lit {
			return false
		}
		if call, ok := node.(*ast.CallExpr); ok {
			if e.a.callBumps(staticCallee(e.info, call)) {
				found = true
			}
		}
		return !found
	})
	return found
}

func (e *epochTracker) exprBumps(ex ast.Expr) bool {
	found := false
	ast.Inspect(ex, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok && lit != e.n.lit {
			return false
		}
		if call, ok := node.(*ast.CallExpr); ok {
			if e.a.callBumps(staticCallee(e.info, call)) {
				found = true
			}
		}
		return !found
	})
	return found
}

func (e *epochTracker) markAllStale() {
	for obj, st := range e.state {
		if st == epochFresh {
			e.state[obj] = epochStale
		}
	}
}

// checkUses reports every read of a stale local inside the expression.
func (e *epochTracker) checkUses(ex ast.Expr) {
	ast.Inspect(ex, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok && lit != e.n.lit {
			return false
		}
		if inner, ok := node.(ast.Expr); ok {
			e.checkIdent(inner)
		}
		return true
	})
}

func (e *epochTracker) checkIdent(ex ast.Expr) {
	id, ok := ex.(*ast.Ident)
	if !ok {
		return
	}
	obj := e.info.Uses[id]
	if obj == nil || e.state[obj] != epochStale {
		return
	}
	if e.reported[id.Pos()] {
		return
	}
	e.reported[id.Pos()] = true
	e.c.Reportf(id.Pos(), "%s was computed from link capacities before a capacity-epoch bump; recompute it (or revalidate via CapacityEpoch) before reuse", id.Name)
}
