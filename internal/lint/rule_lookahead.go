package lint

import (
	"go/ast"
	"go/types"
)

// lookaheadPositive proves that every configured lookahead-carrying call
// site receives a strictly positive value: a positive constant, an
// arithmetic combination of positives, a call whose every return is
// provably positive, a local whose every assignment is positive, a
// parameter protected by a dominating "if v < minimum { panic }" guard, or
// a struct field / package variable whose every write across the module is
// positive. The conservative lookahead of the sharded engine and the
// handoff wire latency both degenerate to nondeterministic merges (or a
// runtime panic three layers away) when zero sneaks in.
//
// Options:
//
//	sites — comma-separated "funcKey@argIndex" (zero-based call argument)
type lookaheadPositive struct{}

func (lookaheadPositive) Name() string { return "lookahead-positive" }
func (lookaheadPositive) Doc() string {
	return "lookahead and wire-latency arguments must be provably positive"
}

func (lookaheadPositive) Check(c *Checker, pkg *Package) {
	a := c.analysis
	if a == nil {
		return
	}
	sites := parseRoots(c.Config().Option("lookahead-positive", "sites"))
	if len(sites) == 0 {
		return
	}
	for _, n := range a.graph.nodes {
		if n.pkg != pkg {
			continue
		}
		body := n.body()
		if body == nil {
			continue
		}
		info := pkg.Info
		ast.Inspect(body, func(node ast.Node) bool {
			if lit, ok := node.(*ast.FuncLit); ok && lit != n.lit {
				return false // the literal's own node visits its body
			}
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(info, call)
			if callee == nil {
				return true
			}
			idx, isSite := sites[funcKey(callee)]
			if !isSite || idx >= len(call.Args) {
				return true
			}
			arg := call.Args[idx]
			if !a.provablyPositive(n, arg, map[types.Object]bool{}) {
				c.Reportf(arg.Pos(), "%s at argument %d of %s is not provably positive: a zero lookahead breaks the conservative shard merge", describeExpr(arg), idx, callee.Name())
			}
			return true
		})
	}
}

// describeExpr renders a short label for the offending argument.
func describeExpr(e ast.Expr) string {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if id, ok := unparen(x.X).(*ast.Ident); ok {
			return id.Name + "." + x.Sel.Name
		}
		return x.Sel.Name
	case *ast.CallExpr:
		return callName(x) + "(...)"
	}
	return "lookahead value"
}
