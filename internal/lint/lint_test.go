package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// fixtureConfig applies every rule to every fixture package.
func fixtureConfig() Config {
	return Config{Rules: map[string]RuleConfig{
		"no-wallclock":           {},
		"ordered-map-emit":       {},
		"float-eq":               {},
		"scratch-escape":         {Options: map[string]string{"types": "pooledScratch"}},
		"goroutine-shared-write": {},
		"handle-release": {Options: map[string]string{
			"acquire": "fixture/handle.Pool.Acquire",
			"release": "fixture/handle.Pool.Release@1",
		}},
		"capepoch-guard": {Options: map[string]string{
			"bump":    "fixture/capepoch.Net.SetCapacity",
			"derived": "fixture/capepoch.Link.Capacity",
		}},
		"steady-alloc": {},
		"lookahead-positive": {Options: map[string]string{
			"sites": "fixture/lookahead.Engine.Connect@2",
		}},
		"unused-suppression": {},
	}}
}

var wantRe = regexp.MustCompile(`// want ([a-z-]+)`)

// wantMarkers scans fixture sources for "// want <rule>" annotations and
// returns them as "relpath:line:rule" keys.
func wantMarkers(t *testing.T, root string) map[string]bool {
	t.Helper()
	want := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, _ := filepath.Rel(root, path)
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				want[fmt.Sprintf("%s:%d:%s", rel, line, m[1])] = true
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestFixtures runs every rule over the fixture module and requires the
// finding set to match the // want markers exactly: each marker is a
// positive; every unmarked line (the Good* and Allowed* cases) is a
// negative; //lint:allow sites must produce no finding.
func TestFixtures(t *testing.T) {
	root := filepath.Join("testdata", "src")
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Fatalf("%s: fixture type errors: %v", p.ImportPath, p.TypeErrors)
		}
	}

	absRoot, _ := filepath.Abs(root)
	got := map[string]bool{}
	for _, f := range Run(fixtureConfig(), AllRules(), pkgs) {
		rel, _ := filepath.Rel(absRoot, f.Pos.Filename)
		got[fmt.Sprintf("%s:%d:%s", rel, f.Pos.Line, f.Rule)] = true
	}
	want := wantMarkers(t, root)

	for k := range want {
		if !got[k] {
			t.Errorf("missing finding %s", k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("unexpected finding %s", k)
		}
	}
	// Every rule must contribute at least one fixture positive.
	for _, r := range AllRules() {
		found := false
		for k := range want {
			if strings.HasSuffix(k, ":"+r.Name()) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("rule %s has no fixture positive", r.Name())
		}
	}
}

// TestSelfClean lints this repository with the shipped configuration: the
// tree must stay free of findings (deliberate sites carry //lint:allow).
func TestSelfClean(t *testing.T) {
	loader, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(DefaultConfig(), AllRules(), pkgs)
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

func TestAllowDirective(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"//lint:allow float-eq", []string{"float-eq"}},
		{"//lint:allow float-eq — bit-identity cache key", []string{"float-eq"}},
		{"// lint:allow a,b reason", []string{"a", "b"}},
		{"//lint:allow", nil},
		{"// ordinary comment", nil},
	}
	for _, c := range cases {
		got := allowDirective(c.text)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("allowDirective(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		pattern, path string
		want          bool
	}{
		{"*", "llmbw/internal/sim", true},
		{"llmbw/internal/sim", "llmbw/internal/sim", true},
		{"llmbw/internal/sim", "llmbw/internal/simx", false},
		{"llmbw/cmd/...", "llmbw/cmd/sweep", true},
		{"llmbw/cmd/...", "llmbw/cmd", true},
		{"llmbw/cmd/...", "llmbw/cmdx", false},
	}
	for _, c := range cases {
		if got := matchPattern(c.pattern, c.path); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.pattern, c.path, got, c.want)
		}
	}
}

// TestDefaultConfigCoversAllRules keeps the shipped config and the registry
// in sync: a rule missing from DefaultConfig would silently never run.
func TestDefaultConfigCoversAllRules(t *testing.T) {
	cfg := DefaultConfig()
	var names []string
	for _, r := range AllRules() {
		names = append(names, r.Name())
		if _, ok := cfg.Rules[r.Name()]; !ok {
			t.Errorf("rule %s absent from DefaultConfig", r.Name())
		}
	}
	sort.Strings(names)
	if len(names) < 5 {
		t.Fatalf("expected at least 5 registered rules, have %v", names)
	}
}

// TestLoaderPatterns exercises the supported package patterns.
func TestLoaderPatterns(t *testing.T) {
	loader, err := NewLoader(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	one, err := loader.Load([]string{"./floateq"})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].ImportPath != "fixture/floateq" {
		t.Fatalf("Load(./floateq) = %+v", one)
	}
	if _, err := loader.Load([]string{"./nosuch"}); err == nil {
		t.Fatal("Load(./nosuch) should fail")
	}
	all, err := loader.Load(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 5 {
		t.Fatalf("expected all fixture packages, got %d", len(all))
	}
}
