package lint

import "go/token"

// handleRelease enforces the pooled-resource lifecycle contract: every
// handle or plan acquired from a pool (configured acquire roots, plus any
// function whose summary says it returns a fresh acquisition) must be
// released exactly once on every path. The intra-procedural tracker flags
// leaks, double-releases, releases of values that already escaped into
// longer-lived memory, and releases inside loops of values acquired outside
// them; the summary layer extends all of this across function boundaries.
//
// Options:
//
//	acquire — comma-separated funcKeys whose result is a fresh pooled value
//	release — comma-separated "funcKey@argIndex" releasers (receiver = 0)
type handleRelease struct{}

func (handleRelease) Name() string { return "handle-release" }
func (handleRelease) Doc() string {
	return "pooled handles and plans must be released exactly once on all paths"
}

func (handleRelease) Check(c *Checker, pkg *Package) {
	a := c.analysis
	if a == nil {
		return
	}
	for _, n := range a.graph.nodes {
		if n.pkg != pkg {
			continue
		}
		t := newTracker(a, n, func(pos token.Pos, format string, args ...any) {
			c.Reportf(pos, format, args...)
		})
		t.run()
	}
}
