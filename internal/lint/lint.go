// Package lint is the simulator's own static-analysis pass: it type-checks
// the module from source (stdlib go/parser + go/types, no external
// dependencies) and checks the determinism and invariant contract that the
// golden tests rely on — no wall-clock time in simulation code, no map
// iteration feeding serialized output, no exact float comparison, no pooled
// scratch objects escaping, no unsynchronized writes from goroutines.
//
// Rules are registered in a registry, scoped per package by Config, and can
// be suppressed at a deliberate site with a trailing or preceding
//
//	//lint:allow <rule> — reason
//
// comment. Findings render as "file:line: [rule] message", the format editors
// and CI annotate.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	Pos     token.Position // resolved position (file path relative to module root when possible)
	Rule    string
	Message string
}

// String renders the finding in the canonical file:line: [rule] message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Message)
}

// Rule is one analyzer. Check inspects a single type-checked package and
// reports violations through the Checker.
type Rule interface {
	Name() string
	Doc() string
	Check(c *Checker, pkg *Package)
}

// RuleConfig scopes one rule to a set of packages.
type RuleConfig struct {
	// Include lists import-path patterns the rule applies to. A pattern is
	// an exact import path, a prefix pattern ending in "/..." matching the
	// package and everything below it, or "*" matching every package.
	// An empty list applies the rule everywhere.
	Include []string
	// Exclude lists patterns removed from Include's selection.
	Exclude []string
	// Options carries rule-specific tuning (e.g. pooled type names for
	// scratch-escape).
	Options map[string]string
}

// Config selects which rules run where. Rules absent from the map run
// nowhere, so a config is also the rule enable-list.
type Config struct {
	Rules map[string]RuleConfig
}

// matchPattern reports whether the import path matches one pattern.
func matchPattern(pattern, path string) bool {
	if pattern == "*" || pattern == "..." {
		return true
	}
	if prefix, ok := strings.CutSuffix(pattern, "/..."); ok {
		return path == prefix || strings.HasPrefix(path, prefix+"/")
	}
	return path == pattern
}

func matchAny(patterns []string, path string) bool {
	for _, p := range patterns {
		if matchPattern(p, path) {
			return true
		}
	}
	return false
}

// Applies reports whether the rule named r runs on the package.
func (c Config) Applies(r, importPath string) bool {
	rc, ok := c.Rules[r]
	if !ok {
		return false
	}
	if len(rc.Include) > 0 && !matchAny(rc.Include, importPath) {
		return false
	}
	return !matchAny(rc.Exclude, importPath)
}

// Option returns a rule option value ("" when unset).
func (c Config) Option(rule, key string) string {
	return c.Rules[rule].Options[key]
}

// Checker carries the run state shared by all rules: the config, the file
// set, and the accumulated findings (with suppression applied).
type Checker struct {
	cfg      Config
	fset     *token.FileSet
	rule     string // rule currently executing
	findings []Finding
	// allowed maps file -> line -> rules suppressed at that line.
	allowed map[string]map[int][]string
	// suppressed counts findings dropped by //lint:allow comments.
	suppressed int
	// hits records which suppressions actually silenced a finding
	// (file -> line -> rule), feeding the unused-suppression audit.
	hits map[string]map[int]map[string]bool
	// ranRules names every rule executed in this run.
	ranRules map[string]bool
	// analysis is the inter-procedural layer (call graph + summaries) the
	// v2 rules consult; built once per Run.
	analysis *analysis
}

// NewChecker builds a checker over the loaded packages' file set.
func NewChecker(cfg Config, fset *token.FileSet) *Checker {
	return &Checker{
		cfg: cfg, fset: fset,
		allowed:  map[string]map[int][]string{},
		hits:     map[string]map[int]map[string]bool{},
		ranRules: map[string]bool{},
	}
}

// Config exposes the active configuration to rules.
func (c *Checker) Config() Config { return c.cfg }

// Reportf records a finding at pos for the rule currently running, unless a
// //lint:allow comment on the same or the preceding line suppresses it.
func (c *Checker) Reportf(pos token.Pos, format string, args ...any) {
	p := c.fset.Position(pos)
	if c.isAllowed(p) {
		c.suppressed++
		return
	}
	c.findings = append(c.findings, Finding{Pos: p, Rule: c.rule, Message: fmt.Sprintf(format, args...)})
}

func (c *Checker) isAllowed(p token.Position) bool {
	lines := c.allowed[p.Filename]
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, r := range lines[line] {
			if r == c.rule || r == "*" {
				c.recordHit(p.Filename, line, c.rule)
				return true
			}
		}
	}
	return false
}

// recordHit marks the suppression at (file, line) as having silenced rule.
func (c *Checker) recordHit(file string, line int, rule string) {
	m := c.hits[file]
	if m == nil {
		m = map[int]map[string]bool{}
		c.hits[file] = m
	}
	if m[line] == nil {
		m[line] = map[string]bool{}
	}
	m[line][rule] = true
}

// suppressionHit reports whether the //lint:allow at (file, line) silenced
// at least one finding of rule during this run.
func (c *Checker) suppressionHit(file string, line int, rule string) bool {
	return c.hits[file][line][rule]
}

// Suppressed reports how many findings //lint:allow comments silenced.
func (c *Checker) Suppressed() int { return c.suppressed }

// allowDirective extracts the rule list of one "lint:allow" comment line.
// Accepted forms: "//lint:allow rule", "//lint:allow rule1,rule2 — reason".
func allowDirective(text string) []string {
	const marker = "lint:allow"
	i := strings.Index(text, marker)
	if i < 0 {
		return nil
	}
	rest := strings.TrimSpace(text[i+len(marker):])
	if rest == "" {
		return nil
	}
	// The rule list is the first whitespace-delimited token; anything after
	// (a dash, a reason) is commentary.
	if j := strings.IndexAny(rest, " \t"); j >= 0 {
		rest = rest[:j]
	}
	var rules []string
	for _, r := range strings.Split(rest, ",") {
		if r = strings.TrimSpace(r); r != "" {
			rules = append(rules, r)
		}
	}
	return rules
}

// registerSuppressions scans a package's comments for //lint:allow lines.
func (c *Checker) registerSuppressions(pkg *Package) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				rules := allowDirective(cm.Text)
				if len(rules) == 0 {
					continue
				}
				p := c.fset.Position(cm.Pos())
				m := c.allowed[p.Filename]
				if m == nil {
					m = map[int][]string{}
					c.allowed[p.Filename] = m
				}
				m[p.Line] = append(m[p.Line], rules...)
			}
		}
	}
}

// Run executes every configured rule over every in-scope package and returns
// the findings sorted by position.
func Run(cfg Config, rules []Rule, pkgs []*Package) []Finding {
	if len(pkgs) == 0 {
		return nil
	}
	c := NewChecker(cfg, pkgs[0].Fset)
	for _, pkg := range pkgs {
		c.registerSuppressions(pkg)
	}
	c.analysis = buildAnalysis(cfg, pkgs)
	for _, r := range rules {
		c.rule = r.Name()
		c.ranRules[r.Name()] = true
		for _, pkg := range pkgs {
			if cfg.Applies(r.Name(), pkg.ImportPath) {
				r.Check(c, pkg)
			}
		}
	}
	sort.Slice(c.findings, func(i, j int) bool {
		a, b := c.findings[i], c.findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return c.findings
}

// AllRules returns the registry in stable (registration) order.
// unusedSuppression must stay last: it audits the hit log every other rule
// filled in.
func AllRules() []Rule {
	return []Rule{
		noWallclock{},
		orderedMapEmit{},
		floatEq{},
		scratchEscape{},
		goroutineSharedWrite{},
		handleRelease{},
		capepochGuard{},
		steadyAlloc{},
		lookaheadPositive{},
		unusedSuppression{},
	}
}

// DefaultConfig is the determinism contract of this repository: which rule
// guards which packages. Test files are always exempt (the loader does not
// feed them to rules); deliberate violations carry //lint:allow comments.
func DefaultConfig() Config {
	return Config{Rules: map[string]RuleConfig{
		// Simulation code runs on the virtual clock only: wall-clock reads
		// or the global rand source would make runs machine-dependent.
		"no-wallclock": {Include: []string{
			"llmbw/internal/sim", "llmbw/internal/fabric",
			"llmbw/internal/train", "llmbw/internal/runner",
			"llmbw/internal/scenario", "llmbw/internal/schedule",
			"llmbw/internal/serve",
		}},
		// Everything that serializes output must iterate maps in a sorted
		// order, or goldens stop being byte-identical.
		"ordered-map-emit": {Include: []string{
			"llmbw/internal/report", "llmbw/internal/train",
			"llmbw/internal/trace", "llmbw/internal/telemetry",
			"llmbw/internal/whatif", "llmbw/internal/stress",
			"llmbw/internal/topology", "llmbw/internal/collective",
			"llmbw/internal/scenario", "llmbw/internal/serve",
			"llmbw/cmd/...",
		}},
		// Exact float equality is only meaningful against constants; two
		// computed values need an epsilon (or an allow comment arguing why
		// bit-equality is intended).
		"float-eq": {},
		// The fabric recycles solver scratch and completion events, the
		// collective layer recycles compiled plans and handles, and the
		// schedule executor recycles flow sets and stream issue records;
		// handing a pooled pointer across the exported API would let
		// callers observe reuse. Each type name binds in its own package's
		// scope only. The deliberate hand-offs (pooled Handles with a
		// documented Release contract) carry allow comments.
		"scratch-escape": {
			Include: []string{
				"llmbw/internal/fabric", "llmbw/internal/collective",
				"llmbw/internal/schedule", "llmbw/internal/serve",
			},
			Options: map[string]string{
				"types": "completionEvent,Plan,Handle,flowSet,asyncIssue,handoffXfer",
			},
		},
		// Only internal/runner is allowed to coordinate real goroutines;
		// everywhere else a write to captured state from a go closure is a
		// data race waiting for -race to find it.
		"goroutine-shared-write": {Exclude: []string{"llmbw/internal/runner"}},
		// Pooled handles, compiled plans, and handoff transfers must come
		// back to their free lists exactly once. Acquire roots are the pool
		// pop sites; release roots name which argument goes back (receiver
		// is index 0). Summaries extend both sets through callees.
		"handle-release": {
			Include: []string{
				"llmbw/internal/collective", "llmbw/internal/fabric",
				"llmbw/internal/train", "llmbw/internal/schedule",
				"llmbw/internal/serve",
			},
			Options: map[string]string{
				"acquire": "llmbw/internal/collective.Group.NewHandle," +
					"llmbw/internal/collective.Group.acquirePlan," +
					"llmbw/internal/fabric.Handoff.acquire",
				"release": "llmbw/internal/collective.Handle.Release@0," +
					"llmbw/internal/collective.Group.releasePlan@1," +
					"llmbw/internal/fabric.Handoff.recycle@1",
			},
		},
		// Capacity-derived values (link capacities, route minima, cached
		// path caps) go stale when SetCapacity bumps the epoch; reusing one
		// without recomputing reintroduces the bug the capEpoch fence fixed.
		"capepoch-guard": {
			Include: []string{
				"llmbw/internal/collective", "llmbw/internal/fabric",
				"llmbw/internal/train", "llmbw/internal/whatif",
			},
			Options: map[string]string{
				"bump": "llmbw/internal/fabric.Network.SetCapacity",
				"derived": "llmbw/internal/fabric.Link.Capacity," +
					"llmbw/internal/fabric.Network.CapacityEpoch," +
					"llmbw/internal/fabric.PathCap.Value," +
					"llmbw/internal/collective.minRoCECapacity",
			},
		},
		// The replay hot paths are pinned at 0 allocs/op; //lint:steady
		// marks the entry points and this rule audits everything statically
		// reachable from them. //lint:cold fences pool-miss compile paths.
		"steady-alloc": {Include: []string{
			"llmbw/internal/sim", "llmbw/internal/fabric",
			"llmbw/internal/collective", "llmbw/internal/train",
			"llmbw/internal/scenario", "llmbw/internal/schedule",
			"llmbw/internal/serve",
		}},
		// Conservative PDES merge order and handoff wire hops rely on
		// strictly positive lookahead; a zero reaching Connect or NewHandoff
		// only surfaces as a panic (or a nondeterministic merge) much later.
		"lookahead-positive": {
			Options: map[string]string{
				"sites": "llmbw/internal/sim.ShardedEngine.Connect@2," +
					"llmbw/internal/fabric.NewHandoff@3",
			},
		},
		// Every //lint:allow must still be earning its keep.
		"unused-suppression": {},
	}}
}
