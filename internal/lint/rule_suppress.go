package lint

import (
	"go/token"
	"sort"
)

// unusedSuppression keeps the //lint:allow inventory honest: a suppression
// naming a rule that ran on the file's package but silenced nothing at that
// position is itself a finding. It must be registered last so every other
// rule has already recorded its hits.
type unusedSuppression struct{}

func (unusedSuppression) Name() string { return "unused-suppression" }
func (unusedSuppression) Doc() string {
	return "//lint:allow comments whose rule no longer fires there must be removed"
}

func (unusedSuppression) Check(c *Checker, pkg *Package) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				rules := allowDirective(cm.Text)
				if len(rules) == 0 {
					continue
				}
				p := c.fset.Position(cm.Pos())
				sort.Strings(rules)
				for _, r := range rules {
					if r == "*" || r == "unused-suppression" {
						continue // wildcard and self-suppression are not audited
					}
					if !c.ranRules[r] || !c.cfg.Applies(r, pkg.ImportPath) {
						continue // the rule never ran here; cannot judge the suppression
					}
					if c.suppressionHit(p.Filename, p.Line, r) {
						continue
					}
					c.reportUnused(cm.Pos(), r)
				}
			}
		}
	}
}

// reportUnused bypasses the usual allow check for the audited rule but still
// honors a suppression of unused-suppression itself.
func (c *Checker) reportUnused(pos token.Pos, rule string) {
	c.Reportf(pos, "//lint:allow %s suppresses nothing here: the rule no longer fires at this position", rule)
}
