package lint

import (
	"path/filepath"
	"testing"
)

// loadFixture type-checks one fixture package for white-box graph tests.
func loadFixture(t *testing.T, pattern string) []*Package {
	t.Helper()
	loader, err := NewLoader(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load([]string{pattern})
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

func (a *analysis) nodeByName(name string) *funcNode {
	for _, n := range a.graph.nodes {
		if n.fn != nil && n.fn.Name() == name {
			return n
		}
	}
	return nil
}

// TestCallGraphEdges pins the static-edge contract on the handle fixture:
// direct calls and concrete-receiver methods are edges, and a recursive
// helper lands in a single SCC with itself.
func TestCallGraphEdges(t *testing.T) {
	pkgs := loadFixture(t, "./handle")
	a := buildAnalysis(fixtureConfig(), pkgs)

	cross := a.nodeByName("CrossLeak")
	mint := a.nodeByName("mint")
	if cross == nil || mint == nil {
		t.Fatal("CrossLeak or mint missing from the call graph")
	}
	found := false
	for _, c := range cross.callees {
		if c == mint {
			found = true
		}
	}
	if !found {
		t.Error("CrossLeak -> mint edge missing")
	}

	drain := a.nodeByName("drain")
	if drain == nil {
		t.Fatal("drain missing from the call graph")
	}
	self := false
	for _, c := range drain.callees {
		if c == drain {
			self = true
		}
	}
	if !self {
		t.Error("drain's recursive self-edge missing")
	}
	for _, scc := range a.graph.sccs() {
		for _, n := range scc {
			if n == drain && len(scc) != 1 {
				t.Errorf("drain SCC has %d members, want 1 (self-loop)", len(scc))
			}
		}
	}
}

// TestSummaryPropagation pins the fixpoint results the rules consume:
// mint's summary acquires, done releases its handle parameter, and the
// recursive drain converges to releasing on all paths is NOT claimed (the
// n>0 path defers to the recursive call, whose release summary propagates).
func TestSummaryPropagation(t *testing.T) {
	pkgs := loadFixture(t, "./handle")
	a := buildAnalysis(fixtureConfig(), pkgs)

	if n := a.nodeByName("mint"); n == nil || !a.sums[n].acquires {
		t.Error("mint's summary should mark the result acquired")
	}
	if n := a.nodeByName("done"); n == nil || len(a.sums[n].releases) < 3 || !a.sums[n].releases[2] {
		t.Error("done's summary should release parameter h (slot 2: receiver-less, p=1, h=2)")
	}
	if n := a.nodeByName("drain"); n == nil || len(a.sums[n].releases) < 3 || !a.sums[n].releases[2] {
		t.Error("drain's recursive summary should converge to releasing h")
	}
	if n := a.nodeByName("use"); n != nil && len(a.sums[n].releases) > 1 && a.sums[n].releases[1] {
		t.Error("use must not claim to release its argument")
	}
}

// TestSteadyReachability pins the //lint:steady // //lint:cold vocabulary
// on the steadyalloc fixture: step is reachable from the Replay entry,
// compile is fenced off by its cold marker, Refill is unreachable.
func TestSteadyReachability(t *testing.T) {
	pkgs := loadFixture(t, "./steadyalloc")
	a := buildAnalysis(fixtureConfig(), pkgs)

	replay := a.nodeByName("Replay")
	if replay == nil || !replay.steady {
		t.Fatal("Replay should carry the steady marker")
	}
	if n := a.nodeByName("step"); n == nil || n.steadyFrom == nil {
		t.Error("step should be steady-reachable from Replay")
	}
	if n := a.nodeByName("compile"); n == nil || !n.cold || n.steadyFrom != nil {
		t.Error("compile is cold: it must fence steady reachability")
	}
	if n := a.nodeByName("Refill"); n == nil || n.steadyFrom != nil {
		t.Error("Refill is never called from a steady entry; it must stay unmarked")
	}
}
