package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis. Only non-test files are loaded: the contract applies to shipped
// code, and tests are free to print maps or compare floats as they see fit.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects type-check diagnostics. Analysis proceeds with
	// partial type information; rules skip nodes whose types are unknown.
	TypeErrors []error
}

// Loader parses and type-checks module packages from source. Imports inside
// the module resolve recursively through the loader itself; standard-library
// imports type-check from GOROOT source via go/importer's "source" compiler,
// so no compiled export data and no third-party machinery is needed.
type Loader struct {
	Root    string // module root directory (holds go.mod)
	ModPath string // module path declared in go.mod

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package // by import path; nil entry marks in-progress
}

// NewLoader builds a loader for the module rooted at dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:    abs,
		ModPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
	}, nil
}

// Fset exposes the shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}

// Load resolves the given patterns to packages and loads them (plus their
// intra-module dependencies, which are type-checked but not returned unless
// matched). Supported patterns: "./..." for the whole module, "./dir" or
// "./dir/..." relative to the module root, and full import paths.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	all, err := l.modulePackages()
	if err != nil {
		return nil, err
	}
	want := map[string]bool{}
	for _, pat := range patterns {
		ipat, err := l.importPattern(pat)
		if err != nil {
			return nil, err
		}
		matched := false
		for _, ip := range all {
			if matchPattern(ipat, ip) {
				want[ip] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("lint: pattern %q matches no packages", pat)
		}
	}
	var out []*Package
	for _, ip := range all { // all is sorted, so output order is stable
		if !want[ip] {
			continue
		}
		pkg, err := l.loadPackage(ip)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// importPattern normalizes a command-line pattern to an import-path pattern.
func (l *Loader) importPattern(pat string) (string, error) {
	switch {
	case pat == "." || pat == "./":
		return l.ModPath, nil
	case strings.HasPrefix(pat, "./"):
		rest := strings.TrimPrefix(pat, "./")
		if rest == "..." {
			return l.ModPath + "/...", nil
		}
		return l.ModPath + "/" + strings.TrimSuffix(rest, "/"), nil
	case pat == "...":
		return l.ModPath + "/...", nil
	case strings.Contains(pat, "/") || pat == l.ModPath:
		return pat, nil
	default:
		return "", fmt.Errorf("lint: unsupported package pattern %q", pat)
	}
}

// modulePackages walks the module tree and returns every import path that
// contains at least one non-test .go file, sorted.
func (l *Loader) modulePackages() ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		files, err := sourceFiles(path)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.Root, path)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, l.ModPath)
		} else {
			out = append(out, l.ModPath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}

// sourceFiles lists the non-test .go files of a directory, sorted.
func sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Strings(out)
	return out, nil
}

// dirFor maps a module import path to its directory.
func (l *Loader) dirFor(importPath string) string {
	if importPath == l.ModPath {
		return l.Root
	}
	rel := strings.TrimPrefix(importPath, l.ModPath+"/")
	return filepath.Join(l.Root, filepath.FromSlash(rel))
}

// inModule reports whether the import path belongs to the loaded module.
func (l *Loader) inModule(path string) bool {
	return path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/")
}

// Import implements types.Importer: module packages load recursively through
// the loader, everything else defers to the source importer for the standard
// library.
func (l *Loader) Import(path string) (*types.Package, error) {
	if !l.inModule(path) {
		return l.std.Import(path)
	}
	pkg, err := l.loadPackage(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

// loadPackage parses and type-checks one module package (cached).
func (l *Loader) loadPackage(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", importPath)
		}
		return pkg, nil
	}
	l.pkgs[importPath] = nil // cycle guard
	dir := l.dirFor(importPath)
	files, err := sourceFiles(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", importPath, err)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg := &Package{ImportPath: importPath, Dir: dir, Fset: l.fset}
	for _, f := range files {
		af, err := parser.ParseFile(l.fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		pkg.Files = append(pkg.Files, af)
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(importPath, l.fset, pkg.Files, pkg.Info)
	if tpkg == nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	pkg.Types = tpkg
	l.pkgs[importPath] = pkg
	return pkg, nil
}
