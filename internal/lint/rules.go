package lint

import (
	"go/ast"
	"go/types"
)

// pkgFuncRef resolves a selector expression to (package path, name) when its
// base is a package name — e.g. time.Now -> ("time", "Now"). Returns ok=false
// for field/method selectors and unresolved identifiers.
func pkgFuncRef(info *types.Info, sel *ast.SelectorExpr) (path, name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// isFloat reports whether t is (or defaults to) a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// rootIdent unwraps selectors, indexing, derefs and parens down to the
// left-most identifier of an lvalue expression (nil when none).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// eachFile walks every file of the package with the visitor.
func eachFile(pkg *Package, visit func(f *ast.File)) {
	for _, f := range pkg.Files {
		visit(f)
	}
}
