package lint

import (
	"go/ast"
	"go/types"
)

// steadyAlloc guards the AllocsPerRun pins: any function reachable (over
// static call edges) from a //lint:steady entry point must stay
// allocation-free. It flags append growth, make/new, map and slice
// composite literals, &T{} literals, closure creation, go statements,
// defers, string concatenation, variadic argument collection, and interface
// boxing at call sites and conversions. //lint:cold marks pool-miss compile
// paths the reachability flood does not cross, and arguments of a direct
// panic(...) are exempt — a panic aborts the replay anyway.
type steadyAlloc struct{}

func (steadyAlloc) Name() string { return "steady-alloc" }
func (steadyAlloc) Doc() string {
	return "functions reachable from //lint:steady entry points must not allocate"
}

func (steadyAlloc) Check(c *Checker, pkg *Package) {
	a := c.analysis
	if a == nil {
		return
	}
	for _, n := range a.graph.nodes {
		if n.pkg != pkg || n.steadyFrom == nil {
			continue
		}
		checkSteadyNode(c, a, n)
	}
}

func checkSteadyNode(c *Checker, a *analysis, n *funcNode) {
	body := n.body()
	if body == nil {
		return
	}
	info := n.pkg.Info
	from := n.steadyFrom.name()
	ast.Inspect(body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			if x == n.lit {
				return true
			}
			// Creating a closure in the steady path allocates; the literal's
			// own body is checked through its own node's reachability.
			c.Reportf(x.Pos(), "closure created in steady path (reachable from %s): binding a func literal allocates", from)
			return false
		case *ast.GoStmt:
			c.Reportf(x.Pos(), "go statement in steady path (reachable from %s): spawning a goroutine allocates", from)
		case *ast.DeferStmt:
			c.Reportf(x.Pos(), "defer in steady path (reachable from %s): deferred calls can allocate per run", from)
		case *ast.CompositeLit:
			t := info.Types[x].Type
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Map, *types.Slice:
				c.Reportf(x.Pos(), "map/slice literal in steady path (reachable from %s) allocates", from)
			}
		case *ast.UnaryExpr:
			if x.Op.String() == "&" {
				if _, isLit := unparen(x.X).(*ast.CompositeLit); isLit {
					c.Reportf(x.Pos(), "&T{...} in steady path (reachable from %s) allocates", from)
				}
			}
		case *ast.BinaryExpr:
			if x.Op.String() == "+" {
				if t := info.Types[x.X].Type; t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						if !isConstExpr(info, x) {
							c.Reportf(x.Pos(), "string concatenation in steady path (reachable from %s) allocates", from)
						}
					}
				}
			}
		case *ast.CallExpr:
			if isPanicCall(info, x) {
				return false // a panic aborts the replay; its message may allocate
			}
			checkSteadyCall(c, info, x, from)
		}
		return true
	})
}

// isConstExpr reports whether the whole expression folds to a constant.
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// isPanicCall matches the builtin panic.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// checkSteadyCall flags allocating builtins, variadic collection, and
// interface boxing at one call site.
func checkSteadyCall(c *Checker, info *types.Info, call *ast.CallExpr, from string) {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				c.Reportf(call.Pos(), "append in steady path (reachable from %s) may grow the backing array", from)
			case "make":
				c.Reportf(call.Pos(), "make in steady path (reachable from %s) allocates", from)
			case "new":
				c.Reportf(call.Pos(), "new in steady path (reachable from %s) allocates", from)
			}
			return
		}
	}
	tv, ok := info.Types[unparen(call.Fun)]
	if !ok {
		return
	}
	// Conversion to an interface type boxes the operand.
	if tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at := info.Types[call.Args[0]].Type; at != nil && !types.IsInterface(at) {
				c.Reportf(call.Pos(), "conversion to interface in steady path (reachable from %s) boxes the value", from)
			}
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	// Collecting variadic arguments builds a slice per call.
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= params.Len() {
		c.Reportf(call.Pos(), "variadic call in steady path (reachable from %s) allocates its argument slice", from)
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok && !call.Ellipsis.IsValid() {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		c.Reportf(arg.Pos(), "interface boxing in steady path (reachable from %s): concrete argument passed as interface", from)
	}
}
