package lint

import (
	"go/ast"
	"go/token"
)

// floatEq flags == and != between two computed floating-point values.
// Comparing against a compile-time constant (0, math.MaxFloat64, a sentinel)
// is a deliberate bit-pattern test and stays allowed; comparing two computed
// floats is almost always a rounding-sensitive bug that should use an epsilon
// helper — or carry an allow directive naming float-eq, arguing why bit
// equality is the intended semantics (e.g. an idempotence fast path).
type floatEq struct{}

func (floatEq) Name() string { return "float-eq" }
func (floatEq) Doc() string {
	return "flag exact ==/!= between computed floats; compare with an epsilon"
}

func (floatEq) Check(c *Checker, pkg *Package) {
	eachFile(pkg, func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, yt := pkg.Info.Types[be.X], pkg.Info.Types[be.Y]
			if !isFloat(xt.Type) || !isFloat(yt.Type) {
				return true
			}
			if xt.Value != nil || yt.Value != nil {
				return true // constant comparison: a deliberate exact test
			}
			c.Reportf(be.OpPos, "exact float comparison (%s): use an epsilon or justify with //lint:allow float-eq", be.Op)
			return true
		})
	})
}
