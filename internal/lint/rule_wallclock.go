package lint

import (
	"go/ast"
)

// noWallclock forbids wall-clock reads and the globally seeded rand source in
// simulation packages. The simulator's clock is virtual; a time.Now or a bare
// rand.Float64 in model code makes two runs of the same configuration
// diverge, which silently breaks the byte-identical golden contract.
type noWallclock struct{}

func (noWallclock) Name() string { return "no-wallclock" }
func (noWallclock) Doc() string {
	return "forbid time.Now/time.Since and the global math/rand source in simulation code"
}

// randConstructors are the math/rand names that merely build an explicitly
// seeded generator; those stay deterministic and are allowed.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func (noWallclock) Check(c *Checker, pkg *Package) {
	eachFile(pkg, func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgFuncRef(pkg.Info, sel)
			if !ok {
				return true
			}
			switch {
			case path == "time" && (name == "Now" || name == "Since"):
				c.Reportf(sel.Pos(), "time.%s in simulation code: use the engine's virtual clock", name)
			case (path == "math/rand" || path == "math/rand/v2") && !randConstructors[name]:
				c.Reportf(sel.Pos(), "rand.%s uses the global rand source: seed an explicit rand.New(rand.NewSource(...))", name)
			}
			return true
		})
	})
}
