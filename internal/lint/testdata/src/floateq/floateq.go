// Package floateq exercises the float-eq rule.
package floateq

import "math"

// Bad compares two computed floats exactly.
func Bad(a, b float64) bool {
	return a == b // want float-eq
}

// BadNeq is the != form on float32.
func BadNeq(a, b float32) bool {
	return a != b // want float-eq
}

// GoodConst compares against compile-time constants — deliberate sentinels.
func GoodConst(a float64) bool {
	return a == 0 || a == math.MaxFloat64
}

// GoodEpsilon is the required idiom for computed values.
func GoodEpsilon(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

// GoodInts: integer equality is out of scope.
func GoodInts(a, b int) bool {
	return a == b
}

// Allowed justifies a bit-identity check.
func Allowed(a, b float64) bool {
	return a == b //lint:allow float-eq — bit-identity cache key
}
