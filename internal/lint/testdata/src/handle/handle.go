// Package handle exercises the handle-release rule: pooled values must be
// released exactly once on every path, across function boundaries.
package handle

type Handle struct{ id int }

type Pool struct {
	free []*Handle
	tail *Handle
}

// Acquire is the configured acquire root.
func (p *Pool) Acquire() *Handle {
	h := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return h
}

// Release is the configured release root (argument index 1).
func (p *Pool) Release(h *Handle) {
	p.free = append(p.free, h)
}

func use(h *Handle) { _ = h.id }

// Good acquires and releases on the single path.
func Good(p *Pool) {
	h := p.Acquire()
	use(h)
	p.Release(h)
}

// Leak never releases.
func Leak(p *Pool) {
	h := p.Acquire() // want handle-release
	use(h)
}

// Dropped discards the acquired value outright.
func Dropped(p *Pool) {
	p.Acquire() // want handle-release
}

// Double releases twice on the same path.
func Double(p *Pool) {
	h := p.Acquire()
	p.Release(h)
	p.Release(h) // want handle-release
}

// BranchLeak releases on one branch only.
func BranchLeak(p *Pool, cond bool) {
	h := p.Acquire() // want handle-release
	if cond {
		p.Release(h)
	}
}

// BranchGood releases on every branch.
func BranchGood(p *Pool, cond bool) {
	h := p.Acquire()
	if cond {
		p.Release(h)
	} else {
		p.Release(h)
	}
}

// EscapeRelease stores the handle into long-lived memory, then releases it:
// the stored reference would observe pool reuse.
func EscapeRelease(p *Pool) {
	h := p.Acquire()
	p.tail = h
	p.Release(h) // want handle-release
}

// LoopRelease releases inside a loop a handle acquired outside it. The
// acquisition is also flagged: a zero-iteration loop releases nothing.
func LoopRelease(p *Pool) {
	h := p.Acquire() // want handle-release
	for i := 0; i < 3; i++ {
		p.Release(h) // want handle-release
	}
}

// Reassign drops the first handle by overwriting the variable.
func Reassign(p *Pool) {
	h := p.Acquire() // want handle-release
	h = p.Acquire()
	p.Release(h)
}

// mint returns a fresh acquisition; its summary marks the result acquired.
func mint(p *Pool) *Handle {
	return p.Acquire()
}

// CrossLeak leaks a handle acquired through a helper.
func CrossLeak(p *Pool) {
	h := mint(p) // want handle-release
	use(h)
}

// CrossGood releases the helper-acquired handle.
func CrossGood(p *Pool) {
	h := mint(p)
	p.Release(h)
}

// done releases its argument; its summary propagates to callers.
func done(p *Pool, h *Handle) {
	p.Release(h)
}

// HelperRelease releases through the helper: clean.
func HelperRelease(p *Pool) {
	h := p.Acquire()
	done(p, h)
}

// HelperDouble releases through the helper and then again directly.
func HelperDouble(p *Pool) {
	h := p.Acquire()
	done(p, h)
	p.Release(h) // want handle-release
}

// drain recurses until the count is spent, then releases: the summary of a
// recursion group must reach its fixpoint.
func drain(p *Pool, h *Handle, n int) {
	if n <= 0 {
		p.Release(h)
		return
	}
	drain(p, h, n-1)
}

// RecursiveGood releases through the recursive helper.
func RecursiveGood(p *Pool) {
	h := p.Acquire()
	drain(p, h, 3)
}

// GoodClosure hands the handle to a closure that releases it later: the
// capture is an escape, not a leak.
func GoodClosure(p *Pool) func() {
	h := p.Acquire()
	return func() { p.Release(h) }
}

// GoodReturned transfers ownership to the caller.
func GoodReturned(p *Pool) *Handle {
	h := p.Acquire()
	use(h)
	return h
}

// AllowedLeak is a deliberate ownership transfer blessed by a suppression.
func AllowedLeak(p *Pool) {
	h := p.Acquire() //lint:allow handle-release — ownership moves to the pool ledger
	use(h)
}
