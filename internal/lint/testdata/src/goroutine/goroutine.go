// Package goroutine exercises the goroutine-shared-write rule.
package goroutine

import "sync"

// Bad writes captured variables from go closures.
func Bad() int {
	total := 0
	counts := map[string]int{}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		total++ // want goroutine-shared-write
	}()
	go func() {
		defer wg.Done()
		counts["x"] = 1 // want goroutine-shared-write
	}()
	wg.Wait()
	return total
}

// BadPointer mutates shared state through a captured pointer.
func BadPointer(s *[]int, done chan struct{}) {
	go func() {
		*s = append(*s, 1) // want goroutine-shared-write
		close(done)
	}()
}

// Good communicates over a channel; closure-local state is fine.
func Good(in []int) int {
	out := make(chan int)
	go func() {
		sum := 0
		for _, v := range in {
			sum += v
		}
		out <- sum
	}()
	return <-out
}

// Allowed documents an externally synchronized write.
func Allowed(mu *sync.Mutex) {
	x := 0
	go func() {
		mu.Lock()
		defer mu.Unlock()
		x = 1 //lint:allow goroutine-shared-write — guarded by mu
	}()
	_ = x
}
