// Package goroutine exercises the goroutine-shared-write rule.
package goroutine

import "sync"

// Bad writes captured variables from go closures.
func Bad() int {
	total := 0
	counts := map[string]int{}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		total++ // want goroutine-shared-write
	}()
	go func() {
		defer wg.Done()
		counts["x"] = 1 // want goroutine-shared-write
	}()
	wg.Wait()
	return total
}

// BadPointer mutates shared state through a captured pointer.
func BadPointer(s *[]int, done chan struct{}) {
	go func() {
		*s = append(*s, 1) // want goroutine-shared-write
		close(done)
	}()
}

// Good communicates over a channel; closure-local state is fine.
func Good(in []int) int {
	out := make(chan int)
	go func() {
		sum := 0
		for _, v := range in {
			sum += v
		}
		out <- sum
	}()
	return <-out
}

// hits is the shared state the named-launch cases fight over.
var hits int

// bump writes a package-level variable; launching it with `go` races.
func bump() {
	hits++ // want goroutine-shared-write
}

// BadNamedFunc launches a same-package function that mutates package state.
func BadNamedFunc(done chan struct{}) {
	go func() { // the closure itself is clean; bump is flagged at its body
		bump()
		close(done)
	}()
	go bump()
	go bump() // one body, one finding: launch sites do not multiply reports
}

// worker owns its state through the receiver — the explicit hand-off idiom.
type worker struct {
	n   int
	out chan int
}

// run writes only through the receiver and a channel: clean.
func (w *worker) run(rounds int) {
	for i := 0; i < rounds; i++ {
		w.n++ // receiver write: the launcher handed w off explicitly
		w.out <- w.n
	}
}

// leak copies receiver state into a package-level variable: flagged.
func (w *worker) leak() {
	hits = w.n // want goroutine-shared-write
}

// GoodNamedMethod launches a method whose writes stay inside the hand-off.
func GoodNamedMethod(rounds int) int {
	w := &worker{out: make(chan int)}
	go w.run(rounds)
	last := 0
	for i := 0; i < rounds; i++ {
		last = <-w.out
	}
	return last
}

// BadNamedMethod launches the leaking method.
func BadNamedMethod(w *worker) {
	go w.leak()
}

// Allowed documents an externally synchronized write.
func Allowed(mu *sync.Mutex) {
	x := 0
	go func() {
		mu.Lock()
		defer mu.Unlock()
		x = 1 //lint:allow goroutine-shared-write — guarded by mu
	}()
	_ = x
}
