// Package scratch exercises the scratch-escape rule; the fixture config
// marks pooledScratch as a pooled type.
package scratch

// pooledScratch stands in for a recycled solver buffer.
type pooledScratch struct {
	buf []float64
}

// pool is the internal free list; internal use of the pooled type is fine.
var pool []*pooledScratch

// grab is unexported: handing pooled objects around inside the package is
// the whole point of a pool.
func grab() *pooledScratch {
	if n := len(pool); n > 0 {
		s := pool[n-1]
		pool = pool[:n-1]
		return s
	}
	return &pooledScratch{}
}

// Leak returns a pooled object across the exported API.
func Leak() *pooledScratch { // want scratch-escape
	return grab()
}

// LeakSlice hides the pooled pointer inside a slice result.
func LeakSlice() []*pooledScratch { // want scratch-escape
	return pool
}

// Holder exposes a pooled object through an exported field.
type Holder struct {
	Scratch *pooledScratch // want scratch-escape
	private *pooledScratch // unexported field: fine
}

// Source forces every implementation to hand pooled objects to callers.
type Source interface {
	Next() *pooledScratch // want scratch-escape
	Len() int             // clean method: fine
}

// Sink leaks through a parameter: an implementation must accept (and may
// retain) a pooled pointer handed in from outside the package.
type Sink interface {
	Put(s *pooledScratch) // want scratch-escape
}

// Solver keeps its pool encapsulated behind unexported fields.
type Solver struct {
	scratch []*pooledScratch
}

// NewSolver returning the enclosing type is fine: the pool does not escape.
func NewSolver() *Solver { return &Solver{} }

// Solve is an exported method with clean results.
func (s *Solver) Solve() float64 {
	sc := grab()
	defer func() { pool = append(pool, sc) }()
	return float64(len(sc.buf))
}
