// Package capepoch exercises the capepoch-guard rule: capacity-derived
// values must be recomputed after anything that can bump the capacity epoch.
package capepoch

type Link struct{ cap float64 }

// Capacity is the configured derived root.
func (l *Link) Capacity() float64 { return l.cap }

type Net struct {
	links []*Link
	epoch int64
}

// SetCapacity is the configured bump root.
func (n *Net) SetCapacity(l *Link, c float64) {
	l.cap = c
	n.epoch++
}

// reconfigure bumps the epoch through a callee; the summary propagates.
func (n *Net) reconfigure(l *Link) {
	n.SetCapacity(l, 5)
}

// minCap returns a capacity-derived value; its summary marks it derived.
func minCap(links []*Link) float64 {
	m := links[0].Capacity()
	for _, l := range links {
		if l.Capacity() < m {
			m = l.Capacity()
		}
	}
	return m
}

func record(v float64) { _ = v }

// Good recomputes after the bump.
func Good(n *Net, l *Link) float64 {
	c := l.Capacity()
	total := c + 1
	n.SetCapacity(l, 2)
	c = l.Capacity()
	return total + c
}

// GoodReadThenBump reads the old capacity inside the bumping statement
// itself — the read-then-reconfigure idiom.
func GoodReadThenBump(n *Net, l *Link) {
	c := l.Capacity()
	n.SetCapacity(l, c*0.5)
}

// Stale reuses a pre-bump capacity read.
func Stale(n *Net, l *Link) float64 {
	c := l.Capacity()
	n.SetCapacity(l, 2)
	return c // want capepoch-guard
}

// StaleThroughCallee reuses state across a bump hidden in a callee.
func StaleThroughCallee(n *Net, l *Link) float64 {
	c := l.Capacity()
	n.reconfigure(l)
	return c // want capepoch-guard
}

// StaleDerivedCallee tracks a value that is derived through a callee.
func StaleDerivedCallee(n *Net, l *Link) float64 {
	m := minCap(n.links)
	n.SetCapacity(l, 3)
	return m // want capepoch-guard
}

// BranchStale is stale because one branch bumps.
func BranchStale(n *Net, l *Link, cond bool) float64 {
	c := l.Capacity()
	if cond {
		n.SetCapacity(l, 1)
	}
	return c // want capepoch-guard
}

// LoopStale: a bump late in iteration k taints the use early in k+1.
func LoopStale(n *Net, l *Link) {
	c := l.Capacity()
	for i := 0; i < 2; i++ {
		record(c) // want capepoch-guard
		n.SetCapacity(l, float64(i))
	}
}

// AllowedStale is a deliberate pre-bump snapshot.
func AllowedStale(n *Net, l *Link) float64 {
	c := l.Capacity()
	n.SetCapacity(l, 1)
	return c //lint:allow capepoch-guard — deliberate pre-bump snapshot for a delta report
}
