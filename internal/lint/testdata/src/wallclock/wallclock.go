// Package wallclock exercises the no-wallclock rule.
package wallclock

import (
	"math/rand"
	"time"
)

// Bad reads the wall clock and the global rand source.
func Bad() (time.Time, float64, time.Duration) {
	now := time.Now()           // want no-wallclock
	v := rand.Float64()         // want no-wallclock
	elapsed := time.Since(now)  // want no-wallclock
	return now, v, elapsed
}

// Good uses explicit seeds and virtual durations only.
func Good() (float64, time.Duration) {
	rng := rand.New(rand.NewSource(42))
	return rng.Float64(), 3 * time.Second
}

// Allowed carries a justification.
func Allowed() time.Time {
	return time.Now() //lint:allow no-wallclock — logging outside the simulation
}
