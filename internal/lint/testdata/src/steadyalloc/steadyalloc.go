// Package steadyalloc exercises the steady-alloc rule: nothing reachable
// from a //lint:steady entry point may allocate.
package steadyalloc

type ring struct {
	buf  []int
	next func()
}

// Replay is a replay entry point; everything it reaches is audited.
//
//lint:steady
func Replay(r *ring) {
	step(r)
}

func step(r *ring) {
	r.buf = append(r.buf, 1) // want steady-alloc
	m := map[int]int{}       // want steady-alloc
	_ = m
	s := make([]int, 4) // want steady-alloc
	_ = s
	r.next = func() {} // want steady-alloc
	box(1)             // want steady-alloc
	sink(1, 2)         // want steady-alloc
	r.buf[0] = 1
}

func box(v any) { _ = v }

func sink(vs ...int) { _ = vs }

// Bind installs a bound-once replay closure; the literal carries its own
// steady annotation because closure invocation is not a static edge.
func Bind(r *ring) {
	//lint:steady
	r.next = func() {
		r.buf = append(r.buf, 4) // want steady-alloc
	}
}

// compile is the pool-miss path: reachable from Replay but fenced off.
//
//lint:cold
func compile(r *ring) {
	r.buf = append(r.buf, 2)
}

// Refill is not reachable from any steady entry: free to allocate.
func Refill(r *ring) {
	r.buf = append(r.buf, 3)
	compile(r)
}

// AllowedWarm appends into a pre-sized warm array on the steady path with a
// justification.
//
//lint:steady
func AllowedWarm(r *ring) {
	r.buf = append(r.buf, 5) //lint:allow steady-alloc — warm array, capacity pre-sized at compile time
}
