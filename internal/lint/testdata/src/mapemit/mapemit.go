// Package mapemit exercises the ordered-map-emit rule.
package mapemit

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Bad emits from inside a map range: iteration order is randomized.
func Bad(w io.Writer, m map[string]int) {
	for k, v := range m { // want ordered-map-emit
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// BadBuilder writes to a strings.Builder inside a map range.
func BadBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want ordered-map-emit
		b.WriteString(k)
	}
	return b.String()
}

// Good sorts the keys first; the emitting loop ranges a slice.
func Good(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// GoodAggregate only folds values; nothing is emitted in the loop.
func GoodAggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Allowed documents why unordered emission is fine here.
func Allowed(w io.Writer, m map[string]int) {
	//lint:allow ordered-map-emit — debug dump, never golden-compared
	for k := range m {
		fmt.Fprintln(w, k)
	}
}
