// Package lookahead exercises the lookahead-positive rule: configured call
// sites must receive provably positive values.
package lookahead

type Time int64

const Nanosecond Time = 1

const wire = 5 * Nanosecond

type Engine struct{ edges int }

// Connect is the configured site (argument index 2).
func (e *Engine) Connect(from, to int, lookahead Time) {
	if lookahead < Nanosecond {
		panic("lookahead must be positive")
	}
	e.edges++
}

// Good passes a positive constant.
func Good(e *Engine) {
	e.Connect(0, 1, wire)
}

// GoodArith passes an arithmetic combination of positives.
func GoodArith(e *Engine) {
	e.Connect(0, 1, wire*2+Nanosecond)
}

// GoodTraced traces a local back to a positive constant.
func GoodTraced(e *Engine) {
	l := wire * 2
	e.Connect(0, 1, l)
}

// defaultLook returns a provably positive value.
func defaultLook() Time { return 4 * Nanosecond }

// GoodCall trusts the callee's all-returns-positive summary.
func GoodCall(e *Engine) {
	e.Connect(0, 1, defaultLook())
}

// GoodParam is protected by a dominating guard.
func GoodParam(e *Engine, look Time) {
	if look < Nanosecond {
		panic("bad lookahead")
	}
	e.Connect(0, 1, look)
}

type Config struct{ Look Time }

// NewConfig is the only writer of Config.Look in this module.
func NewConfig() Config { return Config{Look: 8 * Nanosecond} }

// GoodField relies on the whole-module field write audit.
func GoodField(e *Engine, c Config) {
	e.Connect(0, 1, c.Look)
}

// BadZero passes a zero constant.
func BadZero(e *Engine) {
	e.Connect(0, 1, 0) // want lookahead-positive
}

// BadParam passes an unguarded parameter.
func BadParam(e *Engine, look Time) {
	e.Connect(0, 1, look) // want lookahead-positive
}

// BadDiff passes a difference, which positivity cannot see through.
func BadDiff(e *Engine, a Time) {
	e.Connect(0, 1, wire-a) // want lookahead-positive
}

// AllowedDynamic defers validation to the caller's parser.
func AllowedDynamic(e *Engine, look Time) {
	e.Connect(0, 1, look) //lint:allow lookahead-positive — validated by the config parser upstream
}
