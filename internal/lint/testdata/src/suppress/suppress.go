// Package suppress exercises the unused-suppression audit: an //lint:allow
// whose rule silences nothing at that position is itself a finding.
package suppress

// Used carries a suppression that really fires: no audit finding.
func Used() bool {
	a, b := 0.5, 0.25
	return a+a == b*2 //lint:allow float-eq — fixture: bit-identity intended
}

// Unused carries a suppression for a rule that does not fire there.
func Unused() int {
	x := 1 //lint:allow float-eq — stale suppression // want unused-suppression
	return x
}
