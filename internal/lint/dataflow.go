package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// Per-function summaries, propagated bottom-up over the call graph. The
// intra-procedural analysis is path-insensitive: branches are walked with a
// cloned state and joined ("released on any path" / "released on all
// branches"), loops are walked once (twice for the epoch tracker when the
// body can bump the epoch), and aliasing is approximated by treating any
// flow of a tracked value into unknown code as an escape.

// summary is what one function exposes to its callers.
type summary struct {
	// releases[i]: calling this function releases its i-th parameter
	// (index 0 is the receiver for methods) on at least one path.
	releases []bool
	// escapes[i]: the i-th parameter is stored into memory that outlives
	// the call (a field, a global, a captured closure, or an escaping
	// callee position).
	escapes []bool
	// acquires: the function returns a freshly acquired pooled resource.
	acquires bool
	// bumps: the function may bump a network's capacity epoch through a
	// static call chain.
	bumps bool
	// derived: the function returns a value derived from link capacities
	// (stale after a capacity-epoch bump).
	derived bool
	// positive: every return value is provably positive.
	positive bool
}

func (s *summary) grow(n int) {
	for len(s.releases) < n {
		s.releases = append(s.releases, false)
	}
	for len(s.escapes) < n {
		s.escapes = append(s.escapes, false)
	}
}

// analysis is the shared inter-procedural state built once per Run: the
// call graph, the configured roots, and the computed summaries.
type analysis struct {
	graph *callGraph
	sums  map[*funcNode]*summary

	acquireRoots map[string]bool // funcKey -> yes
	releaseRoots map[string]int  // funcKey -> released arg index (recv = 0)
	bumpRoots    map[string]bool
	derivedRoots map[string]bool
}

// rootSpec parses a comma-separated "funcKey" or "funcKey@argIndex" option.
func parseRoots(opt string) map[string]int {
	out := map[string]int{}
	for _, entry := range strings.Split(opt, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		idx := 0
		if at := strings.LastIndex(entry, "@"); at >= 0 {
			if v, err := strconv.Atoi(entry[at+1:]); err == nil {
				idx = v
				entry = entry[:at]
			}
		}
		out[entry] = idx
	}
	return out
}

func rootSet(opt string) map[string]bool {
	out := map[string]bool{}
	for k := range parseRoots(opt) {
		out[k] = true
	}
	return out
}

// buildAnalysis constructs the call graph and computes every summary to a
// fixpoint, callee-first (SCC condensation in reverse topological order,
// iterating inside each recursion group until stable).
func buildAnalysis(cfg Config, pkgs []*Package) *analysis {
	a := &analysis{
		graph:        buildCallGraph(pkgs),
		sums:         map[*funcNode]*summary{},
		acquireRoots: rootSet(cfg.Option("handle-release", "acquire")),
		releaseRoots: parseRoots(cfg.Option("handle-release", "release")),
		bumpRoots:    rootSet(cfg.Option("capepoch-guard", "bump")),
		derivedRoots: rootSet(cfg.Option("capepoch-guard", "derived")),
	}
	for _, n := range a.graph.nodes {
		a.sums[n] = &summary{}
	}
	for _, comp := range a.graph.sccs() {
		for changed := true; changed; {
			changed = false
			for _, n := range comp {
				if a.computeSummary(n) {
					changed = true
				}
			}
		}
	}
	a.graph.markSteadyReachable()
	return a
}

// summaryFor returns the summary of a callee, or nil when the function is
// outside the module (or dynamic).
func (a *analysis) summaryFor(fn *types.Func) *summary {
	if fn == nil {
		return nil
	}
	if n := a.graph.byFunc[fn]; n != nil {
		return a.sums[n]
	}
	return nil
}

// callReleases returns the index of the argument a call to fn releases, or
// -1. Roots are consulted first, then computed summaries.
func (a *analysis) callReleases(fn *types.Func) int {
	if fn == nil {
		return -1
	}
	if idx, ok := a.releaseRoots[funcKey(fn)]; ok {
		return idx
	}
	if s := a.summaryFor(fn); s != nil {
		for i, r := range s.releases {
			if r {
				return i
			}
		}
	}
	return -1
}

// callAcquires reports whether a call to fn yields an acquired resource.
func (a *analysis) callAcquires(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if a.acquireRoots[funcKey(fn)] {
		return true
	}
	s := a.summaryFor(fn)
	return s != nil && s.acquires
}

// callBumps reports whether a call to fn may bump the capacity epoch.
func (a *analysis) callBumps(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if a.bumpRoots[funcKey(fn)] {
		return true
	}
	s := a.summaryFor(fn)
	return s != nil && s.bumps
}

// callDerived reports whether a call to fn returns capacity-derived state.
func (a *analysis) callDerived(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if a.derivedRoots[funcKey(fn)] {
		return true
	}
	s := a.summaryFor(fn)
	return s != nil && s.derived
}

// callEscapes reports whether a call to fn stores its idx-th argument away.
func (a *analysis) callEscapes(fn *types.Func, idx int) bool {
	s := a.summaryFor(fn)
	return s != nil && idx < len(s.escapes) && s.escapes[idx]
}

// computeSummary recomputes one node's summary and reports whether any bit
// changed. Bits are monotone (false -> true), so iteration terminates.
func (a *analysis) computeSummary(n *funcNode) bool {
	body := n.body()
	if body == nil {
		return false
	}
	old := *a.sums[n]
	oldRel := append([]bool(nil), old.releases...)
	oldEsc := append([]bool(nil), old.escapes...)

	s := a.sums[n]

	// bumps: any static call to a bumper.
	if !s.bumps {
		a.eachOwnCall(n, func(call *ast.CallExpr) {
			if a.callBumps(staticCallee(n.pkg.Info, call)) {
				s.bumps = true
			}
		})
	}

	// releases / escapes / acquires via the handle tracker in summary mode.
	t := newTracker(a, n, nil)
	t.run()

	// derived + positive from the return expressions.
	s.derived = s.derived || a.returnsDerived(n)
	s.positive = a.returnsPositive(n)

	changed := s.bumps != old.bumps || s.acquires != old.acquires ||
		s.derived != old.derived || s.positive != old.positive ||
		!boolsEq(s.releases, oldRel) || !boolsEq(s.escapes, oldEsc)
	return changed
}

func boolsEq(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// eachOwnCall visits every call expression that executes when n itself
// runs — i.e. skipping the bodies of nested function literals.
func (a *analysis) eachOwnCall(n *funcNode, visit func(*ast.CallExpr)) {
	body := n.body()
	if body == nil {
		return
	}
	ast.Inspect(body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			return x == n.lit
		case *ast.CallExpr:
			visit(x)
		}
		return true
	})
}

// ---- positivity ----

// constPositive reports whether e is a constant with value > 0.
func constPositive(info *types.Info, e ast.Expr) (bool, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false, false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) > 0, true
	}
	return false, false
}

// provablyPositive reports whether expr is provably > 0: a positive
// constant, a sum/product of provably positive terms, a conversion of one,
// a call to a function whose every return is provably positive, an
// identifier all of whose assignments in fn are provably positive, a
// parameter guarded by a dominating positivity check, or a field whose
// every write across the module is provably positive.
func (a *analysis) provablyPositive(n *funcNode, e ast.Expr, seen map[types.Object]bool) bool {
	info := n.pkg.Info
	e = unparen(e)
	if pos, isConst := constPositive(info, e); isConst {
		return pos
	}
	switch x := e.(type) {
	case *ast.BinaryExpr:
		if x.Op == token.ADD || x.Op == token.MUL {
			return a.provablyPositive(n, x.X, seen) && a.provablyPositive(n, x.Y, seen)
		}
	case *ast.CallExpr:
		// Type conversion: positivity passes through numeric conversions.
		if tv, ok := info.Types[unparen(x.Fun)]; ok && tv.IsType() && len(x.Args) == 1 {
			return a.provablyPositive(n, x.Args[0], seen)
		}
		callee := staticCallee(info, x)
		if s := a.summaryFor(callee); s != nil && s.positive {
			return true
		}
	case *ast.Ident:
		obj := info.Uses[x]
		v, ok := obj.(*types.Var)
		if !ok || seen[v] {
			return false
		}
		seen[v] = true
		if a.guardedPositive(n, v) {
			return true
		}
		return a.assignmentsPositive(n, v, seen)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if f, ok := sel.Obj().(*types.Var); ok {
				if seen[f] {
					return false
				}
				seen[f] = true
				return a.fieldWritesPositive(f, seen)
			}
		}
		// Package-level variable accessed as pkg.Name.
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
			if seen[v] {
				return false
			}
			seen[v] = true
			return a.globalWritesPositive(v, seen)
		}
	}
	return false
}

// guardedPositive reports whether fn contains a dominating guard of the
// shape "if v < c { panic/return }" (or <=, ==, with c a positive constant
// or zero) that establishes v > 0 afterwards. Guard placement is
// approximated at function scope.
func (a *analysis) guardedPositive(n *funcNode, v *types.Var) bool {
	body := n.body()
	if body == nil {
		return false
	}
	info := n.pkg.Info
	guarded := false
	ast.Inspect(body, func(node ast.Node) bool {
		ifs, ok := node.(*ast.IfStmt)
		if !ok || guarded {
			return true
		}
		cond, ok := unparen(ifs.Cond).(*ast.BinaryExpr)
		if !ok {
			return true
		}
		// Normalize to "v OP c".
		lhs, op, rhs := cond.X, cond.Op, cond.Y
		if id, isID := unparen(rhs).(*ast.Ident); isID && info.Uses[id] == v {
			lhs, rhs = rhs, lhs
			switch op {
			case token.LSS:
				op = token.GTR
			case token.LEQ:
				op = token.GEQ
			case token.GTR:
				op = token.LSS
			case token.GEQ:
				op = token.LEQ
			}
		}
		id, isID := unparen(lhs).(*ast.Ident)
		if !isID || info.Uses[id] != v {
			return true
		}
		tv, ok := info.Types[unparen(rhs)]
		if !ok || tv.Value == nil {
			return true
		}
		if k := tv.Value.Kind(); k != constant.Int && k != constant.Float {
			return true
		}
		sign := constant.Sign(tv.Value)
		// "v < positive-const", "v <= positive-const", "v <= 0", "v < 0+1",
		// "v == 0": the failing branch must diverge for the code after the
		// if to see v > 0.
		ok = false
		switch op {
		case token.LSS:
			ok = sign > 0
		case token.LEQ:
			ok = sign >= 0
		case token.EQL:
			ok = sign == 0
		}
		if ok && diverges(ifs.Body) {
			guarded = true
		}
		return true
	})
	return guarded
}

// diverges reports whether a block always panics or returns.
func diverges(b *ast.BlockStmt) bool {
	found := false
	ast.Inspect(b, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.ReturnStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := unparen(x.Fun).(*ast.Ident); ok && id.Name == "panic" {
				found = true
			}
		}
		return !found
	})
	return found
}

// assignmentsPositive checks every assignment to a local variable inside fn.
func (a *analysis) assignmentsPositive(n *funcNode, v *types.Var, seen map[types.Object]bool) bool {
	body := n.body()
	if body == nil {
		return false
	}
	info := n.pkg.Info
	any, all := false, true
	ast.Inspect(body, func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, isID := unparen(lhs).(*ast.Ident)
			if !isID {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != v {
				continue
			}
			any = true
			if !a.provablyPositive(n, as.Rhs[i], seen) {
				all = false
			}
		}
		return true
	})
	return any && all
}

// fieldWritesPositive audits every write to a named struct field across the
// whole module: composite-literal values and direct assignments. All writes
// must be provably positive, and at least one must exist (the zero value is
// not positive).
func (a *analysis) fieldWritesPositive(field *types.Var, seen map[types.Object]bool) bool {
	any, all := false, true
	for _, n := range a.graph.nodes {
		body := n.body()
		if body == nil || n.lit != nil {
			continue
		}
		info := n.pkg.Info
		ast.Inspect(body, func(node ast.Node) bool {
			switch x := node.(type) {
			case *ast.CompositeLit:
				for _, el := range x.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok || info.Uses[key] != field {
						continue
					}
					any = true
					if !a.provablyPositive(n, kv.Value, seen) {
						all = false
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					sel, ok := unparen(lhs).(*ast.SelectorExpr)
					if !ok || i >= len(x.Rhs) {
						continue
					}
					if s, ok := info.Selections[sel]; !ok || s.Obj() != field {
						continue
					}
					any = true
					if !a.provablyPositive(n, x.Rhs[i], seen) {
						all = false
					}
				}
			}
			return all
		})
		if !all {
			return false
		}
	}
	return any && all
}

// globalWritesPositive audits a package-level variable: its initializer and
// every assignment across the module must be provably positive.
func (a *analysis) globalWritesPositive(v *types.Var, seen map[types.Object]bool) bool {
	any, all := false, true
	// Initializer: walk the declaring package's files for the var spec.
	for _, pkg := range a.allPackages() {
		if pkg.Types != v.Pkg() {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(node ast.Node) bool {
				vs, ok := node.(*ast.ValueSpec)
				if !ok {
					return true
				}
				for i, name := range vs.Names {
					if pkg.Info.Defs[name] != v || i >= len(vs.Values) {
						continue
					}
					any = true
					if pos, isConst := constPositive(pkg.Info, vs.Values[i]); !isConst || !pos {
						all = false
					}
				}
				return true
			})
		}
	}
	// Assignments anywhere.
	for _, n := range a.graph.nodes {
		body := n.body()
		if body == nil {
			continue
		}
		info := n.pkg.Info
		ast.Inspect(body, func(node ast.Node) bool {
			as, ok := node.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, isID := unparen(lhs).(*ast.Ident)
				if !isID || info.Uses[id] != v || i >= len(as.Rhs) {
					continue
				}
				any = true
				if !a.provablyPositive(n, as.Rhs[i], seen) {
					all = false
				}
			}
			return true
		})
	}
	return any && all
}

// allPackages returns the distinct packages of the graph's nodes.
func (a *analysis) allPackages() []*Package {
	seen := map[*Package]bool{}
	var out []*Package
	for _, n := range a.graph.nodes {
		if n.pkg != nil && !seen[n.pkg] {
			seen[n.pkg] = true
			out = append(out, n.pkg)
		}
	}
	return out
}

// returnsDerived reports whether n returns a capacity-derived value: a
// direct call to a derived root (or derived callee), or a local variable
// one of whose assignments is such a call.
func (a *analysis) returnsDerived(n *funcNode) bool {
	body := n.body()
	if body == nil {
		return false
	}
	info := n.pkg.Info
	derivedVars := map[types.Object]bool{}
	ast.Inspect(body, func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			call, ok := unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok || !a.callDerived(staticCallee(info, call)) {
				continue
			}
			if id, isID := unparen(lhs).(*ast.Ident); isID {
				if obj := objectOf(info, id); obj != nil {
					derivedVars[obj] = true
				}
			}
		}
		return true
	})
	found := false
	ast.Inspect(body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			return x == n.lit
		case *ast.ReturnStmt:
			for _, e := range x.Results {
				e = unparen(e)
				if call, ok := e.(*ast.CallExpr); ok && a.callDerived(staticCallee(info, call)) {
					found = true
				}
				if id, ok := e.(*ast.Ident); ok && derivedVars[objectOf(info, id)] {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// objectOf resolves an identifier to its object (def or use).
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// returnsPositive reports whether every return expression of n is provably
// positive (and at least one return exists).
func (a *analysis) returnsPositive(n *funcNode) bool {
	body := n.body()
	if body == nil {
		return false
	}
	any, all := false, true
	ast.Inspect(body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			return x == n.lit
		case *ast.ReturnStmt:
			for _, e := range x.Results {
				any = true
				if !a.provablyPositive(n, e, map[types.Object]bool{}) {
					all = false
				}
			}
		}
		return all
	})
	return any && all
}
