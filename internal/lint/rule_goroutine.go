package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goroutineSharedWrite flags writes to shared state inside goroutine bodies.
// Simulation code is single-threaded by design (sim.Proc goroutines
// interleave cooperatively); the places real concurrency is coordinated are
// internal/runner (exempt by config) and the sharded engine's barrier
// protocol, which hands state to workers explicitly. The rule covers both
// launch forms:
//
//   - `go func() {...}`: an assignment or inc/dec whose target is rooted at
//     a variable captured from the enclosing scope is flagged.
//   - `go f(...)` / `go recv.m(...)` resolving to a same-package function or
//     method declaration: a write rooted at a package-level variable is
//     flagged. Writes through the receiver or parameters are the explicit
//     hand-off idiom (the launcher chose what to share — e.g. the sharded
//     engine's per-shard workers own their shard through the receiver and
//     communicate over channels) and stay exempt.
//
// Either way the flagged write is a data race the -race gate would only
// catch nondeterministically; this rule catches it at lint time.
type goroutineSharedWrite struct{}

func (goroutineSharedWrite) Name() string { return "goroutine-shared-write" }
func (goroutineSharedWrite) Doc() string {
	return "flag writes to captured or package-level variables inside goroutines"
}

func (goroutineSharedWrite) Check(c *Checker, pkg *Package) {
	// Index the package's function and method declarations by their object so
	// a named `go` launch can be resolved to the body it runs.
	decls := map[types.Object]*ast.FuncDecl{}
	eachFile(pkg, func(f *ast.File) {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := pkg.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	})
	// A declaration launched from several sites is still one body: check once.
	checked := map[*ast.FuncDecl]bool{}
	eachFile(pkg, func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if fl, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				checkGoWrites(c, pkg.Info, fl.Pos(), fl.End(), fl.Body,
					"go closure writes captured %q: shared-state race (communicate over channels or confine to internal/runner)")
				return true
			}
			fd := launchedDecl(pkg.Info, decls, gs.Call.Fun)
			if fd == nil || fd.Body == nil || checked[fd] {
				return true
			}
			checked[fd] = true
			checkGoWrites(c, pkg.Info, fd.Pos(), fd.End(), fd.Body,
				"go-launched %q writes package-level %q: shared-state race (hand state in via the receiver or parameters, or communicate over channels)",
				fd.Name.Name)
			return true
		})
	})
}

// launchedDecl resolves the callee of a named `go` launch to its declaration
// in the same package: a plain identifier, or a selector whose method (or
// package-qualified function) is declared here. Cross-package callees and
// function-valued expressions return nil.
func launchedDecl(info *types.Info, decls map[types.Object]*ast.FuncDecl, fun ast.Expr) *ast.FuncDecl {
	switch x := fun.(type) {
	case *ast.Ident:
		return decls[info.Uses[x]]
	case *ast.SelectorExpr:
		return decls[info.Uses[x.Sel]]
	case *ast.ParenExpr:
		return launchedDecl(info, decls, x.X)
	}
	return nil
}

// checkGoWrites reports assignments and inc/dec statements anywhere inside
// the goroutine body whose target is rooted at a variable declared outside
// the [lo, hi) extent. For a closure the extent is the literal, so captured
// variables are outside it; for a declaration it spans receiver, parameters
// and locals, leaving exactly the package-level variables outside. Extra
// format arguments (the declaration name) precede the offending identifier.
func checkGoWrites(c *Checker, info *types.Info, lo, hi token.Pos, body *ast.BlockStmt, format string, prefixArgs ...any) {
	report := func(target ast.Expr) {
		id := rootIdent(target)
		if id == nil || id.Name == "_" {
			return
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok {
			return // declared in this statement, a field name, or unresolved
		}
		if obj.Pos() >= lo && obj.Pos() < hi {
			return // declared inside the goroutine body (params, receiver, locals)
		}
		if _, isChan := obj.Type().Underlying().(*types.Chan); isChan && target == ast.Expr(id) {
			return // reassigning a shared channel variable is out of scope
		}
		c.Reportf(target.Pos(), format, append(append([]any{}, prefixArgs...), id.Name)...)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				report(lhs)
			}
		case *ast.IncDecStmt:
			report(st.X)
		}
		return true
	})
}
