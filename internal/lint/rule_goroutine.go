package lint

import (
	"go/ast"
	"go/types"
)

// goroutineSharedWrite flags writes to captured state inside `go func() {...}`
// closures. Simulation code is single-threaded by design (sim.Proc goroutines
// interleave cooperatively); the one place real concurrency is coordinated is
// internal/runner, which the default config exempts. Anywhere else, a go
// closure assigning to a variable captured from the enclosing scope — or
// through a captured pointer — is a data race the -race gate will eventually
// catch nondeterministically; this rule catches it at lint time.
type goroutineSharedWrite struct{}

func (goroutineSharedWrite) Name() string { return "goroutine-shared-write" }
func (goroutineSharedWrite) Doc() string {
	return "flag writes to captured variables inside go closures"
}

func (goroutineSharedWrite) Check(c *Checker, pkg *Package) {
	eachFile(pkg, func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			fl, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			checkClosureWrites(c, pkg.Info, fl)
			return true
		})
	})
}

// checkClosureWrites reports assignments and inc/dec statements anywhere
// inside the closure whose target is rooted at a variable declared outside
// the closure's extent.
func checkClosureWrites(c *Checker, info *types.Info, fl *ast.FuncLit) {
	report := func(target ast.Expr) {
		id := rootIdent(target)
		if id == nil || id.Name == "_" {
			return
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok {
			return // declared in this statement, a field name, or unresolved
		}
		if obj.Pos() >= fl.Pos() && obj.Pos() < fl.End() {
			return // closure-local variable (includes the closure's params)
		}
		if _, isChan := obj.Type().Underlying().(*types.Chan); isChan && target == ast.Expr(id) {
			return // reassigning a captured channel variable is out of scope
		}
		c.Reportf(target.Pos(), "go closure writes captured %q: shared-state race (communicate over channels or confine to internal/runner)", id.Name)
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				report(lhs)
			}
		case *ast.IncDecStmt:
			report(st.X)
		}
		return true
	})
}
