package train

import (
	"fmt"

	"llmbw/internal/collective"
	"llmbw/internal/compute"
	"llmbw/internal/model"
	"llmbw/internal/sim"
	"llmbw/internal/topology"
)

// This file contains a reference implementation of DDP that runs one
// simulation process per GPU rank, synchronizing through rendezvous-driven
// collectives and barriers — the "honest" SPMD execution. The production
// scheduler (runner.go) advances all ranks in lockstep from a single driver,
// which is exact for symmetric ranks; this implementation exists to
// (a) cross-validate that equivalence in tests, and (b) model asymmetric
// ranks — stragglers — which lockstep cannot express.

// MultiProcConfig configures a per-rank DDP reference run.
type MultiProcConfig struct {
	Nodes       int
	Model       model.GPT
	BatchPerGPU int
	Iterations  int
	// RankSlowdown multiplies the compute time of individual ranks
	// (1.0 = nominal). Missing ranks default to 1.0. This is the straggler
	// knob: synchronous data parallelism runs at the pace of the slowest.
	RankSlowdown map[int]float64
}

func (c MultiProcConfig) withDefaults() MultiProcConfig {
	if c.Nodes == 0 {
		c.Nodes = 1
	}
	if c.BatchPerGPU == 0 {
		c.BatchPerGPU = model.DefaultBatchSize
	}
	if c.Iterations == 0 {
		c.Iterations = 3
	}
	return c
}

// MultiProcResult reports the reference run's timing.
type MultiProcResult struct {
	IterTime       sim.Time
	AttainedTFLOPs float64
}

// RunDDPMultiProcess executes DDP with one process per rank. Every rank
// computes its forward and backward passes independently (with its own
// slowdown factor), participates in per-bucket gradient all-reduces through
// a rendezvous (the last arrival launches the ring, everyone resumes when it
// completes), and meets at a barrier before the optimizer step.
func RunDDPMultiProcess(cfg MultiProcConfig) (*MultiProcResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.Nodes < 1 || cfg.Nodes > MaxNodes {
		return nil, fmt.Errorf("train: %d nodes unsupported", cfg.Nodes)
	}
	world := cfg.Nodes * topology.GPUsPerNode
	cluster := topology.New(topology.DefaultConfig(cfg.Nodes))
	group := collective.NewGroup(cluster, collective.NodeMajorRanks(cfg.Nodes, topology.GPUsPerNode))
	gpu := compute.DefaultGPU()

	slow := func(rank int) float64 {
		if f, ok := cfg.RankSlowdown[rank]; ok && f > 0 {
			return f
		}
		return 1
	}

	g := cfg.Model
	b := cfg.BatchPerGPU
	bk := buckets(g.Layers)
	gradBytes := 2 * float64(g.Params())
	perBucket := gradBytes / float64(len(bk))

	barrier := &sim.Barrier{N: world}
	// One rendezvous per bucket per iteration round; reuse via a rolling
	// index (all ranks issue the same sequence, so a single slice indexed by
	// bucket works for all iterations as rendezvous reset between rounds).
	rvs := make([]*sim.Rendezvous, len(bk)+1)
	for i := range rvs {
		rvs[i] = &sim.Rendezvous{N: world}
	}

	var measureStart, measureEnd sim.Time
	eng := cluster.Eng
	for rank := 0; rank < world; rank++ {
		rank := rank
		eng.Go(fmt.Sprintf("rank%d", rank), func(p *sim.Proc) {
			factor := slow(rank)
			kernel := func(flops float64) {
				d := gpu.KernelTime(flops)
				p.Sleep(sim.Time(float64(d) * factor))
			}
			for iter := 0; iter < cfg.Iterations; iter++ {
				if rank == 0 && iter == 1 {
					measureStart = p.Now()
				}
				// Forward.
				for l := 0; l < g.Layers; l++ {
					kernel(g.LayerForwardFLOPs(b))
				}
				kernel(g.HeadForwardFLOPs(b))
				// Backward with per-bucket all-reduce at each rendezvous.
				kernel(2 * g.HeadForwardFLOPs(b))
				for bi, k := range bk {
					kernel(2 * g.LayerForwardFLOPs(b) * float64(k))
					rvs[bi].Do(p, func(done func()) {
						group.Start(collective.AllReduce, perBucket, done)
					})
				}
				// Optimizer step, then a barrier to align the iteration.
				p.Sleep(gpu.AdamTime(g.Params()))
				barrier.Wait(p)
				if rank == 0 && iter == cfg.Iterations-1 {
					measureEnd = p.Now()
				}
			}
		})
	}
	eng.Run()
	if eng.LiveProcs() != 0 {
		return nil, fmt.Errorf("train: multiproc deadlock (%d live)", eng.LiveProcs())
	}
	iters := cfg.Iterations - 1
	if iters < 1 {
		iters = 1
		measureStart = 0
	}
	res := &MultiProcResult{IterTime: (measureEnd - measureStart) / sim.Time(iters)}
	flops := g.IterationFLOPs(b, world, false)
	if res.IterTime > 0 {
		res.AttainedTFLOPs = flops / res.IterTime.ToSeconds() / 1e12
	}
	return res, nil
}

// RunZeRO2MultiProcess is the per-rank reference for ZeRO-2: forward and
// backward per rank, a rendezvous reduce-scatter per bucket, a per-rank
// optimizer step over the local partition, and a rendezvous parameter
// all-gather — cross-validating the lockstep ZeRO-2 scheduler.
func RunZeRO2MultiProcess(cfg MultiProcConfig) (*MultiProcResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.Nodes < 1 || cfg.Nodes > MaxNodes {
		return nil, fmt.Errorf("train: %d nodes unsupported", cfg.Nodes)
	}
	world := cfg.Nodes * topology.GPUsPerNode
	cluster := topology.New(topology.DefaultConfig(cfg.Nodes))
	group := collective.NewGroup(cluster, collective.NodeMajorRanks(cfg.Nodes, topology.GPUsPerNode))
	gpu := compute.DefaultGPU()

	g := cfg.Model
	b := cfg.BatchPerGPU
	bk := buckets(g.Layers)
	gradBytes := 2 * float64(g.Params())
	paramBytes := gradBytes
	perBucket := gradBytes / float64(len(bk))

	barrier := &sim.Barrier{N: world}
	rvs := make([]*sim.Rendezvous, len(bk)+1)
	for i := range rvs {
		rvs[i] = &sim.Rendezvous{N: world}
	}

	var measureStart, measureEnd sim.Time
	eng := cluster.Eng
	for rank := 0; rank < world; rank++ {
		rank := rank
		eng.Go(fmt.Sprintf("rank%d", rank), func(p *sim.Proc) {
			factor := 1.0
			if f, ok := cfg.RankSlowdown[rank]; ok && f > 0 {
				factor = f
			}
			kernel := func(flops float64) {
				p.Sleep(sim.Time(float64(gpu.KernelTime(flops)) * factor))
			}
			overlap := cfg.Nodes == 1
			for iter := 0; iter < cfg.Iterations; iter++ {
				if rank == 0 && iter == 1 {
					measureStart = p.Now()
				}
				for l := 0; l < g.Layers; l++ {
					kernel(g.LayerForwardFLOPs(b))
				}
				kernel(g.HeadForwardFLOPs(b))
				kernel(2 * g.HeadForwardFLOPs(b))
				for bi, k := range bk {
					// Checkpointing recompute plus backward.
					kernel(3 * g.LayerForwardFLOPs(b) * float64(k))
					if overlap {
						rvs[bi].Do(p, func(done func()) {
							group.StartRings(collective.ReduceScatter, perBucket, 0, 1, done)
						})
					}
				}
				if !overlap {
					rvs[0].Do(p, func(done func()) {
						group.StartRings(collective.ReduceScatter, gradBytes, 0, 1, done)
					})
				}
				p.Sleep(gpu.AdamTime(g.Params() / int64(world)))
				rvs[len(bk)].Do(p, func(done func()) {
					group.StartRings(collective.AllGather, paramBytes, 0, 1, done)
				})
				barrier.Wait(p)
				if rank == 0 && iter == cfg.Iterations-1 {
					measureEnd = p.Now()
				}
			}
		})
	}
	eng.Run()
	if eng.LiveProcs() != 0 {
		return nil, fmt.Errorf("train: multiproc deadlock (%d live)", eng.LiveProcs())
	}
	iters := cfg.Iterations - 1
	if iters < 1 {
		iters = 1
		measureStart = 0
	}
	res := &MultiProcResult{IterTime: (measureEnd - measureStart) / sim.Time(iters)}
	flops := g.IterationFLOPs(b, world, true)
	if res.IterTime > 0 {
		res.AttainedTFLOPs = flops / res.IterTime.ToSeconds() / 1e12
	}
	return res, nil
}
