package train

import (
	"fmt"

	"llmbw/internal/collective"
	"llmbw/internal/compute"
	"llmbw/internal/data"
	"llmbw/internal/fabric"
	"llmbw/internal/memory"
	"llmbw/internal/nvme"
	"llmbw/internal/schedule"
	"llmbw/internal/sim"
	"llmbw/internal/telemetry"
	"llmbw/internal/topology"
	"llmbw/internal/trace"
)

// Modelled DeepSpeed/NCCL scheduling constants.
const (
	// maxCommBuckets bounds how many gradient buckets overlap the backward
	// pass (NCCL stream serialization keeps them ordered).
	maxCommBuckets = 16
	// layersPerBucket groups backward layers per gradient bucket.
	layersPerBucket = 8
	// zero3Groups is the parameter prefetch granularity of ZeRO-3.
	zero3Groups = 12
	// crossStagingFrac is the fraction of offload staging traffic that
	// lands on the remote socket: DeepSpeed's pinned buffers are not
	// NUMA-aware (paper Sec V-A3 observes exactly this xGMI traffic).
	crossStagingFrac = 0.5
	// adamCrossFrac is the fraction of CPUAdam's DRAM traffic that hits
	// the neighbour socket (interleaved allocations of offloaded states).
	adamCrossFrac = 0.25
	// z1MinChunkBytes floors the fused-buffer size available to ZeRO-1's
	// end-of-step collectives when GPU memory headroom is exhausted.
	z1MinChunkBytes = 128e6
	// z1ChunkLatency is the relaunch cost per starved collective chunk;
	// with headroom gone, the end-of-step synchronization becomes
	// latency-bound over many small operations (paper Table V's ZeRO-1
	// drop at maximum model size, at undiminished NVLink utilization).
	z1ChunkLatency = 3500 * sim.Microsecond
	// zero3LayerOverhead is ZeRO-3's per-module coordination cost
	// (parameter registration hooks, gather bookkeeping) per layer visit.
	// Calibrated against Fig 5: ZeRO-3 takes 696 ms where ZeRO-2 takes
	// 404 ms on the identical 1.4 B model, i.e. ≈ 5-6 ms per layer visit of
	// non-overlappable overhead.
	zero3LayerOverhead = 2500 * sim.Microsecond
	// zero3OffloadLayerOverhead replaces it when parameters live in host
	// memory: every gather additionally synchronizes host staging (the
	// "more data movement between CPU and GPU memory, adding more latency"
	// of Sec V-A1).
	zero3OffloadLayerOverhead = 8 * sim.Millisecond
	// Background housekeeping rates per node — dataloader staging, logging
	// and framework bookkeeping — visible as the small non-zero DRAM /
	// PCIe / xGMI utilization in the paper's single-node Table IV rows.
	bgDRAMPerSocket = 0.75e9
	bgPCIePerGPU    = 0.15e9
	bgXGMIPerNode   = 0.15e9
)

// Result is the outcome of one training run.
type Result struct {
	Config  Config
	Profile memory.Profile

	Iterations     int
	IterTime       sim.Time
	ModelFLOPs     float64 // executed FLOPs per iteration (profiler convention)
	AttainedTFLOPs float64 // aggregate across all GPUs

	Memory memory.Usage // per node (analytic plan)
	// PeakGPUBytes is the per-GPU peak observed by the runtime memory
	// tracker (static residents + live activations).
	PeakGPUBytes float64

	Stats  map[fabric.Class]telemetry.Stats  // node-0 aggregates over the measured window
	Series map[fabric.Class]telemetry.Series // node-0 aggregate series

	Trace *trace.Trace

	MeasureStart, MeasureEnd sim.Time
	// LastIterStart/LastIterEnd bracket the final measured iteration — the
	// one the trace records when Config.Trace is set. BreakdownOver sums a
	// trace against exactly this window, so components (including untraced
	// framework overhead, which lands in GPUIdle) account for the full
	// iteration.
	LastIterStart, LastIterEnd sim.Time
}

// Runner executes a training configuration on a fresh simulated cluster.
type Runner struct {
	cfg     Config
	prof    memory.Profile
	cluster *topology.Cluster
	world   *collective.Group
	gpu     compute.GPUModel
	cpu     compute.CPUModel
	vols    []*nvme.Volume
	ckptVol *nvme.Volume
	mem     *memTracker
	tr      *trace.Trace

	psi        float64 // total parameters
	gradBytes  float64 // 2Ψ FP16 gradients
	paramBytes float64 // 2Ψ FP16 parameters

	// flowScratch collects per-rank flows for batched admission; StartFlows
	// does not retain the slice, so one buffer serves every call site.
	flowScratch []*fabric.Flow

	// exec/waiter are the compiled-schedule replay state, built lazily on the
	// first iteration of the CompiledSchedules path and reused thereafter.
	exec   *schedule.Executor
	waiter *sim.Waiter
}

// newRunner validates the configuration and builds the simulated cluster and
// runner state without starting the simulation. Run drives it to completion;
// the bench/alloc harnesses use it to replay iterations under their own
// engine control.
func newRunner(cfg Config) (*Runner, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	prof := cfg.Profile()
	if !prof.Fits(cfg.Model, cfg.BatchPerGPU, topology.GPUsPerNode) {
		return nil, fmt.Errorf("train: %s cannot fit %s (%s)",
			cfg.Name(), cfg.Model, prof.Plan(cfg.Model, cfg.BatchPerGPU, topology.GPUsPerNode))
	}

	topoCfg := topology.DefaultConfig(cfg.Nodes)
	if cfg.PurposeBuilt {
		topoCfg = topology.PurposeBuiltConfig(cfg.Nodes)
	}
	topoCfg.Window = cfg.Window
	topoCfg.RoCEBW = cfg.RoCEBW
	topoCfg.Shards = cfg.Shards
	if cfg.XbarBW > 0 {
		topoCfg.XbarBW = cfg.XbarBW
	}
	if cfg.needsNVMe() {
		topoCfg.Drives = cfg.Placement.Drives
	}
	cluster := topology.New(topoCfg)
	if cfg.FaultInjection != nil {
		cfg.FaultInjection(cluster)
	}

	r := &Runner{
		cfg:     cfg,
		prof:    prof,
		cluster: cluster,
		world:   collective.NewGroup(cluster, collective.NodeMajorRanks(cfg.Nodes, topology.GPUsPerNode)),
		gpu:     compute.DefaultGPU(),
		cpu:     compute.DefaultCPU(),
	}
	if cfg.needsNVMe() {
		r.vols = cfg.Placement.Build(cluster)
	}
	if cfg.CheckpointEvery > 0 {
		if len(r.vols) > 0 {
			r.ckptVol = r.vols[0]
		} else {
			// The default scratch: both node-0 drives in RAID0, as the
			// paper's mdadm setup.
			scratch := &nvme.Volume{Name: "scratch"}
			for _, spec := range topoCfg.Drives {
				if spec.Node == 0 {
					scratch.Drives = append(scratch.Drives, nvme.NewDrive(cluster, spec))
				}
			}
			r.ckptVol = scratch
		}
	}
	r.psi = float64(cfg.Model.Params())
	r.gradBytes = 2 * r.psi
	r.paramBytes = 2 * r.psi
	r.initMemTracker()
	return r, nil
}

// Run executes the configuration and returns measurements. Generated
// datacenter fabrics (Config.Topo) run through the scale model in dc.go;
// everything else is the paper's testbed.
func Run(cfg Config) (*Result, error) {
	if cfg.IsDC() {
		return runDC(cfg)
	}
	r, err := newRunner(cfg)
	if err != nil {
		return nil, err
	}
	cfg, prof, cluster := r.cfg, r.prof, r.cluster

	res := &Result{Config: cfg, Profile: prof}
	eng := cluster.Eng
	trainingDone := false
	eng.Go("trainer", func(p *sim.Proc) {
		r.initializeParameters(p)
		for i := 0; i < cfg.Warmup; i++ {
			r.runIteration(p)
		}
		res.MeasureStart = p.Now()
		for i := 0; i < cfg.Iterations; i++ {
			if cfg.Trace && i == cfg.Iterations-1 {
				r.tr = trace.New()
			}
			if i == cfg.Iterations-1 {
				res.LastIterStart = p.Now()
			}
			r.runIteration(p)
			if i == cfg.Iterations-1 {
				res.LastIterEnd = p.Now()
			}
			if cfg.CheckpointEvery > 0 && (i+1)%cfg.CheckpointEvery == 0 {
				r.writeCheckpoint(p)
			}
		}
		res.MeasureEnd = p.Now()
		trainingDone = true
	})
	// Background housekeeping (dataloader staging, logging): a steady trickle
	// on DRAM, PCIe and xGMI, emitted in one-second paced slices until the
	// training process finishes.
	eng.Go("housekeeping", func(p *sim.Proc) {
		var batch []*fabric.Flow
		for !trainingDone {
			slice := sim.Second
			sec := slice.ToSeconds()
			batch = batch[:0]
			for n := 0; n < cfg.Nodes; n++ {
				for s := 0; s < topology.SocketsPerNode; s++ {
					batch = append(batch, &fabric.Flow{
						Name:      "bg/dram",
						Path:      []*fabric.Link{cluster.DRAMLink(n, s)},
						Bytes:     bgDRAMPerSocket * sec,
						RateLimit: bgDRAMPerSocket,
					})
				}
				for gi := 0; gi < topology.GPUsPerNode; gi++ {
					g := topology.GPU{Node: n, Index: gi}
					batch = append(batch, &fabric.Flow{
						Name:      "bg/pcie",
						Path:      []*fabric.Link{cluster.PCIeGPULink(g), cluster.DRAMLink(n, g.Socket())},
						Bytes:     bgPCIePerGPU * sec,
						RateLimit: bgPCIePerGPU,
					})
				}
				batch = append(batch, &fabric.Flow{
					Name:      "bg/xgmi",
					Path:      []*fabric.Link{cluster.XGMILink(n)},
					Bytes:     bgXGMIPerNode * sec,
					RateLimit: bgXGMIPerNode,
				})
			}
			cluster.Net.StartFlows(batch, nil)
			p.Sleep(slice)
		}
	})
	cluster.RunSim()
	if n := cluster.SimLiveProcs(); n != 0 {
		return nil, fmt.Errorf("train: simulation deadlocked with %d live processes", n)
	}
	cluster.Net.Quiesce()

	res.Iterations = cfg.Iterations
	res.IterTime = (res.MeasureEnd - res.MeasureStart) / sim.Time(cfg.Iterations)
	// Every strategy processes world-size × per-GPU-batch sequences per
	// iteration: data-parallel strategies via replicas, Megatron-LM via
	// gradient-accumulation microbatches.
	res.ModelFLOPs = cfg.Model.IterationFLOPs(cfg.BatchPerGPU, cfg.WorldSize(), prof.ActivationCkpt)
	if res.IterTime > 0 {
		res.AttainedTFLOPs = res.ModelFLOPs / res.IterTime.ToSeconds() / 1e12
	}
	res.Memory = prof.Plan(cfg.Model, cfg.BatchPerGPU, topology.GPUsPerNode)
	res.Stats = make(map[fabric.Class]telemetry.Stats)
	res.Series = make(map[fabric.Class]telemetry.Series)
	for _, class := range fabric.MeasuredClasses() {
		s := cluster.ClassSeries(class, 0, res.MeasureStart, res.MeasureEnd)
		res.Series[class] = s
		res.Stats[class] = s.Stats()
	}
	res.Trace = r.tr
	res.PeakGPUBytes = r.mem.peak
	return res, nil
}

// Cluster exposes the simulated hardware (for advanced inspection in tests
// and the stress/bench harnesses).
func (r *Runner) Cluster() *topology.Cluster { return r.cluster }

// ---- schedule building blocks ----

// computeSpan runs a GPU kernel span on every rank in lockstep.
func (r *Runner) computeSpan(p *sim.Proc, kind trace.Kind, flops float64) {
	d := r.gpu.KernelTime(flops)
	start := p.Now()
	p.Sleep(d)
	r.traceAll(kind, start, p.Now())
}

// idleSpan marks time where GPUs wait on host-side work.
func (r *Runner) idleSpan(p *sim.Proc, kind trace.Kind, d sim.Time) {
	start := p.Now()
	p.Sleep(d)
	r.traceAll(kind, start, p.Now())
}

func (r *Runner) traceAll(kind trace.Kind, start, end sim.Time) {
	if !r.tr.Enabled() {
		return
	}
	for rank := 0; rank < r.cfg.WorldSize(); rank++ {
		r.tr.Add(rank, kind, start, end)
	}
}

// syncCollective runs a collective on the world group, blocking the
// schedule (exposed communication). rings selects the NCCL channel count:
// 2 for fused framework collectives, 1 for DeepSpeed's partitioned phases.
func (r *Runner) syncCollective(p *sim.Proc, op collective.Op, payload, limit float64, rings int) {
	start := p.Now()
	p.Await(func(resume func()) { r.world.StartRings(op, payload, limit, rings, resume) })
	r.traceAll(traceKind(op), start, p.Now())
}

func traceKind(op collective.Op) trace.Kind {
	switch op {
	case collective.AllReduce:
		return trace.NCCLAllReduce
	case collective.AllGather:
		return trace.NCCLAllGather
	case collective.ReduceScatter:
		return trace.NCCLReduceScatter
	case collective.Reduce:
		return trace.NCCLReduce
	case collective.Broadcast:
		return trace.NCCLBroadcast
	}
	return trace.NCCLAllReduce
}

// commQueue serializes asynchronous collectives on a virtual NCCL stream so
// they overlap compute but not each other. Handles are drawn from the world
// group's pool: a fire-and-forget handle recycles itself once a later
// operation supersedes it and its waiters have run; retained handles
// (enqueueHandle) are the caller's to release.
type commQueue struct {
	r        *Runner
	limit    float64
	rings    int
	tail     *collective.Handle
	tailAuto bool // tail came from enqueue/enqueueFn, not enqueueHandle
}

func (r *Runner) newQueue(limit float64, rings int) *commQueue {
	return &commQueue{r: r, limit: limit, rings: rings}
}

// enqueue chains a fire-and-forget collective after the previous operation;
// its pooled handle recycles automatically.
func (q *commQueue) enqueue(op collective.Op, payload float64) {
	q.push(op, payload, false) //lint:allow handle-release — fire-and-forget: push retains the handle as q.tail and the successor's start releases it
}

// enqueueHandle chains a collective and returns its handle for the caller to
// wait on. Callers return the handle to the pool with q.release once done
// with it.
func (q *commQueue) enqueueHandle(op collective.Op, payload float64) *collective.Handle {
	return q.push(op, payload, true)
}

func (q *commQueue) push(op collective.Op, payload float64, retained bool) *collective.Handle {
	h := q.r.world.NewHandle()
	prev, prevAuto := q.tail, q.tailAuto
	start := func() {
		t0 := q.r.cluster.Eng.Now()
		q.r.world.StartRings(op, payload, q.limit, q.rings, func() {
			q.r.traceAll(traceKind(op), t0, q.r.cluster.Eng.Now())
			h.Fire()
		})
		// prev has now served its last purpose (ordering this start); a
		// fire-and-forget predecessor goes back to the pool.
		if prevAuto {
			prev.Release()
		}
	}
	if prev == nil {
		start()
	} else {
		prev.Then(start)
	}
	q.tail, q.tailAuto = h, !retained
	return h
}

// enqueueFn chains an arbitrary deferred operation (e.g. an offload copy)
// onto the stream. fn must eventually call its done callback.
func (q *commQueue) enqueueFn(fn func(done func())) *collective.Handle {
	h := q.r.world.NewHandle()
	prev, prevAuto := q.tail, q.tailAuto
	start := func() {
		fn(h.Fire)
		if prevAuto {
			prev.Release()
		}
	}
	if prev == nil {
		start()
	} else {
		prev.Then(start)
	}
	q.tail, q.tailAuto = h, true
	return h
}

// release returns a retained handle to the pool. The current tail stays
// live — later operations still chain on it — and recycles when superseded.
func (q *commQueue) release(h *collective.Handle) {
	if h != q.tail {
		h.Release()
	}
}

// drain blocks until every queued operation has completed.
func (q *commQueue) drain(p *sim.Proc) {
	if q.tail == nil {
		return
	}
	q.tail.Wait(p)
}

// eachGPU enumerates the cluster's GPUs with their global rank.
func (r *Runner) eachGPU(fn func(rank int, g topology.GPU)) {
	rank := 0
	for n := 0; n < r.cfg.Nodes; n++ {
		for i := 0; i < topology.GPUsPerNode; i++ {
			fn(rank, topology.GPU{Node: n, Index: i})
			rank++
		}
	}
}

// startRankFlows launches flows for every rank in one admission batch and
// invokes done when all complete.
func (r *Runner) startRankFlows(kind trace.Kind, mk func(rank int, g topology.GPU) []*fabric.Flow, done func()) {
	flows := r.flowScratch[:0]
	r.eachGPU(func(rank int, g topology.GPU) {
		flows = append(flows, mk(rank, g)...)
	})
	r.flowScratch = flows
	if len(flows) == 0 {
		r.cluster.Eng.Schedule(0, done)
		return
	}
	t0 := r.cluster.Eng.Now()
	remaining := len(flows)
	r.cluster.Net.StartFlows(flows, func() {
		remaining--
		if remaining == 0 {
			r.traceAll(kind, t0, r.cluster.Eng.Now())
			done()
		}
	})
}

// offloadCopy moves bytesPerRank between every GPU and host memory. Half the
// staging lands on the GPU's local socket, half on the neighbour (DeepSpeed's
// pinned buffers are not NUMA-aware), which is what puts offload traffic on
// xGMI in the paper's Table IV.
func (r *Runner) offloadCopyFlows(bytesPerRank float64) func(rank int, g topology.GPU) []*fabric.Flow {
	return func(rank int, g topology.GPU) []*fabric.Flow {
		local := r.cluster.GPUToCPU(g, g.Socket())
		remote := r.cluster.GPUToCPU(g, 1-g.Socket())
		return []*fabric.Flow{
			local.Flow(fmt.Sprintf("offload/r%d/local", rank), bytesPerRank*(1-crossStagingFrac)),
			remote.Flow(fmt.Sprintf("offload/r%d/remote", rank), bytesPerRank*crossStagingFrac),
		}
	}
}

// offloadCopy is the blocking form.
func (r *Runner) offloadCopy(p *sim.Proc, bytesPerRank float64) {
	p.Await(func(resume func()) {
		r.startRankFlows(trace.OffloadCopy, r.offloadCopyFlows(bytesPerRank), resume)
	})
}

// hostAdam runs the DeepSpeed CPUAdam step for each rank's partition on its
// socket. Both sockets work concurrently, two ranks each; the step's DRAM
// traffic is paced over the step duration, with a slice crossing xGMI for
// the interleaved allocations.
func (r *Runner) hostAdam(p *sim.Proc, paramsPerRank int64) {
	d := r.cpu.AdamTime(paramsPerRank, 2)
	if d <= 0 {
		return
	}
	sec := d.ToSeconds()
	perSocket := 2 * compute.AdamDRAMTraffic(paramsPerRank) // two ranks per socket
	flows := r.flowScratch[:0]
	for s := 0; s < topology.SocketsPerNode; s++ {
		localBytes := perSocket * (1 - adamCrossFrac)
		crossBytes := perSocket * adamCrossFrac
		flows = append(flows,
			&fabric.Flow{
				Name:      fmt.Sprintf("cpuadam/s%d/local", s),
				Path:      []*fabric.Link{r.cluster.DRAMLink(0, s)},
				Bytes:     localBytes,
				RateLimit: localBytes / sec,
			},
			&fabric.Flow{
				Name: fmt.Sprintf("cpuadam/s%d/cross", s),
				Path: []*fabric.Link{
					r.cluster.XGMILink(0), r.cluster.DRAMLink(0, 1-s),
				},
				Bytes:     crossBytes,
				RateLimit: crossBytes / sec,
			})
	}
	r.flowScratch = flows
	r.cluster.Net.StartFlows(flows, nil)
	r.idleSpan(p, trace.CPUAdam, d)
}

// nvmeIO performs a staged NVMe transfer for every rank against its mapped
// volume, blocking until the slowest rank finishes.
func (r *Runner) nvmeIO(p *sim.Proc, bytesPerRank float64, write bool) {
	if bytesPerRank <= 0 {
		return
	}
	t0 := p.Now()
	p.Await(func(resume func()) {
		remaining := r.cfg.WorldSize()
		r.eachGPU(func(rank int, g topology.GPU) {
			vol := r.cfg.Placement.VolumeForRank(r.vols, rank)
			vol.IO(g.Socket(), bytesPerRank, write, func() {
				remaining--
				if remaining == 0 {
					resume()
				}
			})
		})
	})
	r.traceAll(trace.NVMeIO, t0, p.Now())
}

// gpuAdam runs the on-GPU fused optimizer step.
func (r *Runner) gpuAdam(p *sim.Proc, paramsPerRank int64) {
	d := r.gpu.AdamTime(paramsPerRank)
	start := p.Now()
	p.Sleep(d)
	r.traceAll(trace.WeightUpdate, start, p.Now())
}

// writeCheckpoint persists the full training state to the scratch volume:
// each rank stages its shard of the FP16 weights to host memory and writes
// its 16Ψ/N-byte slice of model states (FP32 master weights, momentum,
// variance, FP16 weights) to NVMe — the save path of a real DeepSpeed job.
func (r *Runner) writeCheckpoint(p *sim.Proc) {
	world := float64(r.cfg.WorldSize())
	r.offloadCopy(p, r.paramBytes/world) // weights down to host staging
	stateBytes := 16 * r.psi / world
	t0 := p.Now()
	p.Await(func(resume func()) {
		remaining := r.cfg.WorldSize()
		r.eachGPU(func(rank int, g topology.GPU) {
			r.ckptVol.IO(g.Socket(), stateBytes, true, func() {
				remaining--
				if remaining == 0 {
					resume()
				}
			})
		})
	})
	r.traceAll(trace.NVMeIO, t0, p.Now())
}

// stageBatch emits the dataloader's host→GPU staging traffic for the next
// micro-batch on every rank: tokenized input ids plus shifted labels
// (internal/data's packing), prefetched asynchronously the way PyTorch
// dataloaders overlap H2D copies with compute.
func (r *Runner) stageBatch() {
	bytes := data.BatchStagingBytes(r.cfg.BatchPerGPU, r.cfg.Model.SeqLen)
	flows := r.flowScratch[:0]
	r.eachGPU(func(rank int, g topology.GPU) {
		route := r.cluster.GPUToCPU(g, g.Socket())
		flows = append(flows, route.Flow(fmt.Sprintf("dataloader/r%d", rank), bytes))
	})
	r.flowScratch = flows
	r.cluster.Net.StartFlows(flows, nil)
}

// initializeParameters models job start-up: rank 0 materializes the weights
// and replicates them — a broadcast of the FP16 parameters for replicated
// strategies (PyTorch DDP broadcasts module buffers at construction;
// DeepSpeed does the same for ZeRO-1/2), or a scatter of each shard for
// partitioned parameters. This precedes the warm-up iterations and therefore
// never pollutes measured statistics, but it exercises the start-up path the
// way a real launcher does.
func (r *Runner) initializeParameters(p *sim.Proc) {
	switch {
	case r.cfg.Strategy == Megatron:
		// Each model-parallel rank loads its own slice; no broadcast.
		return
	case r.prof.ParamShards > 1:
		// Sharded parameters: rank 0 scatters shards (ring reduce-scatter
		// volume equivalent).
		r.syncCollective(p, collective.ReduceScatter, r.paramBytes, 0, 1)
	default:
		r.syncCollective(p, collective.Broadcast, r.paramBytes, 0, 2)
	}
}

// zero3Overhead returns the per-layer-visit coordination cost of ZeRO-3's
// parameter partitioning machinery.
func (r *Runner) zero3Overhead() sim.Time {
	if r.cfg.Offload == memory.CPUOffload || r.cfg.Offload == memory.NVMeOptimizerAndParams {
		return zero3OffloadLayerOverhead
	}
	return zero3LayerOverhead
}

// z1ChunkBytes returns the fused-buffer size available to ZeRO-1's
// end-of-step collectives: the remaining GPU headroom, clamped to
// [z1MinChunkBytes, BucketBytes].
func (r *Runner) z1ChunkBytes() float64 {
	headroom := memory.GPUMemBytes - r.prof.Plan(r.cfg.Model, r.cfg.BatchPerGPU, topology.GPUsPerNode).PerGPU
	if headroom > memory.BucketBytes {
		return memory.BucketBytes
	}
	if headroom < z1MinChunkBytes {
		return z1MinChunkBytes
	}
	return headroom
}

// z1Collective runs a ZeRO-1 end-of-step collective in serial fused-buffer
// chunks, paying a relaunch latency per chunk. At comfortable headroom this
// is a handful of chunks; at the memory limit it degenerates into many
// small latency-bound operations while still driving NVLink hard.
func (r *Runner) z1Collective(p *sim.Proc, op collective.Op, payload float64) {
	chunk := r.z1ChunkBytes()
	for payload > 0 {
		sz := payload
		if sz > chunk {
			sz = chunk
		}
		r.syncCollective(p, op, sz, 0, 1)
		p.Sleep(z1ChunkLatency)
		payload -= sz
	}
}
