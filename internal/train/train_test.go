package train

import (
	"testing"

	"llmbw/internal/fabric"
	"llmbw/internal/memory"
	"llmbw/internal/model"
	"llmbw/internal/trace"
)

// quickRun executes a short run (2 measured iterations) for tests.
func quickRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	cfg.Iterations = 2
	cfg.Warmup = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%s): %v", cfg.Name(), err)
	}
	return res
}

// maxFit returns the largest model for a config.
func maxFit(cfg Config) model.GPT {
	return model.NewGPT(cfg.Profile().MaxLayers(model.DefaultBatchSize, 4))
}

func within(t *testing.T, name string, got, want, frac float64) {
	t.Helper()
	if got < want*(1-frac) || got > want*(1+frac) {
		t.Errorf("%s = %.1f, want %.1f ±%.0f%%", name, got, want, frac*100)
	}
}

// TestFig7SingleNodeThroughput reproduces the paper's Fig 7-a attained
// TFLOP/s at each strategy's maximum single-node model size.
func TestFig7SingleNodeThroughput(t *testing.T) {
	cases := []struct {
		strat Strategy
		paper float64
		tol   float64
	}{
		{DDP, 438, 0.15},
		{Megatron, 331, 0.20},
		{ZeRO1, 391, 0.15},
		{ZeRO2, 524, 0.15},
		{ZeRO3, 381, 0.15},
	}
	for _, c := range cases {
		cfg := Config{Strategy: c.strat, Nodes: 1}
		cfg.Model = maxFit(cfg)
		res := quickRun(t, cfg)
		within(t, cfg.Name()+" single-node TFLOP/s", res.AttainedTFLOPs, c.paper, c.tol)
	}
}

// TestFig7DualNodeThroughput reproduces Fig 7-b. Tolerances are looser: the
// dual-node ZeRO results carry the largest calibration residue (see
// EXPERIMENTS.md), but the ordering test below pins the qualitative shape.
func TestFig7DualNodeThroughput(t *testing.T) {
	cases := []struct {
		strat Strategy
		paper float64
		tol   float64
	}{
		{DDP, 640, 0.20},
		{Megatron, 121, 0.20},
		{ZeRO1, 395, 0.20},
		{ZeRO2, 424, 0.25},
		{ZeRO3, 458, 0.40},
	}
	for _, c := range cases {
		cfg := Config{Strategy: c.strat, Nodes: 2}
		cfg.Model = maxFit(cfg)
		res := quickRun(t, cfg)
		within(t, cfg.Name()+" dual-node TFLOP/s", res.AttainedTFLOPs, c.paper, c.tol)
	}
}

// TestDualNodeOrdering pins the paper's central dual-node conclusion:
// DDP > ZeRO-3 > ZeRO-2 ≥ ZeRO-1 >> Megatron-LM, with Megatron at a fraction
// of the ZeRO throughput due to inter-node all-reduces.
func TestDualNodeOrdering(t *testing.T) {
	tput := map[Strategy]float64{}
	for _, s := range []Strategy{DDP, Megatron, ZeRO1, ZeRO2, ZeRO3} {
		cfg := Config{Strategy: s, Nodes: 2}
		cfg.Model = maxFit(cfg)
		tput[s] = quickRun(t, cfg).AttainedTFLOPs
	}
	if !(tput[DDP] > tput[ZeRO3] && tput[ZeRO3] > tput[ZeRO2] &&
		tput[ZeRO2] >= tput[ZeRO1]*0.95 && tput[ZeRO1] > tput[Megatron]) {
		t.Errorf("dual-node ordering violated: %v", tput)
	}
	// Paper: ZeRO gives 3.26x-3.78x Megatron's throughput on dual nodes.
	for _, s := range []Strategy{ZeRO1, ZeRO2, ZeRO3} {
		if ratio := tput[s] / tput[Megatron]; ratio < 2.5 {
			t.Errorf("%v/Megatron dual = %.2fx, paper reports 3.26-3.78x", s, ratio)
		}
	}
	// Paper: Megatron dual achieves ~0.19x of DDP.
	if ratio := tput[Megatron] / tput[DDP]; ratio > 0.35 {
		t.Errorf("Megatron/DDP dual = %.2fx, paper reports 0.19x", ratio)
	}
}

// TestMegatronCollapsesAcrossNodes: the headline Megatron result — dual-node
// throughput far below single-node despite 8 GPUs.
func TestMegatronCollapsesAcrossNodes(t *testing.T) {
	single := Config{Strategy: Megatron, Nodes: 1}
	single.Model = maxFit(single)
	dual := Config{Strategy: Megatron, Nodes: 2}
	dual.Model = maxFit(dual)
	ts := quickRun(t, single).AttainedTFLOPs
	td := quickRun(t, dual).AttainedTFLOPs
	if td >= ts*0.75 {
		t.Errorf("Megatron dual (%.0f) should collapse versus single (%.0f)", td, ts)
	}
}

// TestDDPScalesAcrossNodes: DDP gains from the second node (paper: +46%).
func TestDDPScalesAcrossNodes(t *testing.T) {
	m := maxFit(Config{Strategy: DDP, Nodes: 1})
	ts := quickRun(t, Config{Strategy: DDP, Nodes: 1, Model: m}).AttainedTFLOPs
	td := quickRun(t, Config{Strategy: DDP, Nodes: 2, Model: m}).AttainedTFLOPs
	if td <= ts {
		t.Errorf("DDP dual (%.0f) should beat single (%.0f)", td, ts)
	}
	if gain := td/ts - 1; gain > 0.9 {
		t.Errorf("DDP dual gain = +%.0f%%, paper reports +46%% (inter-node overhead missing)", gain*100)
	}
}

// TestFig11Consolidation: ZeRO-Offload fits the dual-node Megatron model
// (11.4 B) in one node at higher throughput; ZeRO-3 offload is slower than
// ZeRO-2 offload; NVMe offload is slower still, and a second drive helps.
func TestFig11Consolidation(t *testing.T) {
	// "The largest model Megatron-LM can handle on dual nodes" — the
	// paper's 11.4 B; our calibrated fit lands within 10% of it.
	g := maxFit(Config{Strategy: Megatron, Nodes: 2})
	megDual := Config{Strategy: Megatron, Nodes: 2, Model: g}
	tMeg := quickRun(t, megDual).AttainedTFLOPs

	z2 := quickRun(t, Config{Strategy: ZeRO2, Offload: memory.CPUOffload, Model: g}).AttainedTFLOPs
	z3 := quickRun(t, Config{Strategy: ZeRO3, Offload: memory.CPUOffload, Model: g}).AttainedTFLOPs
	if z2 <= tMeg {
		t.Errorf("ZeRO-2 (CPU) %.0f should beat dual-node Megatron %.0f (paper: +57.8%%)", z2, tMeg)
	}
	if z3 >= z2 {
		t.Errorf("ZeRO-3 (CPU) %.0f should be below ZeRO-2 (CPU) %.0f", z3, z2)
	}
	within(t, "ZeRO-2 (CPU) TFLOP/s", z2, 191, 0.25)
	within(t, "ZeRO-3 (CPU) TFLOP/s", z3, 126, 0.25)

	nv2 := quickRun(t, Config{Strategy: ZeRO3, Offload: memory.NVMeOptimizer, Model: g}).AttainedTFLOPs
	within(t, "ZeRO-Infinity 2xNVMe opt TFLOP/s", nv2, 38.1, 0.30)
	nvAll := quickRun(t, Config{Strategy: ZeRO3, Offload: memory.NVMeOptimizerAndParams, Model: g}).AttainedTFLOPs
	if nvAll >= nv2 {
		t.Errorf("offloading params to NVMe (%.1f) should cost throughput vs optimizer-only (%.1f)", nvAll, nv2)
	}
	if z3 <= nv2 {
		t.Error("CPU offload should beat NVMe offload")
	}
}

// TestSecondNVMeDriveHelps reproduces the paper's 86.7% single->dual drive
// improvement for optimizer offload.
func TestSecondNVMeDriveHelps(t *testing.T) {
	g := model.NewGPT(model.LayersForParams(11.4e9))
	a := nvmeConfig(t, "A")
	b := nvmeConfig(t, "B")
	t1 := quickRun(t, Config{Strategy: ZeRO3, Offload: memory.NVMeOptimizer, Model: g, Placement: &a}).AttainedTFLOPs
	t2 := quickRun(t, Config{Strategy: ZeRO3, Offload: memory.NVMeOptimizer, Model: g, Placement: &b}).AttainedTFLOPs
	gain := t2/t1 - 1
	if gain < 0.5 || gain > 1.3 {
		t.Errorf("second NVMe drive gain = +%.0f%%, paper reports +86.7%%", gain*100)
	}
}

// TestTableVSensitivityShapes checks Table V's qualitative rows: throughput
// grows with model size for DDP/Megatron/ZeRO-2; ZeRO-1 drops at its maximum
// size; offload variants are flat.
func TestTableVSensitivityShapes(t *testing.T) {
	run := func(s Strategy, off memory.Offload, layers int) float64 {
		return quickRun(t, Config{Strategy: s, Offload: off, Model: model.NewGPT(layers)}).AttainedTFLOPs
	}
	// DDP grows 0.7B -> max.
	ddpMax := maxFit(Config{Strategy: DDP}).Layers
	if a, b := run(DDP, memory.NoOffload, ddpMax/2), run(DDP, memory.NoOffload, ddpMax); b <= a {
		t.Errorf("DDP throughput should grow with size: %.0f -> %.0f", a, b)
	}
	// ZeRO-1 drops at maximum size versus a mid size (paper: 487 -> 391).
	z1max := Config{Strategy: ZeRO1}
	maxL := z1max.Profile().MaxLayers(model.DefaultBatchSize, 4)
	mid := run(ZeRO1, memory.NoOffload, maxL/2)
	max := run(ZeRO1, memory.NoOffload, maxL)
	if max >= mid {
		t.Errorf("ZeRO-1 at max size (%.0f) should drop below mid size (%.0f)", max, mid)
	}
	// ZeRO-2 (CPU) is flat across sizes (paper: 164-192 over 0.7-14.2B).
	small := run(ZeRO2, memory.CPUOffload, 26)
	large := run(ZeRO2, memory.CPUOffload, 224)
	if ratio := large / small; ratio < 0.7 || ratio > 1.4 {
		t.Errorf("ZeRO-2 (CPU) not stable across sizes: %.0f vs %.0f", small, large)
	}
}

// TestTableIVBandwidthShapesSingleNode checks the single-node bandwidth
// conclusions: NVLink does the heavy lifting; Megatron uses ~3x DDP's
// NVLink; ZeRO sits between; everything else is near idle; RoCE unused.
func TestTableIVBandwidthShapesSingleNode(t *testing.T) {
	nv := map[Strategy]float64{}
	for _, s := range []Strategy{DDP, Megatron, ZeRO1, ZeRO2, ZeRO3} {
		cfg := Config{Strategy: s, Nodes: 1, Iterations: 8, Warmup: 2}
		cfg.Model = maxFit(cfg)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run(%s): %v", cfg.Name(), err)
		}
		nv[s] = res.Stats[fabric.NVLink].Avg / 1e9
		if roce := res.Stats[fabric.RoCE].Avg; roce != 0 {
			t.Errorf("%v single-node RoCE = %v, want 0", s, roce)
		}
		if dram := res.Stats[fabric.DRAM].Avg / 1e9; dram > 6 {
			t.Errorf("%v single-node DRAM avg = %.1f GB/s, paper reports <6", s, dram)
		}
		if nvme := res.Stats[fabric.PCIeNVME].Avg; nvme != 0 {
			t.Errorf("%v single-node NVMe traffic = %v, want 0", s, nvme)
		}
	}
	// Paper reports ~3x; our DDP model moves the same gradient volume in a
	// shorter iteration, compressing the ratio (see EXPERIMENTS.md).
	if ratio := nv[Megatron] / nv[DDP]; ratio < 1.5 {
		t.Errorf("Megatron/DDP NVLink = %.1fx, paper reports ~3x", ratio)
	}
	within(t, "ZeRO-2 NVLink avg GB/s", nv[ZeRO2], 97.3, 0.25)
	within(t, "ZeRO-3 NVLink avg GB/s", nv[ZeRO3], 99.7, 0.25)
}

// TestTableIVDualNodeXGMI: dual-node training puts real traffic on xGMI
// (cross-socket NIC paths), absent in single-node runs.
func TestTableIVDualNodeXGMI(t *testing.T) {
	cfg := Config{Strategy: ZeRO3, Nodes: 2}
	cfg.Model = maxFit(cfg)
	res := quickRun(t, cfg)
	x := res.Stats[fabric.XGMI].Avg / 1e9
	if x < 3 {
		t.Errorf("dual-node ZeRO-3 xGMI avg = %.1f GB/s, paper reports ~10", x)
	}
	if res.Stats[fabric.RoCE].Avg <= 0 {
		t.Error("dual-node run shows no RoCE traffic")
	}
}

// TestOffloadBandwidthShapes reproduces Table IV's third section: CPU
// offload lights up DRAM and xGMI while NVLink quietens down.
func TestOffloadBandwidthShapes(t *testing.T) {
	g := model.NewGPT(model.LayersForParams(11.4e9))
	res := quickRun(t, Config{Strategy: ZeRO2, Offload: memory.CPUOffload, Model: g})
	dram := res.Stats[fabric.DRAM].Avg / 1e9
	within(t, "ZeRO-2 (CPU) DRAM avg GB/s", dram, 73.1, 0.30)
	if x := res.Stats[fabric.XGMI].Avg / 1e9; x < 8 {
		t.Errorf("offload xGMI avg = %.1f, paper reports 18.1 (NUMA-unaware staging)", x)
	}
	// Compare to a non-offload run: DRAM an order of magnitude lower.
	base := Config{Strategy: ZeRO2, Nodes: 1}
	base.Model = maxFit(base)
	b := quickRun(t, base)
	if b.Stats[fabric.DRAM].Avg*5 > res.Stats[fabric.DRAM].Avg {
		t.Error("CPU offload should dominate non-offload DRAM traffic")
	}
}

// TestNVMeOffloadBandwidthBursty reproduces Sec V-B3: PCIe-NVMe shows low
// average with pronounced peaks (DRAM-cache bursts).
func TestNVMeOffloadBandwidthBursty(t *testing.T) {
	g := model.NewGPT(model.LayersForParams(11.4e9))
	res := quickRun(t, Config{Strategy: ZeRO3, Offload: memory.NVMeOptimizer, Model: g})
	st := res.Stats[fabric.PCIeNVME]
	if st.Avg <= 0 {
		t.Fatal("no NVMe traffic in ZeRO-Infinity run")
	}
	if st.Peak < st.Avg*1.2 {
		t.Errorf("NVMe peak (%.1f) should exceed average (%.1f)", st.Peak/1e9, st.Avg/1e9)
	}
}

// TestFig5TraceShapes checks the per-GPU timeline characterization at the
// 1.4 B model: Megatron shows heavy all-reduce; ZeRO-3 shows all-gathers;
// offload shows GPU idle during CPUAdam; iteration-time ordering matches
// Fig 5 (ZeRO-2 < DDP < ZeRO-3 < offload variants).
func TestFig5TraceShapes(t *testing.T) {
	g := maxFit(Config{Strategy: DDP}) // the paper's small (~1.4 B) model
	iter := map[string]float64{}
	runTraced := func(name string, cfg Config) *Result {
		cfg.Model = g
		cfg.Trace = true
		res := quickRun(t, cfg)
		if res.Trace == nil {
			t.Fatalf("%s: no trace captured", name)
		}
		iter[name] = res.IterTime.ToSeconds()
		return res
	}

	ddp := runTraced("ddp", Config{Strategy: DDP})
	if ddp.Trace.Summarize(0).PerKind[trace.NCCLAllReduce] == 0 {
		t.Error("DDP trace missing all-reduce spans")
	}
	meg := runTraced("meg", Config{Strategy: Megatron})
	megSum := meg.Trace.Summarize(0)
	ddpSum := ddp.Trace.Summarize(0)
	if megSum.PerKind[trace.NCCLAllReduce] <= ddpSum.PerKind[trace.NCCLAllReduce] {
		t.Error("Megatron should spend more time in all-reduce than DDP")
	}
	z3 := runTraced("z3", Config{Strategy: ZeRO3})
	if z3.Trace.Summarize(0).PerKind[trace.NCCLAllGather] == 0 {
		t.Error("ZeRO-3 trace missing all-gather spans")
	}
	z2off := runTraced("z2off", Config{Strategy: ZeRO2, Offload: memory.CPUOffload})
	s := z2off.Trace.Summarize(0)
	if s.PerKind[trace.CPUAdam] == 0 || s.GPUIdle == 0 {
		t.Error("CPU offload trace should show CPUAdam with idle GPUs")
	}
	runTraced("z2", Config{Strategy: ZeRO2})

	// Fig 5's qualitative ordering at the small model: Megatron-LM and
	// ZeRO-3 iterate slower than DDP/ZeRO-2; offloading is slowest by far
	// ("should only be used for larger models that cannot fit without it").
	if !(iter["meg"] > iter["ddp"] && iter["z3"] > iter["z2"] && iter["z3"] > iter["ddp"]) {
		t.Errorf("Fig 5 iteration ordering violated: %v", iter)
	}
	if iter["z2off"] < 1.5*iter["z2"] {
		t.Errorf("CPU offload at 1.4B should cost far more than ZeRO-2: %v", iter)
	}
	// And the render should produce non-empty lanes.
	if lane := z2off.Trace.Render(0, 80); lane == "" {
		t.Error("empty timeline lane")
	}
}

// TestNVMeOffloadTraceShowsIdleGPUs: the eighth/ninth Fig 5 timelines.
func TestNVMeOffloadTraceShowsIdleGPUs(t *testing.T) {
	cfg := Config{Strategy: ZeRO3, Offload: memory.NVMeOptimizer, Model: maxFit(Config{Strategy: DDP}), Trace: true}
	res := quickRun(t, cfg)
	s := res.Trace.Summarize(0)
	if s.PerKind[trace.NVMeIO] == 0 {
		t.Fatal("no NVMe spans in ZeRO-Infinity trace")
	}
	if float64(s.GPUIdle) < 0.5*float64(s.Total) {
		t.Errorf("GPU idle = %v of %v; paper shows GPUs mostly idle during NVMe staging", s.GPUIdle, s.Total)
	}
}

func TestConfigValidation(t *testing.T) {
	good := Config{Strategy: ZeRO3, Model: model.NewGPT(4)}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	bad := []Config{
		{Strategy: DDP, Offload: memory.CPUOffload, Model: model.NewGPT(4)},
		{Strategy: Megatron, Offload: memory.NVMeOptimizer, Model: model.NewGPT(4)},
		{Strategy: ZeRO1, Offload: memory.NVMeOptimizer, Model: model.NewGPT(4)},
		{Strategy: ZeRO2, Offload: memory.NVMeOptimizerAndParams, Model: model.NewGPT(4)},
		{Strategy: ZeRO3, Offload: memory.NVMeOptimizer, Nodes: 2, Model: model.NewGPT(4)},
		{Strategy: DDP, Nodes: MaxNodes + 1, Model: model.NewGPT(4)},
		{Strategy: DDP, Model: model.GPT{}},
		{Strategy: Strategy(42), Model: model.NewGPT(4)},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestRunRejectsOversizedModel(t *testing.T) {
	_, err := Run(Config{Strategy: DDP, Model: model.NewGPT(100)})
	if err == nil {
		t.Error("oversized DDP model accepted")
	}
}

func TestStrategyStrings(t *testing.T) {
	for _, s := range []Strategy{DDP, Megatron, ZeRO1, ZeRO2, ZeRO3, Strategy(9)} {
		if s.String() == "" {
			t.Errorf("strategy %d renders empty", int(s))
		}
	}
	if ZeRO2.ZeROStage() != 2 || DDP.ZeROStage() != 0 {
		t.Error("ZeROStage wrong")
	}
	cfg := Config{Strategy: ZeRO3, Offload: memory.NVMeOptimizer, Model: model.NewGPT(4)}
	if cfg.Name() == "" {
		t.Error("empty config name")
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := Config{Strategy: ZeRO2, Model: model.NewGPT(20)}
	a := quickRun(t, cfg)
	b := quickRun(t, cfg)
	if a.IterTime != b.IterTime {
		t.Errorf("nondeterministic iteration time: %v vs %v", a.IterTime, b.IterTime)
	}
	if a.AttainedTFLOPs != b.AttainedTFLOPs {
		t.Errorf("nondeterministic throughput: %v vs %v", a.AttainedTFLOPs, b.AttainedTFLOPs)
	}
}

func TestBucketsAndGroupsPartition(t *testing.T) {
	for _, l := range []int{1, 7, 8, 100, 659} {
		total := 0
		for _, k := range buckets(l) {
			total += k
		}
		if total != l {
			t.Errorf("buckets(%d) sums to %d", l, total)
		}
		total = 0
		for _, k := range groups(l) {
			total += k
		}
		if total != l {
			t.Errorf("groups(%d) sums to %d", l, total)
		}
	}
	if len(buckets(1000)) > maxCommBuckets {
		t.Error("bucket count exceeds cap")
	}
}
