package train

import (
	"testing"

	"llmbw/internal/fabric"
	"llmbw/internal/model"
)

// TestCheckpointWritesHitNVMe: a checkpointed run produces NVMe traffic and
// slows down relative to the same run without checkpointing; a run without
// checkpointing shows no NVMe traffic.
func TestCheckpointWritesHitNVMe(t *testing.T) {
	g := model.NewGPT(40)
	base := Config{Strategy: ZeRO2, Model: g, Iterations: 2, Warmup: 1}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats[fabric.PCIeNVME].Avg != 0 {
		t.Error("non-checkpointed run shows NVMe traffic")
	}

	ck := base
	ck.CheckpointEvery = 1
	saved, err := Run(ck)
	if err != nil {
		t.Fatal(err)
	}
	if saved.Stats[fabric.PCIeNVME].Avg == 0 {
		t.Error("checkpointed run shows no NVMe traffic")
	}
	if saved.IterTime <= plain.IterTime {
		t.Errorf("checkpointing should add time: %v vs %v", saved.IterTime, plain.IterTime)
	}
	// A full checkpoint is 16Ψ bytes; at ~2B params that is ~32 GB over a
	// two-drive scratch volume — seconds of NVMe time per save.
	extra := (saved.IterTime - plain.IterTime).ToSeconds()
	if extra < 1 {
		t.Errorf("checkpoint cost %.2fs per iteration, suspiciously cheap", extra)
	}
}

// TestCheckpointIntervalRespected: every-2-iterations costs half as much
// amortized as every iteration.
func TestCheckpointIntervalRespected(t *testing.T) {
	g := model.NewGPT(30)
	run := func(every int) float64 {
		cfg := Config{Strategy: ZeRO2, Model: g, Iterations: 4, Warmup: 1, CheckpointEvery: every}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.IterTime.ToSeconds()
	}
	everyIter := run(1)
	everyOther := run(2)
	if everyOther >= everyIter {
		t.Errorf("checkpoint every 2 (%0.2fs/iter) should amortize below every 1 (%.2fs/iter)",
			everyOther, everyIter)
	}
}

// TestCheckpointWithNVMeOffloadSharesVolume: ZeRO-Infinity runs checkpoint
// to their existing offload volume without error.
func TestCheckpointWithNVMeOffloadSharesVolume(t *testing.T) {
	cfg := Config{Strategy: ZeRO3, Offload: memoryNVMeOpt(), Model: model.NewGPT(40),
		Iterations: 1, Warmup: 1, CheckpointEvery: 1}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats[fabric.PCIeNVME].Avg == 0 {
		t.Error("no NVMe traffic")
	}
}
