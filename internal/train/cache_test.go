package train

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"llmbw/internal/model"
	"llmbw/internal/topology"
)

// smallCfg builds a cheap distinct configuration per index for churn tests.
func smallCfg(i int) Config {
	return Config{
		Strategy:   DDP,
		Model:      model.NewGPT(2 + i%3),
		Nodes:      1 + i%2,
		Iterations: 1,
		Warmup:     0,
	}
}

// TestRunCacheChurn drives the bounded result tier well past its cap from
// concurrent workers and verifies that eviction never corrupts a *Result a
// caller is still holding: every returned result keeps the Summary of a
// fresh uncached run of the same configuration, even after the entry that
// produced it has been evicted and recomputed many times over.
func TestRunCacheChurn(t *testing.T) {
	ResetRunCache()
	SetRunCacheCap(2) // force heavy eviction across the 6 distinct configs
	defer func() {
		SetRunCacheCap(DefaultRunCacheCap)
		ResetRunCache()
	}()

	// Reference summaries from uncached runs.
	const distinct = 6
	want := make([]Summary, distinct)
	for i := 0; i < distinct; i++ {
		res, err := Run(smallCfg(i))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Summary()
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 8; iter++ {
				i := (w + iter) % distinct
				res, err := RunCached(smallCfg(i))
				if err != nil {
					errs <- err
					return
				}
				// Hold the result across further churn, then check it.
				for j := 0; j < distinct; j++ {
					if _, err := RunCached(smallCfg(j)); err != nil {
						errs <- err
						return
					}
				}
				if got := res.Summary(); !reflect.DeepEqual(got, want[i]) {
					errs <- fmt.Errorf("config %d: held result changed under churn:\ngot  %+v\nwant %+v", i, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	s := RunCacheStats()
	if s.Evictions == 0 {
		t.Fatal("no evictions: churn test did not exercise the LRU bound")
	}
	if s.Entries > 2 {
		t.Fatalf("entries = %d; want <= cap 2", s.Entries)
	}
}

// TestRunCacheStatsProbe checks the stats surface RunCached feeds.
func TestRunCacheStatsProbe(t *testing.T) {
	ResetRunCache()
	before := RunCacheStats()
	if _, err := RunCached(smallCfg(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := RunCached(smallCfg(0)); err != nil {
		t.Fatal(err)
	}
	after := RunCacheStats()
	if after.Name != "train.results" {
		t.Fatalf("tier name = %q; want train.results", after.Name)
	}
	if after.Misses-before.Misses != 1 {
		t.Fatalf("misses delta = %d; want 1 (one simulation for two identical requests)", after.Misses-before.Misses)
	}
	if after.Hits-before.Hits != 1 {
		t.Fatalf("hits delta = %d; want 1", after.Hits-before.Hits)
	}
	ResetRunCache()
}

// TestScenarioKeyStability pins that ScenarioKey is interned (two renders of
// one configuration share one backing string) and rejects opaque configs.
func TestScenarioKeyStability(t *testing.T) {
	a, ok := smallCfg(0).ScenarioKey()
	if !ok {
		t.Fatal("ScenarioKey rejected a plain config")
	}
	b, _ := smallCfg(0).ScenarioKey()
	if a != b {
		t.Fatal("same config produced different scenario keys")
	}
	faulty := smallCfg(0)
	faulty.FaultInjection = func(*topology.Cluster) {}
	if _, ok := faulty.ScenarioKey(); ok {
		t.Fatal("ScenarioKey accepted an opaque FaultInjection config")
	}
}
