package train

import (
	"fmt"

	"llmbw/internal/collective"
	"llmbw/internal/memory"
	"llmbw/internal/sched"
	"llmbw/internal/sim"
	"llmbw/internal/trace"
)

// runIteration executes one training step under the configured strategy.
// Ranks run in lockstep (the workload is SPMD-symmetric), so a single driver
// process advances the shared schedule while flows and collectives contend
// on the fabric.
func (r *Runner) runIteration(p *sim.Proc) {
	if CompiledSchedules || r.cfg.Rewrite != RewriteNone {
		// The compiled-schedule path (which subsumes batch staging as its
		// first op). Rewrites are schedule transformations, so they force it.
		r.runCompiled(p)
		return
	}
	r.stageBatch()
	switch r.cfg.Strategy {
	case DDP:
		r.iterDDP(p)
	case Megatron:
		if r.cfg.PipelineParallel > 1 {
			r.iterMegatronHybrid(p)
		} else {
			r.iterMegatron(p)
		}
	case ZeRO1:
		r.iterZeRO1(p)
	case ZeRO2:
		r.iterZeRO2(p)
	case ZeRO3:
		r.iterZeRO3(p)
	default:
		panic(fmt.Sprintf("train: unknown strategy %v", r.cfg.Strategy))
	}
}

// buckets splits the layer count into communication buckets.
func buckets(layers int) []int {
	return sched.Buckets(layers, layersPerBucket, maxCommBuckets)
}

// groups splits layers into ZeRO-3 parameter prefetch groups.
func groups(layers int) []int {
	return sched.Groups(layers, zero3Groups)
}

// forwardPass runs the forward compute (shared by DDP and ZeRO-1/2),
// accumulating activation memory layer by layer.
func (r *Runner) forwardPass(p *sim.Proc, mp int) {
	g := r.cfg.Model
	b := r.cfg.BatchPerGPU
	layerF := g.LayerForwardFLOPs(b) / float64(mp)
	for l := 0; l < g.Layers; l++ {
		r.computeSpan(p, trace.Gemm, layerF)
		r.mem.alloc(r.layerActivationBytes())
	}
	r.computeSpan(p, trace.Gemm, g.HeadForwardFLOPs(b)/float64(mp))
	r.mem.alloc(r.headActivationBytes())
	r.computeSpan(p, trace.Elementwise, 0) // loss/softmax epilogue
}

// backwardFactor is the compute multiple of a forward pass spent in backward
// (2×), plus one recompute forward when activation checkpointing is on.
func (r *Runner) backwardFactor() float64 {
	if r.prof.ActivationCkpt {
		return 3
	}
	return 2
}

// iterDDP: forward, backward with per-bucket all-reduce overlapped on the
// comm stream (PyTorch DDP's gradient bucketing), then a replicated fused
// Adam step on every GPU.
func (r *Runner) iterDDP(p *sim.Proc) {
	g := r.cfg.Model
	b := r.cfg.BatchPerGPU
	r.forwardPass(p, 1)

	q := r.newQueue(0, 2)
	r.computeSpan(p, trace.Gemm, 2*g.HeadForwardFLOPs(b))
	r.mem.free(r.headActivationBytes())
	r.mem.alloc(r.recomputeWorkingSet())
	bk := buckets(g.Layers)
	perBucket := r.gradBytes / float64(len(bk))
	for _, k := range bk {
		r.computeSpan(p, trace.Gemm, r.backwardFactor()*g.LayerForwardFLOPs(b)*float64(k))
		r.mem.free(float64(k) * r.layerActivationBytes())
		q.enqueue(collective.AllReduce, perBucket)
	}
	r.mem.free(r.recomputeWorkingSet())
	q.drain(p)
	r.gpuAdam(p, g.Params())
}

// iterMegatron: tensor-model parallelism of degree = world size, with MP
// gradient-accumulation microbatches per iteration so the global batch
// matches the data-parallel runs — visible in Fig 5 as Megatron-LM's four
// forward/backward pairs. Every layer runs its GEMMs on 1/MP of the work and
// synchronizes activations with two all-reduces in forward and two in
// backward — the communication the paper identifies as Megatron-LM's
// dual-node downfall.
func (r *Runner) iterMegatron(p *sim.Proc) {
	g := r.cfg.Model
	b := r.cfg.BatchPerGPU
	mp := r.cfg.WorldSize()
	actBytes := float64(b) * float64(g.SeqLen) * float64(g.Hidden) * 2 // FP16 activations

	layerF := g.LayerForwardFLOPs(b) / float64(mp)
	for micro := 0; micro < mp; micro++ {
		for l := 0; l < g.Layers; l++ {
			r.computeSpan(p, trace.Gemm, layerF)
			r.mem.alloc(r.layerActivationBytes())
			r.syncCollective(p, collective.AllReduce, actBytes, 0, 2)
			r.syncCollective(p, collective.AllReduce, actBytes, 0, 2)
		}
		r.computeSpan(p, trace.Gemm, g.HeadForwardFLOPs(b)/float64(mp))
		r.mem.alloc(r.headActivationBytes())
		r.syncCollective(p, collective.AllReduce, actBytes, 0, 2)

		for l := 0; l < g.Layers; l++ {
			r.computeSpan(p, trace.Gemm, 2*layerF)
			r.mem.free(r.layerActivationBytes())
			r.syncCollective(p, collective.AllReduce, actBytes, 0, 2)
			r.syncCollective(p, collective.AllReduce, actBytes, 0, 2)
		}
		r.computeSpan(p, trace.Gemm, 2*g.HeadForwardFLOPs(b)/float64(mp))
		r.mem.free(r.headActivationBytes())
	}
	r.gpuAdam(p, g.Params()/int64(mp))
}

// iterZeRO1: DDP-like compute with activation checkpointing; optimizer
// states are partitioned, so the gradient synchronization becomes an exposed
// reduce-scatter + parameter all-gather at the end of the step, rate-limited
// when GPU headroom starves the fused buffers (the Table V ZeRO-1 drop).
func (r *Runner) iterZeRO1(p *sim.Proc) {
	g := r.cfg.Model
	b := r.cfg.BatchPerGPU
	r.forwardPass(p, 1)
	r.computeSpan(p, trace.Gemm, 2*g.HeadForwardFLOPs(b))
	r.mem.free(r.headActivationBytes())
	r.mem.alloc(r.recomputeWorkingSet())
	for _, k := range buckets(g.Layers) {
		r.computeSpan(p, trace.Gemm, r.backwardFactor()*g.LayerForwardFLOPs(b)*float64(k))
		r.mem.free(float64(k) * r.layerActivationBytes())
	}
	r.mem.free(r.recomputeWorkingSet())
	r.z1Collective(p, collective.ReduceScatter, r.gradBytes)
	r.optimizerPhase(p)
	r.z1Collective(p, collective.AllGather, r.paramBytes)
}

// iterZeRO2: gradients are reduce-scattered per bucket, overlapped with the
// backward pass on a single node; across nodes DeepSpeed 0.7.1's overlap is
// ineffective over RoCE (the paper's Fig 10 shows distinct communication
// phases), so the reduce-scatter runs exposed after backward. The optimizer
// updates the local partition, then parameters are all-gathered.
func (r *Runner) iterZeRO2(p *sim.Proc) {
	g := r.cfg.Model
	b := r.cfg.BatchPerGPU
	r.forwardPass(p, 1)

	overlap := r.cfg.Nodes == 1
	q := r.newQueue(0, 1)
	r.computeSpan(p, trace.Gemm, 2*g.HeadForwardFLOPs(b))
	r.mem.free(r.headActivationBytes())
	r.mem.alloc(r.recomputeWorkingSet())
	bk := buckets(g.Layers)
	perBucket := r.gradBytes / float64(len(bk))
	for _, k := range bk {
		r.computeSpan(p, trace.Gemm, r.backwardFactor()*g.LayerForwardFLOPs(b)*float64(k))
		r.mem.free(float64(k) * r.layerActivationBytes())
		if overlap {
			q.enqueue(collective.ReduceScatter, perBucket)
		}
	}
	r.mem.free(r.recomputeWorkingSet())
	if overlap {
		q.drain(p)
	} else {
		r.syncCollective(p, collective.ReduceScatter, r.gradBytes, 0, 1)
	}
	r.optimizerPhase(p)
	r.syncCollective(p, collective.AllGather, r.paramBytes, 0, 1)
}

// iterZeRO3: parameters live sharded. Forward and backward gather each layer
// group's parameters just in time (prefetched one group ahead on the comm
// stream); backward additionally reduce-scatters each group's gradients.
func (r *Runner) iterZeRO3(p *sim.Proc) {
	g := r.cfg.Model
	b := r.cfg.BatchPerGPU
	gr := groups(g.Layers)
	layerParamBytes := 2 * float64(g.LayerParams())
	embedBytes := 2 * float64(g.EmbeddingParams())
	groupBytes := func(i int) float64 {
		bytes := layerParamBytes * float64(gr[i])
		if i == 0 {
			bytes += embedBytes
		}
		return bytes
	}
	if r.cfg.Offload == memory.NVMeOptimizerAndParams {
		// Parameters start on NVMe: each rank stages its shard up before
		// the gathers can run.
		r.nvmeIO(p, r.paramBytes/float64(r.cfg.WorldSize()), false)
	}

	q := r.newQueue(0, 1)
	handles := make([]*collective.Handle, len(gr))
	handles[0] = q.enqueueHandle(collective.AllGather, groupBytes(0))
	for i := range gr {
		if i+1 < len(gr) {
			handles[i+1] = q.enqueueHandle(collective.AllGather, groupBytes(i+1))
		}
		handles[i].Wait(p)
		q.release(handles[i])
		handles[i] = nil
		p.Sleep(r.zero3Overhead() * sim.Time(gr[i]))
		r.computeSpan(p, trace.Gemm, g.LayerForwardFLOPs(b)*float64(gr[i]))
		r.mem.alloc(float64(gr[i]) * r.layerActivationBytes())
	}
	r.computeSpan(p, trace.Gemm, g.HeadForwardFLOPs(b))
	r.mem.alloc(r.headActivationBytes())

	if r.cfg.Offload == memory.NVMeOptimizerAndParams {
		r.nvmeIO(p, r.paramBytes/float64(r.cfg.WorldSize()), false)
	}
	r.computeSpan(p, trace.Gemm, 2*g.HeadForwardFLOPs(b))
	r.mem.free(r.headActivationBytes())
	r.mem.alloc(r.recomputeWorkingSet())
	bq := r.newQueue(0, 1)
	bh := make([]*collective.Handle, len(gr))
	last := len(gr) - 1
	bh[last] = bq.enqueueHandle(collective.AllGather, groupBytes(last))
	for i := last; i >= 0; i-- {
		if i-1 >= 0 {
			bh[i-1] = bq.enqueueHandle(collective.AllGather, groupBytes(i-1))
		}
		bh[i].Wait(p)
		bq.release(bh[i])
		bh[i] = nil
		p.Sleep(r.zero3Overhead() * sim.Time(gr[i]))
		r.computeSpan(p, trace.Gemm, r.backwardFactor()*g.LayerForwardFLOPs(b)*float64(gr[i]))
		r.mem.free(float64(gr[i]) * r.layerActivationBytes())
		bq.enqueue(collective.ReduceScatter, groupBytes(i))
	}
	r.mem.free(r.recomputeWorkingSet())
	bq.drain(p)
	r.optimizerPhase(p)
}

// optimizerPhase dispatches the weight update to GPU, CPU (ZeRO-Offload) or
// NVMe-staged CPU (ZeRO-Infinity) per the configured offload mode.
func (r *Runner) optimizerPhase(p *sim.Proc) {
	world := int64(r.cfg.WorldSize())
	part := r.cfg.Model.Params() / world
	partBytes := r.gradBytes / float64(world)
	switch r.cfg.Offload {
	case memory.NoOffload:
		r.gpuAdam(p, part)
	case memory.CPUOffload:
		r.offloadCopy(p, partBytes) // gradients down to pinned host staging
		r.hostAdam(p, part)
		r.offloadCopy(p, partBytes) // updated FP16 params back up
	case memory.NVMeOptimizer, memory.NVMeOptimizerAndParams:
		r.offloadCopy(p, partBytes)          // gradients to host
		r.nvmeIO(p, 12*float64(part), false) // read optimizer partition
		r.hostAdam(p, part)
		r.nvmeIO(p, 12*float64(part), true) // write optimizer partition
		if r.cfg.Offload == memory.NVMeOptimizerAndParams {
			r.nvmeIO(p, partBytes, true) // park updated FP16 params on NVMe
		} else {
			r.offloadCopy(p, partBytes) // updated FP16 params back to GPU
		}
	}
}
