package train

import (
	"testing"

	"llmbw/internal/model"
	"llmbw/internal/sim"
	"llmbw/internal/trace"
)

func tracedRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	cfg.Trace = true
	cfg.Iterations = 2
	cfg.Warmup = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBreakdownSumsToTotal(t *testing.T) {
	res := tracedRun(t, Config{Strategy: ZeRO3, Model: model.NewGPT(40)})
	b := BreakdownFor(res.Trace)
	sum := b.Compute + b.Collective + b.Offload + b.HostAdam + b.NVMe + b.GPUIdle
	if sum != b.Total {
		t.Errorf("buckets sum %v != total %v", sum, b.Total)
	}
	if b.Total <= 0 {
		t.Fatal("empty breakdown")
	}
}

func TestBreakdownShapesPerStrategy(t *testing.T) {
	g := model.NewGPT(23)
	ddp := BreakdownFor(tracedRun(t, Config{Strategy: DDP, Model: g}).Trace)
	if ddp.Fraction(ddp.Compute) < 0.7 {
		t.Errorf("DDP should be compute-dominated: %.0f%%", ddp.Fraction(ddp.Compute)*100)
	}
	meg := BreakdownFor(tracedRun(t, Config{Strategy: Megatron, Model: g}).Trace)
	if meg.Fraction(meg.Collective) < ddp.Fraction(ddp.Collective) {
		t.Error("Megatron should spend a larger share in collectives than DDP")
	}
	off := BreakdownFor(tracedRun(t, Config{Strategy: ZeRO2, Offload: memoryCPU(), Model: g}).Trace)
	if off.Fraction(off.HostAdam) < 0.3 {
		t.Errorf("CPU offload should be CPUAdam-dominated: %.0f%%", off.Fraction(off.HostAdam)*100)
	}
	inf := BreakdownFor(tracedRun(t, Config{Strategy: ZeRO3, Offload: memoryNVMeOpt(), Model: g}).Trace)
	if inf.Fraction(inf.NVMe) < 0.5 {
		t.Errorf("NVMe offload should be staging-dominated: %.0f%%", inf.Fraction(inf.NVMe)*100)
	}
}

func TestBreakdownPrecedenceOnOverlap(t *testing.T) {
	tr := trace.New()
	// Compute and a collective overlap for [10,20); compute wins there.
	tr.Add(0, trace.Gemm, 0, 20)
	tr.Add(0, trace.NCCLAllReduce, 10, 30)
	b := BreakdownFor(tr)
	if b.Compute != 20 || b.Collective != 10 {
		t.Errorf("compute=%v collective=%v, want 20/10", b.Compute, b.Collective)
	}
	if b.GPUIdle != 0 {
		t.Errorf("idle = %v, want 0", b.GPUIdle)
	}
}

func TestBreakdownEmptyTrace(t *testing.T) {
	if b := BreakdownFor(nil); b.Total != 0 {
		t.Error("nil trace should yield empty breakdown")
	}
	if f := (Breakdown{}).Fraction(sim.Second); f != 0 {
		t.Errorf("fraction of empty breakdown = %v", f)
	}
}
