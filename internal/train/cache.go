package train

import (
	"fmt"
	"sync"

	"llmbw/internal/collective"
	"llmbw/internal/topology"
)

// The experiment suite replays many identical training configurations — the
// same maximum-size run feeds Fig 6, Fig 7, Fig 8, Table IV and Table V — and
// the simulator is deterministic, so a repeated Run is pure waste. RunCached
// memoizes Run results keyed by a canonical rendering of the configuration.
// Entries are computed at most once even when parallel experiment workers
// request the same configuration concurrently.
var runCache sync.Map // canonical config key -> *runCacheEntry

type runCacheEntry struct {
	once sync.Once
	res  *Result
	err  error
}

// cacheKey returns a canonical key for the configuration, or ok=false when
// the configuration cannot be cached (a FaultInjection hook is opaque: two
// configs with different hooks would collide).
func (c Config) cacheKey() (string, bool) {
	if c.FaultInjection != nil {
		return "", false
	}
	c = c.withDefaults()
	placement := "-"
	if c.Placement != nil {
		placement = fmt.Sprintf("%s|%v|%v|%v",
			c.Placement.Name, c.Placement.Drives, c.Placement.Volumes, c.Placement.RankVol)
	}
	// Topo is keyed canonically and Algo post-toggle, so "ft:nodes=64" and
	// "fat-tree:nodes=64" share an entry while flipping
	// collective.Hierarchical never serves a stale twin.
	topo, algo := "-", "-"
	if c.IsDC() {
		dc, err := topology.ParseTopoSpec(c.Topo)
		if err != nil {
			return "", false
		}
		topo = dc.Spec()
		a, err := collective.ParseAlgo(c.Algo)
		if err != nil {
			return "", false
		}
		algo = collective.EffectiveAlgo(a).String()
	}
	return fmt.Sprintf("s%d o%d n%d m%+v tp%d pp%d b%d P{%s} i%d w%d ck%d tr%t win%d pb%t roce%g xbar%g rw%d sh%d topo{%s} algo{%s}",
		c.Strategy, c.Offload, c.Nodes, c.Model, c.TensorParallel, c.PipelineParallel,
		c.BatchPerGPU, placement, c.Iterations, c.Warmup, c.CheckpointEvery,
		c.Trace, int64(c.Window), c.PurposeBuilt, c.RoCEBW, c.XbarBW, c.Rewrite, c.Shards, topo, algo), true
}

// RunCached executes the configuration, reusing the Result of an identical
// earlier run in this process. Results are deterministic functions of the
// configuration and are treated as immutable by all consumers, so sharing
// one *Result across experiments is safe. Configurations with fault
// injection hooks fall through to a plain Run.
func RunCached(cfg Config) (*Result, error) {
	key, ok := cfg.cacheKey()
	if !ok {
		return Run(cfg)
	}
	v, _ := runCache.LoadOrStore(key, &runCacheEntry{})
	e := v.(*runCacheEntry)
	e.once.Do(func() { e.res, e.err = Run(cfg) })
	return e.res, e.err
}

// ResetRunCache drops all memoized results. Tests use it to force fresh
// simulations when comparing independent executions.
func ResetRunCache() {
	runCache.Range(func(k, _ any) bool {
		runCache.Delete(k)
		return true
	})
}
