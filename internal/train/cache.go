package train

import (
	"fmt"

	"llmbw/internal/collective"
	"llmbw/internal/scenario"
	"llmbw/internal/topology"
)

// The experiment suite replays many identical training configurations — the
// same maximum-size run feeds Fig 6, Fig 7, Fig 8, Table IV and Table V — and
// the simulator is deterministic, so a repeated Run is pure waste. RunCached
// memoizes Run results keyed by a canonical rendering of the configuration.
// Entries are computed at most once even when parallel experiment workers
// request the same configuration concurrently (the cache's singleflight), and
// the tier is bounded: beyond the entry cap the least-recently-used results
// are evicted. Eviction only drops the cache's reference — a *Result already
// returned to a caller stays valid (results are immutable by contract), and a
// later identical request simply recomputes.
//
// DefaultRunCacheCap bounds the resident results. A Result for a dc-scale
// topology is dominated by its Summary and per-window telemetry — small
// relative to the simulation that produced it — so the default is sized for
// the largest sweeps in the experiment suite rather than for memory pressure.
const DefaultRunCacheCap = 512

var runCache = scenario.New("train.results", DefaultRunCacheCap)

// ScenarioKey returns the canonical interned scenario key for the
// configuration, or ok=false when the configuration cannot be keyed (a
// FaultInjection hook is opaque: two configs with different hooks would
// collide; an unparsable Topo/Algo cannot be canonicalized). The key is the
// identity used by the result cache and by cmd/servesim's request coalescing.
func (c Config) ScenarioKey() (string, bool) {
	if c.FaultInjection != nil {
		return "", false
	}
	c = c.withDefaults()
	placement := "-"
	if c.Placement != nil {
		placement = fmt.Sprintf("%s|%v|%v|%v",
			c.Placement.Name, c.Placement.Drives, c.Placement.Volumes, c.Placement.RankVol)
	}
	// Topo is keyed canonically and Algo post-toggle, so "ft:nodes=64" and
	// "fat-tree:nodes=64" share an entry while flipping
	// collective.Hierarchical never serves a stale twin.
	topo, algo := "-", "-"
	if c.IsDC() {
		dc, err := topology.ParseTopoSpec(c.Topo)
		if err != nil {
			return "", false
		}
		topo = dc.Spec()
		a, err := collective.ParseAlgo(c.Algo)
		if err != nil {
			return "", false
		}
		algo = collective.EffectiveAlgo(a).String()
	}
	return scenario.Intern(fmt.Sprintf("s%d o%d n%d m%+v tp%d pp%d b%d P{%s} i%d w%d ck%d tr%t win%d pb%t roce%g xbar%g rw%d sh%d topo{%s} algo{%s}",
		c.Strategy, c.Offload, c.Nodes, c.Model, c.TensorParallel, c.PipelineParallel,
		c.BatchPerGPU, placement, c.Iterations, c.Warmup, c.CheckpointEvery,
		c.Trace, int64(c.Window), c.PurposeBuilt, c.RoCEBW, c.XbarBW, c.Rewrite, c.Shards, topo, algo)), true
}

// cacheKey is the historical internal name for ScenarioKey.
func (c Config) cacheKey() (string, bool) { return c.ScenarioKey() }

// RunCached executes the configuration, reusing the Result of an identical
// earlier run in this process. Results are deterministic functions of the
// configuration and are treated as immutable by all consumers, so sharing
// one *Result across experiments is safe. Configurations with fault
// injection hooks fall through to a plain Run.
func RunCached(cfg Config) (*Result, error) {
	key, ok := cfg.ScenarioKey()
	if !ok {
		return Run(cfg)
	}
	v, err := runCache.Do(key, 0, func() (any, error) {
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*Result), nil
}

// RunCacheStats snapshots the result tier's counters for stats probes.
func RunCacheStats() scenario.Stats { return runCache.Stats() }

// SetRunCacheCap rebounds the result tier (entries beyond the new cap are
// evicted immediately, least-recently-used first); cap <= 0 removes the
// bound. cmd/servesim exposes this as -cache.
func SetRunCacheCap(capacity int) { runCache.SetCap(capacity) }

// ResetRunCache drops all memoized results. Tests use it to force fresh
// simulations when comparing independent executions.
func ResetRunCache() { runCache.Reset() }
