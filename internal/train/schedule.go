package train

import (
	"fmt"

	"llmbw/internal/collective"
	"llmbw/internal/sim"
	"llmbw/internal/topology"
	"llmbw/internal/trace"
)

// CompiledSchedules selects the iteration execution path: true (the default)
// compiles each strategy's per-iteration program into a schedule — a typed op
// list with explicit stream dependencies and phase tags — once, and replays
// it every iteration through a single executor with pooled flows, handles and
// collective plans, so steady-state iterations allocate nothing; false runs
// the original imperative coroutines. The two paths are byte-identical in
// simulation outcome (pinned by the determinism matrix in
// schedule_test.go/determinism_test.go); the knob exists so those tests can
// compare them. It must not be toggled while a simulation is running.
var CompiledSchedules = true

// Rewrite selects a schedule-level ablation applied after compilation. A
// rewrite transforms the op list before execution — the schedule IR's whole
// point: what-if studies become program transformations instead of forked
// strategy implementations. Rewrites force the compiled-schedule path (the
// imperative coroutines cannot honour them).
type Rewrite int

// Supported rewrites.
const (
	RewriteNone Rewrite = iota
	// RewriteSerializeComm converts every stream-overlapped collective into
	// an exposed synchronous one at the same program point and drops the now
	// meaningless stream waits/barriers: the iteration with communication/
	// computation overlap ablated away. The overlap gain of DDP's gradient
	// bucketing and ZeRO's prefetch pipelines is the difference between a
	// schedule and its serialized rewrite.
	RewriteSerializeComm
)

// String returns the rewrite's display name.
func (rw Rewrite) String() string {
	switch rw {
	case RewriteNone:
		return "none"
	case RewriteSerializeComm:
		return "serialize-comm"
	}
	return fmt.Sprintf("Rewrite(%d)", int(rw))
}

// opKind discriminates schedule ops.
type opKind uint8

// Schedule op kinds. Each op mirrors one imperative building block of the
// legacy strategies exactly — same engine events, same order — which is what
// makes the replay byte-identical.
const (
	// opStageBatch launches the dataloader's host→GPU staging flows for
	// every rank, fire-and-forget.
	opStageBatch opKind = iota
	// opCompute blocks for a precomputed GPU kernel duration and traces it.
	opCompute
	// opOverhead blocks for a fixed untraced duration (framework
	// coordination costs: ZeRO-3 gather hooks, ZeRO-1 chunk relaunches).
	opOverhead
	// opCollective runs an exposed synchronous collective on op.group (nil =
	// the world group).
	opCollective
	// opEnqueue chains an asynchronous collective on a virtual NCCL stream
	// (op.queue); slot >= 0 retains the handle for a later opWaitSlot.
	opEnqueue
	// opWaitSlot blocks until the retained handle in op.slot fires, then
	// returns it to the pool (unless it is still the stream tail).
	opWaitSlot
	// opBarrier blocks until the stream's tail operation completes.
	opBarrier
	// opOffloadXfer runs the blocking GPU↔host staging copy on every rank.
	opOffloadXfer
	// opCPUAdamStep starts the paced CPUAdam DRAM flows and blocks for the
	// host optimizer duration (GPUs idle).
	opCPUAdamStep
	// opNVMeIO runs a staged NVMe transfer on every rank, blocking until the
	// slowest completes.
	opNVMeIO
	// opMemAlloc / opMemFree adjust the runtime GPU memory tracker.
	opMemAlloc
	opMemFree
	// opStageAllReduce runs one all-reduce concurrently on several disjoint
	// groups (hybrid parallelism's per-stage TP collectives).
	opStageAllReduce
	// opBoundaryXfer sends the pipeline boundary activations and blocks.
	opBoundaryXfer
)

// schedOp is one operation of a compiled iteration schedule. Dependencies are
// program order plus the explicit stream edges: an opEnqueue's collective is
// ordered after the previous operation on its queue, and opWaitSlot/opBarrier
// join a stream back into program order.
type schedOp struct {
	kind   opKind
	phase  trace.Phase
	tk     trace.Kind // trace kind for traced ops
	traced bool

	col     collective.Op
	group   *collective.Group   // opCollective target; nil = world
	groups  []*collective.Group // opStageAllReduce targets
	routes  []topology.Route    // opBoundaryXfer activation routes
	payload float64             // collective payload bytes
	limit   float64             // per-hop rate cap (exposed collectives)
	rings   int8                // NCCL ring count (exposed collectives)
	queue   int8                // stream index for opEnqueue/opWaitSlot/opBarrier
	slot    int16               // retained-handle slot; -1 = fire-and-forget
	write   bool                // opNVMeIO direction
	dur     sim.Time            // opCompute/opOverhead/opCPUAdamStep duration
	bytes   float64             // opMemAlloc/opMemFree/opOffloadXfer/opNVMeIO/opBoundaryXfer bytes
	params  int64               // opCPUAdamStep per-rank parameter count
}

// queueSpec describes one virtual NCCL stream of the schedule.
type queueSpec struct {
	limit float64
	rings int8
}

// schedule is a compiled per-iteration program.
type schedule struct {
	ops    []schedOp
	queues []queueSpec
	slots  int // retained-handle slot count
}

// apply returns the schedule transformed by the rewrite (the receiver is
// never mutated; RewriteNone returns it unchanged).
func (s *schedule) apply(rw Rewrite) *schedule {
	switch rw {
	case RewriteNone:
		return s
	case RewriteSerializeComm:
		return s.serializeComm()
	}
	panic(fmt.Sprintf("train: unknown rewrite %d", int(rw)))
}

// serializeComm rewrites every stream-overlapped collective into an exposed
// synchronous one issued at its enqueue point, dropping stream waits and
// barriers (their ordering is now implied by program order). The streams'
// rate limits and ring counts carry over unchanged.
func (s *schedule) serializeComm() *schedule {
	out := &schedule{queues: s.queues}
	out.ops = make([]schedOp, 0, len(s.ops))
	for _, op := range s.ops {
		switch op.kind {
		case opEnqueue:
			q := s.queues[op.queue]
			op.kind = opCollective
			op.group = nil
			op.limit = q.limit
			op.rings = q.rings
			op.slot = -1
			out.ops = append(out.ops, op)
		case opWaitSlot, opBarrier:
			// Dropped: program order already sequences the serialized
			// collectives.
		default:
			out.ops = append(out.ops, op)
		}
	}
	return out
}
