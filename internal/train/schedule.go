package train

import "llmbw/internal/schedule"

// CompiledSchedules selects the iteration execution path: true (the default)
// compiles each strategy's per-iteration program into a schedule.Schedule —
// a typed op list with explicit stream dependencies and phase tags — once,
// and replays it every iteration through the shared internal/schedule
// executor with pooled flows, handles and collective plans, so steady-state
// iterations allocate nothing; false runs the original imperative
// coroutines. The two paths are byte-identical in simulation outcome (pinned
// by the determinism matrix in schedule_test.go/determinism_test.go); the
// knob exists so those tests can compare them. It must not be toggled while
// a simulation is running.
var CompiledSchedules = true

// The schedule IR itself — the op vocabulary, rewrites and the executor —
// lives in internal/schedule since PR 10; train's per-strategy compilers
// (compile.go) are one client of it. The rewrite vocabulary is re-exported
// here so Config.Rewrite call sites keep reading train.RewriteSerializeComm.

// Rewrite selects a schedule-level ablation applied after compilation; see
// schedule.Rewrite.
type Rewrite = schedule.Rewrite

// Supported rewrites.
const (
	RewriteNone          = schedule.RewriteNone
	RewriteSerializeComm = schedule.RewriteSerializeComm
)
