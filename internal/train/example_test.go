package train_test

import (
	"fmt"

	"llmbw/internal/fabric"
	"llmbw/internal/model"
	"llmbw/internal/train"
)

// Train the largest single-node ZeRO-2 model and read the paper's metrics.
func Example() {
	cfg := train.Config{Strategy: train.ZeRO2, Nodes: 1, Iterations: 3, Warmup: 1}
	cfg.Model = model.NewGPT(cfg.Profile().MaxLayers(model.DefaultBatchSize, 4))
	res, err := train.Run(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("model: %.2fB params\n", cfg.Model.ParamsB())
	fmt.Printf("throughput: %.0f TFLOP/s\n", res.AttainedTFLOPs)
	fmt.Printf("NVLink avg: %.0f GB/s\n", res.Stats[fabric.NVLink].Avg/1e9)
	// Output:
	// model: 5.29B params
	// throughput: 506 TFLOP/s
	// NVLink avg: 90 GB/s
}
