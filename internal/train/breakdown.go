package train

import (
	"sort"

	"llmbw/internal/sim"
	"llmbw/internal/trace"
)

// Breakdown attributes one iteration's wall time to activity classes — the
// quantitative form of the paper's Fig 5 narration ("most kernels are GEMM…
// ZeRO-3 involves many NCCL communication kernels… during the idle time of
// the GPUs, the CPU is busy computing the optimizers").
type Breakdown struct {
	Total sim.Time
	// Buckets in display order.
	Compute    sim.Time // GEMM, element-wise, weight update
	Collective sim.Time // NCCL operations (GPU-occupying)
	Offload    sim.Time // PCIe staging copies
	HostAdam   sim.Time // CPUAdam (GPUs idle)
	NVMe       sim.Time // NVMe staging (GPUs idle)
	GPUIdle    sim.Time // idle not attributable to host work
}

// Fraction returns part/Total, or 0 for an empty breakdown.
func (b Breakdown) Fraction(part sim.Time) float64 {
	if b.Total == 0 {
		return 0
	}
	f := float64(part) / float64(b.Total)
	if f < 0 {
		return 0
	}
	return f
}

// BreakdownFor computes the rank-0 breakdown over the trace's own span
// window. Untraced time inside the window lands in GPUIdle.
func BreakdownFor(tr *trace.Trace) Breakdown {
	if !tr.Enabled() {
		return Breakdown{}
	}
	lo, hi := tr.Window()
	return BreakdownOver(tr, lo, hi)
}

// BreakdownOver computes the rank-0 breakdown over an explicit [lo, hi)
// window (e.g. Result.LastIterStart/LastIterEnd, which bracket the traced
// iteration exactly). Spans are clamped to the window; overlapping spans are
// resolved by class precedence (compute wins over collectives, which win
// over host-side work) and time covered by no span — including untraced
// framework overhead — counts as GPUIdle, so the buckets sum to Total
// exactly.
func BreakdownOver(tr *trace.Trace, lo, hi sim.Time) Breakdown {
	var b Breakdown
	if !tr.Enabled() {
		return b
	}
	b.Total = hi - lo
	if b.Total <= 0 {
		return b
	}

	// Sweep rank 0's spans over time, classifying each instant by the
	// highest-precedence active class.
	type edge struct {
		at    sim.Time
		delta int
		class trace.Class
	}
	var edges []edge
	for _, s := range tr.Spans() {
		if s.Rank != 0 {
			continue
		}
		start, end := s.Start, s.End
		if start < lo {
			start = lo
		}
		if end > hi {
			end = hi
		}
		if end <= start {
			continue
		}
		c := s.Kind.Class()
		edges = append(edges, edge{start, +1, c}, edge{end, -1, c})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].at < edges[j].at })

	active := make([]int, trace.ClassCount)
	buckets := make([]sim.Time, trace.ClassCount)
	var idle sim.Time
	prev := lo
	account := func(until sim.Time) {
		d := until - prev
		if d <= 0 {
			return
		}
		for c := trace.Class(0); c < trace.ClassCount; c++ {
			if active[c] > 0 {
				buckets[c] += d
				return
			}
		}
		idle += d
	}
	for _, e := range edges {
		account(e.at)
		prev = e.at
		active[e.class] += e.delta
	}
	account(hi)

	b.Compute = buckets[trace.ClassCompute]
	b.Collective = buckets[trace.ClassCollective]
	b.Offload = buckets[trace.ClassOffload]
	b.HostAdam = buckets[trace.ClassHostAdam]
	b.NVMe = buckets[trace.ClassNVMe]
	b.GPUIdle = idle
	return b
}
