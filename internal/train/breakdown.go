package train

import (
	"sort"

	"llmbw/internal/sim"
	"llmbw/internal/trace"
)

// Breakdown attributes one iteration's wall time to activity classes — the
// quantitative form of the paper's Fig 5 narration ("most kernels are GEMM…
// ZeRO-3 involves many NCCL communication kernels… during the idle time of
// the GPUs, the CPU is busy computing the optimizers").
type Breakdown struct {
	Total sim.Time
	// Buckets in display order.
	Compute    sim.Time // GEMM, element-wise, weight update
	Collective sim.Time // NCCL operations (GPU-occupying)
	Offload    sim.Time // PCIe staging copies
	HostAdam   sim.Time // CPUAdam (GPUs idle)
	NVMe       sim.Time // NVMe staging (GPUs idle)
	GPUIdle    sim.Time // idle not attributable to host work
}

// Fraction returns part/Total, or 0 for an empty breakdown.
func (b Breakdown) Fraction(part sim.Time) float64 {
	if b.Total == 0 {
		return 0
	}
	f := float64(part) / float64(b.Total)
	if f < 0 {
		return 0
	}
	return f
}

// BreakdownFor computes the rank-0 breakdown of a traced run. Overlapping
// spans are resolved by precedence (compute wins over collectives, which win
// over host-side work), so the buckets sum to Total exactly.
func BreakdownFor(tr *trace.Trace) Breakdown {
	var b Breakdown
	if !tr.Enabled() {
		return b
	}
	lo, hi := tr.Window()
	b.Total = hi - lo
	if b.Total <= 0 {
		return b
	}

	// Sweep rank 0's spans over time, classifying each instant by the
	// highest-precedence active kind.
	type edge struct {
		at    sim.Time
		delta int
		class int
	}
	const (
		clCompute = iota
		clCollective
		clOffload
		clHostAdam
		clNVMe
		clCount
	)
	classify := func(k trace.Kind) int {
		switch k {
		case trace.Gemm, trace.Elementwise, trace.WeightUpdate:
			return clCompute
		case trace.NCCLAllReduce, trace.NCCLAllGather, trace.NCCLReduceScatter,
			trace.NCCLReduce, trace.NCCLBroadcast:
			return clCollective
		case trace.OffloadCopy:
			return clOffload
		case trace.CPUAdam:
			return clHostAdam
		case trace.NVMeIO:
			return clNVMe
		}
		return clCompute
	}
	var edges []edge
	for _, s := range tr.Spans() {
		if s.Rank != 0 {
			continue
		}
		c := classify(s.Kind)
		edges = append(edges, edge{s.Start, +1, c}, edge{s.End, -1, c})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].at < edges[j].at })

	active := make([]int, clCount)
	buckets := make([]sim.Time, clCount)
	var idle sim.Time
	prev := lo
	account := func(until sim.Time) {
		d := until - prev
		if d <= 0 {
			return
		}
		for c := 0; c < clCount; c++ {
			if active[c] > 0 {
				buckets[c] += d
				return
			}
		}
		idle += d
	}
	for _, e := range edges {
		account(e.at)
		prev = e.at
		active[e.class] += e.delta
	}
	account(hi)

	b.Compute = buckets[clCompute]
	b.Collective = buckets[clCollective]
	b.Offload = buckets[clOffload]
	b.HostAdam = buckets[clHostAdam]
	b.NVMe = buckets[clNVMe]
	b.GPUIdle = idle
	return b
}
