package train

import (
	"fmt"

	"llmbw/internal/memory"
)

// Runtime GPU-memory tracking. The memory package predicts footprints
// analytically (that is how achieved model sizes are searched); the runner
// additionally *accounts* allocations as the schedule executes — activations
// grow through the forward pass and drain through backward — so every run
// reports an observed peak and enforces the A100's capacity as a runtime
// invariant rather than an assumption. Transient gather/communication
// buffers live inside the strategy extras charged statically (DeepSpeed
// sizes them from fixed pools), so the dynamic part is the activations.

// memTracker follows one GPU's resident bytes (ranks are symmetric).
type memTracker struct {
	used float64
	peak float64
	name string
}

func (m *memTracker) alloc(bytes float64) {
	if bytes < 0 {
		panic("train: negative allocation")
	}
	m.used += bytes
	if m.used > m.peak {
		m.peak = m.used
	}
	if m.used > memory.GPUMemBytes {
		panic(fmt.Sprintf("train: %s out of GPU memory: %.1f GB used of %.0f",
			m.name, m.used/1e9, memory.GPUMemBytes/1e9))
	}
}

func (m *memTracker) free(bytes float64) {
	m.used -= bytes
	if m.used < -1e-3 {
		panic(fmt.Sprintf("train: %s freed more than allocated (%.3f GB below zero)", m.name, -m.used/1e9))
	}
	if m.used < 0 {
		m.used = 0
	}
}

// initMemTracker charges the static residents: model states, framework
// overhead, communication buffers and strategy extras — everything in the
// plan except the activations, which the schedule allocates live.
func (r *Runner) initMemTracker() {
	r.mem = &memTracker{name: r.cfg.Name()}
	psi := float64(r.cfg.Model.Params())
	static := r.prof.StateBytesPerGPU(r.cfg.Model.Params()) +
		memory.GPUOverheadBytes + memory.BucketBytes +
		r.prof.ExtraGPUBytes + r.prof.ExtraGPUPerParam*psi/float64(r.prof.ModelParallel)
	r.mem.alloc(static)
}

// layerActivationBytes is what one layer's forward pass leaves resident.
func (r *Runner) layerActivationBytes() float64 {
	g := r.cfg.Model
	b := r.cfg.BatchPerGPU
	mp := r.prof.ModelParallel
	if r.prof.ActivationCkpt {
		return g.CheckpointBytesPerLayer(b)
	}
	return g.ActivationBytesPerLayer(b)/float64(mp) + g.CheckpointBytesPerLayer(b)
}

// headActivationBytes is the embedding/logits working set.
func (r *Runner) headActivationBytes() float64 {
	return r.cfg.Model.EmbeddingActivationBytes(r.cfg.BatchPerGPU) / float64(r.prof.ModelParallel)
}

// recomputeWorkingSet is the transient full-activation buffer held while a
// checkpointed layer recomputes during backward.
func (r *Runner) recomputeWorkingSet() float64 {
	if !r.prof.ActivationCkpt {
		return 0
	}
	return r.cfg.Model.ActivationBytesPerLayer(r.cfg.BatchPerGPU) / float64(r.prof.ModelParallel)
}

// PeakGPUMemory returns the observed per-GPU peak of the last run.
func (r *Runner) PeakGPUMemory() float64 {
	if r.mem == nil {
		return 0
	}
	return r.mem.peak
}
