package train

import (
	"bytes"
	"runtime"
	"testing"

	"llmbw/internal/memory"
	"llmbw/internal/model"
	"llmbw/internal/schedule"
	"llmbw/internal/sim"
)

// irCases covers every strategy × offload shape the compiler lowers: the
// comm-queue pipelines (DDP buckets, ZeRO-2 overlap, ZeRO-3 prefetch), pure
// and hybrid model parallelism, the ZeRO-1 chunk loop, and the CPU/NVMe
// offload optimizer phases.
func irCases() []struct {
	name string
	cfg  Config
} {
	g := model.NewGPT(8)
	return []struct {
		name string
		cfg  Config
	}{
		{"ddp", Config{Strategy: DDP, Model: g, Iterations: 2, Warmup: 1}},
		{"ddp-dual", Config{Strategy: DDP, Model: g, Nodes: 2, Iterations: 2, Warmup: 1}},
		{"ddp-ckpt", Config{Strategy: DDP, Model: g, Iterations: 2, Warmup: 1, CheckpointEvery: 1}},
		{"megatron", Config{Strategy: Megatron, Model: g, Iterations: 1, Warmup: 0}},
		{"hybrid-tp4pp2", Config{Strategy: Megatron, Model: g, Nodes: 2,
			TensorParallel: 4, PipelineParallel: 2, Iterations: 1, Warmup: 1}},
		{"zero1", Config{Strategy: ZeRO1, Model: g, Iterations: 2, Warmup: 1}},
		{"zero2-dual", Config{Strategy: ZeRO2, Model: g, Nodes: 2, Iterations: 2, Warmup: 1}},
		{"zero2-cpu", Config{Strategy: ZeRO2, Offload: memory.CPUOffload, Model: g, Iterations: 2, Warmup: 1}},
		{"zero3-dual", Config{Strategy: ZeRO3, Model: g, Nodes: 2, Iterations: 2, Warmup: 1}},
		{"zero3-nvme-opt", Config{Strategy: ZeRO3, Offload: memory.NVMeOptimizer,
			Model: g, Iterations: 1, Warmup: 1}},
		{"zero3-nvme-opt-param", Config{Strategy: ZeRO3, Offload: memory.NVMeOptimizerAndParams,
			Model: g, Iterations: 1, Warmup: 1}},
	}
}

// runWithIR runs the configuration with the compiled-schedule path forced on
// or off.
func runWithIR(t *testing.T, cfg Config, ir bool) *Result {
	t.Helper()
	defer func(s bool) { CompiledSchedules = s }(CompiledSchedules)
	CompiledSchedules = ir
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestScheduleIRMatchesImperative is the tentpole A/B: for every strategy and
// offload shape, replaying the compiled schedule must be byte-identical to
// the imperative coroutine path — same serialized summary, same runtime
// memory peak, and the same trace spans (modulo the phase tag, which only the
// IR emits).
func TestScheduleIRMatchesImperative(t *testing.T) {
	for _, c := range irCases() {
		cfg := c.cfg
		cfg.Trace = true
		legacy := runWithIR(t, cfg, false)
		compiled := runWithIR(t, cfg, true)

		var lb, cb bytes.Buffer
		if err := legacy.WriteJSON(&lb); err != nil {
			t.Fatal(err)
		}
		if err := compiled.WriteJSON(&cb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(lb.Bytes(), cb.Bytes()) {
			t.Errorf("%s: compiled-schedule summary differs from imperative:\n%s\n----\n%s",
				c.name, lb.Bytes(), cb.Bytes())
			continue
		}
		if legacy.PeakGPUBytes != compiled.PeakGPUBytes {
			t.Errorf("%s: peak GPU bytes %g (imperative) vs %g (compiled)",
				c.name, legacy.PeakGPUBytes, compiled.PeakGPUBytes)
		}
		ls, cs := legacy.Trace.Spans(), compiled.Trace.Spans()
		if len(ls) != len(cs) {
			t.Errorf("%s: %d trace spans (imperative) vs %d (compiled)", c.name, len(ls), len(cs))
			continue
		}
		for i := range ls {
			l, cc := ls[i], cs[i]
			if l.Rank != cc.Rank || l.Kind != cc.Kind || l.Start != cc.Start || l.End != cc.End {
				t.Errorf("%s: span %d differs: imperative %+v vs compiled %+v", c.name, i, l, cc)
				break
			}
		}
	}
}

// TestSchedulePhaseTags checks the op-tagged trace output: the compiled path
// tags every span with its iteration phase, and a traced iteration covers the
// phases the strategy actually has.
func TestSchedulePhaseTags(t *testing.T) {
	cfg := Config{Strategy: ZeRO3, Model: model.NewGPT(8), Nodes: 2,
		Iterations: 1, Warmup: 1, Trace: true}
	res := runWithIR(t, cfg, true)
	seen := map[string]bool{}
	for _, s := range res.Trace.Spans() {
		seen[s.Phase.String()] = true
	}
	if seen[""] {
		t.Error("compiled path emitted an untagged span")
	}
	for _, want := range []string{"forward", "backward", "optimizer", "prefetch"} {
		if !seen[want] {
			t.Errorf("traced ZeRO-3 iteration has no %q span (phases seen: %v)", want, seen)
		}
	}
}

// TestBreakdownComponentsSumToIterTime is the per-strategy accounting check:
// over the exact last-iteration window, the ext-breakdown components
// (compute, collectives, offload copies, CPUAdam, NVMe, idle) must sum to
// the iteration time. Component arithmetic is exact integer time by
// construction; the window-vs-IterTime comparison allows the per-iteration
// division remainder.
func TestBreakdownComponentsSumToIterTime(t *testing.T) {
	for _, c := range irCases() {
		if c.cfg.CheckpointEvery > 0 {
			continue // checkpoint time sits between iterations, outside the window
		}
		cfg := c.cfg
		cfg.Trace = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b := BreakdownOver(res.Trace, res.LastIterStart, res.LastIterEnd)
		sum := b.Compute + b.Collective + b.Offload + b.HostAdam + b.NVMe + b.GPUIdle
		if sum != b.Total {
			t.Errorf("%s: components sum to %v, want Total %v", c.name, sum, b.Total)
		}
		if got, want := b.Total, res.LastIterEnd-res.LastIterStart; got != want {
			t.Errorf("%s: breakdown total %v does not match the iteration window %v", c.name, got, want)
		}
		// IterTime averages the measured iterations with integer division;
		// steady-state iterations are identical, so the last-iteration window
		// may differ only by the division remainder.
		diff := b.Total - res.IterTime
		if diff < 0 {
			diff = -diff
		}
		if diff > sim.Time(res.Iterations) {
			t.Errorf("%s: last-iteration window %v vs IterTime %v (diff %d > %d)",
				c.name, b.Total, res.IterTime, int64(diff), res.Iterations)
		}
	}
}

// TestSerializeCommRewrite checks the schedule rewrite at both levels: the
// transformed program contains no stream ops, and executing it exposes the
// communication the stream schedule was hiding.
func TestSerializeCommRewrite(t *testing.T) {
	base := Config{Strategy: ZeRO3, Model: model.NewGPT(8), Nodes: 2, Iterations: 1, Warmup: 1}

	// Program level: the rewrite must drop every enqueue/wait/barrier and
	// keep the collectives as exposed ops.
	r, err := newRunner(base)
	if err != nil {
		t.Fatal(err)
	}
	count := func(s *schedule.Schedule, k schedule.Kind) int {
		n := 0
		for i := range s.Ops {
			if s.Ops[i].Kind == k {
				n++
			}
		}
		return n
	}
	orig := r.compileIteration()
	enq := count(orig, schedule.OpEnqueue)
	if enq == 0 {
		t.Fatal("ZeRO-3 schedule compiled without stream collectives")
	}
	rw := orig.Apply(RewriteSerializeComm)
	if got := count(rw, schedule.OpEnqueue) + count(rw, schedule.OpWaitSlot) + count(rw, schedule.OpBarrier); got != 0 {
		t.Errorf("serialized schedule retains %d stream ops", got)
	}
	if got, want := count(rw, schedule.OpCollective), count(orig, schedule.OpCollective)+enq; got != want {
		t.Errorf("serialized schedule has %d exposed collectives, want %d", got, want)
	}

	// Execution level: serializing must cost iteration time (the overlap
	// gain), and the rewrite must run even with the IR toggle off.
	overlapped, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	serial := base
	serial.Rewrite = RewriteSerializeComm
	defer func(s bool) { CompiledSchedules = s }(CompiledSchedules)
	CompiledSchedules = false
	serialized, err := Run(serial)
	if err != nil {
		t.Fatal(err)
	}
	if serialized.IterTime <= overlapped.IterTime {
		t.Errorf("serialize-comm iteration %v not slower than overlapped %v",
			serialized.IterTime, overlapped.IterTime)
	}
}

// steadyIterAllocs measures heap allocations per iteration once the schedule
// executor's pools are warm. The huge telemetry window keeps sample-series
// growth out of the measurement.
func steadyIterAllocs(tb testing.TB, cfg Config) float64 {
	cfg.Window = 1 << 40
	r, err := newRunner(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	const measured = 8
	var mallocs uint64
	r.cluster.Eng.Go("alloc-probe", func(p *sim.Proc) {
		r.initializeParameters(p)
		for i := 0; i < 4; i++ {
			r.runIteration(p) // compile the schedule, warm every pool
		}
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		for i := 0; i < measured; i++ {
			r.runIteration(p)
		}
		runtime.ReadMemStats(&m1)
		mallocs = m1.Mallocs - m0.Mallocs
	})
	r.cluster.Eng.Run()
	return float64(mallocs) / measured
}

// TestScheduleReplayAllocFree pins the tentpole's zero-allocation claim:
// steady-state schedule replay must not allocate, for the richest pipelines
// the compiler emits.
func TestScheduleReplayAllocFree(t *testing.T) {
	g := model.NewGPT(8)
	for _, c := range []struct {
		name string
		cfg  Config
	}{
		{"ddp", Config{Strategy: DDP, Model: g}},
		{"zero3-dual", Config{Strategy: ZeRO3, Model: g, Nodes: 2}},
		{"hybrid-tp4pp2", Config{Strategy: Megatron, Model: g, Nodes: 2,
			TensorParallel: 4, PipelineParallel: 2}},
		{"zero2-cpu", Config{Strategy: ZeRO2, Offload: memory.CPUOffload, Model: g}},
	} {
		if got := steadyIterAllocs(t, c.cfg); got != 0 {
			t.Errorf("%s: steady-state schedule replay allocates %v allocs/iteration, want 0", c.name, got)
		}
	}
}

// benchScheduleSteady measures one steady-state training iteration end to end
// (compute spans, stream collectives, fabric flows, event core) on a
// dual-node ZeRO-3 configuration — the strategy with the richest schedule.
func benchScheduleSteady(b *testing.B, ir bool) {
	defer func(s bool) { CompiledSchedules = s }(CompiledSchedules)
	CompiledSchedules = ir
	cfg := Config{Strategy: ZeRO3, Model: model.NewGPT(8), Nodes: 2, Window: 1 << 40}
	r, err := newRunner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	r.cluster.Eng.Go("bench", func(p *sim.Proc) {
		r.initializeParameters(p)
		for i := 0; i < 4; i++ {
			r.runIteration(p)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.runIteration(p)
		}
	})
	r.cluster.Eng.Run()
}

// BenchmarkScheduleReplaySteady is the compiled-schedule replay path; its
// allocs/op is pinned at zero by TestScheduleReplayAllocFree.
func BenchmarkScheduleReplaySteady(b *testing.B) { benchScheduleSteady(b, true) }

// BenchmarkScheduleLegacySteady is the imperative coroutine path, for
// comparison.
func BenchmarkScheduleLegacySteady(b *testing.B) { benchScheduleSteady(b, false) }
