package train

import (
	"bytes"
	"encoding/json"
	"testing"

	"llmbw/internal/model"
)

func TestSummaryJSONRoundTrip(t *testing.T) {
	res, err := Run(Config{Strategy: ZeRO2, Model: model.NewGPT(20), Iterations: 2, Warmup: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if s.Config != "ZeRO-2" || s.Nodes != 1 || s.Layers != 20 {
		t.Errorf("summary fields wrong: %+v", s)
	}
	if s.TFLOPs <= 0 || s.IterSec <= 0 {
		t.Error("summary missing measurements")
	}
	nv, ok := s.BandwidthGBps["NVLink"]
	if !ok || nv[0] <= 0 {
		t.Errorf("NVLink bandwidth missing: %v", s.BandwidthGBps)
	}
	if s.MemoryGB.PerGPU <= 0 || s.MemoryGB.PerGPU > 40 {
		t.Errorf("per-GPU memory = %v GB", s.MemoryGB.PerGPU)
	}
}

func TestWriteSummariesJSONArray(t *testing.T) {
	res, err := Run(Config{Strategy: DDP, Model: model.NewGPT(10), Iterations: 1, Warmup: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSummariesJSON(&buf, []*Result{res, res}); err != nil {
		t.Fatal(err)
	}
	var arr []Summary
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil || len(arr) != 2 {
		t.Fatalf("array decode: %v (%d)", err, len(arr))
	}
}
