package train

import (
	"bytes"
	"testing"

	"llmbw/internal/collective"
	"llmbw/internal/fabric"
	"llmbw/internal/model"
	"llmbw/internal/sim"
)

// runSharded runs cfg with the given shard count and sharded-execution mode,
// returning the serialized summary (and Chrome trace when cfg.Trace is set):
// the full observable surface the sharded engine must keep byte-identical.
func runSharded(t *testing.T, cfg Config, shards int, parallel bool) []byte {
	t.Helper()
	defer func(s bool) { sim.Sharded = s }(sim.Sharded)
	sim.Sharded = parallel
	cfg.Shards = shards
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		if err := res.Trace.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestShardedMatchesUnsharded is the sharded-engine A/B across every
// strategy and offload shape: a run on the plain serial engine, the same run
// replayed through the sharded engine's serial merge loop, and the same run
// under parallel windows must serialize identically — summary and trace.
func TestShardedMatchesUnsharded(t *testing.T) {
	for _, c := range irCases() {
		cfg := c.cfg
		cfg.Trace = true
		plain := runSharded(t, cfg, 0, false)
		for _, m := range []struct {
			name     string
			shards   int
			parallel bool
		}{
			{"shards=2 serial-merge", 2, false},
			{"shards=2 parallel", 2, true},
			{"shards=4 parallel", 4, true},
		} {
			if got := runSharded(t, cfg, m.shards, m.parallel); !bytes.Equal(plain, got) {
				t.Errorf("%s: %s output differs from the plain engine", c.name, m.name)
			}
		}
	}
}

// TestShardedMatchesAcrossFastPaths crosses the sharded toggle with the full
// existing fast-path matrix (compiled plans × batched admission × compiled
// schedules) on the multi-node ZeRO-3 shape: sharding must be byte-identical
// to the plain engine in every one of the 8 combinations.
func TestShardedMatchesAcrossFastPaths(t *testing.T) {
	cfg := Config{Strategy: ZeRO3, Model: model.NewGPT(8), Iterations: 2, Warmup: 1, Nodes: 2}
	for _, plans := range []bool{false, true} {
		for _, batch := range []bool{false, true} {
			for _, ir := range []bool{false, true} {
				func() {
					defer func(p, b, s bool) {
						collective.CompiledPlans, fabric.BatchAdmission, CompiledSchedules = p, b, s
					}(collective.CompiledPlans, fabric.BatchAdmission, CompiledSchedules)
					collective.CompiledPlans, fabric.BatchAdmission, CompiledSchedules = plans, batch, ir
					plain := runSharded(t, cfg, 0, false)
					sharded := runSharded(t, cfg, 4, true)
					if !bytes.Equal(plain, sharded) {
						t.Errorf("plans=%v batch=%v ir=%v: sharded summary differs from plain",
							plans, batch, ir)
					}
				}()
			}
		}
	}
}

// TestShardsValidate pins the Config.Shards range check and its presence in
// the run-cache key (two runs differing only in Shards must not collide).
func TestShardsValidate(t *testing.T) {
	cfg := Config{Strategy: DDP, Model: model.NewGPT(8), Shards: MaxShards + 1}
	if err := cfg.Validate(); err == nil {
		t.Error("Shards above MaxShards validated")
	}
	cfg.Shards = MaxShards
	if err := cfg.Validate(); err != nil {
		t.Errorf("Shards = MaxShards rejected: %v", err)
	}
	a, _ := Config{Strategy: DDP, Model: model.NewGPT(8)}.cacheKey()
	b, _ := Config{Strategy: DDP, Model: model.NewGPT(8), Shards: 2}.cacheKey()
	if a == b {
		t.Error("cache key ignores Shards")
	}
}
