package train

import (
	"fmt"

	"llmbw/internal/collective"
	"llmbw/internal/compute"
	"llmbw/internal/data"
	"llmbw/internal/fabric"
	"llmbw/internal/nvme"
	"llmbw/internal/sim"
	"llmbw/internal/topology"
)

// The executor replays a compiled schedule on the sim engine as a callback
// state machine: it executes ops inline until one blocks, parks the program
// counter, and resumes from the blocking op's completion event. Every
// callback is bound once at construction and every per-iteration resource
// (flow sets, stream issue records, collective handles and plans) is pooled,
// so steady-state replay allocates nothing — and every engine interaction
// reproduces the coroutine path's events in the same order, which keeps the
// two paths byte-identical.

// runCompiled executes one iteration through the compiled schedule, building
// the schedule and executor on first use.
func (r *Runner) runCompiled(p *sim.Proc) {
	if r.exec == nil {
		r.exec = newExecutor(r, r.iterationSchedule())
		r.waiter = sim.NewWaiter(p)
	}
	r.exec.run(r.waiter.DoneFunc())
	r.waiter.Wait()
}

// execQueue is the runtime state of one virtual NCCL stream: the schedule's
// queueSpec plus the live tail handle, reused across iterations.
type execQueue struct {
	limit    float64
	rings    int
	tail     *collective.Handle
	tailAuto bool
}

// nvmeTarget is one rank's NVMe volume and issuing socket, resolved once.
type nvmeTarget struct {
	vol    *nvme.Volume
	socket int
}

// opState holds the pooled runtime resources of one schedule op.
type opState struct {
	pool  *flowPool
	issue *asyncIssue
	nvme  []nvmeTarget
}

type executor struct {
	r     *Runner
	s     *schedule
	state []opState

	queues []execQueue
	slots  []*collective.Handle // retained stream handles by schedule slot

	pc        int
	cur       *schedOp // the op currently blocking the program
	t0        sim.Time // start time of the blocking op (for its trace span)
	nvmeLeft  int
	multiLeft int
	finish    func()

	// Callbacks bound once so replay schedules no closures.
	blockDoneFn  func()
	waitHopFn    func()
	waitResumeFn func()
	nvmeDoneFn   func()
	multiDoneFn  func()
}

func newExecutor(r *Runner, s *schedule) *executor {
	ex := &executor{r: r, s: s}
	ex.queues = make([]execQueue, len(s.queues))
	for i, q := range s.queues {
		ex.queues[i] = execQueue{limit: q.limit, rings: int(q.rings)}
	}
	ex.slots = make([]*collective.Handle, s.slots)
	ex.blockDoneFn = ex.blockDone
	ex.waitHopFn = ex.waitHop
	ex.waitResumeFn = ex.waitResume
	ex.nvmeDoneFn = ex.nvmeDone
	ex.multiDoneFn = ex.multiDone

	ex.state = make([]opState, len(s.ops))
	for i := range s.ops {
		op := &s.ops[i]
		st := &ex.state[i]
		switch op.kind {
		case opStageBatch:
			st.pool = ex.newFlowPool(false, ex.stageBatchFlows())
		case opOffloadXfer:
			st.pool = ex.newFlowPool(true, ex.offloadFlows(op.bytes))
		case opCPUAdamStep:
			st.pool = ex.newFlowPool(false, ex.adamFlows(op.params, op.dur))
		case opBoundaryXfer:
			st.pool = ex.newFlowPool(true, ex.boundaryFlows(op.routes, op.bytes))
		case opNVMeIO:
			st.nvme = ex.nvmeTargets()
		case opEnqueue:
			st.issue = newAsyncIssue(ex, op)
			q := s.queues[op.queue]
			r.world.Precompile(op.col, op.payload, q.limit, int(q.rings))
		case opCollective:
			g := op.group
			if g == nil {
				g = r.world
			}
			g.Precompile(op.col, op.payload, op.limit, int(op.rings))
		case opStageAllReduce:
			for _, g := range op.groups {
				g.Precompile(collective.AllReduce, op.payload, 0, 2)
			}
		}
	}
	return ex
}

// run replays one iteration; done fires (possibly synchronously) when the
// program completes.
//
//lint:steady
func (ex *executor) run(done func()) {
	ex.finish = done
	ex.pc = 0
	for i := range ex.queues {
		q := &ex.queues[i]
		if q.tail != nil {
			// The previous iteration's stream tail has fired and all its
			// waiters have run (every stream ends waited or drained); return
			// it to the pool before the stream restarts. The legacy path
			// simply leaked these handles into a fresh queue per iteration —
			// pool bookkeeping only, invisible to the event stream.
			q.tail.Release()
			q.tail, q.tailAuto = nil, false
		}
	}
	ex.step()
}

// step executes ops from pc until one blocks (its completion callback
// continues the program) or the program ends.
func (ex *executor) step() {
	r := ex.r
	eng := r.cluster.Eng
	ops := ex.s.ops
	for ex.pc < len(ops) {
		i := ex.pc
		op := &ops[i]
		switch op.kind {
		case opMemAlloc:
			r.mem.alloc(op.bytes)
		case opMemFree:
			r.mem.free(op.bytes)
		case opStageBatch:
			ex.state[i].pool.start()
		case opCompute, opOverhead:
			if op.dur > 0 {
				ex.cur, ex.t0 = op, eng.Now()
				eng.Schedule(op.dur, ex.blockDoneFn)
				return
			}
			// A zero-duration span returns inline and is never traced,
			// exactly as Sleep(0) + the empty-span drop behave.
		case opCollective:
			g := op.group
			if g == nil {
				g = r.world
			}
			ex.cur, ex.t0 = op, eng.Now()
			g.StartRings(op.col, op.payload, op.limit, int(op.rings), ex.blockDoneFn)
			return
		case opEnqueue:
			ex.push(i)
		case opWaitSlot:
			h := ex.slots[op.slot]
			if !h.Done() {
				ex.cur = op
				h.Then(ex.waitHopFn)
				return
			}
			ex.releaseSlot(op)
		case opBarrier:
			q := &ex.queues[op.queue]
			if q.tail != nil && !q.tail.Done() {
				ex.cur = op
				q.tail.Then(ex.waitHopFn)
				return
			}
		case opOffloadXfer, opBoundaryXfer:
			ex.cur, ex.t0 = op, eng.Now()
			ex.state[i].pool.start()
			return
		case opCPUAdamStep:
			ex.state[i].pool.start() // paced DRAM flows, fire-and-forget
			ex.cur, ex.t0 = op, eng.Now()
			eng.Schedule(op.dur, ex.blockDoneFn)
			return
		case opNVMeIO:
			ex.cur, ex.t0 = op, eng.Now()
			st := &ex.state[i]
			ex.nvmeLeft = len(st.nvme)
			for j := range st.nvme {
				t := &st.nvme[j]
				t.vol.IO(t.socket, op.bytes, op.write, ex.nvmeDoneFn)
			}
			return
		case opStageAllReduce:
			ex.cur, ex.t0 = op, eng.Now()
			ex.multiLeft = len(op.groups)
			for _, g := range op.groups {
				g.StartRings(collective.AllReduce, op.payload, 0, 2, ex.multiDoneFn)
			}
			return
		default:
			panic(fmt.Sprintf("train: unknown schedule op %d", int(op.kind)))
		}
		ex.pc++
	}
	ex.finish()
}

// blockDone completes a simple blocking op: trace it if tagged, advance.
//
//lint:steady
func (ex *executor) blockDone() {
	op := ex.cur
	if op.traced {
		ex.traceOp(op, ex.t0, ex.r.cluster.Eng.Now())
	}
	ex.pc++
	ex.step()
}

// waitHop runs as a handle waiter and re-schedules the actual resume at +0 —
// the exact hop Handle.Wait takes, which keeps event ordering identical.
//
//lint:steady
func (ex *executor) waitHop() {
	ex.r.cluster.Eng.Schedule(0, ex.waitResumeFn)
}

//lint:steady
func (ex *executor) waitResume() {
	if ex.cur.kind == opWaitSlot {
		ex.releaseSlot(ex.cur)
	}
	ex.pc++
	ex.step()
}

// releaseSlot returns a retained handle to the pool unless it is still the
// stream tail (commQueue.release semantics: a live tail recycles when
// superseded or at the next iteration's stream reset).
func (ex *executor) releaseSlot(op *schedOp) {
	h := ex.slots[op.slot]
	ex.slots[op.slot] = nil
	if h != ex.queues[op.queue].tail {
		h.Release()
	}
}

//lint:steady
func (ex *executor) nvmeDone() {
	ex.nvmeLeft--
	if ex.nvmeLeft > 0 {
		return
	}
	ex.traceOp(ex.cur, ex.t0, ex.r.cluster.Eng.Now())
	ex.pc++
	ex.step()
}

//lint:steady
func (ex *executor) multiDone() {
	ex.multiLeft--
	if ex.multiLeft > 0 {
		return
	}
	ex.traceOp(ex.cur, ex.t0, ex.r.cluster.Eng.Now())
	ex.pc++
	ex.step()
}

func (ex *executor) traceOp(op *schedOp, start, end sim.Time) {
	tr := ex.r.tr
	if !tr.Enabled() {
		return
	}
	for rank := 0; rank < ex.r.cfg.WorldSize(); rank++ {
		tr.AddPhased(rank, op.tk, op.phase, start, end)
	}
}

// push replays commQueue.push for the op at index i: chain the collective
// after the stream's current tail, releasing a superseded fire-and-forget
// predecessor once it has ordered this start.
func (ex *executor) push(i int) {
	op := &ex.s.ops[i]
	is := ex.state[i].issue
	q := &ex.queues[op.queue]
	is.h = ex.r.world.NewHandle()
	is.prev, is.prevAuto = q.tail, q.tailAuto
	if is.prev == nil {
		is.start()
	} else {
		is.prev.Then(is.startFn)
	}
	q.tail, q.tailAuto = is.h, op.slot < 0
	if op.slot >= 0 {
		ex.slots[op.slot] = is.h
	}
}

// asyncIssue is the per-op reusable state of one stream collective: the
// pooled handle, the predecessor edge, and the start/fire closures bound
// once. One record per opEnqueue suffices — an op issues at most once per
// iteration and every stream drains before the iteration ends.
type asyncIssue struct {
	ex       *executor
	op       *schedOp
	h        *collective.Handle
	prev     *collective.Handle
	prevAuto bool
	t0       sim.Time
	startFn  func()
	fireFn   func()
}

func newAsyncIssue(ex *executor, op *schedOp) *asyncIssue {
	is := &asyncIssue{ex: ex, op: op}
	is.startFn = is.start
	is.fireFn = is.fire
	return is
}

//lint:steady
func (is *asyncIssue) start() {
	ex := is.ex
	q := &ex.queues[is.op.queue]
	is.t0 = ex.r.cluster.Eng.Now()
	ex.r.world.StartRings(is.op.col, is.op.payload, q.limit, q.rings, is.fireFn)
	// prev has now served its last purpose (ordering this start); a
	// fire-and-forget predecessor goes back to the pool.
	if is.prevAuto {
		is.prev.Release()
	}
	is.prev = nil
}

//lint:steady
func (is *asyncIssue) fire() {
	ex := is.ex
	ex.traceOp(is.op, is.t0, ex.r.cluster.Eng.Now())
	h := is.h
	is.h = nil
	h.Fire()
}

// ---- pooled flow sets ----

// flowPool recycles the flow records of one schedule op. StartFlows resets a
// drained flow's byte counter and bookkeeping on admission, so a set whose
// flows have all completed is reusable as-is; sets are returned to the free
// list by their own completion callback. A blocking pool additionally resumes
// the program when the set drains.
type flowPool struct {
	ex       *executor
	blocking bool
	build    func() []*fabric.Flow
	free     []*flowSet
}

type flowSet struct {
	pool  *flowPool
	flows []*fabric.Flow
	left  int
	cb    func()
}

func (ex *executor) newFlowPool(blocking bool, build func() []*fabric.Flow) *flowPool {
	return &flowPool{ex: ex, blocking: blocking, build: build}
}

func (fp *flowPool) start() {
	var s *flowSet
	if k := len(fp.free); k > 0 {
		s = fp.free[k-1]
		fp.free[k-1] = nil
		fp.free = fp.free[:k-1]
	} else {
		s = &flowSet{pool: fp, flows: fp.build()} //lint:allow steady-alloc — pool miss: first iteration builds the set, replays reuse it
		s.cb = s.flowDone
	}
	s.left = len(s.flows)
	fp.ex.r.cluster.Net.StartFlows(s.flows, s.cb)
}

//lint:steady
func (s *flowSet) flowDone() {
	s.left--
	if s.left > 0 {
		return
	}
	fp := s.pool
	fp.free = append(fp.free, s) //lint:allow steady-alloc — free-list push: capacity reaches steady state after the first iteration
	if fp.blocking {
		fp.ex.blockDone()
	}
}

// ---- flow builders (run only on a pool miss) ----

// stageBatchFlows mirrors stageBatch's dataloader staging set.
func (ex *executor) stageBatchFlows() func() []*fabric.Flow {
	r := ex.r
	bytes := data.BatchStagingBytes(r.cfg.BatchPerGPU, r.cfg.Model.SeqLen)
	return func() []*fabric.Flow {
		var flows []*fabric.Flow
		r.eachGPU(func(rank int, g topology.GPU) {
			route := r.cluster.GPUToCPU(g, g.Socket())
			flows = append(flows, route.Flow(fmt.Sprintf("dataloader/r%d", rank), bytes))
		})
		return flows
	}
}

// offloadFlows mirrors offloadCopy's per-rank staging pair.
func (ex *executor) offloadFlows(bytesPerRank float64) func() []*fabric.Flow {
	r := ex.r
	mk := r.offloadCopyFlows(bytesPerRank)
	return func() []*fabric.Flow {
		var flows []*fabric.Flow
		r.eachGPU(func(rank int, g topology.GPU) {
			flows = append(flows, mk(rank, g)...)
		})
		return flows
	}
}

// adamFlows mirrors hostAdam's paced per-socket DRAM/xGMI traffic.
func (ex *executor) adamFlows(paramsPerRank int64, d sim.Time) func() []*fabric.Flow {
	r := ex.r
	sec := d.ToSeconds()
	perSocket := 2 * compute.AdamDRAMTraffic(paramsPerRank) // two ranks per socket
	return func() []*fabric.Flow {
		var flows []*fabric.Flow
		for s := 0; s < topology.SocketsPerNode; s++ {
			localBytes := perSocket * (1 - adamCrossFrac)
			crossBytes := perSocket * adamCrossFrac
			flows = append(flows,
				&fabric.Flow{
					Name:      fmt.Sprintf("cpuadam/s%d/local", s),
					Path:      []*fabric.Link{r.cluster.DRAMLink(0, s)},
					Bytes:     localBytes,
					RateLimit: localBytes / sec,
				},
				&fabric.Flow{
					Name: fmt.Sprintf("cpuadam/s%d/cross", s),
					Path: []*fabric.Link{
						r.cluster.XGMILink(0), r.cluster.DRAMLink(0, 1-s),
					},
					Bytes:     crossBytes,
					RateLimit: crossBytes / sec,
				})
		}
		return flows
	}
}

// boundaryFlows mirrors sendBoundaries' inter-stage activation transfers.
func (ex *executor) boundaryFlows(routes []topology.Route, bytes float64) func() []*fabric.Flow {
	return func() []*fabric.Flow {
		var flows []*fabric.Flow
		for i, rt := range routes {
			flows = append(flows, rt.Flow(fmt.Sprintf("pp-act/%d", i), bytes))
		}
		return flows
	}
}

// nvmeTargets resolves each rank's volume and socket in rank order.
func (ex *executor) nvmeTargets() []nvmeTarget {
	r := ex.r
	out := make([]nvmeTarget, 0, r.cfg.WorldSize())
	r.eachGPU(func(rank int, g topology.GPU) {
		out = append(out, nvmeTarget{
			vol:    r.cfg.Placement.VolumeForRank(r.vols, rank),
			socket: g.Socket(),
		})
	})
	return out
}
