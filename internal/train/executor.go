package train

import (
	"fmt"

	"llmbw/internal/collective"
	"llmbw/internal/compute"
	"llmbw/internal/data"
	"llmbw/internal/fabric"
	"llmbw/internal/schedule"
	"llmbw/internal/sim"
	"llmbw/internal/topology"
)

// The schedule executor itself lives in internal/schedule; this file is
// train's binding of it. trainEnv resolves everything a compiled program
// needs from one live Runner — the engine, the fabric, the world
// communicator, the GPU memory tracker, per-rank trace fan-out, and the
// concrete flow/NVMe constructors the pooled flow sets are built from — so
// cached schedules stay pure data shared across runs.

// runCompiled executes one iteration through the compiled schedule, building
// the schedule and executor on first use.
func (r *Runner) runCompiled(p *sim.Proc) {
	if r.exec == nil {
		r.exec = schedule.NewExecutor(trainEnv{r}, r.iterationSchedule())
		r.waiter = sim.NewWaiter(p)
	}
	r.exec.Run(r.waiter.DoneFunc())
	r.waiter.Wait()
}

// trainEnv implements schedule.Env over a Runner.
type trainEnv struct{ r *Runner }

func (e trainEnv) Engine() *sim.Engine      { return e.r.cluster.Eng }
func (e trainEnv) Network() *fabric.Network { return e.r.cluster.Net }
func (e trainEnv) World() *collective.Group { return e.r.world }
func (e trainEnv) MemAlloc(bytes float64)   { e.r.mem.alloc(bytes) }
func (e trainEnv) MemFree(bytes float64)    { e.r.mem.free(bytes) }

// TraceOp fans a completed op's span out to every rank's timeline.
func (e trainEnv) TraceOp(op *schedule.Op, start, end sim.Time) {
	tr := e.r.tr
	if !tr.Enabled() {
		return
	}
	for rank := 0; rank < e.r.cfg.WorldSize(); rank++ {
		tr.AddPhased(rank, op.TK, op.Phase, start, end)
	}
}

// FlowBuilder maps each flow-set op to the legacy strategy's flow
// constructor; the builder runs only on a pool miss.
func (e trainEnv) FlowBuilder(op *schedule.Op) func() []*fabric.Flow {
	switch op.Kind {
	case schedule.OpFlows:
		return e.r.stageBatchFlowsFn()
	case schedule.OpXfer:
		return e.r.offloadFlowsFn(op.Bytes)
	case schedule.OpPacedFlows:
		return e.r.adamFlowsFn(op.Params, op.Dur)
	case schedule.OpRouteXfer:
		return boundaryFlowsFn(op.Routes, op.Bytes)
	}
	panic(fmt.Sprintf("train: no flow builder for schedule op %d", int(op.Kind)))
}

// NVMeTargets resolves each rank's volume and socket in rank order.
func (e trainEnv) NVMeTargets() []schedule.NVMeTarget {
	r := e.r
	out := make([]schedule.NVMeTarget, 0, r.cfg.WorldSize())
	r.eachGPU(func(rank int, g topology.GPU) {
		out = append(out, schedule.NVMeTarget{
			Vol:    r.cfg.Placement.VolumeForRank(r.vols, rank),
			Socket: g.Socket(),
		})
	})
	return out
}

// ---- flow builders (run only on a pool miss) ----

// stageBatchFlowsFn mirrors stageBatch's dataloader staging set.
func (r *Runner) stageBatchFlowsFn() func() []*fabric.Flow {
	bytes := data.BatchStagingBytes(r.cfg.BatchPerGPU, r.cfg.Model.SeqLen)
	return func() []*fabric.Flow {
		var flows []*fabric.Flow
		r.eachGPU(func(rank int, g topology.GPU) {
			route := r.cluster.GPUToCPU(g, g.Socket())
			flows = append(flows, route.Flow(fmt.Sprintf("dataloader/r%d", rank), bytes))
		})
		return flows
	}
}

// offloadFlowsFn mirrors offloadCopy's per-rank staging pair.
func (r *Runner) offloadFlowsFn(bytesPerRank float64) func() []*fabric.Flow {
	mk := r.offloadCopyFlows(bytesPerRank)
	return func() []*fabric.Flow {
		var flows []*fabric.Flow
		r.eachGPU(func(rank int, g topology.GPU) {
			flows = append(flows, mk(rank, g)...)
		})
		return flows
	}
}

// adamFlowsFn mirrors hostAdam's paced per-socket DRAM/xGMI traffic.
func (r *Runner) adamFlowsFn(paramsPerRank int64, d sim.Time) func() []*fabric.Flow {
	sec := d.ToSeconds()
	perSocket := 2 * compute.AdamDRAMTraffic(paramsPerRank) // two ranks per socket
	return func() []*fabric.Flow {
		var flows []*fabric.Flow
		for s := 0; s < topology.SocketsPerNode; s++ {
			localBytes := perSocket * (1 - adamCrossFrac)
			crossBytes := perSocket * adamCrossFrac
			flows = append(flows,
				&fabric.Flow{
					Name:      fmt.Sprintf("cpuadam/s%d/local", s),
					Path:      []*fabric.Link{r.cluster.DRAMLink(0, s)},
					Bytes:     localBytes,
					RateLimit: localBytes / sec,
				},
				&fabric.Flow{
					Name: fmt.Sprintf("cpuadam/s%d/cross", s),
					Path: []*fabric.Link{
						r.cluster.XGMILink(0), r.cluster.DRAMLink(0, 1-s),
					},
					Bytes:     crossBytes,
					RateLimit: crossBytes / sec,
				})
		}
		return flows
	}
}

// boundaryFlowsFn mirrors sendBoundaries' inter-stage activation transfers.
func boundaryFlowsFn(routes []topology.Route, bytes float64) func() []*fabric.Flow {
	return func() []*fabric.Flow {
		var flows []*fabric.Flow
		for i, rt := range routes {
			flows = append(flows, rt.Flow(fmt.Sprintf("pp-act/%d", i), bytes))
		}
		return flows
	}
}
