package train

import "llmbw/internal/memory"

// memoryNVMeOpt shortens test literals.
func memoryNVMeOpt() memory.Offload { return memory.NVMeOptimizer }

// memoryCPU shortens test literals.
func memoryCPU() memory.Offload { return memory.CPUOffload }
