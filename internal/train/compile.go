package train

import (
	"fmt"

	"llmbw/internal/collective"
	"llmbw/internal/memory"
	"llmbw/internal/scenario"
	"llmbw/internal/schedule"
	"llmbw/internal/sim"
	"llmbw/internal/topology"
	"llmbw/internal/trace"
)

// This file is the schedule compiler: each strategy's imperative iteration
// (strategies.go / hybrid.go) expressed as a one-time lowering into the
// internal/schedule op vocabulary. Every emit mirrors one legacy call in the
// same program order with the same precomputed operands, which is what lets
// the executor replay the exact event sequence of the coroutine path.

// scheduleCache is the compiled-program tier of the warm-artifact store. A
// non-hybrid schedule is a pure function of the configuration slice keyed
// below — every op's durations come from the global GPU/CPU models and every
// operand is a precomputed number — and the executor never writes through the
// shared op list (all mutable replay state lives in the executor), so one
// compiled program serves every run and every concurrent runner of the same
// shape. Hybrid schedules embed cluster-bound groups and routes and are
// compiled per run.
var scheduleCache = scenario.New("train.schedules", 256)

// scheduleKey returns the canonical key of the compiled iteration schedule,
// or ok=false when the schedule is not shareable across runs (hybrid
// pipeline schedules bind *collective.Group and topology.Route values of one
// specific cluster into their ops).
func (r *Runner) scheduleKey() (string, bool) {
	c := r.cfg
	if c.Strategy == Megatron && c.PipelineParallel > 1 {
		return "", false
	}
	return scenario.Intern(fmt.Sprintf("sched s%d o%d n%d m%+v tp%d pp%d b%d rw%d",
		c.Strategy, c.Offload, c.Nodes, c.Model, c.TensorParallel,
		c.PipelineParallel, c.BatchPerGPU, c.Rewrite)), true
}

// iterationSchedule returns the compiled per-iteration program, fetching
// shareable shapes through the schedule cache so sweep points with the same
// strategy/model/world skip recompilation.
func (r *Runner) iterationSchedule() *schedule.Schedule {
	key, ok := r.scheduleKey()
	if !ok {
		return r.compileIteration()
	}
	v, _ := scheduleCache.Do(key, 0, func() (any, error) {
		return r.compileIteration(), nil
	})
	return v.(*schedule.Schedule)
}

// compileIteration lowers the configured strategy into its per-iteration
// schedule and applies the configured rewrite.
func (r *Runner) compileIteration() *schedule.Schedule {
	b := &schedBuilder{r: r, Builder: schedule.NewBuilder()}
	b.Phase = trace.PhaseData
	b.stage()
	switch r.cfg.Strategy {
	case DDP:
		b.compileDDP()
	case Megatron:
		if r.cfg.PipelineParallel > 1 {
			b.compileMegatronHybrid()
		} else {
			b.compileMegatron()
		}
	case ZeRO1:
		b.compileZeRO1()
	case ZeRO2:
		b.compileZeRO2()
	case ZeRO3:
		b.compileZeRO3()
	default:
		panic(fmt.Sprintf("train: unknown strategy %v", r.cfg.Strategy))
	}
	return b.S.Apply(r.cfg.Rewrite)
}

// schedBuilder layers the strategies' domain helpers (FLOP→duration
// conversion, offload/NVMe policies, chunking) over the generic schedule
// builder; emits inherit the builder's current Phase.
type schedBuilder struct {
	*schedule.Builder
	r *Runner
}

func (b *schedBuilder) stage() { b.Flows() }

func (b *schedBuilder) compute(tk trace.Kind, flops float64) {
	b.Compute(tk, b.r.gpu.KernelTime(flops))
}

func (b *schedBuilder) gpuAdam(params int64) {
	b.Compute(trace.WeightUpdate, b.r.gpu.AdamTime(params))
}

func (b *schedBuilder) overhead(d sim.Time) { b.Overhead(d) }

func (b *schedBuilder) alloc(bytes float64) { b.Alloc(bytes) }

func (b *schedBuilder) free(bytes float64) { b.Free(bytes) }

func (b *schedBuilder) sync(op collective.Op, payload, limit float64, rings int) {
	b.Sync(op, payload, limit, rings)
}

func (b *schedBuilder) syncOn(g *collective.Group, op collective.Op, payload float64) {
	b.SyncOn(g, op, payload, 0, 2)
}

func (b *schedBuilder) newQueue(limit float64, rings int) int8 { return b.NewQueue(limit, rings) }

func (b *schedBuilder) enqueue(q int8, op collective.Op, payload float64) {
	b.Enqueue(q, op, payload)
}

func (b *schedBuilder) enqueueSlot(q int8, op collective.Op, payload float64) int16 {
	return b.EnqueueSlot(q, op, payload)
}

func (b *schedBuilder) waitSlot(q int8, slot int16) { b.WaitSlot(q, slot) }

func (b *schedBuilder) barrier(q int8) { b.Barrier(q) }

func (b *schedBuilder) offload(bytesPerRank float64) {
	b.Xfer(trace.OffloadCopy, bytesPerRank)
}

func (b *schedBuilder) hostAdam(params int64) {
	d := b.r.cpu.AdamTime(params, 2)
	if d <= 0 {
		// The legacy hostAdam emits nothing for an empty step.
		return
	}
	b.Paced(trace.CPUAdam, d, params)
}

func (b *schedBuilder) nvme(bytesPerRank float64, write bool) {
	if bytesPerRank <= 0 {
		// Mirrors nvmeIO's early return.
		return
	}
	b.NVMe(trace.NVMeIO, bytesPerRank, write)
}

func (b *schedBuilder) stageAllReduce(groups []*collective.Group, payload float64) {
	if len(groups) == 1 {
		b.syncOn(groups[0], collective.AllReduce, payload)
		return
	}
	b.Multi(collective.AllReduce, groups, payload, 0, 2)
}

func (b *schedBuilder) boundary(routes []topology.Route, bytes float64) {
	if len(routes) == 0 || bytes <= 0 {
		// Mirrors sendBoundaries' early return.
		return
	}
	b.RouteXfer(trace.OffloadCopy, routes, bytes)
}

// z1Collective expands the ZeRO-1 fused-buffer chunk loop at compile time:
// the chunk count is a pure function of the memory plan.
func (b *schedBuilder) z1Collective(op collective.Op, payload float64) {
	chunk := b.r.z1ChunkBytes()
	for payload > 0 {
		sz := payload
		if sz > chunk {
			sz = chunk
		}
		b.sync(op, sz, 0, 1)
		b.overhead(z1ChunkLatency)
		payload -= sz
	}
}

// forward lowers forwardPass.
func (b *schedBuilder) forward(mp int) {
	r := b.r
	g := r.cfg.Model
	bt := r.cfg.BatchPerGPU
	layerF := g.LayerForwardFLOPs(bt) / float64(mp)
	for l := 0; l < g.Layers; l++ {
		b.compute(trace.Gemm, layerF)
		b.alloc(r.layerActivationBytes())
	}
	b.compute(trace.Gemm, g.HeadForwardFLOPs(bt)/float64(mp))
	b.alloc(r.headActivationBytes())
	b.compute(trace.Elementwise, 0) // loss/softmax epilogue
}

// optimizer lowers optimizerPhase.
func (b *schedBuilder) optimizer() {
	r := b.r
	world := int64(r.cfg.WorldSize())
	part := r.cfg.Model.Params() / world
	partBytes := r.gradBytes / float64(world)
	switch r.cfg.Offload {
	case memory.NoOffload:
		b.gpuAdam(part)
	case memory.CPUOffload:
		b.offload(partBytes) // gradients down to pinned host staging
		b.hostAdam(part)
		b.offload(partBytes) // updated FP16 params back up
	case memory.NVMeOptimizer, memory.NVMeOptimizerAndParams:
		b.offload(partBytes)            // gradients to host
		b.nvme(12*float64(part), false) // read optimizer partition
		b.hostAdam(part)
		b.nvme(12*float64(part), true) // write optimizer partition
		if r.cfg.Offload == memory.NVMeOptimizerAndParams {
			b.nvme(partBytes, true) // park updated FP16 params on NVMe
		} else {
			b.offload(partBytes) // updated FP16 params back to GPU
		}
	}
}

func (b *schedBuilder) compileDDP() {
	r := b.r
	g := r.cfg.Model
	bt := r.cfg.BatchPerGPU
	b.Phase = trace.PhaseForward
	b.forward(1)

	q := b.newQueue(0, 2)
	b.Phase = trace.PhaseBackward
	b.compute(trace.Gemm, 2*g.HeadForwardFLOPs(bt))
	b.free(r.headActivationBytes())
	b.alloc(r.recomputeWorkingSet())
	bk := buckets(g.Layers)
	perBucket := r.gradBytes / float64(len(bk))
	for _, k := range bk {
		b.compute(trace.Gemm, r.backwardFactor()*g.LayerForwardFLOPs(bt)*float64(k))
		b.free(float64(k) * r.layerActivationBytes())
		b.enqueue(q, collective.AllReduce, perBucket)
	}
	b.free(r.recomputeWorkingSet())
	b.barrier(q)
	b.Phase = trace.PhaseOptimizer
	b.gpuAdam(g.Params())
}

func (b *schedBuilder) compileMegatron() {
	r := b.r
	g := r.cfg.Model
	bt := r.cfg.BatchPerGPU
	mp := r.cfg.WorldSize()
	actBytes := float64(bt) * float64(g.SeqLen) * float64(g.Hidden) * 2 // FP16 activations

	layerF := g.LayerForwardFLOPs(bt) / float64(mp)
	for micro := 0; micro < mp; micro++ {
		b.Phase = trace.PhaseForward
		for l := 0; l < g.Layers; l++ {
			b.compute(trace.Gemm, layerF)
			b.alloc(r.layerActivationBytes())
			b.sync(collective.AllReduce, actBytes, 0, 2)
			b.sync(collective.AllReduce, actBytes, 0, 2)
		}
		b.compute(trace.Gemm, g.HeadForwardFLOPs(bt)/float64(mp))
		b.alloc(r.headActivationBytes())
		b.sync(collective.AllReduce, actBytes, 0, 2)

		b.Phase = trace.PhaseBackward
		for l := 0; l < g.Layers; l++ {
			b.compute(trace.Gemm, 2*layerF)
			b.free(r.layerActivationBytes())
			b.sync(collective.AllReduce, actBytes, 0, 2)
			b.sync(collective.AllReduce, actBytes, 0, 2)
		}
		b.compute(trace.Gemm, 2*g.HeadForwardFLOPs(bt)/float64(mp))
		b.free(r.headActivationBytes())
	}
	b.Phase = trace.PhaseOptimizer
	b.gpuAdam(g.Params() / int64(mp))
}

func (b *schedBuilder) compileZeRO1() {
	r := b.r
	g := r.cfg.Model
	bt := r.cfg.BatchPerGPU
	b.Phase = trace.PhaseForward
	b.forward(1)
	b.Phase = trace.PhaseBackward
	b.compute(trace.Gemm, 2*g.HeadForwardFLOPs(bt))
	b.free(r.headActivationBytes())
	b.alloc(r.recomputeWorkingSet())
	for _, k := range buckets(g.Layers) {
		b.compute(trace.Gemm, r.backwardFactor()*g.LayerForwardFLOPs(bt)*float64(k))
		b.free(float64(k) * r.layerActivationBytes())
	}
	b.free(r.recomputeWorkingSet())
	b.Phase = trace.PhaseOptimizer
	b.z1Collective(collective.ReduceScatter, r.gradBytes)
	b.optimizer()
	b.z1Collective(collective.AllGather, r.paramBytes)
}

func (b *schedBuilder) compileZeRO2() {
	r := b.r
	g := r.cfg.Model
	bt := r.cfg.BatchPerGPU
	b.Phase = trace.PhaseForward
	b.forward(1)

	overlap := r.cfg.Nodes == 1
	q := b.newQueue(0, 1)
	b.Phase = trace.PhaseBackward
	b.compute(trace.Gemm, 2*g.HeadForwardFLOPs(bt))
	b.free(r.headActivationBytes())
	b.alloc(r.recomputeWorkingSet())
	bk := buckets(g.Layers)
	perBucket := r.gradBytes / float64(len(bk))
	for _, k := range bk {
		b.compute(trace.Gemm, r.backwardFactor()*g.LayerForwardFLOPs(bt)*float64(k))
		b.free(float64(k) * r.layerActivationBytes())
		if overlap {
			b.enqueue(q, collective.ReduceScatter, perBucket)
		}
	}
	b.free(r.recomputeWorkingSet())
	if overlap {
		b.barrier(q)
	} else {
		b.sync(collective.ReduceScatter, r.gradBytes, 0, 1)
	}
	b.Phase = trace.PhaseOptimizer
	b.optimizer()
	b.sync(collective.AllGather, r.paramBytes, 0, 1)
}

func (b *schedBuilder) compileZeRO3() {
	r := b.r
	g := r.cfg.Model
	bt := r.cfg.BatchPerGPU
	gr := groups(g.Layers)
	layerParamBytes := 2 * float64(g.LayerParams())
	embedBytes := 2 * float64(g.EmbeddingParams())
	groupBytes := func(i int) float64 {
		bytes := layerParamBytes * float64(gr[i])
		if i == 0 {
			bytes += embedBytes
		}
		return bytes
	}
	if r.cfg.Offload == memory.NVMeOptimizerAndParams {
		// Parameters start on NVMe: each rank stages its shard up before the
		// gathers can run.
		b.Phase = trace.PhasePrefetch
		b.nvme(r.paramBytes/float64(r.cfg.WorldSize()), false)
	}

	q := b.newQueue(0, 1)
	slots := make([]int16, len(gr))
	b.Phase = trace.PhasePrefetch
	slots[0] = b.enqueueSlot(q, collective.AllGather, groupBytes(0))
	for i := range gr {
		if i+1 < len(gr) {
			b.Phase = trace.PhasePrefetch
			slots[i+1] = b.enqueueSlot(q, collective.AllGather, groupBytes(i+1))
		}
		b.Phase = trace.PhaseForward
		b.waitSlot(q, slots[i])
		b.overhead(r.zero3Overhead() * sim.Time(gr[i]))
		b.compute(trace.Gemm, g.LayerForwardFLOPs(bt)*float64(gr[i]))
		b.alloc(float64(gr[i]) * r.layerActivationBytes())
	}
	b.Phase = trace.PhaseForward
	b.compute(trace.Gemm, g.HeadForwardFLOPs(bt))
	b.alloc(r.headActivationBytes())

	if r.cfg.Offload == memory.NVMeOptimizerAndParams {
		b.Phase = trace.PhasePrefetch
		b.nvme(r.paramBytes/float64(r.cfg.WorldSize()), false)
	}
	b.Phase = trace.PhaseBackward
	b.compute(trace.Gemm, 2*g.HeadForwardFLOPs(bt))
	b.free(r.headActivationBytes())
	b.alloc(r.recomputeWorkingSet())
	bq := b.newQueue(0, 1)
	bslots := make([]int16, len(gr))
	last := len(gr) - 1
	b.Phase = trace.PhasePrefetch
	bslots[last] = b.enqueueSlot(bq, collective.AllGather, groupBytes(last))
	for i := last; i >= 0; i-- {
		if i-1 >= 0 {
			b.Phase = trace.PhasePrefetch
			bslots[i-1] = b.enqueueSlot(bq, collective.AllGather, groupBytes(i-1))
		}
		b.Phase = trace.PhaseBackward
		b.waitSlot(bq, bslots[i])
		b.overhead(r.zero3Overhead() * sim.Time(gr[i]))
		b.compute(trace.Gemm, r.backwardFactor()*g.LayerForwardFLOPs(bt)*float64(gr[i]))
		b.free(float64(gr[i]) * r.layerActivationBytes())
		b.enqueue(bq, collective.ReduceScatter, groupBytes(i))
	}
	b.free(r.recomputeWorkingSet())
	b.barrier(bq)
	b.Phase = trace.PhaseOptimizer
	b.optimizer()
}

func (b *schedBuilder) compileMegatronHybrid() {
	r := b.r
	g := r.cfg.Model
	bt := r.cfg.BatchPerGPU
	tp, pp := r.cfg.TensorParallel, r.cfg.PipelineParallel
	micro := r.cfg.WorldSize() // gradient-accumulation microbatches

	// Stage groups and boundary routes are compiled once and reused every
	// iteration (they are pure functions of the topology), which also keeps
	// their collective plan pools warm across iterations.
	stages := r.stageGroups(tp, pp)
	boundaries := r.stageBoundaryRoutes(tp, pp)
	actBytes := float64(bt) * float64(g.SeqLen) * float64(g.Hidden) * 2

	layersPerStage := (g.Layers + pp - 1) / pp
	layerF := g.LayerForwardFLOPs(bt) / float64(tp)

	slot := func(backward bool) {
		mult := 1.0
		if backward {
			mult = 2
		}
		for l := 0; l < layersPerStage; l++ {
			b.compute(trace.Gemm, mult*layerF)
			if tp > 1 {
				b.stageAllReduce(stages, actBytes)
				b.stageAllReduce(stages, actBytes)
			}
		}
		b.boundary(boundaries, actBytes*float64(tp))
	}

	actResident := float64(g.Layers)*r.layerActivationBytes() + r.headActivationBytes()
	b.Phase = trace.PhaseForward
	b.alloc(actResident)
	fwdSlots := micro + pp - 1
	for s := 0; s < fwdSlots; s++ {
		slot(false)
	}
	b.compute(trace.Gemm, 3*g.HeadForwardFLOPs(bt)/float64(tp))
	b.Phase = trace.PhaseBackward
	for s := 0; s < fwdSlots; s++ {
		slot(true)
	}
	b.free(actResident)
	b.Phase = trace.PhaseOptimizer
	b.gpuAdam(g.Params() / int64(tp*pp))
}
