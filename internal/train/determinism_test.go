package train

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"llmbw/internal/collective"
	"llmbw/internal/fabric"
	"llmbw/internal/model"
)

// TestSummaryJSONByteStable runs the identical configuration on two fresh
// simulated clusters and requires byte-identical serialized summaries: the
// regression test for the ordered-map-emit audit of summary.go (the
// BandwidthGBps map serializes through encoding/json, whose sorted-key
// contract this locks in) and runner.go (Stats/Series are filled and read in
// fabric.MeasuredClasses order).
func TestSummaryJSONByteStable(t *testing.T) {
	cfg := Config{Strategy: ZeRO1, Model: model.NewGPT(8), Iterations: 1, Warmup: 0}
	var bufs [2]bytes.Buffer
	for i := range bufs {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.WriteJSON(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Errorf("summaries of identical runs differ:\n%s\n----\n%s", bufs[0].Bytes(), bufs[1].Bytes())
	}

	// The serialized interconnect keys must come out sorted — the property
	// that makes a map-valued field safe to emit at all.
	var s struct {
		BW map[string][3]float64 `json:"bandwidth_gbps"`
	}
	if err := json.Unmarshal(bufs[0].Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if len(s.BW) != len(fabric.MeasuredClasses()) {
		t.Errorf("bandwidth map has %d keys, want %d", len(s.BW), len(fabric.MeasuredClasses()))
	}
	names := make([]string, 0, len(s.BW))
	for name := range s.BW {
		names = append(names, name)
	}
	sort.Strings(names)
	last := -1
	for _, name := range names {
		at := bytes.Index(bufs[0].Bytes(), []byte(`"`+name+`"`))
		if at < 0 {
			t.Fatalf("class %s missing from summary JSON:\n%s", name, bufs[0].String())
		}
		if at < last {
			t.Errorf("class %s serialized out of sorted order", name)
		}
		last = at
	}
}

// TestFastPathsMatchLegacyPaths is the end-to-end determinism A/B for the
// performance machinery: compiled collective plans, batched flow admission
// and compiled schedule replay must leave the serialized training summary
// byte-identical to the rebuild-per-issue / per-flow-admission / imperative-
// coroutine paths they replaced, in every toggle combination of the 2×2×2
// matrix. Strategies are chosen to cover the comm-queue pipelines (ZeRO-3),
// fused dual-ring collectives (DDP) and the hybrid-parallel boundary
// exchange (Megatron).
func TestFastPathsMatchLegacyPaths(t *testing.T) {
	run := func(cfg Config, plans, batch, ir bool) []byte {
		defer func(p, b, s bool) {
			collective.CompiledPlans, fabric.BatchAdmission, CompiledSchedules = p, b, s
		}(collective.CompiledPlans, fabric.BatchAdmission, CompiledSchedules)
		collective.CompiledPlans, fabric.BatchAdmission, CompiledSchedules = plans, batch, ir
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cfgs := []Config{
		{Strategy: DDP, Model: model.NewGPT(8), Iterations: 2, Warmup: 1},
		{Strategy: Megatron, Model: model.NewGPT(8), Iterations: 1, Warmup: 0, Nodes: 2},
		{Strategy: ZeRO3, Model: model.NewGPT(8), Iterations: 2, Warmup: 1, Nodes: 2},
	}
	for _, cfg := range cfgs {
		fast := run(cfg, true, true, true)
		for _, m := range []struct {
			name             string
			plans, batch, ir bool
		}{
			{"legacy(plans=off,batch=off,ir=off)", false, false, false},
			{"plans-only", true, false, false},
			{"batch-only", false, true, false},
			{"ir-only", false, false, true},
			{"plans+batch", true, true, false},
			{"plans+ir", true, false, true},
			{"batch+ir", false, true, true},
		} {
			if got := run(cfg, m.plans, m.batch, m.ir); !bytes.Equal(fast, got) {
				t.Errorf("%s: %s summary differs from the fast path:\n%s\n----\n%s",
					cfg.Name(), m.name, fast, got)
			}
		}
	}
}

// TestResultStatsCoverMeasuredClasses pins the key set of the Result.Stats /
// Result.Series maps to fabric.MeasuredClasses: every consumer iterates that
// fixed paper-order slice, so a key outside it would be silently invisible
// in reports.
func TestResultStatsCoverMeasuredClasses(t *testing.T) {
	res, err := Run(Config{Strategy: DDP, Model: model.NewGPT(8), Iterations: 1, Warmup: 0})
	if err != nil {
		t.Fatal(err)
	}
	want := fabric.MeasuredClasses()
	if len(res.Stats) != len(want) || len(res.Series) != len(want) {
		t.Fatalf("stats/series key counts = %d/%d, want %d", len(res.Stats), len(res.Series), len(want))
	}
	for _, class := range want {
		if _, ok := res.Stats[class]; !ok {
			t.Errorf("Stats missing class %s", class)
		}
		if _, ok := res.Series[class]; !ok {
			t.Errorf("Series missing class %s", class)
		}
	}
}
