package train

import (
	"testing"

	"llmbw/internal/fabric"
	"llmbw/internal/model"
)

// hybridRun executes a short hybrid Megatron run.
func hybridRun(t *testing.T, nodes, tp, pp int, g model.GPT) *Result {
	t.Helper()
	cfg := Config{
		Strategy: Megatron, Nodes: nodes,
		TensorParallel: tp, PipelineParallel: pp,
		Model: g, Iterations: 2, Warmup: 1,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("hybrid TP=%d PP=%d: %v", tp, pp, err)
	}
	return res
}

// TestHybridBeatsPureTPAcrossNodes demonstrates the deployment rule the
// Megatron-LM papers give and the paper's data implies: across two nodes,
// TP-within-node + PP-across-nodes beats pure TP=8, because only the slim
// point-to-point activation sends cross RoCE instead of every layer's
// all-reduces.
func TestHybridBeatsPureTPAcrossNodes(t *testing.T) {
	g := model.NewGPT(model.LayersForParams(10e9))
	pure := hybridRun(t, 2, 8, 1, g)
	hybrid := hybridRun(t, 2, 4, 2, g)
	if hybrid.AttainedTFLOPs <= pure.AttainedTFLOPs {
		t.Errorf("TP=4/PP=2 (%.0f TFLOP/s) should beat pure TP=8 (%.0f) across nodes",
			hybrid.AttainedTFLOPs, pure.AttainedTFLOPs)
	}
	// And its RoCE traffic should be far lower.
	if hybrid.Stats[fabric.RoCE].Avg >= pure.Stats[fabric.RoCE].Avg {
		t.Errorf("hybrid RoCE avg (%.1f) should be below pure TP (%.1f)",
			hybrid.Stats[fabric.RoCE].Avg/1e9, pure.Stats[fabric.RoCE].Avg/1e9)
	}
}

// TestPipelineBubbleCostsThroughput: on a single node (where TP is cheap over
// NVLink), adding pipeline stages introduces fill/drain bubbles.
func TestPipelineBubbleCostsThroughput(t *testing.T) {
	g := model.NewGPT(model.LayersForParams(5e9))
	pure := hybridRun(t, 1, 4, 1, g)
	pp4 := hybridRun(t, 1, 1, 4, g)
	if pp4.AttainedTFLOPs >= pure.AttainedTFLOPs*1.2 {
		t.Errorf("PP=4 (%.0f) should not dramatically beat TP=4 (%.0f) on one node",
			pp4.AttainedTFLOPs, pure.AttainedTFLOPs)
	}
	if pp4.IterTime <= 0 || pure.IterTime <= 0 {
		t.Fatal("degenerate iteration times")
	}
}

// TestHybridEquivalentToPureWhenPP1: the hybrid path with PP=1 and the pure
// path produce identical schedules.
func TestHybridEquivalentToPureWhenPP1(t *testing.T) {
	g := model.NewGPT(40)
	pure, err := Run(Config{Strategy: Megatron, Model: g, Iterations: 2, Warmup: 1})
	if err != nil {
		t.Fatal(err)
	}
	// PP=1 goes through iterMegatron (the dispatcher checks PP>1), so this
	// asserts the dispatcher wiring rather than numerical coincidence.
	viaFields, err := Run(Config{Strategy: Megatron, TensorParallel: 4, PipelineParallel: 1,
		Model: g, Iterations: 2, Warmup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pure.IterTime != viaFields.IterTime {
		t.Errorf("PP=1 hybrid config diverged from pure Megatron: %v vs %v",
			viaFields.IterTime, pure.IterTime)
	}
}

func TestHybridValidation(t *testing.T) {
	g := model.NewGPT(16)
	bad := []Config{
		{Strategy: Megatron, TensorParallel: 3, PipelineParallel: 1, Model: g},
		{Strategy: Megatron, TensorParallel: 2, PipelineParallel: 4, Model: g},
		{Strategy: DDP, TensorParallel: 2, PipelineParallel: 2, Model: g},
		{Strategy: Megatron, TensorParallel: 1, PipelineParallel: 4, Model: model.NewGPT(2)},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad hybrid config %d accepted: %+v", i, c)
		}
	}
	good := Config{Strategy: Megatron, TensorParallel: 2, PipelineParallel: 2, Model: g}
	if err := good.Validate(); err != nil {
		t.Errorf("valid hybrid config rejected: %v", err)
	}
	if name := good.Name(); name != "Megatron-LM (TP=2,PP=2)" {
		t.Errorf("hybrid name = %q", name)
	}
}

// TestHybridStageBoundariesCrossNodesOnlyBetweenStages: TP=4/PP=2 on two
// nodes must keep all-reduce traffic off RoCE entirely for a 1-stage-per-node
// mapping; only the boundary sends cross.
func TestHybridTrafficLocality(t *testing.T) {
	g := model.NewGPT(model.LayersForParams(8e9))
	res := hybridRun(t, 2, 4, 2, g)
	nv := res.Stats[fabric.NVLink].Avg
	roce := res.Stats[fabric.RoCE].Avg
	if nv == 0 {
		t.Fatal("no NVLink traffic in hybrid run")
	}
	if roce == 0 {
		t.Fatal("pipeline boundary produced no RoCE traffic")
	}
	if roce > nv/3 {
		t.Errorf("RoCE (%.1f GB/s) should be a small fraction of NVLink (%.1f)", roce/1e9, nv/1e9)
	}
}
