// Package train implements the distributed training strategies the paper
// measures — PyTorch DDP, Megatron-LM model parallelism, and DeepSpeed
// ZeRO-1/2/3 with ZeRO-Offload (CPU) and ZeRO-Infinity (NVMe) — as iteration
// schedules executed on the simulated cluster. Each strategy drives the same
// substrate: GPU compute spans from internal/compute, NCCL-style collectives
// from internal/collective, offload copies over the PCIe/xGMI fabric, host
// optimizer steps, and NVMe staging through internal/nvme.
//
// A run produces the paper's measured quantities: iteration time and
// attained TFLOP/s (DeepSpeed FLOPS-profiler convention: executed FLOPs over
// wall time), per-interconnect bandwidth statistics (Table IV/VI), memory
// usage (Fig 11/13), and per-GPU timelines (Fig 5).
package train

import (
	"fmt"

	"llmbw/internal/collective"
	"llmbw/internal/memory"
	"llmbw/internal/model"
	"llmbw/internal/nvme"
	"llmbw/internal/sim"
	"llmbw/internal/topology"
)

// MaxNodes bounds cluster size. The paper's testbed has two nodes; the
// simulator generalizes the same topology (one switch, two NICs per node)
// for scale-out studies.
const MaxNodes = 16

// Strategy selects the training framework.
type Strategy int

// Frameworks under test.
const (
	DDP Strategy = iota
	Megatron
	ZeRO1
	ZeRO2
	ZeRO3
)

func (s Strategy) String() string {
	switch s {
	case DDP:
		return "DDP"
	case Megatron:
		return "Megatron-LM"
	case ZeRO1:
		return "ZeRO-1"
	case ZeRO2:
		return "ZeRO-2"
	case ZeRO3:
		return "ZeRO-3"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ZeROStage returns the ZeRO stage (1-3) or 0 for non-ZeRO strategies.
func (s Strategy) ZeROStage() int {
	switch s {
	case ZeRO1:
		return 1
	case ZeRO2:
		return 2
	case ZeRO3:
		return 3
	}
	return 0
}

// Config describes one training experiment.
type Config struct {
	Strategy Strategy
	Offload  memory.Offload
	Nodes    int
	Model    model.GPT
	// TensorParallel × PipelineParallel configures Megatron-LM hybrid
	// model parallelism. Zero values select pure tensor parallelism of
	// degree = world size (the behaviour matching the paper's NVLink
	// traffic). When set, their product must equal the world size.
	TensorParallel   int
	PipelineParallel int
	// BatchPerGPU defaults to the paper's 16.
	BatchPerGPU int
	// Placement is the NVMe layout for ZeRO-Infinity runs (defaults to the
	// paper's Config B: two drives on CPU #1 in RAID0).
	Placement *nvme.Placement
	// Iterations measured after Warmup (defaults 5 and 2, mirroring the
	// paper's "collect from the fifth iteration").
	Iterations int
	Warmup     int
	// CheckpointEvery, when positive, writes a full training checkpoint
	// (FP32 master weights + optimizer state + FP16 weights, sharded per
	// rank) to the node's scratch NVMe volume every N iterations.
	CheckpointEvery int
	// Trace enables per-GPU timeline capture of the last iteration.
	Trace bool
	// Window overrides the telemetry sampling window.
	Window sim.Time
	// PurposeBuilt swaps the mainstream XE8545 platform for a purpose-built
	// AI node of the same GPU count (NVSwitch fabric, GPU-adjacent
	// InfiniBand rails) — the cluster class the paper's introduction says
	// is out of reach for most researchers.
	PurposeBuilt bool
	// What-if overrides for sensitivity studies (0 = paper defaults):
	// RoCEBW scales the per-NIC Ethernet bandwidth, XbarBW the I/O-die
	// crossbar budget per socket.
	RoCEBW float64
	XbarBW float64
	// FaultInjection, when set, runs after the cluster is built and before
	// the simulation starts. Use it to schedule link degradations or other
	// mid-run events (e.g. cluster.Eng.Schedule + cluster.Net.SetCapacity)
	// for resilience studies.
	FaultInjection func(c *topology.Cluster)
	// Rewrite applies a schedule-level ablation (see Rewrite). Non-zero
	// values force the compiled-schedule execution path regardless of the
	// CompiledSchedules toggle.
	Rewrite Rewrite
	// Shards > 1 runs the simulation on a sharded engine (sim.ShardedEngine,
	// gated by sim.Sharded), <= 1 on the plain serial engine. On the testbed
	// topology a training run is one fluid fair-share domain — a single
	// cross-node collective flow couples every node's rate allocation with
	// zero lookahead — so the model is colocated on shard 0 (see
	// topology.Config.Shards) and the knob's value is the A/B determinism
	// surface, not a speedup for that workload. On a generated datacenter
	// fabric (Topo below) with a hierarchical Algo, the cross-node legs are
	// store-and-forward handoffs, the cluster shards along its pod seams,
	// and -shards genuinely parallelizes the run.
	Shards int
	// Topo selects the fabric: empty or topology.PaperTopo runs the paper's
	// two-node XE8545 testbed; a topology.ParseTopoSpec string (e.g.
	// "fat-tree:nodes=64" or "rail-only:nodes=64,rails=4") runs the
	// datacenter-scale model. Nodes defaults to the spec's node count and
	// must match it when set.
	Topo string
	// Algo selects the datacenter collective algorithm ("flat", "2level",
	// "multiring"; see collective.ParseAlgo). Defaults to "2level" on
	// datacenter fabrics; only valid there.
	Algo string
}

// IsDC reports whether the run targets a generated datacenter fabric rather
// than the paper's testbed.
func (c Config) IsDC() bool { return c.Topo != "" && c.Topo != topology.PaperTopo }

// MaxShards bounds Config.Shards well below sim.MaxShards; more shards than
// nodes never helps.
const MaxShards = 64

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.BatchPerGPU == 0 {
		c.BatchPerGPU = model.DefaultBatchSize
	}
	if c.Iterations == 0 {
		c.Iterations = 5
	}
	if c.Warmup == 0 {
		c.Warmup = 2
	}
	if c.IsDC() && c.Nodes == 0 {
		if dc, err := topology.ParseTopoSpec(c.Topo); err == nil {
			c.Nodes = dc.Nodes
		}
	}
	if c.Nodes == 0 {
		c.Nodes = 1
	}
	if c.Placement == nil && c.needsNVMe() {
		p := nvme.ConfigB()
		c.Placement = &p
	}
	if c.IsDC() && c.Algo == "" {
		c.Algo = collective.AlgoTwoLevel.String()
	}
	return c
}

func (c Config) needsNVMe() bool {
	return c.Offload == memory.NVMeOptimizer || c.Offload == memory.NVMeOptimizerAndParams
}

// WorldSize returns the number of GPUs.
func (c Config) WorldSize() int { return c.Nodes * topology.GPUsPerNode }

// Profile returns the memory profile for this configuration.
func (c Config) Profile() memory.Profile {
	c = c.withDefaults()
	world := c.WorldSize()
	switch c.Strategy {
	case DDP:
		return memory.DDPProfile(world)
	case Megatron:
		return memory.MegatronProfile(world)
	default:
		return memory.ZeROProfile(c.Strategy.ZeROStage(), world, c.Offload)
	}
}

// Validate reports configuration errors (invalid offload pairings per the
// paper's Table I, missing model, NVMe offload across nodes, …).
func (c Config) Validate() error {
	c = c.withDefaults()
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.IsDC() {
		return c.validateDC()
	}
	if c.Algo != "" {
		return fmt.Errorf("train: Algo %q applies only to generated -topo fabrics", c.Algo)
	}
	if c.Nodes < 1 || c.Nodes > MaxNodes {
		return fmt.Errorf("train: %d nodes outside the supported 1-%d range (the paper uses 1-2)", c.Nodes, MaxNodes)
	}
	if c.Shards > MaxShards {
		return fmt.Errorf("train: %d shards above the supported maximum %d", c.Shards, MaxShards)
	}
	switch c.Strategy {
	case DDP, Megatron:
		if c.Offload != memory.NoOffload {
			return fmt.Errorf("train: %v does not support offload", c.Strategy)
		}
		if c.TensorParallel != 0 || c.PipelineParallel != 0 {
			if c.Strategy != Megatron {
				return fmt.Errorf("train: TP/PP degrees apply only to Megatron-LM")
			}
			if c.TensorParallel < 1 || c.PipelineParallel < 1 ||
				c.TensorParallel*c.PipelineParallel != c.WorldSize() {
				return fmt.Errorf("train: TP(%d) x PP(%d) must equal world size %d",
					c.TensorParallel, c.PipelineParallel, c.WorldSize())
			}
			if c.PipelineParallel > c.Model.Layers {
				return fmt.Errorf("train: %d pipeline stages exceed %d layers",
					c.PipelineParallel, c.Model.Layers)
			}
		}
	case ZeRO1, ZeRO2:
		if c.needsNVMe() {
			return fmt.Errorf("train: ZeRO-%d cannot offload to NVMe (Table I)", c.Strategy.ZeROStage())
		}
	case ZeRO3:
	default:
		return fmt.Errorf("train: unknown strategy %d", int(c.Strategy))
	}
	if c.needsNVMe() {
		if c.Nodes != 1 {
			return fmt.Errorf("train: the paper's NVMe offload experiments are single-node")
		}
		if err := c.Placement.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// validateDC checks a datacenter-fabric configuration. The DC model covers
// the data-parallel strategies (DDP and the ZeRO stages without offload) on
// purpose-built nodes; the testbed-specific machinery — NVMe offload,
// Megatron TP/PP wiring, fault hooks, trace capture, bandwidth what-if
// overrides — stays on the paper topology.
func (c Config) validateDC() error {
	dc, err := topology.ParseTopoSpec(c.Topo)
	if err != nil {
		return err
	}
	if _, err := collective.ParseAlgo(c.Algo); err != nil {
		return err
	}
	if c.Nodes != dc.Nodes {
		return fmt.Errorf("train: %d nodes conflicts with topo spec %q (%d nodes)", c.Nodes, c.Topo, dc.Nodes)
	}
	if c.Shards > MaxShards {
		return fmt.Errorf("train: %d shards above the supported maximum %d", c.Shards, MaxShards)
	}
	switch c.Strategy {
	case DDP, ZeRO1, ZeRO2, ZeRO3:
	default:
		return fmt.Errorf("train: %v is not supported on generated fabrics (data-parallel strategies only)", c.Strategy)
	}
	if c.Offload != memory.NoOffload || c.Placement != nil {
		return fmt.Errorf("train: offload is not modelled on generated fabrics")
	}
	if c.TensorParallel != 0 || c.PipelineParallel != 0 {
		return fmt.Errorf("train: TP/PP degrees are not modelled on generated fabrics")
	}
	if c.CheckpointEvery > 0 {
		return fmt.Errorf("train: checkpointing is not modelled on generated fabrics")
	}
	if c.Trace {
		return fmt.Errorf("train: trace capture is not supported on generated fabrics")
	}
	if c.PurposeBuilt {
		return fmt.Errorf("train: PurposeBuilt selects a testbed variant; generated fabrics are already purpose-built")
	}
	if c.FaultInjection != nil {
		return fmt.Errorf("train: fault injection hooks take a testbed cluster")
	}
	if c.RoCEBW != 0 || c.XbarBW != 0 {
		return fmt.Errorf("train: RoCEBW/XbarBW overrides apply only to the testbed topology")
	}
	if c.Rewrite != 0 {
		return fmt.Errorf("train: schedule rewrites apply only to the testbed topology")
	}
	return nil
}

// Name returns a display label matching the paper's configuration names.
func (c Config) Name() string {
	c = c.withDefaults()
	label := c.Strategy.String()
	if c.PipelineParallel > 1 {
		label += fmt.Sprintf(" (TP=%d,PP=%d)", c.TensorParallel, c.PipelineParallel)
	}
	switch c.Offload {
	case memory.CPUOffload:
		label += " (CPU)"
	case memory.NVMeOptimizer:
		label += fmt.Sprintf(" (%d×NVMe opt)", len(c.Placement.Drives))
	case memory.NVMeOptimizerAndParams:
		label += fmt.Sprintf(" (%d×NVMe opt+param)", len(c.Placement.Drives))
	}
	if c.IsDC() {
		// The algorithm label reflects what actually runs: with the
		// Hierarchical toggle off, every algorithm degrades to the flat twin
		// and the run is byte-identical to an explicit -algo=flat run.
		algo := c.Algo
		if parsed, err := collective.ParseAlgo(c.Algo); err == nil {
			algo = collective.EffectiveAlgo(parsed).String()
		}
		if dc, err := topology.ParseTopoSpec(c.Topo); err == nil {
			label += fmt.Sprintf(" @%s/%s", dc.Spec(), algo)
		} else {
			label += fmt.Sprintf(" @%s/%s", c.Topo, algo)
		}
	}
	return label
}
