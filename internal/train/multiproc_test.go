package train

import (
	"math"
	"testing"

	"llmbw/internal/model"
)

// TestMultiProcMatchesLockstep cross-validates the per-rank reference
// implementation against the production lockstep scheduler: with symmetric
// ranks the two must agree closely (they share every cost model; only the
// coordination mechanics differ).
func TestMultiProcMatchesLockstep(t *testing.T) {
	g := model.NewGPT(20)
	ref, err := RunDDPMultiProcess(MultiProcConfig{Model: g, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	prod, err := Run(Config{Strategy: DDP, Model: g, Iterations: 3, Warmup: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, b := ref.IterTime.ToSeconds(), prod.IterTime.ToSeconds()
	if diff := math.Abs(a-b) / b; diff > 0.10 {
		t.Errorf("multiproc iter %.4fs vs lockstep %.4fs (%.0f%% apart)", a, b, diff*100)
	}
}

// TestMultiProcDualNode runs the reference across two nodes.
func TestMultiProcDualNode(t *testing.T) {
	g := model.NewGPT(20)
	one, err := RunDDPMultiProcess(MultiProcConfig{Nodes: 1, Model: g})
	if err != nil {
		t.Fatal(err)
	}
	two, err := RunDDPMultiProcess(MultiProcConfig{Nodes: 2, Model: g})
	if err != nil {
		t.Fatal(err)
	}
	if two.AttainedTFLOPs <= one.AttainedTFLOPs {
		t.Errorf("dual-node (%.0f) should beat single (%.0f)", two.AttainedTFLOPs, one.AttainedTFLOPs)
	}
	if two.AttainedTFLOPs > 2*one.AttainedTFLOPs {
		t.Errorf("dual-node scaling superlinear: %.0f vs %.0f", two.AttainedTFLOPs, one.AttainedTFLOPs)
	}
}

// TestStragglerGatesSynchronousTraining: one rank 30% slower drags the whole
// job — the behaviour only the per-rank implementation can express.
func TestStragglerGatesSynchronousTraining(t *testing.T) {
	g := model.NewGPT(20)
	nominal, err := RunDDPMultiProcess(MultiProcConfig{Model: g})
	if err != nil {
		t.Fatal(err)
	}
	straggler, err := RunDDPMultiProcess(MultiProcConfig{
		Model:        g,
		RankSlowdown: map[int]float64{2: 1.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := straggler.IterTime.ToSeconds() / nominal.IterTime.ToSeconds()
	// Compute dominates the iteration, so a 1.3x slow rank should cost
	// roughly 20-30% end to end.
	if ratio < 1.12 || ratio > 1.35 {
		t.Errorf("straggler slowdown = %.2fx, want ~1.2-1.3x", ratio)
	}
}

func TestMultiProcValidation(t *testing.T) {
	if _, err := RunDDPMultiProcess(MultiProcConfig{Model: model.GPT{}}); err == nil {
		t.Error("empty model accepted")
	}
	if _, err := RunDDPMultiProcess(MultiProcConfig{Nodes: MaxNodes + 1, Model: model.NewGPT(4)}); err == nil {
		t.Error("oversized cluster accepted")
	}
}

func TestMultiProcDeterministic(t *testing.T) {
	g := model.NewGPT(10)
	a, err := RunDDPMultiProcess(MultiProcConfig{Model: g})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDDPMultiProcess(MultiProcConfig{Model: g})
	if err != nil {
		t.Fatal(err)
	}
	if a.IterTime != b.IterTime {
		t.Errorf("nondeterministic: %v vs %v", a.IterTime, b.IterTime)
	}
}

// TestZeRO2MultiProcMatchesLockstep cross-validates the second strategy.
func TestZeRO2MultiProcMatchesLockstep(t *testing.T) {
	g := model.NewGPT(40)
	ref, err := RunZeRO2MultiProcess(MultiProcConfig{Model: g, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	prod, err := Run(Config{Strategy: ZeRO2, Model: g, Iterations: 3, Warmup: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, b := ref.IterTime.ToSeconds(), prod.IterTime.ToSeconds()
	if diff := math.Abs(a-b) / b; diff > 0.10 {
		t.Errorf("ZeRO-2 multiproc %.4fs vs lockstep %.4fs (%.0f%% apart)", a, b, diff*100)
	}
}

// TestZeRO2MultiProcDualNode checks the dual-node reference path (exposed
// reduce-scatter) agrees too.
func TestZeRO2MultiProcDualNode(t *testing.T) {
	g := model.NewGPT(40)
	ref, err := RunZeRO2MultiProcess(MultiProcConfig{Nodes: 2, Model: g, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	prod, err := Run(Config{Strategy: ZeRO2, Nodes: 2, Model: g, Iterations: 3, Warmup: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, b := ref.IterTime.ToSeconds(), prod.IterTime.ToSeconds()
	if diff := math.Abs(a-b) / b; diff > 0.12 {
		t.Errorf("dual-node ZeRO-2 multiproc %.4fs vs lockstep %.4fs (%.0f%% apart)", a, b, diff*100)
	}
}
