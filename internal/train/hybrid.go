package train

import (
	"fmt"

	"llmbw/internal/collective"
	"llmbw/internal/sim"
	"llmbw/internal/topology"
	"llmbw/internal/trace"
)

// Hybrid tensor+pipeline parallelism. The paper's Megatron-LM runs are
// configured "TP=4 and PP=4" (single node) and "TP=8 and PP=8" (dual node);
// our default Megatron model treats the model-parallel degree as pure tensor
// parallelism with gradient-accumulation microbatches, which matches the
// observed NVLink-heavy all-reduce traffic. MegatronHybrid generalizes it:
// degree = TP × PP, with pipeline stages mapped contiguously onto the
// node-major rank order (so TP groups stay inside a node whenever TP ≤ 4 and
// only the slim point-to-point activation sends cross RoCE) — the deployment
// the Megatron-LM papers recommend for multi-node clusters.
//
// The pipeline runs a GPipe-style schedule with M = world-size microbatches:
// (M + PP − 1) forward slots followed by (M + PP − 1) backward slots. Every
// slot executes one stage-worth of layers on each active stage (lockstep —
// stages are uniform) with that stage's tensor-parallel all-reduces, plus the
// boundary activation sends between adjacent stages.

// stageGroups builds the TP collective group of every pipeline stage.
func (r *Runner) stageGroups(tp, pp int) []*collective.Group {
	ranks := collective.NodeMajorRanks(r.cfg.Nodes, topology.GPUsPerNode)
	groups := make([]*collective.Group, pp)
	for s := 0; s < pp; s++ {
		groups[s] = collective.NewGroup(r.cluster, ranks[s*tp:(s+1)*tp])
	}
	return groups
}

// stageBoundaryRoutes returns the activation route between the last rank of
// each stage and the first rank of the next.
func (r *Runner) stageBoundaryRoutes(tp, pp int) []topology.Route {
	ranks := collective.NodeMajorRanks(r.cfg.Nodes, topology.GPUsPerNode)
	routes := make([]topology.Route, 0, pp-1)
	for s := 0; s+1 < pp; s++ {
		a := ranks[s*tp+tp-1]
		b := ranks[(s+1)*tp]
		if a.Node == b.Node {
			routes = append(routes, r.cluster.GPUToGPU(a, b))
		} else {
			routes = append(routes, r.cluster.GPUToRemoteGPU(a, b))
		}
	}
	return routes
}

// allStageAllReduce runs one tensor-parallel all-reduce concurrently on every
// stage's TP group (the groups are disjoint) and blocks until all complete.
func (r *Runner) allStageAllReduce(p *sim.Proc, groups []*collective.Group, payload float64) {
	if len(groups) == 1 {
		r.syncCollectiveOn(p, groups[0], collective.AllReduce, payload)
		return
	}
	start := p.Now()
	p.Await(func(resume func()) {
		remaining := len(groups)
		for _, g := range groups {
			g.StartRings(collective.AllReduce, payload, 0, 2, func() {
				remaining--
				if remaining == 0 {
					resume()
				}
			})
		}
	})
	r.traceAll(trace.NCCLAllReduce, start, p.Now())
}

// syncCollectiveOn is syncCollective for an arbitrary group.
func (r *Runner) syncCollectiveOn(p *sim.Proc, g *collective.Group, op collective.Op, payload float64) {
	start := p.Now()
	p.Await(func(resume func()) { g.StartRings(op, payload, 0, 2, resume) })
	r.traceAll(traceKind(op), start, p.Now())
}

// sendBoundaries fires the inter-stage activation transfers for one pipeline
// slot and blocks until the slowest completes.
func (r *Runner) sendBoundaries(p *sim.Proc, routes []topology.Route, bytes float64) {
	if len(routes) == 0 || bytes <= 0 {
		return
	}
	start := p.Now()
	p.Await(func(resume func()) {
		flows := r.flowScratch[:0]
		for i, rt := range routes {
			flows = append(flows, rt.Flow(fmt.Sprintf("pp-act/%d", i), bytes))
		}
		r.flowScratch = flows
		remaining := len(flows)
		r.cluster.Net.StartFlows(flows, func() {
			remaining--
			if remaining == 0 {
				resume()
			}
		})
	})
	r.traceAll(trace.OffloadCopy, start, p.Now())
}

// iterMegatronHybrid runs one iteration of TP×PP hybrid model parallelism.
func (r *Runner) iterMegatronHybrid(p *sim.Proc) {
	g := r.cfg.Model
	b := r.cfg.BatchPerGPU
	tp, pp := r.cfg.TensorParallel, r.cfg.PipelineParallel
	world := r.cfg.WorldSize()
	micro := world // gradient-accumulation microbatches, as in iterMegatron

	groups := r.stageGroups(tp, pp)
	boundaries := r.stageBoundaryRoutes(tp, pp)
	actBytes := float64(b) * float64(g.SeqLen) * float64(g.Hidden) * 2

	layersPerStage := (g.Layers + pp - 1) / pp
	layerF := g.LayerForwardFLOPs(b) / float64(tp)

	// One pipeline slot: every active stage runs its layers with TP
	// all-reduces, then activations hop to the next stage.
	slot := func(backward bool) {
		mult := 1.0
		if backward {
			mult = 2
		}
		for l := 0; l < layersPerStage; l++ {
			r.computeSpan(p, trace.Gemm, mult*layerF)
			if tp > 1 {
				r.allStageAllReduce(p, groups, actBytes)
				r.allStageAllReduce(p, groups, actBytes)
			}
		}
		r.sendBoundaries(p, boundaries, actBytes*float64(tp))
	}

	// Coarse activation accounting: one full set of layer activations is
	// resident at steady state (per-stage slices × in-flight microbatches).
	actResident := float64(g.Layers)*r.layerActivationBytes() + r.headActivationBytes()
	r.mem.alloc(actResident)
	fwdSlots := micro + pp - 1
	for s := 0; s < fwdSlots; s++ {
		slot(false)
	}
	r.computeSpan(p, trace.Gemm, 3*g.HeadForwardFLOPs(b)/float64(tp))
	for s := 0; s < fwdSlots; s++ {
		slot(true)
	}
	r.mem.free(actResident)
	r.gpuAdam(p, g.Params()/int64(tp*pp))
}
