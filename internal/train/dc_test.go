package train

import (
	"bytes"
	"strings"
	"testing"

	"llmbw/internal/collective"
	"llmbw/internal/fabric"
	"llmbw/internal/memory"
	"llmbw/internal/model"
)

func dcBase(strategy Strategy) Config {
	return Config{
		Strategy:   strategy,
		Model:      model.NewGPT(8),
		Topo:       "rail-only:nodes=8,pod=1",
		Iterations: 2,
		Warmup:     1,
	}
}

// TestDCShardedMatchesUnsharded extends the sharded A/B matrix to a
// multi-node collective workload on a generated fabric — the workload the
// PDES engine was built for. Every strategy × algorithm pairing must
// serialize identically at 1/2/4/8 shards, serial merge and parallel
// windows alike.
func TestDCShardedMatchesUnsharded(t *testing.T) {
	for _, strategy := range []Strategy{DDP, ZeRO3} {
		for _, algo := range []string{"flat", "2level", "multiring"} {
			cfg := dcBase(strategy)
			cfg.Algo = algo
			plain := runSharded(t, cfg, 0, false)
			for _, m := range []struct {
				name     string
				shards   int
				parallel bool
			}{
				{"shards=2 serial-merge", 2, false},
				{"shards=2 parallel", 2, true},
				{"shards=4 parallel", 4, true},
				{"shards=8 parallel", 8, true},
			} {
				if got := runSharded(t, cfg, m.shards, m.parallel); !bytes.Equal(plain, got) {
					t.Errorf("%v/%s: %s output differs from the plain run:\n%s\nvs\n%s",
						strategy, algo, m.name, got, plain)
				}
			}
		}
	}
}

// TestDCHierarchicalToggle: with collective.Hierarchical off, a 2-level run
// must be byte-identical to the flat twin.
func TestDCHierarchicalToggle(t *testing.T) {
	cfg := dcBase(ZeRO1)
	cfg.Algo = "flat"
	flat := runSharded(t, cfg, 0, false)
	defer func(h bool) { collective.Hierarchical = h }(collective.Hierarchical)
	collective.Hierarchical = false
	for _, algo := range []string{"2level", "multiring"} {
		cfg.Algo = algo
		if got := runSharded(t, cfg, 0, false); !bytes.Equal(flat, got) {
			t.Errorf("toggle-off %s differs from flat twin:\n%s\nvs\n%s", algo, got, flat)
		}
	}
}

// TestDCStrategiesRun smoke-tests every supported strategy × fabric family
// and sanity-checks the scale model: traffic lands on the NIC class and the
// iteration takes positive time.
func TestDCStrategiesRun(t *testing.T) {
	for _, strategy := range []Strategy{DDP, ZeRO1, ZeRO2, ZeRO3} {
		for _, topo := range []string{"fat-tree:nodes=8", "rail-only:nodes=8", "dragonfly:nodes=8"} {
			cfg := dcBase(strategy)
			cfg.Topo = topo
			cfg.Nodes = 0 // adopt the spec's node count
			cfg.Shards = 2
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%v on %s: %v", strategy, topo, err)
			}
			if res.IterTime <= 0 || res.AttainedTFLOPs <= 0 {
				t.Errorf("%v on %s: iter=%v tflops=%v", strategy, topo, res.IterTime, res.AttainedTFLOPs)
			}
			if res.Stats[fabric.RoCE].Avg <= 0 {
				t.Errorf("%v on %s: no NIC traffic measured", strategy, topo)
			}
			if !strings.Contains(res.Config.Name(), "@") {
				t.Errorf("%v on %s: Name %q lacks the fabric suffix", strategy, topo, res.Config.Name())
			}
		}
	}
}

// TestDCValidate pins the datacenter configuration surface: spec/algo
// errors, node-count conflicts, unsupported testbed machinery, and the
// cache key distinguishing topo/algo.
func TestDCValidate(t *testing.T) {
	ok := dcBase(DDP)
	if err := ok.Validate(); err != nil {
		t.Fatalf("base DC config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad spec", func(c *Config) { c.Topo = "mesh:nodes=4" }},
		{"bad algo", func(c *Config) { c.Algo = "bisect" }},
		{"node conflict", func(c *Config) { c.Nodes = 4 }},
		{"megatron", func(c *Config) { c.Strategy = Megatron }},
		{"offload", func(c *Config) { c.Strategy = ZeRO3; c.Offload = memory.CPUOffload }},
		{"checkpoint", func(c *Config) { c.CheckpointEvery = 1 }},
		{"trace", func(c *Config) { c.Trace = true }},
		{"purpose-built", func(c *Config) { c.PurposeBuilt = true }},
		{"roce override", func(c *Config) { c.RoCEBW = 1e9 }},
		{"rewrite", func(c *Config) { c.Rewrite = RewriteSerializeComm }},
		{"algo on testbed", func(c *Config) { c.Topo = ""; c.Nodes = 1; c.Algo = "flat" }},
	}
	for _, tc := range cases {
		cfg := dcBase(DDP)
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: validated", tc.name)
		}
	}
	// Cache keys: canonical topo spelling shares an entry; algo and topo
	// distinguish entries.
	a, okA := dcBase(DDP).cacheKey()
	canon := dcBase(DDP)
	canon.Topo = "rail:nodes=8,pod=1"
	b, okB := canon.cacheKey()
	if !okA || !okB || a != b {
		t.Errorf("canonicalized topo specs should share a cache key:\n%s\n%s", a, b)
	}
	alt := dcBase(DDP)
	alt.Algo = "multiring"
	c, _ := alt.cacheKey()
	if c == a {
		t.Error("cache key ignores Algo")
	}
	ft := dcBase(DDP)
	ft.Topo = "fat-tree:nodes=8,pod=1"
	d, _ := ft.cacheKey()
	if d == a {
		t.Error("cache key ignores Topo")
	}
}
