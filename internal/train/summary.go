package train

import (
	"encoding/json"
	"io"

	"llmbw/internal/fabric"
)

// Summary is the machine-readable digest of a training run, stable for JSON
// serialization (map keys are interconnect names, units are explicit).
type Summary struct {
	Config      string  `json:"config"`
	Nodes       int     `json:"nodes"`
	ModelB      float64 `json:"model_billion_params"`
	Layers      int     `json:"layers"`
	BatchPerGPU int     `json:"batch_per_gpu"`
	IterSec     float64 `json:"iteration_seconds"`
	TFLOPs      float64 `json:"attained_tflops"`

	MemoryGB struct {
		PerGPU   float64 `json:"per_gpu"`
		GPUTotal float64 `json:"gpu_total"`
		CPUTotal float64 `json:"cpu_total"`
		NVMe     float64 `json:"nvme"`
	} `json:"memory_gb"`

	// BandwidthGBps maps interconnect name to [avg, p90, peak].
	BandwidthGBps map[string][3]float64 `json:"bandwidth_gbps"`
}

// Summary digests the result.
func (r *Result) Summary() Summary {
	s := Summary{
		Config:      r.Config.Name(),
		Nodes:       r.Config.Nodes,
		ModelB:      r.Config.Model.ParamsB(),
		Layers:      r.Config.Model.Layers,
		BatchPerGPU: r.Config.BatchPerGPU,
		IterSec:     r.IterTime.ToSeconds(),
		TFLOPs:      r.AttainedTFLOPs,
	}
	s.MemoryGB.PerGPU = r.Memory.PerGPU / 1e9
	s.MemoryGB.GPUTotal = r.Memory.GPUTotal / 1e9
	s.MemoryGB.CPUTotal = r.Memory.CPUTotal / 1e9
	s.MemoryGB.NVMe = r.Memory.NVMe / 1e9
	s.BandwidthGBps = make(map[string][3]float64)
	for _, class := range fabric.MeasuredClasses() {
		st := r.Stats[class]
		s.BandwidthGBps[class.String()] = [3]float64{st.Avg / 1e9, st.P90 / 1e9, st.Peak / 1e9}
	}
	return s
}

// WriteJSON writes the indented JSON summary.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Summary())
}

// WriteSummariesJSON writes a JSON array of run summaries.
func WriteSummariesJSON(w io.Writer, results []*Result) error {
	out := make([]Summary, len(results))
	for i, r := range results {
		out[i] = r.Summary()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
