package train

import (
	"fmt"

	"llmbw/internal/collective"
	"llmbw/internal/compute"
	"llmbw/internal/fabric"
	"llmbw/internal/sim"
	"llmbw/internal/telemetry"
	"llmbw/internal/topology"
)

// runDC executes a training configuration on a generated datacenter fabric.
// The model is deliberately coarser than the testbed runner: purpose-built
// homogeneous nodes, no offload or NVMe machinery, and the iteration reduced
// to its scale-determining skeleton — lockstep compute, the strategy's
// collectives over the whole fabric, and the optimizer step. What it adds is
// the part the testbed cannot show: every node runs as its own simulation
// process on its home shard, and with a hierarchical algorithm the
// cross-node legs are store-and-forward handoffs, so the -shards knob
// parallelizes the run instead of colocating it.
func runDC(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	prof := cfg.Profile()
	if !prof.Fits(cfg.Model, cfg.BatchPerGPU, topology.GPUsPerNode) {
		return nil, fmt.Errorf("train: %s cannot fit %s (%s)",
			cfg.Name(), cfg.Model, prof.Plan(cfg.Model, cfg.BatchPerGPU, topology.GPUsPerNode))
	}
	dcCfg, err := topology.ParseTopoSpec(cfg.Topo)
	if err != nil {
		return nil, err
	}
	dcCfg.Window = cfg.Window
	algo, err := collective.ParseAlgo(cfg.Algo)
	if err != nil {
		return nil, err
	}

	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	var sc *topology.DCShardedCluster
	if collective.EffectiveAlgo(algo) == collective.AlgoFlat {
		sc, err = topology.NewDCColocated(dcCfg, shards)
	} else {
		sc, err = topology.NewDCSharded(dcCfg, shards)
	}
	if err != nil {
		return nil, err
	}
	grp := collective.NewDCGroup(sc, algo)

	world := cfg.WorldSize()
	psi := float64(cfg.Model.Params())
	gradBytes, paramBytes := 2*psi, 2*psi
	gpu := compute.DefaultGPU()
	// Per-GPU compute per iteration; ZeRO-3 interleaves its gathers between
	// the forward and backward passes, split 1:2 as in the testbed model.
	flopsPerGPU := cfg.Model.IterationFLOPs(cfg.BatchPerGPU, world, prof.ActivationCkpt) / float64(world)
	computeT := gpu.KernelTime(flopsPerGPU)
	fwdT := gpu.KernelTime(flopsPerGPU / 3)
	bwdT := gpu.KernelTime(2 * flopsPerGPU / 3)
	adamFull := gpu.AdamTime(cfg.Model.Params())
	adamShard := gpu.AdamTime(cfg.Model.Params() / int64(world))

	// Every collective shape the iteration uses is compiled up front: replay
	// only reads the plan map, which keeps StartNode safe from every shard.
	var iterate func(p *sim.Proc, node int)
	switch cfg.Strategy {
	case DDP:
		grp.Precompile(collective.AllReduce, gradBytes)
		iterate = func(p *sim.Proc, node int) {
			p.Sleep(computeT)
			grp.RunNode(p, collective.AllReduce, gradBytes, node)
			p.Sleep(adamFull)
		}
	case ZeRO1, ZeRO2:
		grp.Precompile(collective.ReduceScatter, gradBytes)
		grp.Precompile(collective.AllGather, paramBytes)
		iterate = func(p *sim.Proc, node int) {
			p.Sleep(computeT)
			grp.RunNode(p, collective.ReduceScatter, gradBytes, node)
			p.Sleep(adamShard)
			grp.RunNode(p, collective.AllGather, paramBytes, node)
		}
	case ZeRO3:
		grp.Precompile(collective.AllGather, paramBytes)
		grp.Precompile(collective.ReduceScatter, gradBytes)
		iterate = func(p *sim.Proc, node int) {
			grp.RunNode(p, collective.AllGather, paramBytes, node)
			p.Sleep(fwdT)
			grp.RunNode(p, collective.AllGather, paramBytes, node)
			p.Sleep(bwdT)
			grp.RunNode(p, collective.ReduceScatter, gradBytes, node)
			p.Sleep(adamShard)
		}
	default:
		return nil, fmt.Errorf("train: %v is not supported on generated fabrics", cfg.Strategy)
	}

	// One trainer process per node, living on the node's shard. starts/ends
	// are indexed per node, so each shard writes only its own slots.
	starts := make([]sim.Time, cfg.Nodes)
	ends := make([]sim.Time, cfg.Nodes)
	for n := 0; n < cfg.Nodes; n++ {
		n := n
		sc.EngineOf(n).Go(fmt.Sprintf("dc-trainer-%d", n), func(p *sim.Proc) {
			for i := 0; i < cfg.Warmup; i++ {
				iterate(p, n)
			}
			starts[n] = p.Now()
			for i := 0; i < cfg.Iterations; i++ {
				iterate(p, n)
			}
			ends[n] = p.Now()
		})
	}
	sc.RunSim()
	if n := sc.Eng.LiveProcs(); n != 0 {
		return nil, fmt.Errorf("train: simulation deadlocked with %d live processes", n)
	}
	for _, g := range sc.Groups {
		g.Net.Quiesce()
	}

	res := &Result{Config: cfg, Profile: prof}
	res.MeasureStart = starts[0]
	res.MeasureEnd = ends[0]
	for _, e := range ends {
		if e > res.MeasureEnd {
			res.MeasureEnd = e
		}
	}
	res.Iterations = cfg.Iterations
	res.IterTime = (res.MeasureEnd - res.MeasureStart) / sim.Time(cfg.Iterations)
	res.ModelFLOPs = cfg.Model.IterationFLOPs(cfg.BatchPerGPU, world, prof.ActivationCkpt)
	if res.IterTime > 0 {
		res.AttainedTFLOPs = res.ModelFLOPs / res.IterTime.ToSeconds() / 1e12
	}
	res.Memory = prof.Plan(cfg.Model, cfg.BatchPerGPU, topology.GPUsPerNode)
	res.PeakGPUBytes = res.Memory.PerGPU
	res.Stats = make(map[fabric.Class]telemetry.Stats)
	res.Series = make(map[fabric.Class]telemetry.Series)
	for _, class := range fabric.MeasuredClasses() {
		s := sc.ClassSeries(class, 0, res.MeasureStart, res.MeasureEnd)
		res.Series[class] = s
		res.Stats[class] = s.Stats()
	}
	return res, nil
}
