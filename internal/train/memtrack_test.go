package train

import (
	"testing"

	"llmbw/internal/memory"
	"llmbw/internal/model"
)

// TestRuntimePeakMatchesPlan: the observed per-GPU peak must agree with the
// analytic plan that sized the model (within tolerance: the plan charges all
// activations at once, the runtime frees them through backward).
func TestRuntimePeakMatchesPlan(t *testing.T) {
	for _, s := range []Strategy{DDP, Megatron, ZeRO1, ZeRO2, ZeRO3} {
		cfg := Config{Strategy: s}
		cfg.Model = model.NewGPT(cfg.Profile().MaxLayers(model.DefaultBatchSize, 4))
		cfg.Iterations = 1
		cfg.Warmup = 1
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		plan := res.Memory.PerGPU
		peak := res.PeakGPUBytes
		if peak <= 0 {
			t.Errorf("%v: no runtime peak recorded", s)
			continue
		}
		if peak > plan*1.02 {
			t.Errorf("%v: runtime peak %.1f GB exceeds plan %.1f GB", s, peak/1e9, plan/1e9)
		}
		if peak < plan*0.80 {
			t.Errorf("%v: runtime peak %.1f GB far below plan %.1f GB (tracker missing allocations?)",
				s, peak/1e9, plan/1e9)
		}
	}
}

// TestRuntimePeakNeverExceedsGPU: the OOM invariant holds at every max-fit
// configuration (the tracker panics inside Run otherwise).
func TestRuntimePeakNeverExceedsGPU(t *testing.T) {
	for _, cfg := range []Config{
		{Strategy: ZeRO3, Nodes: 2},
		{Strategy: ZeRO2, Offload: memoryCPU()},
		{Strategy: ZeRO3, Offload: memoryNVMeOpt()},
	} {
		cfg.Model = model.NewGPT(cfg.Profile().MaxLayers(model.DefaultBatchSize, 4))
		cfg.Iterations = 1
		cfg.Warmup = 1
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		if res.PeakGPUBytes > memory.GPUMemBytes {
			t.Errorf("%s: peak %.1f GB exceeds the A100", cfg.Name(), res.PeakGPUBytes/1e9)
		}
	}
}

// TestMemTrackerInvariants covers the tracker's own guards.
func TestMemTrackerInvariants(t *testing.T) {
	m := &memTracker{name: "t"}
	m.alloc(10)
	m.free(4)
	m.alloc(2)
	if m.used != 8 || m.peak != 10 {
		t.Errorf("used=%v peak=%v", m.used, m.peak)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative alloc did not panic")
			}
		}()
		m.alloc(-1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("over-free did not panic")
			}
		}()
		m.free(1e12)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("OOM did not panic")
			}
		}()
		m2 := &memTracker{name: "oom"}
		m2.alloc(memory.GPUMemBytes + 1)
	}()
}
