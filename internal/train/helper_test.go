package train

import (
	"testing"

	"llmbw/internal/memory"
	"llmbw/internal/nvme"
)

// nvmeConfig fetches a named Fig 14 placement for tests.
func nvmeConfig(t *testing.T, name string) nvme.Placement {
	t.Helper()
	p, err := nvme.ConfigByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFig14PlacementOrdering reproduces Table VI's qualitative findings:
// D > C (no-RAID local beats socket-spanning RAID at two drives),
// F ≈ G > E (per-socket volumes beat one spanning RAID at four drives),
// and quad-drive beats dual-drive.
func TestFig14PlacementOrdering(t *testing.T) {
	g := maxFit(Config{Strategy: ZeRO3, Offload: memory.NVMeOptimizer})
	tput := map[string]float64{}
	for _, name := range []string{"A", "B", "C", "D", "E", "F", "G"} {
		p := nvmeConfig(t, name)
		cfg := Config{Strategy: ZeRO3, Offload: memory.NVMeOptimizer, Model: g, Placement: &p}
		tput[name] = quickRun(t, cfg).AttainedTFLOPs
	}
	if tput["B"] <= tput["A"] {
		t.Errorf("B (%.1f) should beat A (%.1f): second drive adds bandwidth", tput["B"], tput["A"])
	}
	if tput["D"] <= tput["C"] {
		t.Errorf("D (%.1f) should beat C (%.1f): spanning RAID pays xGMI", tput["D"], tput["C"])
	}
	if tput["F"] <= tput["E"] || tput["G"] <= tput["E"] {
		t.Errorf("F (%.1f) and G (%.1f) should beat E (%.1f)", tput["F"], tput["G"], tput["E"])
	}
	if tput["G"] <= tput["B"] {
		t.Errorf("G (%.1f) should beat B (%.1f): double the drives", tput["G"], tput["B"])
	}
	// Paper: F and G within a few percent of each other.
	if r := tput["F"] / tput["G"]; r < 0.9 || r > 1.1 {
		t.Errorf("F/G = %.2f, paper reports near parity (64.61 vs 65.16)", r)
	}
}
