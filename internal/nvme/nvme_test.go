package nvme

import (
	"math"
	"testing"

	"llmbw/internal/sim"
	"llmbw/internal/topology"
)

func clusterFor(p Placement) (*topology.Cluster, []*Volume) {
	cfg := topology.DefaultConfig(1)
	cfg.Drives = p.Drives
	cfg.Window = 100 * sim.Millisecond
	c := topology.New(cfg)
	return c, p.Build(c)
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWriteBurstUsesCacheThenNAND(t *testing.T) {
	c, vols := clusterFor(ConfigA())
	v := vols[0]
	var doneAt sim.Time
	// 10 GB write from the drive's own socket: 2 GB at PCIe 16 GB/s
	// (0.125 s), 8 GB at the sustained NAND rate.
	v.IO(1, 10e9, true, func() { doneAt = c.Eng.Now() })
	c.Eng.Run()
	want := 2.0/16 + 8e9/SustainedBW
	if !almost(doneAt.ToSeconds(), want, 0.01) {
		t.Errorf("10 GB write took %v, want ~%.3fs", doneAt, want)
	}
}

func TestReadSkipsCache(t *testing.T) {
	c, vols := clusterFor(ConfigA())
	var doneAt sim.Time
	vols[0].IO(1, SustainedBW, false, func() { doneAt = c.Eng.Now() })
	c.Eng.Run()
	if !almost(doneAt.ToSeconds(), 1.0, 0.01) {
		t.Errorf("read of one NAND-second took %v, want ~1s", doneAt)
	}
}

func TestCacheDrainsWhileIdle(t *testing.T) {
	c, vols := clusterFor(ConfigA())
	d := vols[0].Drives[0]
	c.Eng.Go("w", func(p *sim.Proc) {
		d.Transfer(p, 1, 2e9, true) // fill the 2 GB cache
		// The 2 GB burst takes 0.125 s at PCIe speed, during which the
		// cache concurrently destaged 0.25 GB to NAND.
		if free := d.CacheFree(); !almost(free, 0.25e9, 5e7) {
			t.Errorf("cache free after fill = %v, want ~0.25e9", free)
		}
		p.Sleep(sim.Seconds(0.5)) // drains 1 GB more at 2 GB/s
		if free := d.CacheFree(); !almost(free, 1.25e9, 5e7) {
			t.Errorf("cache free after 0.5s idle = %v, want ~1.25e9", free)
		}
	})
	c.Eng.Run()
}

func TestCrossSocketIOSlower(t *testing.T) {
	// Same-socket read vs cross-socket read of the same size.
	cs, vs := clusterFor(ConfigA())
	var sameAt sim.Time
	vs[0].IO(1, 6.4e9, false, func() { sameAt = cs.Eng.Now() })
	cs.Eng.Run()

	cc, vc := clusterFor(ConfigA())
	var crossAt sim.Time
	vc[0].IO(0, 6.4e9, false, func() { crossAt = cc.Eng.Now() })
	cc.Eng.Run()
	ratio := crossAt.ToSeconds() / sameAt.ToSeconds()
	if !almost(ratio, 1/CrossNUMAEff, 0.05) {
		t.Errorf("cross/same = %.2f, want ~%.2f", ratio, 1/CrossNUMAEff)
	}
}

func TestRAID0Faster(t *testing.T) {
	ca, va := clusterFor(ConfigA())
	var aAt sim.Time
	va[0].IO(1, 12.8e9, false, func() { aAt = ca.Eng.Now() })
	ca.Eng.Run()

	cb, vb := clusterFor(ConfigB())
	var bAt sim.Time
	vb[0].IO(1, 12.8e9, false, func() { bAt = cb.Eng.Now() })
	cb.Eng.Run()
	if ratio := aAt.ToSeconds() / bAt.ToSeconds(); !almost(ratio, 2, 0.1) {
		t.Errorf("RAID0 speedup = %.2f, want ~2x", ratio)
	}
}

func TestSpanningRAIDPaysNUMAPenalty(t *testing.T) {
	// Config C (RAID0 across sockets) should be slower than Config B
	// (RAID0 on one socket) for a same-socket-1 issuer, because half the
	// stripes land on the remote socket.
	cb, vb := clusterFor(ConfigB())
	var bAt sim.Time
	vb[0].IO(1, 12.8e9, false, func() { bAt = cb.Eng.Now() })
	cb.Eng.Run()

	cc, vc := clusterFor(ConfigC())
	var cAt sim.Time
	vc[0].IO(1, 12.8e9, false, func() { cAt = cc.Eng.Now() })
	cc.Eng.Run()
	if cAt <= bAt {
		t.Errorf("spanning RAID (%v) should be slower than local RAID (%v)", cAt, bAt)
	}
}

func TestSpanningRAIDTouchesXGMI(t *testing.T) {
	cc, vc := clusterFor(ConfigC())
	vc[0].IO(1, 12.8e9, false, func() {})
	cc.Eng.Run()
	cc.Net.Quiesce()
	if cc.XGMILink(0).Counter().Total() == 0 {
		t.Error("socket-spanning RAID produced no xGMI traffic")
	}
	cb, vb := clusterFor(ConfigB())
	vb[0].IO(1, 12.8e9, false, func() {})
	cb.Eng.Run()
	cb.Net.Quiesce()
	if cb.XGMILink(0).Counter().Total() != 0 {
		t.Error("local RAID should produce no xGMI traffic")
	}
}

func TestSustainedReadEstimate(t *testing.T) {
	_, vols := clusterFor(ConfigC())
	v := vols[0]
	want := SustainedBW + CrossNUMAEff*SustainedBW
	if got := v.SustainedRead(1); !almost(got, want, 1) {
		t.Errorf("SustainedRead = %v, want %v", got, want)
	}
}

func TestVolumeCapacity(t *testing.T) {
	_, vols := clusterFor(ConfigB())
	if got := vols[0].Capacity(); got != 2*CapacityBytes {
		t.Errorf("capacity = %v, want %v", got, 2*CapacityBytes)
	}
}

func TestAllConfigsValid(t *testing.T) {
	cfgs := AllConfigs()
	if len(cfgs) != 7 {
		t.Fatalf("got %d configs, want 7 (A-G)", len(cfgs))
	}
	names := "ABCDEFG"
	for i, p := range cfgs {
		if p.Name != string(names[i]) {
			t.Errorf("config %d named %q", i, p.Name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("config %s invalid: %v", p.Name, err)
		}
	}
}

func TestConfigDriveCounts(t *testing.T) {
	wantDrives := map[string]int{"A": 1, "B": 2, "C": 2, "D": 2, "E": 4, "F": 4, "G": 4}
	wantVols := map[string]int{"A": 1, "B": 1, "C": 1, "D": 2, "E": 1, "F": 2, "G": 4}
	for _, p := range AllConfigs() {
		if len(p.Drives) != wantDrives[p.Name] {
			t.Errorf("config %s has %d drives, want %d", p.Name, len(p.Drives), wantDrives[p.Name])
		}
		if len(p.Volumes) != wantVols[p.Name] {
			t.Errorf("config %s has %d volumes, want %d", p.Name, len(p.Volumes), wantVols[p.Name])
		}
	}
}

func TestTopologyAwareMappingsAreLocal(t *testing.T) {
	// In configs D, F, G every rank's volume must be entirely on the
	// rank's socket — the paper's recommended topology-aware mapping.
	for _, p := range []Placement{ConfigD(), ConfigF(), ConfigG()} {
		for rank, vi := range p.RankVol {
			socket := rank / 2
			for _, di := range p.Volumes[vi] {
				if p.Drives[di].Socket != socket {
					t.Errorf("config %s rank %d (socket %d) maps to drive on socket %d",
						p.Name, rank, socket, p.Drives[di].Socket)
				}
			}
		}
	}
}

func TestConfigByName(t *testing.T) {
	p, err := ConfigByName("E")
	if err != nil || p.Name != "E" {
		t.Errorf("ConfigByName(E) = %v, %v", p.Name, err)
	}
	if _, err := ConfigByName("Z"); err == nil {
		t.Error("unknown config accepted")
	}
}

func TestValidateRejectsBadPlacements(t *testing.T) {
	bad := []Placement{
		{Name: "no-ranks", Drives: []topology.DriveSpec{drive(0, 0)}, Volumes: [][]int{{0}}, RankVol: []int{0}},
		{Name: "empty-vol", Drives: []topology.DriveSpec{drive(0, 0)}, Volumes: [][]int{{}}, RankVol: []int{0, 0, 0, 0}},
		{Name: "oob-drive", Drives: []topology.DriveSpec{drive(0, 0)}, Volumes: [][]int{{3}}, RankVol: []int{0, 0, 0, 0}},
		{Name: "dup-drive", Drives: []topology.DriveSpec{drive(0, 0)}, Volumes: [][]int{{0}, {0}}, RankVol: []int{0, 0, 0, 0}},
		{Name: "oob-vol", Drives: []topology.DriveSpec{drive(0, 0)}, Volumes: [][]int{{0}}, RankVol: []int{0, 0, 0, 5}},
	}
	for _, p := range bad {
		if p.Validate() == nil {
			t.Errorf("placement %s accepted", p.Name)
		}
	}
}

func TestNegativeIOPanics(t *testing.T) {
	_, vols := clusterFor(ConfigA())
	defer func() {
		if recover() == nil {
			t.Error("negative IO did not panic")
		}
	}()
	vols[0].IO(1, -1, true, nil)
}

func TestPeakExceedsSustainedInTelemetry(t *testing.T) {
	// The paper's Sec V-B3 signature: PCIe-NVMe shows short bursts near
	// link speed and a much lower average.
	c, vols := clusterFor(ConfigA())
	d := vols[0].Drives[0]
	c.Eng.Go("w", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			d.Transfer(p, 1, 3e9, true)
			p.Sleep(2 * sim.Second) // idle gap: cache partially drains
		}
	})
	end := c.Eng.Run()
	c.Net.Quiesce()
	st := d.pcie.Counter().Stats(end)
	if st.Peak < 3*st.Avg {
		t.Errorf("peak (%v) should dwarf average (%v) for bursty NVMe traffic", st.Peak, st.Avg)
	}
	if st.Peak < 10e9 {
		t.Errorf("peak = %v, want near PCIe speed while cache absorbs", st.Peak)
	}
}
