package nvme

import (
	"fmt"

	"llmbw/internal/topology"
)

// Placement is one of the paper's Fig 14 storage layouts: which drives are
// installed on which socket, how they are grouped into volumes (RAID0 via
// mdadm, or raw), and which volume each GPU rank's DeepSpeed aio path maps
// to (the paper uses UNIX soft links to spread ranks across volumes).
type Placement struct {
	Name    string
	Drives  []topology.DriveSpec
	Volumes [][]int // drive indices per volume
	RankVol []int   // volume index for each of the 4 GPU ranks
}

// Validate reports structural problems.
func (p Placement) Validate() error {
	if len(p.RankVol) != topology.GPUsPerNode {
		return fmt.Errorf("nvme: placement %s maps %d ranks, want %d", p.Name, len(p.RankVol), topology.GPUsPerNode)
	}
	used := make(map[int]bool)
	for vi, vol := range p.Volumes {
		if len(vol) == 0 {
			return fmt.Errorf("nvme: placement %s volume %d empty", p.Name, vi)
		}
		for _, di := range vol {
			if di < 0 || di >= len(p.Drives) {
				return fmt.Errorf("nvme: placement %s volume %d references drive %d", p.Name, vi, di)
			}
			if used[di] {
				return fmt.Errorf("nvme: placement %s drive %d in multiple volumes", p.Name, di)
			}
			used[di] = true
		}
	}
	for r, v := range p.RankVol {
		if v < 0 || v >= len(p.Volumes) {
			return fmt.Errorf("nvme: placement %s rank %d maps to missing volume %d", p.Name, r, v)
		}
	}
	return nil
}

// Build instantiates the drives and volumes on a cluster whose topology was
// created with this placement's drive specs.
func (p Placement) Build(c *topology.Cluster) []*Volume {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	drives := make([]*Drive, len(p.Drives))
	for i, spec := range p.Drives {
		drives[i] = NewDrive(c, spec)
	}
	vols := make([]*Volume, len(p.Volumes))
	for vi, members := range p.Volumes {
		v := &Volume{Name: fmt.Sprintf("%s/vol%d", p.Name, vi)}
		for _, di := range members {
			v.Drives = append(v.Drives, drives[di])
		}
		vols[vi] = v
	}
	return vols
}

// VolumeForRank returns the volume a rank writes to, given built volumes.
func (p Placement) VolumeForRank(vols []*Volume, rank int) *Volume {
	return vols[p.RankVol[rank]]
}

func drive(socket, slot int) topology.DriveSpec {
	return topology.DriveSpec{Node: 0, Socket: socket, Slot: slot}
}

// The seven configurations of Fig 14. Ranks 0,1 are the GPUs on socket 0;
// ranks 2,3 on socket 1.

// ConfigA: one drive on CPU #1; every rank shares it.
func ConfigA() Placement {
	return Placement{
		Name:    "A",
		Drives:  []topology.DriveSpec{drive(1, 0)},
		Volumes: [][]int{{0}},
		RankVol: []int{0, 0, 0, 0},
	}
}

// ConfigB: two drives on CPU #1 in RAID0 (the paper's default scratch).
func ConfigB() Placement {
	return Placement{
		Name:    "B",
		Drives:  []topology.DriveSpec{drive(1, 0), drive(1, 1)},
		Volumes: [][]int{{0, 1}},
		RankVol: []int{0, 0, 0, 0},
	}
}

// ConfigC: two drives, one per CPU, in a single RAID0 spanning sockets.
func ConfigC() Placement {
	return Placement{
		Name:    "C",
		Drives:  []topology.DriveSpec{drive(0, 0), drive(1, 0)},
		Volumes: [][]int{{0, 1}},
		RankVol: []int{0, 0, 0, 0},
	}
}

// ConfigD: two drives, one per CPU, no RAID; ranks use their local drive.
func ConfigD() Placement {
	return Placement{
		Name:    "D",
		Drives:  []topology.DriveSpec{drive(0, 0), drive(1, 0)},
		Volumes: [][]int{{0}, {1}},
		RankVol: []int{0, 0, 1, 1},
	}
}

// ConfigE: four drives (two per CPU) in one RAID0 spanning sockets.
func ConfigE() Placement {
	return Placement{
		Name: "E",
		Drives: []topology.DriveSpec{
			drive(0, 0), drive(0, 1), drive(1, 0), drive(1, 1),
		},
		Volumes: [][]int{{0, 1, 2, 3}},
		RankVol: []int{0, 0, 0, 0},
	}
}

// ConfigF: four drives, two RAID0 volumes (one per CPU), ranks local.
func ConfigF() Placement {
	return Placement{
		Name: "F",
		Drives: []topology.DriveSpec{
			drive(0, 0), drive(0, 1), drive(1, 0), drive(1, 1),
		},
		Volumes: [][]int{{0, 1}, {2, 3}},
		RankVol: []int{0, 0, 1, 1},
	}
}

// ConfigG: four drives, no RAID; each rank gets its own local drive.
func ConfigG() Placement {
	return Placement{
		Name: "G",
		Drives: []topology.DriveSpec{
			drive(0, 0), drive(0, 1), drive(1, 0), drive(1, 1),
		},
		Volumes: [][]int{{0}, {1}, {2}, {3}},
		RankVol: []int{0, 1, 2, 3},
	}
}

// ConfigH is the paper's closing recommendation taken literally: populate
// all eight NVMe slots (four per socket) and give each GPU rank a local
// two-drive RAID0 volume. Not measured in the paper ("if all eight slots are
// populated, the throughput will potentially be comparable to CPU offload").
func ConfigH() Placement {
	return Placement{
		Name: "H",
		Drives: []topology.DriveSpec{
			drive(0, 0), drive(0, 1), drive(0, 2), drive(0, 3),
			drive(1, 0), drive(1, 1), drive(1, 2), drive(1, 3),
		},
		Volumes: [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}},
		RankVol: []int{0, 1, 2, 3},
	}
}

// AllConfigs returns A–G in order.
func AllConfigs() []Placement {
	return []Placement{ConfigA(), ConfigB(), ConfigC(), ConfigD(), ConfigE(), ConfigF(), ConfigG()}
}

// ConfigByName returns a named placement (A-G, plus the extension H).
func ConfigByName(name string) (Placement, error) {
	for _, p := range append(AllConfigs(), ConfigH()) {
		if p.Name == name {
			return p, nil
		}
	}
	return Placement{}, fmt.Errorf("nvme: unknown placement %q", name)
}
