// Package nvme models the Intel D7-P5600 scratch drives and the storage
// layouts of the paper's Section V: single drives, mdadm RAID0 volumes, and
// the seven placement configurations (A–G) of Fig 14 that map each GPU rank
// to a disk or RAID0 volume.
//
// The drive model captures the two behaviours the paper highlights:
//
//  1. A DRAM write cache absorbs bursts at PCIe speed until it fills, after
//     which throughput collapses to the sustained NAND rate — producing the
//     "abrupt peak, low average" PCIe-NVMe utilization of Section V-B3.
//  2. I/O issued from a CPU socket other than the drive's host socket pays a
//     cross-NUMA efficiency penalty on top of the xGMI/crossbar path,
//     matching Table VI's finding that RAID0 volumes spanning sockets lose
//     throughput to xGMI traffic.
package nvme

import (
	"fmt"

	"llmbw/internal/fabric"
	"llmbw/internal/sim"
	"llmbw/internal/topology"
)

// Calibrated drive characteristics (Intel D7-P5600 3.2 TB under DeepSpeed's
// mixed sequential read/write optimizer traffic).
const (
	GB = 1e9
	// SustainedBW is the NAND-limited combined read+write rate per drive
	// under DeepSpeed's mixed sequential optimizer traffic (the P5600 is
	// specified at 7 GB/s sequential read, 4.3 GB/s sequential write).
	SustainedBW = 4.5 * GB
	// CacheBytes is the effective DRAM write-cache window per drive.
	CacheBytes = 2 * GB
	// CacheDrainBW is how fast the cache destages to NAND while idle.
	CacheDrainBW = 2.0 * GB
	// CrossNUMAEff is the single-stream efficiency of I/O issued from the
	// remote socket (cross-NUMA aio submission + data placement penalty).
	CrossNUMAEff = 0.65
	// CapacityBytes is the usable capacity per drive.
	CapacityBytes = 3200 * GB
)

// Drive is one NVMe device: its PCIe x4 link plus a media (NAND) resource.
type Drive struct {
	Spec  topology.DriveSpec
	pcie  *fabric.Link
	media *fabric.Link

	cacheFree float64
	lastDrain sim.Time
	cluster   *topology.Cluster
}

// NewDrive attaches a drive model to a cluster slot declared in the
// topology config.
func NewDrive(c *topology.Cluster, spec topology.DriveSpec) *Drive {
	media := fabric.NewLink(
		fmt.Sprintf("n%d/nvme-media%d.%d", spec.Node, spec.Socket, spec.Slot),
		fabric.NVMeDev, spec.Node, SustainedBW, c.Cfg.Window)
	return &Drive{
		Spec:      spec,
		pcie:      c.NVMeLink(spec),
		media:     media,
		cacheFree: CacheBytes,
		cluster:   c,
	}
}

// drainCache credits idle-time destaging to the cache.
func (d *Drive) drainCache() {
	now := d.cluster.Eng.Now()
	dt := (now - d.lastDrain).ToSeconds()
	d.lastDrain = now
	d.cacheFree += dt * CacheDrainBW
	if d.cacheFree > CacheBytes {
		d.cacheFree = CacheBytes
	}
}

// CacheFree returns the current write-cache headroom (after drain accrual).
func (d *Drive) CacheFree() float64 {
	d.drainCache()
	return d.cacheFree
}

// IO starts a transfer of the given bytes between the drive and the DRAM of
// the issuing socket, invoking onDone when complete. Writes consume cache
// headroom: the cached portion moves at PCIe speed (no media constraint),
// the remainder at the sustained NAND rate. Reads always pay the media rate.
// Cross-socket paths additionally cap the sustained portion at CrossNUMAEff
// of the media rate.
func (d *Drive) IO(socket int, bytes float64, write bool, onDone func()) {
	if bytes < 0 {
		panic("nvme: negative IO size")
	}
	net := d.cluster.Net
	route := d.cluster.CPUToNVMe(d.Spec.Node, socket, d.Spec)
	cross := socket != d.Spec.Socket

	burst := 0.0
	if write {
		d.drainCache()
		burst = bytes
		if burst > d.cacheFree {
			burst = d.cacheFree
		}
		d.cacheFree -= burst
	}
	sustained := bytes - burst

	startSustained := func() {
		if sustained <= 0 {
			d.cluster.Eng.Schedule(0, onDone)
			return
		}
		path := append(append([]*fabric.Link{}, route.Links...), d.media)
		if cross {
			// Cross-NUMA submission wastes media time (remote aio
			// completion paths, misaligned stripes): occupy the media
			// engine with the extra work so the penalty binds even when
			// several ranks share the drive.
			net.StartFlow(&fabric.Flow{
				Name:  fmt.Sprintf("nvme-numa-overhead/%s", d.media.Name),
				Path:  []*fabric.Link{d.media},
				Bytes: sustained * (1/CrossNUMAEff - 1),
			}, nil)
		}
		net.StartFlow(&fabric.Flow{
			Name:  fmt.Sprintf("nvme-io/%s", d.media.Name),
			Path:  path,
			Bytes: sustained,
		}, onDone)
	}
	if burst > 0 {
		net.StartFlow(&fabric.Flow{
			Name:  fmt.Sprintf("nvme-burst/%s", d.media.Name),
			Path:  route.Links,
			Bytes: burst,
		}, startSustained)
		return
	}
	startSustained()
}

// Transfer is the blocking form of IO for simulation processes.
func (d *Drive) Transfer(p *sim.Proc, socket int, bytes float64, write bool) {
	p.Await(func(resume func()) { d.IO(socket, bytes, write, resume) })
}

// MediaLink exposes the media resource (for telemetry assertions).
func (d *Drive) MediaLink() *fabric.Link { return d.media }

// Volume is a storage target a rank writes to: one drive or an mdadm RAID0
// stripe set. RAID0 splits every transfer evenly across members, which is
// exactly what makes socket-spanning volumes costly (half the stripes cross
// xGMI regardless of the issuing socket).
type Volume struct {
	Name   string
	Drives []*Drive
}

// IO stripes a transfer across the member drives and completes when the
// slowest member finishes.
func (v *Volume) IO(socket int, bytes float64, write bool, onDone func()) {
	if len(v.Drives) == 0 {
		panic("nvme: empty volume")
	}
	per := bytes / float64(len(v.Drives))
	remaining := len(v.Drives)
	for _, d := range v.Drives {
		d.IO(socket, per, write, func() {
			remaining--
			if remaining == 0 {
				onDone()
			}
		})
	}
}

// Transfer is the blocking form of IO.
func (v *Volume) Transfer(p *sim.Proc, socket int, bytes float64, write bool) {
	p.Await(func(resume func()) { v.IO(socket, bytes, write, resume) })
}

// SustainedRead returns the volume's aggregate sustained throughput as seen
// from the given socket (used for quick capacity estimates in reports).
func (v *Volume) SustainedRead(socket int) float64 {
	total := 0.0
	for _, d := range v.Drives {
		if d.Spec.Socket == socket {
			total += SustainedBW
		} else {
			total += CrossNUMAEff * SustainedBW
		}
	}
	return total
}

// Capacity returns total usable bytes.
func (v *Volume) Capacity() float64 { return CapacityBytes * float64(len(v.Drives)) }
