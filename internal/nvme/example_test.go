package nvme_test

import (
	"fmt"

	"llmbw/internal/nvme"
	"llmbw/internal/sim"
	"llmbw/internal/topology"
)

// Write 10 GB to the paper's dual-drive RAID0 scratch volume: the first
// gigabytes burst into the drives' DRAM caches at PCIe speed, the rest
// drain at the sustained NAND rate.
func Example() {
	cfg := topology.DefaultConfig(1)
	placement := nvme.ConfigB() // 2 drives on CPU #1, RAID0
	cfg.Drives = placement.Drives
	cluster := topology.New(cfg)
	vols := placement.Build(cluster)

	cluster.Eng.Go("writer", func(p *sim.Proc) {
		vols[0].Transfer(p, 1, 10e9, true)
		fmt.Printf("10 GB write finished at %v\n", p.Now())
	})
	cluster.Eng.Run()
	// 4 GB of cache burst at 2×16 GB/s, 6 GB sustained at 2×4.5 GB/s.
	// Output:
	// 10 GB write finished at 791.667ms
}
