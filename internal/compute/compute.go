// Package compute provides the analytical execution-time models for the
// simulated devices: Tensor-Core GEMM timing on the A100 GPUs, fused-Adam
// optimizer steps on GPU (HBM-bandwidth-bound), and the DeepSpeed CPUAdam
// optimizer used by ZeRO-Offload (throughput-bound on the EPYC sockets).
//
// The paper's attained-TFLOP/s numbers come from the DeepSpeed FLOPS
// profiler: executed FLOPs divided by iteration wall time. Our GPU model
// produces the wall time; the FLOPs come from internal/model. The efficiency
// curve eff(w) = MaxEff·w/(w+Knee) captures that small per-kernel workloads
// (e.g. tensor-parallel slices of an h=2048 GEMM) achieve a lower fraction
// of peak — the mechanism behind Megatron-LM's lower attained throughput.
package compute

import (
	"fmt"

	"llmbw/internal/sim"
)

// A100 characteristics and calibrated efficiency parameters.
const (
	// A100PeakFLOPs is dense FP16 Tensor-Core peak.
	A100PeakFLOPs = 312e12
	// A100HBMBW is HBM2 bandwidth (bytes/s).
	A100HBMBW = 1.55e12
	// DefaultMaxEff is the asymptotic fraction of peak achieved by large
	// GEMMs at hidden size 2048 with the paper's PyTorch/CUDA stack,
	// calibrated so DDP on the 1.4 B model attains ≈ 440 TFLOP/s across
	// four GPUs (paper Fig 7-a: 438).
	DefaultMaxEff = 0.45
	// DefaultEffKnee is the per-kernel FLOP count at which efficiency
	// reaches half of MaxEff; one full forward layer (~4.2e11 FLOPs at
	// b=16, s=256, h=2048) then runs at ≈ 0.38 of peak.
	DefaultEffKnee = 7.7e10
	// GPUAdamBytesPerParam: fused Adam reads p32/m/v/grad and writes
	// p32/m/v/p16 — ~40 bytes of HBM traffic per parameter.
	GPUAdamBytesPerParam = 40.0
	// CPUAdamParamsPerSec is DeepSpeed's AVX-optimized CPUAdam throughput
	// per EPYC 7763 socket, calibrated against the ZeRO-Offload
	// consolidation throughput (paper Fig 11-a).
	CPUAdamParamsPerSec = 1.5e9
	// SustainedBWEff is the sustained fraction of peak HBM bandwidth a
	// streaming kernel attains (the gap between the datasheet number and
	// what a real weight/KV sweep achieves). Memory-bound inference decode
	// runs at this, not at peak.
	SustainedBWEff = 0.82
)

// GPUModel converts FLOP counts into kernel times.
type GPUModel struct {
	PeakFLOPs float64
	MaxEff    float64
	EffKnee   float64
	HBMBW     float64
	// LaunchOverhead is fixed per-kernel-span overhead (launch, sync).
	LaunchOverhead sim.Time
}

// DefaultGPU returns the calibrated A100 model.
func DefaultGPU() GPUModel {
	return GPUModel{
		PeakFLOPs:      A100PeakFLOPs,
		MaxEff:         DefaultMaxEff,
		EffKnee:        DefaultEffKnee,
		HBMBW:          A100HBMBW,
		LaunchOverhead: 20 * sim.Microsecond,
	}
}

// Efficiency returns the attained fraction of peak for a kernel span of the
// given FLOPs.
func (g GPUModel) Efficiency(flops float64) float64 {
	if flops <= 0 {
		return 0
	}
	return g.MaxEff * flops / (flops + g.EffKnee)
}

// KernelTime returns wall time for a compute span of the given FLOPs.
func (g GPUModel) KernelTime(flops float64) sim.Time {
	if flops < 0 {
		panic(fmt.Sprintf("compute: negative flops %g", flops))
	}
	if flops == 0 {
		return g.LaunchOverhead
	}
	sec := flops / (g.PeakFLOPs * g.Efficiency(flops))
	return sim.Seconds(sec) + g.LaunchOverhead
}

// SustainedHBMBW returns the sustained HBM streaming bandwidth (bytes/s).
func (g GPUModel) SustainedHBMBW() float64 { return g.HBMBW * SustainedBWEff }

// RooflineTime returns wall time for a kernel that executes flops and
// streams bytes through HBM: the slower of the compute-limited time (at the
// GEMM efficiency curve) and the memory-limited time (at sustained
// bandwidth), plus launch overhead. This is the serving-side timing model:
// prefill lands on the compute side of the roofline, single-token decode on
// the memory side.
func (g GPUModel) RooflineTime(flops, bytes float64) sim.Time {
	if flops < 0 || bytes < 0 {
		panic(fmt.Sprintf("compute: negative roofline operands %g/%g", flops, bytes))
	}
	var sec float64
	if flops > 0 {
		sec = flops / (g.PeakFLOPs * g.Efficiency(flops))
	}
	if bytes > 0 {
		if mem := bytes / g.SustainedHBMBW(); mem > sec {
			sec = mem
		}
	}
	return sim.Seconds(sec) + g.LaunchOverhead
}

// AdamTime returns the fused-Adam optimizer step time for the given
// parameter count (HBM-bandwidth-bound).
func (g GPUModel) AdamTime(params int64) sim.Time {
	if params <= 0 {
		return 0
	}
	sec := float64(params) * GPUAdamBytesPerParam / g.HBMBW
	return sim.Seconds(sec) + g.LaunchOverhead
}

// CPUModel is the host-side optimizer model. A node has two sockets; each
// runs CPUAdam over the partitions owned by the GPUs attached to it.
type CPUModel struct {
	AdamParamsPerSec float64 // per socket
}

// DefaultCPU returns the calibrated EPYC 7763 model.
func DefaultCPU() CPUModel {
	return CPUModel{AdamParamsPerSec: CPUAdamParamsPerSec}
}

// AdamTime returns the CPUAdam step time for params parameters on one
// socket, given how many GPU ranks share that socket's cores concurrently.
func (c CPUModel) AdamTime(params int64, ranksPerSocket int) sim.Time {
	if params <= 0 {
		return 0
	}
	if ranksPerSocket < 1 {
		ranksPerSocket = 1
	}
	rate := c.AdamParamsPerSec / float64(ranksPerSocket)
	return sim.Seconds(float64(params) / rate)
}

// AdamDRAMTraffic returns the host-memory bytes touched by a CPUAdam step:
// read p32/m/v/grad, write p32/m/v/p16 — ≈ 44 bytes per parameter.
func AdamDRAMTraffic(params int64) float64 { return 44 * float64(params) }
