package compute

import (
	"testing"
	"testing/quick"

	"llmbw/internal/model"
	"llmbw/internal/sim"
)

func TestEfficiencyCurveShape(t *testing.T) {
	g := DefaultGPU()
	if e := g.Efficiency(0); e != 0 {
		t.Errorf("eff(0) = %v, want 0", e)
	}
	small, large := g.Efficiency(1e9), g.Efficiency(1e13)
	if small >= large {
		t.Errorf("efficiency not increasing: %v >= %v", small, large)
	}
	if large > g.MaxEff {
		t.Errorf("eff %v exceeds max %v", large, g.MaxEff)
	}
	// Full forward layer at the paper's shapes should land near 0.38.
	layer := model.NewGPT(1).LayerForwardFLOPs(16)
	if e := g.Efficiency(layer); e < 0.3 || e > 0.45 {
		t.Errorf("layer efficiency = %v, want ~0.38", e)
	}
}

func TestTensorParallelSlicesLessEfficient(t *testing.T) {
	g := DefaultGPU()
	layer := model.NewGPT(1).LayerForwardFLOPs(16)
	full := g.Efficiency(layer)
	slice := g.Efficiency(layer / 8)
	if slice >= full*0.8 {
		t.Errorf("TP=8 slice eff %v not much below full %v — Megatron penalty missing", slice, full)
	}
}

func TestKernelTimeScalesWithFlops(t *testing.T) {
	g := DefaultGPU()
	t1 := g.KernelTime(1e12)
	t2 := g.KernelTime(2e12)
	if t2 <= t1 {
		t.Errorf("kernel time not increasing: %v <= %v", t1, t2)
	}
	if g.KernelTime(0) != g.LaunchOverhead {
		t.Error("zero-flop kernel should cost only launch overhead")
	}
}

func TestKernelTimePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative flops did not panic")
		}
	}()
	DefaultGPU().KernelTime(-1)
}

// The single-GPU attained throughput for a full DDP-style iteration should
// land in the paper's ballpark: 1.4 B model → ≈ 110 TFLOP/s per GPU.
func TestAttainedThroughputCalibration(t *testing.T) {
	g := DefaultGPU()
	gpt := model.NewGPT(25) // the DDP max-fit model
	fwd := float64(gpt.Layers)*gpt.LayerForwardFLOPs(16) + gpt.HeadForwardFLOPs(16)
	iterFlops := 3 * fwd
	var total sim.Time
	for i := 0; i < gpt.Layers; i++ {
		total += g.KernelTime(gpt.LayerForwardFLOPs(16))
		total += g.KernelTime(gpt.LayerBackwardFLOPs(16))
	}
	total += g.KernelTime(gpt.HeadForwardFLOPs(16))
	total += g.KernelTime(2 * gpt.HeadForwardFLOPs(16))
	total += g.AdamTime(gpt.Params())
	attained := iterFlops / total.ToSeconds() / 1e12
	if attained < 95 || attained > 130 {
		t.Errorf("attained = %.1f TFLOP/s per GPU, want ~110 (paper: 438/4)", attained)
	}
}

func TestGPUAdamIsMemoryBound(t *testing.T) {
	g := DefaultGPU()
	d := g.AdamTime(1.4e9)
	// 1.4e9 × 40 B / 1.55e12 B/s ≈ 36 ms.
	if d < 30*sim.Millisecond || d > 45*sim.Millisecond {
		t.Errorf("GPU Adam for 1.4B = %v, want ~36ms", d)
	}
	if g.AdamTime(0) != 0 {
		t.Error("zero params should cost nothing")
	}
}

func TestCPUAdamMuchSlowerThanGPU(t *testing.T) {
	c := DefaultCPU()
	g := DefaultGPU()
	cpu := c.AdamTime(1.4e9, 2)
	gpu := g.AdamTime(1.4e9)
	if cpu < 10*gpu {
		t.Errorf("CPU Adam (%v) should be far slower than GPU (%v)", cpu, gpu)
	}
}

func TestCPUAdamSharingSlowsDown(t *testing.T) {
	c := DefaultCPU()
	one := c.AdamTime(1e9, 1)
	two := c.AdamTime(1e9, 2)
	if diff := two - 2*one; diff < -2 || diff > 2 {
		t.Errorf("2 ranks per socket should halve throughput: %v vs %v", two, one)
	}
	if c.AdamTime(1e9, 0) != one {
		t.Error("ranksPerSocket<1 should clamp to 1")
	}
}

func TestAdamDRAMTraffic(t *testing.T) {
	if AdamDRAMTraffic(1e9) != 44e9 {
		t.Errorf("traffic = %v, want 44e9", AdamDRAMTraffic(1e9))
	}
}

// Property: KernelTime is monotone non-decreasing in FLOPs.
func TestKernelTimeMonotoneProperty(t *testing.T) {
	g := DefaultGPU()
	f := func(a, b uint32) bool {
		fa, fb := float64(a)*1e6, float64(b)*1e6
		if fa > fb {
			fa, fb = fb, fa
		}
		return g.KernelTime(fa) <= g.KernelTime(fb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
