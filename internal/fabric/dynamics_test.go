package fabric

import (
	"math/rand"
	"testing"
	"testing/quick"

	"llmbw/internal/sim"
)

// Property: under arbitrary mid-flight capacity changes, byte conservation
// holds — every flow eventually completes and telemetry equals the bytes
// injected.
func TestDynamicCapacityConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.New()
		net := NewNetwork(eng)
		l := NewLink("dyn", PCIeNVME, 0, 10e9, 0)
		var want float64
		done := 0
		flows := 1 + rng.Intn(6)
		for i := 0; i < flows; i++ {
			bytes := float64(1+rng.Intn(50)) * 1e8
			want += bytes
			at := sim.Time(rng.Intn(500)) * sim.Millisecond
			eng.ScheduleAt(at, func() {
				net.StartFlow(&Flow{Path: []*Link{l}, Bytes: bytes}, func() { done++ })
			})
		}
		// Random capacity churn.
		for i := 0; i < 5; i++ {
			at := sim.Time(rng.Intn(1000)) * sim.Millisecond
			c := float64(1+rng.Intn(20)) * 1e9
			eng.ScheduleAt(at, func() { net.SetCapacity(l, c) })
		}
		eng.Run()
		net.Quiesce()
		if done != flows {
			return false
		}
		got := l.Counter().Total()
		return got > want*0.999999 && got < want*1.000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// A capacity increase mid-flight speeds completion up.
func TestCapacityIncreaseSpeedsUp(t *testing.T) {
	run := func(boost bool) sim.Time {
		eng := sim.New()
		net := NewNetwork(eng)
		l := NewLink("l", RoCE, 0, 5e9, 0)
		var at sim.Time
		net.StartFlow(&Flow{Path: []*Link{l}, Bytes: 10e9}, func() { at = eng.Now() })
		if boost {
			eng.Schedule(sim.Second, func() { net.SetCapacity(l, 20e9) })
		}
		eng.Run()
		return at
	}
	slow, fast := run(false), run(true)
	if fast >= slow {
		t.Errorf("boost did not help: %v vs %v", fast, slow)
	}
	// 5 GB at 5 GB/s (1s) + 5 GB at 20 GB/s (0.25s) = 1.25s.
	if got := fast.ToSeconds(); got < 1.24 || got > 1.26 {
		t.Errorf("boosted completion = %v, want ~1.25s", fast)
	}
}
