package fabric_test

import (
	"fmt"

	"llmbw/internal/fabric"
	"llmbw/internal/sim"
)

// Two flows share a 10 GB/s link with max-min fairness: the short one
// finishes first and the long one picks up the freed bandwidth.
func Example() {
	eng := sim.New()
	net := fabric.NewNetwork(eng)
	link := fabric.NewLink("nvlink", fabric.NVLink, 0, 10e9, 0)
	net.StartFlow(&fabric.Flow{Name: "short", Path: []*fabric.Link{link}, Bytes: 1e9},
		func() { fmt.Printf("short done at %v\n", eng.Now()) })
	net.StartFlow(&fabric.Flow{Name: "long", Path: []*fabric.Link{link}, Bytes: 9e9},
		func() { fmt.Printf("long done at %v\n", eng.Now()) })
	eng.Run()
	// Output:
	// short done at 200.000ms
	// long done at 1.000s
}
