package fabric

import (
	"fmt"
	"testing"

	"llmbw/internal/sim"
)

// handoffRig is a two-partition fixture: one NIC-ish link per side, a
// handoff in each direction, and a completion log per side.
type handoffRig struct {
	se    *sim.ShardedEngine
	nets  [2]*Network
	links [2]*Link
	fwd   *Handoff // 0 -> 1
	rev   *Handoff // 1 -> 0
	logs  [2][]string
}

const handoffLat = 3 * sim.Microsecond

func newHandoffRig(shards int) *handoffRig {
	r := &handoffRig{se: sim.NewSharded(shards)}
	shardOf := func(side int) int {
		if shards > 1 {
			return side
		}
		return 0
	}
	for side := range r.nets {
		eng := r.se.Shard(shardOf(side))
		r.nets[side] = NewNetwork(eng)
		// The huge telemetry window keeps the counter to one bucket so the
		// steady-state allocation pin isn't confused by bucket growth.
		r.links[side] = NewLink(fmt.Sprintf("n%d/nic", side), RoCE, side, 10e9, sim.Time(1)<<40)
	}
	if shards > 1 {
		r.se.Connect(0, 1, handoffLat)
		r.se.Connect(1, 0, handoffLat)
	}
	r.fwd = NewHandoff(r.se, shardOf(0), shardOf(1), handoffLat, r.nets[0], r.nets[1])
	r.rev = NewHandoff(r.se, shardOf(1), shardOf(0), handoffLat, r.nets[1], r.nets[0])
	return r
}

func (r *handoffRig) logDone(side int, name string) func() {
	return func() {
		r.logs[side] = append(r.logs[side],
			fmt.Sprintf("%v %s", r.nets[side].eng.Now(), name))
	}
}

// TestHandoffLocalTiming pins the store-and-forward arithmetic on a plain
// single-shard engine: src drain + wire latency + dst drain.
func TestHandoffLocalTiming(t *testing.T) {
	r := newHandoffRig(1)
	defer r.se.Close()
	const bytes = 10e9 / 2 // half a second per side at 10 GB/s
	r.fwd.Send("x", bytes, []*Link{r.links[0]}, []*Link{r.links[1]}, r.logDone(1, "x"))
	end := r.se.Run()
	want := sim.Second/2 + handoffLat + sim.Second/2
	if end != want {
		t.Fatalf("transfer completed at %v, want %v", end, want)
	}
	if len(r.logs[1]) != 1 {
		t.Fatalf("completion log %v, want one entry", r.logs[1])
	}
}

// TestHandoffShardedMatchesSerial bounces pipelined ping-pong traffic across
// a two-shard boundary and requires the destination-side completion logs to
// be identical between the serial merge loop and parallel windows.
func TestHandoffShardedMatchesSerial(t *testing.T) {
	run := func(parallel bool) ([2][]string, sim.Time) {
		old := sim.Sharded
		sim.Sharded = parallel
		defer func() { sim.Sharded = old }()
		r := newHandoffRig(2)
		defer r.se.Close()
		// Each completion triggers the next hop back the other way. Two
		// chains keep both shards busy; each chain's hop counter is only
		// ever touched by that chain's strictly ordered callbacks, so the
		// chains may interleave across shards race-free.
		type chain struct {
			remaining int
			bytes     float64
		}
		var bounce func(c *chain, dstSide int, tag string) func()
		bounce = func(c *chain, dstSide int, tag string) func() {
			return func() {
				r.logDone(dstSide, tag)()
				if c.remaining <= 0 {
					return
				}
				c.remaining--
				back, backSide := r.rev, 0
				if dstSide == 0 {
					back, backSide = r.fwd, 1
				}
				back.Send(tag, c.bytes, []*Link{r.links[dstSide]}, []*Link{r.links[backSide]},
					bounce(c, backSide, tag))
			}
		}
		a := &chain{remaining: 10, bytes: 4e9}
		b := &chain{remaining: 10, bytes: 6e9}
		r.fwd.Send("a", a.bytes, []*Link{r.links[0]}, []*Link{r.links[1]}, bounce(a, 1, "a"))
		r.fwd.Send("b", b.bytes, []*Link{r.links[0]}, []*Link{r.links[1]}, bounce(b, 1, "b"))
		end := r.se.Run()
		return r.logs, end
	}
	serialLogs, serialEnd := run(false)
	parallelLogs, parallelEnd := run(true)
	if serialEnd != parallelEnd {
		t.Errorf("final time %v parallel vs %v serial", parallelEnd, serialEnd)
	}
	for side := range serialLogs {
		if fmt.Sprint(parallelLogs[side]) != fmt.Sprint(serialLogs[side]) {
			t.Errorf("side %d logs differ:\nparallel: %v\nserial:   %v",
				side, parallelLogs[side], serialLogs[side])
		}
	}
	if len(serialLogs[0])+len(serialLogs[1]) != 22 {
		t.Errorf("completions = %d+%d, want 22 total", len(serialLogs[0]), len(serialLogs[1]))
	}
}

// TestHandoffCapFencing checks the cached destination cap revalidates on the
// capacity epoch: after a mid-run SetCapacity the next transfer must run at
// the degraded rate without any explicit cache invalidation.
func TestHandoffCapFencing(t *testing.T) {
	r := newHandoffRig(1)
	defer r.se.Close()
	r.fwd.SetDstCapPath([]*Link{r.links[1]})
	var doneAt []sim.Time
	mark := func() { doneAt = append(doneAt, r.se.Now()) }
	send := func() {
		r.fwd.Send("x", 10e9, []*Link{r.links[0]}, []*Link{r.links[1]}, mark)
	}
	eng := r.se.Shard(0)
	eng.Schedule(0, send)
	r.se.Run()
	// Degrade the destination link 4x and send again: the handoff's cached
	// cap must be refenced by the epoch bump, making the dst leg 4x slower.
	eng.Schedule(0, func() { r.nets[1].SetCapacity(r.links[1], 2.5e9) })
	eng.Schedule(0, send)
	r.se.Run()
	if len(doneAt) != 2 {
		t.Fatalf("%d completions, want 2", len(doneAt))
	}
	d1 := doneAt[0]
	d2 := r.se.Now() - doneAt[0]
	wantD1 := sim.Second + handoffLat + sim.Second
	wantD2 := sim.Second + handoffLat + 4*sim.Second
	if d1 != wantD1 || d2 != wantD2 {
		t.Errorf("transfer durations %v then %v, want %v then %v", d1, d2, wantD1, wantD2)
	}
	// The cap is a RateLimit, not the link capacity itself: restoring the
	// link and clearing the path must lift the limit.
	r.fwd.SetDstCapPath(nil)
	if got := r.fwd.dstCap.value(); got != 0 {
		t.Errorf("cleared cap path still caps at %v", got)
	}
}

// TestHandoffContractPanics pins the constructor guard rails.
func TestHandoffContractPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	se := sim.NewSharded(2)
	n0 := NewNetwork(se.Shard(0))
	n1 := NewNetwork(se.Shard(1))
	se.Connect(0, 1, 100)
	mustPanic("latency below lookahead", func() { NewHandoff(se, 0, 1, 50, n0, n1) })
	mustPanic("missing edge", func() { NewHandoff(se, 1, 0, 100, n1, n0) })
	mustPanic("negative latency", func() { NewHandoff(nil, 0, 0, -1, n0, n0) })
	mustPanic("local mode across engines", func() { NewHandoff(nil, 0, 0, 10, n0, n1) })
}

// TestHandoffSteadyStateAllocs pins the pooled-transfer path: a self-
// sustaining ring of handoffs in parallel mode must allocate nothing per
// steady-state round.
func TestHandoffSteadyStateAllocs(t *testing.T) {
	old := sim.Sharded
	sim.Sharded = true
	defer func() { sim.Sharded = old }()
	r := newHandoffRig(2)
	defer r.se.Close()
	srcPath := []*Link{r.links[0]}
	dstPath := []*Link{r.links[1]}
	revSrc := []*Link{r.links[1]}
	revDst := []*Link{r.links[0]}
	var fwd, rev func()
	fwd = func() { r.fwd.Send("p", 1e9, srcPath, dstPath, rev) }
	rev = func() { r.rev.Send("p", 1e9, revSrc, revDst, fwd) }
	r.se.Shard(0).Schedule(0, fwd)
	r.se.RunUntil(2 * sim.Second) // warm pools, heaps, workers
	deadline := r.se.Now()
	allocs := testing.AllocsPerRun(20, func() {
		deadline += sim.Second
		r.se.RunUntil(deadline)
	})
	if allocs != 0 {
		t.Errorf("steady-state handoff round allocates %.1f times per slice, want 0", allocs)
	}
}

// TestHandoffPoolChurnUnderCapEpochBumps exercises the pool with a
// ping-pong stream of planned sends while both sides' capacities are bumped
// mid-collective: per-send PathCaps must re-evaluate against the new
// capacity epoch on their own shard, the transfer records must recycle
// rather than grow the pool, and the steady state — epoch bumps included —
// must allocate nothing.
func TestHandoffPoolChurnUnderCapEpochBumps(t *testing.T) {
	r := newHandoffRig(2)
	defer r.se.Close()
	path0 := []*Link{r.links[0]}
	path1 := []*Link{r.links[1]}
	cap0 := NewPathCap(r.nets[0], 0.5, path0)
	cap1 := NewPathCap(r.nets[1], 0.5, path1)

	count := 0
	budget := 0
	var fwdSend, revSend func()
	fwdSend = func() {
		r.fwd.SendPlanned("ping", 1e8, 0, cap0, cap1, path0, path1, revSend)
	}
	revSend = func() {
		count++
		if count < budget {
			r.rev.SendPlanned("pong", 1e8, 0, cap1, cap0, path1, path0, fwdSend)
		}
	}
	// Capacity bumps from each side's own shard, landing mid-stream. The
	// toggle returns to the original capacity so every iteration of the
	// steady-state alloc probe sees the same fabric.
	var narrow [2]bool
	narrow[0], narrow[1] = true, true
	bump := func(side int) func() {
		return func() {
			if narrow[side] {
				r.nets[side].SetCapacity(r.links[side], 5e9)
			} else {
				r.nets[side].SetCapacity(r.links[side], 10e9)
			}
			narrow[side] = !narrow[side]
		}
	}
	bump0, bump1 := bump(0), bump(1)
	iterate := func() {
		budget = count + 20
		r.se.Shard(0).Schedule(0, fwdSend)
		r.se.Shard(0).Schedule(100*sim.Microsecond, bump0)
		r.se.Shard(1).Schedule(150*sim.Microsecond, bump1)
		r.se.Shard(0).Schedule(300*sim.Microsecond, bump0)
		r.se.Shard(1).Schedule(350*sim.Microsecond, bump1)
		r.se.Run()
	}
	iterate()
	if count != 20 {
		t.Fatalf("completed %d transfers, want 20", count)
	}
	if e := r.nets[0].CapacityEpoch(); e < 2 {
		t.Fatalf("src capacity epoch = %d, want >= 2", e)
	}
	if got := r.fwd.PoolSize(); got != 1 {
		t.Errorf("fwd pool holds %d records after churn, want 1 (recycled, not grown)", got)
	}
	if got := r.rev.PoolSize(); got != 1 {
		t.Errorf("rev pool holds %d records after churn, want 1", got)
	}
	iterate() // warm any remaining slice growth before pinning allocs
	if avg := testing.AllocsPerRun(20, iterate); avg != 0 {
		t.Errorf("steady-state churn with epoch bumps allocates %v allocs/run, want 0", avg)
	}
	if got := r.fwd.PoolSize(); got != 1 {
		t.Errorf("fwd pool grew to %d records across alloc probe", got)
	}
}
