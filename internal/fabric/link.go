// Package fabric implements the fluid-flow model of the cluster's
// interconnects. Every physical link (DRAM channel group, xGMI, PCIe, NVLink,
// RoCE) and every shared internal resource (the AMD I/O-die crossbar, NVMe
// media engines, CPU optimizer throughput) is a Link with a capacity in
// bytes/second. Data transfers are Flows over a path of links; the network
// continuously assigns each flow its max-min fair share of every link it
// crosses and advances flows in virtual time on the sim engine.
//
// This is the standard fluid approximation used by network simulators: exact
// packet behaviour is abstracted away, but sharing, contention and bottleneck
// structure — the quantities the paper characterizes — are preserved.
package fabric

import (
	"fmt"

	"llmbw/internal/sim"
	"llmbw/internal/telemetry"
)

// Class identifies the interconnect type a link belongs to; aggregation in
// the paper's Table IV is per class per node.
type Class int

// Interconnect classes, mirroring the paper's Table III rows plus the
// modelled internal resources.
const (
	DRAM Class = iota
	XGMI
	PCIeGPU
	PCIeNVME
	PCIeNIC
	NVLink
	RoCE
	IODXbar // AMD I/O-die crossbar budget for SerDes-to-SerDes traffic
	NVMeDev // NVMe device media engine (DRAM cache or NAND rate)
	CPUCore // CPU optimizer-compute throughput, expressed as bytes/s
	GPUCore // GPU compute throughput, expressed as FLOP/s
	Virtual // per-flow caps and other bookkeeping resources
	Uplink  // datacenter fabric trunk: fat-tree pod uplinks, dragonfly globals
)

var classNames = map[Class]string{
	DRAM: "DRAM", XGMI: "xGMI", PCIeGPU: "PCIe-GPU", PCIeNVME: "PCIe-NVME",
	PCIeNIC: "PCIe-NIC", NVLink: "NVLink", RoCE: "RoCE", IODXbar: "IOD-Xbar",
	NVMeDev: "NVMe-Dev", CPUCore: "CPU-Core", GPUCore: "GPU-Core", Virtual: "Virtual",
	Uplink: "Uplink",
}

// String returns the class name used in reports.
func (c Class) String() string {
	if n, ok := classNames[c]; ok {
		return n
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// MeasuredClasses lists the classes that appear in the paper's bandwidth
// tables, in the paper's column order.
func MeasuredClasses() []Class {
	return []Class{DRAM, XGMI, PCIeGPU, PCIeNVME, PCIeNIC, NVLink, RoCE}
}

// Link is a shared resource with a capacity in bytes per second. The paper
// reports aggregate bidirectional bandwidth, so capacities here are
// bidirectional aggregates and a flow consumes its byte volume once.
type Link struct {
	Name  string
	Class Class
	Node  int // compute node the link belongs to; -1 for inter-node fabric

	// CountWeight multiplies bytes credited to the telemetry counter. GPU
	// NVLink telemetry is per-GPU (nvidia-smi counts each byte at both the
	// sending and receiving GPU), so NVLink pair links use weight 2.
	CountWeight float64

	capacity float64
	counter  *telemetry.Counter

	// active lists the flows currently crossing the link (maintained by
	// Network with swap-removal; a flow whose path crosses the link twice
	// appears twice). It is the adjacency the network's connected-component
	// walk traverses, and its length is the flow count progressive filling
	// used to recompute per call.
	active []*Flow
	// mark stamps the link as visited during a component walk; scap and
	// sunfrozen are the link's progressive-filling scratch state. All three
	// are owned by the Network between reshare calls, living here so the
	// hot path needs no map from link to state.
	mark      int64
	scap      float64
	sunfrozen int
}

// NewLink creates a link. Capacity is in bytes/second; window is the
// telemetry sampling window (0 = default).
func NewLink(name string, class Class, node int, capacity float64, window sim.Time) *Link {
	if capacity <= 0 {
		panic(fmt.Sprintf("fabric: link %s with non-positive capacity %f", name, capacity))
	}
	return &Link{
		Name:        name,
		Class:       class,
		Node:        node,
		CountWeight: 1,
		capacity:    capacity,
		counter:     telemetry.NewCounter(name, window),
	}
}

// Capacity returns the current capacity in bytes/second.
func (l *Link) Capacity() float64 { return l.capacity }

// Counter exposes the telemetry counter for reporting.
func (l *Link) Counter() *telemetry.Counter { return l.counter }

// ActiveFlows returns the number of flows currently crossing the link.
func (l *Link) ActiveFlows() int { return len(l.active) }

// removeFlowAt swap-removes the flow at position i of the link's active list,
// fixing up the displaced flow's recorded position.
func (l *Link) removeFlowAt(i int) {
	last := len(l.active) - 1
	if i != last {
		moved := l.active[last]
		l.active[i] = moved
		for k, pl := range moved.Path {
			if pl == l && moved.pos[k] == int32(last) {
				moved.pos[k] = int32(i)
				break
			}
		}
	}
	l.active[last] = nil
	l.active = l.active[:last]
}

func (l *Link) String() string {
	return fmt.Sprintf("%s(%s, %.1f GB/s)", l.Name, l.Class, l.capacity/1e9)
}
