package fabric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"llmbw/internal/sim"
)

// referenceFairShare is the pre-optimization allocator kept as an executable
// specification: a full map-based progressive-filling recompute over every
// active flow, exactly as fabric shipped before component-wise resharing.
// The incremental path must agree with it on every topology.
func referenceFairShare(flows []*Flow) map[*Flow]float64 {
	rate := make(map[*Flow]float64, len(flows))
	if len(flows) == 0 {
		return rate
	}
	type linkState struct {
		cap      float64
		unfrozen int
	}
	frozen := make(map[*Flow]bool, len(flows))
	states := make(map[*Link]*linkState)
	for _, f := range flows {
		for _, l := range f.Path {
			st := states[l]
			if st == nil {
				st = &linkState{cap: l.capacity}
				states[l] = st
			}
			st.unfrozen++
		}
	}
	unfrozen := len(flows)
	for unfrozen > 0 {
		share := math.MaxFloat64
		for _, st := range states {
			if st.unfrozen == 0 {
				continue
			}
			if s := st.cap / float64(st.unfrozen); s < share {
				share = s
			}
		}
		for _, f := range flows {
			if !frozen[f] && f.RateLimit > 0 && f.RateLimit < share {
				share = f.RateLimit
			}
		}
		progressed := false
		for _, f := range flows {
			if frozen[f] {
				continue
			}
			capped := f.RateLimit > 0 && f.RateLimit <= share*(1+1e-12)
			bottled := false
			if !capped {
				for _, l := range f.Path {
					st := states[l]
					if st.unfrozen > 0 && st.cap/float64(st.unfrozen) <= share*(1+1e-12) {
						bottled = true
						break
					}
				}
			}
			if !capped && !bottled {
				continue
			}
			frozen[f] = true
			rate[f] = share
			if capped && f.RateLimit < share {
				rate[f] = f.RateLimit
			}
			unfrozen--
			progressed = true
			for _, l := range f.Path {
				st := states[l]
				st.cap -= rate[f]
				if st.cap < 0 {
					st.cap = 0
				}
				st.unfrozen--
			}
		}
		if !progressed {
			panic("reference fair share made no progress")
		}
	}
	return rate
}

// checkFairShare asserts the three max-min invariants over the currently
// active flows and cross-checks every rate against the reference allocator.
// Returns a non-empty description on violation.
func checkFairShare(t *testing.T, net *Network) string {
	t.Helper()
	flows := net.active
	load := make(map[*Link]float64)
	for _, f := range flows {
		if f.rate < 0 {
			return "negative rate"
		}
		// (b) no flow exceeds its rate limit.
		if f.RateLimit > 0 && f.rate > f.RateLimit*(1+1e-9) {
			return "rate limit exceeded"
		}
		for _, l := range f.Path {
			load[l] += f.rate
		}
	}
	// (a) per-link rate sums never exceed capacity.
	for l, ld := range load {
		if ld > l.capacity*(1+1e-9) {
			return "link oversubscribed"
		}
	}
	// (c) max-min optimality: a flow below its rate limit must have a
	// bottleneck link — saturated, with the flow among its fastest users —
	// so raising it necessarily lowers a flow that is no faster.
	for _, f := range flows {
		if f.RateLimit > 0 && f.rate >= f.RateLimit*(1-1e-9) {
			continue
		}
		bottleneck := false
		for _, l := range f.Path {
			if load[l] < l.capacity*(1-1e-9) {
				continue
			}
			fastest := true
			for _, g := range l.active {
				if g.rate > f.rate*(1+1e-9) {
					fastest = false
					break
				}
			}
			if fastest {
				bottleneck = true
				break
			}
		}
		if !bottleneck {
			return "flow could be raised without lowering a slower one"
		}
	}
	// Cross-check against the reference full recompute.
	want := referenceFairShare(flows)
	for _, f := range flows {
		w := want[f]
		tol := 1e-6 * math.Max(1, math.Max(w, f.rate))
		if math.Abs(f.rate-w) > tol {
			return "incremental rate diverges from reference recompute"
		}
	}
	return ""
}

// fairShareScenario drives one randomized topology through starts, a
// capacity change and completions, checking the allocation after every
// reallocation trigger. Returns a description of the first violation.
func fairShareScenario(t *testing.T, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	eng := sim.New()
	net := NewNetwork(eng)
	links := make([]*Link, 2+rng.Intn(6))
	for i := range links {
		links[i] = NewLink("l", NVLink, 0, (0.5+rng.Float64()*20)*1e9, 0)
	}
	// Incremental start path: check after every flow joins.
	nFlows := 1 + rng.Intn(24)
	for i := 0; i < nFlows; i++ {
		perm := rng.Perm(len(links))[:1+rng.Intn(min(3, len(links)))]
		path := make([]*Link, len(perm))
		for j, k := range perm {
			path[j] = links[k]
		}
		fl := &Flow{Path: path, Bytes: (0.1 + rng.Float64()) * 1e9}
		if rng.Intn(3) == 0 {
			fl.RateLimit = 1e7 + rng.Float64()*2e9
		}
		net.StartFlow(fl, nil)
		if msg := checkFairShare(t, net); msg != "" {
			return "after start: " + msg
		}
	}
	// Capacity-change path.
	l := links[rng.Intn(len(links))]
	net.SetCapacity(l, (0.5+rng.Float64()*20)*1e9)
	if msg := checkFairShare(t, net); msg != "" {
		return "after capacity change: " + msg
	}
	// Completion/retire path: step the clock and re-check as flows drain.
	for eng.Pending() > 0 && net.ActiveFlows() > 0 {
		eng.RunUntil(eng.Now() + sim.Time(1+rng.Intn(200))*sim.Millisecond)
		if msg := checkFairShare(t, net); msg != "" {
			return "after completions: " + msg
		}
	}
	return ""
}

// TestFairSharePropertyAgainstReference: for random flow/link topologies the
// incremental allocator must satisfy feasibility, rate limits and max-min
// optimality, and agree with the full-recompute reference, across flow
// starts, capacity changes and completions.
func TestFairSharePropertyAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		if msg := fairShareScenario(t, seed); msg != "" {
			t.Logf("seed %d: %s", seed, msg)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// FuzzFairShare exposes the same scenario to the native fuzzer.
func FuzzFairShare(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1234, -99} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if msg := fairShareScenario(t, seed); msg != "" {
			t.Errorf("seed %d: %s", seed, msg)
		}
	})
}
