package fabric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"llmbw/internal/sim"
)

func link(name string, capGBps float64) *Link {
	return NewLink(name, NVLink, 0, capGBps*1e9, 0)
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleFlowFullBandwidth(t *testing.T) {
	eng := sim.New()
	net := NewNetwork(eng)
	l := link("l", 10) // 10 GB/s
	var doneAt sim.Time
	net.StartFlow(&Flow{Name: "f", Path: []*Link{l}, Bytes: 5e9}, func() { doneAt = eng.Now() })
	eng.Run()
	if !almost(doneAt.ToSeconds(), 0.5, 1e-6) {
		t.Errorf("5 GB over 10 GB/s finished at %v, want 0.5s", doneAt)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	eng := sim.New()
	net := NewNetwork(eng)
	l := link("l", 10)
	var at [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		net.StartFlow(&Flow{Path: []*Link{l}, Bytes: 5e9}, func() { at[i] = eng.Now() })
	}
	eng.Run()
	// Both get 5 GB/s, so both finish at 1 s.
	for i, a := range at {
		if !almost(a.ToSeconds(), 1.0, 1e-6) {
			t.Errorf("flow %d finished at %v, want 1s", i, a)
		}
	}
}

func TestShortFlowReleasesBandwidth(t *testing.T) {
	eng := sim.New()
	net := NewNetwork(eng)
	l := link("l", 10)
	var shortAt, longAt sim.Time
	net.StartFlow(&Flow{Path: []*Link{l}, Bytes: 1e9}, func() { shortAt = eng.Now() })
	net.StartFlow(&Flow{Path: []*Link{l}, Bytes: 9e9}, func() { longAt = eng.Now() })
	eng.Run()
	// Shared 5 GB/s each until short (1 GB) finishes at 0.2 s; long then has
	// 8 GB left at 10 GB/s -> finishes at 1.0 s.
	if !almost(shortAt.ToSeconds(), 0.2, 1e-6) {
		t.Errorf("short finished at %v, want 0.2s", shortAt)
	}
	if !almost(longAt.ToSeconds(), 1.0, 1e-6) {
		t.Errorf("long finished at %v, want 1.0s", longAt)
	}
}

func TestMaxMinFairnessAcrossBottlenecks(t *testing.T) {
	eng := sim.New()
	net := NewNetwork(eng)
	narrow := link("narrow", 2)
	wide := link("wide", 10)
	// Flow A crosses narrow+wide, flow B crosses wide only.
	a := &Flow{Name: "a", Path: []*Link{narrow, wide}, Bytes: 1e9}
	b := &Flow{Name: "b", Path: []*Link{wide}, Bytes: 8e9}
	net.StartFlow(a, nil)
	net.StartFlow(b, nil)
	// Max-min: A limited to 2 GB/s by narrow; B gets the rest of wide (8).
	if !almost(a.Rate(), 2e9, 1) {
		t.Errorf("a rate = %v, want 2e9", a.Rate())
	}
	if !almost(b.Rate(), 8e9, 1) {
		t.Errorf("b rate = %v, want 8e9", b.Rate())
	}
	eng.Run()
}

func TestPerFlowRateLimit(t *testing.T) {
	eng := sim.New()
	net := NewNetwork(eng)
	l := link("l", 10)
	capped := &Flow{Path: []*Link{l}, Bytes: 1e9, RateLimit: 1e9}
	free := &Flow{Path: []*Link{l}, Bytes: 9e9}
	net.StartFlow(capped, nil)
	net.StartFlow(free, nil)
	if !almost(capped.Rate(), 1e9, 1) {
		t.Errorf("capped rate = %v, want 1e9", capped.Rate())
	}
	if !almost(free.Rate(), 9e9, 1) {
		t.Errorf("free rate = %v, want 9e9 (leftover)", free.Rate())
	}
	eng.Run()
}

func TestZeroByteFlowCompletesImmediately(t *testing.T) {
	eng := sim.New()
	net := NewNetwork(eng)
	done := false
	net.StartFlow(&Flow{Bytes: 0}, func() { done = true })
	eng.Run()
	if !done {
		t.Error("zero-byte flow never completed")
	}
}

func TestSetCapacityMidFlow(t *testing.T) {
	eng := sim.New()
	net := NewNetwork(eng)
	l := link("l", 10)
	var doneAt sim.Time
	net.StartFlow(&Flow{Path: []*Link{l}, Bytes: 10e9}, func() { doneAt = eng.Now() })
	// After 0.5 s (5 GB moved), capacity halves: remaining 5 GB at 5 GB/s.
	eng.Schedule(sim.Seconds(0.5), func() { net.SetCapacity(l, 5e9) })
	eng.Run()
	if !almost(doneAt.ToSeconds(), 1.5, 1e-6) {
		t.Errorf("finished at %v, want 1.5s", doneAt)
	}
}

func TestTelemetryRecordsBytes(t *testing.T) {
	eng := sim.New()
	net := NewNetwork(eng)
	l := link("l", 10)
	net.StartFlow(&Flow{Path: []*Link{l}, Bytes: 5e9}, nil)
	eng.Run()
	net.Quiesce()
	if !almost(l.Counter().Total(), 5e9, 1) {
		t.Errorf("counted %v bytes, want 5e9", l.Counter().Total())
	}
}

func TestCountWeightDoublesTelemetry(t *testing.T) {
	eng := sim.New()
	net := NewNetwork(eng)
	l := link("l", 10)
	l.CountWeight = 2
	net.StartFlow(&Flow{Path: []*Link{l}, Bytes: 3e9}, nil)
	eng.Run()
	net.Quiesce()
	if !almost(l.Counter().Total(), 6e9, 1) {
		t.Errorf("counted %v bytes, want 6e9 with weight 2", l.Counter().Total())
	}
}

func TestTransferBlocksProcess(t *testing.T) {
	eng := sim.New()
	net := NewNetwork(eng)
	l := link("l", 1)
	var resumed sim.Time
	eng.Go("p", func(p *sim.Proc) {
		net.Transfer(p, &Flow{Path: []*Link{l}, Bytes: 2e9})
		resumed = p.Now()
	})
	eng.Run()
	if !almost(resumed.ToSeconds(), 2.0, 1e-6) {
		t.Errorf("resumed at %v, want 2s", resumed)
	}
}

func TestManyFlowsConservation(t *testing.T) {
	eng := sim.New()
	net := NewNetwork(eng)
	links := []*Link{link("a", 3), link("b", 7), link("c", 2)}
	rng := rand.New(rand.NewSource(7))
	var want float64
	for i := 0; i < 50; i++ {
		path := []*Link{links[rng.Intn(3)]}
		if rng.Intn(2) == 0 {
			path = append(path, links[rng.Intn(3)])
		}
		// Dedupe accidental same-link pairs to keep counting simple.
		if len(path) == 2 && path[0] == path[1] {
			path = path[:1]
		}
		bytes := float64(1+rng.Intn(100)) * 1e7
		for range path {
			want += bytes
		}
		start := sim.Time(rng.Intn(1000)) * sim.Millisecond
		eng.ScheduleAt(start, func() {
			net.StartFlow(&Flow{Path: path, Bytes: bytes}, nil)
		})
	}
	eng.Run()
	net.Quiesce()
	var got float64
	for _, l := range links {
		got += l.Counter().Total()
	}
	if !almost(got, want, want*1e-6) {
		t.Errorf("telemetry total = %v, want %v", got, want)
	}
	if net.ActiveFlows() != 0 {
		t.Errorf("%d flows still active", net.ActiveFlows())
	}
}

// Property: the fair-share allocation never oversubscribes any link and never
// assigns a negative rate.
func TestFairShareFeasibilityProperty(t *testing.T) {
	f := func(seed int64, nFlows uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.New()
		net := NewNetwork(eng)
		links := make([]*Link, 4)
		for i := range links {
			links[i] = link("l", 1+rng.Float64()*20)
		}
		flows := make([]*Flow, 0, nFlows)
		for i := 0; i < int(nFlows%16)+1; i++ {
			perm := rng.Perm(4)[:1+rng.Intn(3)]
			path := make([]*Link, len(perm))
			for j, k := range perm {
				path[j] = links[k]
			}
			fl := &Flow{Path: path, Bytes: 1e12} // long-lived
			if rng.Intn(3) == 0 {
				fl.RateLimit = 1e8 + rng.Float64()*1e9
			}
			flows = append(flows, fl)
			net.StartFlow(fl, nil)
		}
		// Check feasibility of the allocation.
		load := make(map[*Link]float64)
		for _, fl := range flows {
			if fl.Rate() < 0 {
				return false
			}
			if fl.RateLimit > 0 && fl.Rate() > fl.RateLimit*(1+1e-9) {
				return false
			}
			for _, l := range fl.Path {
				load[l] += fl.Rate()
			}
		}
		for l, ld := range load {
			if ld > l.Capacity()*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: work conservation — if any flow could go faster, its bottleneck
// resource is saturated (within tolerance).
func TestWorkConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.New()
		net := NewNetwork(eng)
		links := make([]*Link, 3)
		for i := range links {
			links[i] = link("l", 1+rng.Float64()*10)
		}
		var flows []*Flow
		for i := 0; i < 1+rng.Intn(8); i++ {
			path := []*Link{links[rng.Intn(3)]}
			fl := &Flow{Path: path, Bytes: 1e12}
			flows = append(flows, fl)
			net.StartFlow(fl, nil)
		}
		load := make(map[*Link]float64)
		for _, fl := range flows {
			for _, l := range fl.Path {
				load[l] += fl.Rate()
			}
		}
		for _, fl := range flows {
			saturated := false
			for _, l := range fl.Path {
				if load[l] >= l.Capacity()*(1-1e-9) {
					saturated = true
				}
			}
			if !saturated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Regression for retire-during-iteration: when several flows complete at the
// exact same timestamp, one reshare must retire them all in a single pass
// (finished flows are collected first, then removed) without disturbing the
// survivors' reallocation.
func TestSimultaneousCompletionsChurn(t *testing.T) {
	eng := sim.New()
	net := NewNetwork(eng)
	shared := link("shared", 8)
	other := link("other", 4)
	// Four identical flows on the shared link: equal shares (2 GB/s each),
	// equal bytes, so all four complete at exactly t = 1 s.
	var doneAt [4]sim.Time
	for i := 0; i < 4; i++ {
		i := i
		net.StartFlow(&Flow{Path: []*Link{shared}, Bytes: 2e9}, func() { doneAt[i] = eng.Now() })
	}
	// A fifth flow on a disjoint link keeps running across the event.
	survivor := &Flow{Path: []*Link{other}, Bytes: 8e9}
	var survivorAt sim.Time
	net.StartFlow(survivor, func() { survivorAt = eng.Now() })
	// A sixth flow joins the shared link after the mass completion and
	// should then own its full capacity.
	late := &Flow{Path: []*Link{shared}, Bytes: 8e9}
	var lateAt sim.Time
	eng.ScheduleAt(sim.Seconds(1.5), func() { net.StartFlow(late, func() { lateAt = eng.Now() }) })
	eng.Run()
	for i, at := range doneAt {
		if !almost(at.ToSeconds(), 1.0, 1e-6) {
			t.Errorf("flow %d finished at %v, want 1s (simultaneous batch)", i, at)
		}
	}
	if !almost(survivorAt.ToSeconds(), 2.0, 1e-6) {
		t.Errorf("survivor finished at %v, want 2s", survivorAt)
	}
	// late starts at 1.5 s with 8 GB/s to itself: 8 GB / 8 GB/s = 1 s.
	if !almost(lateAt.ToSeconds(), 2.5, 1e-6) {
		t.Errorf("late flow finished at %v, want 2.5s", lateAt)
	}
	if net.ActiveFlows() != 0 {
		t.Errorf("%d flows still active", net.ActiveFlows())
	}
	if shared.ActiveFlows() != 0 || other.ActiveFlows() != 0 {
		t.Errorf("links report active flows after drain: %d, %d",
			shared.ActiveFlows(), other.ActiveFlows())
	}
}

func TestNegativeBytesPanics(t *testing.T) {
	eng := sim.New()
	net := NewNetwork(eng)
	defer func() {
		if recover() == nil {
			t.Error("negative bytes did not panic")
		}
	}()
	net.StartFlow(&Flow{Bytes: -1}, nil)
}

func TestLinkStringAndClassString(t *testing.T) {
	l := link("nv0", 25)
	if l.String() == "" || l.Class.String() != "NVLink" {
		t.Errorf("String: %q, class %q", l.String(), l.Class.String())
	}
	if Class(99).String() == "" {
		t.Error("unknown class should still render")
	}
	if len(MeasuredClasses()) != 7 {
		t.Errorf("MeasuredClasses = %d, want 7", len(MeasuredClasses()))
	}
}
