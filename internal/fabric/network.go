package fabric

import (
	"fmt"
	"math"

	"llmbw/internal/sim"
)

// Flow is a data transfer of a fixed byte volume over a path of links. Its
// instantaneous rate is assigned by the Network's max-min fair allocation and
// may change whenever flows start, finish, or link capacities change.
type Flow struct {
	Name      string
	Path      []*Link
	Bytes     float64
	RateLimit float64 // optional per-flow cap in bytes/s; 0 = unlimited

	remaining float64
	rate      float64
	onDone    func()
	done      bool
	frozen    bool    // scratch state for the fair-share computation
	idx       int     // position in Network.active; -1 when inactive
	mark      int64   // component-walk visit stamp
	pos       []int32 // per-path-element position in the link's active list
}

// Remaining returns the bytes left to transfer.
func (f *Flow) Remaining() float64 { return f.remaining }

// Rate returns the currently assigned rate in bytes/second.
func (f *Flow) Rate() float64 { return f.rate }

// Done reports whether the flow has completed.
func (f *Flow) Done() bool { return f.done }

// BatchAdmission selects the admission path StartFlows uses: true (the
// default) admits a whole batch with one advance and one progressive-filling
// pass per touched component; false falls back to one StartFlow call per
// flow, the pre-batching behaviour. The two paths are byte-identical in
// simulation outcome (pinned by the determinism tests); the knob exists so
// those tests can compare them. It must not be toggled while a simulation is
// running.
var BatchAdmission = true

// Network manages active flows over the link graph and advances them in
// virtual time.
//
// Rate recomputation is incremental: flows partition into connected
// components over shared links, and a flow start, finish or capacity change
// re-runs progressive filling only for the touched component. All scratch
// state (component work-lists, per-link capacities and counts) lives in
// reusable buffers on the Network and the links themselves, so steady-state
// resharing performs no allocation.
type Network struct {
	eng    *sim.Engine
	active []*Flow // dense registry; Flow.idx is the position
	lastAt sim.Time
	epoch  int64 // invalidates stale completion events

	// capEpoch counts SetCapacity calls; callers that cache link-derived
	// rate limits (compiled collective plans) revalidate against it.
	capEpoch int64

	// fillPasses counts progressive-filling rate recomputations — the
	// reshare-count probe batched admission is measured by.
	fillPasses int64

	// cePool recycles completion events (and their bound closures) so
	// steady-state re-arming allocates nothing.
	cePool []*completionEvent

	// Reusable scratch for reshare: the component work-lists double as the
	// BFS queue/visited set, finished collects flows to retire before
	// recomputation mutates the registry.
	markGen   int64
	compFlows []*Flow
	compLinks []*Link
	finished  []*Flow
}

// completionEvent carries the epoch stamp of one arming of the network's
// next-completion timer. The closure is built once per pool entry and reused
// across armings; an event is back in the pool the moment it fires, since
// each scheduled firing references a distinct entry.
type completionEvent struct {
	epoch int64
	fn    func()
}

// NewNetwork creates a network bound to the engine.
func NewNetwork(eng *sim.Engine) *Network {
	return &Network{eng: eng}
}

// Engine returns the simulation engine the network runs on.
func (n *Network) Engine() *sim.Engine { return n.eng }

// ActiveFlows returns the number of in-flight flows.
func (n *Network) ActiveFlows() int { return len(n.active) }

// Reshares returns the number of progressive-filling rate recomputations the
// network has performed — one per touched component for batched admission,
// one per StartFlow/SetCapacity/completion otherwise. It is a diagnostic
// probe for tests and instrumentation.
func (n *Network) Reshares() int64 { return n.fillPasses }

// CapacityEpoch returns a counter that increments on every effective
// SetCapacity call. Callers caching values derived from link capacities
// (e.g. compiled collective plans caching cross-node stream caps) compare
// epochs to decide whether to refresh.
func (n *Network) CapacityEpoch() int64 { return n.capEpoch }

// StartFlow begins transferring f and invokes onDone (from engine context)
// when the last byte arrives. Zero-byte flows complete after one scheduler
// tick. Flows must have a non-empty path unless they are pure-latency
// zero-byte markers.
func (n *Network) StartFlow(f *Flow, onDone func()) {
	if f.Bytes < 0 {
		panic(fmt.Sprintf("fabric: flow %s with negative bytes", f.Name))
	}
	f.remaining = f.Bytes
	f.onDone = onDone
	f.done = false
	if f.Bytes == 0 || len(f.Path) == 0 {
		n.eng.Schedule(0, func() { //lint:allow steady-alloc — zero-byte marker flows are rare control ticks, not per-iteration traffic
			f.done = true
			if onDone != nil {
				onDone()
			}
		})
		return
	}
	n.advance()
	f.idx = len(n.active)
	f.mark = 0
	n.active = append(n.active, f) //lint:allow steady-alloc — retire truncates, not nils: the registry's backing reaches steady capacity
	f.pos = f.pos[:0]
	for _, l := range f.Path {
		f.pos = append(f.pos, int32(len(l.active))) //lint:allow steady-alloc — reset to [:0] above: backing survives across iterations
		l.active = append(l.active, f)              //lint:allow steady-alloc — retire truncates, not nils: the registry's backing reaches steady capacity
	}
	n.reshare(f, nil)
}

// StartFlows admits a batch of flows in one step, invoking onDone once per
// flow as each completes (the same callback serves every flow in the batch;
// it may be nil). Admitting k flows through StartFlow costs k advances and k
// component reshares, each invalidated by the next; StartFlows performs one
// advance and one progressive-filling pass per touched component, which is
// what makes steady-state ring collectives cheap — a 2n-leg dual-ring
// admission drops from 2n reshares to one.
//
// The simulation outcome is byte-identical to calling StartFlow on each flow
// in order within one event: no virtual time passes between admissions, and
// each component's rates are computed with exactly the flow ordering the last
// serial admission touching it would have used.
func (n *Network) StartFlows(flows []*Flow, onDone func()) {
	if len(flows) == 0 {
		return
	}
	if !BatchAdmission {
		for _, f := range flows {
			n.StartFlow(f, onDone)
		}
		return
	}
	admitted := false
	firstReal := -1
	for i, f := range flows {
		if f.Bytes < 0 {
			panic(fmt.Sprintf("fabric: flow %s with negative bytes", f.Name))
		}
		f.remaining = f.Bytes
		f.onDone = onDone
		f.done = false
		if f.Bytes == 0 || len(f.Path) == 0 {
			f := f
			n.eng.Schedule(0, func() { //lint:allow steady-alloc — zero-byte marker flows are rare control ticks, not per-iteration traffic
				f.done = true
				if onDone != nil {
					onDone()
				}
			})
			f.idx = -1
			continue
		}
		if !admitted {
			n.advance()
		}
		f.idx = len(n.active)
		f.mark = 0
		n.active = append(n.active, f) //lint:allow steady-alloc — retire truncates, not nils: the registry's backing reaches steady capacity
		f.pos = f.pos[:0]
		for _, l := range f.Path {
			f.pos = append(f.pos, int32(len(l.active))) //lint:allow steady-alloc — reset to [:0] above: backing survives across iterations
			l.active = append(l.active, f)              //lint:allow steady-alloc — retire truncates, not nils: the registry's backing reaches steady capacity
		}
		if !admitted {
			admitted = true
			firstReal = i
			// Retire already-finished flows here rather than in reshareBatch:
			// the serial path retires them during the first real flow's
			// reshare, before any later zero-byte flow in the batch schedules
			// its completion tick, and the relative order of those 0-delay
			// events is observable.
			n.retireFinished()
		}
	}
	if !admitted {
		return
	}
	n.reshareBatch(flows, firstReal)
}

// Transfer is a convenience wrapper for processes: it starts the flow and
// blocks p until completion.
func (n *Network) Transfer(p *sim.Proc, f *Flow) {
	p.Await(func(resume func()) { n.StartFlow(f, resume) })
}

// SetCapacity changes a link's capacity mid-simulation (e.g. an NVMe write
// cache filling up) and reallocates flow rates.
func (n *Network) SetCapacity(l *Link, capacity float64) {
	if capacity <= 0 {
		panic(fmt.Sprintf("fabric: non-positive capacity for %s", l.Name))
	}
	// Bit-identical capacity means nothing changed; this idempotence fast
	// path wants exact equality, not an epsilon.
	if l.capacity == capacity { //lint:allow float-eq — deliberate idempotence test
		return
	}
	n.advance()
	l.capacity = capacity
	n.capEpoch++
	n.reshare(nil, l)
}

// advance credits bytes moved since the last rate change to flows and link
// telemetry, up to the current virtual time.
func (n *Network) advance() {
	now := n.eng.Now()
	dt := now - n.lastAt
	if dt < 0 {
		panic("fabric: time went backwards")
	}
	if dt == 0 {
		n.lastAt = now
		return
	}
	sec := dt.ToSeconds()
	for _, f := range n.active {
		moved := f.rate * sec
		if moved > f.remaining {
			moved = f.remaining
		}
		f.remaining -= moved
		if moved > 0 {
			for _, l := range f.Path {
				l.counter.Add(n.lastAt, now, moved*l.CountWeight)
			}
		}
	}
	n.lastAt = now
}

// reshare retires flows that have (within tolerance) finished, recomputes
// max-min fair rates for the connected component touched by the change —
// seeded by a starting flow, a capacity-changed link, and the links of every
// retired flow — and re-arms the next completion event.
func (n *Network) reshare(seedFlow *Flow, seedLink *Link) {
	n.retireFinished()

	// Gather the touched component. The compLinks slice doubles as the BFS
	// queue: links are appended once when first marked and scanned in order.
	n.markGen++
	gen := n.markGen
	n.compFlows = n.compFlows[:0]
	n.compLinks = n.compLinks[:0]
	if seedLink != nil {
		n.seedLink(seedLink, gen)
	}
	for _, f := range n.finished {
		n.seedLinks(f.Path, gen)
	}
	if seedFlow != nil && seedFlow.idx >= 0 {
		n.visitFlow(seedFlow, gen)
	}
	n.bfs(0, gen)

	n.computeRates(0, 0)
	n.scheduleNextCompletion()
}

// reshareBatch recomputes rates after a StartFlows admission: one
// progressive-filling pass per connected component the batch touches, plus
// one for any components that only lost retired flows. Admitting the same
// flows serially leaves each component with the rates computed by the last
// StartFlow call touching it, so the batch walks flows in reverse admission
// order — the first unmarked flow seen is that component's last-admitted
// flow, and seeding the gather with it reproduces the surviving serial
// pass's flow ordering (and therefore its floating-point operation order)
// exactly. firstReal is the index in flows of the first admitted flow; the
// serial path folds capacity freed by retired flows into that flow's
// reshare, finished links seeded first, so the batch does too.
func (n *Network) reshareBatch(flows []*Flow, firstReal int) {
	n.markGen++
	gen := n.markGen
	n.compFlows = n.compFlows[:0]
	n.compLinks = n.compLinks[:0]

	for i := len(flows) - 1; i >= 0; i-- {
		f := flows[i]
		if f.idx < 0 || f.mark == gen {
			continue // zero-byte, or component already recomputed
		}
		flowStart, linkStart := len(n.compFlows), len(n.compLinks)
		if i == firstReal {
			for _, ff := range n.finished {
				n.seedLinks(ff.Path, gen)
			}
		}
		n.visitFlow(f, gen)
		n.bfs(linkStart, gen)
		n.computeRates(flowStart, linkStart)
	}

	// Components touched only by retired flows — no batch flow reaches them —
	// still need the freed capacity redistributed. The serial path does this
	// inside the first real flow's reshare; those components are disjoint
	// from every batch component (or they would have been marked above), so
	// computing them last yields identical rates.
	flowStart, linkStart := len(n.compFlows), len(n.compLinks)
	for _, ff := range n.finished {
		n.seedLinks(ff.Path, gen)
	}
	if len(n.compLinks) > linkStart {
		n.bfs(linkStart, gen)
		n.computeRates(flowStart, linkStart)
	}

	n.scheduleNextCompletion()
}

// retireFinished collects every active flow whose remaining bytes are
// (within tolerance) zero into n.finished, then retires them. Collect first,
// then retire: retiring in-place while scanning would permute the dense
// registry under the scan.
func (n *Network) retireFinished() {
	n.finished = n.finished[:0]
	for _, f := range n.active {
		if f.remaining <= 1e-6 {
			n.finished = append(n.finished, f) //lint:allow steady-alloc — scratch list reset to [:0] each pass: backing is reused
		}
	}
	for _, f := range n.finished {
		n.retire(f)
	}
}

// seedLink adds l to the current component work-list if not yet marked,
// resetting its progressive-filling scratch.
func (n *Network) seedLink(l *Link, gen int64) {
	if l.mark != gen {
		l.mark = gen
		l.scap = l.capacity
		l.sunfrozen = 0
		n.compLinks = append(n.compLinks, l) //lint:allow steady-alloc — component work-list reset to [:0] each reshare: backing is reused
	}
}

// seedLinks seeds every link on a path.
func (n *Network) seedLinks(path []*Link, gen int64) {
	for _, l := range path {
		n.seedLink(l, gen)
	}
}

// visitFlow adds f to the current component work-list if not yet marked,
// seeding its links and counting it against their unfrozen totals.
func (n *Network) visitFlow(f *Flow, gen int64) {
	if f.mark == gen {
		return
	}
	f.mark = gen
	f.frozen = false
	f.rate = 0
	n.compFlows = append(n.compFlows, f) //lint:allow steady-alloc — component work-list reset to [:0] each reshare: backing is reused
	n.seedLinks(f.Path, gen)
	for _, l := range f.Path {
		l.sunfrozen++
	}
}

// bfs expands the component work-lists to their transitive closure, scanning
// compLinks from index scan onward (links appended during the scan extend
// the frontier).
func (n *Network) bfs(scan int, gen int64) {
	for ; scan < len(n.compLinks); scan++ {
		for _, f := range n.compLinks[scan].active {
			n.visitFlow(f, gen)
		}
	}
}

// retire removes f from the dense registry and every link it crosses, and
// schedules its completion callback.
func (n *Network) retire(f *Flow) {
	last := len(n.active) - 1
	if f.idx != last {
		moved := n.active[last]
		n.active[f.idx] = moved
		moved.idx = f.idx
	}
	n.active[last] = nil
	n.active = n.active[:last]
	f.idx = -1
	for i, l := range f.Path {
		l.removeFlowAt(int(f.pos[i]))
	}
	f.remaining = 0
	f.rate = 0
	f.done = true
	if f.onDone != nil {
		cb := f.onDone
		f.onDone = nil
		n.eng.Schedule(0, cb)
	}
}

// computeRates implements progressive filling over one gathered component —
// the sub-slices of the work-lists from flowStart/linkStart on: repeatedly
// find the most constrained resource, freeze its flows at the fair share, and
// continue with reduced capacities. Per-flow rate limits are treated as
// single-flow links. Flows outside the component keep their rates:
// components share no links, so their allocations are unaffected.
func (n *Network) computeRates(flowStart, linkStart int) {
	n.fillPasses++
	compFlows := n.compFlows[flowStart:]
	compLinks := n.compLinks[linkStart:]
	unfrozen := len(compFlows)
	for unfrozen > 0 {
		// Find the bottleneck: smallest fair share over links and flow caps.
		share := math.MaxFloat64
		for _, l := range compLinks {
			if l.sunfrozen == 0 {
				continue
			}
			if s := l.scap / float64(l.sunfrozen); s < share {
				share = s
			}
		}
		for _, f := range compFlows {
			if !f.frozen && f.RateLimit > 0 && f.RateLimit < share {
				share = f.RateLimit
			}
		}
		if share == math.MaxFloat64 || share < 0 {
			panic("fabric: fair-share computation failed")
		}
		// Freeze every flow constrained at this share.
		progressed := false
		for _, f := range compFlows {
			if f.frozen {
				continue
			}
			capped := f.RateLimit > 0 && f.RateLimit <= share*(1+1e-12)
			bottled := false
			if !capped {
				for _, l := range f.Path {
					if l.sunfrozen > 0 && l.scap/float64(l.sunfrozen) <= share*(1+1e-12) {
						bottled = true
						break
					}
				}
			}
			if !capped && !bottled {
				continue
			}
			f.frozen = true
			f.rate = share
			if capped && f.RateLimit < share {
				f.rate = f.RateLimit
			}
			unfrozen--
			progressed = true
			for _, l := range f.Path {
				l.scap -= f.rate
				if l.scap < 0 {
					l.scap = 0
				}
				l.sunfrozen--
			}
		}
		if !progressed {
			panic("fabric: progressive filling made no progress")
		}
	}
}

// scheduleNextCompletion arms a single event at the earliest projected flow
// completion. Any state change bumps the epoch, so stale events no-op.
func (n *Network) scheduleNextCompletion() {
	n.epoch++
	if len(n.active) == 0 {
		return
	}
	soonest := sim.Time(math.MaxInt64)
	for _, f := range n.active {
		if f.rate <= 0 {
			continue
		}
		eta := sim.Time(math.Ceil(f.remaining / f.rate * float64(sim.Second)))
		if eta < 1 {
			eta = 1
		}
		if eta < soonest {
			soonest = eta
		}
	}
	if soonest == sim.Time(math.MaxInt64) {
		panic("fabric: active flows but no positive rates (zero-capacity deadlock)")
	}
	ce := n.grabCompletionEvent()
	ce.epoch = n.epoch
	n.eng.Schedule(soonest, ce.fn)
}

// grabCompletionEvent takes a pooled completion event or builds a new one.
func (n *Network) grabCompletionEvent() *completionEvent {
	if k := len(n.cePool); k > 0 {
		ce := n.cePool[k-1]
		n.cePool = n.cePool[:k-1]
		return ce
	}
	ce := &completionEvent{} //lint:allow steady-alloc — pool miss: the event rejoins cePool when it fires
	ce.fn = func() {         //lint:allow steady-alloc — bound once per pooled event, at construction
		// This firing is the event's last use, so it can rejoin the pool
		// immediately — the reshare below may re-arm with this very entry.
		n.cePool = append(n.cePool, ce)
		if ce.epoch != n.epoch {
			return
		}
		n.advance()
		n.reshare(nil, nil)
	}
	return ce
}

// Quiesce advances accounting to the current time; call before reading
// telemetry at the end of a run.
func (n *Network) Quiesce() { n.advance() }
