package fabric

import (
	"fmt"
	"math"

	"llmbw/internal/sim"
)

// Flow is a data transfer of a fixed byte volume over a path of links. Its
// instantaneous rate is assigned by the Network's max-min fair allocation and
// may change whenever flows start, finish, or link capacities change.
type Flow struct {
	Name      string
	Path      []*Link
	Bytes     float64
	RateLimit float64 // optional per-flow cap in bytes/s; 0 = unlimited

	remaining float64
	rate      float64
	onDone    func()
	done      bool
	frozen    bool // scratch state for the fair-share computation
}

// Remaining returns the bytes left to transfer.
func (f *Flow) Remaining() float64 { return f.remaining }

// Rate returns the currently assigned rate in bytes/second.
func (f *Flow) Rate() float64 { return f.rate }

// Done reports whether the flow has completed.
func (f *Flow) Done() bool { return f.done }

// Network manages active flows over the link graph and advances them in
// virtual time.
type Network struct {
	eng    *sim.Engine
	flows  map[*Flow]struct{}
	lastAt sim.Time
	epoch  int64 // invalidates stale completion events
}

// NewNetwork creates a network bound to the engine.
func NewNetwork(eng *sim.Engine) *Network {
	return &Network{eng: eng, flows: make(map[*Flow]struct{})}
}

// Engine returns the simulation engine the network runs on.
func (n *Network) Engine() *sim.Engine { return n.eng }

// ActiveFlows returns the number of in-flight flows.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// StartFlow begins transferring f and invokes onDone (from engine context)
// when the last byte arrives. Zero-byte flows complete after one scheduler
// tick. Flows must have a non-empty path unless they are pure-latency
// zero-byte markers.
func (n *Network) StartFlow(f *Flow, onDone func()) {
	if f.Bytes < 0 {
		panic(fmt.Sprintf("fabric: flow %s with negative bytes", f.Name))
	}
	f.remaining = f.Bytes
	f.onDone = onDone
	f.done = false
	if f.Bytes == 0 || len(f.Path) == 0 {
		n.eng.Schedule(0, func() {
			f.done = true
			if onDone != nil {
				onDone()
			}
		})
		return
	}
	n.advance()
	n.flows[f] = struct{}{}
	for _, l := range f.Path {
		l.flows++
	}
	n.reshare()
}

// Transfer is a convenience wrapper for processes: it starts the flow and
// blocks p until completion.
func (n *Network) Transfer(p *sim.Proc, f *Flow) {
	p.Await(func(resume func()) { n.StartFlow(f, resume) })
}

// SetCapacity changes a link's capacity mid-simulation (e.g. an NVMe write
// cache filling up) and reallocates flow rates.
func (n *Network) SetCapacity(l *Link, capacity float64) {
	if capacity <= 0 {
		panic(fmt.Sprintf("fabric: non-positive capacity for %s", l.Name))
	}
	if l.capacity == capacity {
		return
	}
	n.advance()
	l.capacity = capacity
	n.reshare()
}

// advance credits bytes moved since the last rate change to flows and link
// telemetry, up to the current virtual time.
func (n *Network) advance() {
	now := n.eng.Now()
	dt := now - n.lastAt
	if dt < 0 {
		panic("fabric: time went backwards")
	}
	if dt == 0 {
		n.lastAt = now
		return
	}
	sec := dt.ToSeconds()
	for f := range n.flows {
		moved := f.rate * sec
		if moved > f.remaining {
			moved = f.remaining
		}
		f.remaining -= moved
		if moved > 0 {
			for _, l := range f.Path {
				l.counter.Add(n.lastAt, now, moved*l.CountWeight)
			}
		}
	}
	n.lastAt = now
}

// reshare recomputes max-min fair rates for all active flows, retires flows
// that have (within tolerance) finished, and schedules the next completion.
func (n *Network) reshare() {
	// Retire finished flows first so they do not consume shares.
	for f := range n.flows {
		if f.remaining <= 1e-6 {
			n.finish(f)
		}
	}
	n.computeRates()
	n.scheduleNextCompletion()
}

func (n *Network) finish(f *Flow) {
	delete(n.flows, f)
	for _, l := range f.Path {
		l.flows--
	}
	f.remaining = 0
	f.rate = 0
	f.done = true
	if f.onDone != nil {
		cb := f.onDone
		f.onDone = nil
		n.eng.Schedule(0, cb)
	}
}

// computeRates implements progressive filling: repeatedly find the most
// constrained resource, freeze its flows at the fair share, and continue with
// reduced capacities. Per-flow rate limits are treated as single-flow links.
func (n *Network) computeRates() {
	if len(n.flows) == 0 {
		return
	}
	type linkState struct {
		cap      float64
		unfrozen int
	}
	states := make(map[*Link]*linkState)
	for f := range n.flows {
		f.frozen = false
		f.rate = 0
		for _, l := range f.Path {
			st := states[l]
			if st == nil {
				st = &linkState{cap: l.capacity}
				states[l] = st
			}
			st.unfrozen++
		}
	}
	unfrozen := len(n.flows)
	for unfrozen > 0 {
		// Find the bottleneck: smallest fair share over links and flow caps.
		share := math.MaxFloat64
		for _, st := range states {
			if st.unfrozen == 0 {
				continue
			}
			if s := st.cap / float64(st.unfrozen); s < share {
				share = s
			}
		}
		for f := range n.flows {
			if !f.frozen && f.RateLimit > 0 && f.RateLimit < share {
				share = f.RateLimit
			}
		}
		if share == math.MaxFloat64 || share < 0 {
			panic("fabric: fair-share computation failed")
		}
		// Freeze every flow constrained at this share.
		progressed := false
		for f := range n.flows {
			if f.frozen {
				continue
			}
			capped := f.RateLimit > 0 && f.RateLimit <= share*(1+1e-12)
			bottled := false
			if !capped {
				for _, l := range f.Path {
					st := states[l]
					if st.unfrozen > 0 && st.cap/float64(st.unfrozen) <= share*(1+1e-12) {
						bottled = true
						break
					}
				}
			}
			if !capped && !bottled {
				continue
			}
			f.frozen = true
			f.rate = share
			if capped && f.RateLimit < share {
				f.rate = f.RateLimit
			}
			unfrozen--
			progressed = true
			for _, l := range f.Path {
				st := states[l]
				st.cap -= f.rate
				if st.cap < 0 {
					st.cap = 0
				}
				st.unfrozen--
			}
		}
		if !progressed {
			panic("fabric: progressive filling made no progress")
		}
	}
}

// scheduleNextCompletion arms a single event at the earliest projected flow
// completion. Any state change bumps the epoch, so stale events no-op.
func (n *Network) scheduleNextCompletion() {
	n.epoch++
	if len(n.flows) == 0 {
		return
	}
	soonest := sim.Time(math.MaxInt64)
	for f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		eta := sim.Time(math.Ceil(f.remaining / f.rate * float64(sim.Second)))
		if eta < 1 {
			eta = 1
		}
		if eta < soonest {
			soonest = eta
		}
	}
	if soonest == sim.Time(math.MaxInt64) {
		panic("fabric: active flows but no positive rates (zero-capacity deadlock)")
	}
	epoch := n.epoch
	n.eng.Schedule(soonest, func() {
		if epoch != n.epoch {
			return
		}
		n.advance()
		n.reshare()
	})
}

// Quiesce advances accounting to the current time; call before reading
// telemetry at the end of a run.
func (n *Network) Quiesce() { n.advance() }
