package fabric

import (
	"fmt"
	"sync"

	"llmbw/internal/sim"
)

// Handoff executes store-and-forward transfers between two partitions of a
// sharded simulation: a source-side flow over the sender's links, a fixed
// wire latency crossing the shard boundary, then a destination-side flow
// over the receiver's links. The wire latency must be at or above the
// Connect-declared lookahead of the shard edge — that is the contract that
// lets the two shards' fair-share computations stay decoupled and the
// parallel engine stay byte-identical to serial. (A single fluid flow whose
// path spans both partitions would couple their rate allocations with zero
// lookahead; such traffic cannot be sharded and must be colocated instead.)
//
// Transfer records are pooled with bound-once closures, so a steady stream
// of handoffs allocates nothing. The pool is the one piece of state both
// shards touch — acquired on the source, released on the destination — and
// is mutex-protected; records are interchangeable, so pool order never
// affects simulation output.
type Handoff struct {
	se       *sim.ShardedEngine // nil = single-engine (local) mode
	from, to int
	latency  sim.Time
	src, dst *Network

	srcCap capCache // optional sender-side rate cap (read on the source shard)
	dstCap capCache // optional receiver-side rate cap (read on the destination shard)

	mu   sync.Mutex
	free []*handoffXfer
}

// handoffXfer is one pooled transfer in flight. The three closures are bound
// at allocation and reused for the record's lifetime: hop runs on the source
// shard when the source flow drains, land runs on the destination shard when
// the wire latency elapses, finish recycles the record before invoking the
// caller's completion.
type handoffXfer struct {
	h       *Handoff
	srcFlow Flow
	dstFlow Flow
	extra   sim.Time // added to the wire latency (deeper routes); never negative
	dstCap  *PathCap // per-send receiver cap, evaluated at land; nil = handoff cap
	onDone  func()
	hop     func()
	land    func()
	finish  func()
}

// NewHandoff creates a handoff channel from shard from to shard to with the
// given wire latency, moving bytes off network src onto network dst. With a
// sharded engine and distinct shards, the edge must have been Connected and
// the latency must respect its lookahead. A nil engine (or from == to) runs
// the hop as a plain local delay, in which case both networks must share one
// engine — the mode plain single-engine simulations and colocated shards use.
func NewHandoff(se *sim.ShardedEngine, from, to int, latency sim.Time, src, dst *Network) *Handoff {
	if latency < 0 {
		panic(fmt.Sprintf("fabric: negative handoff latency %v", latency))
	}
	if se != nil && from != to {
		la, ok := se.Lookahead(from, to)
		if !ok {
			panic(fmt.Sprintf("fabric: handoff %d->%d without a Connect edge", from, to))
		}
		if latency < la {
			panic(fmt.Sprintf("fabric: handoff %d->%d latency %v below lookahead %v", from, to, latency, la))
		}
	} else if src.eng != dst.eng {
		panic("fabric: local handoff between networks on different engines")
	}
	h := &Handoff{se: se, from: from, to: to, latency: latency, src: src, dst: dst}
	h.srcCap.net = src
	h.dstCap.net = dst
	return h
}

// Latency returns the wire latency of the hop.
func (h *Handoff) Latency() sim.Time { return h.latency }

// SetSrcCapPath caps every source-side flow at the minimum capacity along
// path (0 clears the cap). The value is cached and revalidated against the
// source network's capacity epoch, so mid-run SetCapacity calls — link
// degradations, what-if rescaling — are picked up without recomputing the
// minimum on every transfer.
func (h *Handoff) SetSrcCapPath(path []*Link) { h.srcCap.set(path) }

// SetDstCapPath is SetSrcCapPath for the destination-side flow.
func (h *Handoff) SetDstCapPath(path []*Link) { h.dstCap.set(path) }

// Send starts a store-and-forward transfer of bytes: srcPath now, the wire
// hop when the source flow drains, dstPath on the far side, then onDone
// (invoked in destination-shard engine context; may be nil). Send must be
// called from source-shard execution context, and the path slices must not
// be mutated until the transfer completes.
func (h *Handoff) Send(name string, bytes float64, srcPath, dstPath []*Link, onDone func()) {
	h.SendPlanned(name, bytes, 0, nil, nil, srcPath, dstPath, onDone)
}

// SendPlanned is Send for compiled (hierarchical) collective legs: extra adds
// route-dependent latency on top of the wire hop (deeper switching tiers —
// the total still respects the lookahead because extra is never negative),
// and srcCap/dstCap override the handoff-level rate caps per send. The caps
// are capacity-epoch-fenced PathCaps: srcCap is evaluated here (source-shard
// context), dstCap at land time (destination-shard context), so neither shard
// reads the other's network state.
func (h *Handoff) SendPlanned(name string, bytes float64, extra sim.Time, srcCap, dstCap *PathCap, srcPath, dstPath []*Link, onDone func()) {
	if extra < 0 {
		panic(fmt.Sprintf("fabric: negative handoff extra latency %v", extra))
	}
	x := h.acquire()
	x.onDone = onDone
	x.extra = extra
	x.dstCap = dstCap
	x.srcFlow.Name = name
	x.srcFlow.Path = srcPath
	x.srcFlow.Bytes = bytes
	if srcCap != nil {
		x.srcFlow.RateLimit = srcCap.Value()
	} else {
		x.srcFlow.RateLimit = h.srcCap.value()
	}
	x.dstFlow.Name = name
	x.dstFlow.Path = dstPath
	x.dstFlow.Bytes = bytes
	h.src.StartFlow(&x.srcFlow, x.hop)
}

func (h *Handoff) acquire() *handoffXfer {
	h.mu.Lock()
	if n := len(h.free); n > 0 {
		x := h.free[n-1]
		h.free[n-1] = nil
		h.free = h.free[:n-1]
		h.mu.Unlock()
		return x
	}
	h.mu.Unlock()
	x := &handoffXfer{h: h}
	x.hop = func() {
		if x.h.se != nil {
			x.h.se.Inject(x.h.from, x.h.to, x.h.latency+x.extra, x.land)
		} else {
			x.h.dst.eng.Schedule(x.h.latency+x.extra, x.land)
		}
	}
	x.land = func() {
		if x.dstCap != nil {
			x.dstFlow.RateLimit = x.dstCap.Value()
		} else {
			x.dstFlow.RateLimit = x.h.dstCap.value()
		}
		x.h.dst.StartFlow(&x.dstFlow, x.finish)
	}
	x.finish = func() {
		cb := x.onDone
		x.onDone = nil
		x.h.recycle(x)
		if cb != nil {
			cb()
		}
	}
	return x
}

// recycle returns x to the pool before the completion callback runs, so a
// callback that immediately Sends again (ring traffic) reuses the record.
func (h *Handoff) recycle(x *handoffXfer) {
	x.srcFlow.Path = nil
	x.dstFlow.Path = nil
	x.extra = 0
	x.dstCap = nil
	h.mu.Lock()
	h.free = append(h.free, x)
	h.mu.Unlock()
}

// PoolSize reports the current free-list length — the churn tests' probe
// that steady-state traffic reuses records instead of growing the pool.
func (h *Handoff) PoolSize() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.free)
}

// PathCap is the exported form of the capacity-epoch-fenced minimum-capacity
// cache: scale × min(capacity along path), recomputed only when the owning
// network's capacity epoch moves. Hierarchical collective plans hold one per
// cross leg so replay picks up mid-run SetCapacity without recomputing route
// minima on every send. Value must be called from the owning network's shard
// context.
type PathCap struct {
	scale float64
	cache capCache
}

// NewPathCap builds a cap over path on n. A zero scale or empty path yields
// Value() == 0, which flow admission treats as "unlimited".
func NewPathCap(n *Network, scale float64, path []*Link) *PathCap {
	p := &PathCap{scale: scale}
	p.cache.net = n
	p.cache.set(path)
	return p
}

// Value returns the current cap in bytes/s (0 = unlimited).
func (p *PathCap) Value() float64 { return p.scale * p.cache.value() }

// capCache memoizes the minimum capacity along a path, fenced by the owning
// network's capacity epoch — the same revalidation discipline compiled
// collective plans use for their cached stream caps.
type capCache struct {
	net   *Network
	path  []*Link
	epoch int64
	val   float64
	valid bool
}

func (c *capCache) set(path []*Link) {
	c.path = path
	c.valid = false
}

func (c *capCache) value() float64 {
	if len(c.path) == 0 {
		return 0
	}
	if !c.valid || c.epoch != c.net.capEpoch {
		min := c.path[0].capacity
		for _, l := range c.path[1:] {
			if l.capacity < min {
				min = l.capacity
			}
		}
		c.val = min
		c.epoch = c.net.capEpoch
		c.valid = true
	}
	return c.val
}
