package fabric

import (
	"fmt"
	"math/rand"
	"testing"

	"llmbw/internal/sim"
)

// bigWindowLink returns a link whose telemetry window exceeds any virtual
// time the alloc tests reach, so bucket growth cannot contribute allocations.
func bigWindowLink(name string, capGBps float64) *Link {
	return NewLink(name, NVLink, 0, capGBps*1e9, sim.Time(1)<<60)
}

// admissionScenarioCompletions drives a randomized mix of batched admissions —
// shared and disjoint paths, rate-limited flows, zero-byte markers — and
// returns the completion timestamps in event order. The rng seed is fixed, so
// the only degree of freedom between calls is the admission path under test.
func admissionScenarioCompletions(batch bool) []sim.Time {
	defer func(old bool) { BatchAdmission = old }(BatchAdmission)
	BatchAdmission = batch
	eng := sim.New()
	net := NewNetwork(eng)
	links := []*Link{link("a", 3), link("b", 7), link("c", 2), link("d", 5)}
	rng := rand.New(rand.NewSource(99))
	var completions []sim.Time
	record := func() { completions = append(completions, eng.Now()) }
	for b := 0; b < 10; b++ {
		var flows []*Flow
		for j := 0; j < 1+rng.Intn(6); j++ {
			perm := rng.Perm(len(links))[:1+rng.Intn(3)]
			path := make([]*Link, len(perm))
			for k, li := range perm {
				path[k] = links[li]
			}
			f := &Flow{Name: fmt.Sprintf("b%df%d", b, j), Path: path,
				Bytes: float64(rng.Intn(40)) * 5e7} // occasionally zero bytes
			if rng.Intn(4) == 0 {
				f.RateLimit = 2e8 + rng.Float64()*2e9
			}
			flows = append(flows, f)
		}
		at := sim.Time(rng.Intn(1500)) * sim.Millisecond
		eng.ScheduleAt(at, func() { net.StartFlows(flows, record) })
	}
	eng.Run()
	return completions
}

// TestStartFlowsMatchesSerialAdmission is the fabric-level determinism A/B:
// batched admission must produce exactly the completion sequence of admitting
// the same flows one StartFlow at a time — same timestamps, same order, down
// to the nanosecond. This is the contract the golden tests lean on.
func TestStartFlowsMatchesSerialAdmission(t *testing.T) {
	serial := admissionScenarioCompletions(false)
	batched := admissionScenarioCompletions(true)
	if len(serial) != len(batched) {
		t.Fatalf("completion counts differ: serial %d, batched %d", len(serial), len(batched))
	}
	if len(serial) == 0 {
		t.Fatal("scenario produced no completions")
	}
	for i := range serial {
		if serial[i] != batched[i] {
			t.Errorf("completion %d: serial at %v, batched at %v", i, serial[i], batched[i])
		}
	}
}

// TestStartFlowsOneResharePerComponent pins the reshare-count probe: a batch
// costs one progressive-filling pass per connected component it touches, not
// one per flow.
func TestStartFlowsOneResharePerComponent(t *testing.T) {
	eng := sim.New()
	net := NewNetwork(eng)
	a, b := link("a", 8), link("b", 4)
	batch := []*Flow{
		{Path: []*Link{a}, Bytes: 1e9},
		{Path: []*Link{a}, Bytes: 2e9},
		{Path: []*Link{a}, Bytes: 3e9},
		{Path: []*Link{b}, Bytes: 1e9},
		{Path: []*Link{b}, Bytes: 2e9},
	}
	before := net.Reshares()
	net.StartFlows(batch, nil)
	if got := net.Reshares() - before; got != 2 {
		t.Errorf("5 flows over 2 disjoint components cost %d reshares, want 2", got)
	}
	eng.Run()

	// A leg spanning both links merges everything into one component.
	bridge := []*Flow{
		{Path: []*Link{a}, Bytes: 1e9},
		{Path: []*Link{b}, Bytes: 1e9},
		{Path: []*Link{a, b}, Bytes: 1e9},
	}
	before = net.Reshares()
	net.StartFlows(bridge, nil)
	if got := net.Reshares() - before; got != 1 {
		t.Errorf("bridged batch cost %d reshares, want 1", got)
	}
	eng.Run()
}

// TestSerialAdmissionResharesPerFlow documents the cost batching removes:
// the fallback path pays one reshare per admitted flow.
func TestSerialAdmissionResharesPerFlow(t *testing.T) {
	defer func(old bool) { BatchAdmission = old }(BatchAdmission)
	BatchAdmission = false
	eng := sim.New()
	net := NewNetwork(eng)
	l := link("l", 8)
	batch := make([]*Flow, 5)
	for i := range batch {
		batch[i] = &Flow{Path: []*Link{l}, Bytes: 1e9}
	}
	before := net.Reshares()
	net.StartFlows(batch, nil)
	if got := net.Reshares() - before; got != 5 {
		t.Errorf("serial admission of 5 flows cost %d reshares, want 5", got)
	}
	eng.Run()
}

// TestBatchedAdmissionSteadyStateZeroAlloc pins the allocation contract of
// the resharing hot path: once registries, scratch buffers and the completion
// event pool have warmed up, admitting and draining a batch allocates nothing.
func TestBatchedAdmissionSteadyStateZeroAlloc(t *testing.T) {
	eng := sim.New()
	net := NewNetwork(eng)
	l1, l2 := bigWindowLink("l1", 10), bigWindowLink("l2", 10)
	flows := []*Flow{
		{Path: []*Link{l1}, Bytes: 1e9},
		{Path: []*Link{l1, l2}, Bytes: 2e9},
		{Path: []*Link{l2}, Bytes: 1e9},
	}
	iterate := func() {
		net.StartFlows(flows, nil)
		eng.Run()
	}
	for i := 0; i < 3; i++ {
		iterate() // warm up slice capacities and the event pool
	}
	if avg := testing.AllocsPerRun(50, iterate); avg != 0 {
		t.Errorf("steady-state batched admission allocates %v allocs/run, want 0", avg)
	}
}

// TestStartFlowsZeroByteAndEmptyBatch covers the degenerate inputs: an empty
// batch is a no-op, and zero-byte flows in a batch still complete with their
// callback exactly once each.
func TestStartFlowsZeroByteAndEmptyBatch(t *testing.T) {
	eng := sim.New()
	net := NewNetwork(eng)
	net.StartFlows(nil, func() { t.Error("empty batch invoked callback") })
	l := link("l", 10)
	calls := 0
	net.StartFlows([]*Flow{
		{Bytes: 0},
		{Path: []*Link{l}, Bytes: 1e9},
		{Path: []*Link{l}, Bytes: 0},
	}, func() { calls++ })
	eng.Run()
	if calls != 3 {
		t.Errorf("callback ran %d times, want 3", calls)
	}
	if net.ActiveFlows() != 0 {
		t.Errorf("%d flows still active", net.ActiveFlows())
	}
}
