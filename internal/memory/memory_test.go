package memory

import (
	"testing"
	"testing/quick"

	"llmbw/internal/model"
)

const batch = model.DefaultBatchSize

// within checks x is within frac of want.
func within(t *testing.T, name string, got, want, frac float64) {
	t.Helper()
	lo, hi := want*(1-frac), want*(1+frac)
	if got < lo || got > hi {
		t.Errorf("%s = %.2f, want %.2f ±%.0f%%", name, got, want, frac*100)
	}
}

// TestAchievedModelSizeSingleNode reproduces the shape of the paper's Fig 6-a:
// maximum model sizes on one node (4 GPUs).
func TestAchievedModelSizeSingleNode(t *testing.T) {
	cases := []struct {
		p      Profile
		paperB float64
	}{
		{DDPProfile(4), 1.4},
		{MegatronProfile(4), 5.5},
		{ZeROProfile(1, 4, NoOffload), 4.4},
		{ZeROProfile(2, 4, NoOffload), 5.2},
		{ZeROProfile(3, 4, NoOffload), 6.6},
	}
	for _, c := range cases {
		g := c.p.MaxModel(batch, 4)
		within(t, c.p.Name+" max size (B)", g.ParamsB(), c.paperB, 0.15)
	}
}

// TestAchievedModelSizeDualNode reproduces Fig 6-b (8 GPUs).
func TestAchievedModelSizeDualNode(t *testing.T) {
	cases := []struct {
		p      Profile
		paperB float64
	}{
		{DDPProfile(8), 1.4},
		{MegatronProfile(8), 11.4},
		{ZeROProfile(1, 8, NoOffload), 6.4},
		{ZeROProfile(2, 8, NoOffload), 8.5},
		{ZeROProfile(3, 8, NoOffload), 13.5},
	}
	for _, c := range cases {
		g := c.p.MaxModel(batch, 4)
		within(t, c.p.Name+" dual-node max size (B)", g.ParamsB(), c.paperB, 0.15)
	}
}

// TestOffloadModelSizes reproduces Fig 13-a: the largest single-node models
// with ZeRO-Offload and ZeRO-Infinity.
func TestOffloadModelSizes(t *testing.T) {
	cases := []struct {
		p      Profile
		paperB float64
	}{
		{ZeROProfile(1, 4, CPUOffload), 8.9},
		{ZeROProfile(2, 4, CPUOffload), 14.2},
		{ZeROProfile(3, 4, NVMeOptimizer), 33.3},
	}
	for _, c := range cases {
		g := c.p.MaxModel(batch, 4)
		within(t, c.p.Name+" offload max size (B)", g.ParamsB(), c.paperB, 0.20)
	}
}

// TestSizeOrderings asserts the qualitative conclusion of Fig 6 independent of
// calibration: ZeRO-3 > Megatron > ZeRO-2 > ZeRO-1 > DDP on both node counts.
func TestSizeOrderings(t *testing.T) {
	for _, gpus := range []int{4, 8} {
		ddp := DDPProfile(gpus).MaxModel(batch, 4).Params()
		meg := MegatronProfile(gpus).MaxModel(batch, 4).Params()
		z1 := ZeROProfile(1, gpus, NoOffload).MaxModel(batch, 4).Params()
		z2 := ZeROProfile(2, gpus, NoOffload).MaxModel(batch, 4).Params()
		z3 := ZeROProfile(3, gpus, NoOffload).MaxModel(batch, 4).Params()
		if !(z3 > meg && meg > z2 && z2 > z1 && z1 > ddp) {
			t.Errorf("gpus=%d ordering violated: ddp=%d z1=%d z2=%d meg=%d z3=%d",
				gpus, ddp, z1, z2, meg, z3)
		}
	}
}

func TestMegatronFitsRoughly4xDDP(t *testing.T) {
	ddp := DDPProfile(4).MaxModel(batch, 4).ParamsB()
	meg := MegatronProfile(4).MaxModel(batch, 4).ParamsB()
	within(t, "Megatron/DDP size ratio", meg/ddp, 4.0, 0.25)
}

func TestInfinitySixTimesMegatronSingleNode(t *testing.T) {
	meg := MegatronProfile(4).MaxModel(batch, 4).ParamsB()
	inf := ZeROProfile(3, 4, NVMeOptimizer).MaxModel(batch, 4).ParamsB()
	if ratio := inf / meg; ratio < 4.5 {
		t.Errorf("Infinity/Megatron = %.1fx, paper reports ~6x; want >4.5x", ratio)
	}
}

func TestStateBytesMatchZeROLaws(t *testing.T) {
	g := model.NewGPT(26)
	psi := float64(g.Params())
	cases := []struct {
		p    Profile
		want float64
	}{
		{DDPProfile(4), 16 * psi},
		{ZeROProfile(1, 4, NoOffload), 7 * psi},   // 4Ψ + 12Ψ/4
		{ZeROProfile(2, 4, NoOffload), 5.5 * psi}, // 2Ψ + 14Ψ/4
		{ZeROProfile(3, 4, NoOffload), 4 * psi},   // 16Ψ/4
		{MegatronProfile(4), 4 * psi},
	}
	for _, c := range cases {
		got := c.p.StateBytesPerGPU(g.Params())
		within(t, c.p.Name+" state bytes", got, c.want, 1e-9)
	}
}

func TestOffloadMovesOptimizerOffGPU(t *testing.T) {
	g := model.NewGPT(100)
	on := ZeROProfile(2, 4, NoOffload).StateBytesPerGPU(g.Params())
	off := ZeROProfile(2, 4, CPUOffload).StateBytesPerGPU(g.Params())
	if off >= on {
		t.Errorf("CPU offload did not reduce GPU states: %v >= %v", off, on)
	}
	u := ZeROProfile(2, 4, CPUOffload).Plan(g, batch, 4)
	if u.CPUTotal <= HostBaselineBytes {
		t.Error("CPU offload shows no host memory growth")
	}
}

func TestInfinityUsesNVMe(t *testing.T) {
	g := model.NewGPT(224) // ~11.4B
	u := ZeROProfile(3, 4, NVMeOptimizer).Plan(g, batch, 4)
	if u.NVMe <= 0 {
		t.Fatal("no NVMe usage for ZeRO-Infinity")
	}
	// ~12 bytes/param optimizer image.
	within(t, "NVMe bytes/param", u.NVMe/float64(g.Params()), 12, 0.01)
	all := ZeROProfile(3, 4, NVMeOptimizerAndParams).Plan(g, batch, 4)
	if all.NVMe <= u.NVMe {
		t.Error("offloading params should increase NVMe usage")
	}
}

// TestFig11MemoryComposition checks the consolidation memory picture for the
// 11.4 B model (paper Fig 11-b): CPU dominates for offload runs.
func TestFig11MemoryComposition(t *testing.T) {
	g := model.NewGPT(224)
	z2 := ZeROProfile(2, 4, CPUOffload).Plan(g, batch, 4)
	if z2.CPUTotal < z2.GPUTotal {
		t.Errorf("ZeRO-2 (CPU): CPU (%v) should exceed GPU (%v)", z2.CPUTotal, z2.GPUTotal)
	}
	within(t, "ZeRO-2(CPU) CPU GB", z2.CPUTotal/GB, 353, 0.25)
	z3 := ZeROProfile(3, 4, CPUOffload).Plan(g, batch, 4)
	within(t, "ZeRO-3(CPU) CPU GB", z3.CPUTotal/GB, 295, 0.25)
	inf := ZeROProfile(3, 4, NVMeOptimizer).Plan(g, batch, 4)
	within(t, "Infinity CPU GB", inf.CPUTotal/GB, 317, 0.25)
	within(t, "Infinity NVMe GB", inf.NVMe/GB, 129, 0.20)
	all := ZeROProfile(3, 4, NVMeOptimizerAndParams).Plan(g, batch, 4)
	within(t, "Infinity opt+param CPU GB", all.CPUTotal/GB, 488, 0.25)
	within(t, "Infinity opt+param NVMe GB", all.NVMe/GB, 150, 0.20)
}

func TestNonOffloadHostMemorySmall(t *testing.T) {
	// Paper Sec IV-D: 18-25 GB CPU for all non-offload configurations.
	g := model.NewGPT(26)
	for _, p := range []Profile{DDPProfile(4), MegatronProfile(4), ZeROProfile(3, 4, NoOffload)} {
		u := p.Plan(g, batch, 4)
		if u.CPUTotal < 15*GB || u.CPUTotal > 30*GB {
			t.Errorf("%s host memory = %.0f GB, want 18-25", p.Name, u.CPUTotal/GB)
		}
	}
}

// Property: memory plans are monotone in layer count on every tier.
func TestPlanMonotoneProperty(t *testing.T) {
	profiles := []Profile{
		DDPProfile(4), MegatronProfile(8),
		ZeROProfile(1, 8, NoOffload), ZeROProfile(2, 4, CPUOffload),
		ZeROProfile(3, 4, NVMeOptimizerAndParams),
	}
	f := func(raw uint8, pi uint8) bool {
		p := profiles[int(pi)%len(profiles)]
		l := int(raw)%200 + 1
		a := p.Plan(model.NewGPT(l), batch, 4)
		b := p.Plan(model.NewGPT(l+1), batch, 4)
		return b.PerGPU > a.PerGPU && b.CPUTotal >= a.CPUTotal && b.NVMe >= a.NVMe
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: MaxLayers is exactly the fit boundary.
func TestMaxLayersBoundaryProperty(t *testing.T) {
	profiles := []Profile{
		DDPProfile(4), MegatronProfile(4), ZeROProfile(2, 8, NoOffload),
		ZeROProfile(1, 4, CPUOffload), ZeROProfile(3, 4, NVMeOptimizer),
	}
	for _, p := range profiles {
		l := p.MaxLayers(batch, 4)
		if l == 0 {
			t.Errorf("%s fits nothing", p.Name)
			continue
		}
		if !p.Fits(model.NewGPT(l), batch, 4) {
			t.Errorf("%s: MaxLayers %d does not fit", p.Name, l)
		}
		if p.Fits(model.NewGPT(l+1), batch, 4) {
			t.Errorf("%s: MaxLayers %d not maximal", p.Name, l)
		}
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	good := DDPProfile(4)
	if err := good.Validate(); err != nil {
		t.Errorf("good profile rejected: %v", err)
	}
	bad := good
	bad.GradResident = 2
	if bad.Validate() == nil {
		t.Error("residency > 1 accepted")
	}
	bad = good
	bad.OptShards = 0
	if bad.Validate() == nil {
		t.Error("zero shards accepted")
	}
}

func TestProfileConstructorsPanicOnMisuse(t *testing.T) {
	for name, fn := range map[string]func(){
		"stage 0":           func() { ZeROProfile(0, 4, NoOffload) },
		"stage 4":           func() { ZeROProfile(4, 4, NoOffload) },
		"z1 nvme":           func() { ZeROProfile(1, 4, NVMeOptimizer) },
		"z2 nvme opt+param": func() { ZeROProfile(2, 4, NVMeOptimizerAndParams) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestUsageAccessors(t *testing.T) {
	u := Usage{PerGPU: 10 * GB, GPUTotal: 40 * GB, CPUTotal: 100 * GB, NVMe: 50 * GB}
	if u.Total() != 190*GB {
		t.Errorf("Total = %v", u.Total())
	}
	if u.String() == "" {
		t.Error("empty usage string")
	}
	if OnGPU.String() != "GPU" || OnNVMe.String() != "NVMe" || Device(9).String() == "" {
		t.Error("device strings wrong")
	}
	for _, o := range []Offload{NoOffload, CPUOffload, NVMeOptimizer, NVMeOptimizerAndParams, Offload(9)} {
		if o.String() == "" {
			t.Errorf("offload %d renders empty", int(o))
		}
	}
}

func TestRoundUpHelper(t *testing.T) {
	if roundUp(1.2) != 2 || roundUp(3.0) != 3 {
		t.Error("roundUp wrong")
	}
}
