package memory

import "fmt"

// Offload selects where offloadable model states go, mirroring the paper's
// Table I capability matrix.
type Offload int

// Offload destinations.
const (
	NoOffload Offload = iota
	CPUOffload
	NVMeOptimizer          // ZeRO-Infinity: optimizer states on NVMe
	NVMeOptimizerAndParams // ZeRO-Infinity: optimizer + parameters on NVMe
)

func (o Offload) String() string {
	switch o {
	case NoOffload:
		return "none"
	case CPUOffload:
		return "cpu"
	case NVMeOptimizer:
		return "nvme-opt"
	case NVMeOptimizerAndParams:
		return "nvme-opt+param"
	}
	return fmt.Sprintf("Offload(%d)", int(o))
}

// DDPProfile models PyTorch DistributedDataParallel: everything replicated,
// full activations (the plain GPT-2 training script does not checkpoint),
// plus DDP's flattened gradient-bucket copy.
func DDPProfile(dataParallel int) Profile {
	return Profile{
		Name:             "DDP",
		DataParallel:     dataParallel,
		ModelParallel:    1,
		ParamShards:      1,
		GradShards:       1,
		OptShards:        1,
		GradResident:     1,
		ExtraGPUPerParam: DDPGradCopyPerParam,
	}
}

// MegatronProfile models Megatron-LM tensor/pipeline model parallelism of
// total degree mp (the paper runs pure model parallelism across all GPUs:
// degree 4 on one node, 8 on two). Activations shrink with the tensor slices
// but are not checkpointed in the paper's configuration.
func MegatronProfile(mp int) Profile {
	return Profile{
		Name:          fmt.Sprintf("Megatron-LM(MP=%d)", mp),
		DataParallel:  1,
		ModelParallel: mp,
		ParamShards:   1,
		GradShards:    1,
		OptShards:     1,
		GradResident:  1,
	}
}

// ZeROProfile models DeepSpeed ZeRO at a given stage (1, 2 or 3) with n-way
// data parallelism and the chosen offload destination. DeepSpeed runs enable
// activation checkpointing (as the DeepSpeed GPT-2 examples do).
func ZeROProfile(stage, n int, off Offload) Profile {
	if stage < 1 || stage > 3 {
		panic(fmt.Sprintf("memory: ZeRO stage %d out of range", stage))
	}
	if off != NoOffload {
		if stage < 3 && off != CPUOffload {
			panic(fmt.Sprintf("memory: ZeRO-%d supports only CPU offload (Table I)", stage))
		}
	}
	p := Profile{
		Name:           fmt.Sprintf("ZeRO-%d", stage),
		DataParallel:   n,
		ModelParallel:  1,
		ParamShards:    1,
		GradShards:     1,
		OptShards:      n,
		GradResident:   1,
		ActivationCkpt: true,
	}
	if stage >= 2 {
		p.GradShards = n
		p.ExtraGPUBytes = ZeRO2ExtraBytes
	}
	if stage >= 3 {
		p.ParamShards = n
		p.ExtraGPUBytes = ZeRO3ExtraBytes
	}
	switch off {
	case NoOffload:
	case CPUOffload:
		p.Name += " (CPU)"
		p.OptDevice = OnCPU
		p.GradResident = OffloadGradResidency
		switch stage {
		case 1:
			p.CPUPerParam = OffloadCPUPerParamZ1
		case 2:
			p.CPUPerParam = OffloadCPUPerParamZ2
		case 3:
			p.CPUPerParam = OffloadCPUPerParamZ3
		}
	case NVMeOptimizer, NVMeOptimizerAndParams:
		if stage != 3 {
			panic("memory: NVMe offload requires ZeRO-3 (ZeRO-Infinity)")
		}
		p.OptDevice = OnNVMe
		p.GradResident = InfinityGradResidency
		if off == NVMeOptimizer {
			p.Name += " (NVMe opt)"
			p.CPUPerParam = InfinityCPUPerParamOpt
			p.NVMePerParam = InfinityNVMePerParamOpt
		} else {
			p.Name += " (NVMe opt+param)"
			p.ParamsDevice = OnNVMe
			p.CPUPerParam = InfinityCPUPerParamAll
			p.NVMePerParam = InfinityNVMePerParamAll
		}
	}
	return p
}
