package memory_test

import (
	"fmt"

	"llmbw/internal/memory"
	"llmbw/internal/model"
)

// Ask the ZeRO memory laws for the largest single-node ZeRO-3 model.
func Example() {
	profile := memory.ZeROProfile(3, 4, memory.NoOffload)
	largest := profile.MaxModel(model.DefaultBatchSize, 4)
	fmt.Printf("largest ZeRO-3 model on one node: %.1fB params\n", largest.ParamsB())
	// The 16Ψ/N law: per-GPU model states at 4-way sharding.
	perGPU := profile.StateBytesPerGPU(largest.Params())
	fmt.Printf("model states per GPU: %.1f GB\n", perGPU/1e9)
	// Output:
	// largest ZeRO-3 model on one node: 6.6B params
	// model states per GPU: 26.2 GB
}
