// Package memory implements the model-state memory accounting that
// determines the paper's "achieved model size" results (Fig 6, Fig 13).
//
// The foundation is the ZeRO paper's census for mixed-precision Adam: a
// model with Ψ parameters carries 16Ψ bytes of model states — 2Ψ FP16
// parameters, 2Ψ FP16 gradients, and 12Ψ optimizer state (FP32 master
// params, momentum and variance). Strategies differ in how these are
// replicated, sharded across the data-parallel group, split across
// model-parallel ranks, or offloaded to CPU/NVMe:
//
//	DDP        2Ψ + 2Ψ + 12Ψ        per GPU (all replicated)
//	Megatron   16Ψ/M                per GPU (model parallel degree M)
//	ZeRO-1     2Ψ + 2Ψ + 12Ψ/N
//	ZeRO-2     2Ψ + 2Ψ/N + 12Ψ/N
//	ZeRO-3     (2Ψ + 2Ψ + 12Ψ)/N
//	+Offload   optimizer (and for ZeRO-3 optionally parameters) to CPU
//	+Infinity  optimizer (and optionally parameters) to NVMe
//
// On top sit activations (with or without checkpointing), communication
// buffers and framework overheads. A handful of named calibration constants
// absorb what the real stack does not expose analytically (allocator
// fragmentation, DeepSpeed bucket sizing, pinned-staging factors); each is
// documented where defined and the resulting fit against the paper is
// recorded in EXPERIMENTS.md.
package memory

import (
	"fmt"
	"math"

	"llmbw/internal/model"
)

// Device is a memory tier.
type Device int

// Memory tiers.
const (
	OnGPU Device = iota
	OnCPU
	OnNVMe
)

func (d Device) String() string {
	switch d {
	case OnGPU:
		return "GPU"
	case OnCPU:
		return "CPU"
	case OnNVMe:
		return "NVMe"
	}
	return fmt.Sprintf("Device(%d)", int(d))
}

// Platform capacities (per node). The paper's XE8545 nodes.
const (
	GB            = 1e9
	GPUMemBytes   = 40 * GB   // NVIDIA A100 SXM4 40 GB
	CPUMemBytes   = 1024 * GB // 16 × 64 GB DDR4
	HostOSReserve = 40 * GB   // OS, libraries, page cache head-room
)

// Calibration constants. These stand in for behaviours of the real stack
// that have no closed form; values were fitted once against the paper's
// achieved-model-size and memory-usage numbers and are never tuned per
// experiment.
const (
	// GPUOverheadBytes is the CUDA context, cuBLAS/cuDNN workspaces and
	// allocator slack present in every process.
	GPUOverheadBytes = 4 * GB
	// HostBaselineBytes is per-node host memory used by the framework and
	// dataloader in non-offload runs (paper Sec IV-D reports 18-25 GB).
	HostBaselineBytes = 20 * GB
	// BucketBytes is the fused communication buffer (NCCL/DeepSpeed
	// allreduce & allgather buckets).
	BucketBytes = 2 * GB
	// ZeRO2ExtraBytes covers ZeRO-2's reduce-scatter partition staging.
	ZeRO2ExtraBytes = 1.5 * GB
	// ZeRO3ExtraBytes covers ZeRO-3's parameter prefetch queue, persistent
	// small-tensor pool and higher fragmentation.
	ZeRO3ExtraBytes = 4 * GB
	// DDPGradCopyPerParam models PyTorch DDP's flattened gradient-bucket
	// copy (an extra FP16 gradient image).
	DDPGradCopyPerParam = 2.0
	// OffloadGradResidency is the fraction of the gradient footprint
	// resident on GPU when the optimizer is offloaded and gradients drain
	// to pinned CPU staging during the backward pass.
	OffloadGradResidency = 0.7
	// InfinityGradResidency is the same for ZeRO-Infinity, which drains
	// per-sub-group into NVMe-bound buffers far more aggressively.
	InfinityGradResidency = 0.25
	// CPU staging bytes/param for offload modes (pinned double buffers +
	// resident offloaded states), calibrated against Fig 11-b:
	OffloadCPUPerParamZ1   = 24.0 // ZeRO-1: 12 opt + full grad staging
	OffloadCPUPerParamZ2   = 25.6 // ZeRO-2: 12 opt ×1.8 pinned + 2×2 grads
	OffloadCPUPerParamZ3   = 24.0 // ZeRO-3: params join the CPU pool
	InfinityCPUPerParamOpt = 26.0 // NVMe opt: CPU bounce buffers + params
	InfinityCPUPerParamAll = 42.0 // NVMe opt+params: more staging
	// NVMe bytes/param: the 12Ψ optimizer image (+2Ψ params when offloaded)
	// plus aio alignment slack.
	InfinityNVMePerParamOpt = 12.0
	InfinityNVMePerParamAll = 14.0
)

// Profile describes where a strategy puts each model-state component. All
// shard counts are within the data-parallel group; ModelParallel divides
// everything Megatron-style.
type Profile struct {
	Name          string
	DataParallel  int
	ModelParallel int

	ParamShards int // GPU residency divisor for FP16 params
	GradShards  int
	OptShards   int

	OptDevice    Device  // OnGPU, OnCPU or OnNVMe
	ParamsDevice Device  // OnGPU normally; OnCPU/OnNVMe for ZeRO-3 offload
	GradResident float64 // fraction of the gradient shard resident on GPU

	ActivationCkpt bool

	ExtraGPUBytes    float64 // fixed per-GPU buffers
	ExtraGPUPerParam float64 // per-param per-GPU buffers (DDP bucket copy)
	CPUPerParam      float64 // host bytes per param (offload staging)
	NVMePerParam     float64 // NVMe bytes per param
}

// Validate reports malformed profiles.
func (p Profile) Validate() error {
	if p.DataParallel < 1 || p.ModelParallel < 1 {
		return fmt.Errorf("memory: %s: parallel degrees must be >=1", p.Name)
	}
	if p.ParamShards < 1 || p.GradShards < 1 || p.OptShards < 1 {
		return fmt.Errorf("memory: %s: shard counts must be >=1", p.Name)
	}
	if p.GradResident < 0 || p.GradResident > 1 {
		return fmt.Errorf("memory: %s: gradient residency %f outside [0,1]", p.Name, p.GradResident)
	}
	return nil
}

// StateBytesPerGPU returns resident model-state bytes per GPU for Ψ params.
func (p Profile) StateBytesPerGPU(params int64) float64 {
	psi := float64(params) / float64(p.ModelParallel)
	var states float64
	if p.ParamsDevice == OnGPU {
		states += 2 * psi / float64(p.ParamShards)
	}
	states += 2 * psi / float64(p.GradShards) * p.GradResident
	if p.OptDevice == OnGPU {
		states += 12 * psi / float64(p.OptShards)
	}
	return states
}

// ActivationBytesPerGPU returns the activation footprint per GPU. With
// checkpointing only layer inputs persist plus one layer's recompute working
// set; without it, full activations are held (divided across model-parallel
// ranks, whose tensor slices shrink proportionally).
func (p Profile) ActivationBytesPerGPU(g model.GPT, batch int) float64 {
	mp := float64(p.ModelParallel)
	layers := float64(g.Layers)
	full := g.ActivationBytesPerLayer(batch)
	inputs := g.CheckpointBytesPerLayer(batch)
	embed := g.EmbeddingActivationBytes(batch) / mp
	if p.ActivationCkpt {
		return layers*inputs + full/mp + embed
	}
	return layers*(full/mp+inputs) + embed
}

// Usage is a per-node memory picture.
type Usage struct {
	PerGPU   float64 // bytes on each GPU
	GPUTotal float64 // all GPUs of the node
	CPUTotal float64
	NVMe     float64
}

// Total returns the node-wide sum, the quantity Fig 11-b stacks.
func (u Usage) Total() float64 { return u.GPUTotal + u.CPUTotal + u.NVMe }

// String renders the usage in GB.
func (u Usage) String() string {
	return fmt.Sprintf("GPU %.0f GB (%.1f/GPU), CPU %.0f GB, NVMe %.0f GB",
		u.GPUTotal/GB, u.PerGPU/GB, u.CPUTotal/GB, u.NVMe/GB)
}

// Plan computes the memory usage of training g under this profile with the
// given per-GPU batch and GPUs per node.
func (p Profile) Plan(g model.GPT, batch, gpusPerNode int) Usage {
	psi := float64(g.Params())
	perGPU := p.StateBytesPerGPU(g.Params()) +
		p.ActivationBytesPerGPU(g, batch) +
		GPUOverheadBytes + BucketBytes +
		p.ExtraGPUBytes + p.ExtraGPUPerParam*psi/float64(p.ModelParallel)
	return Usage{
		PerGPU:   perGPU,
		GPUTotal: perGPU * float64(gpusPerNode),
		CPUTotal: HostBaselineBytes + p.CPUPerParam*psi,
		NVMe:     p.NVMePerParam * psi,
	}
}

// Fits reports whether the plan fits node capacities.
func (p Profile) Fits(g model.GPT, batch, gpusPerNode int) bool {
	u := p.Plan(g, batch, gpusPerNode)
	return u.PerGPU <= GPUMemBytes &&
		u.CPUTotal <= CPUMemBytes-HostOSReserve &&
		u.NVMe <= 2*3200*GB // two 3.2 TB scratch drives minimum
}

// MaxLayers returns the largest layer count that fits, or 0 if even one
// layer does not. This is the paper's procedure of growing the model until
// the configuration can no longer train it.
func (p Profile) MaxLayers(batch, gpusPerNode int) int {
	if !p.Fits(model.NewGPT(1), batch, gpusPerNode) {
		return 0
	}
	lo, hi := 1, 2
	for p.Fits(model.NewGPT(hi), batch, gpusPerNode) {
		lo = hi
		hi *= 2
		if hi > 1<<16 {
			panic(fmt.Sprintf("memory: %s fit search diverged", p.Name))
		}
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if p.Fits(model.NewGPT(mid), batch, gpusPerNode) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// MaxModel returns the largest model that fits under the profile.
func (p Profile) MaxModel(batch, gpusPerNode int) model.GPT {
	l := p.MaxLayers(batch, gpusPerNode)
	if l == 0 {
		return model.GPT{}
	}
	return model.NewGPT(l)
}

// KVBytesPerToken returns the FP16 KV-cache footprint of one token across
// all layers: a key and a value vector of Hidden elements per layer. This is
// the unit of inference-serving memory pressure — KV residency per GPU is
// this divided by the tensor-parallel degree.
func KVBytesPerToken(g model.GPT) float64 {
	return 2 * model.FP16Bytes * float64(g.Hidden) * float64(g.Layers)
}

// ServeWeightBytesPerGPU returns the FP16 inference weight image resident on
// each GPU of a tensor-parallel group of degree tp (no gradients, no
// optimizer states — serving keeps only the parameters).
func ServeWeightBytesPerGPU(g model.GPT, tp int) float64 {
	if tp < 1 {
		tp = 1
	}
	return 2 * float64(g.Params()) / float64(tp)
}

// ServeKVCapacityPerGPU returns the KV-cache bytes available on each GPU
// after the weight image and the runtime overheads are resident, clamped at
// zero when the model itself does not fit.
func ServeKVCapacityPerGPU(g model.GPT, tp int) float64 {
	free := GPUMemBytes - GPUOverheadBytes - BucketBytes - ServeWeightBytesPerGPU(g, tp)
	if free < 0 {
		return 0
	}
	return free
}

// roundUp is a helper for sanity checks in tests.
func roundUp(x float64) int64 { return int64(math.Ceil(x)) }
