// Package sched holds the layer-partition arithmetic shared by the training
// strategies and the schedule compiler: round-robin splits of a model's layer
// count into gradient communication buckets (PyTorch DDP / DeepSpeed bucketing)
// and ZeRO-3 parameter prefetch groups. The strategies and the compiled
// schedule IR must agree exactly on these splits — one helper, two callers.
package sched

// RoundRobin deals items one at a time into parts slices (item i lands in
// part i%parts), the distribution PyTorch's bucket assignment produces:
// every part gets either ⌊items/parts⌋ or ⌈items/parts⌉ items. parts == 0 is
// only meaningful for items == 0 and yields an empty split.
func RoundRobin(items, parts int) []int {
	if parts < 0 {
		parts = 0
	}
	out := make([]int, parts)
	for i := 0; i < items; i++ {
		out[i%parts]++
	}
	return out
}

// Buckets splits layers into communication buckets of at most perBucket
// layers each, capped at maxBuckets buckets (NCCL stream serialization keeps
// overlapped buckets ordered, so more buckets stop paying off). Always
// returns at least one bucket; zero layers yield a single empty bucket, the
// degenerate schedule with one empty flush.
func Buckets(layers, perBucket, maxBuckets int) []int {
	n := (layers + perBucket - 1) / perBucket
	if n > maxBuckets {
		n = maxBuckets
	}
	if n < 1 {
		n = 1
	}
	return RoundRobin(layers, n)
}

// Groups splits layers into want prefetch groups, shrinking the group count
// when there are fewer layers than groups (every group holds at least one
// layer). Zero layers yield zero groups: there is nothing to prefetch.
func Groups(layers, want int) []int {
	n := want
	if layers < n {
		n = layers
	}
	return RoundRobin(layers, n)
}
