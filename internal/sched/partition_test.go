package sched

import "testing"

func sum(parts []int) int {
	s := 0
	for _, p := range parts {
		s += p
	}
	return s
}

func spread(parts []int) int {
	if len(parts) == 0 {
		return 0
	}
	min, max := parts[0], parts[0]
	for _, p := range parts {
		if p < min {
			min = p
		}
		if p > max {
			max = p
		}
	}
	return max - min
}

func TestRoundRobinEvenness(t *testing.T) {
	for items := 0; items <= 64; items++ {
		for parts := 1; parts <= 17; parts++ {
			got := RoundRobin(items, parts)
			if len(got) != parts {
				t.Fatalf("RoundRobin(%d,%d) has %d parts", items, parts, len(got))
			}
			if sum(got) != items {
				t.Fatalf("RoundRobin(%d,%d) sums to %d", items, parts, sum(got))
			}
			if spread(got) > 1 {
				t.Fatalf("RoundRobin(%d,%d) uneven: %v", items, parts, got)
			}
		}
	}
}

func TestRoundRobinDegenerate(t *testing.T) {
	if got := RoundRobin(0, 0); len(got) != 0 {
		t.Errorf("RoundRobin(0,0) = %v, want empty", got)
	}
	if got := RoundRobin(0, -3); len(got) != 0 {
		t.Errorf("RoundRobin(0,-3) = %v, want empty", got)
	}
}

func TestBucketsBoundaries(t *testing.T) {
	cases := []struct {
		layers, perBucket, maxBuckets int
		want                          []int
	}{
		// Zero layers: one empty bucket (a single empty flush).
		{0, 8, 16, []int{0}},
		// One layer, buckets bigger than the model: one bucket.
		{1, 8, 16, []int{1}},
		// Fewer layers than the bucket size: still one bucket.
		{7, 8, 16, []int{7}},
		// Exactly one bucket's worth.
		{8, 8, 16, []int{8}},
		// One layer over: two buckets, dealt round-robin.
		{9, 8, 16, []int{5, 4}},
		// Cap binds: 200 layers want 25 buckets, clamped to 16.
		{200, 8, 16, RoundRobin(200, 16)},
	}
	for _, c := range cases {
		got := Buckets(c.layers, c.perBucket, c.maxBuckets)
		if len(got) != len(c.want) {
			t.Errorf("Buckets(%d,%d,%d) = %v, want %v", c.layers, c.perBucket, c.maxBuckets, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Buckets(%d,%d,%d) = %v, want %v", c.layers, c.perBucket, c.maxBuckets, got, c.want)
				break
			}
		}
		if sum(got) != c.layers {
			t.Errorf("Buckets(%d,%d,%d) sums to %d", c.layers, c.perBucket, c.maxBuckets, sum(got))
		}
	}
}

func TestGroupsBoundaries(t *testing.T) {
	// Zero layers: nothing to prefetch, zero groups.
	if got := Groups(0, 12); len(got) != 0 {
		t.Errorf("Groups(0,12) = %v, want empty", got)
	}
	// One layer: a single singleton group.
	if got := Groups(1, 12); len(got) != 1 || got[0] != 1 {
		t.Errorf("Groups(1,12) = %v, want [1]", got)
	}
	// Fewer layers than groups: group count shrinks to the layer count, so
	// every group holds exactly one layer.
	got := Groups(5, 12)
	if len(got) != 5 {
		t.Fatalf("Groups(5,12) has %d groups, want 5", len(got))
	}
	for i, g := range got {
		if g != 1 {
			t.Errorf("Groups(5,12)[%d] = %d, want 1", i, g)
		}
	}
	// More layers than groups: all twelve groups populated, even spread.
	got = Groups(40, 12)
	if len(got) != 12 || sum(got) != 40 || spread(got) > 1 {
		t.Errorf("Groups(40,12) = %v, want 12 near-even groups summing to 40", got)
	}
}
