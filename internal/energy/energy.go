// Package energy estimates power, energy and cost for simulated training
// runs — the quantities behind the paper's motivation ("training models
// becomes more expensive and gives significant impact to the environment").
// The model is a simple component-power budget: each device draws its idle
// power plus a dynamic share proportional to its utilization during the run.
package energy

import (
	"fmt"

	"llmbw/internal/train"
)

// Component power draws for the XE8545 platform (watts).
const (
	GPUIdleW    = 60.0  // A100 SXM4 idle
	GPUActiveW  = 400.0 // A100 SXM4 at the 400 W SKU's TDP
	CPUIdleW    = 90.0  // EPYC 7763 idle
	CPUActiveW  = 280.0 // EPYC 7763 TDP
	NodeBaseW   = 350.0 // fans, DIMMs, NICs, drives, PSU losses
	GPUsPerNode = 4
	CPUsPerNode = 2
)

// DefaultPricePerKWh is a data-center electricity price in USD.
const DefaultPricePerKWh = 0.12

// Estimate is the energy accounting of one training run.
type Estimate struct {
	AvgPowerW          float64 // whole-cluster average draw
	EnergyPerIterKJ    float64
	TokensPerKWh       float64
	CostPer1BTokensUSD float64
}

// FromResult derives the estimate from a run's breakdown: GPUs draw active
// power while computing or communicating and idle power otherwise; CPUs draw
// active power during host optimizer phases.
func FromResult(res *train.Result, b train.Breakdown) Estimate {
	nodes := float64(res.Config.Nodes)
	gpuBusy := 1.0
	cpuBusy := 0.1
	if b.Total > 0 {
		gpuBusy = b.Fraction(b.Compute) + b.Fraction(b.Collective) + b.Fraction(b.Offload)
		cpuBusy = 0.1 + 0.9*b.Fraction(b.HostAdam)
	}
	gpuW := (GPUIdleW + (GPUActiveW-GPUIdleW)*gpuBusy) * GPUsPerNode
	cpuW := (CPUIdleW + (CPUActiveW-CPUIdleW)*cpuBusy) * CPUsPerNode
	power := nodes * (gpuW + cpuW + NodeBaseW)

	iterSec := res.IterTime.ToSeconds()
	tokens := float64(res.Config.Model.TokensPerIteration(res.Config.BatchPerGPU, res.Config.WorldSize()))
	e := Estimate{
		AvgPowerW:       power,
		EnergyPerIterKJ: power * iterSec / 1e3,
	}
	if iterSec > 0 && tokens > 0 {
		kWhPerIter := power * iterSec / 3.6e6
		e.TokensPerKWh = tokens / kWhPerIter
		e.CostPer1BTokensUSD = 1e9 / e.TokensPerKWh * DefaultPricePerKWh
	}
	return e
}

// String renders the estimate.
func (e Estimate) String() string {
	return fmt.Sprintf("%.1f kW avg, %.1f kJ/iter, %.0f tokens/kWh, $%.2f per 1B tokens",
		e.AvgPowerW/1e3, e.EnergyPerIterKJ, e.TokensPerKWh, e.CostPer1BTokensUSD)
}
