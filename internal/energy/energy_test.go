package energy

import (
	"strings"
	"testing"

	"llmbw/internal/memory"
	"llmbw/internal/model"
	"llmbw/internal/train"
)

func runTraced(t *testing.T, cfg train.Config) (*train.Result, train.Breakdown) {
	t.Helper()
	cfg.Trace = true
	cfg.Iterations = 2
	cfg.Warmup = 1
	res, err := train.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, train.BreakdownFor(res.Trace)
}

func TestEstimateBounds(t *testing.T) {
	res, b := runTraced(t, train.Config{Strategy: train.ZeRO2, Model: model.NewGPT(40)})
	e := FromResult(res, b)
	// One node: 4 GPUs ≤ 1.6 kW + 2 CPUs ≤ 560 W + 350 W base.
	if e.AvgPowerW < 1000 || e.AvgPowerW > 2600 {
		t.Errorf("node power = %.0f W, outside plausible range", e.AvgPowerW)
	}
	if e.TokensPerKWh <= 0 || e.CostPer1BTokensUSD <= 0 {
		t.Errorf("degenerate estimate: %+v", e)
	}
	if !strings.Contains(e.String(), "tokens/kWh") {
		t.Error("String rendering wrong")
	}
}

func TestEfficientStrategyWinsTokensPerKWh(t *testing.T) {
	g := model.NewGPT(23)
	resA, bA := runTraced(t, train.Config{Strategy: train.ZeRO2, Model: g})
	resB, bB := runTraced(t, train.Config{Strategy: train.Megatron, Model: g})
	a := FromResult(resA, bA)
	m := FromResult(resB, bB)
	if a.TokensPerKWh <= m.TokensPerKWh {
		t.Errorf("ZeRO-2 (%.0f tok/kWh) should beat Megatron-LM (%.0f) on energy", a.TokensPerKWh, m.TokensPerKWh)
	}
}

func TestIdleGPUsDrawLessPower(t *testing.T) {
	g := model.NewGPT(23)
	resFast, bFast := runTraced(t, train.Config{Strategy: train.DDP, Model: g})
	resOff, bOff := runTraced(t, train.Config{Strategy: train.ZeRO3, Offload: memory.NVMeOptimizer, Model: g})
	fast := FromResult(resFast, bFast)
	off := FromResult(resOff, bOff)
	if off.AvgPowerW >= fast.AvgPowerW {
		t.Errorf("NVMe-offload (GPUs mostly idle, %.0f W) should draw less than DDP (%.0f W)",
			off.AvgPowerW, fast.AvgPowerW)
	}
}
