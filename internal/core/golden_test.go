package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// TestGoldenOutputs pins the byte-exact output of the cheap, deterministic
// experiments. Any behavioural drift in the memory model, topology constants
// or latency model shows up here as a diff; regenerate intentionally with
// `go test ./internal/core -run Golden -update-golden`.
func TestGoldenOutputs(t *testing.T) {
	for _, id := range []string{"fig2", "fig3", "fig6", "fig14", "table1", "table3", "ext-railonly", "ext-serve"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, err := Get(id)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := e.Run(&buf, fastOpts); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", id+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s",
					id, buf.String(), want)
			}
		})
	}
}
