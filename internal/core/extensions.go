package core

import (
	"fmt"
	"io"

	"llmbw/internal/energy"
	"llmbw/internal/report"
	"llmbw/internal/sim"
	"llmbw/internal/train"
	"llmbw/internal/whatif"
)

// energyReport prints tokens-per-kWh and cost per framework — the paper's
// expense/environmental motivation quantified on the simulated cluster.
func energyReport(w io.Writer, opt Options) error {
	t := report.NewTable("Extension: energy and cost per framework (max single-node models)",
		"configuration", "avg kW", "tokens/kWh", "USD per 1B tokens")
	for _, c := range fig5Configs() {
		cfg := c.cfg
		cfg.Model = MaxModel(cfg)
		cfg.Trace = true
		cfg.Iterations = 2
		cfg.Warmup = 1
		res, err := train.RunCached(cfg)
		if err != nil {
			return err
		}
		e := energy.FromResult(res, train.BreakdownFor(res.Trace))
		t.Row(string(c.label), e.AvgPowerW/1e3, e.TokensPerKWh,
			fmt.Sprintf("$%.2f", e.CostPer1BTokensUSD))
	}
	t.Render(w)
	fmt.Fprintln(w, "finding: offload configurations draw less instantaneous power (idle GPUs)")
	fmt.Fprintln(w, "but cost far more energy per token — slow training is expensive training,")
	fmt.Fprintln(w, "the trade behind the paper's cost and environmental framing.")
	return nil
}

// breakdownReport prints the per-strategy time attribution at the small
// model — the quantitative Fig 5.
func breakdownReport(w io.Writer, opt Options) error {
	small := MaxModel(train.Config{Strategy: train.DDP})
	t := report.NewTable("Extension: iteration time breakdown (rank 0, small model)",
		"configuration", "compute", "collectives", "offload copies", "CPUAdam", "NVMe", "idle")
	pct := func(b train.Breakdown, part float64) string {
		return fmt.Sprintf("%.0f%%", part*100)
	}
	for _, c := range fig5Configs() {
		cfg := c.cfg
		cfg.Model = small
		cfg.Trace = true
		cfg.Iterations = 2
		cfg.Warmup = 1
		res, err := train.RunCached(cfg)
		if err != nil {
			return err
		}
		b := train.BreakdownFor(res.Trace)
		t.Row(string(c.label),
			pct(b, b.Fraction(b.Compute)), pct(b, b.Fraction(b.Collective)),
			pct(b, b.Fraction(b.Offload)), pct(b, b.Fraction(b.HostAdam)),
			pct(b, b.Fraction(b.NVMe)), pct(b, b.Fraction(b.GPUIdle)))
	}
	t.Render(w)
	fmt.Fprintln(w, "finding: DDP/ZeRO-1/2 are compute-bound; Megatron-LM and ZeRO-3 shift")
	fmt.Fprintln(w, "time into collectives; offloading moves the iteration into CPUAdam and")
	fmt.Fprintln(w, "NVMe staging with the GPUs idle — Fig 5's story, quantified.")
	return nil
}

// Extensions returns the beyond-the-paper studies: the ablations of the
// design choices DESIGN.md calls out and the what-if sweeps the paper's
// conclusions invite. They follow the same Experiment contract as the paper
// reproductions.
func Extensions() []Experiment {
	return []Experiment{
		{"ext-roce", "What-if: inter-node bandwidth sweep", func(w io.Writer, opt Options) error {
			return whatif.RoCEReport(w)
		}},
		{"ext-nvme-scale", "What-if: NVMe drive-count scaling (incl. 8 slots)", func(w io.Writer, opt Options) error {
			return whatif.NVMeScalingReport(w)
		}},
		{"ext-batch", "What-if: per-GPU batch size trade-off", func(w io.Writer, opt Options) error {
			return whatif.BatchReport(w)
		}},
		{"ext-xbar", "Ablation: I/O-die crossbar contention model", func(w io.Writer, opt Options) error {
			opt = opt.withDefaults()
			return whatif.XbarReport(w, sim.Seconds(opt.StressSeconds))
		}},
		{"ext-ckpt", "Ablation: activation checkpointing", func(w io.Writer, opt Options) error {
			return whatif.CheckpointReport(w)
		}},
		{"ext-hybrid", "Extension: Megatron-LM TP×PP hybrid parallelism", func(w io.Writer, opt Options) error {
			return whatif.HybridReport(w)
		}},
		{"ext-resilience", "What-if: stragglers and degraded links", func(w io.Writer, opt Options) error {
			return whatif.ResilienceReport(w)
		}},
		{"ext-platform", "Extension: mainstream vs purpose-built platform", func(w io.Writer, opt Options) error {
			return whatif.PlatformReport(w)
		}},
		{"ext-breakdown", "Extension: iteration time breakdown per strategy", breakdownReport},
		{"ext-overlap", "Ablation: comm/compute overlap via schedule rewrite", func(w io.Writer, opt Options) error {
			return whatif.OverlapReport(w)
		}},
		{"ext-scaling", "Extension: weak scaling to 8 nodes", func(w io.Writer, opt Options) error {
			return whatif.ScalingReport(w)
		}},
		{"ext-energy", "Extension: energy and cost per framework", energyReport},
		{"ext-railonly", "What-if: rail-only vs fat-tree datacenter fabrics", func(w io.Writer, opt Options) error {
			return whatif.RailOnlyReport(w, opt.Algo, opt.Shards, opt.Topo)
		}},
		{"ext-serve", "What-if: inference serving goodput vs load and bandwidth", func(w io.Writer, opt Options) error {
			return whatif.ServingReport(w)
		}},
	}
}
