package core

import (
	"testing"

	"llmbw/internal/model"
	"llmbw/internal/train"
)

// TestFig7Table5Consistency: the throughput Fig 7 reports at a strategy's
// maximum size must equal the corresponding Table V sweep cell — the two
// experiments share one simulation, so any divergence means hidden state.
func TestFig7Table5Consistency(t *testing.T) {
	cfg := train.Config{Strategy: train.ZeRO2, Nodes: 1}
	g := MaxModel(cfg)
	a, err := RunAt(cfg, g, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAt(train.Config{Strategy: train.ZeRO2, Nodes: 1}, g, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if a.AttainedTFLOPs != b.AttainedTFLOPs {
		t.Errorf("same config diverged across experiments: %v vs %v",
			a.AttainedTFLOPs, b.AttainedTFLOPs)
	}
}

// TestMaxModelMatchesMemoryPackage: core.MaxModel must agree with the
// memory profile it delegates to.
func TestMaxModelMatchesMemoryPackage(t *testing.T) {
	cfg := train.Config{Strategy: train.ZeRO3, Nodes: 2}
	g := MaxModel(cfg)
	if got := cfg.Profile().MaxLayers(model.DefaultBatchSize, 4); got != g.Layers {
		t.Errorf("MaxModel layers %d != profile MaxLayers %d", g.Layers, got)
	}
	// One layer more must not fit.
	if cfg.Profile().Fits(model.NewGPT(g.Layers+1), model.DefaultBatchSize, 4) {
		t.Error("MaxModel is not maximal")
	}
}
