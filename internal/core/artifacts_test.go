package core

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestArtifactsWritten: with ArtifactsDir set, fig5 produces valid Chrome
// trace JSON and fig9 produces CSV series.
func TestArtifactsWritten(t *testing.T) {
	dir := t.TempDir()
	opt := fastOpts
	opt.ArtifactsDir = dir

	var buf bytes.Buffer
	if err := Fig5(&buf, opt); err != nil {
		t.Fatal(err)
	}
	traces, _ := filepath.Glob(filepath.Join(dir, "fig5-*.trace.json"))
	if len(traces) != 9 {
		t.Fatalf("trace files = %d, want 9", len(traces))
	}
	raw, err := os.ReadFile(traces[0])
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil || len(events) == 0 {
		t.Fatalf("trace %s invalid: %v", traces[0], err)
	}

	if err := Fig9(&buf, opt); err != nil {
		t.Fatal(err)
	}
	csvs, _ := filepath.Glob(filepath.Join(dir, "fig9-*.csv"))
	if len(csvs) != 5 {
		t.Fatalf("csv files = %d, want 5", len(csvs))
	}
	body, err := os.ReadFile(csvs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(body), "time_s,NVLink") {
		t.Errorf("csv header wrong: %.40s", body)
	}
}

func TestArtifactPathSanitization(t *testing.T) {
	opt := Options{ArtifactsDir: "/tmp/x"}
	p := artifactPath(opt, "fig5-ZeRO-3 (2×NVMe opt).trace.json")
	if strings.ContainsAny(filepath.Base(p), " ()×") {
		t.Errorf("unsanitized artifact name: %s", p)
	}
	if artifactPath(Options{}, "x") != "" {
		t.Error("artifacts disabled should yield empty path")
	}
}
