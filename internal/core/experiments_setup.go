package core

import (
	"fmt"
	"io"

	"llmbw/internal/fabric"
	"llmbw/internal/report"
	"llmbw/internal/sim"
	"llmbw/internal/stress"
	"llmbw/internal/topology"
)

// Fig1 prints the introduction's trend: LLM parameter counts exploding while
// GPU memory creeps — a factor of 1000x for models against 5x for GPUs
// between 2018 and 2020.
func Fig1(w io.Writer, opt Options) error {
	models := report.NewTable("Fig 1-a: Large language model size", "year", "model", "params (B)")
	gpus := report.NewTable("Fig 1-b: GPU memory capacity", "year", "GPU", "memory (GB)")
	var firstModel, lastModel2020 float64
	for _, p := range report.Fig1Trend {
		if p.IsGPU {
			gpus.Row(p.Year, p.Name, p.Value)
			continue
		}
		models.Row(p.Year, p.Name, p.Value)
		if p.Year == 2018 && firstModel == 0 {
			firstModel = p.Value
		}
		if p.Year == 2020 {
			lastModel2020 = p.Value
		}
	}
	models.Render(w)
	gpus.Render(w)
	fmt.Fprintf(w, "model growth 2018-2020: %.0fx (paper: ~1000x); GPU memory growth 2017-2020: 5x\n",
		lastModel2020/firstModel)
	return nil
}

// Fig2 prints the simulated cluster's wiring: every link class with its
// per-link capacity and count, plus example routes with their crossbar
// crossings — the machine-readable form of the paper's topology figure.
func Fig2(w io.Writer, opt Options) error {
	c := topology.New(topology.DefaultConfig(2))
	t := report.NewTable("Fig 2: simulated XE8545 dual-node cluster",
		"interconnect", "links/node", "per-link GB/s", "aggregate GB/s")
	type row struct {
		class fabric.Class
		per   float64
	}
	for _, r := range []row{
		{fabric.DRAM, topology.DRAMChannelBW / 1e9},
		{fabric.XGMI, topology.XGMILinkBW / 1e9},
		{fabric.PCIeGPU, topology.PCIeGPULinkBW / 1e9},
		{fabric.NVLink, topology.NVLinkBW / 1e9},
		{fabric.PCIeNIC, topology.PCIeNICLinkBW / 1e9},
		{fabric.PCIeNVME, topology.PCIeNVMELinkBW / 1e9},
		{fabric.RoCE, topology.RoCELinkBW / 1e9},
	} {
		agg := c.TheoreticalClassBW(r.class) / 1e9
		t.Row(r.class.String(), fmt.Sprintf("%.0f", agg/r.per), r.per, agg)
	}
	t.Render(w)

	routes := report.NewTable("Example routes (crossbar crossings per paper Sec III-C4)",
		"route", "links", "crossbars", "latency")
	show := func(name string, r topology.Route) {
		xbars := 0
		for _, l := range r.Links {
			if l.Class == fabric.IODXbar {
				xbars++
			}
		}
		routes.Row(name, len(r.Links), xbars, r.Latency.String())
	}
	show("GPU0 -> NIC0 (same socket)", c.GPUToNIC(topology.GPU{Node: 0, Index: 0}, topology.NIC{Node: 0, Socket: 0}))
	show("GPU0 -> NIC1 (cross socket)", c.GPUToNIC(topology.GPU{Node: 0, Index: 0}, topology.NIC{Node: 0, Socket: 1}))
	show("CPU0 -> NIC0 (same socket)", c.CPUToNIC(0, 0, topology.NIC{Node: 0, Socket: 0}))
	show("CPU0 -> NIC1 (cross socket)", c.CPUToNIC(0, 0, topology.NIC{Node: 0, Socket: 1}))
	show("GPU0 -> remote GPU0", c.GPUToRemoteGPU(topology.GPU{Node: 0, Index: 0}, topology.GPU{Node: 1, Index: 0}))
	routes.Render(w)
	return nil
}

// Fig3 regenerates the RoCE latency sweep.
func Fig3(w io.Writer, opt Options) error {
	pts := stress.LatencySweep(stress.DefaultMessageSizes())
	t := report.NewTable("Fig 3: RoCE latency vs message size",
		"verb", "socket", "msg bytes", "latency")
	for _, p := range pts {
		sock := "same"
		if p.CrossSocket {
			sock = "cross"
		}
		t.Row(p.Verb.String(), sock, fmt.Sprintf("%.0f", p.MsgBytes), p.Latency.String())
	}
	t.Render(w)
	c := topology.New(topology.DefaultConfig(2))
	same := stress.Latency(c, stress.Send, false, 64<<10)
	cross := stress.Latency(c, stress.Send, true, 64<<10)
	fmt.Fprintf(w, "small-message SEND: same-socket %v (paper <%g µs), cross-socket %v (paper <%g µs, ~7x)\n",
		same, report.Fig3Latency.SameSocketMaxUs, cross, report.Fig3Latency.CrossSocketMaxUs)
	return nil
}

// Fig4 regenerates the four bandwidth stress scenarios.
func Fig4(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	dur := sim.Seconds(opt.StressSeconds)
	results := []stress.BandwidthResult{
		stress.CPURoCEStress(false, dur),
		stress.CPURoCEStress(true, dur),
		stress.GPURoCEStress(false, dur),
		stress.GPURoCEStress(true, dur),
	}
	t := report.NewTable("Fig 4: bandwidth stress (node-0 aggregates, GB/s)",
		"scenario", "RoCE avg", "RoCE peak", "RoCE theo", "attained", "paper",
		"xGMI avg", "DRAM avg", "PCIe-NIC avg")
	for _, r := range results {
		roce := r.Stats[fabric.RoCE]
		t.Row(r.Scenario,
			roce.Avg/1e9, roce.Peak/1e9, r.Theoretical[fabric.RoCE]/1e9,
			fmt.Sprintf("%.0f%%", r.AttainedFraction(fabric.RoCE)*100),
			fmt.Sprintf("%.0f%%", report.Fig4Stress[r.Scenario]*100),
			r.Stats[fabric.XGMI].Avg/1e9,
			r.Stats[fabric.DRAM].Avg/1e9,
			r.Stats[fabric.PCIeNIC].Avg/1e9)
	}
	t.Render(w)
	return nil
}

// Table1 prints the ZeRO stage and offload capability matrix.
func Table1(w io.Writer, opt Options) error {
	t := report.NewTable("Table I: DeepSpeed ZeRO stage and offload capability",
		"stage", "optimizer part.", "gradient part.", "parameter part.",
		"opt->CPU", "opt->NVMe", "param->CPU", "param->NVMe")
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "-"
	}
	t.Row("0", "DeepSpeed disabled", "", "", "", "", "", "")
	t.Row("1", mark(true), mark(false), mark(false), mark(true), mark(false), mark(false), mark(false))
	t.Row("2", mark(true), mark(true), mark(false), mark(true), mark(false), mark(false), mark(false))
	t.Row("3", mark(true), mark(true), mark(true), mark(true), mark(true), mark(true), mark(true))
	t.Render(w)
	return nil
}

// Table2 prints the modelled hardware and software setup.
func Table2(w io.Writer, opt Options) error {
	t := report.NewTable("Table II: hardware and software setup (simulated)", "component", "configuration")
	t.Row("Platform", "Dell PowerEdge XE8545 (2 nodes, SN3700 200GbE switch)")
	t.Row("CPU", "2x AMD EPYC 7763 per node (modelled: 8 DRAM ch/socket, 3 xGMI, IOD crossbar)")
	t.Row("Memory", "16x 64 GB DDR4-3200 per node (1024 GB)")
	t.Row("GPU", "4x NVIDIA A100 SXM4 40 GB per node, NVLink 3.0 all-to-all (4 links/pair)")
	t.Row("NVMe", "Intel D7-P5600 3.2 TB, PCIe 4.0 x4 (2 scratch/node; up to 4 in Fig 14)")
	t.Row("NIC", "2x ConnectX-6 200 Gb/s per node, RoCE")
	t.Row("Framework", "simulated PyTorch DDP / Megatron-LM / DeepSpeed ZeRO (0.7.1-era behaviour)")
	t.Render(w)
	return nil
}

// Table3 prints the interconnect bandwidth/measurement summary.
func Table3(w io.Writer, opt Options) error {
	c := topology.New(topology.DefaultConfig(1))
	t := report.NewTable("Table III: interconnect bandwidth",
		"interconnect", "links/node", "per-link GB/s (bidir)", "aggregate GB/s")
	rows := []struct {
		name  string
		class fabric.Class
		per   float64
		links string
	}{
		{"CPU-DRAM", fabric.DRAM, topology.DRAMChannelBW, "8 x (2 CPUs)"},
		{"CPU-CPU (xGMI)", fabric.XGMI, topology.XGMILinkBW, "3"},
		{"CPU-GPU (PCIe)", fabric.PCIeGPU, topology.PCIeGPULinkBW, "1 x (4 GPUs)"},
		{"GPU-GPU (NVLink)", fabric.NVLink, topology.NVLinkBW, "12 x (4 GPUs)"},
		{"CPU-NIC (PCIe)", fabric.PCIeNIC, topology.PCIeNICLinkBW, "1 x (2 NICs)"},
		{"CPU-NVMe (PCIe)", fabric.PCIeNVME, topology.PCIeNVMELinkBW, "1 x (8 slots)"},
		{"Internode (RoCE)", fabric.RoCE, topology.RoCELinkBW, "1 x (2 NICs)"},
	}
	for _, r := range rows {
		t.Row(r.name, r.links, r.per/1e9, c.TheoreticalClassBW(r.class)/1e9)
	}
	t.Render(w)
	return nil
}
