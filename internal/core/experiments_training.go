package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"llmbw/internal/fabric"
	"llmbw/internal/memory"
	"llmbw/internal/model"
	"llmbw/internal/report"
	"llmbw/internal/telemetry"
	"llmbw/internal/train"
)

// artifactPath builds a sanitized artifact filename, or "" when artifacts
// are disabled.
func artifactPath(opt Options, name string) string {
	if opt.ArtifactsDir == "" {
		return ""
	}
	clean := strings.NewReplacer(" ", "_", "(", "", ")", "", "/", "-", "×", "x").Replace(name)
	return filepath.Join(opt.ArtifactsDir, clean)
}

// writeSeriesCSV dumps a run's per-class bandwidth series.
func writeSeriesCSV(opt Options, name string, res *train.Result, classes []fabric.Class) error {
	path := artifactPath(opt, name)
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	labels := make([]string, len(classes))
	series := make([]telemetry.Series, len(classes))
	for i, cl := range classes {
		labels[i] = cl.String()
		series[i] = res.Series[cl]
	}
	return telemetry.WriteCSV(f, labels, series)
}

// evalConfigs are the five frameworks of Section IV in paper order.
var evalConfigs = []struct {
	label report.PaperConfig
	strat train.Strategy
}{
	{report.CfgDDP, train.DDP},
	{report.CfgMegatron, train.Megatron},
	{report.CfgZeRO1, train.ZeRO1},
	{report.CfgZeRO2, train.ZeRO2},
	{report.CfgZeRO3, train.ZeRO3},
}

// fig5Configs are the nine timelines of Fig 5.
func fig5Configs() []struct {
	label report.PaperConfig
	cfg   train.Config
} {
	return []struct {
		label report.PaperConfig
		cfg   train.Config
	}{
		{report.CfgDDP, train.Config{Strategy: train.DDP}},
		{report.CfgMegatron, train.Config{Strategy: train.Megatron}},
		{report.CfgZeRO1, train.Config{Strategy: train.ZeRO1}},
		{report.CfgZeRO2, train.Config{Strategy: train.ZeRO2}},
		{report.CfgZeRO3, train.Config{Strategy: train.ZeRO3}},
		{report.CfgZeRO1CPU, train.Config{Strategy: train.ZeRO1, Offload: memory.CPUOffload}},
		{report.CfgZeRO2CPU, train.Config{Strategy: train.ZeRO2, Offload: memory.CPUOffload}},
		{report.CfgInfOpt2, train.Config{Strategy: train.ZeRO3, Offload: memory.NVMeOptimizer}},
		{report.CfgInfAll2, train.Config{Strategy: train.ZeRO3, Offload: memory.NVMeOptimizerAndParams}},
	}
}

// Fig5 regenerates the single-iteration timelines for the paper's small
// (~1.4 B) model across all nine configurations.
func Fig5(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	small := MaxModel(train.Config{Strategy: train.DDP})
	fmt.Fprintf(w, "model: %v (paper uses 1.4 B)\n", small)
	t := report.NewTable("Fig 5: iteration time per configuration",
		"configuration", "iteration", "paper (ms)", "GPU idle")
	type lane struct {
		label string
		strip string
	}
	var lanes []lane
	for _, c := range fig5Configs() {
		cfg := c.cfg
		cfg.Trace = true
		cfg.Iterations = 2
		cfg.Warmup = 1
		cfg.Model = small
		res, err := train.RunCached(cfg)
		if err != nil {
			return err
		}
		sum := res.Trace.Summarize(0)
		idle := "-"
		if sum.Total > 0 {
			idle = fmt.Sprintf("%.0f%%", float64(sum.GPUIdle)/float64(sum.Total)*100)
		}
		t.Row(string(c.label), res.IterTime.String(), report.Fig5IterationMs[c.label], idle)
		lanes = append(lanes, lane{string(c.label), res.Trace.Render(0, 100)})
		if path := artifactPath(opt, "fig5-"+string(c.label)+".trace.json"); path != "" {
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := res.Trace.WriteChromeTrace(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	t.Render(w)
	fmt.Fprintln(w, "\nGPU-0 timelines (one traced iteration each):")
	for _, l := range lanes {
		fmt.Fprintf(w, "%-28s |%s|\n", l.label, l.strip)
	}
	fmt.Fprintln(w, "legend:", traceLegend())
	return nil
}

// Fig6 regenerates the achieved model sizes.
func Fig6(w io.Writer, opt Options) error {
	t := report.NewTable("Fig 6: achieved model size (billion parameters)",
		"configuration", "single node", "paper", "dual node", "paper")
	for _, c := range evalConfigs {
		single := MaxModel(train.Config{Strategy: c.strat, Nodes: 1}).ParamsB()
		dual := MaxModel(train.Config{Strategy: c.strat, Nodes: 2}).ParamsB()
		ref := report.Fig6ModelSizeB[c.label]
		t.Row(string(c.label), single, ref[0], dual, ref[1])
	}
	t.Render(w)
	return nil
}

// Fig7 regenerates the attained compute throughput at maximum model sizes.
func Fig7(w io.Writer, opt Options) error {
	t := report.NewTable("Fig 7: compute throughput (TFLOP/s)",
		"configuration", "single node", "paper", "dual node", "paper")
	for _, c := range evalConfigs {
		s, err := RunMax(train.Config{Strategy: c.strat, Nodes: 1}, opt)
		if err != nil {
			return err
		}
		d, err := RunMax(train.Config{Strategy: c.strat, Nodes: 2}, opt)
		if err != nil {
			return err
		}
		ref := report.Fig7ThroughputTFLOPs[c.label]
		t.Row(string(c.label), s.AttainedTFLOPs, ref[0], d.AttainedTFLOPs, ref[1])
	}
	t.Render(w)
	return nil
}

// Fig8 regenerates the throughput-versus-size trade-off scatter.
func Fig8(w io.Writer, opt Options) error {
	t := report.NewTable("Fig 8: trade-off of throughput vs achieved model size",
		"nodes", "configuration", "size (B)", "TFLOP/s")
	for _, nodes := range []int{1, 2} {
		for _, c := range evalConfigs {
			res, err := RunMax(train.Config{Strategy: c.strat, Nodes: nodes}, opt)
			if err != nil {
				return err
			}
			t.Row(nodes, string(c.label), res.Config.Model.ParamsB(), res.AttainedTFLOPs)
		}
	}
	t.Render(w)
	fmt.Fprintln(w, "paper conclusion: ZeRO-2 is the single-node sweet spot; ZeRO-3 maximizes dual-node size at sustained throughput")
	return nil
}

// Fig9 regenerates the single-node NVLink utilization pattern.
func Fig9(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	fmt.Fprintf(w, "Fig 9: NVLink utilization pattern over ~%.0fs of single-node training (paper plots 200 s)\n", opt.PatternSeconds)
	for _, c := range evalConfigs {
		cfg := train.Config{Strategy: c.strat, Nodes: 1}
		res, err := RunForDuration(cfg, MaxModel(cfg), opt.PatternSeconds, opt)
		if err != nil {
			return err
		}
		s := res.Series[fabric.NVLink]
		st := s.Stats()
		fmt.Fprintf(w, "%-14s |%s| avg %.1f p90 %.1f peak %.1f GB/s (paper %s)\n",
			c.label, s.Sparkline(80), st.Avg/1e9, st.P90/1e9, st.Peak/1e9,
			report.Triple(report.Table4SingleNode[c.label].NVLink[0],
				report.Table4SingleNode[c.label].NVLink[1],
				report.Table4SingleNode[c.label].NVLink[2]))
		if err := writeSeriesCSV(opt, "fig9-"+string(c.label)+".csv", res,
			[]fabric.Class{fabric.NVLink}); err != nil {
			return err
		}
	}
	return nil
}

// Fig10 regenerates the dual-node utilization patterns for NVLink,
// PCIe-GPU, PCIe-NIC and RoCE.
func Fig10(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	fmt.Fprintf(w, "Fig 10: dual-node utilization patterns over ~%.0fs (paper plots 200 s)\n", opt.PatternSeconds)
	classes := []fabric.Class{fabric.NVLink, fabric.PCIeGPU, fabric.PCIeNIC, fabric.RoCE}
	for _, c := range evalConfigs {
		cfg := train.Config{Strategy: c.strat, Nodes: 2}
		res, err := RunForDuration(cfg, MaxModel(cfg), opt.PatternSeconds, opt)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s:\n", c.label)
		for _, class := range classes {
			s := res.Series[class]
			st := s.Stats()
			fmt.Fprintf(w, "  %-9s |%s| avg %.1f peak %.1f GB/s\n",
				class, s.Sparkline(70), st.Avg/1e9, st.Peak/1e9)
		}
		if err := writeSeriesCSV(opt, "fig10-"+string(c.label)+".csv", res, classes); err != nil {
			return err
		}
	}
	return nil
}

// Table4 regenerates the full bandwidth-utilization table.
func Table4(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	t := report.NewTable("Table IV: aggregate bidirectional per-node bandwidth utilization, GB/s (avg/90th/peak)",
		"configuration", "DRAM", "xGMI", "PCIe-GPU", "PCIe-NVME", "PCIe-NIC", "NVLink", "RoCE")
	addRow := func(label string, res *train.Result) {
		cells := []any{label}
		for _, class := range fabric.MeasuredClasses() {
			st := res.Stats[class]
			cells = append(cells, report.Triple(st.Avg/1e9, st.P90/1e9, st.Peak/1e9))
		}
		t.Row(cells...)
	}
	paperRow := func(label string, r report.BandwidthRow) {
		t.Row("  (paper)",
			report.Triple(r.DRAM[0], r.DRAM[1], r.DRAM[2]),
			report.Triple(r.XGMI[0], r.XGMI[1], r.XGMI[2]),
			report.Triple(r.PCIeGPU[0], r.PCIeGPU[1], r.PCIeGPU[2]),
			report.Triple(r.PCIeNVME[0], r.PCIeNVME[1], r.PCIeNVME[2]),
			report.Triple(r.PCIeNIC[0], r.PCIeNIC[1], r.PCIeNIC[2]),
			report.Triple(r.NVLink[0], r.NVLink[1], r.NVLink[2]),
			report.Triple(r.RoCE[0], r.RoCE[1], r.RoCE[2]))
	}

	for _, nodes := range []int{1, 2} {
		section := map[int]string{1: "-- single node --", 2: "-- dual nodes --"}[nodes]
		t.Row(section)
		for _, c := range evalConfigs {
			res, err := RunMax(train.Config{Strategy: c.strat, Nodes: nodes}, opt)
			if err != nil {
				return err
			}
			addRow(string(c.label), res)
			if nodes == 1 {
				paperRow(string(c.label), report.Table4SingleNode[c.label])
			} else {
				paperRow(string(c.label), report.Table4DualNode[c.label])
			}
		}
	}

	t.Row("-- consolidate dual nodes into single node (11.4 B model) --")
	megMax := MaxModel(train.Config{Strategy: train.Megatron, Nodes: 2})
	offloads := []struct {
		label report.PaperConfig
		cfg   train.Config
	}{
		{report.CfgZeRO2CPU, train.Config{Strategy: train.ZeRO2, Offload: memory.CPUOffload}},
		{report.CfgZeRO3CPU, train.Config{Strategy: train.ZeRO3, Offload: memory.CPUOffload}},
		{report.CfgInfOpt2, train.Config{Strategy: train.ZeRO3, Offload: memory.NVMeOptimizer}},
		{report.CfgInfAll2, train.Config{Strategy: train.ZeRO3, Offload: memory.NVMeOptimizerAndParams}},
	}
	for _, c := range offloads {
		res, err := RunAt(c.cfg, megMax, opt)
		if err != nil {
			return err
		}
		addRow(string(c.label), res)
		paperRow(string(c.label), report.Table4Offload[c.label])
	}

	t.Row("-- largest model for single node with offload --")
	largest := []struct {
		label report.PaperConfig
		cfg   train.Config
	}{
		{report.CfgZeRO1CPU, train.Config{Strategy: train.ZeRO1, Offload: memory.CPUOffload}},
		{report.CfgZeRO2CPU, train.Config{Strategy: train.ZeRO2, Offload: memory.CPUOffload}},
		{report.CfgInfOpt2, train.Config{Strategy: train.ZeRO3, Offload: memory.NVMeOptimizer}},
	}
	for _, c := range largest {
		res, err := RunMax(c.cfg, opt)
		if err != nil {
			return err
		}
		addRow(fmt.Sprintf("%s max (%.1fB)", c.label, res.Config.Model.ParamsB()), res)
	}
	t.Render(w)
	return nil
}

// Table5 regenerates the throughput-sensitivity-to-model-size matrix.
func Table5(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	sizes := []float64{0.7, 1.4, 2.9, 4.4, 5.2, 5.5, 6.0, 6.6, 7.8, 8.9, 11.6, 14.2, 20.6, 26.9, 33.3}
	t := report.NewTable("Table V: sensitivity of throughput to model size (TFLOP/s; measured vs paper)",
		"configuration", "size (B)", "measured", "paper")
	rows := []struct {
		label report.PaperConfig
		cfg   train.Config
	}{
		{report.CfgDDP, train.Config{Strategy: train.DDP}},
		{report.CfgMegatron, train.Config{Strategy: train.Megatron}},
		{report.CfgZeRO1, train.Config{Strategy: train.ZeRO1}},
		{report.CfgZeRO2, train.Config{Strategy: train.ZeRO2}},
		{report.CfgZeRO3, train.Config{Strategy: train.ZeRO3}},
		{report.CfgZeRO1CPU, train.Config{Strategy: train.ZeRO1, Offload: memory.CPUOffload}},
		{report.CfgZeRO2CPU, train.Config{Strategy: train.ZeRO2, Offload: memory.CPUOffload}},
		{report.CfgInfOpt2, train.Config{Strategy: train.ZeRO3, Offload: memory.NVMeOptimizer}},
	}
	for _, r := range rows {
		maxL := r.cfg.Profile().MaxLayers(model.DefaultBatchSize, 4)
		for _, sz := range sizes {
			g := model.NewGPT(model.LayersForParams(int64(sz * 1e9)))
			if g.Layers > maxL {
				continue
			}
			res, err := RunAt(r.cfg, g, opt)
			if err != nil {
				return err
			}
			paper := ""
			if p, ok := report.Table5Sensitivity[r.label][sz]; ok {
				paper = fmt.Sprintf("%.4g", p)
			}
			t.Row(string(r.label), sz, res.AttainedTFLOPs, paper)
		}
	}
	t.Render(w)
	return nil
}
