package core

import (
	"bytes"
	"strings"
	"testing"

	"llmbw/internal/memory"
	"llmbw/internal/report"
	"llmbw/internal/train"
)

// fastOpts keeps the integration tests quick.
var fastOpts = Options{Iterations: 2, Warmup: 1, PatternSeconds: 8, StressSeconds: 3}

func runExperiment(t *testing.T, id string) string {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Run(&buf, fastOpts); err != nil {
		t.Fatalf("%s failed: %v", id, err)
	}
	return buf.String()
}

// TestEveryExperimentRuns is the end-to-end integration test: all twenty
// tables and figures regenerate without error and produce non-trivial
// output.
func TestEveryExperimentRuns(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			out := runExperiment(t, e.ID)
			if len(out) < 100 {
				t.Errorf("%s output suspiciously short:\n%s", e.ID, out)
			}
		})
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 20 {
		t.Errorf("registry has %d experiments, want 20 (14 figures + 6 tables)", len(exps))
	}
	seen := make(map[string]bool)
	for _, e := range exps {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown id accepted")
	}
	if e, err := Get("table4"); err != nil || e.ID != "table4" {
		t.Errorf("Get(table4) = %v, %v", e.ID, err)
	}
}

func TestFig6OutputMatchesPaperShape(t *testing.T) {
	out := runExperiment(t, "fig6")
	for _, want := range []string{"PyTorch DDP", "Megatron-LM", "ZeRO-3", "dual node"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig6 output missing %q", want)
		}
	}
}

func TestFig5OutputHasTimelines(t *testing.T) {
	out := runExperiment(t, "fig5")
	for _, want := range []string{"GPU-0 timelines", "legend:", "NVMe opt", "GEMM"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig5 output missing %q", want)
		}
	}
}

func TestTable4OutputHasAllSections(t *testing.T) {
	out := runExperiment(t, "table4")
	for _, want := range []string{"single node", "dual nodes", "consolidate", "largest model", "(paper)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table4 output missing %q", want)
		}
	}
}

// TestTable6OrderingMatchesPaper verifies the placement study preserves the
// paper's win/lose structure across configurations A-G.
func TestTable6OrderingMatchesPaper(t *testing.T) {
	g := MaxModel(train.Config{Strategy: train.ZeRO3, Offload: memory.NVMeOptimizer})
	var measured, paper []float64
	// A strictly ordered subset: F and G are near parity in both the paper
	// (64.61 vs 65.16) and our runs, so their relative order is noise.
	for _, name := range []string{"A", "B", "D", "G"} {
		p, err := nvmeByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := train.Config{Strategy: train.ZeRO3, Offload: memory.NVMeOptimizer, Placement: &p}
		res, err := RunAt(cfg, g, fastOpts)
		if err != nil {
			t.Fatal(err)
		}
		measured = append(measured, res.AttainedTFLOPs)
		paper = append(paper, report.Table6NvmePlacement[name].TFLOPs)
	}
	if !report.SameOrder(measured, paper) {
		t.Errorf("placement ordering diverged: measured %v vs paper %v", measured, paper)
	}
}

func TestMaxModelAndRunHelpers(t *testing.T) {
	cfg := train.Config{Strategy: train.ZeRO2}
	g := MaxModel(cfg)
	if g.Layers == 0 {
		t.Fatal("MaxModel returned empty model")
	}
	res, err := RunMax(cfg, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Model.Params() != g.Params() {
		t.Error("RunMax did not use the max model")
	}
	res2, err := RunAt(cfg, g, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.AttainedTFLOPs <= 0 {
		t.Error("RunAt produced no throughput")
	}
}

func TestRunForDurationSizesIterations(t *testing.T) {
	cfg := train.Config{Strategy: train.DDP}
	res, err := RunForDuration(cfg, MaxModel(cfg), 5, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	dur := (res.MeasureEnd - res.MeasureStart).ToSeconds()
	if dur < 2.5 || dur > 20 {
		t.Errorf("pattern run covered %.1fs, want ~5s", dur)
	}
}

func TestRunAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is slow")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf, fastOpts); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n######## "); n != 20 {
		t.Errorf("RunAll printed %d section markers, want 20", n)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Iterations == 0 || o.Warmup == 0 || o.PatternSeconds == 0 || o.StressSeconds == 0 {
		t.Errorf("defaults not filled: %+v", o)
	}
	set := Options{Iterations: 9, Warmup: 3, PatternSeconds: 1, StressSeconds: 2}
	if got := set.withDefaults(); got != set {
		t.Errorf("explicit options clobbered: %+v", got)
	}
}
