package core

import "llmbw/internal/nvme"

// nvmeByName resolves a Fig 14 placement by letter.
func nvmeByName(name string) (nvme.Placement, error) {
	return nvme.ConfigByName(name)
}
