// Package core is the public facade of the reproduction: a registry of
// experiments, one per table and figure of the paper, each of which runs the
// corresponding simulation and prints the regenerated rows or series next to
// the paper's published values.
//
// The heavy lifting lives in the substrate packages (topology, fabric,
// train, nvme, stress); core only composes them into the paper's evaluation
// protocol:
//
//	Fig 1   LLM size vs GPU memory trend
//	Fig 2   cluster topology
//	Fig 3   RoCE latency sweep (SEND / RDMA READ / RDMA WRITE)
//	Fig 4   CPU-RoCE and GPU-RoCE bandwidth stress
//	Fig 5   single-iteration timelines at the small model
//	Fig 6   achieved model size (single and dual node)
//	Fig 7   attained compute throughput (single and dual node)
//	Fig 8   throughput vs model-size trade-off
//	Fig 9   single-node NVLink utilization pattern
//	Fig 10  dual-node NVLink / PCIe / RoCE utilization patterns
//	Fig 11  consolidation throughput and memory composition
//	Fig 12  offload bandwidth utilization patterns
//	Fig 13  largest single-node models with offload
//	Fig 14  NVMe placement configurations A-G
//	Table I    ZeRO stage and offload capability matrix
//	Table II   hardware and software setup
//	Table III  interconnect bandwidths and counts
//	Table IV   bandwidth utilization (avg / 90th / peak) for all runs
//	Table V    sensitivity of throughput to model size
//	Table VI   ZeRO-Infinity vs NVMe placement configurations
package core

import (
	"fmt"
	"io"
	"sort"

	"llmbw/internal/model"
	"llmbw/internal/sim"
	"llmbw/internal/topology"
	"llmbw/internal/train"
)

// Options tunes how much simulated work each experiment performs. The zero
// value gives a fast but statistically meaningful run; raise Iterations and
// PatternSeconds to approach the paper's measurement intervals.
type Options struct {
	// Iterations measured per training run (default 3).
	Iterations int
	// Warmup iterations before measurement starts (default 1; the paper
	// collects from the fifth iteration of ten).
	Warmup int
	// PatternSeconds is the simulated duration for utilization-pattern
	// figures (default 30; the paper plots 200 s windows).
	PatternSeconds float64
	// StressSeconds is the simulated duration of bandwidth stress kernels
	// (default 10).
	StressSeconds float64
	// ArtifactsDir, when set, makes experiments write machine-readable
	// artifacts next to their textual output: Chrome trace-event JSON for
	// the Fig 5 timelines (viewable in ui.perfetto.dev) and CSV bandwidth
	// series for the pattern figures (Fig 9, 10, 12).
	ArtifactsDir string
	// Shards selects the training runs' simulation engine: > 1 the sharded
	// engine with that many shards, <= 1 the plain serial one (see
	// train.Config.Shards).
	Shards int
	// Topo, when set, adds a custom generated fabric (a topology.ParseTopoSpec
	// spec such as "fat-tree:nodes=32") to the datacenter-fabric extension
	// studies; Algo picks their collective algorithm (flat | 2level |
	// multiring, default 2level). The testbed reproductions ignore both.
	Topo string
	Algo string
}

func (o Options) withDefaults() Options {
	if o.Iterations == 0 {
		o.Iterations = 3
	}
	if o.Warmup == 0 {
		o.Warmup = 1
	}
	if o.PatternSeconds == 0 {
		o.PatternSeconds = 30
	}
	if o.StressSeconds == 0 {
		o.StressSeconds = 10
	}
	return o
}

// Experiment regenerates one table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, opt Options) error
}

// Experiments returns all experiments in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig1", "LLM size vs GPU memory trend", Fig1},
		{"fig2", "Cluster topology", Fig2},
		{"fig3", "RoCE latency sweep", Fig3},
		{"fig4", "Bandwidth stress tests", Fig4},
		{"fig5", "Single-iteration timelines", Fig5},
		{"fig6", "Achieved model size", Fig6},
		{"fig7", "Compute throughput", Fig7},
		{"fig8", "Throughput vs model size trade-off", Fig8},
		{"fig9", "Single-node NVLink utilization pattern", Fig9},
		{"fig10", "Dual-node utilization patterns", Fig10},
		{"fig11", "Consolidation throughput and memory", Fig11},
		{"fig12", "Offload utilization patterns", Fig12},
		{"fig13", "Largest single-node models", Fig13},
		{"fig14", "NVMe placement configurations", Fig14},
		{"table1", "ZeRO stage and offload capability", Table1},
		{"table2", "Hardware and software setup", Table2},
		{"table3", "Interconnect bandwidths", Table3},
		{"table4", "Bandwidth utilization measurements", Table4},
		{"table5", "Throughput sensitivity to model size", Table5},
		{"table6", "ZeRO-Infinity vs NVMe configurations", Table6},
	}
}

// Get returns the experiment with the given id, searching both the paper
// reproductions and the extension studies.
func Get(id string) (Experiment, error) {
	all := append(Experiments(), Extensions()...)
	for _, e := range all {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range all {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("core: unknown experiment %q (have %v)", id, ids)
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer, opt Options) error {
	for _, e := range Experiments() {
		fmt.Fprintf(w, "\n######## %s — %s ########\n", e.ID, e.Title)
		if err := e.Run(w, opt); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

// MaxModel returns the largest model a training configuration fits,
// mirroring the paper's procedure of growing the layer count to the limit.
func MaxModel(cfg train.Config) model.GPT {
	return model.NewGPT(cfg.Profile().MaxLayers(model.DefaultBatchSize, topology.GPUsPerNode))
}

// RunMax trains a configuration at its maximum model size.
func RunMax(cfg train.Config, opt Options) (*train.Result, error) {
	opt = opt.withDefaults()
	cfg.Model = MaxModel(cfg)
	cfg.Iterations = opt.Iterations
	cfg.Warmup = opt.Warmup
	cfg.Shards = opt.Shards
	return train.RunCached(cfg)
}

// RunAt trains a configuration at an explicit model size.
func RunAt(cfg train.Config, g model.GPT, opt Options) (*train.Result, error) {
	opt = opt.withDefaults()
	cfg.Model = g
	cfg.Iterations = opt.Iterations
	cfg.Warmup = opt.Warmup
	cfg.Shards = opt.Shards
	return train.RunCached(cfg)
}

// RunForDuration trains until roughly the requested simulated duration has
// elapsed, for the utilization-pattern figures: it estimates the iteration
// time from a short probe run and sizes the iteration count accordingly.
func RunForDuration(cfg train.Config, g model.GPT, seconds float64, opt Options) (*train.Result, error) {
	opt = opt.withDefaults()
	probe := cfg
	probe.Model = g
	probe.Iterations = 1
	probe.Warmup = 1
	probe.Shards = opt.Shards
	pr, err := train.RunCached(probe)
	if err != nil {
		return nil, err
	}
	iters := int(sim.Seconds(seconds) / pr.IterTime)
	if iters < 2 {
		iters = 2
	}
	if iters > 200 {
		iters = 200
	}
	cfg.Model = g
	cfg.Iterations = iters
	cfg.Warmup = opt.Warmup
	cfg.Shards = opt.Shards
	return train.RunCached(cfg)
}
