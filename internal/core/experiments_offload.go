package core

import (
	"fmt"
	"io"

	"llmbw/internal/fabric"
	"llmbw/internal/memory"
	"llmbw/internal/nvme"
	"llmbw/internal/report"
	"llmbw/internal/trace"
	"llmbw/internal/train"
)

func traceLegend() string { return trace.Legend() }

// consolidationConfigs are the Section V single-node configurations run at
// the largest model dual-node Megatron-LM can handle.
func consolidationConfigs() []struct {
	label report.PaperConfig
	cfg   train.Config
} {
	one := nvme.ConfigA()
	two := nvme.ConfigB()
	return []struct {
		label report.PaperConfig
		cfg   train.Config
	}{
		{report.CfgZeRO2CPU, train.Config{Strategy: train.ZeRO2, Offload: memory.CPUOffload}},
		{report.CfgZeRO3CPU, train.Config{Strategy: train.ZeRO3, Offload: memory.CPUOffload}},
		{report.CfgInfOpt1, train.Config{Strategy: train.ZeRO3, Offload: memory.NVMeOptimizer, Placement: &one}},
		{report.CfgInfAll1, train.Config{Strategy: train.ZeRO3, Offload: memory.NVMeOptimizerAndParams, Placement: &one}},
		{report.CfgInfOpt2, train.Config{Strategy: train.ZeRO3, Offload: memory.NVMeOptimizer, Placement: &two}},
		{report.CfgInfAll2, train.Config{Strategy: train.ZeRO3, Offload: memory.NVMeOptimizerAndParams, Placement: &two}},
	}
}

// Fig11 regenerates the consolidation experiment: throughput and memory
// composition when one node with offload replaces dual-node Megatron-LM.
func Fig11(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	megCfg := train.Config{Strategy: train.Megatron, Nodes: 2}
	g := MaxModel(megCfg)
	fmt.Fprintf(w, "model: %v — the largest dual-node Megatron-LM fit (paper: 11.4 B)\n", g)

	t := report.NewTable("Fig 11: consolidation throughput and memory",
		"configuration", "TFLOP/s", "paper", "GPU GB", "CPU GB", "NVMe GB", "total GB")
	meg, err := RunAt(megCfg, g, opt)
	if err != nil {
		return err
	}
	// Dual-node Megatron memory spans both nodes.
	t.Row("Megatron-LM (dual nodes)", meg.AttainedTFLOPs, report.Fig11Consolidation[report.CfgMegatron].TFLOPs,
		2*meg.Memory.GPUTotal/1e9, 2*meg.Memory.CPUTotal/1e9, 0.0,
		2*meg.Memory.Total()/1e9)
	for _, c := range consolidationConfigs() {
		res, err := RunAt(c.cfg, g, opt)
		if err != nil {
			return err
		}
		t.Row(string(c.label), res.AttainedTFLOPs, report.Fig11Consolidation[c.label].TFLOPs,
			res.Memory.GPUTotal/1e9, res.Memory.CPUTotal/1e9, res.Memory.NVMe/1e9,
			res.Memory.Total()/1e9)
	}
	t.Render(w)
	return nil
}

// Fig12 regenerates the offload bandwidth-utilization patterns.
func Fig12(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	g := MaxModel(train.Config{Strategy: train.Megatron, Nodes: 2})
	classes := []fabric.Class{fabric.NVLink, fabric.PCIeGPU, fabric.PCIeNVME, fabric.XGMI, fabric.DRAM}
	fmt.Fprintf(w, "Fig 12: offload utilization patterns over ~%.0fs, %v\n", opt.PatternSeconds, g)
	for _, c := range consolidationConfigs() {
		res, err := RunForDuration(c.cfg, g, opt.PatternSeconds, opt)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s:\n", c.label)
		for _, class := range classes {
			s := res.Series[class]
			st := s.Stats()
			fmt.Fprintf(w, "  %-9s |%s| avg %.1f peak %.1f GB/s\n",
				class, s.Sparkline(70), st.Avg/1e9, st.Peak/1e9)
		}
		if err := writeSeriesCSV(opt, "fig12-"+string(c.label)+".csv", res, classes); err != nil {
			return err
		}
	}
	return nil
}

// Fig13 regenerates the largest-single-node-model experiment.
func Fig13(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	t := report.NewTable("Fig 13: largest single-node models with ZeRO-Offload / ZeRO-Infinity",
		"configuration", "size (B)", "paper", "TFLOP/s", "paper", "GPU GB", "CPU GB", "NVMe GB")
	rows := []struct {
		label report.PaperConfig
		cfg   train.Config
	}{
		{report.CfgZeRO1CPU, train.Config{Strategy: train.ZeRO1, Offload: memory.CPUOffload}},
		{report.CfgZeRO2CPU, train.Config{Strategy: train.ZeRO2, Offload: memory.CPUOffload}},
		{report.CfgInfOpt2, train.Config{Strategy: train.ZeRO3, Offload: memory.NVMeOptimizer}},
	}
	for _, r := range rows {
		res, err := RunMax(r.cfg, opt)
		if err != nil {
			return err
		}
		ref := report.Fig13Largest[r.label]
		t.Row(string(r.label), res.Config.Model.ParamsB(), ref.SizeB,
			res.AttainedTFLOPs, ref.TFLOPs,
			res.Memory.GPUTotal/1e9, res.Memory.CPUTotal/1e9, res.Memory.NVMe/1e9)
	}
	t.Render(w)
	megSingle := MaxModel(train.Config{Strategy: train.Megatron, Nodes: 1}).ParamsB()
	infMax := MaxModel(train.Config{Strategy: train.ZeRO3, Offload: memory.NVMeOptimizer}).ParamsB()
	fmt.Fprintf(w, "ZeRO-Infinity vs single-node Megatron-LM size: %.1fx (paper: ~6x)\n", infMax/megSingle)
	return nil
}

// Fig14 prints the seven NVMe placement configurations.
func Fig14(w io.Writer, opt Options) error {
	t := report.NewTable("Fig 14: NVMe placement configurations",
		"config", "drives (socket.slot)", "volumes", "rank->volume")
	for _, p := range nvme.AllConfigs() {
		drives := ""
		for i, d := range p.Drives {
			if i > 0 {
				drives += " "
			}
			drives += fmt.Sprintf("%d.%d", d.Socket, d.Slot)
		}
		vols := ""
		for i, v := range p.Volumes {
			if i > 0 {
				vols += " "
			}
			if len(v) > 1 {
				vols += fmt.Sprintf("RAID0%v", v)
			} else {
				vols += fmt.Sprintf("%v", v)
			}
		}
		t.Row(p.Name, drives, vols, fmt.Sprint(p.RankVol))
	}
	t.Render(w)
	return nil
}

// Table6 regenerates the placement study: throughput plus xGMI and
// PCIe-NVMe statistics for configurations A through G at the largest
// ZeRO-Infinity model.
func Table6(w io.Writer, opt Options) error {
	opt = opt.withDefaults()
	g := MaxModel(train.Config{Strategy: train.ZeRO3, Offload: memory.NVMeOptimizer})
	fmt.Fprintf(w, "model: %v (paper: 33.3 B)\n", g)
	t := report.NewTable("Table VI: ZeRO-Infinity vs NVMe configurations",
		"config", "TFLOP/s", "paper", "xGMI avg/p90/peak", "paper", "PCIe-NVMe avg/p90/peak", "paper")
	for _, p := range nvme.AllConfigs() {
		placement := p
		cfg := train.Config{Strategy: train.ZeRO3, Offload: memory.NVMeOptimizer, Placement: &placement}
		res, err := RunAt(cfg, g, opt)
		if err != nil {
			return err
		}
		x := res.Stats[fabric.XGMI]
		n := res.Stats[fabric.PCIeNVME]
		ref := report.Table6NvmePlacement[p.Name]
		t.Row(p.Name, res.AttainedTFLOPs, ref.TFLOPs,
			report.Triple(x.Avg/1e9, x.P90/1e9, x.Peak/1e9),
			report.Triple(ref.XGMI[0], ref.XGMI[1], ref.XGMI[2]),
			report.Triple(n.Avg/1e9, n.P90/1e9, n.Peak/1e9),
			report.Triple(ref.PCIeNVMe[0], ref.PCIeNVMe[1], ref.PCIeNVMe[2]))
	}
	t.Render(w)
	return nil
}
