// Package serve models LLM inference serving on the same infrastructure
// stack the training simulator characterizes: the prefill and decode phases
// of each request are compiled into internal/schedule programs (roofline
// compute against sustained HBM bandwidth, tensor-parallel all-reduces per
// decode token through compiled collective plans, KV-cache growth in the
// memory model) and replayed by the shared executor under a
// continuous-batching admission loop. Requests arrive open-loop (Poisson),
// closed-loop, or from an explicit trace; per-request accounting yields
// TTFT, time-between-tokens, latency percentiles and goodput against SLOs.
//
// Two placements are modelled on the paper's testbed: colocated (one node
// serves both phases; prefill stalls the decode batch exactly as naive
// continuous batching does) and disaggregated (prefill on node 0, decode on
// node 1, with each request's KV cache shipped across the RoCE fabric as
// fabric flows — the bandwidth-sensitive path the what-if studies sweep).
// Generated datacenter fabrics (fat-tree / rail-only / dragonfly) run a
// coarser replica-per-node model, mirroring how internal/train treats them.
package serve

import (
	"fmt"
	"strings"

	"llmbw/internal/memory"
	"llmbw/internal/model"
	"llmbw/internal/sim"
	"llmbw/internal/topology"
)

// Arrival selects how requests enter the system.
type Arrival int

// Arrival processes.
const (
	// OpenLoop draws Poisson arrivals at RatePerSec, independent of service
	// progress (offered load is external).
	OpenLoop Arrival = iota
	// ClosedLoop keeps Concurrency requests in flight: a completion releases
	// the next request immediately.
	ClosedLoop
	// TraceDriven replays the explicit Trace entries.
	TraceDriven
)

// String returns the arrival-process name.
func (a Arrival) String() string {
	switch a {
	case OpenLoop:
		return "open"
	case ClosedLoop:
		return "closed"
	case TraceDriven:
		return "trace"
	}
	return fmt.Sprintf("Arrival(%d)", int(a))
}

// ParseArrival parses an arrival-process name.
func ParseArrival(s string) (Arrival, error) {
	switch strings.ToLower(s) {
	case "", "open", "poisson":
		return OpenLoop, nil
	case "closed":
		return ClosedLoop, nil
	case "trace":
		return TraceDriven, nil
	}
	return 0, fmt.Errorf("serve: unknown arrival process %q (want open, closed or trace)", s)
}

// TraceReq is one explicit arrival of a trace-driven workload.
type TraceReq struct {
	At           sim.Time `json:"at_ns"`
	PromptTokens int      `json:"prompt_tokens"`
	DecodeTokens int      `json:"decode_tokens"`
}

// Serving limits and bucketing granularity.
const (
	// MaxBatchLimit bounds the continuous-batching window (and sizes the
	// executor program cache).
	MaxBatchLimit = 64
	// CtxBucket quantizes the batch's maximum context length when selecting
	// a compiled decode program, so the program cache stays small while
	// KV-read traffic still grows with context.
	CtxBucket = 256
	// PromptBucket quantizes prompt lengths when selecting a compiled
	// prefill program.
	PromptBucket = 64
)

// Config describes one serving scenario. The zero value is not runnable; use
// withDefaults via Run/RunCached.
type Config struct {
	// Model is the transformer served. Zero selects the 24-layer (~1.3 B)
	// paper architecture.
	Model model.GPT
	// TensorParallel is the TP degree of one replica (1..4 on the testbed's
	// 4-GPU nodes).
	TensorParallel int
	// Nodes is the testbed node count (1 colocated, 2 for disaggregated).
	Nodes int
	// Disaggregated places prefill on node 0 and decode on node 1, shipping
	// each admitted request's KV cache across the RoCE fabric.
	Disaggregated bool
	// Topo selects the fabric: "paper" (default, the testbed Cluster) or a
	// generated datacenter spec ("fat-tree:nodes=8", "rail-only:nodes=8",
	// ...) served by the coarse replica-per-node model.
	Topo string

	// Arrival / workload shape.
	Arrival      Arrival
	RatePerSec   float64    // OpenLoop offered load (requests/s)
	Concurrency  int        // ClosedLoop in-flight requests
	Requests     int        // total requests simulated
	Warmup       int        // leading completions excluded from latency metrics
	PromptTokens int        // mean prompt length (tokens)
	DecodeTokens int        // mean generated length (tokens)
	MaxBatch     int        // continuous-batching cap
	Seed         uint64     // workload RNG seed
	Trace        []TraceReq // TraceDriven arrivals

	// SLOs for goodput accounting: a completed request counts toward
	// goodput only when TTFT and mean TBT both meet them.
	SLOTTFT sim.Time
	SLOTBT  sim.Time

	// Shards builds the cluster on a sharded engine (colocated on shard 0,
	// byte-identical at every count — the determinism A/B knob).
	Shards int
	// Window is the telemetry sampling window (0 = default).
	Window sim.Time
	// RoCEBW overrides the testbed per-NIC bandwidth (bytes/s, 0 = paper).
	RoCEBW float64
	// NICBW overrides the datacenter per-rail NIC bandwidth (bytes/s).
	NICBW float64
}

// withDefaults fills unset fields with the canonical serving scenario.
func (c Config) withDefaults() Config {
	if c.Model == (model.GPT{}) {
		c.Model = model.NewGPT(24)
	}
	if c.TensorParallel == 0 {
		c.TensorParallel = topology.GPUsPerNode
	}
	if c.Nodes == 0 {
		c.Nodes = 1
		if c.Disaggregated {
			c.Nodes = 2
		}
	}
	if c.Topo == "" {
		c.Topo = topology.PaperTopo
	}
	if c.RatePerSec == 0 {
		c.RatePerSec = 8
	}
	if c.Concurrency == 0 {
		c.Concurrency = 8
	}
	if c.Requests == 0 {
		c.Requests = 64
	}
	if c.PromptTokens == 0 {
		c.PromptTokens = 512
	}
	if c.DecodeTokens == 0 {
		c.DecodeTokens = 64
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SLOTTFT == 0 {
		c.SLOTTFT = 50 * sim.Millisecond
	}
	if c.SLOTBT == 0 {
		c.SLOTBT = 3 * sim.Millisecond
	}
	if c.Arrival == TraceDriven {
		c.Requests = len(c.Trace)
	}
	return c
}

// Validate reports configuration errors. Called on the defaulted config.
func (c Config) Validate() error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	switch {
	case c.TensorParallel < 1 || c.TensorParallel > topology.GPUsPerNode:
		return fmt.Errorf("serve: tensor parallel %d outside 1..%d", c.TensorParallel, topology.GPUsPerNode)
	case c.Requests < 1:
		return fmt.Errorf("serve: need at least one request")
	case c.Warmup < 0 || c.Warmup >= c.Requests:
		return fmt.Errorf("serve: warmup %d outside 0..%d", c.Warmup, c.Requests-1)
	case c.MaxBatch < 1 || c.MaxBatch > MaxBatchLimit:
		return fmt.Errorf("serve: max batch %d outside 1..%d", c.MaxBatch, MaxBatchLimit)
	case c.PromptTokens < 1 || c.DecodeTokens < 1:
		return fmt.Errorf("serve: prompt/decode token means must be positive")
	case c.RatePerSec <= 0 && c.Arrival == OpenLoop:
		return fmt.Errorf("serve: open-loop arrival needs a positive rate")
	case c.Concurrency < 1 && c.Arrival == ClosedLoop:
		return fmt.Errorf("serve: closed-loop arrival needs positive concurrency")
	case c.Arrival == TraceDriven && len(c.Trace) == 0:
		return fmt.Errorf("serve: trace-driven arrival needs trace entries")
	case c.Shards < 0:
		return fmt.Errorf("serve: negative shards")
	}
	if c.Topo == topology.PaperTopo {
		if c.Disaggregated && c.Nodes != 2 {
			return fmt.Errorf("serve: disaggregated testbed serving needs exactly 2 nodes, got %d", c.Nodes)
		}
		if !c.Disaggregated && c.Nodes != 1 {
			return fmt.Errorf("serve: colocated testbed serving runs on 1 node, got %d", c.Nodes)
		}
	}
	// The largest single request must fit the decode-side KV capacity, or
	// admission could never make progress.
	cap := memory.ServeKVCapacityPerGPU(c.Model, c.TensorParallel)
	if cap <= 0 {
		return fmt.Errorf("serve: %s does not fit in GPU memory at TP=%d", c.Model, c.TensorParallel)
	}
	worst := float64(c.maxPromptTokens()+c.maxDecodeTokens()) *
		memory.KVBytesPerToken(c.Model) / float64(c.TensorParallel)
	if worst > cap {
		return fmt.Errorf("serve: one request's KV footprint (%.1f GB) exceeds per-GPU KV capacity (%.1f GB)",
			worst/1e9, cap/1e9)
	}
	return nil
}

// maxPromptTokens bounds the generated prompt lengths (the generator draws
// in [mean/2, 3·mean/2]; traces are explicit).
func (c Config) maxPromptTokens() int {
	m := c.PromptTokens
	for _, t := range c.Trace {
		if t.PromptTokens > m {
			m = t.PromptTokens
		}
	}
	return m + m/2
}

func (c Config) maxDecodeTokens() int {
	m := c.DecodeTokens
	for _, t := range c.Trace {
		if t.DecodeTokens > m {
			m = t.DecodeTokens
		}
	}
	return m + m/2
}

// Name returns a short scenario label.
func (c Config) Name() string {
	place := "colocated"
	if c.Disaggregated {
		place = "disaggregated"
	}
	if c.Topo != topology.PaperTopo {
		place = c.Topo
	}
	return fmt.Sprintf("serve/%s/tp%d/%s", place, c.TensorParallel, c.Arrival)
}

// ScenarioKey returns the canonical cache key of the scenario: every field
// that affects the simulated outcome, in a fixed order.
func (c Config) ScenarioKey() string {
	return fmt.Sprintf("serve m%+v tp%d n%d dis%t topo%q a%d r%g cc%d q%d w%d p%d d%d b%d seed%d slo%d/%d sh%d win%d roce%g nic%g tr%v",
		c.Model, c.TensorParallel, c.Nodes, c.Disaggregated, c.Topo,
		c.Arrival, c.RatePerSec, c.Concurrency, c.Requests, c.Warmup,
		c.PromptTokens, c.DecodeTokens, c.MaxBatch, c.Seed,
		int64(c.SLOTTFT), int64(c.SLOTBT), c.Shards, int64(c.Window),
		c.RoCEBW, c.NICBW, c.Trace)
}
