package serve

import (
	"fmt"

	"llmbw/internal/compute"
	"llmbw/internal/fabric"
	"llmbw/internal/memory"
	"llmbw/internal/sim"
	"llmbw/internal/topology"
)

// runDC executes a serving scenario on a generated datacenter fabric. Like
// internal/train's datacenter path, the model is deliberately coarser than
// the testbed runner: each node is one tensor-parallel serving replica whose
// prefill/decode steps are roofline sleeps plus NVSwitch-domain flows, with
// requests spread round-robin over the replicas. Disaggregated placement
// dedicates a quarter of the nodes to prefill (at least one); each admitted
// request's KV cache crosses the rail fabric to its decode replica — the
// NIC-bandwidth-sensitive path the what-if study sweeps. The fabric is built
// colocated on shard 0 (the fluid KV and NVSwitch flows cannot span shards),
// so results are byte-identical at every -shards count.
func runDC(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dcCfg, err := topology.ParseTopoSpec(cfg.Topo)
	if err != nil {
		return nil, err
	}
	dcCfg.Window = cfg.Window
	if cfg.NICBW > 0 {
		dcCfg.NICBW = cfg.NICBW
	}
	cfg.Nodes = dcCfg.Nodes // report the fabric's node count, not the testbed default
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	sc, err := topology.NewDCColocated(dcCfg, shards)
	if err != nil {
		return nil, err
	}

	s := &dcServer{cfg: cfg, sc: sc, gpu: compute.DefaultGPU(), reqs: generate(cfg)}
	s.grp = sc.Groups[0]
	s.eng = sc.EngineOf(0)
	tp := cfg.TensorParallel
	s.weightBytes = memory.ServeWeightBytesPerGPU(cfg.Model, tp)
	s.kvPerTok = memory.KVBytesPerToken(cfg.Model) / float64(tp)
	s.kvCap = memory.ServeKVCapacityPerGPU(cfg.Model, tp)
	if cfg.Arrival == ClosedLoop {
		s.released = cfg.Concurrency
		if s.released > len(s.reqs) {
			s.released = len(s.reqs)
		}
	}

	nodes := sc.Nodes()
	prefillNodes := 0
	if cfg.Disaggregated {
		prefillNodes = nodes / 4
		if prefillNodes < 1 {
			prefillNodes = 1
		}
		if prefillNodes >= nodes {
			return nil, fmt.Errorf("serve: %s too small for disaggregated serving", cfg.Topo)
		}
	}
	decodeNodes := nodes - prefillNodes

	// Decode replicas own requests round-robin by id; prefill nodes (when
	// disaggregated) own the prompt passes round-robin by id.
	s.replicas = make([]*dcReplica, decodeNodes)
	for d := range s.replicas {
		s.replicas[d] = &dcReplica{
			s:     s,
			node:  prefillNodes + d,
			batch: make([]*request, cfg.MaxBatch),
		}
	}
	for i := range s.reqs {
		q := &s.reqs[i]
		rep := s.replicas[i%decodeNodes]
		rep.queue = append(rep.queue, q)
		rep.ready = append(rep.ready, nil)
	}

	if cfg.Disaggregated {
		s.prefills = make([]*dcPrefill, prefillNodes)
		for pn := range s.prefills {
			s.prefills[pn] = &dcPrefill{s: s, node: pn}
		}
		for i := range s.reqs {
			pf := s.prefills[i%prefillNodes]
			pf.queue = append(pf.queue, &s.reqs[i])
		}
		for _, pf := range s.prefills {
			pf := pf
			s.eng.Go(fmt.Sprintf("serve-prefill-%d", pf.node), pf.run)
		}
		for _, rep := range s.replicas {
			rep := rep
			s.eng.Go(fmt.Sprintf("serve-decode-%d", rep.node), rep.runDecode)
		}
	} else {
		for _, rep := range s.replicas {
			rep := rep
			s.eng.Go(fmt.Sprintf("serve-replica-%d", rep.node), rep.runColocated)
		}
	}

	end := sc.RunSim()
	if n := sc.Eng.LiveProcs(); n != 0 {
		return nil, fmt.Errorf("serve: %s deadlocked with %d live processes", cfg.Name(), n)
	}
	for _, g := range sc.Groups {
		g.Net.Quiesce()
	}
	if s.doneTotal != len(s.reqs) {
		return nil, fmt.Errorf("serve: %s completed %d of %d requests", cfg.Name(), s.doneTotal, len(s.reqs))
	}
	var kvPeak float64
	for _, rep := range s.replicas {
		if rep.kvPeak > kvPeak {
			kvPeak = rep.kvPeak
		}
	}
	return buildResult(cfg, s.reqs, end, s.steps, s.batchSum, kvPeak, s.kvCap), nil
}

// dcServer is the shared state of a datacenter serving run. All procs live
// on shard 0's engine, so mutation is serialized by the event loop.
type dcServer struct {
	cfg Config
	sc  *topology.DCShardedCluster
	grp *topology.DCCluster
	eng *sim.Engine
	gpu compute.GPUModel

	reqs []request

	weightBytes float64
	kvPerTok    float64
	kvCap       float64

	replicas []*dcReplica
	prefills []*dcPrefill

	released  int
	doneTotal int
	steps     int64
	batchSum  int64
}

// dcReplica is one decode (or colocated full-service) node.
type dcReplica struct {
	s    *dcServer
	node int

	queue []*request // assigned requests in id (= arrival) order
	next  int        // admission cursor (colocated mode)

	ready []*request
	rHead int
	rTail int

	batch    []*request
	bn       int
	inflight int
	done     int

	kvUsed float64
	kvPeak float64

	waiting bool
	idle    *sim.Waiter
}

// dcPrefill is one dedicated prefill node of a disaggregated deployment.
type dcPrefill struct {
	s       *dcServer
	node    int
	queue   []*request
	next    int
	waiting bool
	idle    *sim.Waiter
}

func (s *dcServer) wake(idle *sim.Waiter, waiting *bool) {
	if *waiting {
		*waiting = false
		s.eng.Schedule(0, idle.DoneFunc())
	}
}

// ownerOf returns the structures that must be woken when request id becomes
// runnable: its prefill node (disaggregated) or its replica (colocated).
func (s *dcServer) wakeOwner(id int) {
	if s.cfg.Disaggregated {
		pf := s.prefills[id%len(s.prefills)]
		s.wake(pf.idle, &pf.waiting)
		return
	}
	rep := s.replicas[id%len(s.replicas)]
	s.wake(rep.idle, &rep.waiting)
}

// complete retires q on replica rep: frees its KV reservation, releases the
// next closed-loop request and wakes every proc that may now make progress.
func (s *dcServer) complete(q *request, rep *dcReplica, now sim.Time) {
	q.done = now
	rep.kvUsed -= q.kv
	rep.inflight--
	rep.done++
	s.doneTotal++
	if s.cfg.Arrival == ClosedLoop && s.released < len(s.reqs) {
		nq := &s.reqs[s.released]
		nq.arrival = now
		s.released++
		s.wakeOwner(nq.id)
	}
	// Freed capacity on rep can unblock any prefill node (disaggregated) or
	// rep's own admission (colocated); the final completion must also wake
	// rep's decode loop so it can exit.
	for _, pf := range s.prefills {
		s.wake(pf.idle, &pf.waiting)
	}
	s.wake(rep.idle, &rep.waiting)
}

// reserve admits q onto rep with its full conservative KV reservation.
func (s *dcServer) reserve(q *request, rep *dcReplica, now sim.Time) {
	q.admit = now
	q.kv = float64(q.prompt+q.decode) * s.kvPerTok
	rep.kvUsed += q.kv
	if rep.kvUsed > rep.kvPeak {
		rep.kvPeak = rep.kvUsed
	}
	rep.inflight++
}

// nvCollective awaits the replica's aggregated tensor-parallel all-reduce
// traffic on the node's NVSwitch domain: two all-reduces per pass, each
// moving 2·(tp−1)·payload bytes through the fabric.
func (s *dcServer) nvCollective(p *sim.Proc, node, tokens int) {
	tp := s.cfg.TensorParallel
	if tp < 2 {
		return
	}
	bytes := 4 * float64(tp-1) * tpAllReducePayload(s.cfg.Model, tokens)
	f := &fabric.Flow{
		Name:  fmt.Sprintf("serve-nv-n%d", node),
		Path:  []*fabric.Link{s.sc.NVFabric(node)},
		Bytes: bytes,
	}
	p.Await(func(resume func()) { s.grp.Net.StartFlow(f, resume) })
}

// prefillStep models a prompt pass on node: the roofline kernel sleep plus
// the NVSwitch collective traffic.
func (s *dcServer) prefillStep(p *sim.Proc, node int, q *request) {
	pb := promptBucket(q.prompt)
	tp := float64(s.cfg.TensorParallel)
	flops := prefillFLOPs(s.cfg.Model, pb) / tp
	bytes := s.weightBytes + float64(pb)*s.kvPerTok
	p.Sleep(s.gpu.RooflineTime(flops, bytes))
	s.nvCollective(p, node, pb)
}

// shipKV awaits the KV-cache transfer from prefill node to decode node over
// the request's rail (requests stripe the rails round-robin). The full
// source-NIC → fabric → destination-NIC path is one fluid flow; the path's
// extra switching latency is paid as a sleep up front.
func (s *dcServer) shipKV(p *sim.Proc, from, to int, q *request) {
	rails := s.sc.Cfg.Rails
	src, dst, extra := s.sc.RailPath(from, to, q.id%rails)
	if extra > 0 {
		p.Sleep(extra)
	}
	path := make([]*fabric.Link, 0, len(src)+len(dst))
	path = append(path, src...)
	path = append(path, dst...)
	f := &fabric.Flow{
		Name:  fmt.Sprintf("serve-kv-r%d", q.id),
		Path:  path,
		Bytes: float64(q.prompt) * s.kvPerTok * float64(s.cfg.TensorParallel),
	}
	p.Await(func(resume func()) { s.grp.Net.StartFlow(f, resume) })
}

// finishPrefill emits the request's first token and hands it to its decode
// replica (or retires single-token generations immediately).
func (s *dcServer) finishPrefill(q *request, rep *dcReplica, now sim.Time) {
	q.first = now
	q.decoded = 1
	if q.decoded >= q.decode {
		s.complete(q, rep, now)
		return
	}
	rep.ready[rep.rTail] = q
	rep.rTail++
	s.wake(rep.idle, &rep.waiting)
}

// admitReady moves handed-over requests into the decode batch.
func (rep *dcReplica) admitReady() {
	for rep.rHead < rep.rTail && rep.bn < len(rep.batch) {
		rep.batch[rep.bn] = rep.ready[rep.rHead]
		rep.ready[rep.rHead] = nil
		rep.bn++
		rep.rHead++
	}
}

// decodeStep generates one token for the replica's batch: the memory-bound
// roofline sleep (weights plus the batch's KV reads), the NVSwitch
// collective traffic, then retirement of finished requests.
func (rep *dcReplica) decodeStep(p *sim.Proc) {
	s := rep.s
	maxCtx := 0
	for i := 0; i < rep.bn; i++ {
		q := rep.batch[i]
		if c := q.prompt + q.decoded; c > maxCtx {
			maxCtx = c
		}
	}
	ctx := ctxBucketIdx(maxCtx) * CtxBucket
	tp := float64(s.cfg.TensorParallel)
	flops := 2 * float64(s.cfg.Model.Params()) * float64(rep.bn) / tp
	bytes := s.weightBytes + float64(rep.bn)*float64(ctx)*s.kvPerTok
	p.Sleep(s.gpu.RooflineTime(flops, bytes))
	s.nvCollective(p, rep.node, rep.bn)

	now := p.Now()
	s.steps++
	s.batchSum += int64(rep.bn)
	w := 0
	for i := 0; i < rep.bn; i++ {
		q := rep.batch[i]
		q.decoded++
		if q.decoded >= q.decode {
			s.complete(q, rep, now)
		} else {
			rep.batch[w] = q
			w++
		}
	}
	for i := w; i < rep.bn; i++ {
		rep.batch[i] = nil
	}
	rep.bn = w
}

// runColocated serves the replica's requests with both phases on the node:
// an admissible arrival's prefill preempts decode, stalling the batch.
func (rep *dcReplica) runColocated(p *sim.Proc) {
	s := rep.s
	rep.idle = sim.NewWaiter(p)
	for rep.done < len(rep.queue) {
		now := p.Now()
		if q := rep.admissible(now); q != nil {
			s.reserve(q, rep, now)
			rep.next++
			s.prefillStep(p, rep.node, q)
			s.finishPrefill(q, rep, p.Now())
			rep.admitReady()
			continue
		}
		if rep.bn > 0 {
			rep.decodeStep(p)
			continue
		}
		if rep.next < len(rep.queue) {
			q := rep.queue[rep.next]
			if q.arrival == unreleased {
				rep.waiting = true
				rep.idle.Wait()
				continue
			}
			if q.arrival > now {
				p.Sleep(q.arrival - now)
				continue
			}
		}
		// All admitted work is done and no arrival is runnable; wait for a
		// completion elsewhere to release one.
		rep.waiting = true
		rep.idle.Wait()
	}
}

// admissible returns the replica's next arrived-and-fitting request, or nil.
func (rep *dcReplica) admissible(now sim.Time) *request {
	if rep.next >= len(rep.queue) {
		return nil
	}
	q := rep.queue[rep.next]
	if q.arrival == unreleased || q.arrival > now ||
		rep.inflight >= rep.s.cfg.MaxBatch ||
		rep.kvUsed+float64(q.prompt+q.decode)*rep.s.kvPerTok > rep.s.kvCap {
		return nil
	}
	return q
}

// runDecode is the disaggregated replica's pure token-generation loop.
func (rep *dcReplica) runDecode(p *sim.Proc) {
	rep.idle = sim.NewWaiter(p)
	for rep.done < len(rep.queue) {
		rep.admitReady()
		if rep.bn == 0 {
			rep.waiting = true
			rep.idle.Wait()
			continue
		}
		rep.decodeStep(p)
	}
}

// run is a disaggregated prefill node's loop: admit arrivals in order onto
// their decode replicas, run the prompt pass and ship the KV cache across
// the rail fabric.
func (pf *dcPrefill) run(p *sim.Proc) {
	s := pf.s
	pf.idle = sim.NewWaiter(p)
	for pf.next < len(pf.queue) {
		q := pf.queue[pf.next]
		now := p.Now()
		if q.arrival == unreleased {
			pf.waiting = true
			pf.idle.Wait()
			continue
		}
		if q.arrival > now {
			p.Sleep(q.arrival - now)
			continue
		}
		rep := s.replicas[q.id%len(s.replicas)]
		if rep.inflight >= s.cfg.MaxBatch ||
			rep.kvUsed+float64(q.prompt+q.decode)*s.kvPerTok > s.kvCap {
			pf.waiting = true
			pf.idle.Wait()
			continue
		}
		s.reserve(q, rep, now)
		pf.next++
		s.prefillStep(p, pf.node, q)
		s.shipKV(p, pf.node, rep.node, q)
		s.finishPrefill(q, rep, p.Now())
	}
}
