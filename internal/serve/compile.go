package serve

import (
	"llmbw/internal/collective"
	"llmbw/internal/model"
	"llmbw/internal/schedule"
	"llmbw/internal/trace"
)

// The serving compilers are the second client of the schedule IR (after
// internal/train's strategy compilers): a prefill pass and a decode step are
// each a tiny compiled program, replayed by the pooled executor so the
// steady token loop allocates nothing. Programs are keyed by shape — the
// prompt bucket for prefill, (batch, context bucket) for decode — and
// compiled eagerly for every shape the generated workload can present, so
// the serving loops only ever look programs up.

// promptBucket quantizes a prompt length to its program bucket (rounded up,
// never zero).
func promptBucket(tokens int) int {
	b := (tokens + PromptBucket - 1) / PromptBucket * PromptBucket
	if b < PromptBucket {
		b = PromptBucket
	}
	return b
}

// ctxBucketIdx quantizes a context length to its bucket index (≥ 1); the
// decode program assumes the bucket's upper edge, slightly conservative.
func ctxBucketIdx(tokens int) int {
	b := (tokens + CtxBucket - 1) / CtxBucket
	if b < 1 {
		b = 1
	}
	return b
}

// prefillFLOPs returns the total forward FLOPs of a prompt pass over t
// tokens: the 2·Ψ GEMM work per token plus the quadratic attention-score
// term (4·t²·h per layer, the part that grows with context).
func prefillFLOPs(g model.GPT, t int) float64 {
	tf := float64(t)
	return 2*float64(g.Params())*tf +
		4*tf*tf*float64(g.Hidden)*float64(g.Layers)
}

// tpAllReducePayload returns the per-rank payload of ONE of the two
// tensor-parallel all-reduces a transformer layer issues per forward pass,
// aggregated over all layers: t·h FP16 activations per layer.
func tpAllReducePayload(g model.GPT, t int) float64 {
	return float64(g.Layers) * float64(t) * float64(g.Hidden) * model.FP16Bytes
}

// compilePrefill builds the prefill program for a prompt bucket of pb
// tokens: one roofline kernel span (compute-bound for realistic prompts),
// the two aggregated tensor-parallel all-reduces, and — under disaggregated
// placement — the blocking KV-cache shipment to the decode node, sized as
// each rank's KV shard. Cold path: runs once per bucket at runner
// construction.
//
//lint:cold
func (r *Runner) compilePrefill(pb int) *schedule.Schedule {
	b := schedule.NewBuilder()
	b.Phase = trace.PhasePrefill
	g := r.cfg.Model
	tp := float64(r.cfg.TensorParallel)
	flops := prefillFLOPs(g, pb) / tp
	// HBM traffic: the weight sweep plus the KV writes of the new tokens.
	bytes := r.weightBytes + float64(pb)*r.kvPerTok
	b.Compute(trace.Gemm, r.gpu.RooflineTime(flops, bytes))
	if r.cfg.TensorParallel > 1 {
		payload := tpAllReducePayload(g, pb)
		b.SyncOn(r.preGroup, collective.AllReduce, payload, 0, 2)
		b.SyncOn(r.preGroup, collective.AllReduce, payload, 0, 2)
	}
	if r.cfg.Disaggregated {
		b.Xfer(trace.OffloadCopy, float64(pb)*r.kvPerTok)
	}
	return b.S
}

// compileDecode builds the decode-step program for a batch of size batch
// whose longest context lands in bucket cb: one memory-bound roofline span
// (the weight sweep plus the batch's KV reads at the bucket's upper edge)
// and the two aggregated per-token tensor-parallel all-reduces. Cold path:
// runs once per (batch, bucket) shape at runner construction.
//
//lint:cold
func (r *Runner) compileDecode(batch, cb int) *schedule.Schedule {
	b := schedule.NewBuilder()
	b.Phase = trace.PhaseDecode
	g := r.cfg.Model
	tp := float64(r.cfg.TensorParallel)
	ctx := cb * CtxBucket
	flops := 2 * float64(g.Params()) * float64(batch) / tp
	bytes := r.weightBytes + float64(batch)*float64(ctx)*r.kvPerTok
	b.Compute(trace.Gemm, r.gpu.RooflineTime(flops, bytes))
	if r.cfg.TensorParallel > 1 {
		payload := tpAllReducePayload(g, batch)
		b.SyncOn(r.decGroup, collective.AllReduce, payload, 0, 2)
		b.SyncOn(r.decGroup, collective.AllReduce, payload, 0, 2)
	}
	return b.S
}
